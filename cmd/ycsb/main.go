// Command ycsb runs one YCSB configuration and prints the throughput and
// NVM perf counters — a standalone driver for the workload of §5.1.
//
// Usage:
//
//	ycsb -engine nvm-inp -mix balanced -skew low -latency 2x \
//	     -tuples 20000 -txns 20000 -partitions 4
//
// Drill modes (mutually exclusive):
//
//	-serve          in-process fault drill through the serving runtime
//	-listen ADDR    load the database, then serve it over the wire protocol
//	-connect ADDR   drive the same pre-generated schedule against a server
//	-cluster N      drive through an in-process replicated cluster of N nodes
//	                (-cluster-kill adds a mid-drive primary kill + failover)
package main

import (
	"flag"
	"fmt"
	"os"

	"nstore"
	"nstore/internal/cluster"
	"nstore/internal/core"
	"nstore/internal/netdrill"
	"nstore/internal/nvm"
	"nstore/internal/serve"
	"nstore/internal/testbed"
	"nstore/internal/workload/ycsb"
)

func main() {
	engine := flag.String("engine", "nvm-inp", "storage engine: inp, cow, log, nvm-inp, nvm-cow, nvm-log")
	mixName := flag.String("mix", "balanced", "mixture: read-only, read-heavy, balanced, write-heavy")
	skewName := flag.String("skew", "low", "skew: low or high")
	latency := flag.String("latency", "dram", "NVM latency: dram, 2x, 8x")
	tuples := flag.Int("tuples", 20000, "rows in usertable")
	txns := flag.Int("txns", 20000, "transactions")
	partitions := flag.Int("partitions", 4, "partitions")
	cache := flag.Int("cache", 128<<10, "simulated CPU cache per partition (bytes)")
	seed := flag.Int64("seed", 42, "workload and fault-schedule seed")
	drill := netdrill.Register(flag.CommandLine)
	flag.Parse()
	if err := drill.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var mix ycsb.Mix
	for _, m := range ycsb.Mixes {
		if m.Name == *mixName {
			mix = m
		}
	}
	if mix.Name == "" {
		fmt.Fprintf(os.Stderr, "unknown mix %q\n", *mixName)
		os.Exit(2)
	}
	skew := ycsb.LowSkew
	if *skewName == "high" {
		skew = ycsb.HighSkew
	}
	profile := nvm.ProfileDRAM
	switch *latency {
	case "2x":
		profile = nvm.ProfileLowNVM
	case "8x":
		profile = nvm.ProfileHighNVM
	case "dram":
	default:
		fmt.Fprintf(os.Stderr, "unknown latency %q\n", *latency)
		os.Exit(2)
	}

	cfg := ycsb.Config{
		Tuples: *tuples, Txns: *txns, Partitions: *partitions,
		Mix: mix, Skew: skew, Seed: *seed,
	}
	if drill.Connect != "" {
		// Client mode needs no local database: the server loaded the same
		// -tuples/-partitions configuration; this side just generates and
		// drives the identical schedule over the wire.
		err := netdrill.RunClient(drill.Connect, netdrill.YCSBRequests(cfg), drill.Conns, drill.Clients, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ycsb:", err)
			os.Exit(1)
		}
		return
	}
	db, err := testbed.New(testbed.Config{
		Engine:     nstore.EngineKind(*engine),
		Partitions: *partitions,
		Env: core.EnvConfig{
			DeviceSize: 2 << 30 / int64(*partitions),
			Profile:    profile,
			CacheSize:  *cache,
		},
		Options: core.Options{MemTableCap: 512, CheckpointEvery: *txns / *partitions, RecoveryParallelism: drill.RecoveryParallel},
		Schemas: ycsb.Schema(cfg),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ycsb:", err)
		os.Exit(1)
	}
	fmt.Printf("loading %d tuples on %s (%d partitions)...\n", *tuples, *engine, *partitions)
	if err := ycsb.Load(db, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ycsb: load:", err)
		os.Exit(1)
	}
	db.ResetStats()
	if drill.Cluster > 0 {
		// Replicated drill: replicate the loaded database into an in-process
		// cluster (one shard per partition) and drive the schedule through
		// the shard router, pinned by the workload's own key%parts rule.
		streams := netdrill.YCSBRequests(cfg)
		netdrill.PinByKey(streams, *partitions)
		err := netdrill.RunCluster(cluster.Config{
			Engine: nstore.EngineKind(*engine),
			Shards: *partitions,
			Seed:   *seed,
			Env: core.EnvConfig{
				DeviceSize: 256 << 20 / int64(*partitions),
				Profile:    profile,
				CacheSize:  *cache,
			},
			Options: core.Options{MemTableCap: 512},
			Schemas: ycsb.Schema(cfg),
		}, db, streams, drill, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ycsb:", err)
			os.Exit(1)
		}
		return
	}
	if drill.Listen != "" {
		err := netdrill.RunServer(db, drill.Listen, netdrill.ServerConfig{
			Seed: *seed, Metrics: drill.Metrics, Out: os.Stdout, Errw: os.Stderr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ycsb:", err)
			os.Exit(1)
		}
		return
	}
	if drill.Serve {
		// The -serve fault drill: concurrent clients drive the workload
		// through the supervised runtime while the chosen fault fires on
		// every partition mid-traffic; the drill verifies committed data
		// survives the live recoveries plus a final power cycle.
		err := serve.RunDrill(db, ycsb.Generate(cfg), ycsb.Schema(cfg), serve.DrillConfig{
			Clients: drill.Clients, Fault: drill.Fault, FaultAfter: drill.FaultAfter,
			Seed: *seed, WantRows: int64(*tuples), Metrics: drill.Metrics,
			Out: os.Stdout, Errw: os.Stderr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ycsb:", err)
			os.Exit(1)
		}
		return
	}
	res, err := db.ExecuteSequential(ycsb.Generate(cfg))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ycsb: run:", err)
		os.Exit(1)
	}
	if err := db.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "ycsb: flush:", err)
		os.Exit(1)
	}
	s := db.Stats()
	fmt.Printf("%s %s/%s @%s: %.0f txn/sec (%d txns in %v; wall %v + stall %v)\n",
		*engine, mix.Name, skew.Name, profile.Name,
		res.Throughput(), res.Txns, res.Elapsed.Round(1000), res.Wall.Round(1000), res.Stall.Round(1000))
	fmt.Printf("NVM: %d loads, %d stores, %.1f MB written, %d fences\n",
		s.Loads, s.Stores, float64(s.BytesWritten)/(1<<20), s.Fences)
	fp := db.Footprint()
	fmt.Printf("footprint: table %.1fMB index %.1fMB log %.1fMB ckpt %.1fMB other %.1fMB\n",
		mb(fp.Table), mb(fp.Index), mb(fp.Log), mb(fp.Checkpoint), mb(fp.Other))
}

func mb(n int64) float64 { return float64(n) / (1 << 20) }
