// Command nvbench regenerates the paper's tables and figures on the
// emulated NVM device.
//
// Usage:
//
//	nvbench [-run all|fig1|ycsb|tpcc|recovery|breakdown|footprint|costmodel|nodesize|synclat|wire|mvcc|cluster]
//	        [-scale small|medium] [-partitions N] [-tuples N] [-txns N] [-seed N]
//	        [-short] [-out DIR]
//
// The ycsb and tpcc experiments additionally write machine-readable
// BENCH_<workload>.json artifacts (the /metrics snapshot schema) into
// -out. -short runs a tiny per-engine smoke pass instead and writes
// BENCH_smoke.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nstore/internal/bench"
)

func main() {
	run := flag.String("run", "all", "experiment to run (comma-separated): all, fig1, ycsb, tpcc, recovery, breakdown, footprint, costmodel, nodesize, synclat, ablations, wire, mvcc, cluster, occ, vlog")
	scaleName := flag.String("scale", "small", "experiment scale: small or medium")
	partitions := flag.Int("partitions", 0, "override partition count")
	tuples := flag.Int("tuples", 0, "override YCSB tuple count")
	txns := flag.Int("txns", 0, "override YCSB transaction count")
	tpccTxns := flag.Int("tpcc-txns", 0, "override TPC-C transaction count")
	seed := flag.Int64("seed", 0, "override workload seed")
	short := flag.Bool("short", false, "run the tiny smoke pass only and write BENCH_smoke.json")
	out := flag.String("out", ".", "directory for BENCH_*.json artifacts")
	force := flag.Bool("force", false, "overwrite existing BENCH_*.json artifacts")
	flag.Parse()

	var scale bench.Scale
	switch *scaleName {
	case "small":
		scale = bench.SmallScale()
	case "medium":
		scale = bench.MediumScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *partitions > 0 {
		scale.Partitions = *partitions
	}
	if *tuples > 0 {
		scale.YCSBTuples = *tuples
	}
	if *txns > 0 {
		scale.YCSBTxns = *txns
	}
	if *tpccTxns > 0 {
		scale.TPCCTxns = *tpccTxns
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	// artifactPath refuses to clobber an existing artifact unless -force:
	// bench JSONs are trajectory data and an accidental rerun should not
	// silently rewrite them.
	artifactPath := func(workload string) string {
		path := filepath.Join(*out, "BENCH_"+workload+".json")
		if !*force {
			if _, err := os.Stat(path); err == nil {
				fmt.Fprintf(os.Stderr, "nvbench: %s already exists; pass -force to overwrite\n", path)
				os.Exit(1)
			}
		}
		return path
	}
	artifact := func(workload string, ms []bench.Measurement) {
		path := artifactPath(workload)
		if err := bench.WriteSnapshot(path, workload, ms); err != nil {
			fmt.Fprintf(os.Stderr, "nvbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}

	start := time.Now()
	if *short {
		scale = bench.SmokeScale()
		if *seed != 0 {
			scale.Seed = *seed
		}
		ms, err := bench.New(scale, os.Stdout).Smoke()
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvbench: %v\n", err)
			os.Exit(1)
		}
		artifact("smoke", ms)
		fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	r := bench.New(scale, os.Stdout)
	for _, name := range strings.Split(*run, ",") {
		var err error
		switch strings.TrimSpace(name) {
		case "all":
			err = r.All()
		case "fig1":
			_, err = r.Fig1()
		case "ycsb":
			var res *bench.YCSBResult
			if res, err = r.YCSB(); err == nil {
				artifact("ycsb", res.Points)
			}
		case "tpcc":
			var res *bench.TPCCResult
			if res, err = r.TPCC(); err == nil {
				artifact("tpcc", res.Points)
			}
		case "recovery":
			if _, err = r.Recovery(); err == nil {
				var sweep *bench.RecoverySweepResult
				if sweep, err = r.RecoverySweep(); err == nil {
					path := artifactPath("recovery")
					if err = bench.WriteRecoverySnapshot(path, sweep); err == nil {
						fmt.Printf("wrote %s\n", path)
					}
				}
			}
		case "breakdown":
			_, err = r.Breakdown()
		case "footprint":
			_, err = r.Footprint()
		case "costmodel":
			err = r.CostModel()
		case "nodesize":
			_, err = r.NodeSize()
		case "synclat":
			_, err = r.SyncLatency()
		case "ablations":
			err = r.Ablations()
		case "wire":
			var ms []bench.Measurement
			if ms, err = r.Wire(); err == nil {
				artifact("wire", ms)
			}
		case "mvcc":
			var res *bench.MVCCResult
			if res, err = r.MVCC(); err == nil {
				artifact("mvcc", res.Points)
			}
		case "vlog":
			var res *bench.VlogResult
			if res, err = r.Vlog(); err == nil {
				artifact("vlog", res.Points)
			}
		case "cluster":
			var res *bench.ClusterResult
			if res, err = r.Cluster(); err == nil {
				path := artifactPath("cluster")
				if err = bench.WriteClusterSnapshot(path, res); err == nil {
					fmt.Printf("wrote %s\n", path)
				}
			}
		case "occ":
			var res *bench.OCCResult
			if res, err = r.OCC(); err == nil {
				path := artifactPath("occ")
				if err = bench.WriteOCCSnapshot(path, res); err == nil {
					fmt.Printf("wrote %s\n", path)
				}
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvbench: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}
