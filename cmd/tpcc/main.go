// Command tpcc runs one TPC-C configuration and prints the throughput,
// NVM perf counters, and recovery latency — a standalone driver for the
// workload of §5.1.
//
// Usage:
//
//	tpcc -engine nvm-inp -warehouses 8 -txns 8000 -partitions 8 -latency 2x
//
// Drill modes (mutually exclusive):
//
//	-serve          in-process fault drill through the serving runtime
//	-listen ADDR    load the database, then serve it over the wire protocol
//	-connect ADDR   drive payment-shaped wire transactions against a server
//	-cluster N      drive through an in-process replicated cluster of N nodes
//	                (-cluster-kill adds a mid-drive primary kill + failover;
//	                -cluster-txn drives payments as cross-shard 2PC vs
//	                single-shard TXN frames and writes BENCH_txn.json)
package main

import (
	"flag"
	"fmt"
	"os"

	"nstore"
	"nstore/internal/cluster"
	"nstore/internal/core"
	"nstore/internal/netdrill"
	"nstore/internal/nvm"
	"nstore/internal/serve"
	"nstore/internal/testbed"
	"nstore/internal/workload/tpcc"
)

func main() {
	engine := flag.String("engine", "nvm-inp", "storage engine: inp, cow, log, nvm-inp, nvm-cow, nvm-log")
	warehouses := flag.Int("warehouses", 4, "warehouses")
	customers := flag.Int("customers", 100, "customers per district")
	items := flag.Int("items", 500, "items")
	txns := flag.Int("txns", 4000, "transactions")
	partitions := flag.Int("partitions", 4, "partitions")
	latency := flag.String("latency", "dram", "NVM latency: dram, 2x, 8x")
	cache := flag.Int("cache", 128<<10, "simulated CPU cache per partition (bytes)")
	seed := flag.Int64("seed", 42, "workload seed")
	doRecover := flag.Bool("recover", true, "crash and measure recovery at the end")
	drill := netdrill.Register(flag.CommandLine)
	flag.Parse()
	if err := drill.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	profile := nvm.ProfileDRAM
	switch *latency {
	case "2x":
		profile = nvm.ProfileLowNVM
	case "8x":
		profile = nvm.ProfileHighNVM
	}

	cfg := tpcc.Config{
		Warehouses: *warehouses, Customers: *customers, Items: *items,
		Txns: *txns, Partitions: *partitions, Seed: *seed,
	}
	if drill.Connect != "" {
		// Client mode: the server loaded the same warehouse configuration;
		// this side generates payment-shaped wire transactions and drives
		// them over the network.
		err := netdrill.RunClient(drill.Connect, netdrill.TPCCRequests(cfg), drill.Conns, drill.Clients, os.Stdout)
		if err != nil {
			fatal(err)
		}
		return
	}
	db, err := testbed.New(testbed.Config{
		Engine:     nstore.EngineKind(*engine),
		Partitions: *partitions,
		Env: core.EnvConfig{
			DeviceSize: 2 << 30 / int64(*partitions),
			Profile:    profile,
			CacheSize:  *cache,
		},
		Options: core.Options{MemTableCap: 512, RecoveryParallelism: drill.RecoveryParallel},
		Schemas: tpcc.Schemas(),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loading %d warehouses on %s (%d partitions)...\n", *warehouses, *engine, *partitions)
	if err := tpcc.Load(db, cfg); err != nil {
		fatal(err)
	}
	db.ResetStats()
	if drill.Cluster > 0 {
		ccfg := cluster.Config{
			Engine: nstore.EngineKind(*engine),
			Shards: *partitions,
			Seed:   *seed,
			Env: core.EnvConfig{
				DeviceSize: 256 << 20 / int64(*partitions),
				Profile:    profile,
				CacheSize:  *cache,
			},
			Options: core.Options{MemTableCap: 512},
			Schemas: tpcc.Schemas(),
		}
		var err error
		if drill.ClusterTxn {
			// Cross-shard 2PC drill: the same payments driven twice through
			// Router.DoTxn — all-local (one TXN frame) vs remote-customer
			// (percolator 2PC) — with the comparison written to BENCH_txn.json.
			err = netdrill.RunClusterTxn(ccfg, db, cfg, drill, os.Stdout, drill.BenchOut)
		} else {
			// Replicated drill: replicate the loaded warehouses into an
			// in-process cluster and drive payment-shaped transactions through
			// the shard router. TPCCRequests already pins Part to each txn's
			// home-warehouse partition, which doubles as the shard id.
			err = netdrill.RunCluster(ccfg, db, netdrill.TPCCRequests(cfg), drill, os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	if drill.Listen != "" {
		err := netdrill.RunServer(db, drill.Listen, netdrill.ServerConfig{
			Seed: *seed, Metrics: drill.Metrics, Out: os.Stdout, Errw: os.Stderr,
		})
		if err != nil {
			fatal(err)
		}
		return
	}
	if drill.Serve {
		// The -serve fault drill; TPC-C inserts rows, so the expected
		// row count is unknown (-1 checks live == recovered instead).
		err := serve.RunDrill(db, tpcc.Generate(cfg), tpcc.Schemas(), serve.DrillConfig{
			Clients: drill.Clients, Fault: drill.Fault, FaultAfter: drill.FaultAfter,
			Seed: *seed, WantRows: -1, Metrics: drill.Metrics,
			Out: os.Stdout, Errw: os.Stderr,
		})
		if err != nil {
			fatal(err)
		}
		return
	}
	res, err := db.ExecuteSequential(tpcc.Generate(cfg))
	if err != nil {
		fatal(err)
	}
	if err := db.Flush(); err != nil {
		fatal(err)
	}
	s := db.Stats()
	fmt.Printf("%s @%s: %.0f txn/sec (%d committed, %d rolled back)\n",
		*engine, profile.Name, res.Throughput(), res.Committed, res.Aborted)
	fmt.Printf("NVM: %d loads, %d stores, %.1f MB written\n",
		s.Loads, s.Stores, float64(s.BytesWritten)/(1<<20))

	if *doRecover {
		db.Crash()
		d, err := db.Recover()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("crash + recovery: %v\n", d)
		for _, rs := range db.RecoveryStats() {
			fmt.Printf("  part %d: %v (%d records, %d workers)\n", rs.Partition, rs.Wall.Round(1000), rs.Records, rs.Workers)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpcc:", err)
	os.Exit(1)
}
