// Command nvinspect examines an nstore database snapshot: per-partition
// device geometry, allocator usage by category, filesystem contents, and
// root-pointer directory — the on-NVM state an engine would recover from.
//
// Usage: nvinspect <snapshot-file>
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
	"nstore/internal/pmfs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: nvinspect <snapshot-file>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var hdr [16]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		fatal(err)
	}
	if string(hdr[:8]) != "NSTSNAP1" {
		fatal(fmt.Errorf("%s is not an nstore snapshot", os.Args[1]))
	}
	parts := int(binary.LittleEndian.Uint64(hdr[8:]))
	fmt.Printf("snapshot: %d partition(s)\n", parts)

	for p := 0; p < parts; p++ {
		dev, err := nvm.ReadSnapshot(f)
		if err != nil {
			fatal(fmt.Errorf("partition %d: %w", p, err))
		}
		inspect(p, dev)
	}
}

func inspect(p int, dev *nvm.Device) {
	fmt.Printf("\n=== partition %d ===\n", p)
	fmt.Printf("device: %s, cache %s (assoc %d), +%v/read miss\n",
		size(dev.Size()), size(int64(dev.Config().CacheSize)),
		dev.Config().CacheAssoc, dev.Config().ReadMissExtra)

	// Filesystem region starts at 0; its superblock records its size.
	fs, err := pmfs.Open(dev, 0)
	if err != nil {
		fmt.Printf("filesystem: none (%v)\n", err)
		return
	}
	fsSize := int64(dev.ReadU64(8))
	fmt.Printf("filesystem: %s region, %s in files\n", size(fsSize), size(fs.UsedBytes()))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, name := range fs.List() {
		n, _ := fs.FileSize(name)
		fmt.Fprintf(w, "  %s\t%s\n", name, size(n))
	}
	w.Flush()

	arena, err := pmalloc.Open(dev, fsSize)
	if err != nil {
		fmt.Printf("allocator: none (%v)\n", err)
		return
	}
	fmt.Printf("allocator: %s region, %s heap used, %s live\n",
		size(dev.Size()-fsSize), size(arena.HeapBytes()), size(arena.Allocated()))
	usage := arena.Usage()
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for tag, bytes := range usage {
		fmt.Fprintf(w, "  %s\t%s\n", pmalloc.TagNames[tag], size(bytes))
	}
	w.Flush()

	var roots []string
	for i := 0; i < pmalloc.NumRoots; i++ {
		if v := arena.Root(i); v != 0 {
			roots = append(roots, fmt.Sprintf("[%d]=%#x", i, v))
		}
	}
	if len(roots) > 0 {
		fmt.Printf("root directory: %v\n", roots)
	}

	// Chunk census.
	var nChunks, nPersisted, nFree int
	arena.Chunks(func(ptr pmalloc.Ptr, sz int, tag pmalloc.Tag, st pmalloc.State) {
		nChunks++
		switch st {
		case pmalloc.StatePersisted:
			nPersisted++
		case pmalloc.StateFree:
			nFree++
		}
	})
	fmt.Printf("chunks: %d total, %d persisted, %d free\n", nChunks, nPersisted, nFree)
}

func size(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvinspect:", err)
	os.Exit(1)
}
