// Package nstore is a Go reproduction of "Let's Talk About Storage &
// Recovery Methods for Non-Volatile Memory Database Systems" (Arulraj,
// Pavlo, Dulloor — SIGMOD 2015).
//
// It provides a partitioned OLTP DBMS testbed with six pluggable storage
// engines — in-place updates (InP), copy-on-write updates (CoW), and
// log-structured updates (Log), plus the paper's NVM-aware variants
// (NVM-InP, NVM-CoW, NVM-Log) — running on an emulated byte-addressable
// NVM device with a write-back CPU-cache simulation, perf counters, and a
// configurable latency model.
//
// Quick start:
//
//	db, err := nstore.Open(nstore.Config{
//		Engine:  nstore.NVMInP,
//		Schemas: []*nstore.Schema{mySchema},
//	})
//	...
//	err = db.Txn(db.Route(key), func(tx nstore.Tx) error {
//		return tx.Insert("mytable", key, row)
//	})
//
// See the examples directory for runnable walkthroughs and cmd/nvbench for
// the paper's experiment suite.
package nstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/testbed"
)

// EngineKind selects one of the six storage engines.
type EngineKind = testbed.EngineKind

// The six storage engines of the study (§3, §4).
const (
	InP    = testbed.InP
	CoW    = testbed.CoW
	Log    = testbed.Log
	NVMInP = testbed.NVMInP
	NVMCoW = testbed.NVMCoW
	NVMLog = testbed.NVMLog
)

// EngineKinds lists all six engines in the paper's order.
var EngineKinds = testbed.Kinds

// Schema and data model types.
type (
	// Schema describes a table.
	Schema = core.Schema
	// Column describes one column.
	Column = core.Column
	// IndexSpec declares a secondary index.
	IndexSpec = core.IndexSpec
	// Value is one column value.
	Value = core.Value
	// Update is a partial tuple modification.
	Update = core.Update
	// Options tunes engine behaviour.
	Options = core.Options
	// Footprint reports storage usage by category.
	Footprint = core.Footprint
	// Breakdown reports execution time per engine component.
	Breakdown = core.Breakdown
	// LatencyProfile is an NVM latency configuration.
	LatencyProfile = nvm.Profile
	// DeviceStats are the NVM perf counters.
	DeviceStats = nvm.Stats
)

// Column types.
const (
	TInt    = core.TInt
	TString = core.TString
)

// Value constructors.
var (
	IntVal   = core.IntVal
	StrVal   = core.StrVal
	BytesVal = core.BytesVal
)

// Common errors.
var (
	ErrKeyExists   = core.ErrKeyExists
	ErrKeyNotFound = core.ErrKeyNotFound
	// ErrAbort, returned from a Txn body, rolls the transaction back.
	ErrAbort = testbed.ErrAbort
)

// The paper's three latency configurations (§5.2) and the technology survey
// of Table 1.
var (
	ProfileDRAM    = nvm.ProfileDRAM
	ProfileLowNVM  = nvm.ProfileLowNVM
	ProfileHighNVM = nvm.ProfileHighNVM
	Profiles       = nvm.Profiles
)

// Tx is the operation surface available inside a transaction.
type Tx interface {
	Insert(table string, key uint64, row []Value) error
	Update(table string, key uint64, upd Update) error
	Delete(table string, key uint64) error
	Get(table string, key uint64) ([]Value, bool, error)
	ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error
	ScanRange(table string, from, to uint64, fn func(pk uint64, row []Value) bool) error
}

// Config describes a database.
type Config struct {
	// Engine selects the storage engine (default NVMInP).
	Engine EngineKind
	// Partitions is the number of partitions / executor threads (default 8).
	Partitions int
	// DeviceSize is the total emulated NVM capacity (default 2 GiB,
	// divided among partitions).
	DeviceSize int64
	// Profile is the NVM latency configuration (default DRAM).
	Profile LatencyProfile
	// Options tunes the engine.
	Options Options
	// Schemas declares the tables.
	Schemas []*Schema
}

// DB is a database handle. The underlying testbed runs transactions
// serially within each partition; DB methods must not be called
// concurrently except through Execute-style batch entry points.
type DB struct {
	inner *testbed.DB
	cfg   Config
}

// Open creates a database with freshly formatted storage.
func Open(cfg Config) (*DB, error) {
	if cfg.Engine == "" {
		cfg.Engine = NVMInP
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 8
	}
	if cfg.DeviceSize == 0 {
		cfg.DeviceSize = 2 << 30
	}
	inner, err := testbed.New(testbed.Config{
		Engine:     cfg.Engine,
		Partitions: cfg.Partitions,
		Env: core.EnvConfig{
			DeviceSize: cfg.DeviceSize / int64(cfg.Partitions),
			Profile:    cfg.Profile,
		},
		Options: cfg.Options,
		Schemas: cfg.Schemas,
	})
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner, cfg: cfg}, nil
}

// Engine returns the configured engine kind.
func (db *DB) Engine() EngineKind { return db.cfg.Engine }

// Partitions returns the partition count.
func (db *DB) Partitions() int { return db.inner.Partitions() }

// Route maps a primary key to its home partition.
func (db *DB) Route(key uint64) int { return db.inner.Route(key) }

// Txn runs fn as one transaction on the given partition, committing on nil
// and rolling back on error (ErrAbort rolls back and returns nil).
func (db *DB) Txn(partition int, fn func(tx Tx) error) error {
	eng := db.inner.Engine(partition)
	if err := eng.Begin(); err != nil {
		return err
	}
	err := fn(eng)
	switch {
	case err == nil:
		return eng.Commit()
	case err == ErrAbort:
		return eng.Abort()
	default:
		eng.Abort()
		return err
	}
}

// View runs fn read-only on a partition (still a transaction internally).
func (db *DB) View(partition int, fn func(tx Tx) error) error {
	return db.Txn(partition, fn)
}

// ExecuteBatches runs pre-generated per-partition transaction batches
// concurrently (one executor per partition) and reports the merged result.
func (db *DB) ExecuteBatches(perPartition [][]func(tx Tx) error) (Result, error) {
	work := make([][]testbed.Txn, len(perPartition))
	for p, list := range perPartition {
		for _, fn := range list {
			fn := fn
			work[p] = append(work[p], func(e core.Engine) error { return fn(e) })
		}
	}
	res, err := db.inner.Execute(work)
	return Result(res), err
}

// Result summarizes a batch execution.
type Result testbed.Result

// Throughput returns transactions per second of effective time (wall clock
// plus simulated NVM stall).
func (r Result) Throughput() float64 { return testbed.Result(r).Throughput() }

// Flush forces batched durability work (group commits, checkpoints).
func (db *DB) Flush() error { return db.inner.Flush() }

// Crash simulates a power failure: all volatile CPU-cache state is lost;
// only data the engine made durable survives.
func (db *DB) Crash() { db.inner.Crash() }

// Recover reopens the database after a Crash, running the engine's
// recovery protocol, and returns the recovery latency.
func (db *DB) Recover() (time.Duration, error) { return db.inner.Recover() }

// SetLatency switches the NVM latency profile at runtime.
func (db *DB) SetLatency(p LatencyProfile) { db.inner.SetLatency(p) }

// Stats returns the aggregated NVM perf counters (loads, stores, flushes,
// fences, stall).
func (db *DB) Stats() DeviceStats { return db.inner.Stats() }

// ResetStats zeroes the perf counters.
func (db *DB) ResetStats() { db.inner.ResetStats() }

// FootprintReport returns storage usage by category (Fig. 14).
func (db *DB) FootprintReport() Footprint { return db.inner.Footprint() }

// BreakdownReport returns cumulative execution time per engine component
// (Fig. 13).
func (db *DB) BreakdownReport() Breakdown { return db.inner.Breakdown() }

// Testbed exposes the underlying testbed database for benchmark harnesses.
func (db *DB) Testbed() *testbed.DB { return db.inner }

// Save writes a snapshot of every partition's durable NVM contents to one
// file. Only durable bytes are saved — exactly what a power failure would
// preserve — so Load always runs the engine's recovery protocol. Call Flush
// first if batched work must be included.
func (db *DB) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [16]byte
	copy(hdr[:8], "NSTSNAP1")
	binary.LittleEndian.PutUint64(hdr[8:], uint64(db.Partitions()))
	if _, err := f.Write(hdr[:]); err != nil {
		return err
	}
	for p := 0; p < db.Partitions(); p++ {
		if err := db.inner.Env(p).Dev.WriteSnapshot(f); err != nil {
			return fmt.Errorf("nstore: partition %d: %w", p, err)
		}
	}
	return nil
}

// Load reopens a database saved with Save. Schemas (including secondary-key
// functions) are code, not data, so the caller supplies the same Config used
// to create the database; Partitions is taken from the file.
func Load(path string, cfg Config) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [16]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, err
	}
	if string(hdr[:8]) != "NSTSNAP1" {
		return nil, fmt.Errorf("nstore: %s is not a database snapshot", path)
	}
	n := int(binary.LittleEndian.Uint64(hdr[8:]))
	if n <= 0 || n > 1024 {
		return nil, fmt.Errorf("nstore: implausible partition count %d", n)
	}
	devs := make([]*nvm.Device, n)
	for p := 0; p < n; p++ {
		dev, err := nvm.ReadSnapshot(f)
		if err != nil {
			return nil, fmt.Errorf("nstore: partition %d: %w", p, err)
		}
		devs[p] = dev
	}
	if cfg.Engine == "" {
		cfg.Engine = NVMInP
	}
	inner, err := testbed.Attach(testbed.Config{
		Engine:  cfg.Engine,
		Options: cfg.Options,
		Schemas: cfg.Schemas,
	}, devs)
	if err != nil {
		return nil, err
	}
	cfg.Partitions = n
	return &DB{inner: inner, cfg: cfg}, nil
}
