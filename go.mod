module nstore

go 1.22
