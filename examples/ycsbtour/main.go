// YCSB tour: run the paper's four workload mixtures on all six engines at
// one latency configuration and print a small Fig. 5-style table.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"nstore"
	"nstore/internal/testbed"
	"nstore/internal/workload/ycsb"
)

func main() {
	tuples := flag.Int("tuples", 8000, "rows in usertable")
	txns := flag.Int("txns", 8000, "transactions per cell")
	parts := flag.Int("partitions", 4, "partitions")
	high := flag.Bool("high-latency", false, "use the 8x NVM latency config")
	flag.Parse()

	profile := nstore.ProfileLowNVM
	if *high {
		profile = nstore.ProfileHighNVM
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "engine")
	for _, mix := range ycsb.Mixes {
		fmt.Fprintf(w, "\t%s", mix.Name)
	}
	fmt.Fprintf(w, "\n")

	for _, kind := range nstore.EngineKinds {
		fmt.Fprintf(w, "%s", kind)
		for _, mix := range ycsb.Mixes {
			cfg := ycsb.Config{
				Tuples:     *tuples,
				Txns:       *txns,
				Partitions: *parts,
				Mix:        mix,
				Skew:       ycsb.LowSkew,
				Seed:       1,
			}
			db, err := nstore.Open(nstore.Config{
				Engine:     kind,
				Partitions: *parts,
				Profile:    profile,
				Schemas:    ycsb.Schema(cfg),
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := ycsb.Load(db.Testbed(), cfg); err != nil {
				log.Fatal(err)
			}
			db.ResetStats()
			res, err := db.Testbed().ExecuteSequential(ycsb.Generate(cfg))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "\t%.0f", testbed.Result(res).Throughput())
		}
		fmt.Fprintf(w, "\n")
		w.Flush()
	}
	fmt.Printf("\n(txn/sec; %s latency, low skew, %d tuples, %d txns)\n",
		profile.Name, *tuples, *txns)
}
