// Crash-recovery tour: run the same write-heavy workload on all six storage
// engines, kill the power mid-flight, and compare recovery latency and
// post-crash state — reproducing the behaviour behind Fig. 12.
package main

import (
	"fmt"
	"log"

	"nstore"
)

const rows = 2000

func schema() *nstore.Schema {
	return &nstore.Schema{
		Name: "events",
		Columns: []nstore.Column{
			{Name: "id", Type: nstore.TInt},
			{Name: "counter", Type: nstore.TInt},
			{Name: "payload", Type: nstore.TString, Size: 128},
		},
	}
}

func main() {
	fmt.Println("engine    | recovery  | committed rows | in-flight txn visible?")
	fmt.Println("----------|-----------|----------------|-----------------------")
	for _, kind := range nstore.EngineKinds {
		run(kind)
	}
	fmt.Println("\nThe NVM-aware engines recover in microseconds regardless of")
	fmt.Println("history length: NVM-InP and NVM-Log only undo in-flight")
	fmt.Println("transactions; the CoW engines have no recovery process at all.")
}

func run(kind nstore.EngineKind) {
	db, err := nstore.Open(nstore.Config{
		Engine:     kind,
		Partitions: 2,
		DeviceSize: 512 << 20,
		Schemas:    []*nstore.Schema{schema()},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Committed work.
	for id := uint64(0); id < rows; id++ {
		id := id
		if err := db.Txn(db.Route(id), func(tx nstore.Tx) error {
			return tx.Insert("events", id, []nstore.Value{
				nstore.IntVal(int64(id)), nstore.IntVal(1),
				nstore.StrVal("committed before the crash"),
			})
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	// A transaction that is still in flight when the power dies: we update
	// a row and "crash" without committing, after forcing the dirty cache
	// lines onto the medium — the adversarial case for undo-based recovery.
	eng := db.Testbed().Engine(0)
	if err := eng.Begin(); err != nil {
		log.Fatal(err)
	}
	if err := eng.Update("events", 0, nstore.Update{
		Cols: []int{1}, Vals: []nstore.Value{nstore.IntVal(-999)},
	}); err != nil {
		log.Fatal(err)
	}
	db.Testbed().Env(0).Dev.EvictAll()

	db.Crash()
	lat, err := db.Recover()
	if err != nil {
		log.Fatal(err)
	}

	// Count surviving rows and check the in-flight update was undone.
	count := 0
	dirty := false
	for p := 0; p < db.Partitions(); p++ {
		if err := db.View(p, func(tx nstore.Tx) error {
			return tx.ScanRange("events", 0, ^uint64(0), func(pk uint64, row []nstore.Value) bool {
				count++
				if row[1].I == -999 {
					dirty = true
				}
				return true
			})
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%-9s | %-9v | %-14d | %v\n", kind, lat.Round(10_000), count, dirty)
}
