// Quickstart: open a database on the NVM-aware in-place updates engine,
// run transactions, crash it, and recover instantly.
package main

import (
	"fmt"
	"log"

	"nstore"
)

func main() {
	// A table of accounts with a secondary index on the branch id.
	accounts := &nstore.Schema{
		Name: "accounts",
		Columns: []nstore.Column{
			{Name: "id", Type: nstore.TInt},
			{Name: "branch", Type: nstore.TInt},
			{Name: "owner", Type: nstore.TString, Size: 64},
			{Name: "balance", Type: nstore.TInt},
		},
		Secondary: []nstore.IndexSpec{{
			Name:   "by_branch",
			SecKey: func(row []nstore.Value) uint32 { return uint32(row[1].I) },
		}},
	}

	db, err := nstore.Open(nstore.Config{
		Engine:     nstore.NVMInP, // the paper's overall winner
		Partitions: 4,
		Schemas:    []*nstore.Schema{accounts},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened %s engine with %d partitions\n", db.Engine(), db.Partitions())

	// Insert a few accounts. Each key routes to its home partition.
	for id := uint64(1); id <= 100; id++ {
		id := id
		err := db.Txn(db.Route(id), func(tx nstore.Tx) error {
			return tx.Insert("accounts", id, []nstore.Value{
				nstore.IntVal(int64(id)),
				nstore.IntVal(int64(id % 10)),
				nstore.StrVal(fmt.Sprintf("owner-%d", id)),
				nstore.IntVal(1000),
			})
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Transfer money inside one partition-local transaction: keys 4 and 8
	// share partition 0 (both ≡ 0 mod 4).
	err = db.Txn(db.Route(4), func(tx nstore.Tx) error {
		from, _, err := tx.Get("accounts", 4)
		if err != nil {
			return err
		}
		to, _, err := tx.Get("accounts", 8)
		if err != nil {
			return err
		}
		if err := tx.Update("accounts", 4, nstore.Update{
			Cols: []int{3}, Vals: []nstore.Value{nstore.IntVal(from[3].I - 250)},
		}); err != nil {
			return err
		}
		return tx.Update("accounts", 8, nstore.Update{
			Cols: []int{3}, Vals: []nstore.Value{nstore.IntVal(to[3].I + 250)},
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	// An aborted transaction leaves no trace.
	_ = db.Txn(db.Route(4), func(tx nstore.Tx) error {
		if err := tx.Update("accounts", 4, nstore.Update{
			Cols: []int{3}, Vals: []nstore.Value{nstore.IntVal(-1)},
		}); err != nil {
			return err
		}
		return nstore.ErrAbort // roll everything back
	})

	// Query through the secondary index: all accounts of branch 7. Branch
	// members live on every partition; collect from each.
	var branch7 []uint64
	for p := 0; p < db.Partitions(); p++ {
		if err := db.View(p, func(tx nstore.Tx) error {
			return tx.ScanSecondary("accounts", "by_branch", 7, func(pk uint64) bool {
				branch7 = append(branch7, pk)
				return true
			})
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("branch 7 has %d accounts\n", len(branch7))

	// Power failure! Volatile CPU caches are lost; only NVM survives.
	db.Crash()
	latency, err := db.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered in %v (no redo, no index rebuild on %s)\n", latency, db.Engine())

	// Everything committed is still there; the abort never happened.
	err = db.View(db.Route(4), func(tx nstore.Tx) error {
		row, ok, err := tx.Get("accounts", 4)
		if err != nil || !ok {
			return fmt.Errorf("account 4 lost: %v", err)
		}
		fmt.Printf("account 4 balance after crash: %d (want 750)\n", row[3].I)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	s := db.Stats()
	fmt.Printf("NVM traffic: %d line loads, %d line stores, %d fences\n",
		s.Loads, s.Stores, s.Fences)
}
