// TPC-C demo: load a small order-entry database, run the five-transaction
// mix on an NVM-aware engine, and print per-district order progress plus
// NVM traffic — the workload behind Figs. 8 and 11.
package main

import (
	"flag"
	"fmt"
	"log"

	"nstore"
	"nstore/internal/testbed"
	"nstore/internal/workload/tpcc"
)

func main() {
	engineName := flag.String("engine", "nvm-inp", "storage engine (inp, cow, log, nvm-inp, nvm-cow, nvm-log)")
	txns := flag.Int("txns", 2000, "transactions to run")
	flag.Parse()

	cfg := tpcc.Config{
		Warehouses: 2,
		Districts:  4,
		Customers:  60,
		Items:      200,
		Txns:       *txns,
		Partitions: 2,
		Seed:       7,
	}
	db, err := nstore.Open(nstore.Config{
		Engine:     nstore.EngineKind(*engineName),
		Partitions: cfg.Partitions,
		DeviceSize: 1 << 30,
		Schemas:    tpcc.Schemas(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loading %d warehouses on %s...\n", cfg.Warehouses, db.Engine())
	if err := tpcc.Load(db.Testbed(), cfg); err != nil {
		log.Fatal(err)
	}
	db.ResetStats()

	res, err := db.Testbed().Execute(tpcc.Generate(cfg))
	if err != nil {
		log.Fatal(err)
	}
	r := testbed.Result(res)
	fmt.Printf("ran %d txns (%d committed, %d rolled back) at %.0f txn/sec\n",
		res.Txns, res.Committed, res.Aborted, r.Throughput())

	// Show each district's order high-water mark.
	for w := 1; w <= cfg.Warehouses; w++ {
		eng := db.Testbed().Engine(cfg.PartitionOf(w))
		fmt.Printf("warehouse %d:", w)
		for d := 1; d <= cfg.Districts; d++ {
			row, ok, err := eng.Get(tpcc.TDistrict, tpcc.DistrictKey(w, d))
			if err != nil || !ok {
				log.Fatalf("district %d/%d: %v", w, d, err)
			}
			fmt.Printf("  d%d→order %d", d, row[tpcc.DNextOID].I-1)
		}
		fmt.Println()
	}

	s := db.Stats()
	fmt.Printf("NVM traffic: %d loads, %d stores, %.1f MB written (app bytes)\n",
		s.Loads, s.Stores, float64(s.BytesWritten)/(1<<20))
	fp := db.FootprintReport()
	fmt.Printf("storage footprint: table %.1f MB, index %.1f MB, log %.1f MB\n",
		float64(fp.Table)/(1<<20), float64(fp.Index)/(1<<20), float64(fp.Log)/(1<<20))

	db.Crash()
	lat, err := db.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash + recovery: %v\n", lat)
}
