// Persistence across process restarts: populate a database, save the
// durable NVM image to a file, reload it (as a new process would), and
// verify the engine recovers the exact committed state. Inspect the file
// with `go run ./cmd/nvinspect <file>`.
package main

import (
	"fmt"
	"log"
	"os"

	"nstore"
)

func schema() *nstore.Schema {
	return &nstore.Schema{
		Name: "inventory",
		Columns: []nstore.Column{
			{Name: "sku", Type: nstore.TInt},
			{Name: "qty", Type: nstore.TInt},
			{Name: "label", Type: nstore.TString, Size: 64},
		},
	}
}

func main() {
	path := "inventory.nvm"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	cfg := nstore.Config{
		Engine:     nstore.NVMInP,
		Partitions: 2,
		DeviceSize: 256 << 20,
		Schemas:    []*nstore.Schema{schema()},
	}

	db, err := nstore.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for sku := uint64(1); sku <= 500; sku++ {
		sku := sku
		if err := db.Txn(db.Route(sku), func(tx nstore.Tx) error {
			return tx.Insert("inventory", sku, []nstore.Value{
				nstore.IntVal(int64(sku)),
				nstore.IntVal(int64(sku % 17)),
				nstore.StrVal(fmt.Sprintf("item #%d", sku)),
			})
		}); err != nil {
			log.Fatal(err)
		}
	}
	// A transaction left in flight: it must NOT survive the snapshot.
	eng := db.Testbed().Engine(0)
	eng.Begin()
	eng.Insert("inventory", 9000, []nstore.Value{
		nstore.IntVal(9000), nstore.IntVal(1), nstore.StrVal("uncommitted"),
	})

	if err := db.Save(path); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("saved %d rows to %s (%d KB compressed)\n", 500, path, st.Size()/1024)

	// "Restart": load the snapshot into a fresh database handle. The
	// NVM-InP engine recovers instantly — no redo, no index rebuild — and
	// undoes the in-flight transaction.
	db2, err := nstore.Load(path, cfg)
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for p := 0; p < db2.Partitions(); p++ {
		if err := db2.View(p, func(tx nstore.Tx) error {
			return tx.ScanRange("inventory", 0, ^uint64(0), func(pk uint64, row []nstore.Value) bool {
				count++
				return true
			})
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("reloaded: %d rows (want 500)\n", count)

	if err := db2.View(db2.Route(9000), func(tx nstore.Tx) error {
		if _, ok, _ := tx.Get("inventory", 9000); ok {
			return fmt.Errorf("uncommitted row leaked through the snapshot")
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("in-flight transaction correctly absent after reload")

	row := []nstore.Value{}
	if err := db2.View(db2.Route(42), func(tx nstore.Tx) error {
		r, ok, err := tx.Get("inventory", 42)
		if err != nil || !ok {
			return fmt.Errorf("sku 42 lost: %v", err)
		}
		row = r
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sku 42: qty=%d label=%q\n", row[1].I, row[2].S)
	fmt.Printf("inspect the image with: go run ./cmd/nvinspect %s\n", path)
}
