package bench

import (
	"fmt"
	"strings"

	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/testbed"
)

// vlogSizes is the value-size axis of the separation sweep. The labels ride
// in Measurement.Mix; Skew carries the configuration ("vlog-on"/"vlog-off").
var vlogSizes = []struct {
	bytes int
	label string
}{
	{64, "v64"},
	{1024, "v1k"},
	{16384, "v16k"},
}

// vlogBatch is how many inserts share one transaction: enough to amortize
// the per-commit WAL barrier so the flush/compaction write path — the thing
// value separation changes — dominates the measurement.
const vlogBatch = 16

// VlogResult holds the value-separation sweep (BENCH_vlog.json).
type VlogResult struct {
	Points []Measurement
	// Speedup[engine][size] is vlog-on over vlog-off write throughput.
	Speedup map[testbed.EngineKind]map[string]float64
}

// Vlog measures what WiscKey-style value separation buys the Log engines as
// values grow. For each engine and value size it runs the same deterministic
// insert+overwrite schedule twice — VlogThreshold 512 ("vlog-on") and -1
// ("vlog-off") — on a single partition with a small memtable, so the run
// spans many flushes and compactions. With separation off, every compaction
// rewrites the full values into the merged SSTable; with it on, values ≥
// threshold are written once to the value log and the LSM only carries
// 12-byte pointers, so compaction write amplification stays flat in the
// value size. 64-byte values sit below the threshold in both configurations
// — that point is the control showing separation leaves small values alone.
//
// After the timed phase the vlog-on run forces GC passes (overwrites made
// the first half of the log dead), then both runs fold a full-table content
// digest; the two configurations must agree exactly — separation and GC are
// invisible to reads.
func (r *Runner) Vlog() (*VlogResult, error) {
	r.section("vlog — value separation write sweep on the Log engines")
	res := &VlogResult{Speedup: make(map[testbed.EngineKind]map[string]float64)}
	kinds := []testbed.EngineKind{testbed.Log, testbed.NVMLog}
	for _, kind := range kinds {
		res.Speedup[kind] = make(map[string]float64)
		for _, sz := range vlogSizes {
			var tput [2]float64
			var digest [2]uint64
			for i, threshold := range []int{-1, 512} { // off, then on
				m, dig, err := r.vlogOne(kind, sz.bytes, sz.label, threshold)
				if err != nil {
					return nil, fmt.Errorf("bench: vlog: %s/%s thr=%d: %w", kind, sz.label, threshold, err)
				}
				res.Points = append(res.Points, m)
				tput[i] = m.Throughput
				digest[i] = dig
			}
			if digest[0] != digest[1] {
				return nil, fmt.Errorf("bench: vlog: %s/%s: vlog-on digest %016x diverged from vlog-off oracle %016x",
					kind, sz.label, digest[1], digest[0])
			}
			if tput[0] > 0 {
				res.Speedup[kind][sz.label] = tput[1] / tput[0]
			}
		}
	}

	w := r.tab()
	fprintf(w, "engine\tvalue\tvlog-off\tvlog-on\ton/off\tMB-written off\ton\n")
	for _, kind := range kinds {
		for _, sz := range vlogSizes {
			var off, on *Measurement
			for i := range res.Points {
				m := &res.Points[i]
				if m.Engine != kind || m.Mix != sz.label {
					continue
				}
				if m.Skew == "vlog-off" {
					off = m
				} else {
					on = m
				}
			}
			fprintf(w, "%s\t%s\t%s\t%s\t%.2fx\t%.1f\t%.1f\n",
				kind, sz.label, human(off.Throughput), human(on.Throughput),
				res.Speedup[kind][sz.label],
				float64(off.BytesWritten)/(1<<20), float64(on.BytesWritten)/(1<<20))
		}
	}
	w.Flush()
	return res, nil
}

func vlogSchemas(size int) []*core.Schema {
	return []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "a", Type: core.TInt},
			{Name: "b", Type: core.TString, Size: size},
		},
	}}
}

// vlogOps sizes the schedule so every point writes enough data to spill
// through multiple flush/compaction rounds without the big-value points
// dominating the suite's runtime.
func (r *Runner) vlogOps(size int) int {
	base := r.S.YCSBTxns / 2
	switch {
	case size >= 16384:
		base /= 8
	case size >= 1024:
		base /= 4
	}
	if base < 256 {
		base = 256
	}
	return base - base%vlogBatch
}

func vlogRow(key int64, size int, gen byte) []core.Value {
	fill := byte('a') + byte((key+int64(gen))%26)
	return []core.Value{
		core.IntVal(key),
		core.IntVal(key*7 + int64(gen)),
		core.StrVal(strings.Repeat(string(rune(fill)), size)),
	}
}

func (r *Runner) vlogOne(kind testbed.EngineKind, size int, label string, threshold int) (Measurement, uint64, error) {
	ops := r.vlogOps(size)
	opts := r.S.Options
	opts.MemTableCap = 128
	opts.LSMGrowth = 4
	opts.VlogThreshold = threshold
	env := r.envCfg(nvm.ProfileDRAM)
	env.DeviceSize = r.S.DeviceSize // single partition gets the whole device
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: 1,
		Env:        env,
		Options:    opts,
		Schemas:    vlogSchemas(size),
	})
	if err != nil {
		return Measurement{}, 0, err
	}

	// The timed schedule: insert every key, then overwrite the first half
	// (generation 1) so compaction supersedes pointers and the value log
	// accumulates dead bytes for GC.
	var txns []testbed.Txn
	addBatch := func(lo, hi int64, gen byte) {
		txns = append(txns, func(e core.Engine) error {
			for k := lo; k < hi; k++ {
				if gen == 0 {
					if err := e.Insert("t", uint64(k), vlogRow(k, size, 0)); err != nil {
						return err
					}
					continue
				}
				if err := e.Update("t", uint64(k), core.Update{
					Cols: []int{1, 2},
					Vals: vlogRow(k, size, gen)[1:],
				}); err != nil {
					return err
				}
			}
			return nil
		})
	}
	for lo := int64(1); lo <= int64(ops); lo += vlogBatch {
		addBatch(lo, lo+vlogBatch, 0)
	}
	for lo := int64(1); lo <= int64(ops/2); lo += vlogBatch {
		hi := lo + vlogBatch
		if hi > int64(ops/2)+1 {
			hi = int64(ops/2) + 1
		}
		addBatch(lo, hi, 1)
	}

	db.ResetStats()
	out, err := db.ExecuteSequential([][]testbed.Txn{txns})
	if err != nil {
		return Measurement{}, 0, err
	}
	values := ops + ops/2
	s := db.Stats()
	m := Measurement{
		Engine: kind, Mix: label, Latency: "dram",
		Skew:       "vlog-off",
		Throughput: float64(values) / out.Elapsed.Seconds(),
		Elapsed:    out.Elapsed,
		Loads:      s.Loads, Stores: s.Stores,
		BytesRead: s.BytesRead, BytesWritten: s.BytesWritten,
	}
	if threshold > 0 {
		m.Skew = "vlog-on"
	}

	// Outside the timed window: push residual memtables down, and on the
	// separated configuration reclaim the garbage the overwrites created —
	// the digest below must not notice either.
	if err := db.Flush(); err != nil {
		return Measurement{}, 0, err
	}
	st, hasStats := db.Engine(0).(core.FlushStatser)
	if threshold > 0 && size >= threshold && hasStats {
		if st.FlushStats().VlogBytes == 0 {
			return Measurement{}, 0, fmt.Errorf("no bytes separated at %dB; sweep is vacuous", size)
		}
		gc, ok := db.Engine(0).(interface{ GCVlog() error })
		if !ok {
			return Measurement{}, 0, fmt.Errorf("engine %s lacks GCVlog", kind)
		}
		for pass := 0; pass < 4; pass++ {
			if err := gc.GCVlog(); err != nil {
				return Measurement{}, 0, err
			}
		}
	}
	if threshold < 0 && hasStats && st.FlushStats().VlogBytes != 0 {
		return Measurement{}, 0, fmt.Errorf("vlog-off configuration separated bytes")
	}

	// Content digest over the whole table, order-independent fold.
	var digest uint64
	scan := func(e core.Engine) error {
		return e.ScanRange("t", 0, uint64(ops)+1, func(pk uint64, row []core.Value) bool {
			h := uint64(14695981039346656037)
			for i := 0; i < len(row[2].S); i++ {
				h = (h ^ uint64(row[2].S[i])) * 1099511628211
			}
			digest ^= mvccFold(int(pk), h^uint64(row[1].I))
			return true
		})
	}
	if _, err := db.ExecuteSequential([][]testbed.Txn{{scan}}); err != nil {
		return Measurement{}, 0, err
	}
	return m, digest, nil
}
