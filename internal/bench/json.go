package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"nstore/internal/obs"
)

// WriteSnapshot writes measurements to path as an obs.Snapshot, the same
// JSON schema the serving runtime's /metrics endpoint exposes, so one set
// of tooling can consume live scrapes and benchmark artifacts alike. Each
// measurement contributes a `<base>_txn_per_sec` gauge plus counters for
// the NVM traffic it generated, where base encodes the configuration
// (workload, engine, mixture, skew, latency — empty parts skipped).
func WriteSnapshot(path, workload string, ms []Measurement) error {
	reg := obs.New()
	for _, m := range ms {
		base := metricBase(workload, m)
		reg.Gauge(base + "_txn_per_sec").Set(m.Throughput)
		reg.Gauge(base + "_elapsed_ns").Set(float64(m.Elapsed))
		reg.Counter(base + "_loads").Add(int64(m.Loads))
		reg.Counter(base + "_stores").Add(int64(m.Stores))
		reg.Counter(base + "_bytes_read").Add(int64(m.BytesRead))
		reg.Counter(base + "_bytes_written").Add(int64(m.BytesWritten))
	}
	data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteRecoverySnapshot writes the recovery sweep to path in the same
// obs.Snapshot schema as the other BENCH_*.json artifacts. Each point
// contributes `recovery_<engine>_wal<txns>_{seq_ns,par_ns,speedup,records,
// workers}` gauges.
func WriteRecoverySnapshot(path string, res *RecoverySweepResult) error {
	reg := obs.New()
	for _, p := range res.Points {
		base := fmt.Sprintf("recovery_%s_wal%d", strings.ReplaceAll(string(p.Engine), "-", "_"), p.Txns)
		reg.Gauge(base + "_seq_ns").Set(float64(p.Sequential))
		reg.Gauge(base + "_par_ns").Set(float64(p.Parallel))
		reg.Gauge(base + "_speedup").Set(p.Speedup())
		reg.Gauge(base + "_records").Set(float64(p.Records))
		reg.Gauge(base + "_workers").Set(float64(p.Workers))
	}
	data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteClusterSnapshot writes the replication experiment to path in the
// obs.Snapshot schema: per engine, solo/repl `_txn_per_sec` gauges from the
// measurements plus `cluster_<engine>_retention` (replicated throughput as a
// fraction of solo) and `cluster_<engine>_failover_blackout_ns`.
func WriteClusterSnapshot(path string, res *ClusterResult) error {
	reg := obs.New()
	for _, m := range res.Points {
		base := metricBase("cluster", m)
		if m.Mix == "failover" {
			reg.Gauge(base + "_blackout_ns").Set(float64(m.Elapsed))
			continue
		}
		reg.Gauge(base + "_txn_per_sec").Set(m.Throughput)
	}
	for kind, ret := range res.Retention {
		base := "cluster_" + strings.ReplaceAll(string(kind), "-", "_")
		reg.Gauge(base + "_retention").Set(ret)
	}
	data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// metricBase builds the metric-name prefix for one measurement. Engine
// kinds contain '-', which the flat metric namespace spells '_'.
func metricBase(workload string, m Measurement) string {
	parts := []string{workload, strings.ReplaceAll(string(m.Engine), "-", "_")}
	for _, p := range []string{m.Mix, m.Skew, m.Latency} {
		if p != "" {
			parts = append(parts, strings.ReplaceAll(p, "-", "_"))
		}
	}
	return strings.Join(parts, "_")
}

// WriteOCCSnapshot writes the OCC write-scaling sweep to path in the
// obs.Snapshot schema: per (engine, mix, writers) `occ_*_txn_per_sec` and
// `_elapsed_ns` gauges from the modeled sweep, per (engine, mix)
// `_speedup_w4` and `_conflicts_w4`, and per engine the live-run gauges
// `occ_<engine>_live_{txn_per_sec,p99_ns,conflicts}`.
func WriteOCCSnapshot(path string, res *OCCResult) error {
	reg := obs.New()
	for _, m := range res.Points {
		base := metricBase("occ", m)
		reg.Gauge(base + "_txn_per_sec").Set(m.Throughput)
		reg.Gauge(base + "_elapsed_ns").Set(float64(m.Elapsed))
	}
	for kind, byMix := range res.Speedup {
		for mix, sp := range byMix {
			base := fmt.Sprintf("occ_%s_%s", strings.ReplaceAll(string(kind), "-", "_"), mix)
			reg.Gauge(base + "_speedup_w4").Set(sp)
			reg.Gauge(base + "_conflicts_w4").Set(float64(res.Conflicts[kind][mix]))
		}
	}
	for kind, p99 := range res.LiveP99 {
		base := fmt.Sprintf("occ_%s_live", strings.ReplaceAll(string(kind), "-", "_"))
		reg.Gauge(base + "_p99_ns").Set(float64(p99))
		reg.Gauge(base + "_conflicts").Set(float64(res.LiveConflicts[kind]))
	}
	data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
