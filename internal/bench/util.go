package bench

import (
	"fmt"
	"io"
	"time"
)

// nowFn/sinceFn are indirection points for tests.
var (
	nowFn   = time.Now
	sinceFn = time.Since
)

func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}

// human formats a large count compactly (e.g. 1.3M).
func human(n float64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fB", n/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", n/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fK", n/1e3)
	default:
		return fmt.Sprintf("%.0f", n)
	}
}

// humanBytes formats a byte count compactly.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
