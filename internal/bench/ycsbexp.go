package bench

import (
	"nstore/internal/nvm"
	"nstore/internal/testbed"
	"nstore/internal/workload/ycsb"
)

// YCSBResult holds the YCSB sweep: Figs. 5–7 (throughput per mixture, skew,
// and latency configuration) and Figs. 9–10 (NVM loads and stores).
type YCSBResult struct {
	Points []Measurement
}

// Find returns the data point for an exact configuration.
func (r *YCSBResult) Find(e testbed.EngineKind, mix, skew, lat string) *Measurement {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Engine == e && p.Mix == mix && p.Skew == skew && p.Latency == lat {
			return p
		}
	}
	return nil
}

// YCSB runs the full sweep: engines x mixtures x skews x latency configs.
// The database is loaded once per (engine, mixture, skew) and the latency
// profile is switched between runs on separate copies of the fixed
// workload, matching §5.2's methodology.
func (r *Runner) YCSB() (*YCSBResult, error) {
	res := &YCSBResult{}
	for _, mix := range ycsb.Mixes {
		for _, skew := range ycsb.Skews {
			cfg := r.ycsbCfg(mix, skew)
			work := ycsb.Generate(cfg)
			for _, kind := range r.S.Engines {
				db, err := r.newYCSBDB(kind, cfg)
				if err != nil {
					return nil, err
				}
				// Warm the simulated CPU cache and steady-state structures
				// so the first latency configuration is not biased cold.
				if _, err := db.ExecuteSequential(work); err != nil {
					return nil, err
				}
				for _, prof := range r.S.Latencies {
					db.SetLatency(prof)
					db.ResetStats()
					out, err := db.ExecuteSequential(work)
					if err != nil {
						return nil, err
					}
					if err := db.Flush(); err != nil {
						return nil, err
					}
					res.Points = append(res.Points, Measurement{
						Engine:       kind,
						Mix:          mix.Name,
						Skew:         skew.Name,
						Latency:      prof.Name,
						Throughput:   out.Throughput(),
						Loads:        out.Stats.Loads,
						Stores:       out.Stats.Stores,
						BytesRead:    out.Stats.BytesRead,
						BytesWritten: out.Stats.BytesWritten,
						Elapsed:      out.Elapsed,
					})
				}
			}
		}
	}
	r.printYCSB(res)
	return res, nil
}

func (r *Runner) printYCSB(res *YCSBResult) {
	for _, prof := range r.S.Latencies {
		r.section("Figs. 5-7 — YCSB throughput (txn/sec), latency config: " + prof.Name)
		w := r.tab()
		fprintf(w, "engine")
		for _, mix := range ycsb.Mixes {
			for _, skew := range ycsb.Skews {
				fprintf(w, "\t%s/%s", mix.Name, skew.Name)
			}
		}
		fprintf(w, "\n")
		for _, kind := range r.S.Engines {
			fprintf(w, "%s", kind)
			for _, mix := range ycsb.Mixes {
				for _, skew := range ycsb.Skews {
					if p := res.Find(kind, mix.Name, skew.Name, prof.Name); p != nil {
						fprintf(w, "\t%s", human(p.Throughput))
					} else {
						fprintf(w, "\t-")
					}
				}
			}
			fprintf(w, "\n")
		}
		w.Flush()
	}

	// Figs. 9-10: loads and stores under the DRAM-latency configuration.
	// Cells are loads/stores(cache-line write-backs)/MB-written(app bytes).
	lat := nvm.ProfileDRAM.Name
	r.section("Figs. 9-10 — YCSB NVM loads / stores / MB written")
	w := r.tab()
	fprintf(w, "engine")
	for _, mix := range ycsb.Mixes {
		for _, skew := range ycsb.Skews {
			fprintf(w, "\t%s/%s", mix.Name, skew.Name)
		}
	}
	fprintf(w, "\n")
	for _, kind := range r.S.Engines {
		fprintf(w, "%s", kind)
		for _, mix := range ycsb.Mixes {
			for _, skew := range ycsb.Skews {
				if p := res.Find(kind, mix.Name, skew.Name, lat); p != nil {
					fprintf(w, "\t%s/%s/%.0f", human(float64(p.Loads)), human(float64(p.Stores)),
						float64(p.BytesWritten)/(1<<20))
				} else {
					fprintf(w, "\t-")
				}
			}
		}
		fprintf(w, "\n")
	}
	w.Flush()
}
