package bench

import (
	"context"
	"fmt"
	"time"

	"nstore/internal/netclient"
	"nstore/internal/netdrill"
	"nstore/internal/netserve"
	"nstore/internal/serve"
	"nstore/internal/testbed"
	"nstore/internal/wire/chaos"
	"nstore/internal/workload/ycsb"
)

// wireModes label the three serving paths the wire experiment compares.
// They ride in Measurement.Mix, so BENCH_wire.json gets one metric family
// per (engine, path) pair.
var wireModes = []string{"inproc", "loopback", "chaos"}

// Wire measures what the network boundary costs: the same balanced/low-skew
// YCSB schedule per engine, executed (a) in-process on the raw testbed,
// (b) over TCP loopback through the framed wire protocol and the serving
// runtime, and (c) over loopback through a chaos proxy injecting delay and
// torn-frame connection drops (the client retrying through them). The
// schedule is identical in all three — GenerateOps is the single source of
// truth — so the throughput ratios isolate the serving stack's overhead.
func (r *Runner) Wire() ([]Measurement, error) {
	cfg := r.ycsbCfg(ycsb.Balanced, ycsb.LowSkew)
	r.section("wire — YCSB balanced/low: in-process vs loopback vs chaos")
	var ms []Measurement
	frac := make(map[string][]float64)
	for _, kind := range r.S.Engines {
		base := 0.0
		for _, mode := range wireModes {
			m, err := r.wireOne(kind, cfg, mode)
			if err != nil {
				return nil, fmt.Errorf("bench: wire: %s/%s: %w", kind, mode, err)
			}
			ms = append(ms, m)
			if mode == "inproc" {
				base = m.Throughput
			} else if base > 0 {
				frac[mode] = append(frac[mode], m.Throughput/base)
			}
			r.printf("%s %s: %s txn/sec\n", kind, mode, human(m.Throughput))
		}
	}
	for _, mode := range wireModes[1:] {
		if fs := frac[mode]; len(fs) > 0 {
			sum := 0.0
			for _, f := range fs {
				sum += f
			}
			r.printf("%s retains %.0f%% of in-process throughput (mean across engines)\n",
				mode, 100*sum/float64(len(fs)))
		}
	}
	return ms, nil
}

func (r *Runner) wireOne(kind testbed.EngineKind, cfg ycsb.Config, mode string) (Measurement, error) {
	db, err := r.newYCSBDB(kind, cfg)
	if err != nil {
		return Measurement{}, err
	}
	db.ResetStats()
	m := Measurement{Engine: kind, Mix: mode, Skew: cfg.Skew.Name, Latency: "dram"}

	if mode == "inproc" {
		out, err := db.ExecuteSequential(ycsb.Generate(cfg))
		if err != nil {
			return Measurement{}, err
		}
		if err := db.Flush(); err != nil {
			return Measurement{}, err
		}
		m.Throughput = out.Throughput()
		m.Elapsed = out.Elapsed
	} else {
		rt := serve.New(db, serve.Config{Seed: cfg.Seed})
		srv, err := netserve.New(rt, "127.0.0.1:0", netserve.Config{})
		if err != nil {
			rt.Close()
			return Measurement{}, err
		}
		addr := srv.Addr()
		var proxy *chaos.Proxy
		clCfg := netclient.Config{Conns: cfg.Partitions, Seed: cfg.Seed}
		if mode == "chaos" {
			proxy, err = chaos.New(addr, chaos.Config{
				Seed:      cfg.Seed,
				DropProb:  0.002,
				TornProb:  0.5,
				DelayProb: 0.05,
				MaxDelay:  100 * time.Microsecond,
				ChunkSize: 1024,
			})
			if err != nil {
				srv.Close()
				rt.Close()
				return Measurement{}, err
			}
			addr = proxy.Addr()
			clCfg.RetryMax = 60
		}
		cl := netclient.New(addr, clCfg)
		res, err := netdrill.Drive(context.Background(), cl, netdrill.YCSBRequests(cfg), 2)
		cl.Close()
		if proxy != nil {
			proxy.Close()
		}
		if cerr := srv.Close(); err == nil {
			err = cerr
		}
		if cerr := rt.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return Measurement{}, err
		}
		if res.Failed > 0 {
			return Measurement{}, fmt.Errorf("%d requests failed", res.Failed)
		}
		m.Throughput = res.Throughput()
		m.Elapsed = res.Elapsed
	}
	s := db.Stats()
	m.Loads, m.Stores = s.Loads, s.Stores
	m.BytesRead, m.BytesWritten = s.BytesRead, s.BytesWritten
	return m, nil
}
