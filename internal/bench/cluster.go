package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nstore/internal/cluster"
	"nstore/internal/core"
	"nstore/internal/netclient"
	"nstore/internal/netserve"
	"nstore/internal/serve"
	"nstore/internal/testbed"
	"nstore/internal/wire"
)

const (
	clusterBenchShards  = 2
	clusterBenchNodes   = 3
	clusterBenchWorkers = 4
)

// ClusterResult carries the replication experiment: per engine, the
// unreplicated ("solo") and replicated ("repl") wire throughput of the same
// unique-key insert schedule, plus the failover blackout — how long shard 0's
// write path stays dark between a SIGKILL of its primary and the first ack
// from the promoted backup.
type ClusterResult struct {
	Points    []Measurement
	Retention map[testbed.EngineKind]float64
	Blackout  map[testbed.EngineKind]time.Duration
}

// Cluster measures what synchronous primary→backup replication costs over
// the wire protocol and what a coordinated failover interrupts. The solo
// baseline is the same schedule against a single node (serve runtime behind
// netserve, no Replicator), so the throughput ratio isolates log shipping:
// every replicated ack waited for local durability AND the backup's
// REPL_ACK across a second loopback hop.
func (r *Runner) Cluster() (*ClusterResult, error) {
	n := r.S.YCSBTxns
	if n > 4000 {
		n = 4000
	}
	if n < 200 {
		n = 200
	}
	r.section(fmt.Sprintf("cluster — %d replicated inserts/engine: solo vs repl, failover blackout", n))
	res := &ClusterResult{
		Retention: make(map[testbed.EngineKind]float64),
		Blackout:  make(map[testbed.EngineKind]time.Duration),
	}
	w := r.tab()
	fmt.Fprintln(w, "engine\tsolo txn/s\trepl txn/s\tretention\tblackout")
	for _, kind := range r.S.Engines {
		solo, err := r.clusterSolo(kind, n)
		if err != nil {
			return nil, fmt.Errorf("bench: cluster: %s/solo: %w", kind, err)
		}
		repl, blackout, err := r.clusterRepl(kind, n)
		if err != nil {
			return nil, fmt.Errorf("bench: cluster: %s/repl: %w", kind, err)
		}
		res.Points = append(res.Points, solo, repl,
			Measurement{Engine: kind, Mix: "failover", Elapsed: blackout})
		ret := 0.0
		if solo.Throughput > 0 {
			ret = repl.Throughput / solo.Throughput
		}
		res.Retention[kind] = ret
		res.Blackout[kind] = blackout
		fmt.Fprintf(w, "%s\t%s\t%s\t%.0f%%\t%v\n", kind,
			human(solo.Throughput), human(repl.Throughput), 100*ret,
			blackout.Round(time.Millisecond))
	}
	w.Flush()
	return res, nil
}

func clusterBenchSchemas() []*core.Schema {
	return []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "n", Type: core.TInt},
			{Name: "s", Type: core.TString, Size: 64},
		},
	}}
}

func clusterBenchRow(key uint64) []core.Value {
	return []core.Value{
		core.IntVal(int64(key)),
		core.IntVal(int64(key)*3 + 1),
		core.StrVal(fmt.Sprintf("s%d", key)),
	}
}

// clusterDo is the definitive-ack insert loop both paths share: retried
// until acked, KeyExists on a retry counting as the swallowed ack.
type clusterDo func(ctx context.Context, req *wire.Request) (*wire.Response, error)

func clusterDrive(ctx context.Context, do clusterDo, n int) (float64, error) {
	var acked atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clusterBenchWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for key := uint64(w); key < uint64(n); key += clusterBenchWorkers {
				req := &wire.Request{Part: -1, Op: wire.OpPut, Table: "t", Key: key, Row: clusterBenchRow(key)}
				landed := false
				for round := 0; round < 40 && !landed; round++ {
					resp, err := do(ctx, req)
					if err != nil {
						time.Sleep(5 * time.Millisecond)
						continue
					}
					switch resp.Status {
					case wire.StatusOK, wire.StatusKeyExists:
						landed = true
						acked.Add(1)
					default:
						firstErr.CompareAndSwap(nil, error(&wire.StatusError{Status: resp.Status, Msg: resp.Msg}))
						return
					}
				}
				if !landed {
					firstErr.CompareAndSwap(nil, fmt.Errorf("key %d never acked", key))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, err
	}
	if got := acked.Load(); got != int64(n) {
		return 0, fmt.Errorf("acked %d of %d inserts", got, n)
	}
	return float64(n) / elapsed.Seconds(), nil
}

// clusterSolo is the unreplicated baseline: one node, same shard count,
// same wire protocol, no Replicator in the ack path.
func (r *Runner) clusterSolo(kind testbed.EngineKind, n int) (Measurement, error) {
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: clusterBenchShards,
		Env:        r.envCfg(r.S.Latencies[0]),
		Options:    r.S.Options,
		Schemas:    clusterBenchSchemas(),
	})
	if err != nil {
		return Measurement{}, err
	}
	rt := serve.New(db, serve.Config{Seed: r.S.Seed})
	srv, err := netserve.New(rt, "127.0.0.1:0", netserve.Config{})
	if err != nil {
		rt.Close()
		return Measurement{}, err
	}
	cl := netclient.New(srv.Addr(), netclient.Config{Conns: 2, Seed: r.S.Seed, RetryMax: 20})
	tput, err := clusterDrive(context.Background(), cl.DoRetry, n)
	cl.Close()
	if cerr := srv.Close(); err == nil {
		err = cerr
	}
	if cerr := rt.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{Engine: kind, Mix: "solo", Throughput: tput}, nil
}

// clusterRepl drives the same schedule through a replicated cluster, then
// measures the failover blackout: a probe writer keeps inserting fresh
// shard-0 keys while shard 0's primary is killed; the blackout is the gap
// from the kill to the first ack out of the promoted backup.
func (r *Runner) clusterRepl(kind testbed.EngineKind, n int) (Measurement, time.Duration, error) {
	c, err := cluster.Start(cluster.Config{
		Engine:         kind,
		Shards:         clusterBenchShards,
		Nodes:          clusterBenchNodes,
		Seed:           r.S.Seed,
		HeartbeatEvery: 10 * time.Millisecond,
		Lease:          80 * time.Millisecond,
		Env:            r.envCfg(r.S.Latencies[0]),
		Options:        r.S.Options,
		Schemas:        clusterBenchSchemas(),
	})
	if err != nil {
		return Measurement{}, 0, err
	}
	defer c.Close()
	router := c.Router(netclient.Config{Conns: 2, Seed: r.S.Seed, RetryMax: 20})
	defer router.Close()
	ctx := context.Background()

	tput, err := clusterDrive(ctx, router.DoRetry, n)
	if err != nil {
		return Measurement{}, 0, err
	}

	// Blackout probe: single writer on shard-0 keys, ack timestamps either
	// side of the kill.
	probeKeys := make(chan uint64, 64)
	probeStop := make(chan struct{})
	defer close(probeStop)
	go func() {
		for k := uint64(n) + 1; ; k++ {
			if wire.ShardOf(k, clusterBenchShards) == 0 {
				select {
				case probeKeys <- k:
				case <-probeStop:
					return
				}
			}
		}
	}()
	put := func(k uint64) bool {
		resp, err := router.DoRetry(ctx, &wire.Request{Part: -1, Op: wire.OpPut, Table: "t", Key: k, Row: clusterBenchRow(k)})
		return err == nil && (resp.Status == wire.StatusOK || resp.Status == wire.StatusKeyExists)
	}
	// Warm the probe path, then kill.
	if !put(<-probeKeys) {
		return Measurement{}, 0, fmt.Errorf("blackout probe warmup failed")
	}
	victim := c.Coord.Map().Shards[0].Primary
	for _, node := range c.Nodes {
		if node.Addr() == victim {
			node.Kill()
		}
	}
	killAt := time.Now()
	deadline := killAt.Add(30 * time.Second)
	var blackout time.Duration
	for {
		if put(<-probeKeys) {
			blackout = time.Since(killAt)
			break
		}
		if time.Now().After(deadline) {
			return Measurement{}, 0, fmt.Errorf("no ack within 30s of killing shard 0's primary")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return Measurement{Engine: kind, Mix: "repl", Throughput: tput}, blackout, nil
}
