package bench

import (
	"nstore/internal/nvm"
	"nstore/internal/testbed"
	"nstore/internal/workload/tpcc"
)

// TPCCResult holds Fig. 8 (throughput per latency config) and Fig. 11
// (NVM loads/stores) for the TPC-C benchmark.
type TPCCResult struct {
	Points []Measurement
}

// Find returns the data point for an engine and latency configuration.
func (r *TPCCResult) Find(e testbed.EngineKind, lat string) *Measurement {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Engine == e && p.Latency == lat {
			return p
		}
	}
	return nil
}

// TPCC runs the TPC-C benchmark for every engine and latency configuration.
func (r *Runner) TPCC() (*TPCCResult, error) {
	res := &TPCCResult{}
	cfg := r.tpccCfg()
	work := tpcc.Generate(cfg)
	for _, kind := range r.S.Engines {
		db, err := r.newTPCCDB(kind, cfg)
		if err != nil {
			return nil, err
		}
		// Warm-up pass (distinct seed so history keys never collide).
		warm := cfg
		warm.Seed = cfg.Seed + 777777
		if _, err := db.ExecuteSequential(tpcc.Generate(warm)); err != nil {
			return nil, err
		}
		for i, prof := range r.S.Latencies {
			db.SetLatency(prof)
			db.ResetStats()
			// Later latency runs re-execute a fresh copy of the workload
			// against the evolved database state; regenerate with a
			// distinct seed so history keys do not collide.
			w := work
			if i > 0 {
				c2 := cfg
				c2.Seed = cfg.Seed + int64(i)*1000003
				w = tpcc.Generate(c2)
			}
			out, err := db.ExecuteSequential(w)
			if err != nil {
				return nil, err
			}
			if err := db.Flush(); err != nil {
				return nil, err
			}
			res.Points = append(res.Points, Measurement{
				Engine:       kind,
				Latency:      prof.Name,
				Throughput:   out.Throughput(),
				Loads:        out.Stats.Loads,
				Stores:       out.Stats.Stores,
				BytesRead:    out.Stats.BytesRead,
				BytesWritten: out.Stats.BytesWritten,
				Elapsed:      out.Elapsed,
			})
		}
	}

	r.section("Fig. 8 — TPC-C throughput (txn/sec)")
	w := r.tab()
	fprintf(w, "engine")
	for _, prof := range r.S.Latencies {
		fprintf(w, "\t%s", prof.Name)
	}
	fprintf(w, "\n")
	for _, kind := range r.S.Engines {
		fprintf(w, "%s", kind)
		for _, prof := range r.S.Latencies {
			if p := res.Find(kind, prof.Name); p != nil {
				fprintf(w, "\t%s", human(p.Throughput))
			} else {
				fprintf(w, "\t-")
			}
		}
		fprintf(w, "\n")
	}
	w.Flush()

	r.section("Fig. 11 — TPC-C NVM loads / stores / MB written (DRAM latency config)")
	w = r.tab()
	fprintf(w, "engine\tloads\tstores\tMB written\n")
	for _, kind := range r.S.Engines {
		if p := res.Find(kind, nvm.ProfileDRAM.Name); p != nil {
			fprintf(w, "%s\t%s\t%s\t%.1f\n", kind, human(float64(p.Loads)), human(float64(p.Stores)),
				float64(p.BytesWritten)/(1<<20))
		}
	}
	w.Flush()
	return res, nil
}
