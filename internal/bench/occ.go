package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/serve"
	"nstore/internal/testbed"
)

// occWriterCounts is the x-axis of the write-scaling sweep.
var occWriterCounts = []int{1, 2, 4}

// occMixes are the two contention shapes: "uniform" spreads RMW over the
// whole keyspace (low contention — the scaling headline), "zipfian"
// concentrates it on a hot head (the conflict/tail-latency story).
var occMixes = []string{"uniform", "zipfian"}

// occComputeRounds is the deterministic per-transaction compute spin (hash
// rounds over the key) in the RMW body. It stands in for real transaction
// logic — predicate evaluation, serialization, business rules — and makes
// the optimistic phase the dominant cost, which is precisely the regime OCC
// targets: execution off-lock scales with writers, only validate+apply
// serializes.
const occComputeRounds = 100000

// OCCResult holds the write-scaling sweep (BENCH_occ.json).
type OCCResult struct {
	Points []Measurement
	// Speedup[engine][mix] is modeled throughput at 4 writers over 1.
	Speedup map[testbed.EngineKind]map[string]float64
	// Conflicts[engine][mix] counts OCC validation failures at 4 writers.
	Conflicts map[testbed.EngineKind]map[string]int64
	// LiveP99[engine] is the submit→ack p99 of the live zipfian run.
	LiveP99 map[testbed.EngineKind]time.Duration
	// LiveConflicts[engine] counts conflicts the live run absorbed.
	LiveConflicts map[testbed.EngineKind]int64
}

// OCC measures what concurrent optimistic write executors buy on a single
// hot partition. For each engine and contention shape it runs the same
// seeded RMW schedule at Writers ∈ {1,2,4} through a bulk-synchronous
// emulation of the OCC pipeline: each round, every writer executes its next
// transaction against its own pinned snapshot (timed on that writer's
// clock), then the round's transactions validate and apply one by one at
// the serialized commit point (timed on the shared commit clock); a
// validation loser retries in the next round, paying its optimistic phase
// again. Modeled wall clock follows the repo's parallelism convention
// (slowest shard + serial section, as in MVCC() and the recovery sweep):
//
//	wall(W) = Σ commit  +  max over writers (Σ exec)
//
// Writers:1 is the serial oracle; every configuration must end with a
// bit-identical table digest (increments commute, conflicts retry until
// committed, so any divergence is a lost or doubled update). A final live
// leg runs the real serve.Runtime with Writers:4 under the zipfian mix and
// reports ack tail latency and absorbed conflicts.
func (r *Runner) OCC() (*OCCResult, error) {
	r.section("occ — optimistic write executors on a single hot partition")
	res := &OCCResult{
		Speedup:       make(map[testbed.EngineKind]map[string]float64),
		Conflicts:     make(map[testbed.EngineKind]map[string]int64),
		LiveP99:       make(map[testbed.EngineKind]time.Duration),
		LiveConflicts: make(map[testbed.EngineKind]int64),
	}
	for _, kind := range r.S.Engines {
		res.Speedup[kind] = make(map[string]float64)
		res.Conflicts[kind] = make(map[string]int64)
		for _, mix := range occMixes {
			var w1 float64
			var digest1 uint64
			for _, writers := range occWriterCounts {
				m, digest, conflicts, err := r.occOne(kind, mix, writers)
				if err != nil {
					return nil, fmt.Errorf("bench: occ: %s/%s/w%d: %w", kind, mix, writers, err)
				}
				res.Points = append(res.Points, m)
				switch writers {
				case 1:
					w1, digest1 = m.Throughput, digest
				default:
					if digest != digest1 {
						return nil, fmt.Errorf("bench: occ: %s/%s/w%d: digest %016x diverged from serial oracle %016x",
							kind, mix, writers, digest, digest1)
					}
				}
				if writers == 4 {
					res.Conflicts[kind][mix] = conflicts
					if w1 > 0 {
						res.Speedup[kind][mix] = m.Throughput / w1
					}
				}
			}
		}
		m, p99, conflicts, err := r.occLive(kind)
		if err != nil {
			return nil, fmt.Errorf("bench: occ: %s/live: %w", kind, err)
		}
		res.Points = append(res.Points, m)
		res.LiveP99[kind] = p99
		res.LiveConflicts[kind] = conflicts
	}

	w := r.tab()
	fprintf(w, "engine\tmix\tw1\tw2\tw4\tw4/w1\tconflicts@w4\tlive p99\n")
	for _, kind := range r.S.Engines {
		for _, mix := range occMixes {
			fprintf(w, "%s\t%s", kind, mix)
			for _, writers := range occWriterCounts {
				skew := fmt.Sprintf("w%d", writers)
				for _, m := range res.Points {
					if m.Engine == kind && m.Mix == mix && m.Skew == skew {
						fprintf(w, "\t%s", human(m.Throughput))
					}
				}
			}
			fprintf(w, "\t%.2fx\t%d", res.Speedup[kind][mix], res.Conflicts[kind][mix])
			if mix == "zipfian" {
				fprintf(w, "\t%v", res.LiveP99[kind].Round(time.Microsecond))
			} else {
				fprintf(w, "\t-")
			}
			fprintf(w, "\n")
		}
	}
	w.Flush()
	return res, nil
}

// occKeys builds the deterministic op → key schedule for one mix.
func occKeys(mix string, seed int64, ops, tuples int) []uint64 {
	keys := make([]uint64, ops)
	if mix == "zipfian" {
		z := rand.NewZipf(rand.New(rand.NewSource(seed)), 1.2, 1, uint64(tuples-1))
		for i := range keys {
			keys[i] = z.Uint64()
		}
		return keys
	}
	for i := range keys {
		keys[i] = mvccKey(i, seed, tuples)
	}
	return keys
}

// occSpin is the transaction-logic stand-in: a deterministic hash chain
// seeded by the key. Callers must fold a bit of the result into the written
// row (key-deterministic, so digests stay config-independent) — an unused
// result lets the compiler elide the whole loop and the sweep silently
// measures nothing but fsync amortization.
func occSpin(key uint64) uint64 {
	h := key | 1
	for i := 0; i < occComputeRounds; i++ {
		h ^= h >> 31
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 29
	}
	return h
}

// occPreload fills one fresh single-partition DB with the keyspace. The
// group-commit size is pinned to the writer count: one durability barrier
// per BSP round, which is exactly the pipeline the executors target — N
// optimistic commits share one fsync, and every barrier publishes so
// snapshots track the frontier. (Leaving the default group of 16 with no
// flush in the loop livelocks: snapshots pin below the buffered commits and
// a writer conflicts with its own unpublished history forever.)
func (r *Runner) occPreload(kind testbed.EngineKind, groupSize int) (*testbed.DB, error) {
	tuples := r.S.YCSBTuples
	opts := r.S.Options
	opts.GroupCommitSize = groupSize
	// A roomy memtable keeps LSM flush/compaction cadence out of the
	// measurement: the sweep prices executor scaling, and a uniform RMW
	// over the whole keyspace would otherwise spend most of its commit
	// clock flushing memtables instead of validating and applying.
	if opts.MemTableCap < 4096 {
		opts.MemTableCap = 4096
	}
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: 1,
		Env:        r.envCfg(nvm.ProfileDRAM),
		Options:    opts,
		Schemas:    mvccSchemas(),
	})
	if err != nil {
		return nil, err
	}
	load := make([]testbed.Txn, 0, tuples/64+1)
	for lo := 0; lo < tuples; lo += 64 {
		lo := lo
		hi := lo + 64
		if hi > tuples {
			hi = tuples
		}
		load = append(load, func(e core.Engine) error {
			for k := lo; k < hi; k++ {
				row := []core.Value{core.IntVal(int64(k)), core.IntVal(0)}
				if err := e.Insert("t", uint64(k), row); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if _, err := db.ExecuteSequential([][]testbed.Txn{load}); err != nil {
		return nil, err
	}
	if err := db.Flush(); err != nil {
		return nil, err
	}
	return db, nil
}

// occOne runs one (engine, mix, writers) configuration of the modeled sweep
// and returns its measurement, the final table digest, and the conflict
// count.
func (r *Runner) occOne(kind testbed.EngineKind, mix string, writers int) (Measurement, uint64, int64, error) {
	var zero Measurement
	// Half the YCSB schedule: with a real per-txn compute spin the full
	// schedule prices nothing extra, it just doubles the sweep's wall time.
	ops := r.S.YCSBTxns / 2
	keys := occKeys(mix, r.S.Seed, ops, r.S.YCSBTuples)

	db, err := r.occPreload(kind, writers)
	if err != nil {
		return zero, 0, 0, err
	}
	e := db.Engine(0)
	sr, okSR := e.(core.SnapshotReader)
	vp, okVP := e.(core.OccValidatorProvider)
	if !okSR || !okVP {
		return zero, 0, 0, fmt.Errorf("engine %s lacks the MVCC substrate", kind)
	}
	schemas := db.Schemas()

	// Round-robin shard the schedule; queues[w] holds op indices.
	queues := make([][]int, writers)
	for i := 0; i < ops; i++ {
		queues[i%writers] = append(queues[i%writers], i)
	}
	execClock := make([]time.Duration, writers)
	var commitClock time.Duration
	var conflicts int64

	// Bulk-synchronous rounds: execute one txn per writer against pinned
	// snapshots, then commit the round serially; losers retry next round.
	pending := make([]*core.OccTxn, writers)
	heads := make([]int, writers)
	stalled := 0 // consecutive rounds with zero commits: livelock guard
	var lastConflict error
	for {
		work := false
		progressed := false
		for w := 0; w < writers; w++ {
			if heads[w] >= len(queues[w]) {
				continue
			}
			work = true
			key := keys[queues[w][heads[w]]]
			start := time.Now()
			ot := core.NewOccTxn(sr.SnapshotView(), string(kind), schemas)
			row, ok, err := ot.Get("t", key)
			if err == nil && !ok {
				err = fmt.Errorf("preloaded key %d missing", key)
			}
			if err == nil {
				spin := occSpin(key)
				err = ot.Update("t", key, core.Update{Cols: []int{1},
					Vals: []core.Value{core.IntVal(row[1].I + 1 + int64(spin&1))}})
			}
			execClock[w] += time.Since(start)
			if err != nil {
				ot.Close()
				return zero, 0, 0, fmt.Errorf("w%d op: %w", w, err)
			}
			pending[w] = ot
		}
		if !work {
			break
		}
		for w := 0; w < writers; w++ {
			ot := pending[w]
			if ot == nil {
				continue
			}
			pending[w] = nil
			start := time.Now()
			verr := ot.Validate(vp.OccValidator())
			if verr == nil {
				verr = ot.Apply(e)
			}
			commitClock += time.Since(start)
			ot.Close()
			switch {
			case verr == nil:
				heads[w]++
				progressed = true
			case core.IsRetryable(verr):
				conflicts++ // retry the same op next round
				lastConflict = verr
			default:
				return zero, 0, 0, fmt.Errorf("w%d commit: %w", w, verr)
			}
		}
		// The round's durability barrier: one fsync covers every commit of
		// the round and publishes them, so next round's snapshots see them.
		start := time.Now()
		if err := e.Flush(); err != nil {
			return zero, 0, 0, fmt.Errorf("round flush: %w", err)
		}
		commitClock += time.Since(start)
		if progressed {
			stalled = 0
		} else if stalled++; stalled > 1000 {
			// A round where every writer conflicts can happen under
			// contention, but 1000 in a row means validation can never
			// succeed — surface the livelock instead of spinning.
			return zero, 0, 0, fmt.Errorf("livelock: 1000 rounds without a commit (last: %v)", lastConflict)
		}
	}

	slowest := time.Duration(0)
	for _, d := range execClock {
		if d > slowest {
			slowest = d
		}
	}
	wall := commitClock + slowest

	var digest uint64
	if err := e.ScanRange("t", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
		digest ^= mvccFold(int(pk), uint64(row[1].I)<<1|1)
		return true
	}); err != nil {
		return zero, 0, 0, err
	}

	return Measurement{
		Engine: kind, Mix: mix, Skew: fmt.Sprintf("w%d", writers), Latency: "dram",
		Throughput: float64(ops) / wall.Seconds(), Elapsed: wall,
	}, digest, conflicts, nil
}

// occLive pushes the zipfian RMW mix through a real serve.Runtime with four
// optimistic writers and eight concurrent clients, and reports measured
// throughput, submit→ack p99, and the conflict count the supervisor
// absorbed — the tail-latency-under-contention headline.
func (r *Runner) occLive(kind testbed.EngineKind) (Measurement, time.Duration, int64, error) {
	var zero Measurement
	ops := r.S.YCSBTxns / 4
	keys := occKeys("zipfian", r.S.Seed+1, ops, r.S.YCSBTuples)

	// Durable-at-commit (group 1): every commit publishes immediately, so a
	// conflict retry runs against a fresh frontier. Deferred group publishes
	// would let eight clients thrash the hot key against stale snapshots,
	// each retry re-paying the full compute spin.
	db, err := r.occPreload(kind, 1)
	if err != nil {
		return zero, 0, 0, err
	}
	rt := serve.New(db, serve.Config{Writers: 4, Seed: r.S.Seed, QueueDepth: 64})

	var next atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	start := time.Now()
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= ops {
					return
				}
				key := keys[i]
				txn := func(e core.Engine) error {
					row, ok, err := e.Get("t", key)
					if err != nil {
						return err
					}
					if !ok {
						return fmt.Errorf("key %d missing", key)
					}
					spin := occSpin(key)
					return e.Update("t", key, core.Update{Cols: []int{1},
						Vals: []core.Value{core.IntVal(row[1].I + 1 + int64(spin&1))}})
				}
				for attempt := 0; ; attempt++ {
					err := rt.SubmitPart(context.Background(), 0, txn)
					if err == nil {
						break
					}
					if core.IsRetryable(err) && attempt < 50 {
						continue
					}
					errCh <- fmt.Errorf("op %d: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	stats := rt.Stats()
	snap := rt.Metrics().Snapshot()
	if err := rt.Close(); err != nil {
		return zero, 0, 0, err
	}
	select {
	case err := <-errCh:
		return zero, 0, 0, err
	default:
	}
	p99 := time.Duration(snap.Histograms["serve_part00_ack_ns"].P99NS)
	return Measurement{
		Engine: kind, Mix: "zipfian", Skew: "live", Latency: "dram",
		Throughput: float64(ops) / wall.Seconds(), Elapsed: wall,
	}, p99, stats.Conflicts, nil
}
