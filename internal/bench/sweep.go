package bench

import (
	"time"

	"nstore/internal/nvm"
	"nstore/internal/testbed"
	"nstore/internal/workload/ycsb"
)

// NodeSizeResult holds Fig. 15 (Appendix B): throughput of the NVM-aware
// engines as a function of B+tree / CoW B+tree node size.
type NodeSizeResult struct {
	// Throughput[engine][mix][nodeSize]
	Throughput map[testbed.EngineKind]map[string]map[int]float64
	Sizes      map[testbed.EngineKind][]int
}

// NodeSize reproduces Fig. 15: YCSB under the low-NVM-latency (2x) and
// low-skew setting, sweeping the index node size.
func (r *Runner) NodeSize() (*NodeSizeResult, error) {
	res := &NodeSizeResult{
		Throughput: make(map[testbed.EngineKind]map[string]map[int]float64),
		Sizes: map[testbed.EngineKind][]int{
			testbed.NVMInP: {128, 256, 512, 1024, 2048},
			testbed.NVMCoW: {1024, 2048, 4096, 8192, 16384},
			testbed.NVMLog: {128, 256, 512, 1024, 2048},
		},
	}
	mixes := []ycsb.Mix{ycsb.ReadOnly, ycsb.ReadHeavy, ycsb.Balanced, ycsb.WriteHeavy}
	for _, kind := range []testbed.EngineKind{testbed.NVMInP, testbed.NVMCoW, testbed.NVMLog} {
		res.Throughput[kind] = make(map[string]map[int]float64)
		for _, mix := range mixes {
			res.Throughput[kind][mix.Name] = make(map[int]float64)
		}
		for _, size := range res.Sizes[kind] {
			opts := r.S.Options
			if kind == testbed.NVMCoW {
				opts.CowPageSize = size
			} else {
				opts.BTreeNodeSize = size
			}
			for _, mix := range mixes {
				cfg := r.ycsbCfg(mix, ycsb.LowSkew)
				db, err := testbed.New(testbed.Config{
					Engine:     kind,
					Partitions: r.S.Partitions,
					Env:        r.envCfg(nvm.ProfileLowNVM),
					Options:    opts,
					Schemas:    ycsb.Schema(cfg),
				})
				if err != nil {
					return nil, err
				}
				if err := ycsb.Load(db, cfg); err != nil {
					return nil, err
				}
				db.ResetStats()
				out, err := db.ExecuteSequential(ycsb.Generate(cfg))
				if err != nil {
					return nil, err
				}
				res.Throughput[kind][mix.Name][size] = out.Throughput()
			}
		}
	}

	r.section("Fig. 15 — B+tree node size sensitivity (YCSB, 2x latency, low skew; txn/sec)")
	for _, kind := range []testbed.EngineKind{testbed.NVMInP, testbed.NVMCoW, testbed.NVMLog} {
		r.printf("\n%s:\n", kind)
		w := r.tab()
		fprintf(w, "node(B)")
		for _, mix := range mixes {
			fprintf(w, "\t%s", mix.Name)
		}
		fprintf(w, "\n")
		for _, size := range res.Sizes[kind] {
			fprintf(w, "%d", size)
			for _, mix := range mixes {
				fprintf(w, "\t%s", human(res.Throughput[kind][mix.Name][size]))
			}
			fprintf(w, "\n")
		}
		w.Flush()
	}
	return res, nil
}

// SyncLatResult holds Fig. 16 (Appendix C): NVM-aware engine throughput as
// the sync-primitive latency grows (emulating PCOMMIT-class instructions).
type SyncLatResult struct {
	Latencies []time.Duration // 0 = current CLFLUSH+SFENCE primitive
	// Throughput[engine][mix][latencyIdx]
	Throughput map[testbed.EngineKind]map[string][]float64
}

// SyncLatency reproduces Fig. 16: YCSB at 2x latency and low skew, sweeping
// the sync primitive's cost from the current baseline to 10 us.
func (r *Runner) SyncLatency() (*SyncLatResult, error) {
	res := &SyncLatResult{
		Latencies:  []time.Duration{0, 10 * time.Nanosecond, 100 * time.Nanosecond, 1000 * time.Nanosecond, 10000 * time.Nanosecond},
		Throughput: make(map[testbed.EngineKind]map[string][]float64),
	}
	mixes := []ycsb.Mix{ycsb.ReadOnly, ycsb.ReadHeavy, ycsb.Balanced, ycsb.WriteHeavy}
	for _, kind := range []testbed.EngineKind{testbed.NVMInP, testbed.NVMCoW, testbed.NVMLog} {
		res.Throughput[kind] = make(map[string][]float64)
		for _, mix := range mixes {
			cfg := r.ycsbCfg(mix, ycsb.LowSkew)
			db, err := testbed.New(testbed.Config{
				Engine:     kind,
				Partitions: r.S.Partitions,
				Env:        r.envCfg(nvm.ProfileLowNVM),
				Options:    r.S.Options,
				Schemas:    ycsb.Schema(cfg),
			})
			if err != nil {
				return nil, err
			}
			if err := ycsb.Load(db, cfg); err != nil {
				return nil, err
			}
			work := ycsb.Generate(cfg)
			if _, err := db.ExecuteSequential(work); err != nil {
				return nil, err
			}
			for _, lat := range res.Latencies {
				db.SetSyncExtra(lat)
				db.ResetStats()
				out, err := db.ExecuteSequential(work)
				if err != nil {
					return nil, err
				}
				res.Throughput[kind][mix.Name] = append(res.Throughput[kind][mix.Name], out.Throughput())
			}
		}
	}

	r.section("Fig. 16 — sync primitive latency sensitivity (YCSB, 2x latency, low skew; txn/sec)")
	for _, kind := range []testbed.EngineKind{testbed.NVMInP, testbed.NVMCoW, testbed.NVMLog} {
		r.printf("\n%s:\n", kind)
		w := r.tab()
		fprintf(w, "sync-lat")
		for _, mix := range mixes {
			fprintf(w, "\t%s", mix.Name)
		}
		fprintf(w, "\n")
		for li, lat := range res.Latencies {
			name := "current"
			if lat > 0 {
				name = lat.String()
			}
			fprintf(w, "%s", name)
			for _, mix := range mixes {
				fprintf(w, "\t%s", human(res.Throughput[kind][mix.Name][li]))
			}
			fprintf(w, "\n")
		}
		w.Flush()
	}
	return res, nil
}
