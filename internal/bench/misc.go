package bench

import (
	"nstore/internal/core"
	"nstore/internal/costmodel"
	"nstore/internal/nvm"
	"nstore/internal/testbed"
	"nstore/internal/workload/tpcc"
	"nstore/internal/workload/ycsb"
)

// BreakdownResult holds Fig. 13: the share of execution time spent in each
// engine component (storage / recovery / index / other), per mixture.
type BreakdownResult struct {
	// Shares[mix][engine] = fractions summing to 1.
	Shares map[string]map[testbed.EngineKind]core.Breakdown
}

// Breakdown reproduces Fig. 13 (YCSB, low skew, low NVM latency).
func (r *Runner) Breakdown() (*BreakdownResult, error) {
	res := &BreakdownResult{Shares: make(map[string]map[testbed.EngineKind]core.Breakdown)}
	for _, mix := range ycsb.Mixes {
		res.Shares[mix.Name] = make(map[testbed.EngineKind]core.Breakdown)
		cfg := r.ycsbCfg(mix, ycsb.LowSkew)
		work := ycsb.Generate(cfg)
		for _, kind := range r.S.Engines {
			db, err := r.newYCSBDB(kind, cfg)
			if err != nil {
				return nil, err
			}
			db.SetLatency(nvm.ProfileLowNVM)
			before := db.Breakdown()
			if _, err := db.ExecuteSequential(work); err != nil {
				return nil, err
			}
			if err := db.Flush(); err != nil {
				return nil, err
			}
			after := db.Breakdown()
			res.Shares[mix.Name][kind] = core.Breakdown{
				Storage:  after.Storage - before.Storage,
				Recovery: after.Recovery - before.Recovery,
				Index:    after.Index - before.Index,
				Other:    after.Other - before.Other,
			}
		}
	}

	r.section("Fig. 13 — execution time breakdown (% storage/recovery/index)")
	w := r.tab()
	fprintf(w, "engine")
	for _, mix := range ycsb.Mixes {
		fprintf(w, "\t%s", mix.Name)
	}
	fprintf(w, "\n")
	for _, kind := range r.S.Engines {
		fprintf(w, "%s", kind)
		for _, mix := range ycsb.Mixes {
			b := res.Shares[mix.Name][kind]
			t := b.Total()
			if t == 0 {
				fprintf(w, "\t-")
				continue
			}
			fprintf(w, "\t%.0f/%.0f/%.0f",
				100*float64(b.Storage)/float64(t),
				100*float64(b.Recovery)/float64(t),
				100*float64(b.Index)/float64(t))
		}
		fprintf(w, "\n")
	}
	w.Flush()
	return res, nil
}

// FootprintResult holds Fig. 14: storage occupied by engine component.
type FootprintResult struct {
	YCSB map[testbed.EngineKind]core.Footprint
	TPCC map[testbed.EngineKind]core.Footprint
}

// Footprint reproduces Fig. 14 (balanced YCSB at low skew, and TPC-C).
func (r *Runner) Footprint() (*FootprintResult, error) {
	res := &FootprintResult{
		YCSB: make(map[testbed.EngineKind]core.Footprint),
		TPCC: make(map[testbed.EngineKind]core.Footprint),
	}
	ycfg := r.ycsbCfg(ycsb.Balanced, ycsb.LowSkew)
	ywork := ycsb.Generate(ycfg)
	for _, kind := range r.S.Engines {
		db, err := r.newYCSBDB(kind, ycfg)
		if err != nil {
			return nil, err
		}
		if _, err := db.ExecuteSequential(ywork); err != nil {
			return nil, err
		}
		if err := db.Flush(); err != nil {
			return nil, err
		}
		checkpointAll(db)
		res.YCSB[kind] = db.Footprint()
	}
	tcfg := r.tpccCfg()
	twork := tpcc.Generate(tcfg)
	for _, kind := range r.S.Engines {
		db, err := r.newTPCCDB(kind, tcfg)
		if err != nil {
			return nil, err
		}
		if _, err := db.ExecuteSequential(twork); err != nil {
			return nil, err
		}
		if err := db.Flush(); err != nil {
			return nil, err
		}
		checkpointAll(db)
		res.TPCC[kind] = db.Footprint()
	}

	for wi, m := range []map[testbed.EngineKind]core.Footprint{res.YCSB, res.TPCC} {
		r.section("Fig. 14 — storage footprint (" + []string{"YCSB", "TPC-C"}[wi] + ")")
		w := r.tab()
		fprintf(w, "engine\ttable\tindex\tlog\tcheckpoint\tother\ttotal\n")
		for _, kind := range r.S.Engines {
			f := m[kind]
			fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", kind,
				humanBytes(f.Table), humanBytes(f.Index), humanBytes(f.Log),
				humanBytes(f.Checkpoint), humanBytes(f.Other), humanBytes(f.Total()))
		}
		w.Flush()
	}
	return res, nil
}

// CostModel prints Table 3 (the analytical write-cost model) alongside
// measured bytes written per operation on the live engines.
func (r *Runner) CostModel() error {
	p := costmodel.DefaultParams()
	r.section("Table 3 — analytical bytes written to NVM per operation (model)")
	w := r.tab()
	fprintf(w, "engine\tinsert(mem/log/table)\tupdate\tdelete\n")
	for _, e := range costmodel.Engines {
		fprintf(w, "%s", e)
		for _, op := range []costmodel.Op{costmodel.Insert, costmodel.Update, costmodel.Delete} {
			c := costmodel.Of(e, op, p)
			fprintf(w, "\t%d/%d/%d=%d", c.Memory, c.Log, c.Table, c.Total())
		}
		fprintf(w, "\n")
	}
	w.Flush()

	// Measured: bytes written per op on a small single-partition database.
	r.section("Table 3 — measured bytes written per operation")
	w = r.tab()
	fprintf(w, "engine\tinsert\tupdate\tdelete\tmodel(ins/upd/del)\n")
	schema := ycsb.Schema(ycsb.Config{Fields: 10, FieldSize: 100})
	const ops = 400
	for _, kind := range r.S.Engines {
		env := core.NewEnv(core.EnvConfig{DeviceSize: 256 << 20})
		db, err := testbed.New(testbed.Config{
			Engine: kind, Partitions: 1,
			Env:     core.EnvConfig{DeviceSize: 256 << 20},
			Options: r.S.Options, Schemas: schema,
		})
		if err != nil {
			return err
		}
		_ = env
		eng := db.Engine(0)
		cfgLoad := ycsb.Config{Tuples: 2000, Partitions: 1, Seed: 3}
		if err := ycsb.Load(db, cfgLoad); err != nil {
			return err
		}
		measure := func(fn func(i int) error) (int64, error) {
			if err := db.Flush(); err != nil {
				return 0, err
			}
			before := db.Stats().BytesWritten
			for i := 0; i < ops; i++ {
				if err := eng.Begin(); err != nil {
					return 0, err
				}
				if err := fn(i); err != nil {
					return 0, err
				}
				if err := eng.Commit(); err != nil {
					return 0, err
				}
			}
			if err := db.Flush(); err != nil {
				return 0, err
			}
			return int64(db.Stats().BytesWritten-before) / ops, nil
		}
		val := make([]byte, 100)
		ins, err := measure(func(i int) error {
			row := []core.Value{core.IntVal(int64(10000 + i))}
			for j := 0; j < 10; j++ {
				row = append(row, core.BytesVal(val))
			}
			return eng.Insert(ycsb.TableName, uint64(10000+i), row)
		})
		if err != nil {
			return err
		}
		upd, err := measure(func(i int) error {
			return eng.Update(ycsb.TableName, uint64(10000+i), core.Update{
				Cols: []int{1}, Vals: []core.Value{core.BytesVal(val)},
			})
		})
		if err != nil {
			return err
		}
		del, err := measure(func(i int) error {
			return eng.Delete(ycsb.TableName, uint64(10000+i))
		})
		if err != nil {
			return err
		}
		me := costmodel.Engine(kind)
		fprintf(w, "%s\t%d\t%d\t%d\t%d/%d/%d\n", kind, ins, upd, del,
			costmodel.Of(me, costmodel.Insert, p).Total(),
			costmodel.Of(me, costmodel.Update, p).Total(),
			costmodel.Of(me, costmodel.Delete, p).Total())
	}
	w.Flush()
	return nil
}

// checkpointAll triggers a checkpoint on engines that support one, so the
// footprint report includes the checkpoint component (Fig. 14).
func checkpointAll(db *testbed.DB) {
	for i := 0; i < db.Partitions(); i++ {
		if ck, ok := db.Engine(i).(interface{ Checkpoint() error }); ok {
			ck.Checkpoint()
		}
	}
}

func profileByName(s Scale, name string) nvm.Profile {
	for _, p := range s.Latencies {
		if p.Name == name {
			return p
		}
	}
	return nvm.ProfileDRAM
}
