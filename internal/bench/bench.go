// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§5 and appendices) on the emulated NVM
// device, printing paper-style rows and returning structured results so
// tests can assert the qualitative shapes (who wins, by roughly what
// factor, where the crossovers fall).
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/testbed"
	"nstore/internal/workload/tpcc"
	"nstore/internal/workload/ycsb"
)

// Scale sizes the experiments. The paper's full scale (2M tuples, 8M txns,
// 8 warehouses with 100k items) is reachable by raising these knobs; the
// defaults complete quickly on a laptop while preserving relative shapes.
type Scale struct {
	Partitions int
	DeviceSize int64
	// CacheSize is the simulated CPU cache per partition. The paper's ratio
	// is ~1% of the database (20 MB L3 vs 2 GB); keep the cache well below
	// the per-partition working set or latency configs have no effect.
	CacheSize int

	YCSBTuples int
	YCSBTxns   int

	TPCCWarehouses int
	TPCCCustomers  int
	TPCCItems      int
	TPCCTxns       int

	// RecoveryTxns are the transaction counts of Fig. 12's x-axis.
	RecoveryTxns []int

	Engines   []testbed.EngineKind
	Latencies []nvm.Profile

	Options core.Options
	Seed    int64
}

// SmallScale completes the full suite in a couple of minutes.
func SmallScale() Scale {
	return Scale{
		Partitions:     4,
		DeviceSize:     512 << 20,
		CacheSize:      128 << 10,
		YCSBTuples:     20000,
		YCSBTxns:       20000,
		TPCCWarehouses: 4,
		TPCCCustomers:  100,
		TPCCItems:      500,
		TPCCTxns:       4000,
		RecoveryTxns:   []int{1000, 4000, 16000},
		Engines:        testbed.Kinds,
		Latencies:      nvm.Profiles,
		Options:        core.Options{MemTableCap: 512},
		Seed:           42,
	}
}

// MediumScale approaches the paper's configuration more closely.
func MediumScale() Scale {
	s := SmallScale()
	s.Partitions = 8
	s.DeviceSize = 1 << 30
	s.CacheSize = 512 << 10
	s.YCSBTuples = 200000
	s.YCSBTxns = 200000
	s.TPCCWarehouses = 8
	s.TPCCCustomers = 500
	s.TPCCItems = 2000
	s.TPCCTxns = 40000
	s.RecoveryTxns = []int{1000, 10000, 100000}
	return s
}

// Runner executes experiments and writes paper-style tables to W.
type Runner struct {
	S Scale
	W io.Writer
}

// New creates a runner.
func New(s Scale, w io.Writer) *Runner {
	if s.Options.CheckpointEvery == 0 && s.Partitions > 0 {
		// The paper's InP engine checkpoints periodically (§3.1); at these
		// scaled-down run lengths a full-database gzip would dominate, so
		// fire roughly once per measured run's writes.
		ck := s.YCSBTxns / s.Partitions * 2 / 5
		if ck < 1000 {
			ck = 1000
		}
		s.Options.CheckpointEvery = ck
	}
	return &Runner{S: s, W: w}
}

func (r *Runner) printf(format string, args ...interface{}) {
	fmt.Fprintf(r.W, format, args...)
}

func (r *Runner) section(title string) {
	fmt.Fprintf(r.W, "\n=== %s ===\n", title)
}

func (r *Runner) tab() *tabwriter.Writer {
	return tabwriter.NewWriter(r.W, 2, 4, 2, ' ', 0)
}

// ycsbEnvCfg builds per-partition storage sized for the YCSB scale.
func (r *Runner) envCfg(profile nvm.Profile) core.EnvConfig {
	return core.EnvConfig{
		DeviceSize: r.S.DeviceSize / int64(r.S.Partitions),
		Profile:    profile,
		FSExtent:   512 << 10,
		CacheSize:  r.S.CacheSize,
	}
}

// newYCSBDB creates and loads a YCSB database for the engine.
func (r *Runner) newYCSBDB(kind testbed.EngineKind, cfg ycsb.Config) (*testbed.DB, error) {
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: r.S.Partitions,
		Env:        r.envCfg(nvm.ProfileDRAM),
		Options:    r.S.Options,
		Schemas:    ycsb.Schema(cfg),
	})
	if err != nil {
		return nil, err
	}
	if err := ycsb.Load(db, cfg); err != nil {
		return nil, err
	}
	return db, nil
}

func (r *Runner) ycsbCfg(mix ycsb.Mix, skew ycsb.Skew) ycsb.Config {
	return ycsb.Config{
		Tuples:     r.S.YCSBTuples,
		Txns:       r.S.YCSBTxns,
		Partitions: r.S.Partitions,
		Mix:        mix,
		Skew:       skew,
		Seed:       r.S.Seed,
	}
}

func (r *Runner) tpccCfg() tpcc.Config {
	return tpcc.Config{
		Warehouses: r.S.TPCCWarehouses,
		Customers:  r.S.TPCCCustomers,
		Items:      r.S.TPCCItems,
		Txns:       r.S.TPCCTxns,
		Partitions: r.S.Partitions,
		Seed:       r.S.Seed,
	}
}

// newTPCCDB creates and loads a TPC-C database for the engine.
func (r *Runner) newTPCCDB(kind testbed.EngineKind, cfg tpcc.Config) (*testbed.DB, error) {
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: r.S.Partitions,
		Env:        r.envCfg(nvm.ProfileDRAM),
		Options:    r.S.Options,
		Schemas:    tpcc.Schemas(),
	})
	if err != nil {
		return nil, err
	}
	if err := tpcc.Load(db, cfg); err != nil {
		return nil, err
	}
	return db, nil
}

// Measurement is one (engine, configuration) data point.
type Measurement struct {
	Engine       testbed.EngineKind
	Mix          string
	Skew         string
	Latency      string
	Throughput   float64
	Loads        uint64
	Stores       uint64
	BytesRead    uint64
	BytesWritten uint64
	Elapsed      time.Duration
}

// All runs the complete experiment suite in the paper's order.
func (r *Runner) All() error {
	steps := []struct {
		name string
		fn   func() error
	}{
		{"fig1", func() error { _, err := r.Fig1(); return err }},
		{"ycsb", func() error { _, err := r.YCSB(); return err }},
		{"tpcc", func() error { _, err := r.TPCC(); return err }},
		{"recovery", func() error { _, err := r.Recovery(); return err }},
		{"breakdown", func() error { _, err := r.Breakdown(); return err }},
		{"footprint", func() error { _, err := r.Footprint(); return err }},
		{"costmodel", func() error { return r.CostModel() }},
		{"nodesize", func() error { _, err := r.NodeSize(); return err }},
		{"synclat", func() error { _, err := r.SyncLatency(); return err }},
	}
	for _, s := range steps {
		if err := s.fn(); err != nil {
			return fmt.Errorf("bench: %s: %w", s.name, err)
		}
	}
	return nil
}
