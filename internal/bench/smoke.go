package bench

import (
	"fmt"

	"nstore/internal/nvm"
	"nstore/internal/workload/ycsb"
)

// SmokeScale is the tiny configuration behind `nvbench -short`: one quick
// pass per engine, small enough for a CI smoke lane, big enough that the
// NVM counters are non-trivial.
func SmokeScale() Scale {
	s := SmallScale()
	s.Partitions = 2
	s.DeviceSize = 128 << 20
	s.YCSBTuples = 2000
	s.YCSBTxns = 2000
	s.Latencies = []nvm.Profile{nvm.ProfileDRAM}
	return s
}

// Smoke runs a single balanced/low-skew YCSB configuration per engine at
// the runner's scale and returns the measurements (for WriteSnapshot).
func (r *Runner) Smoke() ([]Measurement, error) {
	var mix ycsb.Mix
	for _, m := range ycsb.Mixes {
		if m.Name == "balanced" {
			mix = m
		}
	}
	if mix.Name == "" {
		return nil, fmt.Errorf("bench: smoke: no balanced mix")
	}
	cfg := r.ycsbCfg(mix, ycsb.LowSkew)
	work := ycsb.Generate(cfg)

	r.section("smoke — YCSB balanced/low @dram")
	var ms []Measurement
	for _, kind := range r.S.Engines {
		db, err := r.newYCSBDB(kind, cfg)
		if err != nil {
			return nil, err
		}
		db.ResetStats()
		out, err := db.ExecuteSequential(work)
		if err != nil {
			return nil, fmt.Errorf("bench: smoke: %s: %w", kind, err)
		}
		if err := db.Flush(); err != nil {
			return nil, fmt.Errorf("bench: smoke: %s: flush: %w", kind, err)
		}
		m := Measurement{
			Engine:       kind,
			Mix:          mix.Name,
			Skew:         ycsb.LowSkew.Name,
			Latency:      nvm.ProfileDRAM.Name,
			Throughput:   out.Throughput(),
			Loads:        out.Stats.Loads,
			Stores:       out.Stats.Stores,
			BytesRead:    out.Stats.BytesRead,
			BytesWritten: out.Stats.BytesWritten,
			Elapsed:      out.Elapsed,
		}
		ms = append(ms, m)
		r.printf("%s: %s txn/sec (%d stores, %.1f MB written)\n",
			kind, human(m.Throughput), m.Stores, float64(m.BytesWritten)/(1<<20))
	}
	return ms, nil
}
