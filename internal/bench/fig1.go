package bench

import (
	"math/rand"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
	"nstore/internal/pmfs"
)

// Fig1Result holds the interface-comparison microbenchmark (Fig. 1):
// durable write bandwidth (MB/s of wall+stall time) by chunk size, for the
// allocator and filesystem interfaces, sequential and random.
type Fig1Result struct {
	ChunkSizes []int
	// Bandwidth[interface][pattern][chunkIdx] in MB/s;
	// interface: 0 allocator, 1 filesystem; pattern: 0 seq, 1 random.
	Bandwidth [2][2][]float64
}

// Fig1 reproduces the durable-write-bandwidth comparison of the allocator
// and filesystem interfaces (§2.2).
func (r *Runner) Fig1() (*Fig1Result, error) {
	res := &Fig1Result{ChunkSizes: []int{1, 2, 4, 8, 16, 32, 64, 128, 256}}
	const region = 16 << 20
	const totalWrite = 2 << 20

	for pat := 0; pat < 2; pat++ {
		for _, chunk := range res.ChunkSizes {
			// Allocator interface: durable writes with the sync primitive.
			devA := nvm.NewDevice(nvm.DefaultConfig(64 << 20))
			arena := pmalloc.Format(devA, 0, 64<<20)
			buf := make([]byte, chunk)
			base, err := arena.Alloc(region, pmalloc.TagOther)
			if err != nil {
				return nil, err
			}
			bw, err := measureBandwidth(devA, totalWrite, chunk, pat == 1, func(off int64) {
				devA.Write(int64(base)+off, buf)
				devA.Sync(int64(base)+off, chunk)
			})
			if err != nil {
				return nil, err
			}
			res.Bandwidth[0][pat] = append(res.Bandwidth[0][pat], bw)

			// Filesystem interface: write + fsync through the VFS.
			devF := nvm.NewDevice(nvm.DefaultConfig(64 << 20))
			fs := pmfs.Format(devF, 0, 64<<20, pmfs.Config{ExtentSize: 1 << 20})
			f, err := fs.Create("bench")
			if err != nil {
				return nil, err
			}
			if _, err := f.WriteAt(make([]byte, region), 0); err != nil {
				return nil, err
			}
			if err := f.Sync(); err != nil {
				return nil, err
			}
			bw, err = measureBandwidth(devF, totalWrite, chunk, pat == 1, func(off int64) {
				f.WriteAt(buf, off)
				f.Sync()
			})
			if err != nil {
				return nil, err
			}
			res.Bandwidth[1][pat] = append(res.Bandwidth[1][pat], bw)
		}
	}

	r.section("Fig. 1 — durable write bandwidth: allocator vs filesystem interface (MB/s)")
	for pat, name := range []string{"sequential", "random"} {
		r.printf("\n%s writes:\n", name)
		w := r.tab()
		fprintf(w, "chunk(B)\tallocator\tfilesystem\tratio\n")
		for i, c := range res.ChunkSizes {
			a, f := res.Bandwidth[0][pat][i], res.Bandwidth[1][pat][i]
			fprintf(w, "%d\t%.1f\t%.1f\t%.1fx\n", c, a, f, a/f)
		}
		w.Flush()
	}
	return res, nil
}

// measureBandwidth times durable writes of `total` bytes in `chunk`-sized
// pieces over a region, returning MB/s of wall-plus-stall time.
func measureBandwidth(dev *nvm.Device, total, chunk int, random bool, write func(off int64)) (float64, error) {
	const region = 16 << 20
	rng := rand.New(rand.NewSource(7))
	n := total / chunk
	// Cap the op count: small chunks converge long before 2 MB is written.
	if n > 20000 {
		n = 20000
	}
	if n < 1 {
		n = 1
	}
	stall0 := dev.Stats().Stall
	start := nowFn()
	off := int64(0)
	for i := 0; i < n; i++ {
		if random {
			off = int64(rng.Intn(region - chunk))
		} else {
			off += int64(chunk)
			if off+int64(chunk) >= region {
				off = 0
			}
		}
		write(off)
	}
	elapsed := sinceFn(start) + (dev.Stats().Stall - stall0)
	mb := float64(n*chunk) / (1 << 20)
	return mb / elapsed.Seconds(), nil
}
