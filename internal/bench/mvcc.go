package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/serve"
	"nstore/internal/testbed"
)

// mvccReaderCounts is the x-axis of the read-scaling sweep.
var mvccReaderCounts = []int{1, 2, 4, 8}

// mvccModes are the two read shapes measured: point GETs and 64-key range
// SCANs. They ride in Measurement.Mix, so BENCH_mvcc.json gets one metric
// family per (engine, shape, configuration).
var mvccModes = []string{"get", "scan"}

const mvccScanSpan = 64

// MVCCResult holds the read-scaling sweep (BENCH_mvcc.json).
type MVCCResult struct {
	Points []Measurement
	// Speedup[engine][mode] is throughput at 4 readers over 1 reader.
	Speedup map[testbed.EngineKind]map[string]float64
}

// MVCC measures what the intra-partition MVCC read path buys on a single
// hot partition. For each engine it preloads one partition, then runs the
// same deterministic GET and SCAN schedules four ways:
//
//   - "exec": every read is a transaction through the serial executor —
//     the pre-MVCC serving path, where GET/SCAN queue behind the
//     single-owner write pipeline and touch the device.
//   - "rN" (N in 1,2,4,8): the schedule is sharded round-robin across N
//     snapshot readers. Each shard pins a fresh read view per op (exactly
//     what the serve reader pool does) and is measured back to back on the
//     calling goroutine; the effective time is the slowest shard — the same
//     modeled-parallelism convention as ExecuteSequential and the recovery
//     sweep, since readers share no mutable state beyond the oracle's
//     pin/unpin.
//   - "pool": the whole schedule pushed concurrently through a live
//     serve.Runtime reader pool (4 readers), validating the real
//     channel-fed path end to end.
//
// Every configuration folds an order-independent digest of its results;
// all of them must equal the executor baseline's digest — a snapshot read
// returns exactly what the serial executor would have returned.
func (r *Runner) MVCC() (*MVCCResult, error) {
	r.section("mvcc — snapshot GET/SCAN scaling on a single hot partition")
	res := &MVCCResult{Speedup: make(map[testbed.EngineKind]map[string]float64)}
	for _, kind := range r.S.Engines {
		res.Speedup[kind] = make(map[string]float64)
		for _, mode := range mvccModes {
			ms, err := r.mvccOne(kind, mode)
			if err != nil {
				return nil, fmt.Errorf("bench: mvcc: %s/%s: %w", kind, mode, err)
			}
			res.Points = append(res.Points, ms...)
			var r1, r4 float64
			for _, m := range ms {
				switch m.Skew {
				case "r1":
					r1 = m.Throughput
				case "r4":
					r4 = m.Throughput
				}
			}
			if r1 > 0 {
				res.Speedup[kind][mode] = r4 / r1
			}
		}
	}

	w := r.tab()
	fprintf(w, "engine\tshape\texec\tr1\tr2\tr4\tr8\tpool\tr4/r1\n")
	for _, kind := range r.S.Engines {
		for _, mode := range mvccModes {
			fprintf(w, "%s\t%s", kind, mode)
			for _, skew := range []string{"exec", "r1", "r2", "r4", "r8", "pool"} {
				for _, m := range res.Points {
					if m.Engine == kind && m.Mix == mode && m.Skew == skew {
						fprintf(w, "\t%s", human(m.Throughput))
					}
				}
			}
			fprintf(w, "\t%.2fx\n", res.Speedup[kind][mode])
		}
	}
	w.Flush()
	return res, nil
}

func mvccSchemas() []*core.Schema {
	return []*core.Schema{{
		Name:    "t",
		Columns: []core.Column{{Name: "id", Type: core.TInt}, {Name: "v", Type: core.TInt}},
	}}
}

// mvccKey is the deterministic op → key mapping (SplitMix-style scramble).
func mvccKey(i int, seed int64, tuples int) uint64 {
	h := uint64(i)*0x9E3779B97F4A7C15 + uint64(seed)
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 29
	return h % uint64(tuples)
}

// mvccFold mixes one op's observation into an order-independent digest
// term: XOR-combining the terms is shard- and schedule-order-invariant.
func mvccFold(op int, local uint64) uint64 {
	h := uint64(op)<<32 ^ local
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

func (r *Runner) mvccOne(kind testbed.EngineKind, mode string) ([]Measurement, error) {
	tuples := r.S.YCSBTuples
	ops := r.S.YCSBTxns
	if mode == "scan" {
		ops /= 8 // a scan visits mvccScanSpan rows; keep runtimes comparable
	}

	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: 1, // the hot partition
		Env:        r.envCfg(nvm.ProfileDRAM),
		Options:    r.S.Options,
		Schemas:    mvccSchemas(),
	})
	if err != nil {
		return nil, err
	}
	load := make([]testbed.Txn, 0, tuples/64+1)
	for lo := 0; lo < tuples; lo += 64 {
		lo := lo
		hi := lo + 64
		if hi > tuples {
			hi = tuples
		}
		load = append(load, func(e core.Engine) error {
			for k := lo; k < hi; k++ {
				row := []core.Value{core.IntVal(int64(k)), core.IntVal(int64(k)*7 + 3)}
				if err := e.Insert("t", uint64(k), row); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if _, err := db.ExecuteSequential([][]testbed.Txn{load}); err != nil {
		return nil, err
	}
	if err := db.Flush(); err != nil { // durability barrier: publish to the version store
		return nil, err
	}

	// opOn runs op i against any reader (an engine on the executor path, a
	// pinned view on the snapshot path) and returns its digest term.
	type reader interface {
		Get(table string, key uint64) ([]core.Value, bool, error)
		ScanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error
	}
	opOn := func(rd reader, i int) (uint64, error) {
		k := mvccKey(i, r.S.Seed, tuples)
		if mode == "get" {
			row, ok, err := rd.Get("t", k)
			if err != nil {
				return 0, err
			}
			if !ok {
				return 0, fmt.Errorf("op %d: preloaded key %d missing", i, k)
			}
			return mvccFold(i, k<<1^uint64(row[1].I)), nil
		}
		var local uint64
		if err := rd.ScanRange("t", k, k+mvccScanSpan, func(pk uint64, row []core.Value) bool {
			local = local*0x100000001B3 ^ pk ^ uint64(row[1].I)<<17
			return true
		}); err != nil {
			return 0, err
		}
		return mvccFold(i, local), nil
	}

	var ms []Measurement

	// Executor baseline: one read-only transaction per op through the
	// serial single-owner path, and the reference digest.
	var digestExec uint64
	exec := make([]testbed.Txn, ops)
	for i := range exec {
		i := i
		exec[i] = func(e core.Engine) error {
			term, err := opOn(e, i)
			digestExec ^= term
			return err
		}
	}
	db.ResetStats()
	out, err := db.ExecuteSequential([][]testbed.Txn{exec})
	if err != nil {
		return nil, err
	}
	s := db.Stats()
	ms = append(ms, Measurement{
		Engine: kind, Mix: mode, Skew: "exec", Latency: "dram",
		Throughput: out.Throughput(), Elapsed: out.Elapsed,
		Loads: s.Loads, Stores: s.Stores,
		BytesRead: s.BytesRead, BytesWritten: s.BytesWritten,
	})

	sr, ok := db.Engine(0).(core.SnapshotReader)
	if !ok {
		return nil, fmt.Errorf("engine %s does not serve snapshots", kind)
	}

	// Warm-up: one untimed pass so every configuration measures a warm
	// version store — the first touch pays allocator and cache-miss costs
	// that would otherwise all land on the r1 point.
	for i := 0; i < ops; i++ {
		v := sr.SnapshotView()
		_, err := opOn(v, i)
		v.Close()
		if err != nil {
			return nil, err
		}
	}

	// Read-scaling sweep: shard the schedule round-robin, measure each
	// shard back to back, take the slowest shard as the effective time.
	for _, readers := range mvccReaderCounts {
		var digest uint64
		var slowest time.Duration
		for shard := 0; shard < readers; shard++ {
			start := time.Now()
			for i := shard; i < ops; i += readers {
				v := sr.SnapshotView() // per-op pin, as the reader pool does
				term, err := opOn(v, i)
				v.Close()
				if err != nil {
					return nil, err
				}
				digest ^= term
			}
			if wall := time.Since(start); wall > slowest {
				slowest = wall
			}
		}
		if digest != digestExec {
			return nil, fmt.Errorf("r%d: snapshot digest %016x diverged from executor baseline %016x",
				readers, digest, digestExec)
		}
		ms = append(ms, Measurement{
			Engine: kind, Mix: mode, Skew: fmt.Sprintf("r%d", readers), Latency: "dram",
			Throughput: float64(ops) / slowest.Seconds(), Elapsed: slowest,
		})
	}

	// Live reader pool: the same schedule through serve.Runtime's
	// channel-fed readers, concurrently from twice as many clients.
	rt := serve.New(db, serve.Config{Seed: r.S.Seed, Readers: 4})
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		poolMu  sync.Mutex
		poolDig uint64
		poolErr error
	)
	startPool := time.Now()
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local uint64
			for {
				i := int(next.Add(1)) - 1
				if i >= ops {
					break
				}
				err := rt.ReadPart(context.Background(), 0, func(v core.ReadView) error {
					term, err := opOn(v, i)
					local ^= term
					return err
				})
				if err != nil {
					poolMu.Lock()
					if poolErr == nil {
						poolErr = fmt.Errorf("pool op %d: %w", i, err)
					}
					poolMu.Unlock()
					return
				}
			}
			poolMu.Lock()
			poolDig ^= local
			poolMu.Unlock()
		}()
	}
	wg.Wait()
	poolWall := time.Since(startPool)
	if err := rt.Close(); err != nil {
		return nil, err
	}
	if poolErr != nil {
		return nil, poolErr
	}
	if poolDig != digestExec {
		return nil, fmt.Errorf("pool: snapshot digest %016x diverged from executor baseline %016x",
			poolDig, digestExec)
	}
	ms = append(ms, Measurement{
		Engine: kind, Mix: mode, Skew: "pool", Latency: "dram",
		Throughput: float64(ops) / poolWall.Seconds(), Elapsed: poolWall,
	})
	return ms, nil
}
