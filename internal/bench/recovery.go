package bench

import (
	"fmt"
	"time"

	"nstore/internal/core"
	"nstore/internal/testbed"
	"nstore/internal/workload/tpcc"
	"nstore/internal/workload/ycsb"
)

// RecoveryResult holds Fig. 12: recovery latency as a function of the
// number of transactions executed before the crash.
type RecoveryResult struct {
	Txns []int
	// Latency[workload][engine][txnIdx]; workload: 0 YCSB, 1 TPC-C.
	Latency map[testbed.EngineKind][2][]time.Duration
}

// Recovery reproduces Fig. 12. Checkpointing and MemTable flushing are
// configured off so the traditional engines must replay everything since
// the start, while the NVM-aware engines' latency stays flat.
func (r *Runner) Recovery() (*RecoveryResult, error) {
	res := &RecoveryResult{
		Txns:    r.S.RecoveryTxns,
		Latency: make(map[testbed.EngineKind][2][]time.Duration),
	}
	opts := r.S.Options
	opts.CheckpointEvery = 1 << 30
	opts.MemTableCap = 1 << 30

	for _, kind := range r.S.Engines {
		if kind == testbed.CoW || kind == testbed.NVMCoW {
			// The CoW engines have no recovery process (§3.2, §4.2); they
			// are reported as ~0 like the paper's omission.
			var pair [2][]time.Duration
			for range res.Txns {
				pair[0] = append(pair[0], 0)
				pair[1] = append(pair[1], 0)
			}
			res.Latency[kind] = pair
			continue
		}
		var pair [2][]time.Duration
		for _, n := range res.Txns {
			d, err := r.recoveryYCSB(kind, opts, n)
			if err != nil {
				return nil, err
			}
			pair[0] = append(pair[0], d)
			d, err = r.recoveryTPCC(kind, opts, n)
			if err != nil {
				return nil, err
			}
			pair[1] = append(pair[1], d)
		}
		res.Latency[kind] = pair
	}

	for wi, name := range []string{"YCSB", "TPC-C"} {
		r.section("Fig. 12 — recovery latency (" + name + ")")
		w := r.tab()
		fprintf(w, "engine")
		for _, n := range res.Txns {
			fprintf(w, "\t%d txns", n)
		}
		fprintf(w, "\n")
		for _, kind := range r.S.Engines {
			fprintf(w, "%s", kind)
			for i := range res.Txns {
				fprintf(w, "\t%v", res.Latency[kind][wi][i].Round(10*time.Microsecond))
			}
			fprintf(w, "\n")
		}
		w.Flush()
	}
	return res, nil
}

// RecoverySweepPoint is one (engine, WAL-size) data point of the
// sequential-vs-parallel recovery sweep.
type RecoverySweepPoint struct {
	Engine testbed.EngineKind
	Txns   int
	// Sequential and Parallel model the recovery latency on parallel
	// hardware, the same convention as ExecuteSequential: partitions are
	// recovered one after another on the calling goroutine (stable
	// measurement, no shared-CPU noise), and the effective time is the sum
	// over partitions for the sequential pipeline vs the slowest single
	// partition for the parallel one — partitions share no state during
	// recovery, so on real hardware they recover concurrently.
	Sequential time.Duration
	Parallel   time.Duration
	// Records sums the engines' recovery work units across partitions
	// (parallel pass); Workers is the intra-engine fan-out it ran with.
	Records int64
	Workers int
}

// Speedup is the sequential/parallel wall-clock ratio.
func (p RecoverySweepPoint) Speedup() float64 {
	if p.Parallel <= 0 {
		return 0
	}
	return float64(p.Sequential) / float64(p.Parallel)
}

// RecoverySweepResult holds the recovery sweep (BENCH_recovery.json).
type RecoverySweepResult struct {
	Points []RecoverySweepPoint
}

// RecoverySweep measures crash recovery sequential vs parallel for every
// engine at each Fig. 12 WAL size, asserting that both recoveries converge
// to an identical state digest. Workload: YCSB write-heavy/low-skew, with
// checkpointing and MemTable flushing off so the traditional engines replay
// the full WAL.
func (r *Runner) RecoverySweep() (*RecoverySweepResult, error) {
	opts := r.S.Options
	opts.CheckpointEvery = 1 << 30
	opts.MemTableCap = 1 << 30

	res := &RecoverySweepResult{}
	for _, kind := range r.S.Engines {
		for _, n := range r.S.RecoveryTxns {
			seqStats, seqDig, err := r.recoverMeasured(kind, opts, n, 1)
			if err != nil {
				return nil, err
			}
			parStats, parDig, err := r.recoverMeasured(kind, opts, n, 0)
			if err != nil {
				return nil, err
			}
			if seqDig != parDig {
				return nil, fmt.Errorf("bench: %s at %d txns: sequential and parallel recovery digests differ", kind, n)
			}
			pt := RecoverySweepPoint{Engine: kind, Txns: n}
			for _, s := range seqStats {
				pt.Sequential += s.Wall // sequential pipeline: partitions back to back
			}
			for _, s := range parStats {
				if s.Wall > pt.Parallel {
					pt.Parallel = s.Wall // parallel pipeline: slowest partition
				}
				pt.Records += s.Records
				if s.Workers > pt.Workers {
					pt.Workers = s.Workers
				}
			}
			res.Points = append(res.Points, pt)
		}
	}

	r.section("Recovery sweep — sequential vs parallel (YCSB write-heavy)")
	w := r.tab()
	fprintf(w, "engine\ttxns\tsequential\tparallel\tspeedup\trecords\tworkers\n")
	for _, p := range res.Points {
		fprintf(w, "%s\t%d\t%v\t%v\t%.2fx\t%d\t%d\n",
			p.Engine, p.Txns,
			p.Sequential.Round(10*time.Microsecond), p.Parallel.Round(10*time.Microsecond),
			p.Speedup(), p.Records, p.Workers)
	}
	w.Flush()
	return res, nil
}

// recoverMeasured builds a deterministic YCSB database, executes txns,
// crashes, and recovers partition by partition on the calling goroutine
// (RecoverWith(1) — stable per-partition walls without shared-CPU noise).
// parallelism selects the engines' intra-recovery fan-out: 1 forces fully
// sequential recovery, 0 the bounded CPU default.
func (r *Runner) recoverMeasured(kind testbed.EngineKind, opts core.Options, txns, parallelism int) ([]testbed.RecoveryStat, [32]byte, error) {
	o := opts
	o.RecoveryParallelism = parallelism
	cfg := r.ycsbCfg(ycsb.WriteHeavy, ycsb.LowSkew)
	cfg.Txns = txns
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: r.S.Partitions,
		Env:        r.envCfg(profileByName(r.S, "dram")),
		Options:    o,
		Schemas:    ycsb.Schema(cfg),
	})
	if err != nil {
		return nil, [32]byte{}, err
	}
	if err := ycsb.Load(db, cfg); err != nil {
		return nil, [32]byte{}, err
	}
	if _, err := db.Execute(ycsb.Generate(cfg)); err != nil {
		return nil, [32]byte{}, err
	}
	if err := db.Flush(); err != nil {
		return nil, [32]byte{}, err
	}
	db.Crash()
	if _, err := db.RecoverWith(1); err != nil {
		return nil, [32]byte{}, err
	}
	dig, err := db.StateDigest()
	if err != nil {
		return nil, [32]byte{}, err
	}
	return db.RecoveryStats(), dig, nil
}

func (r *Runner) recoveryYCSB(kind testbed.EngineKind, opts core.Options, txns int) (time.Duration, error) {
	cfg := r.ycsbCfg(ycsb.WriteHeavy, ycsb.LowSkew)
	cfg.Txns = txns
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: r.S.Partitions,
		Env:        r.envCfg(profileByName(r.S, "dram")),
		Options:    opts,
		Schemas:    ycsb.Schema(cfg),
	})
	if err != nil {
		return 0, err
	}
	if err := ycsb.Load(db, cfg); err != nil {
		return 0, err
	}
	if _, err := db.Execute(ycsb.Generate(cfg)); err != nil {
		return 0, err
	}
	if err := db.Flush(); err != nil {
		return 0, err
	}
	db.Crash()
	return db.Recover()
}

func (r *Runner) recoveryTPCC(kind testbed.EngineKind, opts core.Options, txns int) (time.Duration, error) {
	cfg := r.tpccCfg()
	cfg.Txns = txns
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: r.S.Partitions,
		Env:        r.envCfg(profileByName(r.S, "dram")),
		Options:    opts,
		Schemas:    tpcc.Schemas(),
	})
	if err != nil {
		return 0, err
	}
	if err := tpcc.Load(db, cfg); err != nil {
		return 0, err
	}
	if _, err := db.Execute(tpcc.Generate(cfg)); err != nil {
		return 0, err
	}
	if err := db.Flush(); err != nil {
		return 0, err
	}
	db.Crash()
	return db.Recover()
}
