package bench

import (
	"time"

	"nstore/internal/core"
	"nstore/internal/testbed"
	"nstore/internal/workload/tpcc"
	"nstore/internal/workload/ycsb"
)

// RecoveryResult holds Fig. 12: recovery latency as a function of the
// number of transactions executed before the crash.
type RecoveryResult struct {
	Txns []int
	// Latency[workload][engine][txnIdx]; workload: 0 YCSB, 1 TPC-C.
	Latency map[testbed.EngineKind][2][]time.Duration
}

// Recovery reproduces Fig. 12. Checkpointing and MemTable flushing are
// configured off so the traditional engines must replay everything since
// the start, while the NVM-aware engines' latency stays flat.
func (r *Runner) Recovery() (*RecoveryResult, error) {
	res := &RecoveryResult{
		Txns:    r.S.RecoveryTxns,
		Latency: make(map[testbed.EngineKind][2][]time.Duration),
	}
	opts := r.S.Options
	opts.CheckpointEvery = 1 << 30
	opts.MemTableCap = 1 << 30

	for _, kind := range r.S.Engines {
		if kind == testbed.CoW || kind == testbed.NVMCoW {
			// The CoW engines have no recovery process (§3.2, §4.2); they
			// are reported as ~0 like the paper's omission.
			var pair [2][]time.Duration
			for range res.Txns {
				pair[0] = append(pair[0], 0)
				pair[1] = append(pair[1], 0)
			}
			res.Latency[kind] = pair
			continue
		}
		var pair [2][]time.Duration
		for _, n := range res.Txns {
			d, err := r.recoveryYCSB(kind, opts, n)
			if err != nil {
				return nil, err
			}
			pair[0] = append(pair[0], d)
			d, err = r.recoveryTPCC(kind, opts, n)
			if err != nil {
				return nil, err
			}
			pair[1] = append(pair[1], d)
		}
		res.Latency[kind] = pair
	}

	for wi, name := range []string{"YCSB", "TPC-C"} {
		r.section("Fig. 12 — recovery latency (" + name + ")")
		w := r.tab()
		fprintf(w, "engine")
		for _, n := range res.Txns {
			fprintf(w, "\t%d txns", n)
		}
		fprintf(w, "\n")
		for _, kind := range r.S.Engines {
			fprintf(w, "%s", kind)
			for i := range res.Txns {
				fprintf(w, "\t%v", res.Latency[kind][wi][i].Round(10*time.Microsecond))
			}
			fprintf(w, "\n")
		}
		w.Flush()
	}
	return res, nil
}

func (r *Runner) recoveryYCSB(kind testbed.EngineKind, opts core.Options, txns int) (time.Duration, error) {
	cfg := r.ycsbCfg(ycsb.WriteHeavy, ycsb.LowSkew)
	cfg.Txns = txns
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: r.S.Partitions,
		Env:        r.envCfg(profileByName(r.S, "dram")),
		Options:    opts,
		Schemas:    ycsb.Schema(cfg),
	})
	if err != nil {
		return 0, err
	}
	if err := ycsb.Load(db, cfg); err != nil {
		return 0, err
	}
	if _, err := db.Execute(ycsb.Generate(cfg)); err != nil {
		return 0, err
	}
	if err := db.Flush(); err != nil {
		return 0, err
	}
	db.Crash()
	return db.Recover()
}

func (r *Runner) recoveryTPCC(kind testbed.EngineKind, opts core.Options, txns int) (time.Duration, error) {
	cfg := r.tpccCfg()
	cfg.Txns = txns
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: r.S.Partitions,
		Env:        r.envCfg(profileByName(r.S, "dram")),
		Options:    opts,
		Schemas:    tpcc.Schemas(),
	})
	if err != nil {
		return 0, err
	}
	if err := tpcc.Load(db, cfg); err != nil {
		return 0, err
	}
	if _, err := db.Execute(tpcc.Generate(cfg)); err != nil {
		return 0, err
	}
	if err := db.Flush(); err != nil {
		return 0, err
	}
	db.Crash()
	return db.Recover()
}
