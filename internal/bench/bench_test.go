package bench

import (
	"io"
	"testing"
	"time"

	"nstore/internal/nvm"
	"nstore/internal/testbed"
)

// tinyScale keeps harness tests fast while preserving the shapes.
func tinyScale() Scale {
	s := SmallScale()
	s.Partitions = 2
	s.DeviceSize = 256 << 20
	s.YCSBTuples = 4000
	s.YCSBTxns = 4000
	s.TPCCWarehouses = 2
	s.TPCCCustomers = 40
	s.TPCCItems = 100
	s.TPCCTxns = 600
	// A wide spread so replay work dominates the fixed (load-size) part of
	// recovery even when the test runs on a loaded machine.
	s.RecoveryTxns = []int{400, 6400}
	return s
}

func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := New(tinyScale(), io.Discard)
	res, err := r.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// The allocator interface must deliver several-fold higher durable
	// write bandwidth, most prominently at small sequential chunks (§2.2:
	// "10-12x higher write bandwidth than the filesystem").
	for pat := 0; pat < 2; pat++ {
		for i := range res.ChunkSizes {
			a, f := res.Bandwidth[0][pat][i], res.Bandwidth[1][pat][i]
			if a <= f {
				t.Errorf("pattern %d chunk %d: allocator %.1f <= filesystem %.1f",
					pat, res.ChunkSizes[i], a, f)
			}
		}
	}
	small := res.Bandwidth[0][0][0] / res.Bandwidth[1][0][0]
	if small < 4 {
		t.Errorf("small-chunk sequential gap %.1fx, want >= 4x", small)
	}
	// Bandwidth grows with chunk size on both interfaces.
	n := len(res.ChunkSizes)
	if res.Bandwidth[0][0][n-1] < res.Bandwidth[0][0][0] {
		t.Error("allocator bandwidth did not grow with chunk size")
	}
}

func TestYCSBShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := tinyScale()
	s.Latencies = []nvm.Profile{nvm.ProfileDRAM, nvm.ProfileHighNVM}
	r := New(s, io.Discard)
	res, err := r.YCSB()
	if err != nil {
		t.Fatal(err)
	}
	// Every configured point exists and is positive.
	if len(res.Points) == 0 {
		t.Fatal("no measurements")
	}
	for _, p := range res.Points {
		if p.Throughput <= 0 {
			t.Errorf("%s %s/%s/%s: zero throughput", p.Engine, p.Mix, p.Skew, p.Latency)
		}
	}
	// High NVM latency must slow every engine on the balanced mixture.
	for _, kind := range s.Engines {
		d := res.Find(kind, "balanced", "low-skew", "dram")
		h := res.Find(kind, "balanced", "low-skew", "high-nvm-8x")
		if d == nil || h == nil {
			t.Fatalf("%s: missing points", kind)
		}
		if h.Throughput >= d.Throughput {
			t.Errorf("%s: 8x latency did not reduce throughput (%.0f -> %.0f)",
				kind, d.Throughput, h.Throughput)
		}
	}
	// The NVM-aware engines write fewer bytes than their traditional
	// counterparts on the write-heavy mixture (the paper's wear headline).
	for _, pair := range [][2]testbed.EngineKind{
		{testbed.NVMInP, testbed.InP},
		{testbed.NVMCoW, testbed.CoW},
	} {
		nv := res.Find(pair[0], "write-heavy", "low-skew", "dram")
		tr := res.Find(pair[1], "write-heavy", "low-skew", "dram")
		if nv.BytesWritten >= tr.BytesWritten {
			t.Errorf("%s wrote %d bytes >= %s's %d on write-heavy",
				pair[0], nv.BytesWritten, pair[1], tr.BytesWritten)
		}
	}
	// High skew reduces NVM loads (CPU-cache locality, §5.3).
	for _, kind := range s.Engines {
		lo := res.Find(kind, "read-only", "low-skew", "dram")
		hi := res.Find(kind, "read-only", "high-skew", "dram")
		if hi.Loads >= lo.Loads {
			t.Errorf("%s: high skew did not reduce loads (%d -> %d)", kind, lo.Loads, hi.Loads)
		}
	}
}

func TestTPCCShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := tinyScale()
	s.Latencies = []nvm.Profile{nvm.ProfileDRAM}
	r := New(s, io.Discard)
	res, err := r.TPCC()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range s.Engines {
		p := res.Find(kind, "dram")
		if p == nil || p.Throughput <= 0 {
			t.Fatalf("%s: missing/zero TPC-C throughput", kind)
		}
	}
	// NVM-CoW beats CoW on the write-intensive TPC-C (§5.2: "the NVM-CoW
	// engine exhibits the highest speedup over the CoW engine").
	if res.Find(testbed.NVMCoW, "dram").Throughput <= res.Find(testbed.CoW, "dram").Throughput {
		t.Error("NVM-CoW not faster than CoW on TPC-C")
	}
}

func TestRecoveryShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := tinyScale()
	r := New(s, io.Discard)
	res, err := r.Recovery()
	if err != nil {
		t.Fatal(err)
	}
	// Traditional engines' recovery grows with the transaction count; the
	// NVM-aware engines' latency stays roughly flat (Fig. 12).
	for _, kind := range []testbed.EngineKind{testbed.InP, testbed.Log} {
		lat := res.Latency[kind][0]
		if lat[len(lat)-1] <= lat[0] {
			t.Errorf("%s: recovery did not grow with txns: %v", kind, lat)
		}
	}
	for _, kind := range []testbed.EngineKind{testbed.NVMInP, testbed.NVMLog} {
		lat := res.Latency[kind][0]
		if lat[len(lat)-1] > lat[0]*5+time.Millisecond {
			t.Errorf("%s: recovery scaled with txns: %v", kind, lat)
		}
	}
	// The NVM-aware engines recover faster than their counterparts at the
	// largest history.
	last := len(res.Txns) - 1
	if res.Latency[testbed.NVMInP][0][last] >= res.Latency[testbed.InP][0][last] {
		t.Errorf("NVM-InP recovery %v >= InP %v",
			res.Latency[testbed.NVMInP][0][last], res.Latency[testbed.InP][0][last])
	}
}

func TestBreakdownAndFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := tinyScale()
	r := New(s, io.Discard)
	bd, err := r.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range s.Engines {
		b := bd.Shares["write-heavy"][kind]
		if b.Total() == 0 {
			t.Errorf("%s: empty breakdown", kind)
		}
	}
	// Recovery-related share on write-heavy is higher for InP (WAL with
	// full images + checkpoints) than for NVM-InP (pointer undo log).
	inp := bd.Shares["write-heavy"][testbed.InP]
	nvminp := bd.Shares["write-heavy"][testbed.NVMInP]
	inpFrac := float64(inp.Recovery) / float64(inp.Total())
	nvmFrac := float64(nvminp.Recovery) / float64(nvminp.Total())
	if nvmFrac >= inpFrac {
		t.Errorf("recovery share: NVM-InP %.2f >= InP %.2f", nvmFrac, inpFrac)
	}

	fp, err := r.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range s.Engines {
		if fp.YCSB[kind].Total() == 0 || fp.TPCC[kind].Total() == 0 {
			t.Errorf("%s: empty footprint", kind)
		}
	}
	// The CoW engine has the largest YCSB footprint (§5.6).
	cow := fp.YCSB[testbed.CoW].Total()
	for _, kind := range []testbed.EngineKind{testbed.NVMInP, testbed.NVMCoW} {
		if fp.YCSB[kind].Total() >= cow {
			t.Errorf("%s footprint %d >= CoW %d", kind, fp.YCSB[kind].Total(), cow)
		}
	}
}

func TestCostModelRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := tinyScale()
	r := New(s, io.Discard)
	if err := r.CostModel(); err != nil {
		t.Fatal(err)
	}
}

func TestMVCCReadScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := New(tinyScale(), io.Discard)
	res, err := r.MVCC()
	if err != nil {
		t.Fatal(err) // includes any snapshot-vs-executor digest divergence
	}
	if len(res.Points) == 0 {
		t.Fatal("no measurements")
	}
	for _, p := range res.Points {
		if p.Throughput <= 0 {
			t.Errorf("%s %s/%s: zero throughput", p.Engine, p.Mix, p.Skew)
		}
	}
	// Snapshot reads on one hot partition must scale with reader count.
	// Every engine serves views from the same heap version store, but the
	// acceptance bar is the in-place pair: >= 2x at 4 readers.
	for _, kind := range []testbed.EngineKind{testbed.InP, testbed.NVMInP} {
		for _, mode := range []string{"get", "scan"} {
			if sp := res.Speedup[kind][mode]; sp < 2 {
				t.Errorf("%s %s: r4/r1 speedup %.2fx, want >= 2x", kind, mode, sp)
			}
		}
	}
}

func TestOCCShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := tinyScale()
	s.Engines = []testbed.EngineKind{testbed.InP, testbed.NVMLog}
	r := New(s, io.Discard)
	res, err := r.OCC()
	if err != nil {
		t.Fatal(err) // includes any digest divergence from the serial oracle
	}
	if len(res.Points) == 0 {
		t.Fatal("no measurements")
	}
	for _, p := range res.Points {
		if p.Throughput <= 0 {
			t.Errorf("%s %s/%s: zero throughput", p.Engine, p.Mix, p.Skew)
		}
	}
	for _, kind := range s.Engines {
		// Low-contention RMW must scale with writers: the artifact bar is
		// 1.8x at 4 writers; the tiny harness allows scheduling noise.
		if sp := res.Speedup[kind]["uniform"]; sp < 1.5 {
			t.Errorf("%s uniform: w4/w1 speedup %.2fx, want >= 1.5x", kind, sp)
		}
		// The zipfian mix must actually contend.
		if res.Conflicts[kind]["zipfian"] == 0 {
			t.Errorf("%s zipfian: zero modeled conflicts at w4", kind)
		}
		if res.LiveP99[kind] <= 0 {
			t.Errorf("%s live: no ack p99 recorded", kind)
		}
	}
}

func TestVlogShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := tinyScale()
	// vlogOps derives the per-size schedule from YCSBTxns; keep enough ops
	// at 16KB to span several compaction rounds or the ratio is noise.
	s.YCSBTxns = 8000
	r := New(s, io.Discard)
	res, err := r.Vlog()
	if err != nil {
		t.Fatal(err) // includes digest divergence and vacuity failures
	}
	if len(res.Points) == 0 {
		t.Fatal("no measurements")
	}
	for _, p := range res.Points {
		if p.Throughput <= 0 {
			t.Errorf("%s %s/%s: zero throughput", p.Engine, p.Mix, p.Skew)
		}
	}
	for _, kind := range []testbed.EngineKind{testbed.Log, testbed.NVMLog} {
		// The artifact bar is 1.5x write throughput at 16KB with separation
		// on; the tiny harness measures ~3x, so 1.5 leaves scheduling room.
		if sp := res.Speedup[kind]["v16k"]; sp < 1.5 {
			t.Errorf("%s v16k: vlog-on/off speedup %.2fx, want >= 1.5x", kind, sp)
		}
		// Below the threshold separation must not tax small values.
		if sp := res.Speedup[kind]["v64"]; sp < 0.7 {
			t.Errorf("%s v64: sub-threshold speedup %.2fx, want ~1x", kind, sp)
		}
	}
}
