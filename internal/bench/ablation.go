package bench

import (
	"nstore/internal/nvm"
	"nstore/internal/testbed"
	"nstore/internal/workload/ycsb"
)

// Ablations beyond the paper's numbered figures: each isolates one design
// choice DESIGN.md calls out.

// CLWBResult compares the CLFLUSH-based sync primitive against CLWB
// semantics (the Appendix C instruction-set extension: CLWB "can retain a
// copy of the line in the cache hierarchy, reducing the possibility of
// cache misses during subsequent accesses").
type CLWBResult struct {
	// Throughput[engine][0] = CLFLUSH, [1] = CLWB.
	Throughput map[testbed.EngineKind][2]float64
	// Loads[engine] likewise (CLWB should reduce re-fetch misses).
	Loads map[testbed.EngineKind][2]uint64
}

// CLWB runs the write-heavy YCSB mixture on the NVM-aware engines under
// both sync-primitive semantics.
func (r *Runner) CLWB() (*CLWBResult, error) {
	res := &CLWBResult{
		Throughput: make(map[testbed.EngineKind][2]float64),
		Loads:      make(map[testbed.EngineKind][2]uint64),
	}
	cfg := r.ycsbCfg(ycsb.WriteHeavy, ycsb.LowSkew)
	work := ycsb.Generate(cfg)
	for _, kind := range []testbed.EngineKind{testbed.NVMInP, testbed.NVMCoW, testbed.NVMLog} {
		var tp [2]float64
		var ld [2]uint64
		for mode := 0; mode < 2; mode++ {
			db, err := r.newYCSBDB(kind, cfg)
			if err != nil {
				return nil, err
			}
			db.SetLatency(nvm.ProfileLowNVM)
			db.SetSyncCLWB(mode == 1)
			if _, err := db.ExecuteSequential(work); err != nil { // warm
				return nil, err
			}
			db.ResetStats()
			out, err := db.ExecuteSequential(work)
			if err != nil {
				return nil, err
			}
			tp[mode] = out.Throughput()
			ld[mode] = out.Stats.Loads
		}
		res.Throughput[kind] = tp
		res.Loads[kind] = ld
	}

	r.section("Ablation — sync primitive: CLFLUSH vs CLWB (write-heavy YCSB, 2x latency)")
	w := r.tab()
	fprintf(w, "engine\tclflush txn/s\tclwb txn/s\tclflush loads\tclwb loads\n")
	for _, kind := range []testbed.EngineKind{testbed.NVMInP, testbed.NVMCoW, testbed.NVMLog} {
		fprintf(w, "%s\t%s\t%s\t%s\t%s\n", kind,
			human(res.Throughput[kind][0]), human(res.Throughput[kind][1]),
			human(float64(res.Loads[kind][0])), human(float64(res.Loads[kind][1])))
	}
	w.Flush()
	return res, nil
}

// GroupCommitResult sweeps the group-commit batch size, the design knob
// trading transaction latency against fsync amortization (§3.1, §3.2).
type GroupCommitResult struct {
	Sizes []int
	// Throughput[engine][sizeIdx]
	Throughput map[testbed.EngineKind][]float64
}

// GroupCommit sweeps batch sizes on the engines that use it.
func (r *Runner) GroupCommit() (*GroupCommitResult, error) {
	res := &GroupCommitResult{
		Sizes:      []int{1, 4, 16, 64, 256},
		Throughput: make(map[testbed.EngineKind][]float64),
	}
	for _, kind := range []testbed.EngineKind{testbed.InP, testbed.CoW, testbed.Log, testbed.NVMCoW} {
		for _, g := range res.Sizes {
			opts := r.S.Options
			opts.GroupCommitSize = g
			cfg := r.ycsbCfg(ycsb.WriteHeavy, ycsb.LowSkew)
			db, err := testbed.New(testbed.Config{
				Engine:     kind,
				Partitions: r.S.Partitions,
				Env:        r.envCfg(nvm.ProfileLowNVM),
				Options:    opts,
				Schemas:    ycsb.Schema(cfg),
			})
			if err != nil {
				return nil, err
			}
			if err := ycsb.Load(db, cfg); err != nil {
				return nil, err
			}
			db.ResetStats()
			out, err := db.ExecuteSequential(ycsb.Generate(cfg))
			if err != nil {
				return nil, err
			}
			res.Throughput[kind] = append(res.Throughput[kind], out.Throughput())
		}
	}

	r.section("Ablation — group commit batch size (write-heavy YCSB, 2x latency)")
	w := r.tab()
	fprintf(w, "engine")
	for _, g := range res.Sizes {
		fprintf(w, "\tG=%d", g)
	}
	fprintf(w, "\n")
	for _, kind := range []testbed.EngineKind{testbed.InP, testbed.CoW, testbed.Log, testbed.NVMCoW} {
		fprintf(w, "%s", kind)
		for i := range res.Sizes {
			fprintf(w, "\t%s", human(res.Throughput[kind][i]))
		}
		fprintf(w, "\n")
	}
	w.Flush()
	return res, nil
}

// MemTableResult sweeps the MemTable capacity of the log-structured
// engines: small MemTables flush often (higher write amplification via
// compaction, the cost model's theta); large ones lengthen the Log engine's
// recovery and coalescing chains.
type MemTableResult struct {
	Caps []int
	// Throughput[engine][capIdx] and BytesWritten[engine][capIdx].
	Throughput map[testbed.EngineKind][]float64
	Bytes      map[testbed.EngineKind][]uint64
}

// MemTable sweeps the flush threshold on both log-structured engines.
func (r *Runner) MemTable() (*MemTableResult, error) {
	res := &MemTableResult{
		Caps:       []int{128, 512, 2048, 8192},
		Throughput: make(map[testbed.EngineKind][]float64),
		Bytes:      make(map[testbed.EngineKind][]uint64),
	}
	for _, kind := range []testbed.EngineKind{testbed.Log, testbed.NVMLog} {
		for _, cap := range res.Caps {
			opts := r.S.Options
			opts.MemTableCap = cap
			cfg := r.ycsbCfg(ycsb.Balanced, ycsb.LowSkew)
			db, err := testbed.New(testbed.Config{
				Engine:     kind,
				Partitions: r.S.Partitions,
				Env:        r.envCfg(nvm.ProfileLowNVM),
				Options:    opts,
				Schemas:    ycsb.Schema(cfg),
			})
			if err != nil {
				return nil, err
			}
			if err := ycsb.Load(db, cfg); err != nil {
				return nil, err
			}
			db.ResetStats()
			out, err := db.ExecuteSequential(ycsb.Generate(cfg))
			if err != nil {
				return nil, err
			}
			res.Throughput[kind] = append(res.Throughput[kind], out.Throughput())
			res.Bytes[kind] = append(res.Bytes[kind], out.Stats.BytesWritten)
		}
	}

	r.section("Ablation — MemTable capacity / write amplification (balanced YCSB, 2x latency)")
	w := r.tab()
	fprintf(w, "engine")
	for _, c := range res.Caps {
		fprintf(w, "\tcap=%d", c)
	}
	fprintf(w, "\n")
	for _, kind := range []testbed.EngineKind{testbed.Log, testbed.NVMLog} {
		fprintf(w, "%s", kind)
		for i := range res.Caps {
			fprintf(w, "\t%s (%.0fMB)", human(res.Throughput[kind][i]), float64(res.Bytes[kind][i])/(1<<20))
		}
		fprintf(w, "\n")
	}
	w.Flush()
	return res, nil
}

// Ablations runs all three.
func (r *Runner) Ablations() error {
	if _, err := r.CLWB(); err != nil {
		return err
	}
	if _, err := r.GroupCommit(); err != nil {
		return err
	}
	_, err := r.MemTable()
	return err
}
