package nvm

// cache is a set-associative write-back, write-allocate cache simulation.
// Tags store lineIndex+1 so that zero means invalid. Replacement is LRU via
// a global tick stamp per way.
type cache struct {
	sets  int
	assoc int

	tags   []uint64 // sets*assoc; lineIndex+1, 0 = invalid
	dirty  []bool   // sets*assoc
	stamps []uint64 // sets*assoc; LRU recency
	data   []byte   // sets*assoc*LineSize
	tick   uint64
}

func (c *cache) init(size, assoc int) {
	lines := size / LineSize
	if lines < assoc {
		lines = assoc
	}
	c.sets = lines / assoc
	if c.sets == 0 {
		c.sets = 1
	}
	c.assoc = assoc
	n := c.sets * c.assoc
	c.tags = make([]uint64, n)
	c.dirty = make([]bool, n)
	c.stamps = make([]uint64, n)
	c.data = make([]byte, n*LineSize)
}

func (c *cache) setOf(line int64) int {
	return int((line / LineSize) % int64(c.sets))
}

// lookup finds (or allocates) a slot for the line at the given line-aligned
// offset. It returns the slot's data buffer, whether the line was already
// present, and — on a miss that evicts a dirty victim — victim=true with the
// victim's line offset (the buffer then still holds the victim's data; the
// caller must write it back before refilling the buffer).
func (c *cache) lookup(line int64) (buf []byte, hit bool, victim bool, victimLine int64) {
	tag := uint64(line/LineSize) + 1
	set := c.setOf(line)
	base := set * c.assoc
	c.tick++
	// Hit?
	for way := 0; way < c.assoc; way++ {
		i := base + way
		if c.tags[i] == tag {
			c.stamps[i] = c.tick
			return c.data[i*LineSize : i*LineSize+LineSize], true, false, 0
		}
	}
	// Miss: pick invalid slot or LRU victim.
	pick := base
	var oldest uint64 = ^uint64(0)
	for way := 0; way < c.assoc; way++ {
		i := base + way
		if c.tags[i] == 0 {
			pick = i
			oldest = 0
			break
		}
		if c.stamps[i] < oldest {
			oldest = c.stamps[i]
			pick = i
		}
	}
	buf = c.data[pick*LineSize : pick*LineSize+LineSize]
	if c.tags[pick] != 0 && c.dirty[pick] {
		victim = true
		victimLine = int64(c.tags[pick]-1) * LineSize
	}
	c.tags[pick] = tag
	c.dirty[pick] = false
	c.stamps[pick] = c.tick
	return buf, false, victim, victimLine
}

func (c *cache) slotOf(line int64) int {
	tag := uint64(line/LineSize) + 1
	base := c.setOf(line) * c.assoc
	for way := 0; way < c.assoc; way++ {
		if c.tags[base+way] == tag {
			return base + way
		}
	}
	return -1
}

func (c *cache) markDirty(line int64) {
	if i := c.slotOf(line); i >= 0 {
		c.dirty[i] = true
	}
}

// peek returns the line's buffer and state without fills or LRU updates.
func (c *cache) peek(line int64) (buf []byte, present, dirty bool) {
	i := c.slotOf(line)
	if i < 0 {
		return nil, false, false
	}
	return c.data[i*LineSize : i*LineSize+LineSize], true, c.dirty[i]
}

func (c *cache) invalidate(line int64) {
	if i := c.slotOf(line); i >= 0 {
		c.tags[i] = 0
		c.dirty[i] = false
	}
}

func (c *cache) clean(line int64) {
	if i := c.slotOf(line); i >= 0 {
		c.dirty[i] = false
	}
}

func (c *cache) dropAll() {
	for i := range c.tags {
		c.tags[i] = 0
		c.dirty[i] = false
	}
}
