// Package nvm emulates a byte-addressable non-volatile memory device with a
// volatile CPU cache in front of it, following the Intel Labs hardware
// emulator used in the paper (Dulloor et al., EuroSys 2014).
//
// The device is a flat arena of bytes (the durable medium). All application
// loads and stores go through a set-associative write-back cache simulation.
// A store is NOT durable until its cache line is written back, either by an
// explicit Flush (CLFLUSH/CLWB) followed by Fence (SFENCE), or by an eviction
// (the memory controller may evict cache lines at any time). Crash discards
// the cache, so only written-back bytes survive — exactly the durability
// hazard NVM-aware recovery protocols must handle.
//
// The device also keeps the perf counters the paper reads (NVM loads =
// line fills from the medium, NVM stores = line write-backs to the medium)
// and a simulated stall clock that accrues the extra latency NVM adds over
// DRAM. Throughput experiments report txns / (wall time + stall).
//
// Ownership rule: data-path operations (Read, Write, Flush, FlushOpt, Fence,
// Sync, Crash, EvictAll, fault arming) belong to a single owner goroutine —
// the testbed gives each database partition its own device and executes its
// transactions serially. The observation and tuning surface — Stats,
// ResetStats, Config, SetLatency, SetSyncExtra, AddStall — is safe to call
// from any goroutine (atomic counters, mutex-guarded config), so a metrics
// scraper or latency sweep may run concurrently with the owner.
package nvm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// LineSize is the cache line granularity of the simulated CPU cache.
const LineSize = 64

// Config describes the emulated device and its latency profile.
type Config struct {
	// Size is the capacity of the NVM arena in bytes.
	Size int64
	// CacheSize is the total capacity of the volatile CPU cache in bytes.
	CacheSize int
	// CacheAssoc is the cache associativity (ways per set).
	CacheAssoc int

	// ReadMissExtra is the additional latency, relative to DRAM, charged for
	// every cache line filled from NVM.
	ReadMissExtra time.Duration
	// WriteBackExtra is the additional latency charged for every cache line
	// written back to NVM (bandwidth model).
	WriteBackExtra time.Duration
	// FlushLineCost is the cost of a CLFLUSH/CLWB instruction per line.
	FlushLineCost time.Duration
	// FenceCost is the cost of an SFENCE instruction.
	FenceCost time.Duration
	// SyncExtra is additional latency charged per Fence, used to emulate the
	// PCOMMIT-style sync primitive latencies of Appendix C.
	SyncExtra time.Duration
}

// DefaultConfig returns a device configuration with the DRAM latency profile
// and a cache sized proportionally to the paper's 20 MB L3.
func DefaultConfig(size int64) Config {
	c := Config{
		Size:       size,
		CacheSize:  4 << 20,
		CacheAssoc: 8,
	}
	ProfileDRAM.Apply(&c)
	return c
}

// Stats holds the device's perf counters, mirroring what the paper collects
// with the Linux perf framework on the hardware emulator.
type Stats struct {
	// Loads is the number of cache lines filled from the NVM medium.
	Loads uint64
	// Stores is the number of cache lines written back to the NVM medium
	// (explicit flushes plus dirty evictions).
	Stores uint64
	// Flushes is the number of CLFLUSH/CLWB line operations issued.
	Flushes uint64
	// Fences is the number of SFENCE operations issued.
	Fences uint64
	// BytesRead and BytesWritten count application-level access volume
	// (before the cache), used for write-amplification analysis.
	BytesRead    uint64
	BytesWritten uint64
	// Stall is the accumulated simulated extra latency of NVM over DRAM.
	Stall time.Duration
}

// Sub returns the difference s - prev, counter by counter.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Loads:        s.Loads - prev.Loads,
		Stores:       s.Stores - prev.Stores,
		Flushes:      s.Flushes - prev.Flushes,
		Fences:       s.Fences - prev.Fences,
		BytesRead:    s.BytesRead - prev.BytesRead,
		BytesWritten: s.BytesWritten - prev.BytesWritten,
		Stall:        s.Stall - prev.Stall,
	}
}

// Add returns the sum s + o, counter by counter.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Loads:        s.Loads + o.Loads,
		Stores:       s.Stores + o.Stores,
		Flushes:      s.Flushes + o.Flushes,
		Fences:       s.Fences + o.Fences,
		BytesRead:    s.BytesRead + o.BytesRead,
		BytesWritten: s.BytesWritten + o.BytesWritten,
		Stall:        s.Stall + o.Stall,
	}
}

// deviceStats holds the live perf counters in atomic cells so a metrics
// scraper can snapshot or reset them while the owner goroutine keeps
// driving data operations.
type deviceStats struct {
	loads        atomic.Uint64
	stores       atomic.Uint64
	flushes      atomic.Uint64
	fences       atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	stallNS      atomic.Int64
}

// latCells mirrors the Config latency fields in atomic nanosecond cells.
// Hot-path operations charge stall from these instead of reading d.cfg, so
// SetLatency/SetSyncExtra can retune a live device without racing them.
type latCells struct {
	readMiss  atomic.Int64
	writeBack atomic.Int64
	flushLine atomic.Int64
	fence     atomic.Int64
	syncExtra atomic.Int64
}

// Device is an emulated NVM device.
type Device struct {
	// cfgMu guards cfg against live mutation (SetLatency, SetSyncExtra)
	// racing Config snapshots. Data paths never take it: the latency costs
	// they charge are mirrored in lat. cfg.Size is immutable after NewDevice
	// and may be read without the lock.
	cfgMu sync.Mutex
	cfg   Config
	lat   latCells
	data  []byte // the durable medium
	cache cache
	stats deviceStats
	// pending buffers flushed lines inside the "memory controller": a
	// CLFLUSH'd line is not durable until an SFENCE drains it (§2.3:
	// "otherwise this data might still be buffered in the memory controller
	// and lost in case of a power failure").
	pending     map[int64][LineSize]byte
	pendingKeys []int64 // insertion-ordered keys of pending (drain list)
	syncCLWB    bool    // Sync uses CLWB instead of CLFLUSH (Appendix C)
	// Fault injection (see fault.go).
	plan      FaultPlan
	planSet   bool // a plan is installed; Crash applies its effects
	planArmed bool // the plan's fence-countdown crash trigger is live
	fenceNoop bool // simulated protocol bug: Fence loses its durability effect
}

// ErrInjectedCrash is the panic value raised by fault injection (see
// FailAfterFences). Tests recover it, call Crash, and re-open.
type injectedCrash struct{}

func (injectedCrash) Error() string { return "nvm: injected crash" }

// ErrInjectedCrash is the value panicked by an armed fault injection.
var ErrInjectedCrash error = injectedCrash{}

// FailAfterFences arms fault injection: after n further Fence calls, the
// next Fence panics with ErrInjectedCrash before ordering its flushes,
// simulating a power failure at an arbitrary durability boundary. It is the
// legacy spelling of InjectFaults with the lose-all fault mode.
func (d *Device) FailAfterFences(n int) {
	d.InjectFaults(FaultPlan{Mode: FaultLoseAll, CrashAfterFences: n})
}

// DisarmFail cancels pending fault injection.
func (d *Device) DisarmFail() { d.ClearFaults() }

// NewDevice creates a device with the given configuration.
func NewDevice(cfg Config) *Device {
	if cfg.Size <= 0 {
		panic("nvm: device size must be positive")
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 4 << 20
	}
	if cfg.CacheAssoc <= 0 {
		cfg.CacheAssoc = 8
	}
	d := &Device{
		cfg:     cfg,
		data:    make([]byte, cfg.Size),
		pending: make(map[int64][LineSize]byte),
	}
	d.cache.init(cfg.CacheSize, cfg.CacheAssoc)
	d.refreshLatency()
	return d
}

// refreshLatency republishes cfg's latency fields into the atomic mirrors.
// Callers must hold cfgMu (or be the constructor).
func (d *Device) refreshLatency() {
	d.lat.readMiss.Store(int64(d.cfg.ReadMissExtra))
	d.lat.writeBack.Store(int64(d.cfg.WriteBackExtra))
	d.lat.flushLine.Store(int64(d.cfg.FlushLineCost))
	d.lat.fence.Store(int64(d.cfg.FenceCost))
	d.lat.syncExtra.Store(int64(d.cfg.SyncExtra))
}

// Size returns the capacity of the arena in bytes.
func (d *Device) Size() int64 { return d.cfg.Size }

// Config returns the device configuration. Safe from any goroutine.
func (d *Device) Config() Config {
	d.cfgMu.Lock()
	defer d.cfgMu.Unlock()
	return d.cfg
}

// Stats returns a snapshot of the perf counters. Safe from any goroutine;
// concurrent with the owner's data operations the snapshot is per-counter
// consistent (each cell read atomically), which is what a scraper needs.
func (d *Device) Stats() Stats {
	return Stats{
		Loads:        d.stats.loads.Load(),
		Stores:       d.stats.stores.Load(),
		Flushes:      d.stats.flushes.Load(),
		Fences:       d.stats.fences.Load(),
		BytesRead:    d.stats.bytesRead.Load(),
		BytesWritten: d.stats.bytesWritten.Load(),
		Stall:        time.Duration(d.stats.stallNS.Load()),
	}
}

// ResetStats zeroes the perf counters. Safe from any goroutine.
func (d *Device) ResetStats() {
	d.stats.loads.Store(0)
	d.stats.stores.Store(0)
	d.stats.flushes.Store(0)
	d.stats.fences.Store(0)
	d.stats.bytesRead.Store(0)
	d.stats.bytesWritten.Store(0)
	d.stats.stallNS.Store(0)
}

// SetLatency swaps the latency profile of a live device. Used by experiments
// that sweep NVM latency on the same loaded database. Safe from any
// goroutine: in-flight operations on the owner thread charge either the old
// or the new cost.
func (d *Device) SetLatency(p Profile) {
	d.cfgMu.Lock()
	defer d.cfgMu.Unlock()
	p.Apply(&d.cfg)
	d.refreshLatency()
}

// SetSyncExtra sets the additional per-fence latency (Appendix C sweep).
// Safe from any goroutine.
func (d *Device) SetSyncExtra(lat time.Duration) {
	d.cfgMu.Lock()
	defer d.cfgMu.Unlock()
	d.cfg.SyncExtra = lat
	d.refreshLatency()
}

// SetSyncCLWB switches the sync primitive from CLFLUSH (write back and
// invalidate) to CLWB semantics (write back, retain the line in the cache),
// the instruction-set extension studied in Appendix C. CLWB avoids the
// cache miss on the next access to a just-synced line.
func (d *Device) SetSyncCLWB(on bool) { d.syncCLWB = on }

func (d *Device) checkRange(off int64, n int) {
	if off < 0 || n < 0 || off+int64(n) > d.cfg.Size {
		panic(fmt.Sprintf("nvm: access [%d,%d) out of range (size %d)", off, off+int64(n), d.cfg.Size))
	}
}

// Read copies len(p) bytes at offset off into p, through the cache.
func (d *Device) Read(off int64, p []byte) {
	d.checkRange(off, len(p))
	d.stats.bytesRead.Add(uint64(len(p)))
	for len(p) > 0 {
		line := off &^ (LineSize - 1)
		lo := int(off - line)
		n := LineSize - lo
		if n > len(p) {
			n = len(p)
		}
		buf := d.lineFor(line, false)
		copy(p[:n], buf[lo:lo+n])
		p = p[n:]
		off += int64(n)
	}
}

// Write copies p to offset off, through the cache. The write is volatile
// until the covered lines are flushed (or evicted).
func (d *Device) Write(off int64, p []byte) {
	d.checkRange(off, len(p))
	d.stats.bytesWritten.Add(uint64(len(p)))
	for len(p) > 0 {
		line := off &^ (LineSize - 1)
		lo := int(off - line)
		n := LineSize - lo
		if n > len(p) {
			n = len(p)
		}
		buf := d.lineFor(line, true)
		copy(buf[lo:lo+n], p[:n])
		p = p[n:]
		off += int64(n)
	}
}

// lineFor returns the cache-resident buffer for the line at the given
// (line-aligned) offset, filling it from the medium on a miss. If markDirty
// is set the line is marked dirty.
func (d *Device) lineFor(line int64, markDirty bool) []byte {
	buf, hit, victim, victimLine := d.cache.lookup(line)
	if !hit {
		if victim {
			// Dirty eviction: the memory controller writes the line back to
			// NVM. This can make un-flushed stores durable at any time. The
			// evicted contents supersede any older pending flush of the line.
			copy(d.data[victimLine:victimLine+LineSize], buf)
			delete(d.pending, victimLine)
			d.stats.stores.Add(1)
			d.stats.stallNS.Add(d.lat.writeBack.Load())
		}
		copy(buf, d.data[line:line+LineSize])
		if pl, ok := d.pending[line]; ok {
			copy(buf, pl[:])
		}
		d.stats.loads.Add(1)
		d.stats.stallNS.Add(d.lat.readMiss.Load())
	}
	if markDirty {
		d.cache.markDirty(line)
	}
	return buf
}

// Flush writes back and invalidates every cache line overlapping
// [off, off+n), like CLFLUSH. The data is not guaranteed durable until a
// following Fence.
func (d *Device) Flush(off int64, n int) {
	d.flushRange(off, n, true)
}

// FlushOpt writes back every cache line overlapping [off, off+n) but keeps
// the lines valid and clean, like CLWB (Appendix C).
func (d *Device) FlushOpt(off int64, n int) {
	d.flushRange(off, n, false)
}

func (d *Device) flushRange(off int64, n int, invalidate bool) {
	d.checkRange(off, n)
	first := off &^ (LineSize - 1)
	last := (off + int64(n) + LineSize - 1) &^ (LineSize - 1)
	for line := first; line < last; line += LineSize {
		d.stats.flushes.Add(1)
		d.stats.stallNS.Add(d.lat.flushLine.Load())
		buf, present, dirty := d.cache.peek(line)
		if present && dirty {
			var pl [LineSize]byte
			copy(pl[:], buf)
			if _, ok := d.pending[line]; !ok {
				d.pendingKeys = append(d.pendingKeys, line)
			}
			d.pending[line] = pl
			d.stats.stores.Add(1)
			d.stats.stallNS.Add(d.lat.writeBack.Load())
		}
		if present {
			if invalidate {
				d.cache.invalidate(line)
			} else {
				d.cache.clean(line)
			}
		}
	}
}

// AddStall charges additional simulated latency to the stall clock. Higher
// layers use it to model costs outside the cache/medium path, e.g. the
// kernel VFS overhead of the filesystem interface (§2.2). Safe from any
// goroutine.
func (d *Device) AddStall(t time.Duration) {
	d.stats.stallNS.Add(int64(t))
}

// Fence orders preceding flushes, like SFENCE. After Flush+Fence the flushed
// bytes are durable.
func (d *Device) Fence() {
	if d.planArmed {
		if d.plan.CrashAfterFences <= 0 {
			// The plan stays installed: Crash still applies its durability
			// effects to the un-fenced lines.
			d.planArmed = false
			panic(ErrInjectedCrash)
		}
		d.plan.CrashAfterFences--
	}
	d.stats.fences.Add(1)
	d.stats.stallNS.Add(d.lat.fence.Load() + d.lat.syncExtra.Load())
	if d.fenceNoop {
		return
	}
	for _, line := range d.pendingKeys {
		if pl, ok := d.pending[line]; ok {
			copy(d.data[line:line+LineSize], pl[:])
			delete(d.pending, line)
		}
	}
	d.pendingKeys = d.pendingKeys[:0]
	// Go maps never shrink; rebuild after a large burst so later fences
	// stay cheap.
	if cap(d.pendingKeys) > 4096 {
		d.pending = make(map[int64][LineSize]byte)
		d.pendingKeys = nil
	}
}

// Sync is the paper's sync primitive: CLFLUSH over the range, then SFENCE
// (or CLWB + SFENCE when SetSyncCLWB is enabled, per Appendix C).
func (d *Device) Sync(off int64, n int) {
	if d.syncCLWB {
		d.FlushOpt(off, n)
	} else {
		d.Flush(off, n)
	}
	d.Fence()
}

// Crash simulates a power failure: every cache line that has not been
// written back is lost and the durable medium keeps its contents — except
// that an installed FaultPlan may first persist a seeded subset of the
// un-fenced lines (possibly torn), modelling reordered write-backs. The
// plan is consumed: recovery after the crash runs fault-free.
func (d *Device) Crash() {
	d.applyFaults()
	d.cache.dropAll()
	d.pending = make(map[int64][LineSize]byte)
	d.pendingKeys = nil
	d.planSet = false
	d.planArmed = false
}

// EvictAll forcibly writes back and drops every dirty cache line, simulating
// the memory controller draining the cache. It makes *all* pending stores
// durable — including those of uncommitted transactions — which is the
// adversarial case undo-based recovery must handle.
func (d *Device) EvictAll() {
	for set := 0; set < d.cache.sets; set++ {
		for way := 0; way < d.cache.assoc; way++ {
			i := set*d.cache.assoc + way
			if d.cache.tags[i] != 0 && d.cache.dirty[i] {
				line := int64(d.cache.tags[i]-1) * LineSize
				buf := d.cache.data[i*LineSize : i*LineSize+LineSize]
				copy(d.data[line:line+LineSize], buf)
				delete(d.pending, line)
				d.stats.stores.Add(1)
				d.stats.stallNS.Add(d.lat.writeBack.Load())
			}
			d.cache.tags[i] = 0
			d.cache.dirty[i] = false
		}
	}
}

// DurableEqual reports whether the durable medium matches p at offset off.
// It bypasses the cache; tests use it to assert durability.
func (d *Device) DurableEqual(off int64, p []byte) bool {
	d.checkRange(off, len(p))
	got := d.data[off : off+int64(len(p))]
	for i := range p {
		if got[i] != p[i] {
			return false
		}
	}
	return true
}
