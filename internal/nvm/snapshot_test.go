package nvm

import (
	"bytes"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := DefaultConfig(1 << 20)
	ProfileLowNVM.Apply(&cfg)
	d := NewDevice(cfg)
	durable := []byte("this survives the snapshot")
	volatile := []byte("this does not")
	d.Write(0, durable)
	d.Sync(0, len(durable))
	d.Write(4096, volatile) // never flushed

	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != d.Size() {
		t.Fatalf("size %d != %d", d2.Size(), d.Size())
	}
	got := make([]byte, len(durable))
	d2.Read(0, got)
	if !bytes.Equal(got, durable) {
		t.Fatalf("durable data lost: %q", got)
	}
	got2 := make([]byte, len(volatile))
	d2.Read(4096, got2)
	if bytes.Equal(got2, volatile) {
		t.Fatal("volatile (unflushed) data leaked into the snapshot")
	}
	// Latency config restored.
	if d2.Config().ReadMissExtra != ProfileLowNVM.ReadMissExtra {
		t.Errorf("latency config lost: %v", d2.Config().ReadMissExtra)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader(make([]byte, 100))); err == nil {
		t.Fatal("accepted garbage snapshot")
	}
	if _, err := ReadSnapshot(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty snapshot")
	}
}

func TestSnapshotCompresses(t *testing.T) {
	d := NewDevice(DefaultConfig(8 << 20)) // mostly zeros
	d.Write(0, []byte("tiny payload"))
	d.Sync(0, 12)
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 1<<20 {
		t.Errorf("snapshot of 8 MB of zeros is %d bytes; compression broken", buf.Len())
	}
}
