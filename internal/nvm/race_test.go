package nvm

import (
	"sync"
	"testing"
	"time"
)

// TestDeviceScraperRace exercises the documented ownership split under the
// race detector: one owner goroutine drives data operations while scraper
// goroutines snapshot stats, reset them, re-tune latency, and read the
// config — exactly what a /metrics scrape plus a latency sweep do against a
// live serving partition.
func TestDeviceScraperRace(t *testing.T) {
	d := NewDevice(DefaultConfig(1 << 20))
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // owner: data path
		defer wg.Done()
		buf := make([]byte, 256)
		var i int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			off := (i * 128) % (1 << 19)
			d.Write(off, buf)
			d.Sync(off, len(buf))
			d.Read(off, buf)
			d.AddStall(time.Microsecond)
			i++
		}
	}()

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) { // scrapers and sweepers
			defer wg.Done()
			profiles := []Profile{ProfileDRAM, ProfileLowNVM, ProfileHighNVM}
			for i := 0; i < 400; i++ {
				switch i % 5 {
				case 0:
					s := d.Stats()
					if s.Loads > s.Loads+s.Stores { // keep s used
						t.Error("impossible")
					}
				case 1:
					_ = d.Config()
				case 2:
					d.SetLatency(profiles[(g+i)%len(profiles)])
				case 3:
					d.SetSyncExtra(time.Duration(i) * time.Nanosecond)
				case 4:
					d.ResetStats()
				}
			}
		}(g)
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
