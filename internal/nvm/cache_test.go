package nvm

import (
	"testing"
)

// White-box tests of the set-associative write-back cache simulation.

func TestCacheSetConflictEviction(t *testing.T) {
	// 2-way cache: three lines mapping to the same set must evict.
	cfg := DefaultConfig(1 << 20)
	cfg.CacheSize = 2 * LineSize * 4 // 4 sets, 2 ways
	cfg.CacheAssoc = 2
	d := NewDevice(cfg)

	// Lines 0, 4, 8 all map to set 0 (line/64 % 4).
	buf := make([]byte, LineSize)
	d.Read(0*LineSize, buf)
	d.Read(4*LineSize, buf)
	if d.Stats().Loads != 2 {
		t.Fatalf("loads = %d after two cold reads", d.Stats().Loads)
	}
	d.Read(0*LineSize, buf) // hit
	if d.Stats().Loads != 2 {
		t.Fatalf("expected hit, loads = %d", d.Stats().Loads)
	}
	d.Read(8*LineSize, buf) // conflict miss, evicts LRU (line 4)
	if d.Stats().Loads != 3 {
		t.Fatalf("loads = %d after conflict miss", d.Stats().Loads)
	}
	d.Read(4*LineSize, buf) // must miss again
	if d.Stats().Loads != 4 {
		t.Fatalf("LRU victim wrong: loads = %d", d.Stats().Loads)
	}
	d.Read(0*LineSize, buf) // 0 was MRU before 8 came in... evicted by 4's refill
	_ = buf
}

func TestCacheDirtyEvictionWritesBack(t *testing.T) {
	cfg := DefaultConfig(1 << 20)
	cfg.CacheSize = 2 * LineSize // 1 set, 2 ways
	cfg.CacheAssoc = 2
	d := NewDevice(cfg)

	payload := []byte("dirty line payload goes here....")
	d.Write(0, payload) // line 0 dirty
	// Two more distinct lines force line 0 out.
	d.Write(LineSize, make([]byte, 8))
	d.Write(2*LineSize, make([]byte, 8))
	if !d.DurableEqual(0, payload) {
		t.Fatal("evicted dirty line not on the medium")
	}
	if d.Stats().Stores == 0 {
		t.Fatal("eviction not counted as store")
	}
}

func TestCleanEvictionIsSilent(t *testing.T) {
	cfg := DefaultConfig(1 << 20)
	cfg.CacheSize = 2 * LineSize
	cfg.CacheAssoc = 2
	d := NewDevice(cfg)
	buf := make([]byte, 8)
	d.Read(0, buf)
	d.Read(LineSize, buf)
	d.Read(2*LineSize, buf) // evicts a clean line
	if d.Stats().Stores != 0 {
		t.Fatalf("clean eviction stored: %d", d.Stats().Stores)
	}
}

func TestWriteAllocatePolicy(t *testing.T) {
	d := NewDevice(DefaultConfig(1 << 20))
	d.Write(128, []byte{1}) // partial-line store must fill the line first
	if d.Stats().Loads != 1 {
		t.Fatalf("write-allocate fill missing: loads = %d", d.Stats().Loads)
	}
	got := make([]byte, 2)
	d.Read(128, got)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("partial-line write corrupted neighbours: %v", got)
	}
}

func TestFenceDrainsPendingOnce(t *testing.T) {
	d := NewDevice(DefaultConfig(1 << 20))
	d.Write(0, []byte("abc"))
	d.Flush(0, 3)
	if d.DurableEqual(0, []byte("abc")) {
		t.Fatal("flush alone made data durable (no fence yet)")
	}
	d.Fence()
	if !d.DurableEqual(0, []byte("abc")) {
		t.Fatal("fence did not drain the pending flush")
	}
	// Second fence is a no-op for durability but still counted.
	n := d.Stats().Fences
	d.Fence()
	if d.Stats().Fences != n+1 {
		t.Fatal("fence not counted")
	}
}

func TestCLWBRetainsAcrossSync(t *testing.T) {
	d := NewDevice(DefaultConfig(1 << 20))
	d.SetSyncCLWB(true)
	p := []byte("clwb sync keeps the line")
	d.Write(0, p)
	d.Sync(0, len(p))
	if !d.DurableEqual(0, p) {
		t.Fatal("CLWB sync not durable")
	}
	loads := d.Stats().Loads
	d.Read(0, make([]byte, len(p)))
	if d.Stats().Loads != loads {
		t.Fatal("CLWB sync invalidated the line")
	}
	// Switch back to CLFLUSH: sync must invalidate.
	d.SetSyncCLWB(false)
	d.Write(0, p)
	d.Sync(0, len(p))
	loads = d.Stats().Loads
	d.Read(0, make([]byte, len(p)))
	if d.Stats().Loads == loads {
		t.Fatal("CLFLUSH sync retained the line")
	}
}

func TestEvictionSupersedesStalePendingFlush(t *testing.T) {
	// Regression: write A, flush (pending), overwrite with B, force the
	// dirty eviction of B, then fence. The medium must hold B, not the
	// stale pending A.
	cfg := DefaultConfig(1 << 20)
	cfg.CacheSize = 2 * LineSize
	cfg.CacheAssoc = 2
	d := NewDevice(cfg)

	a := []byte("AAAAAAAA")
	b := []byte("BBBBBBBB")
	d.Write(0, a)
	d.Flush(0, len(a)) // A staged in the controller, line invalidated
	d.Write(0, b)      // refill (overlays pending A), now dirty with B
	// Evict line 0 by touching two other lines in the single set.
	d.Write(LineSize, []byte{1})
	d.Write(2*LineSize, []byte{1})
	d.Fence() // must NOT let stale A overwrite the evicted B
	if !d.DurableEqual(0, b) {
		got := make([]byte, 8)
		d.Read(0, got)
		t.Fatalf("stale pending flush won: medium has %q", got)
	}
}

func TestLatencyProfilesOrdering(t *testing.T) {
	if !(ProfileDRAM.ReadMissExtra < ProfileLowNVM.ReadMissExtra &&
		ProfileLowNVM.ReadMissExtra < ProfileHighNVM.ReadMissExtra) {
		t.Fatal("profiles not ordered")
	}
	if len(Profiles) != 3 {
		t.Fatalf("Profiles = %d entries", len(Profiles))
	}
	if len(Table1) != 6 {
		t.Fatalf("Table1 = %d technologies", len(Table1))
	}
	for _, tech := range Table1 {
		if tech.Name == "DRAM" && !tech.Volatile {
			t.Error("Table 1: DRAM must be volatile")
		}
		if tech.Name == "PCM" && tech.Volatile {
			t.Error("Table 1: PCM must be non-volatile")
		}
	}
}

func TestSetLatencySwitchesLive(t *testing.T) {
	d := NewDevice(DefaultConfig(1 << 20))
	d.Read(0, make([]byte, 64))
	base := d.Stats().Stall
	d.SetLatency(ProfileHighNVM)
	d.Read(1<<10, make([]byte, 64))
	if d.Stats().Stall-base < ProfileHighNVM.ReadMissExtra {
		t.Fatal("live latency switch had no effect")
	}
}
