package nvm

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Snapshots serialize the *durable medium* of a device — exactly the bytes
// that would survive a power failure. Volatile cache contents and pending
// controller writes are deliberately excluded, so restoring a snapshot is
// semantically identical to powering the NVM module back on: engines run
// their normal recovery protocols against it.

const snapMagic = 0x4e564d534e415031 // "NVMSNAP1"

// WriteSnapshot writes the durable medium and device geometry to w. The
// payload is gzip-compressed and length-prefixed so multiple snapshots can
// be concatenated in one stream.
func (d *Device) WriteSnapshot(w io.Writer) error {
	var comp bytes.Buffer
	zw := gzip.NewWriter(&comp)
	if _, err := zw.Write(d.data); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	cfg := d.Config()
	var hdr [56]byte
	binary.LittleEndian.PutUint64(hdr[0:], snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(cfg.Size))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(cfg.CacheSize))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(cfg.CacheAssoc))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(cfg.ReadMissExtra))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(cfg.WriteBackExtra))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(comp.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(comp.Bytes())
	return err
}

// ReadSnapshot reconstructs a device from a snapshot. The returned device
// has a cold (empty) cache, as after a restart. Reading consumes exactly
// one snapshot, so concatenated snapshots can be read in sequence.
func ReadSnapshot(r io.Reader) (*Device, error) {
	var hdr [56]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != snapMagic {
		return nil, fmt.Errorf("nvm: not a snapshot file")
	}
	cfg := Config{
		Size:           int64(binary.LittleEndian.Uint64(hdr[8:])),
		CacheSize:      int(binary.LittleEndian.Uint64(hdr[16:])),
		CacheAssoc:     int(binary.LittleEndian.Uint64(hdr[24:])),
		ReadMissExtra:  time.Duration(binary.LittleEndian.Uint64(hdr[32:])),
		WriteBackExtra: time.Duration(binary.LittleEndian.Uint64(hdr[40:])),
		FlushLineCost:  ProfileDRAM.FlushLineCost,
		FenceCost:      ProfileDRAM.FenceCost,
	}
	if cfg.Size <= 0 || cfg.Size > 64<<30 {
		return nil, fmt.Errorf("nvm: implausible snapshot size %d", cfg.Size)
	}
	compLen := int64(binary.LittleEndian.Uint64(hdr[48:]))
	comp := make([]byte, compLen)
	if _, err := io.ReadFull(r, comp); err != nil {
		return nil, fmt.Errorf("nvm: truncated snapshot: %w", err)
	}
	d := NewDevice(cfg)
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	if _, err := io.ReadFull(zr, d.data); err != nil {
		return nil, fmt.Errorf("nvm: truncated snapshot payload: %w", err)
	}
	return d, nil
}
