package nvm

import "time"

// Profile is a latency configuration for the emulated device, expressed as
// the extra latency NVM adds over the DRAM baseline (the paper's 160 ns).
type Profile struct {
	Name string
	// ReadMissExtra is charged per cache line filled from NVM.
	ReadMissExtra time.Duration
	// WriteBackExtra is charged per cache line written back to NVM. The
	// paper throttles NVM write bandwidth to 9.5 GB/s (8x below DRAM);
	// 64 B at 9.5 GB/s is ~7 ns versus ~1 ns on DRAM.
	WriteBackExtra time.Duration
	// FlushLineCost and FenceCost model CLFLUSH/SFENCE instruction costs,
	// which the engines pay on both DRAM and NVM configurations.
	FlushLineCost time.Duration
	FenceCost     time.Duration
}

// Apply copies the profile's latencies into a device config.
func (p Profile) Apply(c *Config) {
	c.ReadMissExtra = p.ReadMissExtra
	c.WriteBackExtra = p.WriteBackExtra
	c.FlushLineCost = p.FlushLineCost
	c.FenceCost = p.FenceCost
}

// The three latency configurations of §5.2: DRAM baseline (160 ns), low NVM
// latency (2x = 320 ns, i.e. +160 ns per miss), and high NVM latency
// (8x = 1280 ns, i.e. +1120 ns per miss).
var (
	ProfileDRAM = Profile{
		Name:          "dram",
		FlushLineCost: 40 * time.Nanosecond,
		FenceCost:     10 * time.Nanosecond,
	}
	ProfileLowNVM = Profile{
		Name:           "low-nvm-2x",
		ReadMissExtra:  160 * time.Nanosecond,
		WriteBackExtra: 6 * time.Nanosecond,
		FlushLineCost:  40 * time.Nanosecond,
		FenceCost:      10 * time.Nanosecond,
	}
	ProfileHighNVM = Profile{
		Name:           "high-nvm-8x",
		ReadMissExtra:  1120 * time.Nanosecond,
		WriteBackExtra: 6 * time.Nanosecond,
		FlushLineCost:  40 * time.Nanosecond,
		FenceCost:      10 * time.Nanosecond,
	}
)

// Profiles lists the latency configurations in evaluation order.
var Profiles = []Profile{ProfileDRAM, ProfileLowNVM, ProfileHighNVM}

// Technology describes an entry of Table 1 (comparison of storage
// technologies). Values are encoded for reference and for deriving custom
// profiles; the evaluation itself uses the three Profiles above, which are
// technology-agnostic like the hardware emulator.
type Technology struct {
	Name         string
	ReadLatency  time.Duration
	WriteLatency time.Duration
	ByteAddress  bool
	Volatile     bool
	// Endurance is the approximate number of write cycles per bit, as a
	// power of ten (e.g. 16 means >10^16).
	Endurance int
}

// Table1 reproduces the paper's Table 1.
var Table1 = []Technology{
	{Name: "DRAM", ReadLatency: 60 * time.Nanosecond, WriteLatency: 60 * time.Nanosecond, ByteAddress: true, Volatile: true, Endurance: 16},
	{Name: "PCM", ReadLatency: 50 * time.Nanosecond, WriteLatency: 150 * time.Nanosecond, ByteAddress: true, Volatile: false, Endurance: 10},
	{Name: "RRAM", ReadLatency: 100 * time.Nanosecond, WriteLatency: 100 * time.Nanosecond, ByteAddress: true, Volatile: false, Endurance: 8},
	{Name: "MRAM", ReadLatency: 20 * time.Nanosecond, WriteLatency: 20 * time.Nanosecond, ByteAddress: true, Volatile: false, Endurance: 15},
	{Name: "SSD", ReadLatency: 25 * time.Microsecond, WriteLatency: 300 * time.Microsecond, ByteAddress: false, Volatile: false, Endurance: 5},
	{Name: "HDD", ReadLatency: 10 * time.Millisecond, WriteLatency: 10 * time.Millisecond, ByteAddress: false, Volatile: false, Endurance: 16},
}
