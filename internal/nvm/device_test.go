package nvm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func newTestDevice(t testing.TB) *Device {
	t.Helper()
	cfg := DefaultConfig(1 << 20)
	cfg.CacheSize = 8 << 10 // small cache to force evictions
	cfg.CacheAssoc = 4
	return NewDevice(cfg)
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := newTestDevice(t)
	p := []byte("hello, nvm world")
	d.Write(100, p)
	got := make([]byte, len(p))
	d.Read(100, got)
	if !bytes.Equal(got, p) {
		t.Fatalf("read back %q, want %q", got, p)
	}
}

func TestWriteNotDurableUntilSync(t *testing.T) {
	cfg := DefaultConfig(1 << 20)
	d := NewDevice(cfg)
	p := []byte("volatile until flushed")
	d.Write(0, p)
	if d.DurableEqual(0, p) {
		t.Fatal("write reached the medium without a flush")
	}
	d.Sync(0, len(p))
	if !d.DurableEqual(0, p) {
		t.Fatal("write not durable after sync")
	}
}

func TestCrashLosesUnflushedWrites(t *testing.T) {
	cfg := DefaultConfig(1 << 20)
	d := NewDevice(cfg)
	durable := []byte("committed")
	volatile := []byte("uncommitted")
	d.Write(0, durable)
	d.Sync(0, len(durable))
	d.Write(4096, volatile)
	d.Crash()

	got := make([]byte, len(durable))
	d.Read(0, got)
	if !bytes.Equal(got, durable) {
		t.Errorf("durable data lost after crash: %q", got)
	}
	got2 := make([]byte, len(volatile))
	d.Read(4096, got2)
	if bytes.Equal(got2, volatile) {
		t.Error("unflushed write survived crash")
	}
}

func TestEvictionMakesWritesDurable(t *testing.T) {
	// With a tiny cache, writing far more than the cache capacity must force
	// dirty evictions (write-backs) of earlier lines.
	cfg := DefaultConfig(1 << 20)
	cfg.CacheSize = 1 << 10
	cfg.CacheAssoc = 2
	d := NewDevice(cfg)
	marker := []byte("evict-me-to-nvm-0123456789abcdef0123456789abcdef0123456789ab") // ~1 line
	d.Write(0, marker)
	buf := make([]byte, 64)
	for off := int64(4096); off < 64*1024; off += 64 {
		d.Write(off, buf)
	}
	if !d.DurableEqual(0, marker) {
		t.Fatal("dirty line was never evicted to the medium")
	}
	if d.Stats().Stores == 0 {
		t.Fatal("no write-backs counted")
	}
}

func TestEvictAllDrainsDirtyLines(t *testing.T) {
	d := newTestDevice(t)
	p := []byte("dirty uncommitted data")
	d.Write(512, p)
	d.EvictAll()
	if !d.DurableEqual(512, p) {
		t.Fatal("EvictAll did not write back dirty line")
	}
	// After EvictAll the cache is empty; a crash must not lose the data.
	d.Crash()
	got := make([]byte, len(p))
	d.Read(512, got)
	if !bytes.Equal(got, p) {
		t.Fatal("data lost after EvictAll + crash")
	}
}

func TestFlushOptKeepsLineCached(t *testing.T) {
	d := newTestDevice(t)
	p := []byte("clwb keeps the line")
	d.Write(0, p)
	before := d.Stats().Loads
	d.FlushOpt(0, len(p))
	d.Fence()
	if !d.DurableEqual(0, p) {
		t.Fatal("FlushOpt did not write back")
	}
	got := make([]byte, len(p))
	d.Read(0, got)
	if d.Stats().Loads != before {
		t.Error("read after FlushOpt missed; CLWB should retain the line")
	}
	// CLFLUSH by contrast invalidates.
	d.Flush(0, len(p))
	d.Read(0, got)
	if d.Stats().Loads == before {
		t.Error("read after Flush hit; CLFLUSH should invalidate the line")
	}
}

func TestPerfCounters(t *testing.T) {
	d := newTestDevice(t)
	d.Write(0, make([]byte, 640)) // 10 lines
	s := d.Stats()
	if s.Loads != 10 {
		t.Errorf("Loads = %d, want 10 (write-allocate fills)", s.Loads)
	}
	if s.BytesWritten != 640 {
		t.Errorf("BytesWritten = %d, want 640", s.BytesWritten)
	}
	d.Sync(0, 640)
	s = d.Stats()
	if s.Stores != 10 {
		t.Errorf("Stores = %d, want 10", s.Stores)
	}
	if s.Flushes != 10 || s.Fences != 1 {
		t.Errorf("Flushes=%d Fences=%d, want 10/1", s.Flushes, s.Fences)
	}
}

func TestStallAccounting(t *testing.T) {
	cfg := DefaultConfig(1 << 20)
	ProfileHighNVM.Apply(&cfg)
	d := NewDevice(cfg)
	d.Read(0, make([]byte, 64))
	if d.Stats().Stall < ProfileHighNVM.ReadMissExtra {
		t.Errorf("stall %v < one miss %v", d.Stats().Stall, ProfileHighNVM.ReadMissExtra)
	}
	prev := d.Stats().Stall
	d.Read(0, make([]byte, 64)) // cache hit: no extra miss stall
	if extra := d.Stats().Stall - prev; extra != 0 {
		t.Errorf("cache hit charged %v stall", extra)
	}
}

func TestSyncExtraLatency(t *testing.T) {
	d := newTestDevice(t)
	d.SetSyncExtra(time.Microsecond)
	before := d.Stats().Stall
	d.Fence()
	if got := d.Stats().Stall - before; got < time.Microsecond {
		t.Errorf("fence with SyncExtra charged %v, want >= 1µs", got)
	}
}

func TestCacheHitsAreNotCounted(t *testing.T) {
	d := newTestDevice(t)
	buf := make([]byte, 64)
	d.Read(0, buf)
	loads := d.Stats().Loads
	for i := 0; i < 100; i++ {
		d.Read(0, buf)
	}
	if d.Stats().Loads != loads {
		t.Errorf("repeated hit reads changed Loads from %d to %d", loads, d.Stats().Loads)
	}
}

func TestU64Accessors(t *testing.T) {
	d := newTestDevice(t)
	d.WriteU64(8, 0xdeadbeefcafe)
	if got := d.ReadU64(8); got != 0xdeadbeefcafe {
		t.Errorf("ReadU64 = %#x", got)
	}
	d.WriteU32(32, 0x1234)
	if got := d.ReadU32(32); got != 0x1234 {
		t.Errorf("ReadU32 = %#x", got)
	}
	d.WriteU16(40, 77)
	if got := d.ReadU16(40); got != 77 {
		t.Errorf("ReadU16 = %d", got)
	}
	d.WriteU8(42, 5)
	if got := d.ReadU8(42); got != 5 {
		t.Errorf("ReadU8 = %d", got)
	}
}

func TestWriteU64DurableSurvivesCrash(t *testing.T) {
	d := newTestDevice(t)
	d.WriteU64Durable(64, 42)
	d.Crash()
	if got := d.ReadU64(64); got != 42 {
		t.Errorf("durable u64 = %d after crash, want 42", got)
	}
}

func TestStatsSubAdd(t *testing.T) {
	a := Stats{Loads: 10, Stores: 5, Flushes: 3, Fences: 2, BytesRead: 100, BytesWritten: 50, Stall: time.Second}
	b := Stats{Loads: 4, Stores: 1, Flushes: 1, Fences: 1, BytesRead: 40, BytesWritten: 20, Stall: time.Millisecond}
	diff := a.Sub(b)
	if diff.Loads != 6 || diff.Stores != 4 || diff.BytesRead != 60 {
		t.Errorf("Sub wrong: %+v", diff)
	}
	sum := diff.Add(b)
	if sum != a {
		t.Errorf("Add(Sub) != original: %+v", sum)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := NewDevice(DefaultConfig(1024))
	for _, fn := range []func(){
		func() { d.Read(1020, make([]byte, 8)) },
		func() { d.Write(-1, make([]byte, 1)) },
		func() { d.Flush(1024, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestQuickReadAfterWrite property: for any sequence of writes, reading any
// written region returns the most recent bytes, regardless of cache state.
func TestQuickReadAfterWrite(t *testing.T) {
	const size = 1 << 16
	cfg := DefaultConfig(size)
	cfg.CacheSize = 2 << 10
	cfg.CacheAssoc = 2
	d := NewDevice(cfg)
	shadow := make([]byte, size)

	f := func(off uint16, data []byte, doFlush bool) bool {
		o := int64(off)
		if o+int64(len(data)) > size {
			return true
		}
		d.Write(o, data)
		copy(shadow[o:], data)
		if doFlush {
			d.Sync(o, len(data))
		}
		got := make([]byte, len(data))
		d.Read(o, got)
		return bytes.Equal(got, shadow[o:o+int64(len(data))])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Final full comparison through the cache.
	got := make([]byte, size)
	d.Read(0, got)
	if !bytes.Equal(got, shadow) {
		t.Fatal("device contents diverged from shadow copy")
	}
}

// TestQuickCrashConsistency property: after arbitrary writes with some
// synced, a crash preserves exactly the synced regions.
func TestQuickCrashConsistency(t *testing.T) {
	const size = 1 << 16
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		cfg := DefaultConfig(size)
		cfg.CacheSize = 1 << 10
		cfg.CacheAssoc = 2
		d := NewDevice(cfg)
		type region struct {
			off  int64
			data []byte
		}
		var synced []region
		for i := 0; i < 30; i++ {
			n := 1 + rng.Intn(200)
			off := int64(rng.Intn(size - n))
			data := make([]byte, n)
			rng.Read(data)
			d.Write(off, data)
			if rng.Intn(2) == 0 {
				d.Sync(off, n)
				// Later unsynced writes may overwrite this region; only keep
				// regions that are never overwritten, by using disjoint slots.
				synced = append(synced, region{off, data})
			}
		}
		d.Crash()
		for _, r := range synced {
			// A later write may have dirtied the same lines; re-check only
			// against what the medium actually holds now — the invariant we
			// can assert unconditionally is that *some* write-back happened
			// for synced lines, i.e. the region is not all zero if data wasn't.
			_ = r
		}
		// Strong, unconditional invariant: a fresh disjoint synced region
		// survives the crash.
		data := make([]byte, 128)
		rng.Read(data)
		d.Write(0, data)
		d.Sync(0, len(data))
		d.Crash()
		got := make([]byte, len(data))
		d.Read(0, got)
		if !bytes.Equal(got, data) {
			t.Fatalf("iter %d: synced region lost after crash", iter)
		}
	}
}

func BenchmarkDeviceWrite64(b *testing.B) {
	d := NewDevice(DefaultConfig(64 << 20))
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(int64(i%1000000)*64, buf)
	}
}

func BenchmarkDeviceSync64(b *testing.B) {
	d := NewDevice(DefaultConfig(64 << 20))
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%1000000) * 64
		d.Write(off, buf)
		d.Sync(off, 64)
	}
}
