package nvm

import "encoding/binary"

// Typed accessors over the device. All multi-byte values use little-endian
// encoding, matching the x86 platform the paper targets. An 8-byte aligned
// U64 write never straddles a cache line, so flushing it is a single-line
// operation — this is the "atomic durable write" primitive the NVM-aware
// engines rely on for master records and linked-list appends.

// ReadU64 reads a little-endian uint64 at off.
func (d *Device) ReadU64(off int64) uint64 {
	var b [8]byte
	d.Read(off, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 writes a little-endian uint64 at off.
func (d *Device) WriteU64(off int64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	d.Write(off, b[:])
}

// ReadU32 reads a little-endian uint32 at off.
func (d *Device) ReadU32(off int64) uint32 {
	var b [4]byte
	d.Read(off, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32 writes a little-endian uint32 at off.
func (d *Device) WriteU32(off int64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	d.Write(off, b[:])
}

// ReadU16 reads a little-endian uint16 at off.
func (d *Device) ReadU16(off int64) uint16 {
	var b [2]byte
	d.Read(off, b[:])
	return binary.LittleEndian.Uint16(b[:])
}

// WriteU16 writes a little-endian uint16 at off.
func (d *Device) WriteU16(off int64, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	d.Write(off, b[:])
}

// ReadU8 reads a byte at off.
func (d *Device) ReadU8(off int64) uint8 {
	var b [1]byte
	d.Read(off, b[:])
	return b[0]
}

// WriteU8 writes a byte at off.
func (d *Device) WriteU8(off int64, v uint8) {
	d.Write(off, []byte{v})
}

// WriteU64Durable performs an 8-byte atomic durable write: store, flush the
// line, fence. This is the primitive used for master-record updates and WAL
// linked-list appends (§4).
func (d *Device) WriteU64Durable(off int64, v uint64) {
	d.WriteU64(off, v)
	d.Sync(off, 8)
}
