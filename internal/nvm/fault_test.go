package nvm

import (
	"bytes"
	"testing"
)

func testDev() *Device {
	cfg := DefaultConfig(1 << 20)
	cfg.CacheSize = 64 << 10
	return NewDevice(cfg)
}

func fill(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b
	}
	return p
}

// Fenced data must survive any fault mode: faults only touch the un-fenced
// window.
func TestFaultFencedDataImmune(t *testing.T) {
	for _, mode := range []FaultMode{FaultLoseAll, FaultReorder, FaultTear} {
		d := testDev()
		want := fill(0xAB, 4*LineSize)
		d.Write(0, want)
		d.Sync(0, len(want))
		d.InjectFaults(FaultPlan{Seed: 7, Mode: mode, KeepProb: 0.5, TearProb: 1})
		d.Crash()
		if !d.DurableEqual(0, want) {
			t.Fatalf("mode %v: fenced data damaged by crash", mode)
		}
	}
}

// Un-fenced flushed lines persist as a seeded subset under FaultReorder, and
// each surviving line persists whole.
func TestFaultReorderSubset(t *testing.T) {
	const lines = 64
	run := func(seed int64) []byte {
		d := testDev()
		d.Write(0, fill(0x11, lines*LineSize))
		d.Sync(0, lines*LineSize)
		d.Write(0, fill(0x22, lines*LineSize))
		d.Flush(0, lines*LineSize) // flushed, never fenced
		d.InjectFaults(FaultPlan{Seed: seed, Mode: FaultReorder, KeepProb: 0.5})
		d.Crash()
		got := make([]byte, lines*LineSize)
		d.Read(0, got)
		return got
	}
	got := run(42)
	kept, lost := 0, 0
	for l := 0; l < lines; l++ {
		line := got[l*LineSize : (l+1)*LineSize]
		switch {
		case bytes.Equal(line, fill(0x22, LineSize)):
			kept++
		case bytes.Equal(line, fill(0x11, LineSize)):
			lost++
		default:
			t.Fatalf("line %d neither old nor new under FaultReorder: % x", l, line)
		}
	}
	if kept == 0 || lost == 0 {
		t.Fatalf("want a proper subset retained, got kept=%d lost=%d", kept, lost)
	}
	if !bytes.Equal(got, run(42)) {
		t.Fatal("same seed must replay to identical post-crash state")
	}
	if bytes.Equal(got, run(43)) {
		t.Fatal("different seeds should give different subsets")
	}
}

// Under FaultTear a surviving line may keep only an 8-byte-aligned prefix of
// its new bytes.
func TestFaultTearPrefix(t *testing.T) {
	torn := false
	for seed := int64(0); seed < 32 && !torn; seed++ {
		d := testDev()
		d.Write(0, fill(0xAA, LineSize))
		d.Sync(0, LineSize)
		d.Write(0, fill(0xBB, LineSize))
		d.Flush(0, LineSize)
		d.InjectFaults(FaultPlan{Seed: seed, Mode: FaultTear, KeepProb: 1, TearProb: 1})
		d.Crash()
		got := make([]byte, LineSize)
		d.Read(0, got)
		cut := 0
		for cut < LineSize && got[cut] == 0xBB {
			cut++
		}
		for _, b := range got[cut:] {
			if b != 0xAA {
				t.Fatalf("seed %d: tail after cut %d is neither old nor new: % x", seed, cut, got)
			}
		}
		if cut%8 != 0 {
			t.Fatalf("seed %d: tear cut %d not 8-byte aligned", seed, cut)
		}
		if cut > 0 && cut < LineSize {
			torn = true
		}
	}
	if !torn {
		t.Fatal("no seed produced a torn (partial) line")
	}
}

// Dirty cache lines that were never flushed are also candidates for
// reordered write-back (the memory controller may evict at any time).
func TestFaultReorderIncludesDirtyCacheLines(t *testing.T) {
	anyKept := false
	for seed := int64(0); seed < 16 && !anyKept; seed++ {
		d := testDev()
		d.Write(0, fill(0x33, 8*LineSize)) // dirty in cache, never flushed
		d.InjectFaults(FaultPlan{Seed: seed, Mode: FaultReorder, KeepProb: 0.9})
		d.Crash()
		got := make([]byte, 8*LineSize)
		d.Read(0, got)
		for l := 0; l < 8; l++ {
			if bytes.Equal(got[l*LineSize:(l+1)*LineSize], fill(0x33, LineSize)) {
				anyKept = true
			}
		}
	}
	if !anyKept {
		t.Fatal("no un-flushed dirty line ever persisted under FaultReorder")
	}
}

// The plan's fence countdown panics with ErrInjectedCrash at the chosen
// fence, and the plan's effects still apply at Crash.
func TestFaultPlanFenceTrigger(t *testing.T) {
	d := testDev()
	d.InjectFaults(FaultPlan{Seed: 1, Mode: FaultLoseAll, CrashAfterFences: 2})
	d.Fence()
	d.Fence()
	func() {
		defer func() {
			if r := recover(); r != ErrInjectedCrash {
				t.Fatalf("want ErrInjectedCrash panic, got %v", r)
			}
		}()
		d.Fence()
		t.Fatal("third fence did not crash")
	}()
	d.Crash()
	// After Crash the plan is consumed: fences run clean.
	d.Fence()
}

// SetFenceNoop simulates a missing-SFENCE protocol bug: Sync'd data no
// longer survives a crash.
func TestFenceNoopLosesSyncedData(t *testing.T) {
	d := testDev()
	d.SetFenceNoop(true)
	want := fill(0x5A, LineSize)
	d.Write(0, want)
	d.Sync(0, LineSize)
	d.Crash()
	if d.DurableEqual(0, want) {
		t.Fatal("fence-noop device still persisted synced data")
	}
}
