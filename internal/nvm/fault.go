package nvm

import "math/rand"

// FaultMode selects what happens to not-yet-durable state when an injected
// crash strikes. Anything made durable by a completed Flush+Fence (or Sync)
// is never affected — faults only act on the un-fenced window: lines sitting
// in the memory controller's buffer (flushed but not fenced) and dirty lines
// still in the CPU cache.
type FaultMode int

const (
	// FaultLoseAll is the classic power-failure model: every un-fenced line
	// is lost and the durable medium keeps its pre-crash contents.
	FaultLoseAll FaultMode = iota
	// FaultReorder models write-back reordering: at crash, a seeded random
	// subset of the un-fenced dirty lines has already reached the medium
	// (the memory controller and cache may write lines back in any order at
	// any time), while the rest are lost.
	FaultReorder
	// FaultTear is FaultReorder plus torn line write-backs: a surviving line
	// may persist only a prefix of its bytes (in 8-byte units, matching the
	// 64-bit store atomicity real hardware guarantees), leaving the rest of
	// the line at its old medium contents.
	FaultTear
)

// String names the fault mode for logs and failure reports.
func (m FaultMode) String() string {
	switch m {
	case FaultLoseAll:
		return "lose-all"
	case FaultReorder:
		return "reorder"
	case FaultTear:
		return "tear"
	}
	return "unknown"
}

// FaultPlan is a seeded, replayable description of one injected failure.
// Install it with Device.InjectFaults: after CrashAfterFences further Fence
// calls the device panics with ErrInjectedCrash, and the next Crash applies
// Mode's effects to the un-fenced lines using randomness derived only from
// Seed — so any observed failure replays exactly from its seed.
type FaultPlan struct {
	Seed int64
	Mode FaultMode
	// CrashAfterFences is the number of future Fence calls to let through
	// before panicking with ErrInjectedCrash.
	CrashAfterFences int
	// KeepProb is the probability that an un-fenced dirty line reaches the
	// medium anyway (FaultReorder / FaultTear).
	KeepProb float64
	// TearProb is the probability that a surviving line is torn mid-line
	// (FaultTear only).
	TearProb float64
}

// InjectFaults installs a fault plan. The plan's crash trigger arms
// immediately; its durability effects are applied by the next Crash call
// whether or not the trigger fired (so a schedule that ends without hitting
// the trigger still crashes under the same model). Crash clears the plan.
func (d *Device) InjectFaults(p FaultPlan) {
	d.plan = p
	d.planSet = true
	d.planArmed = true
}

// ClearFaults removes any installed fault plan without applying it.
func (d *Device) ClearFaults() {
	d.planSet = false
	d.planArmed = false
}

// SetFenceNoop disables (or re-enables) the durability effect of Fence while
// keeping its accounting and crash triggers: flushed lines stay buffered in
// the memory controller instead of draining to the medium. This simulates a
// protocol bug — a commit path whose SFENCE was removed — and exists so the
// recovery-conformance suite can prove it catches such bugs.
func (d *Device) SetFenceNoop(on bool) { d.fenceNoop = on }

// applyFaults applies the installed plan's durability effects to the
// un-fenced lines. Called by Crash before the cache and controller buffer
// are discarded.
func (d *Device) applyFaults() {
	if !d.planSet || d.plan.Mode == FaultLoseAll {
		return
	}
	p := d.plan
	rng := rand.New(rand.NewSource(p.Seed))
	// Visit candidate write-backs in a deterministic order: controller-
	// buffered lines in flush order first, then dirty cache lines in slot
	// order. A line flushed and then re-dirtied appears twice (old flushed
	// copy, then newer cache copy); each copy survives independently, with
	// the cache copy overwriting when both do — exactly the set of outcomes
	// an arbitrary write-back schedule allows.
	for _, line := range d.pendingKeys {
		if pl, ok := d.pending[line]; ok {
			d.maybePersistLine(rng, p, line, pl[:])
		}
	}
	c := &d.cache
	for i := range c.tags {
		if c.tags[i] != 0 && c.dirty[i] {
			line := int64(c.tags[i]-1) * LineSize
			d.maybePersistLine(rng, p, line, c.data[i*LineSize:i*LineSize+LineSize])
		}
	}
}

// maybePersistLine rolls the plan's dice for one candidate line write-back.
func (d *Device) maybePersistLine(rng *rand.Rand, p FaultPlan, line int64, buf []byte) {
	if rng.Float64() >= p.KeepProb {
		return
	}
	n := LineSize
	if p.Mode == FaultTear && rng.Float64() < p.TearProb {
		// Torn write-back: an 8-byte-aligned prefix of the line persists.
		n = 8 * (1 + rng.Intn(LineSize/8-1))
	}
	copy(d.data[line:line+int64(n)], buf[:n])
	d.stats.stores.Add(1)
}
