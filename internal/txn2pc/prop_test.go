package txn2pc

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"nstore/internal/core"
	"nstore/internal/engine/nvminp"
	"nstore/internal/wire"
)

// Lock-resolution property test: random interleavings of concurrent 2PC
// clients over two shards — prewrites, commits, client crashes, reader-forced
// resolutions, and whole-cluster power cycles — checked against a
// linearizable model. The one property everything reduces to: an orphaned
// lock must resolve in the SAME direction as the transaction's primary
// record, every time, on every shard. A failing sequence is ddmin-shrunk to
// a minimal reproduction before being reported.

var propSeed = flag.Int64("seed", 1, "base seed for resolution property sequences")

// One op of a sequence. Each transaction txn writes key(txn, shard) on the
// shards it spans, so transactions never write-conflict — every lock
// interaction goes through reader resolution, the path under test.
type resOp struct {
	kind  byte // 'P' prewrite, 'C' primary commit, 'c' secondary commit, 'R' read, 'Z' power cycle
	txn   int
	shard int
}

func (o resOp) String() string {
	switch o.kind {
	case 'Z':
		return "Z"
	case 'C':
		return fmt.Sprintf("C%d", o.txn)
	default:
		return fmt.Sprintf("%c%d@%d", o.kind, o.txn, o.shard)
	}
}

const resShards = 2

func resKey(txn, shard int) uint64 { return uint64(txn*10 + shard + 1) }
func resVal(txn, shard int) int64  { return int64(txn*100 + shard) }
func resTxnID(txn int) uint64      { return uint64(7000 + txn) }
func resPrimaryShard(txn int) int  { return txn % resShards }
func resRow(txn, shard int) []core.Value {
	return []core.Value{core.IntVal(int64(resKey(txn, shard))), core.IntVal(resVal(txn, shard))}
}

func resSchemas() []*core.Schema {
	return AugmentSchemas([]*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "v", Type: core.TInt},
		},
	}})
}

// genRes builds a random interleaving of ntxn transactions' protocol
// programs (prewrite both shards, primary commit, secondary commit —
// truncated at a random cut to model a client crash) riffled with reads and
// power cycles.
func genRes(rng *rand.Rand, ntxn, reads, cycles int) []resOp {
	queues := make([][]resOp, 0, ntxn+1)
	for t := 0; t < ntxn; t++ {
		p := resPrimaryShard(t)
		prog := []resOp{
			{kind: 'P', txn: t, shard: p},
			{kind: 'P', txn: t, shard: 1 - p},
			{kind: 'C', txn: t},
			{kind: 'c', txn: t, shard: 1 - p},
		}
		prog = prog[:1+rng.Intn(len(prog))] // client crash at a phase boundary
		queues = append(queues, prog)
	}
	var extras []resOp
	for i := 0; i < reads; i++ {
		extras = append(extras, resOp{kind: 'R', txn: rng.Intn(ntxn), shard: rng.Intn(resShards)})
	}
	for i := 0; i < cycles; i++ {
		extras = append(extras, resOp{kind: 'Z'})
	}
	rng.Shuffle(len(extras), func(i, j int) { extras[i], extras[j] = extras[j], extras[i] })
	queues = append(queues, extras)

	var out []resOp
	remaining := 0
	for _, q := range queues {
		remaining += len(q)
	}
	for remaining > 0 {
		// Weighted pick keeps the riffle uniform over interleavings.
		n := rng.Intn(remaining)
		for qi := range queues {
			if n < len(queues[qi]) {
				out = append(out, queues[qi][0])
				queues[qi] = queues[qi][1:]
				break
			}
			n -= len(queues[qi])
		}
		remaining--
	}
	return out
}

// runRes replays one sequence against real engines and the model. The runner
// is total over arbitrary subsequences (preconditions are skipped, not
// failed) so ddmin shrinking never manufactures a different failure.
func runRes(ops []resOp) (err error) {
	// An engine panic is a failure like any other — fold it into the error
	// so ddmin can shrink sequences that crash outright.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	schemas := resSchemas()
	opts := core.Options{GroupCommitSize: 1}
	envs := make([]*core.Env, resShards)
	engines := make([]core.Engine, resShards)
	for s := range engines {
		envs[s] = core.NewEnv(core.EnvConfig{DeviceSize: 32 << 20})
		e, err := nvminp.New(envs[s], schemas, opts)
		if err != nil {
			return err
		}
		engines[s] = e
	}

	issuedP := make(map[[2]int]bool) // (txn, shard) prewrite executed
	fate := make(map[int]byte)       // model fate; absent == pending
	fateOf := func(t int) byte {
		if st, ok := fate[t]; ok {
			return st
		}
		return wire.TxnPending
	}

	// resolveVerdict forces the fate of txn through its primary shard and
	// checks the verdict against the model: pending must roll BACK (the
	// client is treated as gone), decided must come back unchanged.
	resolveVerdict := func(t int) (byte, error) {
		p := resPrimaryShard(t)
		pri := engines[p]
		var v byte
		if err := Run(pri, func() error {
			var err error
			v, err = Resolve(pri, resTxnID(t), "t", resKey(t, p), true)
			return err
		}); err != nil {
			return v, fmt.Errorf("resolve txn %d: %w", t, err)
		}
		switch fateOf(t) {
		case wire.TxnPending:
			if v != wire.TxnAborted {
				return v, fmt.Errorf("txn %d: forced resolution of an undecided txn returned %d, want aborted", t, v)
			}
			fate[t] = wire.TxnAborted
		case wire.TxnCommitted:
			if v != wire.TxnCommitted {
				return v, fmt.Errorf("txn %d: resolution flipped a committed txn to %d", t, v)
			}
		case wire.TxnAborted:
			if v != wire.TxnAborted {
				return v, fmt.Errorf("txn %d: resolution resurrected an aborted txn as %d", t, v)
			}
		}
		return v, nil
	}

	// settle rolls one lock the direction the primary decided.
	settle := func(t, shard int, key uint64, v byte) error {
		e := engines[shard]
		refs := []wire.LockRef{{Table: "t", Key: key}}
		if v == wire.TxnCommitted {
			return Run(e, func() error { return Commit(e, resTxnID(t), false, refs) })
		}
		return Run(e, func() error { return Abort(e, resTxnID(t), false, refs) })
	}

	for i, op := range ops {
		switch op.kind {
		case 'P':
			e := engines[op.shard]
			p := resPrimaryShard(op.txn)
			req := &wire.Request{Op: wire.OpTxnPrewrite, Txn: resTxnID(op.txn),
				PriShard: int32(p), Table: "t", Key: resKey(op.txn, p),
				Ops: []wire.Request{{Op: wire.OpPut, Table: "t", Key: resKey(op.txn, op.shard),
					Row: resRow(op.txn, op.shard)}}}
			err := Run(e, func() error { return Prewrite(e, req) })
			switch {
			case err == nil:
				switch fateOf(op.txn) {
				case wire.TxnPending:
					issuedP[[2]int{op.txn, op.shard}] = true
				case wire.TxnCommitted:
					// The protocol's documented no-op: no lock reappears.
				case wire.TxnAborted:
					if op.shard == p {
						return fmt.Errorf("op %d %v: prewrite succeeded past the primary abort fence", i, op)
					}
					// The fence lives on the primary shard only: a crashed
					// client's late SECONDARY prewrite legitimately creates a
					// new orphan lock, which resolution must roll back.
					issuedP[[2]int{op.txn, op.shard}] = true
				}
			case errors.Is(err, ErrTxnAborted):
				if fateOf(op.txn) != wire.TxnAborted {
					return fmt.Errorf("op %d %v: prewrite fenced but model fate is %d", i, op, fateOf(op.txn))
				}
			default:
				return fmt.Errorf("op %d %v: %w", i, op, err)
			}
		case 'C':
			p := resPrimaryShard(op.txn)
			if !issuedP[[2]int{op.txn, p}] {
				continue // shrinking removed the prewrite; a real client cannot be here
			}
			e := engines[p]
			err := Run(e, func() error {
				return Commit(e, resTxnID(op.txn), true, []wire.LockRef{{Table: "t", Key: resKey(op.txn, p)}})
			})
			switch {
			case err == nil:
				if fateOf(op.txn) == wire.TxnAborted {
					return fmt.Errorf("op %d %v: commit landed on a txn the model says was rolled back", i, op)
				}
				fate[op.txn] = wire.TxnCommitted
			case errors.Is(err, ErrTxnAborted):
				if fateOf(op.txn) != wire.TxnAborted {
					return fmt.Errorf("op %d %v: commit fenced but model fate is %d", i, op, fateOf(op.txn))
				}
			default:
				return fmt.Errorf("op %d %v: %w", i, op, err)
			}
		case 'c':
			if fateOf(op.txn) != wire.TxnCommitted || !issuedP[[2]int{op.txn, op.shard}] {
				continue
			}
			if err := settle(op.txn, op.shard, resKey(op.txn, op.shard), wire.TxnCommitted); err != nil {
				return fmt.Errorf("op %d %v: %w", i, op, err)
			}
		case 'R':
			e := engines[op.shard]
			key := resKey(op.txn, op.shard)
			lerr := LockedAt(e, "t", key)
			if le := AsLocked(lerr); le != nil {
				v, err := resolveVerdict(op.txn)
				if err != nil {
					return fmt.Errorf("op %d %v: %w", i, op, err)
				}
				if err := settle(op.txn, op.shard, key, v); err != nil {
					return fmt.Errorf("op %d %v: settle: %w", i, op, err)
				}
			} else if lerr != nil {
				return fmt.Errorf("op %d %v: %w", i, op, lerr)
			}
			_, visible, err := e.Get("t", key)
			if err != nil {
				return fmt.Errorf("op %d %v: %w", i, op, err)
			}
			want := fateOf(op.txn) == wire.TxnCommitted && issuedP[[2]int{op.txn, op.shard}]
			if visible != want {
				return fmt.Errorf("op %d %v: visible=%v, model says %v (fate %d)", i, op, visible, want, fateOf(op.txn))
			}
		case 'Z':
			for s := range engines {
				envs[s].Dev.Crash()
				env2, err := envs[s].Reopen()
				if err != nil {
					return fmt.Errorf("op %d: shard %d reopen: %w", i, s, err)
				}
				envs[s] = env2
				engines[s], err = nvminp.Open(env2, schemas, opts)
				if err != nil {
					return fmt.Errorf("op %d: shard %d recovery: %w", i, s, err)
				}
			}
		}
	}

	// Quiesce: sweep every orphan, then audit each transaction's shards
	// against the primary record — the direction-agreement property itself.
	for s := range engines {
		orphans, err := OrphanLocks(engines[s], schemas)
		if err != nil {
			return err
		}
		txns := make([]uint64, 0, len(orphans))
		for t := range orphans {
			txns = append(txns, t)
		}
		sort.Slice(txns, func(i, j int) bool { return txns[i] < txns[j] })
		for _, id := range txns {
			t := int(id - 7000)
			v, err := resolveVerdict(t)
			if err != nil {
				return fmt.Errorf("sweep shard %d: %w", s, err)
			}
			for _, le := range orphans[id] {
				if err := settle(t, s, le.Key, v); err != nil {
					return fmt.Errorf("sweep shard %d txn %d: %w", s, t, err)
				}
			}
		}
	}
	for t := 0; t < 16; t++ {
		p := resPrimaryShard(t)
		if !issuedP[[2]int{t, p}] && !issuedP[[2]int{t, 1 - p}] {
			continue
		}
		st, err := State(engines[p], resTxnID(t))
		if err != nil {
			return err
		}
		if f := fateOf(t); f != wire.TxnPending && st != f {
			return fmt.Errorf("txn %d: primary record %d disagrees with model fate %d", t, st, f)
		}
		for s := 0; s < resShards; s++ {
			if !issuedP[[2]int{t, s}] {
				continue
			}
			_, visible, err := engines[s].Get("t", resKey(t, s))
			if err != nil {
				return err
			}
			if want := st == wire.TxnCommitted; visible != want {
				return fmt.Errorf("txn %d shard %d: visible=%v but primary record says %d — resolution went the wrong direction", t, s, visible, st)
			}
		}
	}
	for s := range engines {
		left, err := OrphanLocks(engines[s], schemas)
		if err != nil {
			return err
		}
		if len(left) != 0 {
			return fmt.Errorf("shard %d: %d transactions still locked after the sweep", s, len(left))
		}
	}
	return nil
}

// shrinkRes ddmin-shrinks a failing sequence: greedily drop chunks while the
// failure still reproduces, replaying each candidate on fresh engines.
func shrinkRes(ops []resOp) []resOp {
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo+chunk <= len(ops); {
			cand := append(append([]resOp(nil), ops[:lo]...), ops[lo+chunk:]...)
			if runRes(cand) != nil {
				ops = cand
			} else {
				lo += chunk
			}
		}
	}
	return ops
}

// TestLockResolutionProperty drives seeded interleavings through runRes; a
// failure is shrunk to a minimal reproduction before reporting.
func TestLockResolutionProperty(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 6
	}
	for s := int64(0); s < int64(n); s++ {
		seed := *propSeed + s
		rng := rand.New(rand.NewSource(seed))
		ops := genRes(rng, 6, 12, 2)
		if err := runRes(ops); err != nil {
			min := shrinkRes(ops)
			t.Fatalf("seed %d: %v\nminimal reproduction (%d ops): %v\nreplay: go test -run TestLockResolutionProperty -seed=%d",
				seed, err, len(min), min, seed)
		}
	}
}
