// Package txn2pc implements the storage half of percolator-style two-phase
// commit (DESIGN.md §13): lock records and transaction-status records stored
// as rows in hidden engine tables, so they are durable, crash-recoverable,
// MVCC-visible, and replicate to backups as ordinary writes riding the
// REPL_APPEND stream.
//
// Protocol shape. A cross-shard transaction picks one of its writes as the
// PRIMARY lock. Prewrite buffers each shard's writes as lock records (the
// data tables stay untouched); the commit point is one atomic engine
// transaction on the primary shard that applies the buffered writes, deletes
// the locks, and inserts a committed status record. Every later observer —
// secondary-shard commits, readers hitting orphaned locks, crash recovery —
// keys off that single record: present means roll forward, an abort fence
// means roll back, neither means the primary lock itself decides. A resolver
// that finds neither record nor primary lock writes the abort fence first,
// so a slow coordinator can never commit afterwards.
//
// Every function here runs inside a caller-owned engine transaction (the
// serve executor's, or an explicit Begin/Commit in tests), which is what
// makes each 2PC step atomic per shard: a torn prewrite or a crashed commit
// either fully happened or never did, by the engines' own recovery
// guarantees (the paper's §4 protocols).
package txn2pc

import (
	"errors"
	"fmt"
	"strings"

	"nstore/internal/core"
	"nstore/internal/wire"
)

// StatusTable is the hidden per-shard transaction-status table. A row exists
// only for decided transactions: key = txn id, state column = committed or
// aborted. Status rows are written only on a transaction's primary shard.
const StatusTable = "__txnstate"

// Lock-table column indexes (after the id column).
const (
	lockColTxn      = 1 // holder txn id
	lockColPriShard = 2 // primary lock's shard
	lockColPriTable = 3 // primary lock's table
	lockColPriKey   = 4 // primary lock's key
	lockColOp       = 5 // buffered write, wire.EncodeOp bytes
)

const stateCol = 1 // StatusTable: wire.TxnCommitted / wire.TxnAborted

// LockTable names the hidden lock table shadowing a user table: same primary
// key space, one row per held lock.
func LockTable(user string) string { return "__lock_" + user }

// Hidden reports whether a table is 2PC bookkeeping (skipped by digests and
// user-facing scans).
func Hidden(table string) bool { return strings.HasPrefix(table, "__") }

// AugmentSchemas returns the user schemas plus the hidden 2PC tables: one
// lock table per user table and the per-shard status table. Pass the result
// to testbed/cluster configs to enable cross-shard transactions.
func AugmentSchemas(user []*core.Schema) []*core.Schema {
	out := make([]*core.Schema, 0, 2*len(user)+1)
	for _, sc := range user {
		out = append(out, sc)
	}
	for _, sc := range user {
		if Hidden(sc.Name) {
			continue
		}
		out = append(out, &core.Schema{
			Name: LockTable(sc.Name),
			Columns: []core.Column{
				{Name: "id", Type: core.TInt},
				{Name: "txn", Type: core.TInt},
				{Name: "prishard", Type: core.TInt},
				{Name: "pritable", Type: core.TString, Size: 64},
				{Name: "prikey", Type: core.TInt},
				{Name: "op", Type: core.TString, Size: 1024},
			},
		})
	}
	out = append(out, &core.Schema{
		Name: StatusTable,
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "state", Type: core.TInt},
		},
	})
	return out
}

// Enabled reports whether a schema set carries the 2PC tables.
func Enabled(schemas []*core.Schema) bool {
	for _, sc := range schemas {
		if sc.Name == StatusTable {
			return true
		}
	}
	return false
}

// Protocol errors. ErrTxnAborted fences a prewrite or commit that raced a
// resolver's rollback; ErrTxnCommitted rejects an abort of a transaction
// whose commit record already exists. Neither is retryable: the fate is
// decided.
var (
	ErrTxnAborted   = errors.New("txn2pc: transaction aborted")
	ErrTxnCommitted = errors.New("txn2pc: transaction already committed")
)

// ErrNoLock means a commit named a lock record that does not exist while the
// transaction is still undecided — a protocol bug or a corrupted shard, never
// a normal race.
var ErrNoLock = errors.New("txn2pc: lock record missing for undecided transaction")

// LockedError is the write-write/read-lock conflict: (Table, Key) is held by
// transaction Txn whose primary lock lives at (PriShard, PriTable, PriKey).
// The caller resolves against the primary shard and retries.
type LockedError struct {
	Txn      uint64
	PriShard int32
	PriTable string
	PriKey   uint64
	Table    string
	Key      uint64
}

func (e *LockedError) Error() string {
	return fmt.Sprintf("txn2pc: %s/%d locked by txn %d (primary %s/%d on shard %d)",
		e.Table, e.Key, e.Txn, e.PriTable, e.PriKey, e.PriShard)
}

// AsLocked unwraps a LockedError if err carries one.
func AsLocked(err error) *LockedError {
	var le *LockedError
	if errors.As(err, &le) {
		return le
	}
	return nil
}

// Lock is one decoded lock record (the buffered op stays encoded; DecodeOp
// it at apply time so corruption surfaces as an error, not a partial write).
type Lock struct {
	Txn      uint64
	PriShard int32
	PriTable string
	PriKey   uint64
	OpBytes  []byte
}

// Getter is the read capability ReadLock needs: both core.Engine and
// core.ReadView satisfy it, so lock checks work on the executor path and on
// MVCC snapshot reads alike.
type Getter interface {
	Get(table string, key uint64) ([]core.Value, bool, error)
}

// ReadLock fetches the lock shadowing (table, key), if any.
func ReadLock(eng Getter, table string, key uint64) (*Lock, bool, error) {
	row, ok, err := eng.Get(LockTable(table), key)
	if err != nil || !ok {
		return nil, false, err
	}
	l := &Lock{
		Txn:      uint64(row[lockColTxn].I),
		PriShard: int32(row[lockColPriShard].I),
		PriTable: string(row[lockColPriTable].S),
		PriKey:   uint64(row[lockColPriKey].I),
		OpBytes:  append([]byte(nil), row[lockColOp].S...),
	}
	return l, true, nil
}

// LockedAt returns a *LockedError when (table, key) is held by a 2PC lock —
// the read-path check: a reader that ignored the lock could see a
// transaction's primary-shard writes while missing its writes here, a
// partial commit. nil when unlocked.
func LockedAt(g Getter, table string, key uint64) error {
	l, ok, err := ReadLock(g, table, key)
	if err != nil || !ok {
		return err
	}
	return &LockedError{Txn: l.Txn, PriShard: l.PriShard, PriTable: l.PriTable,
		PriKey: l.PriKey, Table: table, Key: key}
}

// Scanner is the range capability LockedInRange needs.
type Scanner interface {
	ScanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error
}

// LockedInRange returns a *LockedError for the first lock shadowing
// [from, to) of table, nil when the range is lock-free.
func LockedInRange(s Scanner, table string, from, to uint64) error {
	var found *LockedError
	err := s.ScanRange(LockTable(table), from, to, func(pk uint64, row []core.Value) bool {
		found = &LockedError{
			Txn:      uint64(row[lockColTxn].I),
			PriShard: int32(row[lockColPriShard].I),
			PriTable: string(row[lockColPriTable].S),
			PriKey:   uint64(row[lockColPriKey].I),
			Table:    table,
			Key:      pk,
		}
		return false
	})
	if err != nil {
		return err
	}
	if found != nil {
		return found
	}
	return nil
}

// State reads the transaction's fate on this shard's status table:
// TxnPending when no record exists. Meaningful only on the primary shard.
func State(eng core.Engine, txn uint64) (byte, error) {
	row, ok, err := eng.Get(StatusTable, txn)
	if err != nil {
		return wire.TxnPending, err
	}
	if !ok {
		return wire.TxnPending, nil
	}
	return byte(row[stateCol].I), nil
}

// writeState inserts the decided-state record, idempotently: an existing
// record must agree (a committed record can never flip to aborted or back).
func writeState(eng core.Engine, txn uint64, state byte) error {
	st, err := State(eng, txn)
	if err != nil {
		return err
	}
	switch st {
	case state:
		return nil
	case wire.TxnPending:
		return eng.Insert(StatusTable, txn, []core.Value{{I: int64(txn)}, {I: int64(state)}})
	case wire.TxnCommitted:
		return ErrTxnCommitted
	default:
		return ErrTxnAborted
	}
}

// Prewrite validates and buffers req's write sub-ops as lock records on this
// shard. req.Table/Key/PriShard name the transaction's primary lock. The
// data tables are untouched; constraint checks (duplicate insert, missing
// delete/rmw target) run here so the later commit cannot fail on them.
// Idempotent for the same transaction; a conflicting holder returns
// *LockedError; a transaction already resolved to aborted returns
// ErrTxnAborted; one already committed is a no-op (re-locking after commit
// would resurrect locks a resolver then rolls forward twice).
func Prewrite(eng core.Engine, req *wire.Request) error {
	st, err := State(eng, req.Txn)
	if err != nil {
		return err
	}
	switch st {
	case wire.TxnAborted:
		return ErrTxnAborted
	case wire.TxnCommitted:
		return nil
	}
	for i := range req.Ops {
		sub := &req.Ops[i]
		if held, ok, err := ReadLock(eng, sub.Table, sub.Key); err != nil {
			return err
		} else if ok {
			if held.Txn == req.Txn {
				continue // idempotent re-prewrite
			}
			return &LockedError{Txn: held.Txn, PriShard: held.PriShard,
				PriTable: held.PriTable, PriKey: held.PriKey,
				Table: sub.Table, Key: sub.Key}
		}
		_, exists, err := eng.Get(sub.Table, sub.Key)
		if err != nil {
			return err
		}
		switch sub.Op {
		case wire.OpPut:
			if exists {
				return fmt.Errorf("prewrite %s/%d: %w", sub.Table, sub.Key, core.ErrKeyExists)
			}
		case wire.OpDelete, wire.OpRmw:
			if !exists {
				return fmt.Errorf("prewrite %s/%d: %w", sub.Table, sub.Key, core.ErrKeyNotFound)
			}
		default:
			return fmt.Errorf("txn2pc: prewrite cannot buffer op %v", sub.Op)
		}
		opb, err := wire.EncodeOp(sub)
		if err != nil {
			return err
		}
		err = eng.Insert(LockTable(sub.Table), sub.Key, []core.Value{
			{I: int64(sub.Key)},
			{I: int64(req.Txn)},
			{I: int64(req.PriShard)},
			{S: []byte(req.Table)},
			{I: int64(req.Key)},
			{S: opb},
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Commit settles the named locks forward: decode every buffered op FIRST
// (any corruption aborts the whole transaction before a single write lands —
// a torn prewrite must never surface as committed), then apply the writes,
// delete the locks, and on the primary shard insert the committed status
// record. The whole function runs in one engine transaction: on the primary
// shard that transaction IS the commit point.
//
// Idempotent: a lock already settled (record gone, state committed) is
// skipped. ErrTxnAborted if a resolver's abort fence won the race.
func Commit(eng core.Engine, txn uint64, primary bool, refs []wire.LockRef) error {
	var st byte = wire.TxnPending
	if primary {
		var err error
		if st, err = State(eng, txn); err != nil {
			return err
		}
		if st == wire.TxnAborted {
			return ErrTxnAborted
		}
	}
	// Pass 1: load and decode every lock this commit settles.
	type settled struct {
		ref wire.LockRef
		op  *wire.Request
	}
	var locks []settled
	for _, ref := range refs {
		l, ok, err := ReadLock(eng, ref.Table, ref.Key)
		if err != nil {
			return err
		}
		if !ok || l.Txn != txn {
			// Already rolled forward (this shard re-shipped, or a reader
			// resolved it) — or, on an undecided primary, a hole that should
			// be impossible: prewrite and commit are each atomic.
			if primary && st == wire.TxnPending {
				return fmt.Errorf("%w: txn %d %s/%d", ErrNoLock, txn, ref.Table, ref.Key)
			}
			continue
		}
		op, err := wire.DecodeOp(l.OpBytes)
		if err != nil {
			return core.Corrupt(fmt.Errorf("txn2pc: lock %s/%d of txn %d: %w", ref.Table, ref.Key, txn, err))
		}
		locks = append(locks, settled{ref: ref, op: op})
	}
	// Pass 2: the decided writes. Status record first on the primary — if the
	// engine transaction tears here, recovery sees either nothing or the full
	// commit; never applied data without the record.
	if primary && st == wire.TxnPending {
		if err := writeState(eng, txn, wire.TxnCommitted); err != nil {
			return err
		}
	}
	for _, s := range locks {
		if err := applyBuffered(eng, s.op); err != nil {
			return err
		}
		if err := eng.Delete(LockTable(s.ref.Table), s.ref.Key); err != nil {
			return err
		}
	}
	return nil
}

// Abort settles the named locks backward: delete them, and on the primary
// shard write the abort fence so no commit can land afterwards.
// ErrTxnCommitted if the committed record already exists.
func Abort(eng core.Engine, txn uint64, primary bool, refs []wire.LockRef) error {
	if primary {
		if err := writeState(eng, txn, wire.TxnAborted); err != nil {
			return err
		}
	}
	for _, ref := range refs {
		l, ok, err := ReadLock(eng, ref.Table, ref.Key)
		if err != nil {
			return err
		}
		if !ok || l.Txn != txn {
			continue
		}
		if err := eng.Delete(LockTable(ref.Table), ref.Key); err != nil {
			return err
		}
	}
	return nil
}

// Resolve decides an orphaned transaction's fate on its PRIMARY shard:
// return the recorded state if decided; otherwise, if the primary lock is
// still held, either report pending (force=false) or roll the transaction
// back (force=true: delete the primary lock, write the abort fence). With no
// state record and no primary lock the transaction never reached its commit
// point — write the abort fence so it never can.
func Resolve(eng core.Engine, txn uint64, priTable string, priKey uint64, force bool) (byte, error) {
	st, err := State(eng, txn)
	if err != nil {
		return wire.TxnPending, err
	}
	if st != wire.TxnPending {
		return st, nil
	}
	l, ok, err := ReadLock(eng, priTable, priKey)
	if err != nil {
		return wire.TxnPending, err
	}
	if ok && l.Txn == txn {
		if !force {
			return wire.TxnPending, nil
		}
		if err := eng.Delete(LockTable(priTable), priKey); err != nil {
			return wire.TxnPending, err
		}
	}
	if err := writeState(eng, txn, wire.TxnAborted); err != nil {
		return wire.TxnPending, err
	}
	return wire.TxnAborted, nil
}

// applyBuffered lands one decoded buffered write on the data table. RMW adds
// recompute against the current pre-image — the value at prewrite time is
// still the value now, because the lock excluded every other writer.
func applyBuffered(eng core.Engine, op *wire.Request) error {
	switch op.Op {
	case wire.OpPut:
		return eng.Insert(op.Table, op.Key, op.Row)
	case wire.OpDelete:
		return eng.Delete(op.Table, op.Key)
	case wire.OpRmw:
		pre, ok, err := eng.Get(op.Table, op.Key)
		if err != nil {
			return err
		}
		if !ok {
			return core.ErrKeyNotFound
		}
		upd := core.Update{Cols: make([]int, len(op.Cols)), Vals: make([]core.Value, len(op.Cols))}
		for i, cm := range op.Cols {
			upd.Cols[i] = cm.Col
			if cm.Add {
				upd.Vals[i] = core.Value{I: pre[cm.Col].I + cm.Val.I}
			} else {
				upd.Vals[i] = cm.Val
			}
		}
		return eng.Update(op.Table, op.Key, upd)
	}
	return fmt.Errorf("txn2pc: cannot apply buffered op %v", op.Op)
}

// OrphanLocks scans every lock table for records left behind by crashed
// clients (recovery and tests; the serving path resolves lazily on reads).
func OrphanLocks(eng core.Engine, schemas []*core.Schema) (map[uint64][]*LockedError, error) {
	orphans := make(map[uint64][]*LockedError)
	for _, sc := range schemas {
		if Hidden(sc.Name) {
			continue
		}
		table := sc.Name
		err := eng.ScanRange(LockTable(table), 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			orphans[uint64(row[lockColTxn].I)] = append(orphans[uint64(row[lockColTxn].I)], &LockedError{
				Txn:      uint64(row[lockColTxn].I),
				PriShard: int32(row[lockColPriShard].I),
				PriTable: string(row[lockColPriTable].S),
				PriKey:   uint64(row[lockColPriKey].I),
				Table:    table,
				Key:      pk,
			})
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return orphans, nil
}

// Run wraps fn in one engine transaction: Begin, fn, Commit — with Abort on
// any error. The storage-level unit every wire 2PC op executes as.
func Run(eng core.Engine, fn func() error) error {
	if err := eng.Begin(); err != nil {
		return err
	}
	if err := fn(); err != nil {
		eng.Abort()
		return err
	}
	return eng.Commit()
}
