package txn2pc

import (
	"testing"

	"nstore/internal/core"
	"nstore/internal/engine/nvminp"
	"nstore/internal/wire"
)

// Deterministic lock-record corruption: a torn or scribbled prewrite must
// never surface as committed. Commit decodes EVERY buffered op before
// applying ANY of them, inside one engine transaction — so a single corrupt
// lock record aborts the whole settlement: no data applied, no committed
// status record, the engine transaction rolled back whole.

func corruptEngine(t *testing.T) core.Engine {
	t.Helper()
	env := core.NewEnv(core.EnvConfig{DeviceSize: 32 << 20})
	e, err := nvminp.New(env, resSchemas(), core.Options{GroupCommitSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// prewriteKeys buffers one put per key for txn on e, with keys[0] as the
// primary lock.
func prewriteKeys(t *testing.T, e core.Engine, txn uint64, keys ...uint64) {
	t.Helper()
	subs := make([]wire.Request, len(keys))
	for i, k := range keys {
		subs[i] = wire.Request{Op: wire.OpPut, Table: "t", Key: k,
			Row: []core.Value{core.IntVal(int64(k)), core.IntVal(int64(k) * 7)}}
	}
	err := Run(e, func() error {
		return Prewrite(e, &wire.Request{Op: wire.OpTxnPrewrite, Txn: txn,
			PriShard: 0, Table: "t", Key: keys[0], Ops: subs})
	})
	if err != nil {
		t.Fatalf("prewrite: %v", err)
	}
}

// scribble overwrites the buffered-op column of the lock record at key.
func scribble(t *testing.T, e core.Engine, key uint64, opBytes []byte) {
	t.Helper()
	err := Run(e, func() error {
		return e.Update(LockTable("t"), key, core.Update{
			Cols: []int{5}, Vals: []core.Value{core.BytesVal(opBytes)}})
	})
	if err != nil {
		t.Fatalf("scribbling lock %d: %v", key, err)
	}
}

func refsFor(keys ...uint64) []wire.LockRef {
	refs := make([]wire.LockRef, len(keys))
	for i, k := range keys {
		refs[i] = wire.LockRef{Table: "t", Key: k}
	}
	return refs
}

// TestCommitRejectsCorruptLockRecord: a truncated buffered op makes Commit
// fail tagged core.ErrCorrupt, with the transaction still undecided and no
// data visible — then resolution rolls it back cleanly.
func TestCommitRejectsCorruptLockRecord(t *testing.T) {
	e := corruptEngine(t)
	const txn = 900
	prewriteKeys(t, e, txn, 41, 42)

	// Tear the primary lock's buffered op: keep a valid op byte, cut the body.
	l, ok, err := ReadLock(e, "t", 41)
	if err != nil || !ok {
		t.Fatalf("lock 41 missing: %v %v", ok, err)
	}
	scribble(t, e, 41, l.OpBytes[:len(l.OpBytes)/2])

	err = Run(e, func() error { return Commit(e, txn, true, refsFor(41, 42)) })
	if !core.IsCorrupt(err) {
		t.Fatalf("commit over a torn lock record: %v, want a corrupt-tagged error", err)
	}
	// The torn prewrite never surfaced as committed: state still pending,
	// nothing applied — not even the INTACT lock at 42 (decode-all-first).
	st, err := State(e, txn)
	if err != nil {
		t.Fatal(err)
	}
	if st != wire.TxnPending {
		t.Fatalf("state after failed commit = %d, want pending", st)
	}
	for _, k := range []uint64{41, 42} {
		if _, ok, _ := e.Get("t", k); ok {
			t.Fatalf("key %d applied despite the aborted settlement", k)
		}
	}
	// Resolution settles the wreck as an abort, exactly like any orphan.
	var v byte
	if err := Run(e, func() error {
		var err error
		v, err = Resolve(e, txn, "t", 41, true)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if v != wire.TxnAborted {
		t.Fatalf("resolution of the corrupt txn = %d, want aborted", v)
	}
	if err := Run(e, func() error { return Abort(e, txn, false, refsFor(41, 42)) }); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e.Get("t", 42); ok {
		t.Fatal("aborted settlement leaked key 42")
	}
}

// TestCommitRejectsForeignOpInLockRecord: a lock record whose buffered op
// decodes to a non-write opcode (bit rot flipping the op byte) is corruption,
// not a different write.
func TestCommitRejectsForeignOpInLockRecord(t *testing.T) {
	e := corruptEngine(t)
	const txn = 901
	prewriteKeys(t, e, txn, 51)
	scribble(t, e, 51, []byte{byte(wire.OpGet), 1, 2, 3})

	err := Run(e, func() error { return Commit(e, txn, true, refsFor(51)) })
	if !core.IsCorrupt(err) {
		t.Fatalf("commit over a foreign-op lock record: %v, want corrupt", err)
	}
	if _, ok, _ := e.Get("t", 51); ok {
		t.Fatal("foreign-op lock record applied data")
	}
}

// TestCommitRejectsTrailingGarbage: extra bytes after a well-formed buffered
// op mean the record was overwritten mid-slot; DecodeOp must refuse rather
// than silently accept the prefix.
func TestCommitRejectsTrailingGarbage(t *testing.T) {
	e := corruptEngine(t)
	const txn = 902
	prewriteKeys(t, e, txn, 61)
	l, _, err := ReadLock(e, "t", 61)
	if err != nil {
		t.Fatal(err)
	}
	scribble(t, e, 61, append(append([]byte(nil), l.OpBytes...), 0xde, 0xad))

	err = Run(e, func() error { return Commit(e, txn, true, refsFor(61)) })
	if !core.IsCorrupt(err) {
		t.Fatalf("commit over trailing garbage: %v, want corrupt", err)
	}
	if _, ok, _ := e.Get("t", 61); ok {
		t.Fatal("trailing-garbage lock record applied data")
	}
}
