package netclient

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"nstore/internal/wire"
)

// ErrTxnUnknown means a cross-shard commit's outcome could not be learned:
// the primary-shard commit request failed in transit after prewrites
// succeeded. The transaction is decided — the primary either has the commit
// record or will be rolled back by the next reader — but this client cannot
// say which way. Callers that must know re-ask with OpTxnResolve.
var ErrTxnUnknown = errors.New("netclient: cross-shard commit outcome unknown")

// txnSeq disambiguates transaction ids minted within one nanosecond tick.
var txnSeq atomic.Uint64

// nextTxnID mints a transaction id: wall-clock nanoseconds shifted up with a
// process-local sequence low, so concurrent clients collide only if two
// processes mint in the same nanosecond AND the same sequence slot. Never 0.
func nextTxnID() uint64 {
	id := uint64(time.Now().UnixNano())<<10 | (txnSeq.Add(1) & 1023)
	if id == 0 {
		id = 1
	}
	return id
}

// txnGroup is one shard's slice of a cross-shard transaction.
type txnGroup struct {
	shard int32
	idx   []int // indices into the caller's op list, in order
}

// DoTxn executes ops as one atomic transaction. If every op routes to the
// same shard it degrades to a single OpTxn frame (full op set allowed,
// server-side OCC). If the ops span shards it runs percolator-style 2PC:
// prewrite buffers each shard's writes as replicated lock records, the
// primary-shard commit is the single atomic commit point, and secondary
// shards roll forward afterwards — readers who hit a not-yet-settled lock
// resolve it through the primary. Cross-shard transactions are write-only
// (Put/Delete/Rmw); RMW pre-images come back in Subs.
//
// A StatusOK response means the primary commit record is durable and
// replicated: the transaction is atomically visible on every shard, by
// roll-forward at the latest. StatusAborted means no shard kept anything.
func (r *Router) DoTxn(ctx context.Context, ops []wire.Request) (*wire.Response, error) {
	if len(ops) == 0 {
		return nil, errors.New("netclient: empty transaction")
	}
	if r.Map() == nil {
		if err := r.Refresh(ctx); err != nil {
			return nil, err
		}
	}
	m := r.Map()
	groups := planGroups(m, ops)
	if len(groups) == 1 {
		req := &wire.Request{Op: wire.OpTxn, Part: groups[0].shard, Ops: ops}
		return r.DoRetry(ctx, req)
	}
	// Cross-shard: write ops only, one write per key.
	seen := make(map[string]map[uint64]bool)
	for i := range ops {
		switch ops[i].Op {
		case wire.OpPut, wire.OpDelete, wire.OpRmw:
		default:
			return nil, fmt.Errorf("netclient: op %d (%v) cannot cross shards; cross-shard transactions are write-only", i, ops[i].Op)
		}
		keys := seen[ops[i].Table]
		if keys == nil {
			keys = make(map[uint64]bool)
			seen[ops[i].Table] = keys
		}
		if keys[ops[i].Key] {
			return nil, fmt.Errorf("netclient: duplicate write to %s/%d in one transaction", ops[i].Table, ops[i].Key)
		}
		keys[ops[i].Key] = true
	}

	txn := nextTxnID()
	primary := groups[0] // ops[0]'s shard: its lock is the commit point
	subs := make([]wire.Response, len(ops))
	for _, g := range groups {
		gops := make([]wire.Request, len(g.idx))
		for i, j := range g.idx {
			gops[i] = ops[j]
			gops[i].Part = -1
		}
		preq := &wire.Request{
			Op: wire.OpTxnPrewrite, Part: g.shard,
			Table: ops[0].Table, Key: ops[0].Key,
			Txn: txn, PriShard: primary.shard, Ops: gops,
		}
		resp, err := r.DoRetry(ctx, preq)
		if err != nil || resp.Status != wire.StatusOK {
			// Nothing is committed: fence the primary so no late commit can
			// land, then sweep whatever locks this attempt left behind.
			r.settleAll(ctx, wire.OpTxnAbort, txn, ops, groups, true)
			if err != nil {
				return nil, fmt.Errorf("netclient: prewrite shard %d: %w", g.shard, err)
			}
			return &wire.Response{
				Status: resp.Status, Msg: resp.Msg,
				Txn: txn, TxnState: wire.TxnAborted,
			}, nil
		}
		for i, j := range g.idx {
			if i < len(resp.Subs) {
				subs[j] = resp.Subs[i]
			}
		}
	}

	// Commit point: the primary shard's commit transaction writes the
	// durable committed record, applies the primary's buffered writes, and
	// releases its locks — atomically. Its ack is the transaction's ack.
	creq := &wire.Request{
		Op: wire.OpTxnCommit, Part: primary.shard,
		Txn: txn, Phase: 1, Locks: lockRefs(ops, primary),
	}
	cresp, err := r.DoRetry(ctx, creq)
	switch {
	case err != nil:
		// The decision exists server-side but was lost in transit. Do NOT
		// abort — the commit may have landed. Resolution settles it.
		return nil, fmt.Errorf("%w: txn %d: %v", ErrTxnUnknown, txn, err)
	case cresp.Status == wire.StatusAborted:
		// A reader force-resolved us to abort before the commit arrived. The
		// fence is already on the primary, but the resolver broke only the
		// primary lock itself — our sibling locks on the primary's shard and
		// every secondary's are still held. Sweep all groups (Phase 0: the
		// fence stands, aborting already-released locks is a no-op).
		r.settleAll(ctx, wire.OpTxnAbort, txn, ops, groups, false)
		return &wire.Response{
			Status: wire.StatusAborted, Msg: cresp.Msg,
			Txn: txn, TxnState: wire.TxnAborted,
		}, nil
	case cresp.Status != wire.StatusOK:
		r.settleAll(ctx, wire.OpTxnAbort, txn, ops, groups, true)
		return &wire.Response{
			Status: cresp.Status, Msg: cresp.Msg,
			Txn: txn, TxnState: wire.TxnAborted,
		}, nil
	}
	// Roll the secondary shards forward. Best-effort: a failure here leaves
	// locks that the next reader resolves through the (committed) primary.
	r.settleAll(ctx, wire.OpTxnCommit, txn, ops, groups[1:], false)
	return &wire.Response{
		Status: wire.StatusOK,
		Txn:    txn, TxnState: wire.TxnCommitted,
		Subs: subs,
	}, nil
}

// planGroups buckets ops by shard in order of first appearance. Explicit
// Part pins win; otherwise the shard is wire.ShardOf under the current map.
func planGroups(m *wire.ShardMap, ops []wire.Request) []txnGroup {
	var groups []txnGroup
	at := make(map[int32]int)
	for i := range ops {
		shard := ops[i].Part
		if shard < 0 {
			shard = int32(m.ShardOf(ops[i].Key))
		}
		g, ok := at[shard]
		if !ok {
			g = len(groups)
			at[shard] = g
			groups = append(groups, txnGroup{shard: shard})
		}
		groups[g].idx = append(groups[g].idx, i)
	}
	return groups
}

func lockRefs(ops []wire.Request, g txnGroup) []wire.LockRef {
	refs := make([]wire.LockRef, len(g.idx))
	for i, j := range g.idx {
		refs[i] = wire.LockRef{Table: ops[j].Table, Key: ops[j].Key}
	}
	return refs
}

// settleAll drives commit roll-forward or abort cleanup on every listed
// shard. fencePrimary marks the first group as the primary: its abort runs
// Phase 1, writing the abort fence that blocks any late commit. Best-effort
// by design: an unreachable shard keeps its locks until a reader resolves
// them, which reaches the same decision through the primary record.
func (r *Router) settleAll(ctx context.Context, op wire.Op, txn uint64, ops []wire.Request, groups []txnGroup, fencePrimary bool) {
	for gi, g := range groups {
		var phase byte
		if fencePrimary && gi == 0 {
			phase = 1
		}
		req := &wire.Request{Op: op, Part: g.shard, Txn: txn, Phase: phase, Locks: lockRefs(ops, g)}
		r.DoRetry(ctx, req)
	}
}
