package netclient

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"nstore/internal/core"
	"nstore/internal/wire"
)

// stub is a scriptable wire server for exercising the client without a
// database: handle gets each decoded request and returns the responses to
// send (nil = swallow the request).
func stub(t *testing.T, handle func(req *wire.Request) []*wire.Response) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				br := bufio.NewReader(c)
				var wmu sync.Mutex
				for {
					payload, err := wire.ReadFrame(br, 0)
					if err != nil {
						return
					}
					req, err := wire.DecodeRequest(payload)
					if err != nil {
						return
					}
					for _, resp := range handle(req) {
						out, err := wire.EncodeResponse(resp)
						if err != nil {
							return
						}
						wmu.Lock()
						wire.WriteFrame(c, out)
						wmu.Unlock()
					}
				}
			}()
		}
	}()
	return ln
}

// TestOutOfOrderResponses holds early requests hostage and answers them
// after later ones: the client must route every response to its caller by
// ID, not by arrival order.
func TestOutOfOrderResponses(t *testing.T) {
	var mu sync.Mutex
	var held []*wire.Response
	ln := stub(t, func(req *wire.Request) []*wire.Response {
		mu.Lock()
		defer mu.Unlock()
		resp := &wire.Response{ID: req.ID, Status: wire.StatusOK, Found: true, Row: []core.Value{core.IntVal(int64(req.Key))}}
		if len(held) < 3 { // park the first three
			held = append(held, resp)
			return nil
		}
		out := append([]*wire.Response{resp}, held...) // release in reverse arrival
		held = nil
		return out
	})
	defer ln.Close()
	cl := New(ln.Addr().String(), Config{Conns: 1})
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			resp, err := cl.Do(context.Background(), &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: k})
			if err != nil {
				errs <- err
				return
			}
			if resp.Row[0].I != int64(k) {
				errs <- errors.New("response delivered to the wrong request")
			}
		}(uint64(i))
		time.Sleep(20 * time.Millisecond) // force arrival order at the stub
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRetryOnRetryableStatus counts attempts server-side: DoRetry must
// resubmit on StatusOverloaded and stop at the first terminal status.
func TestRetryOnRetryableStatus(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	ln := stub(t, func(req *wire.Request) []*wire.Response {
		mu.Lock()
		defer mu.Unlock()
		attempts++
		if attempts < 4 {
			return []*wire.Response{{ID: req.ID, Status: wire.StatusOverloaded, Msg: "busy"}}
		}
		return []*wire.Response{{ID: req.ID, Status: wire.StatusOK}}
	})
	defer ln.Close()
	cl := New(ln.Addr().String(), Config{RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond})
	defer cl.Close()
	resp, err := cl.DoRetry(context.Background(), &wire.Request{Part: -1, Op: wire.OpDelete, Table: "t", Key: 1})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("err=%v resp=%+v", err, resp)
	}
	mu.Lock()
	if attempts != 4 {
		t.Fatalf("server saw %d attempts, want 4", attempts)
	}
	attempts = 100 // terminal from here on
	mu.Unlock()

	ln2 := stub(t, func(req *wire.Request) []*wire.Response {
		return []*wire.Response{{ID: req.ID, Status: wire.StatusCorrupt, Msg: "no"}}
	})
	defer ln2.Close()
	cl2 := New(ln2.Addr().String(), Config{})
	defer cl2.Close()
	resp, err = cl2.DoRetry(context.Background(), &wire.Request{Part: -1, Op: wire.OpDelete, Table: "t", Key: 1})
	if err != nil || resp.Status != wire.StatusCorrupt {
		t.Fatalf("terminal status must return immediately: err=%v resp=%+v", err, resp)
	}
	if !errors.Is(&wire.StatusError{Status: resp.Status}, core.ErrCorrupt) {
		t.Fatal("corrupt status lost its taxonomy mapping")
	}
}

// TestTimeoutKillsWedgedConn checks a swallowed request times out, the
// connection resets, and the next request works on a fresh dial.
func TestTimeoutKillsWedgedConn(t *testing.T) {
	var mu sync.Mutex
	swallowed := false
	ln := stub(t, func(req *wire.Request) []*wire.Response {
		mu.Lock()
		defer mu.Unlock()
		if !swallowed {
			swallowed = true
			return nil // never answer the first request
		}
		return []*wire.Response{{ID: req.ID, Status: wire.StatusOK}}
	})
	defer ln.Close()
	cl := New(ln.Addr().String(), Config{Timeout: 200 * time.Millisecond, NoRetryOnDrop: true})
	defer cl.Close()
	_, err := cl.Do(context.Background(), &wire.Request{Part: -1, Op: wire.OpDelete, Table: "t", Key: 1})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	resp, err := cl.Do(context.Background(), &wire.Request{Part: -1, Op: wire.OpDelete, Table: "t", Key: 2})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("redial after timeout failed: err=%v resp=%+v", err, resp)
	}
}

// TestClosedClient checks Close fails fast and is final.
func TestClosedClient(t *testing.T) {
	ln := stub(t, func(req *wire.Request) []*wire.Response {
		return []*wire.Response{{ID: req.ID, Status: wire.StatusOK}}
	})
	defer ln.Close()
	cl := New(ln.Addr().String(), Config{})
	if _, err := cl.Do(context.Background(), &wire.Request{Part: -1, Op: wire.OpDelete, Table: "t", Key: 1}); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, err := cl.Do(context.Background(), &wire.Request{Part: -1, Op: wire.OpDelete, Table: "t", Key: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := cl.DoRetry(context.Background(), &wire.Request{Part: -1, Op: wire.OpDelete, Table: "t", Key: 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("DoRetry on closed client: %v", err)
	}
}

// TestUnavailableAfterRedialCap checks a client pointed at a dead endpoint
// stops burning retry attempts once MaxRedials consecutive dials fail:
// DoRetry must surface ErrUnavailable immediately instead of looping through
// its whole retry budget, and a later Do against a revived endpoint must
// still dial (the cap fails requests, it does not poison the client).
func TestUnavailableAfterRedialCap(t *testing.T) {
	// Reserve an address, then close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cl := New(addr, Config{
		MaxRedials: 2,
		RetryMax:   50, // would take ages if the cap didn't short-circuit
		RetryBase:  time.Millisecond,
		RetryCap:   2 * time.Millisecond,
	})
	defer cl.Close()
	start := time.Now()
	_, err = cl.DoRetry(context.Background(), &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: 1})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("unavailable endpoint took %v to report; cap did not short-circuit", elapsed)
	}

	// Revive the endpoint on the SAME address: the capped client's next Do
	// must still dial and succeed (rediscovery, not permanent poisoning).
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s to test rediscovery: %v", addr, err)
	}
	go func() {
		for {
			c, err := ln2.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					payload, err := wire.ReadFrame(br, 0)
					if err != nil {
						return
					}
					req, err := wire.DecodeRequest(payload)
					if err != nil {
						return
					}
					out, _ := wire.EncodeResponse(&wire.Response{ID: req.ID, Status: wire.StatusOK})
					wire.WriteFrame(c, out)
				}
			}()
		}
	}()
	defer ln2.Close()
	if _, err := cl.Do(context.Background(), &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: 1}); err != nil {
		t.Fatalf("revived endpoint: %v", err)
	}
}
