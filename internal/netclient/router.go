package netclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"nstore/internal/wire"
)

// ErrNoRoute means the router has no live shard map that covers the request
// (no seed answered a SHARDMAP probe, or the shard has no primary).
var ErrNoRoute = errors.New("netclient: no route to shard")

// forceResolveAfter is how many polite lock encounters a retry loop tolerates
// before breaking the lock through its primary (abort fence + rollback). Low
// enough that a crashed client's orphans clear in a few backoff rounds, high
// enough that live holders mid-2PC usually commit first.
const forceResolveAfter = 3

// Router is the cluster-aware client: it keeps a shard map fetched over the
// wire (OpShardMap), pins each request to its shard's primary, and reroutes
// through failover — on StatusNotPrimary or a transport failure it refreshes
// the map (highest Version wins) and retries against the new primary with the
// same capped jittered backoff discipline DoRetry uses per node.
//
// Requests with Part == -1 are routed by wire.ShardOf(Key); requests with an
// explicit Part (TPC-C's warehouse pinning) treat Part as the shard id.
type Router struct {
	cfg   Config
	seeds []string

	jmu sync.Mutex
	rng *rand.Rand

	mu      sync.Mutex
	clients map[string]*Client
	m       *wire.ShardMap
	closed  bool
}

// NewRouter creates a router over the seed node addresses. The first request
// (or an explicit Refresh) fetches the shard map from a seed.
func NewRouter(seeds []string, cfg Config) *Router {
	cfg = cfg.withDefaults()
	return &Router{
		cfg:     cfg,
		seeds:   append([]string(nil), seeds...),
		rng:     rand.New(rand.NewSource(cfg.Seed + 0x5eed)),
		clients: make(map[string]*Client),
	}
}

// Close severs every per-node client.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for _, cl := range r.clients {
		cl.Close()
	}
	return nil
}

// Map returns the router's current shard map (nil before the first refresh).
func (r *Router) Map() *wire.ShardMap {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		return nil
	}
	return r.m.Clone()
}

// client returns (creating if needed) the pooled client for addr.
func (r *Router) client(addr string) (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	cl, ok := r.clients[addr]
	if !ok {
		cl = New(addr, r.cfg)
		r.clients[addr] = cl
	}
	return cl, nil
}

// Refresh fetches the shard map from every known address (seeds plus the
// nodes named by the current map) and installs the highest version seen.
// Returns ErrNoRoute if nobody answered.
func (r *Router) Refresh(ctx context.Context) error {
	addrs := r.knownAddrs()
	var best *wire.ShardMap
	for _, addr := range addrs {
		cl, err := r.client(addr)
		if err != nil {
			return err
		}
		resp, err := cl.Do(ctx, &wire.Request{Op: wire.OpShardMap, Part: -1})
		if err != nil || resp.Status != wire.StatusOK || resp.Map == nil {
			continue
		}
		if best == nil || resp.Map.Version > best.Version {
			best = resp.Map
		}
	}
	if best == nil {
		return fmt.Errorf("%w: no shard map from %d seeds", ErrNoRoute, len(addrs))
	}
	r.mu.Lock()
	if r.m == nil || best.Version > r.m.Version {
		r.m = best
	}
	r.mu.Unlock()
	return nil
}

// knownAddrs is seeds ∪ addresses named by the current map, seeds first.
func (r *Router) knownAddrs() []string {
	seen := make(map[string]bool)
	var addrs []string
	add := func(a string) {
		if a != "" && !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	for _, a := range r.seeds {
		add(a)
	}
	r.mu.Lock()
	if r.m != nil {
		for _, s := range r.m.Shards {
			add(s.Primary)
			add(s.Backup)
		}
	}
	r.mu.Unlock()
	return addrs
}

// route resolves the request's shard and primary under the current map,
// refreshing first if the router has no map yet.
func (r *Router) route(ctx context.Context, req *wire.Request) (*Client, int32, error) {
	r.mu.Lock()
	m := r.m
	r.mu.Unlock()
	if m == nil {
		if err := r.Refresh(ctx); err != nil {
			return nil, 0, err
		}
		r.mu.Lock()
		m = r.m
		r.mu.Unlock()
	}
	shard := int(req.Part)
	if req.Part < 0 {
		shard = m.ShardOf(req.Key)
	}
	if shard >= len(m.Shards) {
		return nil, 0, fmt.Errorf("%w: shard %d beyond map of %d", ErrNoRoute, shard, len(m.Shards))
	}
	primary := m.Shards[shard].Primary
	if primary == "" {
		return nil, 0, fmt.Errorf("%w: shard %d has no primary", ErrNoRoute, shard)
	}
	cl, err := r.client(primary)
	if err != nil {
		return nil, 0, err
	}
	return cl, int32(shard), nil
}

// Do routes one request to its shard's primary and returns the response.
// No retries, no map refresh on failure — use DoRetry for the full failover
// discipline.
func (r *Router) Do(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	cl, shard, err := r.route(ctx, req)
	if err != nil {
		return nil, err
	}
	rc := *req
	rc.Part = shard
	return cl.Do(ctx, &rc)
}

// DoRetry is Do plus the failover discipline: StatusNotPrimary, retryable
// statuses, and transport failures trigger a shard-map refresh and a
// re-route with capped jittered backoff. StatusStaleEpoch is terminal here
// (only a fenced ex-primary sees it, never a client). The error is non-nil
// only if every attempt failed to produce a definitive response.
func (r *Router) DoRetry(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	var lastErr error
	lockHits := 0
	for attempt := 0; attempt < r.cfg.RetryMax; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(r.backoff(attempt)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		cl, shard, err := r.route(ctx, req)
		if err != nil {
			if errors.Is(err, ErrClosed) || errors.Is(err, ctx.Err()) {
				return nil, err
			}
			// No route: the map may be stale (all primaries moved); refresh
			// and try again.
			lastErr = err
			r.Refresh(ctx)
			continue
		}
		rc := *req
		rc.Part = shard
		resp, err := cl.Do(ctx, &rc)
		switch {
		case err == nil && resp.Status == wire.StatusNotPrimary:
			// The map is stale: this node lost (or never had) the shard.
			lastErr = &wire.StatusError{Status: resp.Status, Msg: resp.Msg}
			r.Refresh(ctx)
		case err == nil && resp.Status == wire.StatusLocked:
			// A cross-shard transaction holds the key. Push it to a decision
			// through its primary lock and settle the blocking record, then
			// retry. The first few conflicts ask politely — a live holder
			// needs a couple of backoff rounds to finish its prewrite→commit
			// round trips, and forcing on the first re-encounter turns hot-key
			// contention into a mutual-abort storm where no transaction ever
			// reaches its commit point. Only a lock still held after several
			// polite rounds is treated as a crashed client's and broken.
			lastErr = &wire.StatusError{Status: resp.Status, Msg: resp.Msg}
			r.resolveLock(ctx, shard, resp, lockHits >= forceResolveAfter)
			lockHits++
		case err == nil && resp.Status.Retryable():
			lastErr = &wire.StatusError{Status: resp.Status, Msg: resp.Msg}
		case err == nil:
			return resp, nil
		case errors.Is(err, ErrClosed) || errors.Is(err, ctx.Err()):
			return nil, err
		default:
			// Transport failure (drop, timeout, or the node is gone for good
			// per ErrUnavailable): the primary may have died — refresh and
			// fail over. Ambiguity is the caller's to resolve, same as
			// Client.DoRetry (unique-key inserts treat KeyExists as the ack).
			lastErr = err
			r.Refresh(ctx)
		}
	}
	return nil, fmt.Errorf("netclient: %d routed attempts exhausted: %w", r.cfg.RetryMax, lastErr)
}

// resolveLock drives the transaction named by a StatusLocked response to a
// decision and settles the lock that blocked the caller. The decision comes
// from the primary lock's shard: OpTxnResolve reports committed/aborted if
// the transaction is already decided, reports pending if the primary lock is
// still held (force=false), or breaks the lock and writes the abort fence
// (force=true). A decided verdict is then replayed onto the blocking lock's
// own shard as a Phase-0 commit/abort, after which the caller's retry runs
// unobstructed. The blocking lock lives on `shard` — the shard the caller's
// request was routed to — NOT wherever its key would hash: under explicit
// Part pinning (TPC-C co-location) those differ, and a hash-routed settle
// lands on the wrong shard and strands the lock forever. Failures are
// swallowed: the caller retries and resolution restarts from scratch.
func (r *Router) resolveLock(ctx context.Context, shard int32, locked *wire.Response, force bool) {
	if locked.Txn == 0 || locked.PriTable == "" {
		return
	}
	var phase byte
	if force {
		phase = 1
	}
	v, err := r.DoRetry(ctx, &wire.Request{
		Op: wire.OpTxnResolve, Part: locked.PriShard,
		Table: locked.PriTable, Key: locked.PriKey,
		Txn: locked.Txn, Phase: phase,
	})
	if err != nil || v.Status != wire.StatusOK {
		return
	}
	var settle wire.Op
	switch v.TxnState {
	case wire.TxnCommitted:
		settle = wire.OpTxnCommit
	case wire.TxnAborted:
		settle = wire.OpTxnAbort
	default:
		return // still pending: the holder is live, give it the backoff
	}
	if locked.LockTable == "" {
		return
	}
	r.DoRetry(ctx, &wire.Request{
		Op: settle, Part: shard, Key: locked.LockKey,
		Txn: locked.Txn, Phase: 0,
		Locks: []wire.LockRef{{Table: locked.LockTable, Key: locked.LockKey}},
	})
}

func (r *Router) backoff(attempt int) time.Duration {
	d := r.cfg.RetryBase << (attempt - 1)
	if d > r.cfg.RetryCap || d <= 0 {
		d = r.cfg.RetryCap
	}
	r.jmu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d/2) + 1))
	r.jmu.Unlock()
	return d/2 + j
}
