// Package netclient is the pooled, pipelining client for the wire protocol.
// Many requests can be in flight per connection; responses are matched by
// request ID as they arrive, in any order. DoRetry layers capped, jittered
// exponential backoff over the typed retryable statuses, mirroring the
// in-process submitWithRetry discipline across the network boundary.
package netclient

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nstore/internal/core"
	"nstore/internal/wire"
)

// Client errors. ErrConnDropped carries the retryable tag: the transport
// failed, not the transaction — but note a dropped connection is AMBIGUOUS
// (the request may have committed before the cut). Retrying is only safe
// for idempotent schedules, or when the caller resolves the ambiguity
// (e.g. a unique-key insert treating StatusKeyExists on a retry as its own
// earlier ack).
var (
	ErrConnDropped = core.Retryable(errors.New("netclient: connection dropped"))
	ErrTimeout     = core.Retryable(errors.New("netclient: request timed out"))
	ErrClosed      = errors.New("netclient: client closed")

	// ErrUnavailable marks an endpoint as gone, not glitching: MaxRedials
	// consecutive dials failed without a single success. Deliberately NOT
	// tagged retryable — DoRetry gives up immediately so a dead node costs
	// one error, not a full backoff ladder. The next Do still attempts a
	// dial, so an endpoint that does come back is rediscovered.
	ErrUnavailable = errors.New("netclient: endpoint unavailable")
)

// Config parameterizes a Client.
type Config struct {
	// Conns is the connection pool size (default 1). Requests round-robin
	// over the pool; each connection pipelines independently.
	Conns int
	// MaxFrame bounds a response frame (default wire.DefaultMaxFrame).
	MaxFrame int
	// Timeout bounds one attempt from send to matched response (default 10s).
	Timeout time.Duration
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// RetryMax caps DoRetry attempts (default 8).
	RetryMax int
	// RetryBase and RetryCap shape DoRetry's exponential backoff (defaults
	// 500µs and 50ms); the sleep is jittered to d/2 + rand(d/2).
	RetryBase time.Duration
	RetryCap  time.Duration
	// RetryOnDrop makes DoRetry also retry transport failures (dropped
	// connections, timeouts). Ambiguous — see ErrConnDropped. Defaults
	// true; set NoRetryOnDrop to disable.
	NoRetryOnDrop bool
	// MaxRedials caps consecutive failed dials per connection before errors
	// flip from retryable ErrConnDropped to terminal ErrUnavailable
	// (default 5). A successful dial resets the count.
	MaxRedials int
	// Seed seeds the backoff jitter so a soak replays.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 8
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 500 * time.Microsecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 50 * time.Millisecond
	}
	if c.MaxRedials <= 0 {
		c.MaxRedials = 5
	}
	return c
}

// Client is a pooled wire-protocol client. Safe for concurrent use.
type Client struct {
	addr string
	cfg  Config

	conns []*cconn
	rr    atomic.Uint64
	ids   atomic.Uint64

	jmu sync.Mutex
	rng *rand.Rand

	closed atomic.Bool
}

// result delivers a matched response or the connection's fate to a waiter.
type result struct {
	resp *wire.Response
	err  error
}

// cconn is one pooled connection with its own pipeline state. Connections
// dial lazily and redial lazily after a drop.
type cconn struct {
	cl *Client

	mu        sync.Mutex
	c         net.Conn
	gen       uint64 // bumped per successful dial, so a stale reader can't kill its successor
	dialFails int    // consecutive failed dials; at MaxRedials errors become ErrUnavailable
	pending   map[uint64]chan result
}

// New creates a client for addr. No connection is made until the first
// request.
func New(addr string, cfg Config) *Client {
	cfg = cfg.withDefaults()
	cl := &Client{addr: addr, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	cl.conns = make([]*cconn, cfg.Conns)
	for i := range cl.conns {
		cl.conns[i] = &cconn{cl: cl, pending: make(map[uint64]chan result)}
	}
	return cl
}

// Close severs every pooled connection; waiting requests fail with
// ErrConnDropped, later requests with ErrClosed.
func (cl *Client) Close() error {
	if cl.closed.Swap(true) {
		return nil
	}
	for _, cc := range cl.conns {
		cc.mu.Lock()
		if cc.c != nil {
			cc.c.Close()
		}
		cc.mu.Unlock()
	}
	return nil
}

// Do sends one request and waits for its matched response. The request's ID
// is assigned by the client. A non-OK status is returned as a response, not
// an error; errors mean the transport failed (ErrConnDropped, ErrTimeout)
// or the request never went out.
func (cl *Client) Do(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if cl.closed.Load() {
		return nil, ErrClosed
	}
	req.ID = cl.ids.Add(1)
	payload, err := wire.EncodeRequest(req)
	if err != nil {
		return nil, err
	}
	cc := cl.conns[cl.rr.Add(1)%uint64(len(cl.conns))]
	ch, err := cc.send(req.ID, payload)
	if err != nil {
		return nil, err
	}
	timer := time.NewTimer(cl.cfg.Timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		cc.forget(req.ID)
		return nil, ctx.Err()
	case <-timer.C:
		// A response this late means the connection is wedged (or the
		// server is), not merely slow: kill it so the pipeline resets.
		cc.forget(req.ID)
		cc.kill(nil)
		return nil, ErrTimeout
	}
}

// DoRetry is Do plus the retry discipline: retryable statuses (Overloaded,
// Recovering, Retryable) and — unless NoRetryOnDrop — transport failures
// are retried with capped jittered backoff. The final response is returned
// whatever its status; the error is non-nil only if every attempt failed at
// the transport.
func (cl *Client) DoRetry(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	var lastErr error
	for attempt := 0; attempt < cl.cfg.RetryMax; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(cl.backoff(attempt)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		resp, err := cl.Do(ctx, req)
		switch {
		case err == nil && !resp.Status.Retryable():
			return resp, nil
		case err == nil:
			lastErr = &wire.StatusError{Status: resp.Status, Msg: resp.Msg}
		case errors.Is(err, ErrClosed) || errors.Is(err, ErrUnavailable) || errors.Is(err, ctx.Err()):
			return nil, err
		case cl.cfg.NoRetryOnDrop:
			return nil, err
		default:
			lastErr = err
		}
	}
	return nil, fmt.Errorf("netclient: %d attempts exhausted: %w", cl.cfg.RetryMax, lastErr)
}

func (cl *Client) backoff(attempt int) time.Duration {
	d := cl.cfg.RetryBase << (attempt - 1)
	if d > cl.cfg.RetryCap || d <= 0 {
		d = cl.cfg.RetryCap
	}
	cl.jmu.Lock()
	j := time.Duration(cl.rng.Int63n(int64(d/2) + 1))
	cl.jmu.Unlock()
	return d/2 + j
}

// send registers the request and writes its frame, dialing if necessary.
func (cc *cconn) send(id uint64, payload []byte) (chan result, error) {
	frame := wire.AppendFrame(make([]byte, 0, len(payload)+9), payload)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.c == nil {
		if err := cc.dialLocked(); err != nil {
			return nil, err
		}
	}
	ch := make(chan result, 1)
	cc.pending[id] = ch
	cc.c.SetWriteDeadline(time.Now().Add(cc.cl.cfg.Timeout))
	if _, err := cc.c.Write(frame); err != nil {
		cc.failLocked(err)
		return nil, fmt.Errorf("%w: %v", ErrConnDropped, err)
	}
	return ch, nil
}

func (cc *cconn) dialLocked() error {
	if cc.cl.closed.Load() {
		return ErrClosed
	}
	c, err := net.DialTimeout("tcp", cc.cl.addr, cc.cl.cfg.DialTimeout)
	if err != nil {
		cc.dialFails++
		if cc.dialFails >= cc.cl.cfg.MaxRedials {
			return fmt.Errorf("%w: %d consecutive dial failures to %s: %v",
				ErrUnavailable, cc.dialFails, cc.cl.addr, err)
		}
		return fmt.Errorf("%w: %v", ErrConnDropped, err)
	}
	cc.c = c
	cc.gen++
	cc.dialFails = 0
	go cc.read(c, cc.gen)
	return nil
}

// read is the connection's demultiplexer: frames in, pending channels out.
// On any error it fails every request still in flight on this generation.
func (cc *cconn) read(c net.Conn, gen uint64) {
	br := bufio.NewReaderSize(c, 64<<10)
	for {
		payload, err := wire.ReadFrame(br, cc.cl.cfg.MaxFrame)
		if err != nil {
			cc.mu.Lock()
			cc.failIfGenLocked(gen, err)
			cc.mu.Unlock()
			c.Close()
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			cc.mu.Lock()
			cc.failIfGenLocked(gen, err)
			cc.mu.Unlock()
			c.Close()
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[resp.ID]
		delete(cc.pending, resp.ID)
		cc.mu.Unlock()
		if ok {
			ch <- result{resp: resp}
		}
	}
}

// failLocked fails every pending request and drops the connection so the
// next request redials.
func (cc *cconn) failLocked(cause error) {
	err := ErrConnDropped
	if cause != nil {
		err = fmt.Errorf("%w: %v", ErrConnDropped, cause)
	}
	for id, ch := range cc.pending {
		delete(cc.pending, id)
		ch <- result{err: err}
	}
	if cc.c != nil {
		cc.c.Close()
		cc.c = nil
	}
}

// failIfGenLocked is failLocked guarded by generation: a reader that
// outlived its connection must not tear down the redialed one.
func (cc *cconn) failIfGenLocked(gen uint64, cause error) {
	if cc.gen != gen {
		return
	}
	cc.failLocked(cause)
}

func (cc *cconn) forget(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// kill severs the connection (timeout path); pending requests fail.
func (cc *cconn) kill(cause error) {
	cc.mu.Lock()
	cc.failLocked(cause)
	cc.mu.Unlock()
}
