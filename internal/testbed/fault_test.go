package testbed

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"nstore/internal/core"
	"nstore/internal/engine/enginetest"
	"nstore/internal/nvm"
)

// TestFaultInjectedCrashRecoverAllEngines gives every partition a different
// fault plan (power loss, reordered write-back, torn write-back), crashes
// the whole testbed with a transaction in flight on each partition, and
// requires recovery to surface exactly the committed state everywhere.
func TestFaultInjectedCrashRecoverAllEngines(t *testing.T) {
	base := enginetest.BaseSeed()
	for _, kind := range Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			db, err := New(Config{
				Engine:     kind,
				Partitions: 3,
				Env:        core.EnvConfig{DeviceSize: 64 << 20},
				Options:    core.Options{GroupCommitSize: 1},
				Schemas:    schemas(),
			})
			if err != nil {
				t.Fatal(err)
			}
			// Committed load.
			work := make([][]Txn, 3)
			for p := 0; p < 3; p++ {
				for i := 0; i < 40; i++ {
					key := uint64(i*3 + p)
					work[p] = append(work[p], func(e core.Engine) error {
						return e.Insert("t", key, []core.Value{core.IntVal(int64(key)), core.IntVal(7)})
					})
				}
			}
			if _, err := db.Execute(work); err != nil {
				t.Fatal(err)
			}
			// One in-flight transaction per partition at crash time.
			for p := 0; p < 3; p++ {
				e := db.Engine(p)
				if err := e.Begin(); err != nil {
					t.Fatal(err)
				}
				key := uint64(1000 + p)
				if err := e.Insert("t", key, []core.Value{core.IntVal(int64(key)), core.IntVal(9)}); err != nil {
					t.Fatal(err)
				}
			}
			// A different failure mode on every partition; seeds derive from
			// the -seed flag so a failure replays exactly.
			modes := []nvm.FaultMode{nvm.FaultLoseAll, nvm.FaultReorder, nvm.FaultTear}
			for p := 0; p < 3; p++ {
				db.Env(p).Dev.InjectFaults(nvm.FaultPlan{
					Seed:     base + int64(p),
					Mode:     modes[p%len(modes)],
					KeepProb: 0.5,
					TearProb: 0.7,
				})
			}
			db.Crash()
			if _, err := db.Recover(); err != nil {
				t.Fatalf("recover: %v", err)
			}
			for key := uint64(0); key < 120; key++ {
				row, ok, err := db.Engine(db.Route(key)).Get("t", key)
				if err != nil {
					t.Fatal(err)
				}
				if !ok || row[1].I != 7 {
					t.Fatalf("committed key %d wrong after faulted recovery (ok=%v)", key, ok)
				}
			}
			for p := 0; p < 3; p++ {
				if _, ok, _ := db.Engine(p).Get("t", uint64(1000+p)); ok {
					t.Fatalf("partition %d: in-flight insert survived the crash", p)
				}
				// Partition usable after recovery.
				e := db.Engine(p)
				if err := e.Begin(); err != nil {
					t.Fatal(err)
				}
				key := uint64(2000 + p)
				if err := e.Insert("t", key, []core.Value{core.IntVal(int64(key)), core.IntVal(1)}); err != nil {
					t.Fatal(err)
				}
				if err := e.Commit(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// diffSchemas is the two-table schema (with a secondary index) for the
// cross-engine differential test.
func diffSchemas() []*core.Schema {
	return []*core.Schema{
		{
			Name: "users",
			Columns: []core.Column{
				{Name: "id", Type: core.TInt},
				{Name: "balance", Type: core.TInt},
				{Name: "name", Type: core.TString, Size: 64},
			},
			Secondary: []core.IndexSpec{{
				Name:   "by_balance",
				SecKey: func(row []core.Value) uint32 { return uint32(row[1].I) },
			}},
		},
		{
			Name: "items",
			Columns: []core.Column{
				{Name: "id", Type: core.TInt},
				{Name: "qty", Type: core.TInt},
			},
		},
	}
}

const diffBalanceClasses = 64

// diffOp is one scripted transaction of the differential trace.
type diffOp struct {
	table  string
	kind   int // 0 insert, 1 update, 2 delete
	key    uint64
	val    int64
	abort  bool
	strVal string
}

// diffTrace generates the seeded operation script shared by all engines.
func diffTrace(seed int64, n int) []diffOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]diffOp, 0, n)
	for i := 0; i < n; i++ {
		op := diffOp{
			kind:  rng.Intn(3),
			val:   int64(rng.Intn(diffBalanceClasses)),
			abort: rng.Intn(10) == 0,
		}
		if rng.Intn(4) == 3 {
			op.table = "items"
			op.key = uint64(rng.Intn(80)) + 1
		} else {
			op.table = "users"
			op.key = uint64(rng.Intn(150)) + 1
			op.strVal = fmt.Sprintf("name-%d-%d", i, op.key)
		}
		ops = append(ops, op)
	}
	return ops
}

// diffApply runs one scripted op as a single-partition transaction against
// the engine owning the key, mirroring committed effects into the model.
func diffApply(db *DB, model map[string]map[uint64][]core.Value, op diffOp) error {
	e := db.Engine(db.Route(op.key))
	rows := model[op.table]
	if err := e.Begin(); err != nil {
		return err
	}
	var apply func()
	_, exists := rows[op.key]
	switch {
	case op.kind == 0 && !exists:
		row := diffRow(op)
		if err := e.Insert(op.table, op.key, row); err != nil {
			return fmt.Errorf("insert %s/%d: %w", op.table, op.key, err)
		}
		apply = func() { rows[op.key] = core.CloneRow(row) }
	case op.kind == 1 && exists:
		upd := core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(op.val)}}
		if err := e.Update(op.table, op.key, upd); err != nil {
			return fmt.Errorf("update %s/%d: %w", op.table, op.key, err)
		}
		apply = func() {
			row := core.CloneRow(rows[op.key])
			core.ApplyDelta(row, upd)
			rows[op.key] = row
		}
	case op.kind == 2 && exists:
		if err := e.Delete(op.table, op.key); err != nil {
			return fmt.Errorf("delete %s/%d: %w", op.table, op.key, err)
		}
		apply = func() { delete(rows, op.key) }
	}
	if op.abort {
		return e.Abort()
	}
	if err := e.Commit(); err != nil {
		return err
	}
	if apply != nil {
		apply()
	}
	return nil
}

func diffRow(op diffOp) []core.Value {
	if op.table == "items" {
		return []core.Value{core.IntVal(int64(op.key)), core.IntVal(op.val)}
	}
	return []core.Value{core.IntVal(int64(op.key)), core.IntVal(op.val), core.StrVal(op.strVal)}
}

// digestEngineState canonically serializes the full visible state — primary
// scans of both tables partition by partition, plus sorted secondary-index
// scans over every balance class — and hashes it.
func digestEngineState(db *DB, schemas []*core.Schema) ([32]byte, error) {
	h := sha256.New()
	var le [8]byte
	writeU64 := func(v uint64) { binary.LittleEndian.PutUint64(le[:], v); h.Write(le[:]) }
	for p := 0; p < db.Partitions(); p++ {
		e := db.Engine(p)
		for _, sch := range schemas {
			var scanErr error
			if err := e.ScanRange(sch.Name, 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
				writeU64(pk)
				for ci, col := range sch.Columns {
					if col.Type == core.TInt {
						writeU64(uint64(row[ci].I))
					} else {
						writeU64(uint64(len(row[ci].S)))
						h.Write(row[ci].S)
					}
				}
				return true
			}); err != nil {
				scanErr = err
			}
			if scanErr != nil {
				return [32]byte{}, scanErr
			}
		}
		for sec := uint32(0); sec < diffBalanceClasses; sec++ {
			var pks []uint64
			if err := e.ScanSecondary("users", "by_balance", sec, func(pk uint64) bool {
				pks = append(pks, pk)
				return true
			}); err != nil {
				return [32]byte{}, err
			}
			sortU64(pks)
			writeU64(uint64(sec))
			for _, pk := range pks {
				writeU64(pk)
			}
		}
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out, nil
}

// digestModelState serializes the reference model with the identical
// canonical encoding (same partition split, same orderings).
func digestModelState(parts int, route func(uint64) int, schemas []*core.Schema,
	model map[string]map[uint64][]core.Value) [32]byte {
	h := sha256.New()
	var le [8]byte
	writeU64 := func(v uint64) { binary.LittleEndian.PutUint64(le[:], v); h.Write(le[:]) }
	for p := 0; p < parts; p++ {
		for _, sch := range schemas {
			rows := model[sch.Name]
			var keys []uint64
			for k := range rows {
				if route(k) == p {
					keys = append(keys, k)
				}
			}
			sortU64(keys)
			for _, pk := range keys {
				writeU64(pk)
				row := rows[pk]
				for ci, col := range sch.Columns {
					if col.Type == core.TInt {
						writeU64(uint64(row[ci].I))
					} else {
						writeU64(uint64(len(row[ci].S)))
						h.Write(row[ci].S)
					}
				}
			}
		}
		for sec := uint32(0); sec < diffBalanceClasses; sec++ {
			var pks []uint64
			for k, row := range model["users"] {
				if route(k) == p && uint32(row[1].I) == sec {
					pks = append(pks, k)
				}
			}
			sortU64(pks)
			writeU64(uint64(sec))
			for _, pk := range pks {
				writeU64(pk)
			}
		}
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestDifferentialSixEngines runs the identical seeded transaction script
// on all six engines and an in-memory map model: every engine's canonical
// state serialization must be byte-identical to the model's (and therefore
// to every other engine's).
func TestDifferentialSixEngines(t *testing.T) {
	seed := enginetest.BaseSeed()
	ops := diffTrace(seed, 400)
	want := [32]byte{}
	haveWant := false
	for _, kind := range Kinds {
		db, err := New(Config{
			Engine:     kind,
			Partitions: 2,
			Env:        core.EnvConfig{DeviceSize: 64 << 20},
			Options:    core.Options{GroupCommitSize: 1, MemTableCap: 48, LSMGrowth: 3},
			Schemas:    diffSchemas(),
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		model := map[string]map[uint64][]core.Value{
			"users": make(map[uint64][]core.Value),
			"items": make(map[uint64][]core.Value),
		}
		for i, op := range ops {
			if err := diffApply(db, model, op); err != nil {
				t.Fatalf("%s: op %d (seed %d): %v", kind, i, seed, err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatalf("%s: flush: %v", kind, err)
		}
		got, err := digestEngineState(db, diffSchemas())
		if err != nil {
			t.Fatalf("%s: digest: %v", kind, err)
		}
		wantModel := digestModelState(db.Partitions(), db.Route, diffSchemas(), model)
		if got != wantModel {
			t.Fatalf("%s: engine state digest %x != model digest %x (seed %d)", kind, got, wantModel, seed)
		}
		if haveWant && got != want {
			t.Fatalf("%s: state digest %x differs from previous engines' %x (seed %d)", kind, got, want, seed)
		}
		want, haveWant = got, true
	}
}
