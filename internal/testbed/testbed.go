// Package testbed is the lightweight DBMS of §3 (Fig. 2): a coordinator
// dispatches pre-generated transaction batches to partitions, each served by
// one executor goroutine over its own storage engine and emulated NVM
// device. Transactions execute serially within a partition (the paper's
// lightweight timestamp-ordering scheme), and every transaction touches a
// single partition (§5.1).
package testbed

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nstore/internal/core"
	"nstore/internal/engine/cow"
	"nstore/internal/engine/inp"
	"nstore/internal/engine/logeng"
	"nstore/internal/engine/nvmcow"
	"nstore/internal/engine/nvminp"
	"nstore/internal/engine/nvmlog"
	"nstore/internal/nvm"
)

// EngineKind selects one of the six storage engines.
type EngineKind string

// The six engines of the study.
const (
	InP    EngineKind = "inp"
	CoW    EngineKind = "cow"
	Log    EngineKind = "log"
	NVMInP EngineKind = "nvm-inp"
	NVMCoW EngineKind = "nvm-cow"
	NVMLog EngineKind = "nvm-log"
)

// Kinds lists the engines in the paper's presentation order.
var Kinds = []EngineKind{InP, CoW, Log, NVMInP, NVMCoW, NVMLog}

// IsNVMAware reports whether the engine exploits NVM's persistence (§4).
func (k EngineKind) IsNVMAware() bool {
	return k == NVMInP || k == NVMCoW || k == NVMLog
}

// Traditional returns the engine's traditional counterpart (identity for
// traditional engines).
func (k EngineKind) Traditional() EngineKind {
	switch k {
	case NVMInP:
		return InP
	case NVMCoW:
		return CoW
	case NVMLog:
		return Log
	}
	return k
}

// ErrAbort is returned by a transaction body to request a rollback (e.g.
// the 1% of TPC-C NewOrder transactions that abort).
var ErrAbort = errors.New("testbed: transaction aborted")

// Txn is a stored-procedure invocation bound to one partition.
type Txn func(e core.Engine) error

// Config describes a testbed database.
type Config struct {
	Engine     EngineKind
	Partitions int
	Env        core.EnvConfig // per-partition storage sizing
	Options    core.Options
	Schemas    []*core.Schema
}

// DB is the testbed database: one engine instance per partition.
type DB struct {
	cfg   Config
	parts []*partition

	statsMu      sync.Mutex
	lastRecovery []RecoveryStat
}

// partition guards its env/eng pointers with mu: RecoverPartition swaps
// them on a heal while a metrics scraper may be resolving Engine(i)/Env(i)
// from another goroutine. Transaction execution itself stays single-owner
// (the partition's executor goroutine) and does not need the lock beyond
// pointer resolution.
type partition struct {
	mu  sync.RWMutex
	env *core.Env
	eng core.Engine
}

func (p *partition) engine() core.Engine {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.eng
}

func (p *partition) environ() *core.Env {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.env
}

func buildEngine(kind EngineKind, env *core.Env, schemas []*core.Schema, opts core.Options, recover bool) (core.Engine, error) {
	switch kind {
	case InP:
		if recover {
			return inp.Open(env, schemas, opts)
		}
		return inp.New(env, schemas, opts)
	case CoW:
		if recover {
			return cow.Open(env, schemas, opts)
		}
		return cow.New(env, schemas, opts)
	case Log:
		if recover {
			return logeng.Open(env, schemas, opts)
		}
		return logeng.New(env, schemas, opts)
	case NVMInP:
		if recover {
			return nvminp.Open(env, schemas, opts)
		}
		return nvminp.New(env, schemas, opts)
	case NVMCoW:
		if recover {
			return nvmcow.Open(env, schemas, opts)
		}
		return nvmcow.New(env, schemas, opts)
	case NVMLog:
		if recover {
			return nvmlog.Open(env, schemas, opts)
		}
		return nvmlog.New(env, schemas, opts)
	}
	return nil, fmt.Errorf("testbed: unknown engine %q", kind)
}

// Attach builds a database over previously restored partition devices
// (e.g. from snapshots), running each engine's recovery protocol as after a
// power failure.
func Attach(cfg Config, devs []*nvm.Device) (*DB, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("testbed: no devices")
	}
	cfg.Partitions = len(devs)
	db := &DB{cfg: cfg}
	for i, dev := range devs {
		tmp := &core.Env{Dev: dev}
		var env *core.Env
		var err error
		if cfg.Engine.IsNVMAware() {
			env, err = tmp.Reopen()
		} else {
			env, err = tmp.ReopenVolatile()
		}
		if err != nil {
			return nil, fmt.Errorf("testbed: partition %d env: %w", i, err)
		}
		eng, err := buildEngine(cfg.Engine, env, cfg.Schemas, cfg.Options, true)
		if err != nil {
			return nil, fmt.Errorf("testbed: partition %d: %w", i, err)
		}
		db.parts = append(db.parts, &partition{env: env, eng: eng})
	}
	return db, nil
}

// New creates a database with freshly formatted partitions.
func New(cfg Config) (*DB, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 8
	}
	db := &DB{cfg: cfg}
	if cfg.Env.FSFraction == 0 && cfg.Engine.IsNVMAware() {
		// NVM-aware engines only use the allocator interface; leave just a
		// sliver of the device for the (unused) filesystem.
		cfg.Env.FSFraction = 0.05
	}
	for i := 0; i < cfg.Partitions; i++ {
		env := core.NewEnv(cfg.Env)
		eng, err := buildEngine(cfg.Engine, env, cfg.Schemas, cfg.Options, false)
		if err != nil {
			return nil, fmt.Errorf("testbed: partition %d: %w", i, err)
		}
		db.parts = append(db.parts, &partition{env: env, eng: eng})
	}
	return db, nil
}

// Partitions returns the partition count.
func (db *DB) Partitions() int { return db.cfg.Partitions }

// Options returns the database's effective engine options (defaults
// applied).
func (db *DB) Options() core.Options { return db.cfg.Options.WithDefaults() }

// Engine returns partition i's engine (for direct loading). The pointer
// resolution is safe against a concurrent RecoverPartition swap; the engine
// itself is single-partition and not safe for concurrent data operations.
func (db *DB) Engine(i int) core.Engine { return db.parts[i].engine() }

// Env returns partition i's storage environment. Safe against a concurrent
// RecoverPartition swap, like Engine.
func (db *DB) Env(i int) *core.Env { return db.parts[i].environ() }

// Route maps a primary key to its home partition.
func (db *DB) Route(key uint64) int { return int(key % uint64(db.cfg.Partitions)) }

// Schemas returns the table schemas every partition was built with (the
// network layer validates wire requests against them).
func (db *DB) Schemas() []*core.Schema { return db.cfg.Schemas }

// SetLatency switches every partition's NVM latency profile.
func (db *DB) SetLatency(p nvm.Profile) {
	for _, part := range db.parts {
		part.environ().Dev.SetLatency(p)
	}
}

// SetSyncExtra sets the sync-primitive latency on every device (Fig. 16).
func (db *DB) SetSyncExtra(lat time.Duration) {
	for _, part := range db.parts {
		part.environ().Dev.SetSyncExtra(lat)
	}
}

// SetSyncCLWB switches every device's sync primitive between CLFLUSH and
// CLWB semantics (Appendix C).
func (db *DB) SetSyncCLWB(on bool) {
	for _, part := range db.parts {
		part.environ().Dev.SetSyncCLWB(on)
	}
}

// Result summarizes an Execute run.
type Result struct {
	Txns      int
	Committed int
	Aborted   int
	// Elapsed is the effective completion time: the slowest partition's
	// wall-clock plus its simulated NVM stall.
	Elapsed time.Duration
	// Wall and Stall are the slowest partition's components.
	Wall  time.Duration
	Stall time.Duration
	// Stats aggregates the NVM perf counters across partitions.
	Stats nvm.Stats
}

// Throughput returns transactions per second over the effective time.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Txns) / r.Elapsed.Seconds()
}

// Execute runs each partition's transaction list on its executor goroutine,
// serially within the partition, and returns the merged result. A Txn
// returning ErrAbort is rolled back; any other error stops the run.
func (db *DB) Execute(perPart [][]Txn) (Result, error) {
	return db.execute(perPart, true)
}

// ExecuteSequential runs the partitions one after another on the calling
// goroutine. The result still models parallel hardware (effective time =
// slowest partition's wall + stall), but without goroutine-scheduling and
// shared-CPU noise — benchmark harnesses use this for stable measurements.
func (db *DB) ExecuteSequential(perPart [][]Txn) (Result, error) {
	return db.execute(perPart, false)
}

func (db *DB) execute(perPart [][]Txn, parallel bool) (Result, error) {
	if len(perPart) != len(db.parts) {
		return Result{}, fmt.Errorf("testbed: %d txn lists for %d partitions", len(perPart), len(db.parts))
	}
	type partRes struct {
		committed, aborted int
		wall               time.Duration
		stall              time.Duration
		err                error
	}
	results := make([]partRes, len(db.parts))
	runPart := func(i int) {
		part := db.parts[i]
		stall0 := part.env.Dev.Stats().Stall
		start := time.Now()
		for _, txn := range perPart[i] {
			if err := part.eng.Begin(); err != nil {
				results[i].err = err
				return
			}
			err := txn(part.eng)
			switch {
			case err == nil:
				if err := part.eng.Commit(); err != nil {
					results[i].err = err
					return
				}
				results[i].committed++
			case errors.Is(err, ErrAbort):
				if err := part.eng.Abort(); err != nil {
					results[i].err = err
					return
				}
				results[i].aborted++
			default:
				if aerr := part.eng.Abort(); aerr != nil {
					// The rollback itself failed: the partition state is
					// suspect, so report both causes instead of hiding the
					// abort failure behind the transaction error.
					err = errors.Join(err, aerr)
				}
				results[i].err = err
				return
			}
		}
		results[i].wall = time.Since(start)
		results[i].stall = part.env.Dev.Stats().Stall - stall0
	}
	if parallel {
		var wg sync.WaitGroup
		for i := range db.parts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runPart(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range db.parts {
			runPart(i)
		}
	}

	var res Result
	for i, pr := range results {
		if pr.err != nil {
			return res, fmt.Errorf("testbed: partition %d: %w", i, pr.err)
		}
		res.Committed += pr.committed
		res.Aborted += pr.aborted
		res.Txns += pr.committed + pr.aborted
		if pr.wall+pr.stall > res.Elapsed {
			res.Elapsed = pr.wall + pr.stall
			res.Wall = pr.wall
			res.Stall = pr.stall
		}
	}
	res.Stats = db.Stats()
	return res, nil
}

// Flush forces batched durability work on every partition.
func (db *DB) Flush() error {
	for _, part := range db.parts {
		if err := part.eng.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Stats aggregates NVM perf counters across partitions. Safe from any
// goroutine (devices survive partition heals, so the totals are monotonic
// between explicit resets).
func (db *DB) Stats() nvm.Stats {
	var s nvm.Stats
	for _, part := range db.parts {
		s = s.Add(part.environ().Dev.Stats())
	}
	return s
}

// ResetStats zeroes the counters on every device.
func (db *DB) ResetStats() {
	for _, part := range db.parts {
		part.environ().Dev.ResetStats()
	}
}

// Footprint sums the engines' storage footprints.
func (db *DB) Footprint() core.Footprint {
	var f core.Footprint
	for _, part := range db.parts {
		pf := part.eng.Footprint()
		f.Table += pf.Table
		f.Index += pf.Index
		f.Log += pf.Log
		f.Checkpoint += pf.Checkpoint
		f.Other += pf.Other
	}
	return f
}

// Breakdown sums the engines' execution-time breakdowns.
func (db *DB) Breakdown() core.Breakdown {
	var b core.Breakdown
	for _, part := range db.parts {
		b.Add(part.eng.Breakdown())
	}
	return b
}

// Crash simulates a power failure on every partition: volatile CPU caches
// and memory-controller buffers are lost.
func (db *DB) Crash() {
	for _, part := range db.parts {
		part.env.Dev.Crash()
	}
}

// CrashPartition simulates a power failure on partition i only, leaving
// the other partitions serving. The serving runtime uses this to fence a
// partition whose engine failed before re-running its recovery protocol.
func (db *DB) CrashPartition(i int) { db.parts[i].env.Dev.Crash() }

// RecoverPartition reopens partition i after a crash, running the
// engine's recovery protocol, and returns its recovery latency.
func (db *DB) RecoverPartition(i int) (time.Duration, error) {
	start := time.Now()
	part := db.parts[i]
	var env *core.Env
	var err error
	if db.cfg.Engine.IsNVMAware() {
		env, err = part.env.Reopen()
	} else {
		env, err = part.env.ReopenVolatile()
	}
	if err != nil {
		return 0, fmt.Errorf("testbed: recover partition %d: %w", i, err)
	}
	eng, err := buildEngine(db.cfg.Engine, env, db.cfg.Schemas, db.cfg.Options, true)
	if err != nil {
		return 0, fmt.Errorf("testbed: recover partition %d: %w", i, err)
	}
	part.mu.Lock()
	part.env, part.eng = env, eng
	part.mu.Unlock()
	// Include the simulated NVM stall recovery work incurred.
	d := time.Since(start)
	rep := core.RecoveryReport{Workers: 1}
	if rr, ok := eng.(core.RecoveryReporter); ok {
		rep = rr.RecoveryReport()
	}
	db.recordRecoveryStat(RecoveryStat{Partition: i, Wall: d, Records: rep.Records, Workers: rep.Workers})
	return d, nil
}

// Recover reopens every partition after a crash, running the engine's
// recovery protocol behind the default bounded worker pool, and returns the
// wall-clock recovery latency (the slowest partition, since they recover in
// parallel).
func (db *DB) Recover() (time.Duration, error) {
	return db.RecoverWith(0)
}
