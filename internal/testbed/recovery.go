package testbed

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"strings"
	"time"

	"nstore/internal/core"
)

// RecoveryStat records one partition's last recovery pass.
type RecoveryStat struct {
	Partition int
	// Wall is the partition's recovery latency (engine recovery protocol
	// plus environment reopen), including the simulated NVM stall.
	Wall time.Duration
	// Records is the engine's unit count of recovery work (WAL records
	// replayed, pages warmed, chunks classified).
	Records int64
	// Workers is the intra-engine fan-out the recovery ran with.
	Workers int
}

func (db *DB) recordRecoveryStat(s RecoveryStat) {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	if len(db.lastRecovery) != len(db.parts) {
		db.lastRecovery = make([]RecoveryStat, len(db.parts))
		for i := range db.lastRecovery {
			db.lastRecovery[i].Partition = i
		}
	}
	db.lastRecovery[s.Partition] = s
}

// RecoveryStats returns a copy of the last recorded per-partition recovery
// statistics (zero-valued entries for partitions that never recovered). Safe
// to call concurrently with partition heals.
func (db *DB) RecoveryStats() []RecoveryStat {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	out := make([]RecoveryStat, len(db.lastRecovery))
	copy(out, db.lastRecovery)
	return out
}

// RecoverWith reopens every partition after a crash behind a bounded worker
// pool of the given size (<= 0 picks the RecoveryWorkers default, 1 recovers
// the partitions strictly sequentially). It returns the wall-clock recovery
// latency modeled on parallel hardware: the slowest single partition, since
// each partition owns its device and there is no cross-partition
// happens-before during recovery.
func (db *DB) RecoverWith(parallelism int) (time.Duration, error) {
	pool := parallelism
	if pool <= 0 {
		pool = core.RecoveryWorkers(0)
	}
	if pool > len(db.parts) {
		pool = len(db.parts)
	}
	durs := make([]time.Duration, len(db.parts))
	err := core.ParallelChunks(pool, len(db.parts), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			d, err := db.RecoverPartition(i)
			if err != nil {
				return err
			}
			durs[i] = d
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	var max time.Duration
	for _, d := range durs {
		if d > max {
			max = d
		}
	}
	return max, nil
}

// StateDigest canonically serializes the database's visible state — primary
// scans of every configured table, partition by partition — and hashes it.
// Two recoveries of the same device images must produce the same digest
// regardless of recovery parallelism; the bench sweep asserts exactly that.
func (db *DB) StateDigest() ([32]byte, error) {
	h := sha256.New()
	for p := 0; p < db.Partitions(); p++ {
		if err := db.digestPartition(h, p); err != nil {
			return [32]byte{}, err
		}
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out, nil
}

// PartitionDigest hashes one partition's visible state with the same
// canonical serialization StateDigest uses. The cluster layer compares a
// shard (one partition on each replica) across nodes, where whole-database
// digests would mix in shards the nodes do not share.
func (db *DB) PartitionDigest(p int) ([32]byte, error) {
	h := sha256.New()
	if err := db.digestPartition(h, p); err != nil {
		return [32]byte{}, err
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out, nil
}

func (db *DB) digestPartition(h hash.Hash, p int) error {
	var le [8]byte
	writeU64 := func(v uint64) { binary.LittleEndian.PutUint64(le[:], v); h.Write(le[:]) }
	e := db.Engine(p)
	for _, sch := range db.cfg.Schemas {
		// Hidden bookkeeping tables ("__" prefix: 2PC locks and txn status
		// records) are transient protocol state, not visible data — a shard
		// mid-roll-forward must digest equal to one already settled.
		if strings.HasPrefix(sch.Name, "__") {
			continue
		}
		if err := e.ScanRange(sch.Name, 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			writeU64(pk)
			for ci, col := range sch.Columns {
				if col.Type == core.TInt {
					writeU64(uint64(row[ci].I))
				} else {
					writeU64(uint64(len(row[ci].S)))
					h.Write(row[ci].S)
				}
			}
			return true
		}); err != nil {
			return err
		}
	}
	return nil
}
