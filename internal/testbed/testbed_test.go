package testbed

import (
	"errors"
	"testing"

	"nstore/internal/core"
)

func schemas() []*core.Schema {
	return []*core.Schema{{
		Name:    "t",
		Columns: []core.Column{{Name: "id", Type: core.TInt}, {Name: "v", Type: core.TInt}},
	}}
}

func newDB(t testing.TB, kind EngineKind) *DB {
	t.Helper()
	db, err := New(Config{
		Engine:     kind,
		Partitions: 4,
		Env:        core.EnvConfig{DeviceSize: 64 << 20},
		Schemas:    schemas(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExecutePartitionedTxns(t *testing.T) {
	db := newDB(t, NVMInP)
	work := make([][]Txn, 4)
	for p := 0; p < 4; p++ {
		p := p
		for i := 0; i < 50; i++ {
			key := uint64(i*4 + p)
			work[p] = append(work[p], func(e core.Engine) error {
				return e.Insert("t", key, []core.Value{core.IntVal(int64(key)), core.IntVal(1)})
			})
		}
	}
	res, err := db.Execute(work)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 200 || res.Aborted != 0 {
		t.Fatalf("committed=%d aborted=%d", res.Committed, res.Aborted)
	}
	if res.Throughput() <= 0 {
		t.Error("no throughput")
	}
	// Every key must be on its routed partition and nowhere else.
	for key := uint64(0); key < 200; key++ {
		home := db.Route(key)
		for p := 0; p < 4; p++ {
			_, ok, _ := db.Engine(p).Get("t", key)
			if ok != (p == home) {
				t.Fatalf("key %d: present=%v on partition %d (home %d)", key, ok, p, home)
			}
		}
	}
}

func TestErrAbortRollsBack(t *testing.T) {
	db := newDB(t, InP)
	work := make([][]Txn, 4)
	work[0] = []Txn{
		func(e core.Engine) error {
			return e.Insert("t", 0, []core.Value{core.IntVal(0), core.IntVal(1)})
		},
		func(e core.Engine) error {
			if err := e.Insert("t", 4, []core.Value{core.IntVal(4), core.IntVal(1)}); err != nil {
				return err
			}
			return ErrAbort
		},
	}
	res, err := db.Execute(work)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 1 || res.Aborted != 1 {
		t.Fatalf("committed=%d aborted=%d", res.Committed, res.Aborted)
	}
	if _, ok, _ := db.Engine(0).Get("t", 4); ok {
		t.Error("aborted insert visible")
	}
}

func TestRealErrorPropagates(t *testing.T) {
	db := newDB(t, CoW)
	boom := errors.New("boom")
	work := make([][]Txn, 4)
	work[2] = []Txn{func(e core.Engine) error { return boom }}
	if _, err := db.Execute(work); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrashRecoverAllEngines(t *testing.T) {
	for _, kind := range Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			db := newDB(t, kind)
			work := make([][]Txn, 4)
			for p := 0; p < 4; p++ {
				for i := 0; i < 25; i++ {
					key := uint64(i*4 + p)
					work[p] = append(work[p], func(e core.Engine) error {
						return e.Insert("t", key, []core.Value{core.IntVal(int64(key)), core.IntVal(7)})
					})
				}
			}
			if _, err := db.Execute(work); err != nil {
				t.Fatal(err)
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			db.Crash()
			d, err := db.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if d <= 0 {
				t.Error("zero recovery latency")
			}
			for key := uint64(0); key < 100; key++ {
				row, ok, _ := db.Engine(db.Route(key)).Get("t", key)
				if !ok || row[1].I != 7 {
					t.Fatalf("key %d wrong after recovery (ok=%v)", key, ok)
				}
			}
		})
	}
}

func TestEngineKindHelpers(t *testing.T) {
	if !NVMInP.IsNVMAware() || InP.IsNVMAware() {
		t.Error("IsNVMAware wrong")
	}
	if NVMLog.Traditional() != Log || CoW.Traditional() != CoW {
		t.Error("Traditional wrong")
	}
	if len(Kinds) != 6 {
		t.Errorf("Kinds has %d entries", len(Kinds))
	}
}

func TestFootprintAndBreakdownAggregate(t *testing.T) {
	db := newDB(t, Log)
	work := make([][]Txn, 4)
	for p := 0; p < 4; p++ {
		for i := 0; i < 30; i++ {
			key := uint64(i*4 + p)
			work[p] = append(work[p], func(e core.Engine) error {
				return e.Insert("t", key, []core.Value{core.IntVal(int64(key)), core.IntVal(1)})
			})
		}
	}
	if _, err := db.Execute(work); err != nil {
		t.Fatal(err)
	}
	if db.Footprint().Total() == 0 {
		t.Error("zero footprint")
	}
	bd := db.Breakdown()
	if bd.Total() == 0 {
		t.Error("zero breakdown")
	}
	if db.Stats().Loads == 0 {
		t.Error("zero NVM loads")
	}
	db.ResetStats()
	if db.Stats().Loads != 0 {
		t.Error("ResetStats did not reset")
	}
}
