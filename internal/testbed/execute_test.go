package testbed

import (
	"testing"

	"nstore/internal/core"
)

// TestSequentialAndParallelEquivalent: both execution modes must commit the
// same transactions and leave identical database state.
func TestSequentialAndParallelEquivalent(t *testing.T) {
	build := func() (*DB, [][]Txn) {
		db := newDB(t, NVMInP)
		work := make([][]Txn, 4)
		for p := 0; p < 4; p++ {
			for i := 0; i < 40; i++ {
				key := uint64(i*4 + p)
				work[p] = append(work[p], func(e core.Engine) error {
					return e.Insert("t", key, []core.Value{core.IntVal(int64(key)), core.IntVal(int64(key * 3))})
				})
				if i%5 == 4 {
					k2 := key
					work[p] = append(work[p], func(e core.Engine) error {
						return e.Update("t", k2, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(-1)}})
					})
				}
			}
		}
		return db, work
	}

	dbA, workA := build()
	resA, err := dbA.Execute(workA)
	if err != nil {
		t.Fatal(err)
	}
	dbB, workB := build()
	resB, err := dbB.ExecuteSequential(workB)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Committed != resB.Committed || resA.Txns != resB.Txns {
		t.Fatalf("commit counts differ: %d/%d vs %d/%d",
			resA.Committed, resA.Txns, resB.Committed, resB.Txns)
	}
	for key := uint64(0); key < 160; key++ {
		a, okA, _ := dbA.Engine(dbA.Route(key)).Get("t", key)
		b, okB, _ := dbB.Engine(dbB.Route(key)).Get("t", key)
		if okA != okB {
			t.Fatalf("key %d presence differs", key)
		}
		if okA && (a[1].I != b[1].I) {
			t.Fatalf("key %d values differ: %d vs %d", key, a[1].I, b[1].I)
		}
	}
	// NVM traffic must be identical too: execution order within a
	// partition is the same and partitions have private devices.
	if resA.Stats.BytesWritten != resB.Stats.BytesWritten {
		t.Errorf("bytes written differ: %d vs %d", resA.Stats.BytesWritten, resB.Stats.BytesWritten)
	}
}

func TestExecuteRejectsWrongPartitionCount(t *testing.T) {
	db := newDB(t, InP)
	if _, err := db.Execute(make([][]Txn, 3)); err == nil {
		t.Fatal("accepted mismatched txn lists")
	}
}

func TestResultThroughputZeroOnEmpty(t *testing.T) {
	var r Result
	if r.Throughput() != 0 {
		t.Fatal("zero-elapsed throughput not zero")
	}
}

func TestNVMAwareEnginesGetBiggerArena(t *testing.T) {
	dbT := newDB(t, InP)
	dbN := newDB(t, NVMInP)
	// Same device size; the NVM-aware configuration gives nearly the whole
	// device to the allocator interface.
	fsSizeT := dbT.Env(0).Dev.ReadU64(8)
	fsSizeN := dbN.Env(0).Dev.ReadU64(8)
	if fsSizeN >= fsSizeT {
		t.Fatalf("NVM-aware fs region %d >= traditional %d", fsSizeN, fsSizeT)
	}
}
