package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"nstore/internal/testbed"
)

// TestRecoverAllRacesSubmitAndMetrics is the race-detector regression for the
// parallel recovery pipeline: client goroutines keep submitting transactions
// while RecoverAll rips partitions out from under them and a scraper snapshots
// the metrics registry (which reads per-partition recovery stats) the whole
// time. No faults are armed — every recovery must succeed — so the only
// acceptable submit failures are the typed fail-fast errors. Run under -race;
// the CI recovery lane does.
func TestRecoverAllRacesSubmitAndMetrics(t *testing.T) {
	db := newDB(t, testbed.NVMInP, 4, 32<<20)
	rt := New(db, Config{QueueDepth: 16})
	defer rt.Close()

	var (
		stop      atomic.Bool
		committed atomic.Int64
		key       atomic.Uint64
		wg        sync.WaitGroup
	)
	key.Store(1)

	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				k := key.Add(1)
				err := rt.Submit(context.Background(), k, insertTxn(k, int64(k)))
				switch {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, ErrRecovering), errors.Is(err, ErrOverloaded):
					// expected while a partition is being healed or backed up
				default:
					t.Errorf("Submit(%d): %v", k, err)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			snap := rt.Metrics().Snapshot()
			if len(snap.Gauges)+len(snap.Counters) == 0 {
				t.Error("metrics snapshot came back empty")
				return
			}
		}
	}()

	for round := 0; round < 6; round++ {
		if err := rt.RecoverAll(2); err != nil {
			t.Fatalf("RecoverAll round %d: %v", round, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if committed.Load() == 0 {
		t.Fatal("no transaction committed around the recovery storms")
	}
	st := rt.Stats()
	if st.Heals < int64(6*4) {
		t.Errorf("Stats.Heals = %d, want >= 24 (6 rounds x 4 partitions)", st.Heals)
	}
	if st.HealFails != 0 {
		t.Errorf("Stats.HealFails = %d with no faults armed", st.HealFails)
	}
}
