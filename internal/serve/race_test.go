package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"nstore/internal/core"
	"nstore/internal/testbed"
)

// TestRecoverAllRacesSubmitAndMetrics is the race-detector regression for the
// parallel recovery pipeline: client goroutines keep submitting transactions
// while RecoverAll rips partitions out from under them and a scraper snapshots
// the metrics registry (which reads per-partition recovery stats) the whole
// time. No faults are armed — every recovery must succeed — so the only
// acceptable submit failures are the typed fail-fast errors. Run under -race;
// the CI recovery lane does.
func TestRecoverAllRacesSubmitAndMetrics(t *testing.T) {
	db := newDB(t, testbed.NVMInP, 4, 32<<20)
	rt := New(db, Config{QueueDepth: 16})
	defer rt.Close()

	var (
		stop      atomic.Bool
		committed atomic.Int64
		key       atomic.Uint64
		wg        sync.WaitGroup
	)
	key.Store(1)

	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				k := key.Add(1)
				err := rt.Submit(context.Background(), k, insertTxn(k, int64(k)))
				switch {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, ErrRecovering), errors.Is(err, ErrOverloaded):
					// expected while a partition is being healed or backed up
				default:
					t.Errorf("Submit(%d): %v", k, err)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			snap := rt.Metrics().Snapshot()
			if len(snap.Gauges)+len(snap.Counters) == 0 {
				t.Error("metrics snapshot came back empty")
				return
			}
		}
	}()

	for round := 0; round < 6; round++ {
		if err := rt.RecoverAll(2); err != nil {
			t.Fatalf("RecoverAll round %d: %v", round, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if committed.Load() == 0 {
		t.Fatal("no transaction committed around the recovery storms")
	}
	st := rt.Stats()
	if st.Heals < int64(6*4) {
		t.Errorf("Stats.Heals = %d, want >= 24 (6 rounds x 4 partitions)", st.Heals)
	}
	if st.HealFails != 0 {
		t.Errorf("Stats.HealFails = %d with no faults armed", st.HealFails)
	}
}

// TestSnapshotReadsRaceWritesAndRecovery is the race-detector regression for
// the MVCC read path: reader goroutines pin snapshot views (point reads and
// full scans) while writers commit and RecoverAll power-cycles every
// partition mid-traffic. Beyond being race-clean, two invariants hold:
// an acked insert must be visible to every later snapshot (acks imply
// durability, and heals only roll back to the durable frontier), and a scan
// must never surface a row an executor hasn't acked (value always equals the
// committed key).
func TestSnapshotReadsRaceWritesAndRecovery(t *testing.T) {
	db := newDB(t, testbed.NVMInP, 4, 32<<20)
	rt := New(db, Config{QueueDepth: 16, Readers: 3})
	defer rt.Close()

	var (
		stop  atomic.Bool
		key   atomic.Uint64
		acked sync.Map // key -> struct{}{}, recorded only after the ack
		reads atomic.Int64
		wg    sync.WaitGroup
	)
	key.Store(1)

	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				k := key.Add(1)
				err := rt.Submit(context.Background(), k, insertTxn(k, int64(k)))
				switch {
				case err == nil:
					acked.Store(k, struct{}{})
				case errors.Is(err, ErrRecovering), errors.Is(err, ErrOverloaded):
				default:
					t.Errorf("Submit(%d): %v", k, err)
					return
				}
			}
		}()
	}

	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Every key acked before this iteration must be visible to a
				// view pinned now (ack ⇒ published ⇒ ts ≤ any later view).
				var probe uint64
				acked.Range(func(k, _ any) bool { probe = k.(uint64); return false })
				if probe != 0 {
					row, found, err := rt.GetRow(context.Background(), "t", probe)
					switch {
					case err == nil:
						if !found {
							t.Errorf("acked key %d invisible to a later snapshot", probe)
							return
						}
						if row[1].I != int64(probe) {
							t.Errorf("key %d: snapshot read %d", probe, row[1].I)
							return
						}
						reads.Add(1)
					case errors.Is(err, ErrRecovering), errors.Is(err, ErrOverloaded):
					default:
						t.Errorf("GetRow(%d): %v", probe, err)
						return
					}
				}
				for p := 0; p < db.Partitions(); p++ {
					err := rt.ReadPart(context.Background(), p, func(v core.ReadView) error {
						return v.ScanRange("t", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
							if row[1].I != int64(pk) {
								t.Errorf("partition %d key %d: scan saw torn value %d", p, pk, row[1].I)
								return false
							}
							return true
						})
					})
					switch {
					case err == nil:
						reads.Add(1)
					case errors.Is(err, ErrRecovering), errors.Is(err, ErrOverloaded):
					default:
						t.Errorf("ReadPart(%d): %v", p, err)
						return
					}
				}
			}
		}()
	}

	for round := 0; round < 4; round++ {
		if err := rt.RecoverAll(2); err != nil {
			t.Fatalf("RecoverAll round %d: %v", round, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if reads.Load() == 0 {
		t.Fatal("no snapshot read succeeded around the recovery storms")
	}
	st := rt.Stats()
	if st.Reads == 0 {
		t.Errorf("Stats.Reads = 0 after %d successful reads", reads.Load())
	}
}
