package serve

import (
	"fmt"
	"time"

	"nstore/internal/core"
	"nstore/internal/obs"
	"nstore/internal/testbed"
)

// buildMetrics registers the runtime's metric surface. Naming and lifetime
// rules (the stable schema the /metrics endpoint serves):
//
//   - serve_* counters read the supervisor's own atomics, so a scrape
//     always matches Stats(). Monotonic for the runtime's lifetime.
//   - nvm_* counters aggregate the partition devices. Devices survive
//     partition heals, so these are monotonic too (absent an explicit
//     ResetStats).
//   - pmfs_*, wal_* and bd_* values come from the filesystem, WAL and
//     engine instances, which are REBUILT when a partition heals — they
//     restart from zero at that point, so they are registered as gauges,
//     not counters.
//   - serve_partNN_* metrics are per partition: ack-latency histograms
//     (recorded on the submit path), queue-depth and degraded gauges.
func (rt *Runtime) buildMetrics() {
	reg := obs.New()
	rt.reg = reg

	reg.CounterFunc("serve_committed", rt.stats.committed.Load)
	reg.CounterFunc("serve_aborted", rt.stats.aborted.Load)
	reg.CounterFunc("serve_failed", rt.stats.failed.Load)
	reg.CounterFunc("serve_retries", rt.stats.retries.Load)
	reg.CounterFunc("serve_panics", rt.stats.panics.Load)
	reg.CounterFunc("serve_heals", rt.stats.heals.Load)
	reg.CounterFunc("serve_heal_fails", rt.stats.healFails.Load)
	reg.CounterFunc("serve_overloaded", rt.stats.overloaded.Load)
	reg.CounterFunc("serve_recovering", rt.stats.recovering.Load)
	reg.CounterFunc("serve_reads", rt.stats.reads.Load)
	reg.CounterFunc("serve_read_fails", rt.stats.readFails.Load)
	reg.CounterFunc("serve_conflicts", rt.stats.conflicts.Load)
	reg.GaugeFunc("serve_degraded", func() float64 {
		return float64(rt.stats.degraded.Load())
	})

	db := rt.db
	nvmCounter := func(sel func(s nvmStats) int64) func() int64 {
		return func() int64 { return sel(nvmStatsOf(db)) }
	}
	reg.CounterFunc("nvm_loads", nvmCounter(func(s nvmStats) int64 { return s.loads }))
	reg.CounterFunc("nvm_stores", nvmCounter(func(s nvmStats) int64 { return s.stores }))
	reg.CounterFunc("nvm_flushes", nvmCounter(func(s nvmStats) int64 { return s.flushes }))
	reg.CounterFunc("nvm_fences", nvmCounter(func(s nvmStats) int64 { return s.fences }))
	reg.CounterFunc("nvm_bytes_read", nvmCounter(func(s nvmStats) int64 { return s.bytesRead }))
	reg.CounterFunc("nvm_bytes_written", nvmCounter(func(s nvmStats) int64 { return s.bytesWritten }))
	reg.CounterFunc("nvm_stall_ns", nvmCounter(func(s nvmStats) int64 { return s.stallNS }))

	reg.GaugeFunc("pmfs_fsyncs", func() float64 {
		var n int64
		for i := 0; i < db.Partitions(); i++ {
			s, _ := db.Env(i).FS.SyncStats()
			n += s
		}
		return float64(n)
	})
	reg.GaugeFunc("pmfs_fsync_ns", func() float64 {
		var ns int64
		for i := 0; i < db.Partitions(); i++ {
			_, n := db.Env(i).FS.SyncStats()
			ns += n
		}
		return float64(ns)
	})

	walGauge := func(sel func(core.WalStats) int64) func() float64 {
		return func() float64 {
			var n int64
			for i := 0; i < db.Partitions(); i++ {
				if ws, ok := db.Engine(i).(core.WalStatser); ok {
					n += sel(ws.WalStats())
				}
			}
			return float64(n)
		}
	}
	reg.GaugeFunc("wal_records", walGauge(func(s core.WalStats) int64 { return s.Records }))
	reg.GaugeFunc("wal_bytes", walGauge(func(s core.WalStats) int64 { return s.Bytes }))
	reg.GaugeFunc("wal_flushes", walGauge(func(s core.WalStats) int64 { return s.Fsyncs }))

	// Staged flush pipeline + value log (Log engines only; zero elsewhere).
	// Engine instances are rebuilt on partition heals, hence gauges.
	flushGauge := func(sel func(core.FlushStats) int64) func() float64 {
		return func() float64 {
			var n int64
			for i := 0; i < db.Partitions(); i++ {
				if fs, ok := db.Engine(i).(core.FlushStatser); ok {
					n += sel(fs.FlushStats())
				}
			}
			return float64(n)
		}
	}
	reg.GaugeFunc("flush_flushes", flushGauge(func(s core.FlushStats) int64 { return s.Flushes }))
	reg.GaugeFunc("flush_compactions", flushGauge(func(s core.FlushStats) int64 { return s.Compactions }))
	reg.GaugeFunc("flush_gc_runs", flushGauge(func(s core.FlushStats) int64 { return s.GCRuns }))
	reg.GaugeFunc("flush_failures", flushGauge(func(s core.FlushStats) int64 { return s.Failures }))
	reg.GaugeFunc("flush_prepare_ns", flushGauge(func(s core.FlushStats) int64 { return s.PrepareNs }))
	reg.GaugeFunc("flush_build_ns", flushGauge(func(s core.FlushStats) int64 { return s.BuildNs }))
	reg.GaugeFunc("flush_install_ns", flushGauge(func(s core.FlushStats) int64 { return s.InstallNs }))
	reg.GaugeFunc("flush_release_ns", flushGauge(func(s core.FlushStats) int64 { return s.ReleaseNs }))
	reg.GaugeFunc("vlog_segments", flushGauge(func(s core.FlushStats) int64 { return s.VlogSegments }))
	reg.GaugeFunc("vlog_bytes", flushGauge(func(s core.FlushStats) int64 { return s.VlogBytes }))
	reg.GaugeFunc("vlog_discard", flushGauge(func(s core.FlushStats) int64 { return s.VlogDiscard }))
	reg.GaugeFunc("vlog_reclaimed", flushGauge(func(s core.FlushStats) int64 { return s.VlogReclaimed }))
	reg.GaugeFunc("vlog_space_amp", func() float64 {
		// Aggregate amplification: total live-segment bytes over bytes not
		// yet known dead, folded across partitions.
		var agg core.FlushStats
		for i := 0; i < db.Partitions(); i++ {
			if fs, ok := db.Engine(i).(core.FlushStatser); ok {
				st := fs.FlushStats()
				agg.VlogBytes += st.VlogBytes
				agg.VlogDiscard += st.VlogDiscard
			}
		}
		return agg.VlogSpaceAmp()
	})

	bdGauge := func(sel func(core.Breakdown) time.Duration) func() float64 {
		return func() float64 {
			var total time.Duration
			for i := 0; i < db.Partitions(); i++ {
				total += sel(db.Engine(i).Breakdown().Snapshot())
			}
			return float64(total)
		}
	}
	reg.GaugeFunc("bd_storage_ns", bdGauge(func(b core.Breakdown) time.Duration { return b.Storage }))
	reg.GaugeFunc("bd_recovery_ns", bdGauge(func(b core.Breakdown) time.Duration { return b.Recovery }))
	reg.GaugeFunc("bd_index_ns", bdGauge(func(b core.Breakdown) time.Duration { return b.Index }))
	reg.GaugeFunc("bd_other_ns", bdGauge(func(b core.Breakdown) time.Duration { return b.Other }))

	for i, ex := range rt.execs {
		ex := ex
		rt.ackHist = append(rt.ackHist, reg.Histogram(fmt.Sprintf("serve_part%02d_ack_ns", i)))
		rt.readHist = append(rt.readHist, reg.Histogram(fmt.Sprintf("serve_part%02d_read_ns", i)))
		// Per-writer submit→ack histograms exist only in OCC mode: they
		// split the partition's ack latency by which optimistic writer
		// carried the transaction (skew here means one writer eating the
		// conflict retries).
		if rt.cfg.Writers > 1 {
			hs := make([]*obs.Histogram, rt.cfg.Writers)
			for w := range hs {
				hs[w] = reg.Histogram(fmt.Sprintf("serve_part%02d_writer%02d_ack_ns", i, w))
			}
			rt.writerHist = append(rt.writerHist, hs)
		}
		reg.GaugeFunc(fmt.Sprintf("serve_part%02d_queue_depth", i), func() float64 {
			return float64(len(ex.ch))
		})
		readQ := rt.readQs[i]
		reg.GaugeFunc(fmt.Sprintf("serve_part%02d_read_queue_depth", i), func() float64 {
			return float64(len(readQ))
		})
		reg.GaugeFunc(fmt.Sprintf("serve_part%02d_degraded", i), func() float64 {
			if ex.degraded.Load() {
				return 1
			}
			return 0
		})
		// Recovery stats are rebuilt on every heal, hence gauges. They read
		// the testbed's mutex-guarded per-partition snapshot, so a scrape is
		// safe against a concurrent RecoverPartition.
		part := i
		reg.GaugeFunc(fmt.Sprintf("serve_part%02d_recovery_ns", i), func() float64 {
			return float64(recoveryStatOf(db, part).Wall)
		})
		reg.GaugeFunc(fmt.Sprintf("serve_part%02d_recovery_records", i), func() float64 {
			return float64(recoveryStatOf(db, part).Records)
		})
		reg.GaugeFunc(fmt.Sprintf("serve_part%02d_recovery_workers", i), func() float64 {
			return float64(recoveryStatOf(db, part).Workers)
		})
		// Active snapshot views pin the GC watermark; a stuck gauge here
		// means some reader is holding back version reclamation. Reads the
		// testbed's mutex-guarded engine pointer, so a scrape is safe
		// against a concurrent partition heal.
		reg.GaugeFunc(fmt.Sprintf("serve_part%02d_active_views", i), func() float64 {
			if sr, ok := db.Engine(part).(core.SnapshotReader); ok {
				return float64(sr.Oracle().ActiveViews())
			}
			return 0
		})
	}
}

// recoveryStatOf fetches one partition's last recovery stat (zero value if
// the partition never recovered).
func recoveryStatOf(db *testbed.DB, part int) testbed.RecoveryStat {
	stats := db.RecoveryStats()
	if part < len(stats) {
		return stats[part]
	}
	return testbed.RecoveryStat{}
}

// nvmStats flattens the aggregated device counters to signed ints for the
// counter callbacks.
type nvmStats struct {
	loads, stores, flushes, fences   int64
	bytesRead, bytesWritten, stallNS int64
}

func nvmStatsOf(db *testbed.DB) nvmStats {
	s := db.Stats()
	return nvmStats{
		loads:        int64(s.Loads),
		stores:       int64(s.Stores),
		flushes:      int64(s.Flushes),
		fences:       int64(s.Fences),
		bytesRead:    int64(s.BytesRead),
		bytesWritten: int64(s.BytesWritten),
		stallNS:      int64(s.Stall),
	}
}

// Metrics returns the runtime's registry (for the HTTP endpoint and tests).
func (rt *Runtime) Metrics() *obs.Registry { return rt.reg }
