package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nstore/internal/core"
	"nstore/internal/testbed"
	"nstore/internal/txn2pc"
	"nstore/internal/wire"
)

// new2PCDB is newDB with the hidden txn2pc bookkeeping tables attached, so
// lock records land in real shadowing tables like a cluster node's.
func new2PCDB(t testing.TB, kind testbed.EngineKind) *testbed.DB {
	t.Helper()
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: 1,
		Env:        core.EnvConfig{DeviceSize: 32 << 20},
		Options:    core.Options{GroupCommitSize: 1},
		Schemas:    txn2pc.AugmentSchemas(schemas()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestOCCPrewriteFirstCommitterWins pins the property the wire server's
// write path leans on: under optimistic executors, a cross-shard prewrite's
// lock-table write and a plain client write to the same key are ordinary
// OCC read/write-set entries, so first-committer-wins serializes them. The
// loser revalidates against the winner's state and surfaces a semantic
// failure (LockedError for the plain write, ErrKeyExists for the prewrite) —
// never a lost update, never a plain write landing under a live lock.
func TestOCCPrewriteFirstCommitterWins(t *testing.T) {
	const nKeys = 24
	db := new2PCDB(t, testbed.NVMInP)
	rt := New(db, Config{Writers: 4, Seed: 5, QueueDepth: 16})
	defer rt.Close()

	txnID := func(k uint64) uint64 { return 5000 + k }
	prewrite := func(k uint64) testbed.Txn {
		return func(e core.Engine) error {
			// Touch the data key first so the read set is established before
			// the yield parks the body — real contention on one core.
			if _, _, err := e.Get("t", k); err != nil {
				return err
			}
			time.Sleep(50 * time.Microsecond)
			return txn2pc.Prewrite(e, &wire.Request{
				Op: wire.OpTxnPrewrite, Txn: txnID(k), PriShard: 0,
				Table: "t", Key: k,
				Ops: []wire.Request{{Op: wire.OpPut, Table: "t", Key: k,
					Row: []core.Value{core.IntVal(int64(k)), core.IntVal(int64(100 + k))}}},
			})
		}
	}
	guardedPut := func(k uint64) testbed.Txn {
		return func(e core.Engine) error {
			if err := txn2pc.LockedAt(e, "t", k); err != nil {
				return err
			}
			time.Sleep(50 * time.Microsecond)
			return e.Insert("t", k, []core.Value{core.IntVal(int64(k)), core.IntVal(int64(200 + k))})
		}
	}

	// race submits the transaction until it either acks (winner) or fails
	// semantically (loser); OCC conflicts retry with a fresh snapshot.
	race := func(txn testbed.Txn) error {
		for attempt := 0; ; attempt++ {
			err := rt.SubmitPart(context.Background(), 0, txn)
			if core.IsRetryable(err) && attempt < 50 {
				time.Sleep(time.Duration(100+50*attempt) * time.Microsecond)
				continue
			}
			return err
		}
	}

	prewriteWon := make([]bool, nKeys)
	var wg sync.WaitGroup
	for k := uint64(0); k < nKeys; k++ {
		wg.Add(2)
		errA := make(chan error, 1)
		go func(k uint64) { defer wg.Done(); errA <- race(prewrite(k)) }(k)
		go func(k uint64) {
			defer wg.Done()
			errB := race(guardedPut(k))
			a := <-errA
			switch {
			case a == nil && errB == nil:
				t.Errorf("key %d: prewrite and plain write both acked", k)
			case a != nil && errB != nil:
				t.Errorf("key %d: both sides lost: prewrite=%v put=%v", k, a, errB)
			case a == nil:
				if txn2pc.AsLocked(errB) == nil {
					t.Errorf("key %d: plain write lost to the lock but got %v, want LockedError", k, errB)
				}
				prewriteWon[k] = true
			default:
				if !errors.Is(a, core.ErrKeyExists) {
					t.Errorf("key %d: prewrite lost to the plain write but got %v, want ErrKeyExists", k, a)
				}
			}
		}(k)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Settle every surviving lock forward and check the serial outcome: the
	// committed buffered value where the prewrite won, the plain value where
	// it lost — never a mix, never a leftover lock.
	for k := uint64(0); k < nKeys; k++ {
		want := int64(200 + k)
		if prewriteWon[k] {
			err := rt.SubmitPart(context.Background(), 0, func(e core.Engine) error {
				return txn2pc.Commit(e, txnID(k), true, []wire.LockRef{{Table: "t", Key: k}})
			})
			if err != nil {
				t.Fatalf("key %d: commit: %v", k, err)
			}
			want = int64(100 + k)
		}
		if got := mustGet(t, db, 0, k); got != want {
			t.Fatalf("key %d = %d, want %d (prewriteWon=%v)", k, got, want, prewriteWon[k])
		}
		if l, ok, err := txn2pc.ReadLock(db.Engine(0), "t", k); err != nil || ok {
			t.Fatalf("key %d: leftover lock %+v (err=%v)", k, l, err)
		}
	}
}
