package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/testbed"
)

func schemas() []*core.Schema {
	return []*core.Schema{{
		Name:    "t",
		Columns: []core.Column{{Name: "id", Type: core.TInt}, {Name: "v", Type: core.TInt}},
	}}
}

func newDB(t testing.TB, kind testbed.EngineKind, parts int, size int64) *testbed.DB {
	t.Helper()
	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: parts,
		Env:        core.EnvConfig{DeviceSize: size},
		Options:    core.Options{GroupCommitSize: 1},
		Schemas:    schemas(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func insertTxn(key uint64, val int64) testbed.Txn {
	return func(e core.Engine) error {
		return e.Insert("t", key, []core.Value{core.IntVal(int64(key)), core.IntVal(val)})
	}
}

// mustGet reads key's second column directly from partition p's engine.
func mustGet(t *testing.T, db *testbed.DB, p int, key uint64) int64 {
	t.Helper()
	row, ok, err := db.Engine(p).Get("t", key)
	if err != nil || !ok {
		t.Fatalf("key %d on partition %d: ok=%v err=%v", key, p, ok, err)
	}
	return row[1].I
}

func TestSubmitHonorsContextCancellation(t *testing.T) {
	db := newDB(t, testbed.InP, 1, 32<<20)
	rt := New(db, Config{QueueDepth: 4})
	defer rt.Close()

	gate := make(chan struct{})
	blocked := make(chan error, 1)
	go func() {
		blocked <- rt.SubmitPart(context.Background(), 0, func(core.Engine) error {
			<-gate
			return testbed.ErrAbort
		})
	}()
	// Wait until the blocker holds the executor.
	for rt.Stats().Committed+rt.Stats().Aborted == 0 {
		select {
		case <-gate:
		default:
		}
		time.Sleep(time.Millisecond)
		break
	}

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	res := make(chan error, 1)
	go func() {
		res <- rt.SubmitPart(ctx, 0, func(core.Engine) error {
			ran = true
			return testbed.ErrAbort
		})
	}()
	time.Sleep(5 * time.Millisecond) // let it queue behind the blocker
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit after cancel = %v, want context.Canceled", err)
	}
	close(gate)
	if err := <-blocked; !errors.Is(err, testbed.ErrAbort) {
		t.Fatalf("blocker = %v", err)
	}
	// The executor must skip the canceled request without running it.
	if err := rt.SubmitPart(context.Background(), 0, insertTxn(0, 1)); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("canceled transaction was executed")
	}
}

func TestSubmitOverloadedIsTypedAndRetryable(t *testing.T) {
	db := newDB(t, testbed.InP, 1, 32<<20)
	rt := New(db, Config{QueueDepth: 1})

	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rt.SubmitPart(context.Background(), 0, func(core.Engine) error {
			<-gate
			return testbed.ErrAbort
		})
	}()
	time.Sleep(5 * time.Millisecond) // blocker occupies the executor

	// Fill the queue, then overflow it.
	var overloaded error
	for i := 0; i < 3; i++ {
		go rt.SubmitPart(context.Background(), 0, func(core.Engine) error { return testbed.ErrAbort })
		time.Sleep(2 * time.Millisecond)
	}
	overloaded = rt.SubmitPart(context.Background(), 0, insertTxn(1, 1))
	if !errors.Is(overloaded, ErrOverloaded) {
		t.Fatalf("saturated Submit = %v, want ErrOverloaded", overloaded)
	}
	if !core.IsRetryable(overloaded) {
		t.Fatal("ErrOverloaded must be tagged retryable")
	}
	if rt.Stats().Overloaded == 0 {
		t.Fatal("overload not counted")
	}
	close(gate)
	wg.Wait()
	rt.Close()
}

func TestPanicContainedPartitionSurvives(t *testing.T) {
	db := newDB(t, testbed.NVMInP, 2, 32<<20)
	rt := New(db, Config{})
	defer rt.Close()
	ctx := context.Background()

	if err := rt.SubmitPart(ctx, 0, insertTxn(0, 7)); err != nil {
		t.Fatal(err)
	}
	err := rt.SubmitPart(ctx, 0, func(e core.Engine) error {
		if err := e.Insert("t", 2, []core.Value{core.IntVal(2), core.IntVal(9)}); err != nil {
			return err
		}
		panic("engine invariant violated (synthetic)")
	})
	var te *core.TxnError
	if !errors.As(err, &te) || !te.Panicked {
		t.Fatalf("panicking txn = %v, want core.TxnError{Panicked}", err)
	}
	// The partition stays in service and the panicking txn was rolled back.
	if err := rt.SubmitPart(ctx, 0, insertTxn(4, 8)); err != nil {
		t.Fatal(err)
	}
	if got := mustGet(t, db, 0, 0); got != 7 {
		t.Fatalf("key 0 = %d, want 7", got)
	}
	if _, ok, _ := db.Engine(0).Get("t", 2); ok {
		t.Fatal("rolled-back insert visible")
	}
	if s := rt.Stats(); s.Panics != 1 || s.Heals != 0 {
		t.Fatalf("stats = %+v, want 1 contained panic, 0 heals", s)
	}
}

func TestPanicStormTriggersHeal(t *testing.T) {
	db := newDB(t, testbed.Log, 1, 32<<20)
	var events []Event
	var mu sync.Mutex
	rt := New(db, Config{
		PanicThreshold: 2,
		PanicWindow:    time.Minute,
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	defer rt.Close()
	ctx := context.Background()

	if err := rt.SubmitPart(ctx, 0, insertTxn(10, 3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rt.SubmitPart(ctx, 0, func(core.Engine) error { panic("storm") })
	}
	if s := rt.Stats(); s.Heals != 1 {
		t.Fatalf("stats = %+v, want exactly one heal", s)
	}
	// Committed data survived the engine's re-recovery.
	if got := mustGet(t, db, 0, 10); got != 3 {
		t.Fatalf("key 10 = %d, want 3", got)
	}
	// And the partition serves again.
	if err := rt.SubmitPart(ctx, 0, insertTxn(11, 4)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	var kinds []EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	want := map[EventKind]bool{EventPanic: false, EventHeal: false, EventHealed: false}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("missing %s event in %v", k, kinds)
		}
	}
}

func TestTransientSyncFailureRetriedInPlace(t *testing.T) {
	for _, kind := range []testbed.EngineKind{testbed.InP, testbed.Log} {
		t.Run(string(kind), func(t *testing.T) {
			db := newDB(t, kind, 1, 32<<20)
			rt := New(db, Config{MaxRetries: 3})
			defer rt.Close()
			ctx := context.Background()

			if err := rt.SubmitPart(ctx, 0, insertTxn(1, 1)); err != nil {
				t.Fatal(err)
			}
			// The next two fsyncs fail transiently; the supervisor must
			// retry past them without surfacing an error.
			db.Env(0).FS.FailSyncs(0, 2)
			if err := rt.SubmitPart(ctx, 0, insertTxn(2, 2)); err != nil {
				t.Fatalf("submit over transient sync failure = %v", err)
			}
			if s := rt.Stats(); s.Retries < 1 {
				t.Fatalf("stats = %+v, want at least one retry", s)
			}
			if got := mustGet(t, db, 0, 2); got != 2 {
				t.Fatalf("key 2 = %d, want 2", got)
			}
		})
	}
}

func TestRetryableSurfacesAfterMaxRetries(t *testing.T) {
	db := newDB(t, testbed.InP, 1, 32<<20)
	rt := New(db, Config{MaxRetries: 2})
	defer rt.Close()
	ctx := context.Background()

	// More failures than MaxRetries allows: the typed retryable error
	// reaches the client instead of being hidden.
	db.Env(0).FS.FailSyncs(0, 10)
	err := rt.SubmitPart(ctx, 0, insertTxn(1, 1))
	if err == nil || !core.IsRetryable(err) {
		t.Fatalf("exhausted retries = %v, want retryable error", err)
	}
	db.Env(0).FS.FailSyncs(0, 0)
	// The aborted-and-rewound transaction left the partition consistent.
	if err := rt.SubmitPart(ctx, 0, insertTxn(1, 5)); err != nil {
		t.Fatal(err)
	}
	if got := mustGet(t, db, 0, 1); got != 5 {
		t.Fatalf("key 1 = %d, want 5", got)
	}
}

func TestInjectedCrashHealsMidTraffic(t *testing.T) {
	db := newDB(t, testbed.NVMLog, 1, 32<<20)
	rt := New(db, Config{})
	defer rt.Close()
	ctx := context.Background()

	for i := uint64(0); i < 20; i++ {
		if err := rt.SubmitPart(ctx, 0, insertTxn(i, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Arm a device fault from the executor goroutine (keeps the fault
	// state properly ordered with engine accesses), then keep submitting:
	// one submission dies with the injected crash and triggers a heal.
	rt.SubmitPart(ctx, 0, func(core.Engine) error {
		db.Env(0).Dev.InjectFaults(nvm.FaultPlan{Seed: 42, Mode: nvm.FaultReorder, CrashAfterFences: 3, KeepProb: 0.5})
		return testbed.ErrAbort
	})
	sawRecovering := false
	for i := uint64(20); i < 60; i++ {
		err := rt.SubmitPart(ctx, 0, insertTxn(i, int64(i)))
		if errors.Is(err, ErrRecovering) || errors.Is(err, nvm.ErrInjectedCrash) {
			sawRecovering = true
			continue
		}
		if err != nil && !core.IsRetryable(err) && !errors.Is(err, core.ErrKeyExists) {
			t.Fatalf("unexpected error at %d: %v", i, err)
		}
	}
	if !sawRecovering {
		t.Fatal("injected crash never surfaced as a recovering/crash error")
	}
	if s := rt.Stats(); s.Heals < 1 {
		t.Fatalf("stats = %+v, want at least one heal", s)
	}
	// Everything acked before the crash must still be there.
	for i := uint64(0); i < 20; i++ {
		if got := mustGet(t, db, 0, i); got != int64(i) {
			t.Fatalf("key %d = %d after heal, want %d", i, got, i)
		}
	}
}

func TestBreakerDegradesAfterRepeatedRecoveryFailure(t *testing.T) {
	db := newDB(t, testbed.InP, 2, 16<<20)
	rt := New(db, Config{BreakerThreshold: 2, RetryBase: 50 * time.Microsecond, RetryCap: 200 * time.Microsecond})
	defer rt.Close()
	ctx := context.Background()

	if err := rt.SubmitPart(ctx, 1, insertTxn(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Durably shred partition 0's device, then crash it: recovery cannot
	// succeed, so the circuit breaker must open instead of looping or
	// killing the process.
	err := rt.SubmitPart(ctx, 0, func(core.Engine) error {
		dev := db.Env(0).Dev
		garbage := make([]byte, 1<<20)
		for i := range garbage {
			garbage[i] = 0xA5
		}
		for off := int64(0); off < dev.Size(); off += int64(len(garbage)) {
			n := int64(len(garbage))
			if off+n > dev.Size() {
				n = dev.Size() - off
			}
			dev.Write(off, garbage[:n])
			dev.Flush(off, int(n))
		}
		dev.Fence()
		panic(nvm.ErrInjectedCrash)
	})
	if err == nil {
		t.Fatal("shredding txn reported success")
	}
	deadline := time.Now().Add(10 * time.Second)
	for rt.Stats().Degraded == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: %+v", rt.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := rt.SubmitPart(ctx, 0, insertTxn(0, 1)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded partition Submit = %v, want ErrDegraded", err)
	}
	// The healthy partition is unaffected.
	if err := rt.SubmitPart(ctx, 1, insertTxn(3, 3)); err != nil {
		t.Fatal(err)
	}
	if s := rt.Stats(); s.HealFails < 2 {
		t.Fatalf("stats = %+v, want >= 2 recorded heal failures", s)
	}
}

func TestCloseDrainsQueuedRequests(t *testing.T) {
	db := newDB(t, testbed.CoW, 2, 32<<20)
	rt := New(db, Config{QueueDepth: 32})
	ctx := context.Background()

	const n = 24
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- rt.Submit(ctx, uint64(i), insertTxn(uint64(i), int64(i)))
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	ok := 0
	for err := range errs {
		if err == nil {
			ok++
		} else if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrOverloaded) {
			t.Fatalf("drain error: %v", err)
		}
	}
	if int64(ok) != rt.Stats().Committed {
		t.Fatalf("acked %d but committed %d", ok, rt.Stats().Committed)
	}
	if err := rt.Submit(ctx, 0, insertTxn(99, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}
