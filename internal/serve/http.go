package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsServer is the runtime's optional HTTP observability endpoint:
//
//	/metrics        JSON snapshot of the metrics registry (obs.Snapshot)
//	/healthz        200 while all partitions serve, 503 listing degraded ones
//	/debug/pprof/   the standard Go profiler endpoints
//
// It binds with net.Listen so addr may be ":0" for an ephemeral port (Addr
// reports the bound address) and serves until Close.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartMetrics starts the observability endpoint on addr. The caller must
// Close the returned server; it does not outlive the runtime usefully, but
// closing the runtime does not close it.
func (rt *Runtime) StartMetrics(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: metrics listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rt.reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var degraded []int
		for i, ex := range rt.execs {
			if ex.degraded.Load() {
				degraded = append(degraded, i)
			}
		}
		if len(degraded) == 0 {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded partitions: %v\n", degraded)
	})
	// net/http/pprof registers on DefaultServeMux at import; route the same
	// handlers on this private mux instead.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ms := &MetricsServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = ms.srv.Serve(ln) }()
	return ms, nil
}

// Addr returns the bound listen address (useful with ":0").
func (ms *MetricsServer) Addr() string { return ms.ln.Addr().String() }

// Close stops the HTTP server.
func (ms *MetricsServer) Close() error { return ms.srv.Close() }
