package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// HealthSource is a pluggable contributor to /healthz. Lines are always
// printed (they carry role/epoch/lag detail for operators); ok=false flips
// the endpoint to 503 — how a cluster node reports a fenced or catching-up
// shard so a load balancer drains it.
type HealthSource interface {
	HealthCheck() (lines []string, ok bool)
}

// AddHealth registers a health source consulted by every /healthz handler
// this runtime serves (including metrics servers started earlier).
func (rt *Runtime) AddHealth(h HealthSource) {
	rt.healthMu.Lock()
	rt.health = append(rt.health, h)
	rt.healthMu.Unlock()
}

// healthSources snapshots the registered sources.
func (rt *Runtime) healthSources() []HealthSource {
	rt.healthMu.Lock()
	defer rt.healthMu.Unlock()
	return append([]HealthSource(nil), rt.health...)
}

// MetricsServer is the runtime's optional HTTP observability endpoint:
//
//	/metrics        JSON snapshot of the metrics registry (obs.Snapshot)
//	/healthz        200 while all partitions serve; 503 listing degraded and
//	                recovering partitions, so a load balancer drains both
//	/debug/pprof/   the standard Go profiler endpoints
//
// It binds with net.Listen so addr may be ":0" for an ephemeral port (Addr
// reports the bound address) and serves until Close.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server

	closeOnce sync.Once
	closeErr  error
}

// metricsShutdownTimeout bounds how long Close waits for in-flight scrapes
// (a /metrics snapshot is milliseconds; a stuck pprof stream should not pin
// shutdown).
const metricsShutdownTimeout = 2 * time.Second

// StartMetrics starts the observability endpoint on addr. The runtime owns
// the returned server: Runtime.Close tears it down along with the
// executors. Closing it earlier by hand is allowed and idempotent.
func (rt *Runtime) StartMetrics(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: metrics listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rt.reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var degraded, recovering []int
		for i, ex := range rt.execs {
			if ex.degraded.Load() {
				degraded = append(degraded, i)
			} else if ex.recovering.Load() {
				recovering = append(recovering, i)
			}
		}
		var extra []string
		healthy := true
		for _, h := range rt.healthSources() {
			lines, ok := h.HealthCheck()
			extra = append(extra, lines...)
			healthy = healthy && ok
		}
		if len(degraded) == 0 && len(recovering) == 0 && healthy {
			fmt.Fprintln(w, "ok")
			for _, l := range extra {
				fmt.Fprintln(w, l)
			}
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		if len(degraded) > 0 {
			fmt.Fprintf(w, "degraded partitions: %v\n", degraded)
		}
		if len(recovering) > 0 {
			fmt.Fprintf(w, "recovering partitions: %v\n", recovering)
		}
		for _, l := range extra {
			fmt.Fprintln(w, l)
		}
	})
	// net/http/pprof registers on DefaultServeMux at import; route the same
	// handlers on this private mux instead.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ms := &MetricsServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = ms.srv.Serve(ln) }()
	rt.adoptMetrics(ms)
	return ms, nil
}

// Addr returns the bound listen address (useful with ":0").
func (ms *MetricsServer) Addr() string { return ms.ln.Addr().String() }

// Close stops the HTTP server gracefully: the listener closes immediately,
// in-flight scrapes get metricsShutdownTimeout to finish, then any stragglers
// are cut. Safe to call more than once and concurrently with Runtime.Close.
func (ms *MetricsServer) Close() error {
	ms.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), metricsShutdownTimeout)
		defer cancel()
		err := ms.srv.Shutdown(ctx)
		if err != nil {
			// Deadline hit with a request still running: force it.
			ms.srv.Close()
		}
		ms.closeErr = err
	})
	return ms.closeErr
}
