package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"testing"

	"nstore/internal/obs"
	"nstore/internal/testbed"
)

// scrape GETs /metrics and decodes the JSON snapshot.
func scrape(t *testing.T, addr string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	return snap
}

// schemaKeys flattens a snapshot's metric names into one sorted list so two
// scrapes can be compared for schema stability.
func schemaKeys(s obs.Snapshot) []string {
	var keys []string
	for k := range s.Counters {
		keys = append(keys, "counter:"+k)
	}
	for k := range s.Gauges {
		keys = append(keys, "gauge:"+k)
	}
	for k := range s.Histograms {
		keys = append(keys, "hist:"+k)
	}
	sort.Strings(keys)
	return keys
}

// TestMetricsEndpoint drives traffic through a two-partition runtime while
// scraping /metrics between batches, and asserts the contract the endpoint
// promises: the JSON schema (the set of metric names) never changes between
// scrapes, every counter is monotonically non-decreasing, the final scrape
// agrees with Stats(), per-partition ack histograms record real latencies,
// and /healthz reports 200 while nothing is degraded.
func TestMetricsEndpoint(t *testing.T) {
	const parts = 2
	db := newDB(t, testbed.InP, parts, 32<<20)
	rt := New(db, Config{QueueDepth: 8})
	defer rt.Close()

	ms, err := rt.StartMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	snaps := []obs.Snapshot{scrape(t, ms.Addr())}
	if snaps[0].Schema != obs.SchemaVersion {
		t.Fatalf("schema version = %d, want %d", snaps[0].Schema, obs.SchemaVersion)
	}

	key := uint64(0)
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < 25; i++ {
			p := int(key % parts)
			if err := rt.SubmitPart(context.Background(), p, insertTxn(key, int64(key))); err != nil {
				t.Fatalf("submit key %d: %v", key, err)
			}
			key++
		}
		snaps = append(snaps, scrape(t, ms.Addr()))
	}

	// Schema stability: the exact same metric names on every scrape.
	want := schemaKeys(snaps[0])
	for i, s := range snaps[1:] {
		got := schemaKeys(s)
		if len(got) != len(want) {
			t.Fatalf("scrape %d: schema changed: %d keys vs %d", i+1, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("scrape %d: schema changed at %q vs %q", i+1, got[j], want[j])
			}
		}
	}

	// The advertised metric surface must actually be present.
	for _, name := range []string{
		"serve_committed", "serve_heals", "serve_retries",
		"nvm_loads", "nvm_stores", "nvm_bytes_written",
	} {
		if _, ok := snaps[0].Counters[name]; !ok {
			t.Errorf("counter %q missing from snapshot", name)
		}
	}
	for _, name := range []string{"pmfs_fsyncs", "wal_flushes", "bd_storage_ns", "serve_part00_queue_depth"} {
		if _, ok := snaps[0].Gauges[name]; !ok {
			t.Errorf("gauge %q missing from snapshot", name)
		}
	}

	// Counters are monotonic across scrapes — all of them, by contract:
	// anything that can go backwards is registered as a gauge instead.
	for i := 1; i < len(snaps); i++ {
		for name, v := range snaps[i].Counters {
			if prev := snaps[i-1].Counters[name]; v < prev {
				t.Errorf("counter %s went backwards between scrape %d and %d: %d -> %d",
					name, i-1, i, prev, v)
			}
		}
	}

	// The final scrape must agree with the supervisor's own accounting.
	final := scrape(t, ms.Addr())
	stats := rt.Stats()
	for name, got := range map[string]int64{
		"serve_committed":  final.Counters["serve_committed"],
		"serve_aborted":    final.Counters["serve_aborted"],
		"serve_failed":     final.Counters["serve_failed"],
		"serve_retries":    final.Counters["serve_retries"],
		"serve_heals":      final.Counters["serve_heals"],
		"serve_recovering": final.Counters["serve_recovering"],
	} {
		var want int64
		switch name {
		case "serve_committed":
			want = stats.Committed
		case "serve_aborted":
			want = stats.Aborted
		case "serve_failed":
			want = stats.Failed
		case "serve_retries":
			want = stats.Retries
		case "serve_heals":
			want = stats.Heals
		case "serve_recovering":
			want = stats.Recovering
		}
		if got != want {
			t.Errorf("%s = %d, Stats() says %d", name, got, want)
		}
	}
	if final.Counters["serve_committed"] != int64(key) {
		t.Errorf("serve_committed = %d, submitted %d", final.Counters["serve_committed"], key)
	}

	// Per-partition ack histograms saw every commit and report quantiles.
	var histCount int64
	for p := 0; p < parts; p++ {
		h, ok := final.Histograms[fmt.Sprintf("serve_part%02d_ack_ns", p)]
		if !ok {
			t.Fatalf("ack histogram for partition %d missing", p)
		}
		histCount += h.Count
		if h.Count > 0 && (h.P50NS <= 0 || h.P99NS < h.P50NS) {
			t.Errorf("partition %d ack quantiles implausible: %+v", p, h)
		}
	}
	if histCount != int64(key) {
		t.Errorf("ack histograms recorded %d acks, submitted %d", histCount, key)
	}

	// NVM traffic happened and was visible through the endpoint.
	if final.Counters["nvm_stores"] == 0 {
		t.Error("nvm_stores is zero after 100 inserts")
	}

	// Healthz: nothing degraded, so 200 "ok".
	resp, err := http.Get("http://" + ms.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d (%s)", resp.StatusCode, body)
	}
}
