package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/testbed"
)

// DriveStats summarizes a Drive run from the clients' point of view.
type DriveStats struct {
	// Acked counts transactions whose commit was acknowledged (including
	// ambiguous commits resolved by an ErrKeyExists on resubmission).
	Acked int64
	// Aborted counts clean client-requested rollbacks (testbed.ErrAbort).
	Aborted int64
	// Abandoned counts transactions given up on after bounded resubmits
	// or failed with a non-retryable error.
	Abandoned int64
}

// Drive feeds pre-generated per-partition transaction lists through the
// runtime with fan concurrent clients per partition — the workload
// drivers' serving-mode frontend. Typed retryable outcomes (backpressure,
// in-flight recovery, contained panics) are resubmitted a bounded number
// of times; everything else abandons that transaction and moves on, so a
// fault never stalls the drive.
func Drive(ctx context.Context, rt *Runtime, perPart [][]testbed.Txn, fan int) DriveStats {
	if fan <= 0 {
		fan = 1
	}
	var acked, aborted, abandoned atomic.Int64
	var wg sync.WaitGroup
	for p := range perPart {
		for c := 0; c < fan; c++ {
			wg.Add(1)
			go func(p, c int) {
				defer wg.Done()
				for i := c; i < len(perPart[p]); i += fan {
					switch submitWithRetry(ctx, rt, p, perPart[p][i]) {
					case driveAcked:
						acked.Add(1)
					case driveAborted:
						aborted.Add(1)
					default:
						abandoned.Add(1)
					}
				}
			}(p, c)
		}
	}
	wg.Wait()
	return DriveStats{Acked: acked.Load(), Aborted: aborted.Load(), Abandoned: abandoned.Load()}
}

type driveOutcome int

const (
	driveAcked driveOutcome = iota
	driveAborted
	driveAbandoned
)

func submitWithRetry(ctx context.Context, rt *Runtime, part int, txn testbed.Txn) driveOutcome {
	for attempt := 0; attempt < 12; attempt++ {
		err := rt.SubmitPart(ctx, part, txn)
		switch {
		case err == nil:
			return driveAcked
		case errors.Is(err, testbed.ErrAbort):
			return driveAborted
		case errors.Is(err, core.ErrKeyExists) && attempt > 0:
			// The ambiguous earlier attempt committed after all.
			return driveAcked
		case core.IsRetryable(err), errors.Is(err, nvm.ErrInjectedCrash), isPanicErr(err):
			time.Sleep(time.Duration(200+100*attempt) * time.Microsecond)
		default:
			return driveAbandoned
		}
	}
	return driveAbandoned
}

// Arm runs fn on partition p's executor goroutine inside an immediately
// aborted transaction, so fault-injection state installed by fn is
// properly ordered with the executor's engine accesses.
func (rt *Runtime) Arm(ctx context.Context, p int, fn func()) {
	rt.SubmitPart(ctx, p, func(core.Engine) error {
		fn()
		return testbed.ErrAbort
	})
}
