package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nstore/internal/core"
	"nstore/internal/engine/enginetest"
	"nstore/internal/nvm"
	"nstore/internal/testbed"
)

// rmwTxn is the canonical OCC workload: read key, write back value+delta.
// Under first-committer-wins two concurrent rmwTxns on the same key conflict
// and one retries against a fresh snapshot, so the increments never clobber
// each other — the final value counts acked increments exactly.
func rmwTxn(key uint64, delta int64) testbed.Txn {
	return func(e core.Engine) error {
		row, ok, err := e.Get("t", key)
		if err != nil {
			return err
		}
		if !ok {
			return e.Insert("t", key, []core.Value{core.IntVal(int64(key)), core.IntVal(delta)})
		}
		return e.Update("t", key, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(row[1].I + delta)}})
	}
}

// slowRmwTxn is rmwTxn with a yield between the read and the write. On a
// single-core runner a short optimistic phase runs snapshot→validate without
// preemption and never collides; the sleep parks the goroutine mid-body so
// another writer can land a competing commit — real contention, not luck.
func slowRmwTxn(key uint64, delta int64) testbed.Txn {
	return func(e core.Engine) error {
		row, ok, err := e.Get("t", key)
		if err != nil {
			return err
		}
		time.Sleep(50 * time.Microsecond)
		if !ok {
			return e.Insert("t", key, []core.Value{core.IntVal(int64(key)), core.IntVal(delta)})
		}
		return e.Update("t", key, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(row[1].I + delta)}})
	}
}

// preload seeds keys 0..n-1 with value 0 through the runtime so every
// subsequent rmwTxn takes the update path.
func preload(t *testing.T, rt *Runtime, part int, n int) {
	t.Helper()
	for k := 0; k < n; k++ {
		if err := rt.SubmitPart(context.Background(), part, insertTxn(uint64(k), 0)); err != nil {
			t.Fatalf("preload key %d: %v", k, err)
		}
	}
}

// submitUntilAcked retries retryable outcomes (conflict-exhausted, heals in
// flight) until the commit acks. Conflicts abort before touching the engine,
// so a resubmission never double-applies.
func submitUntilAcked(t *testing.T, rt *Runtime, part int, txn testbed.Txn) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		err := rt.SubmitPart(context.Background(), part, txn)
		if err == nil {
			return
		}
		if (core.IsRetryable(err) || errors.Is(err, nvm.ErrInjectedCrash)) && attempt < 50 {
			time.Sleep(time.Duration(100+50*attempt) * time.Microsecond)
			continue
		}
		t.Fatalf("submit never acked: %v", err)
	}
}

// TestOCCSerialEquivalence runs the same seeded RMW workload with Writers:1
// (the untouched serial path — the oracle) and Writers:4 (optimistic
// executors) on every engine and asserts the final table states are
// identical. Increments commute, and the client retries until every one of
// them is acked, so any divergence is a lost or doubled update — exactly
// what OCC validation must prevent.
func TestOCCSerialEquivalence(t *testing.T) {
	const nKeys = 16
	const clients = 4
	perClient := 60
	if testing.Short() {
		perClient = 20
	}
	seed := enginetest.BaseSeed()

	run := func(t *testing.T, kind testbed.EngineKind, writers int) map[uint64]int64 {
		db := newDB(t, kind, 1, 32<<20)
		rt := New(db, Config{Writers: writers, Seed: seed, QueueDepth: 16})
		preload(t, rt, 0, nKeys)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(c)))
				for i := 0; i < perClient; i++ {
					submitUntilAcked(t, rt, 0, rmwTxn(uint64(rng.Intn(nKeys)), 1+int64(c)))
				}
			}(c)
		}
		wg.Wait()
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		got := make(map[uint64]int64)
		err := db.Engine(0).ScanRange("t", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			got[pk] = row[1].I
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	for _, kind := range testbed.Kinds {
		t.Run(string(kind), func(t *testing.T) {
			serial := run(t, kind, 1)
			occ := run(t, kind, 4)
			if len(serial) != len(occ) {
				t.Fatalf("row count diverged: serial %d, occ %d (seed=%d)", len(serial), len(occ), seed)
			}
			for k, v := range serial {
				if occ[k] != v {
					t.Fatalf("key %d: serial %d, occ %d (seed=%d) — an update was lost or doubled", k, v, occ[k], seed)
				}
			}
		})
	}
}

// TestOCCConflictSurfacesTyped choreographs a transaction that conflicts on
// every attempt: its read set is invalidated by a competing commit while the
// body is parked, for MaxRetries+1 straight attempts. The surfaced error
// must be core.ErrConflict — typed, retryable — and the conflict counter
// must have ticked once per attempt.
func TestOCCConflictSurfacesTyped(t *testing.T) {
	db := newDB(t, testbed.InP, 1, 32<<20)
	rt := New(db, Config{Writers: 2, MaxRetries: 2, Seed: 7})
	defer rt.Close()
	preload(t, rt, 0, 1)

	ran := make(chan struct{})
	proceed := make(chan struct{})
	victim := func(e core.Engine) error {
		row, _, err := e.Get("t", 0) // read set: key 0
		if err != nil {
			return err
		}
		ran <- struct{}{}
		<-proceed
		return e.Update("t", 0, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(row[1].I + 1)}})
	}

	res := make(chan error, 1)
	go func() { res <- rt.SubmitPart(context.Background(), 0, victim) }()

	// Each time the victim's body runs, land a competing write on its read
	// set before letting it reach validation. MaxRetries=2 → 3 attempts.
	for attempt := 0; attempt < 3; attempt++ {
		<-ran
		if err := rt.SubmitPart(context.Background(), 0, rmwTxn(0, 100)); err != nil {
			t.Fatalf("competing write %d: %v", attempt, err)
		}
		proceed <- struct{}{}
	}

	err := <-res
	if !errors.Is(err, core.ErrConflict) {
		t.Fatalf("want core.ErrConflict, got %v", err)
	}
	if !core.IsRetryable(err) {
		t.Fatalf("conflict must be retryable by contract, got %v", err)
	}
	if got := rt.Stats().Conflicts; got != 3 {
		t.Fatalf("want 3 validation conflicts, got %d", got)
	}
	if !strings.Contains(err.Error(), "t/0") {
		t.Fatalf("conflict error should name the clashing key, got %q", err)
	}
}

// TestOCCReadOnlyAndAbort: a read-only transaction through the optimistic
// path serializes at its snapshot (no validation, no durability work) and
// observes committed state; testbed.ErrAbort still surfaces as an abort.
func TestOCCReadOnlyAndAbort(t *testing.T) {
	db := newDB(t, testbed.NVMInP, 1, 32<<20)
	rt := New(db, Config{Writers: 2, Seed: 11})
	defer rt.Close()
	preload(t, rt, 0, 4)
	submitUntilAcked(t, rt, 0, rmwTxn(2, 40))

	var saw int64
	err := rt.SubmitPart(context.Background(), 0, func(e core.Engine) error {
		row, ok, err := e.Get("t", 2)
		if err != nil || !ok {
			return fmt.Errorf("read-only get: ok=%v err=%v", ok, err)
		}
		saw = row[1].I
		return nil
	})
	if err != nil {
		t.Fatalf("read-only txn: %v", err)
	}
	if saw != 40 {
		t.Fatalf("read-only txn saw %d, want 40", saw)
	}

	if err := rt.SubmitPart(context.Background(), 0, func(e core.Engine) error {
		if err := e.Update("t", 2, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(999)}}); err != nil {
			return err
		}
		return testbed.ErrAbort
	}); !errors.Is(err, testbed.ErrAbort) {
		t.Fatalf("want ErrAbort, got %v", err)
	}
	if got := mustGet(t, db, 0, 2); got != 40 {
		t.Fatalf("aborted txn leaked a write: key 2 = %d, want 40", got)
	}
	if rt.Stats().Aborted != 1 {
		t.Fatalf("stats: %+v", rt.Stats())
	}
}

// TestOCCGroupCommitDeferredAck: with GroupCommitSize > 1 every OCC ack must
// wait for the group's durability barrier — a power cycle straight after the
// last ack may not eat a single acked commit, whichever writer carried it.
// Also pins the per-writer ack histograms into the metric surface.
func TestOCCGroupCommitDeferredAck(t *testing.T) {
	seed := enginetest.BaseSeed()
	db, err := testbed.New(testbed.Config{
		Engine:     testbed.NVMLog,
		Partitions: 2,
		Env:        core.EnvConfig{DeviceSize: 32 << 20},
		Options:    core.Options{GroupCommitSize: 8},
		Schemas:    schemas(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := New(db, Config{Writers: 3, Seed: seed, QueueDepth: 16})

	const clients = 6
	nTxns := 80
	if testing.Short() {
		nTxns = 30
	}
	acked := make([]map[uint64]int64, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		acked[c] = make(map[uint64]int64)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p := c % 2
			rng := rand.New(rand.NewSource(seed*100 + int64(c)))
			for i := 0; i < nTxns; i++ {
				key := uint64(c*nTxns+i)*2 + uint64(p)
				val := rng.Int63()
				submitUntilAcked(t, rt, p, insertTxn(key, val))
				acked[c][key] = val
			}
		}(c)
	}
	wg.Wait()

	snap := rt.Metrics().Snapshot()
	found := false
	for name, h := range snap.Histograms {
		if strings.Contains(name, "writer") && h.Count > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no per-writer ack histogram recorded any sample in OCC mode")
	}

	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Stats().Committed; got < int64(clients*nTxns) {
		t.Fatalf("committed %d < %d submitted", got, clients*nTxns)
	}

	db.Crash()
	if _, err := db.Recover(); err != nil {
		t.Fatalf("final recovery: %v (seed=%d)", err, seed)
	}
	for c := range acked {
		p := c % 2
		for key, val := range acked[c] {
			row, ok, err := db.Engine(p).Get("t", key)
			if err != nil || !ok {
				t.Fatalf("acked key %d lost after power cycle (ok=%v err=%v, seed=%d)", key, ok, err, seed)
			}
			if row[1].I != val {
				t.Fatalf("acked key %d = %d, want %d (seed=%d)", key, row[1].I, val, seed)
			}
		}
	}
}

// TestOCCContentionSoak hammers a hot keyset from concurrent clients with
// Writers:4 while injected crashes force mid-traffic heals, then power
// cycles. Zero acked-commit loss: each key's final value must equal the
// acked increments on it exactly — conflicts may abort and heals may fail
// transactions, but an acked RMW is durable and applied exactly once.
func TestOCCContentionSoak(t *testing.T) {
	const nKeys = 8 // hot: clients collide constantly
	const clients = 4
	perClient := 120
	if testing.Short() {
		perClient = 40
	}
	seed := enginetest.BaseSeed()

	for _, kind := range []testbed.EngineKind{testbed.InP, testbed.NVMCoW} {
		t.Run(string(kind), func(t *testing.T) {
			db := newDB(t, kind, 1, 32<<20)
			rt := New(db, Config{Writers: 4, Seed: seed, QueueDepth: 16})
			preload(t, rt, 0, nKeys)

			ackedInc := make([]atomic.Int64, nKeys)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed*31 + int64(c)))
					for i := 0; i < perClient; i++ {
						if c == 0 && (i == perClient/3 || i == 2*perClient/3) {
							// A body-surfaced injected crash heals the
							// partition mid-traffic (any outcome is fine).
							rt.SubmitPart(context.Background(), 0, func(core.Engine) error {
								return nvm.ErrInjectedCrash
							})
							continue
						}
						key := uint64(rng.Intn(nKeys))
						submitUntilAcked(t, rt, 0, slowRmwTxn(key, 1))
						ackedInc[key].Add(1)
					}
				}(c)
			}
			wg.Wait()
			if err := rt.Close(); err != nil {
				t.Fatal(err)
			}
			stats := rt.Stats()
			if stats.Heals < 1 {
				t.Errorf("injected crashes never healed the partition: %+v", stats)
			}
			if stats.Conflicts < 1 {
				t.Errorf("hot-key contention produced zero OCC conflicts: %+v", stats)
			}
			if stats.Degraded != 0 {
				t.Errorf("partition degraded during soak: %+v", stats)
			}

			verify := func(when string) {
				for k := 0; k < nKeys; k++ {
					want := ackedInc[k].Load()
					got := mustGet(t, db, 0, uint64(k))
					if got != want {
						t.Fatalf("%s: key %d = %d, want %d acked increments (seed=%d) — acked work lost or doubled", when, k, got, want, seed)
					}
				}
			}
			verify("live")
			db.Crash()
			if _, err := db.Recover(); err != nil {
				t.Fatalf("final recovery: %v (seed=%d)", err, seed)
			}
			verify("after power cycle")
			t.Logf("%s OCC soak (seed=%d): %+v", kind, seed, stats)
		})
	}
}

// TestOCCBackoffRNGRace is the regression for the shared-RNG data race: the
// per-partition backoff rand.Rand is not goroutine-safe, and with multiple
// optimistic executors the conflict-retry path used to hammer it from every
// writer at once. Each writer now derives its own seeded RNG; this test
// drives all four writers into simultaneous backoff under -race.
func TestOCCBackoffRNGRace(t *testing.T) {
	db := newDB(t, testbed.InP, 1, 32<<20)
	rt := New(db, Config{Writers: 4, Seed: 3, QueueDepth: 32, RetryBase: 10 * time.Microsecond})
	defer rt.Close()
	preload(t, rt, 0, 1)

	const clients = 8
	perClient := 40
	if testing.Short() {
		perClient = 15
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// Single hot key: every concurrent pair conflicts, so the
				// retry/backoff path runs on all writers concurrently.
				submitUntilAcked(t, rt, 0, slowRmwTxn(0, 1))
			}
		}()
	}
	wg.Wait()
	if rt.Stats().Conflicts == 0 {
		t.Error("race regression needs conflicts to exercise per-writer backoff RNGs")
	}
	if got := mustGet(t, db, 0, 0); got != int64(clients*perClient) {
		t.Fatalf("key 0 = %d, want %d", got, clients*perClient)
	}
}
