// Package serve is the serving runtime over the testbed database: a
// per-partition executor goroutine fed by a bounded submission queue, with
// a supervisor that survives engine faults instead of crashing the
// process. Requests are admitted with backpressure (ErrOverloaded), engine
// panics are converted to typed core.TxnError at the transaction boundary,
// retryable durability failures are retried with capped exponential
// backoff, and a partition whose engine is beyond in-place repair is
// quarantined, crash-recovered through the engine's own recovery protocol,
// and put back in service — all while the other partitions keep committing.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/obs"
	"nstore/internal/testbed"
)

// Typed serving-layer errors. ErrOverloaded and ErrRecovering are tagged
// retryable (errors.Is(err, core.ErrRetryable)): the client did nothing
// wrong and may resubmit. ErrDegraded and ErrClosed are terminal.
var (
	// ErrOverloaded is returned by Submit when the partition's bounded
	// queue is full — admission-control backpressure, not a failure.
	ErrOverloaded = core.Retryable(errors.New("serve: partition queue full"))
	// ErrRecovering fails requests that were queued behind a partition
	// heal; the partition will be back once recovery completes.
	ErrRecovering = core.Retryable(errors.New("serve: partition recovering"))
	// ErrDegraded is returned once a partition's circuit breaker has
	// opened after repeated recovery failures: the partition fails fast
	// until an operator intervenes.
	ErrDegraded = errors.New("serve: partition degraded")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("serve: runtime closed")
)

// Config tunes the serving runtime. Zero values select the defaults.
type Config struct {
	// QueueDepth bounds each partition's submission queue (default 64).
	QueueDepth int
	// MaxRetries caps in-place retries of a retryable failure before the
	// error is surfaced to the client (default 3).
	MaxRetries int
	// RetryBase and RetryCap shape the exponential backoff between
	// retries (defaults 100µs and 5ms); the actual sleep is jittered to
	// d/2 + rand(d/2) to decorrelate colliding clients.
	RetryBase time.Duration
	RetryCap  time.Duration
	// PanicThreshold panics within PanicWindow trip the partition into a
	// full heal instead of per-transaction containment (defaults 3 in 1s).
	PanicThreshold int
	PanicWindow    time.Duration
	// BreakerThreshold consecutive failed heals open the circuit breaker
	// and degrade the partition to fail-fast (default 3).
	BreakerThreshold int
	// DurableAck forces Engine.Flush after every commit before the ack is
	// released. With GroupCommitSize > 1 a commit may sit in a volatile
	// group buffer; enable this when the client treats an ack as durable.
	DurableAck bool
	// Writers sets the number of write executors per partition (default 1).
	// The default keeps the pre-OCC serial path, bit for bit. With
	// Writers > 1, transactions execute optimistically against pinned MVCC
	// snapshots without holding the partition lock, then OCC-validate their
	// read sets at the commit point: first committer wins, losers abort
	// with the retryable core.ErrConflict and are retried with backoff.
	// Acks still release strictly after the group-commit durability
	// barrier. See occ.go and DESIGN.md §12.
	Writers int
	// Readers sets the per-partition snapshot reader pool size (default 4).
	// Readers serve Get/Scan against the engine's MVCC read views without
	// entering the executor queue, so they never contend with the write path
	// and never take the engine lock.
	Readers int
	// ReadQueueDepth bounds each partition's read submission queue (defaults
	// to QueueDepth).
	ReadQueueDepth int
	// Seed seeds the per-partition jitter RNGs so a run is replayable.
	Seed int64
	// OnEvent, when set, observes supervisor decisions (tests, logs).
	OnEvent func(Event)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Microsecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 5 * time.Millisecond
	}
	if c.PanicThreshold <= 0 {
		c.PanicThreshold = 3
	}
	if c.PanicWindow <= 0 {
		c.PanicWindow = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.Writers <= 0 {
		c.Writers = 1
	}
	if c.Readers <= 0 {
		c.Readers = 4
	}
	if c.ReadQueueDepth <= 0 {
		c.ReadQueueDepth = c.QueueDepth
	}
	return c
}

// EventKind labels a supervisor decision for observability.
type EventKind string

// Supervisor event kinds.
const (
	EventPanic      EventKind = "panic"     // engine panic converted to TxnError
	EventRetry      EventKind = "retry"     // retryable failure, backing off
	EventHeal       EventKind = "heal"      // partition quarantined for recovery
	EventHealed     EventKind = "healed"    // recovery succeeded, back in service
	EventHealFailed EventKind = "heal-fail" // one recovery attempt failed
	EventDegraded   EventKind = "degraded"  // circuit breaker opened
)

// Event is one supervisor decision on one partition.
type Event struct {
	Part int
	Kind EventKind
	Err  error
}

// Stats counts supervisor outcomes across the runtime's lifetime.
type Stats struct {
	Committed  int64 // transactions acked to clients
	Aborted    int64 // clean client-requested aborts (testbed.ErrAbort)
	Failed     int64 // transactions surfaced to clients as errors
	Retries    int64 // in-place retries of retryable failures
	Panics     int64 // engine panics contained at the txn boundary
	Heals      int64 // successful partition recoveries
	HealFails  int64 // failed recovery attempts
	Overloaded int64 // submissions rejected by admission control
	Recovering int64 // queued requests failed by a heal
	Degraded   int64 // partitions currently degraded
	Reads      int64 // snapshot reads served
	ReadFails  int64 // snapshot reads surfaced as errors
	Conflicts  int64 // OCC validation failures (first-committer-wins aborts)
}

// Runtime serves transactions over a testbed database.
type Runtime struct {
	db    *testbed.DB
	cfg   Config
	execs []*executor
	wg    sync.WaitGroup

	// reg is the runtime's metrics registry (see metrics.go); ackHist holds
	// the per-partition submit→ack latency histograms for fast access on
	// the submit path.
	reg     *obs.Registry
	ackHist []*obs.Histogram

	// readQs feed the per-partition snapshot reader pools (see read.go);
	// readHist holds the per-partition read latency histograms.
	readQs   []chan *readReq
	readHist []*obs.Histogram

	// mu serializes submissions against Close: Submit holds the read
	// side while enqueueing, so Close cannot close a queue mid-send.
	mu     sync.RWMutex
	closed atomic.Bool

	// msMu guards the metrics servers started via StartMetrics, which the
	// runtime owns and tears down in Close.
	msMu    sync.Mutex
	metrics []*MetricsServer

	// healthMu guards the pluggable /healthz sources (see AddHealth).
	healthMu sync.Mutex
	health   []HealthSource

	// schemas indexes the database's table schemas for the OCC wrapper.
	schemas []*core.Schema

	// writerHist holds per-(partition, writer) submit→ack histograms,
	// registered only when cfg.Writers > 1 (see metrics.go).
	writerHist [][]*obs.Histogram

	stats struct {
		committed, aborted, failed atomic.Int64
		retries, panics            atomic.Int64
		heals, healFails           atomic.Int64
		overloaded, recovering     atomic.Int64
		degraded                   atomic.Int64
		reads, readFails           atomic.Int64
		conflicts                  atomic.Int64
	}
}

type request struct {
	ctx   context.Context
	txn   testbed.Txn
	start time.Time  // submit time, for the per-writer ack histograms
	done  chan error // buffered(1): the executor never blocks on the reply
}

type executor struct {
	rt   *Runtime
	part int
	ch   chan *request
	rng  *rand.Rand

	// engMu serializes engine access between the executor loop and an
	// out-of-band RecoverAll: the engine is single-partition and must never
	// see a transaction and its own recovery concurrently.
	engMu sync.Mutex
	// recovering is set for the duration of an out-of-band recovery so the
	// submit path and the executor loop fail fast with ErrRecovering
	// instead of queueing behind (or blocking on) the heal.
	recovering atomic.Bool

	// groupSize > 1 defers acks: a committed transaction may still sit in
	// the engine's volatile group-commit buffer, so its ack is withheld
	// until the group is durably flushed (pending holds the waiting
	// requests). This closes the ack-durability hole without forcing a
	// flush per transaction the way DurableAck does.
	groupSize int
	pending   []*request
	// wpending holds each OCC writer's commits awaiting the group
	// durability barrier, indexed by writer (nil in serial mode, which uses
	// pending). Guarded by engMu: every append, flush and drain happens at
	// the partition's serialization point.
	wpending [][]*request

	panicTimes []time.Time // sliding window for panic-storm detection
	healFails  int         // consecutive failed heals (circuit breaker)
	degraded   atomic.Bool // atomic: the metrics scraper reads it live
}

// New builds a serving runtime over db and starts one executor goroutine
// per partition. The caller must Close it to drain and stop.
func New(db *testbed.DB, cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	rt := &Runtime{db: db, cfg: cfg}
	// With group commit and no per-txn flush, an ack must wait for the
	// group's durability barrier (see executor.pending).
	groupSize := 1
	if g := db.Options().GroupCommitSize; g > 1 && !cfg.DurableAck {
		groupSize = g
	}
	for i := 0; i < db.Partitions(); i++ {
		ex := &executor{
			rt:        rt,
			part:      i,
			ch:        make(chan *request, cfg.QueueDepth),
			rng:       rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			groupSize: groupSize,
		}
		rt.execs = append(rt.execs, ex)
		rt.readQs = append(rt.readQs, make(chan *readReq, cfg.ReadQueueDepth))
	}
	rt.schemas = db.Schemas()
	rt.buildMetrics()
	for _, ex := range rt.execs {
		if cfg.Writers > 1 {
			// OCC mode: N optimistic writers share the partition queue; each
			// gets its own pending-ack list and (inside runOCC) its own
			// deterministically derived jitter RNG.
			ex.wpending = make([][]*request, cfg.Writers)
			for w := 0; w < cfg.Writers; w++ {
				rt.wg.Add(1)
				go ex.runOCC(w)
			}
			continue
		}
		rt.wg.Add(1)
		go ex.run()
	}
	for i, q := range rt.readQs {
		for r := 0; r < cfg.Readers; r++ {
			rt.wg.Add(1)
			go rt.readLoop(i, q)
		}
	}
	return rt
}

// Submit routes the transaction to key's home partition and waits for the
// outcome. It returns ErrOverloaded without blocking when the partition's
// queue is full, and honors ctx cancellation both while queued and before
// execution starts (a transaction that already began is never abandoned
// mid-flight; its outcome is discarded).
func (rt *Runtime) Submit(ctx context.Context, key uint64, txn testbed.Txn) error {
	return rt.SubmitPart(ctx, rt.db.Route(key), txn)
}

// SubmitPart is Submit for an explicit partition.
func (rt *Runtime) SubmitPart(ctx context.Context, part int, txn testbed.Txn) error {
	if rt.closed.Load() {
		return ErrClosed
	}
	if part < 0 || part >= len(rt.execs) {
		return fmt.Errorf("serve: no partition %d", part)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if rt.execs[part].recovering.Load() {
		rt.stats.recovering.Add(1)
		return ErrRecovering
	}
	start := time.Now()
	req := &request{ctx: ctx, txn: txn, start: start, done: make(chan error, 1)}
	rt.mu.RLock()
	if rt.closed.Load() {
		rt.mu.RUnlock()
		return ErrClosed
	}
	select {
	case rt.execs[part].ch <- req:
		rt.mu.RUnlock()
	default:
		rt.mu.RUnlock()
		rt.stats.overloaded.Add(1)
		return ErrOverloaded
	}
	select {
	case err := <-req.done:
		// Submit→ack latency: queue wait + execution + (under group
		// commit) the durability barrier, success or failure alike.
		rt.ackHist[part].Record(time.Since(start))
		return err
	case <-ctx.Done():
		// The request stays queued; the executor observes the dead
		// context and skips it without starting a transaction.
		return ctx.Err()
	}
}

// Close drains every partition queue (queued requests still execute),
// stops the executors, and flushes batched durability work.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	if rt.closed.Swap(true) {
		rt.mu.Unlock()
		return ErrClosed
	}
	for _, ex := range rt.execs {
		close(ex.ch)
	}
	for _, q := range rt.readQs {
		close(q)
	}
	rt.mu.Unlock()
	rt.wg.Wait()
	rt.msMu.Lock()
	servers := rt.metrics
	rt.metrics = nil
	rt.msMu.Unlock()
	for _, ms := range servers {
		_ = ms.Close()
	}
	return rt.db.Flush()
}

// adoptMetrics records a metrics server for teardown in Close.
func (rt *Runtime) adoptMetrics(ms *MetricsServer) {
	rt.msMu.Lock()
	rt.metrics = append(rt.metrics, ms)
	rt.msMu.Unlock()
}

// DB exposes the runtime's database (the network layer routes and digests
// against it).
func (rt *Runtime) DB() *testbed.DB { return rt.db }

// RecoverAll power-cycles and re-recovers every partition behind a bounded
// worker pool of the given size (<= 0 picks the RecoveryWorkers default).
// Each partition is marked recovering first, so submissions and the executor
// loop fail fast with ErrRecovering instead of blocking on the heal; the
// partition returns to service the moment its own recovery completes — there
// is no cross-partition barrier. Held group-commit acks are failed with
// ErrRecovering (the power cycle wipes the volatile group buffer). Returns
// the first recovery error; the remaining partitions still recover.
func (rt *Runtime) RecoverAll(parallelism int) error {
	if rt.closed.Load() {
		return ErrClosed
	}
	for _, ex := range rt.execs {
		ex.recovering.Store(true)
	}
	pool := parallelism
	if pool <= 0 {
		pool = core.RecoveryWorkers(0)
	}
	if pool > len(rt.execs) {
		pool = len(rt.execs)
	}
	err := core.ParallelChunks(pool, len(rt.execs), func(_, lo, hi int) error {
		var firstErr error
		for i := lo; i < hi; i++ {
			if rerr := rt.recoverOne(i); rerr != nil && firstErr == nil {
				firstErr = rerr
			}
		}
		return firstErr
	})
	for _, ex := range rt.execs {
		ex.recovering.Store(false)
	}
	return err
}

// recoverOne runs one partition's out-of-band power cycle + recovery under
// its engine mutex, then clears its recovering flag.
func (rt *Runtime) recoverOne(i int) error {
	ex := rt.execs[i]
	ex.engMu.Lock()
	defer func() {
		ex.recovering.Store(false)
		ex.engMu.Unlock()
	}()
	// Fail held acks — serial and per-writer lists alike: those commits sat
	// in the volatile group buffer that the power cycle below wipes, so
	// they must not be acked.
	ex.failPendingLocked()
	rt.db.Env(i).Dev.DisarmFail()
	rt.db.CrashPartition(i)
	if err := ex.recoverQuiet(); err != nil {
		rt.stats.healFails.Add(1)
		rt.event(i, EventHealFailed, err)
		return err
	}
	rt.stats.heals.Add(1)
	rt.event(i, EventHealed, nil)
	return nil
}

// Stats snapshots the supervisor counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		Committed:  rt.stats.committed.Load(),
		Aborted:    rt.stats.aborted.Load(),
		Failed:     rt.stats.failed.Load(),
		Retries:    rt.stats.retries.Load(),
		Panics:     rt.stats.panics.Load(),
		Heals:      rt.stats.heals.Load(),
		HealFails:  rt.stats.healFails.Load(),
		Overloaded: rt.stats.overloaded.Load(),
		Recovering: rt.stats.recovering.Load(),
		Degraded:   rt.stats.degraded.Load(),
		Reads:      rt.stats.reads.Load(),
		ReadFails:  rt.stats.readFails.Load(),
		Conflicts:  rt.stats.conflicts.Load(),
	}
}

func (rt *Runtime) event(part int, kind EventKind, err error) {
	if rt.cfg.OnEvent != nil {
		rt.cfg.OnEvent(Event{Part: part, Kind: kind, Err: err})
	}
}

// run is the executor loop: serial transaction execution, which is the
// testbed's concurrency contract — engines are single-partition and not
// safe for concurrent use.
func (ex *executor) run() {
	defer ex.rt.wg.Done()
	for req := range ex.ch {
		if err := req.ctx.Err(); err != nil {
			req.done <- err
			continue
		}
		if ex.degraded.Load() {
			req.done <- ErrDegraded
			continue
		}
		if ex.recovering.Load() {
			// An out-of-band RecoverAll owns the engine right now; fail fast
			// instead of blocking the queue on its engMu.
			ex.rt.stats.recovering.Add(1)
			req.done <- ErrRecovering
			continue
		}
		ex.engMu.Lock()
		err := ex.serve(req)
		if err == nil && ex.groupSize > 1 {
			// Committed, but possibly only into the volatile group buffer:
			// hold the ack until the group flushes. Flush when the group is
			// full or the queue went idle (no point delaying the clients).
			ex.pending = append(ex.pending, req)
			if len(ex.pending) >= ex.groupSize || len(ex.ch) == 0 {
				ex.flushPending()
			}
			ex.engMu.Unlock()
			continue
		}
		ex.engMu.Unlock()
		if err == nil {
			ex.rt.stats.committed.Add(1)
		}
		req.done <- err
	}
	// Close drained the queue; release any held acks durably.
	ex.engMu.Lock()
	ex.flushPending()
	ex.engMu.Unlock()
}

// flushPending runs the durability barrier for the held acks: the engine's
// Flush forces the group commit, after which every pending transaction is
// provably durable and acked. A barrier that cannot be completed (retries
// exhausted, corruption, injected crash) means those commits were never
// durable — the pending requests are failed and the partition heals back to
// its last durable state.
func (ex *executor) flushPending() {
	if len(ex.pending) == 0 {
		return
	}
	cfg := &ex.rt.cfg
	for attempt := 0; ; attempt++ {
		err := ex.flushQuiet()
		if err == nil {
			ex.rt.stats.committed.Add(int64(len(ex.pending)))
			for _, req := range ex.pending {
				req.done <- nil
			}
			ex.pending = ex.pending[:0]
			return
		}
		if core.IsRetryable(err) && !errors.Is(err, nvm.ErrInjectedCrash) && attempt < cfg.MaxRetries {
			ex.rt.stats.retries.Add(1)
			ex.rt.event(ex.part, EventRetry, err)
			ex.backoff(attempt)
			continue
		}
		// heal fails ex.pending first (those commits are not durable).
		ex.heal(err)
		return
	}
}

// flushQuiet calls Engine.Flush, converting a panic (e.g. an injected crash
// at the fsync boundary) into a typed error for the supervisor.
func (ex *executor) flushQuiet() (err error) {
	eng := ex.rt.db.Engine(ex.part)
	defer func() {
		if r := recover(); r != nil {
			perr, ok := r.(error)
			if !ok {
				perr = fmt.Errorf("%v", r)
			}
			err = &core.TxnError{Engine: eng.Name(), Op: "flush", Panicked: true, Err: perr}
		}
	}()
	return eng.Flush()
}

// serve runs one transaction under the supervisor policy: contain panics,
// retry retryable failures with backoff, heal on anything worse.
func (ex *executor) serve(req *request) error {
	cfg := &ex.rt.cfg
	for attempt := 0; ; attempt++ {
		err := ex.runOnce(req.txn)
		switch {
		case err == nil:
			// The committed counter is bumped at ack time (run or
			// flushPending), so it never counts a commit whose ack a failed
			// durability barrier later revoked.
			return nil

		case errors.Is(err, testbed.ErrAbort):
			ex.rt.stats.aborted.Add(1)
			return err

		case errors.Is(err, nvm.ErrInjectedCrash):
			// The emulated device lost power mid-operation (fault
			// injection): only the engine's crash-recovery protocol can
			// bring the partition back.
			ex.heal(err)
			ex.rt.stats.failed.Add(1)
			return ErrRecovering

		case isPanicErr(err):
			ex.rt.stats.panics.Add(1)
			ex.rt.event(ex.part, EventPanic, err)
			if ex.panicStorm() {
				ex.heal(err)
			}
			ex.rt.stats.failed.Add(1)
			return err

		case core.IsCorrupt(err):
			ex.heal(err)
			ex.rt.stats.failed.Add(1)
			return ErrRecovering

		case core.IsRetryable(err):
			if attempt >= cfg.MaxRetries {
				ex.rt.stats.failed.Add(1)
				return err
			}
			ex.rt.stats.retries.Add(1)
			ex.rt.event(ex.part, EventRetry, err)
			ex.backoff(attempt)
			continue

		default:
			// A plain error from the transaction body (e.g.
			// core.ErrKeyExists) is the client's to handle; the abort in
			// runOnce already restored the partition.
			ex.rt.stats.failed.Add(1)
			return err
		}
	}
}

// runOnce executes the transaction once at the engine boundary. Panics are
// recovered here and converted to core.TxnError; the transaction is
// aborted on every failure path so the engine is clean for the next
// request. An abort failure is escalated as a corrupt error.
func (ex *executor) runOnce(txn testbed.Txn) (err error) {
	eng := ex.rt.db.Engine(ex.part)
	op := "begin"
	defer func() {
		if r := recover(); r != nil {
			perr, ok := r.(error)
			if !ok {
				perr = fmt.Errorf("%v", r)
			}
			err = &core.TxnError{Engine: eng.Name(), Op: op, Panicked: true, Err: perr}
			if errors.Is(perr, nvm.ErrInjectedCrash) {
				// The device is post-crash; aborting would touch lost
				// state. Leave it for heal.
				return
			}
			if aerr := ex.abortQuiet(eng); aerr != nil {
				err = core.Corrupt(errors.Join(err, aerr))
			}
		}
	}()
	if err := eng.Begin(); err != nil {
		return err
	}
	op = "txn"
	if terr := txn(eng); terr != nil {
		op = "abort"
		if aerr := eng.Abort(); aerr != nil {
			return core.Corrupt(errors.Join(terr, aerr))
		}
		return terr
	}
	op = "commit"
	if cerr := eng.Commit(); cerr != nil {
		// Engines unwind their own transaction state on every Commit error
		// path (rollback or EndTx), so the engine is ready for Begin; an
		// extra Abort here would just trip ErrNoTxn. Corrupt errors
		// escalate to heal in the caller.
		return cerr
	}
	if ex.rt.cfg.DurableAck {
		op = "flush"
		if ferr := eng.Flush(); ferr != nil {
			// The commit is applied but not provably durable; the ack
			// contract is broken, so treat it like a commit failure.
			return ferr
		}
	}
	return nil
}

// abortQuiet aborts the current transaction, absorbing a nested panic
// (e.g. the abort replaying undo over a post-crash device).
func (ex *executor) abortQuiet(eng core.Engine) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("abort panicked: %v", r)
		}
	}()
	return eng.Abort()
}

// panicStorm records a panic and reports whether the sliding window
// crossed the storm threshold.
func (ex *executor) panicStorm() bool {
	now := time.Now()
	cutoff := now.Add(-ex.rt.cfg.PanicWindow)
	keep := ex.panicTimes[:0]
	for _, t := range ex.panicTimes {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	ex.panicTimes = append(keep, now)
	return len(ex.panicTimes) >= ex.rt.cfg.PanicThreshold
}

// heal quarantines the partition: queued requests are failed with the
// retryable ErrRecovering (no silent drops), the emulated device is
// power-cycled, and the engine's own crash-recovery protocol is re-run.
// Repeated recovery failures open the circuit breaker and the partition
// degrades to fail-fast.
func (ex *executor) heal(cause error) {
	rt := ex.rt
	rt.event(ex.part, EventHeal, cause)

	// Fail the held acks first — the serial list and every OCC writer's
	// list alike: those commits sat in a volatile group buffer that the
	// power cycle below wipes, so they must not be acked.
	ex.failPendingLocked()

	// Fail everything already queued behind the broken engine.
drain:
	for {
		select {
		case req, ok := <-ex.ch:
			if !ok {
				break drain // Close already ran; nothing left to fail
			}
			rt.stats.recovering.Add(1)
			req.done <- ErrRecovering
		default:
			break drain
		}
	}

	env := rt.db.Env(ex.part)
	env.Dev.DisarmFail() // a still-armed fault plan would fire again below
	for {
		rt.db.CrashPartition(ex.part)
		if err := ex.recoverQuiet(); err != nil {
			ex.healFails++
			rt.stats.healFails.Add(1)
			rt.event(ex.part, EventHealFailed, err)
			if ex.healFails >= rt.cfg.BreakerThreshold {
				ex.degraded.Store(true)
				rt.stats.degraded.Add(1)
				rt.event(ex.part, EventDegraded, err)
				return
			}
			ex.backoff(ex.healFails)
			continue
		}
		ex.healFails = 0
		ex.panicTimes = ex.panicTimes[:0]
		rt.stats.heals.Add(1)
		rt.event(ex.part, EventHealed, nil)
		return
	}
}

// recoverQuiet runs the partition's crash recovery, converting a panic in
// the recovery path itself (e.g. an unmountable device image) into an
// error so the circuit breaker — not the process — absorbs it.
func (ex *executor) recoverQuiet() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: recovery panicked: %v", r)
		}
	}()
	_, err = ex.rt.db.RecoverPartition(ex.part)
	return err
}

// failPendingLocked fails every held ack (the serial pending list and all
// OCC writers' lists) with ErrRecovering. Caller holds engMu (or is the
// serial executor loop, which owns pending outright).
func (ex *executor) failPendingLocked() {
	rt := ex.rt
	for _, req := range ex.pending {
		rt.stats.recovering.Add(1)
		req.done <- ErrRecovering
	}
	ex.pending = ex.pending[:0]
	for w, list := range ex.wpending {
		for _, req := range list {
			rt.stats.recovering.Add(1)
			req.done <- ErrRecovering
		}
		ex.wpending[w] = list[:0]
	}
}

// backoff sleeps the capped-exponential, jittered delay for the attempt,
// drawing jitter from the executor's own RNG. The serial executor loop owns
// ex.rng outright; OCC writers only reach this under engMu (heal and the
// durability-barrier retry) — their lock-free retry path uses backoffWith
// with a per-writer RNG instead.
func (ex *executor) backoff(attempt int) { ex.backoffWith(ex.rng, attempt) }

// backoffWith is backoff against an explicit RNG: each OCC writer carries
// its own deterministically seeded RNG because math/rand.Rand is not
// goroutine-safe and backoff sleeps must not serialize on the partition
// lock just to draw jitter.
func (ex *executor) backoffWith(rng *rand.Rand, attempt int) {
	d := ex.rt.cfg.RetryBase << uint(attempt)
	if d > ex.rt.cfg.RetryCap || d <= 0 {
		d = ex.rt.cfg.RetryCap
	}
	time.Sleep(d/2 + time.Duration(rng.Int63n(int64(d/2)+1)))
}

func isPanicErr(err error) bool {
	var te *core.TxnError
	return errors.As(err, &te) && te.Panicked
}
