package serve

// Snapshot read path: a per-partition pool of reader goroutines serving
// Get/Scan against MVCC read views, alongside — never through — the serial
// executor. A read pins a view at the partition's durable timestamp frontier
// and traverses immutable version chains lock-free, so it neither takes the
// engine mutex nor waits behind queued transactions. The visibility contract
// is ack-aligned: the timestamp oracle only advances when a commit crosses
// the durability barrier, so a view can never observe a write whose ack a
// failed barrier would later revoke.

import (
	"context"
	"fmt"
	"time"

	"nstore/internal/core"
)

// readReq is one snapshot read waiting for a reader goroutine.
type readReq struct {
	ctx  context.Context
	op   func(core.ReadView) error
	done chan error // buffered(1): the reader never blocks on the reply
}

// Read routes a snapshot read to key's home partition and runs op against a
// read view pinned at the partition's durable frontier. It mirrors Submit's
// admission contract: ErrOverloaded when the read queue is full,
// ErrRecovering while a heal owns the partition, ErrDegraded past the
// circuit breaker, and ctx cancellation while queued.
func (rt *Runtime) Read(ctx context.Context, key uint64, op func(core.ReadView) error) error {
	return rt.ReadPart(ctx, rt.db.Route(key), op)
}

// ReadPart is Read for an explicit partition.
func (rt *Runtime) ReadPart(ctx context.Context, part int, op func(core.ReadView) error) error {
	if rt.closed.Load() {
		return ErrClosed
	}
	if part < 0 || part >= len(rt.execs) {
		return fmt.Errorf("serve: no partition %d", part)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ex := rt.execs[part]
	if ex.degraded.Load() {
		return ErrDegraded
	}
	if ex.recovering.Load() {
		rt.stats.recovering.Add(1)
		return ErrRecovering
	}
	start := time.Now()
	req := &readReq{ctx: ctx, op: op, done: make(chan error, 1)}
	rt.mu.RLock()
	if rt.closed.Load() {
		rt.mu.RUnlock()
		return ErrClosed
	}
	select {
	case rt.readQs[part] <- req:
		rt.mu.RUnlock()
	default:
		rt.mu.RUnlock()
		rt.stats.overloaded.Add(1)
		return ErrOverloaded
	}
	select {
	case err := <-req.done:
		rt.readHist[part].Record(time.Since(start))
		if err == nil {
			rt.stats.reads.Add(1)
		} else {
			rt.stats.readFails.Add(1)
		}
		return err
	case <-ctx.Done():
		// The request stays queued; the reader observes the dead context
		// and skips it without pinning a view.
		return ctx.Err()
	}
}

// GetRow is a convenience snapshot point read.
func (rt *Runtime) GetRow(ctx context.Context, table string, key uint64) (row []core.Value, found bool, err error) {
	err = rt.Read(ctx, key, func(v core.ReadView) error {
		r, ok, gerr := v.Get(table, key)
		if gerr != nil {
			return gerr
		}
		row, found = core.CloneRow(r), ok
		return nil
	})
	return row, found, err
}

// readLoop is one reader goroutine: it drains the partition's read queue,
// re-checks admission (the partition may have started healing while the
// request sat queued), and serves the read against a fresh view.
func (rt *Runtime) readLoop(part int, q chan *readReq) {
	defer rt.wg.Done()
	ex := rt.execs[part]
	for req := range q {
		if err := req.ctx.Err(); err != nil {
			req.done <- err
			continue
		}
		if ex.degraded.Load() {
			req.done <- ErrDegraded
			continue
		}
		if ex.recovering.Load() {
			rt.stats.recovering.Add(1)
			req.done <- ErrRecovering
			continue
		}
		req.done <- rt.serveRead(part, req.op)
	}
}

// serveRead pins a view on the partition's current engine and runs op,
// converting a panic into a typed TxnError like the write path does. The
// engine pointer is fetched per read (RecoverPartition swaps it), and the
// view touches only the engine's in-memory version store — never the
// device — so a concurrent power-cycle cannot fault a reader.
func (rt *Runtime) serveRead(part int, op func(core.ReadView) error) (err error) {
	eng := rt.db.Engine(part)
	sr, ok := eng.(core.SnapshotReader)
	if !ok {
		return fmt.Errorf("serve: engine %s does not support snapshot reads", eng.Name())
	}
	defer func() {
		if r := recover(); r != nil {
			perr, isErr := r.(error)
			if !isErr {
				perr = fmt.Errorf("%v", r)
			}
			err = &core.TxnError{Engine: eng.Name(), Op: "read", Panicked: true, Err: perr}
		}
	}()
	v := sr.SnapshotView()
	defer v.Close()
	return op(v)
}
