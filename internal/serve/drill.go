package serve

import (
	"context"
	"fmt"
	"io"

	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/pmfs"
	"nstore/internal/testbed"
)

// FaultNames lists the fault schedules RunDrill accepts.
var FaultNames = []string{"none", "fsync-transient", "fsync-lost", "fsync-torn", "fence-lose", "fence-reorder"}

// DrillConfig parameterizes RunDrill, the workload binaries' -serve mode.
type DrillConfig struct {
	// Clients is the number of concurrent clients per partition.
	Clients int
	// Fault names the mid-traffic fault schedule (see FaultNames).
	Fault string
	// FaultAfter is how many fsyncs/fences to let through first.
	FaultAfter int
	// Seed seeds the fault schedules and the runtime's jitter.
	Seed int64
	// WantRows, when >= 0, is the expected total row count after the
	// final power cycle (workloads that never insert or delete).
	WantRows int64
	// Metrics, when non-empty, is a listen address (host:port, ":0" for
	// ephemeral) for the /metrics + /healthz + pprof endpoint, which stays
	// up for the duration of the drill.
	Metrics string
	// Out and Errw receive the report and the supervisor event log.
	Out, Errw io.Writer
}

// RunDrill drives pre-generated transactions through the serving runtime
// with concurrent clients while the configured fault fires on every
// partition mid-traffic, then proves the surviving state: the run must
// complete without abandoning work beyond what the fault cost, and the
// database must come back from a final full power cycle with every
// committed row.
func RunDrill(db *testbed.DB, perPart [][]testbed.Txn, schemas []*core.Schema, cfg DrillConfig) error {
	ctx := context.Background()
	rt := New(db, Config{Seed: cfg.Seed, OnEvent: func(ev Event) {
		fmt.Fprintf(cfg.Errw, "[part %d] %s: %v\n", ev.Part, ev.Kind, ev.Err)
	}})
	if cfg.Metrics != "" {
		ms, err := rt.StartMetrics(cfg.Metrics)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Fprintf(cfg.Out, "metrics: http://%s/metrics\n", ms.Addr())
	}
	if err := armFault(ctx, rt, db, cfg.Fault, cfg.FaultAfter, cfg.Seed); err != nil {
		return err
	}
	ds := Drive(ctx, rt, perPart, cfg.Clients)
	stats := rt.Stats()
	if err := rt.Close(); err != nil {
		fmt.Fprintln(cfg.Errw, "close:", err)
	}
	fmt.Fprintf(cfg.Out, "serve: %d acked, %d aborted, %d abandoned (clients); supervisor: %d retries, %d panics contained, %d heals, %d degraded\n",
		ds.Acked, ds.Aborted, ds.Abandoned, stats.Retries, stats.Panics, stats.Heals, stats.Degraded)
	live, err := countRows(db, schemas)
	if err != nil {
		return fmt.Errorf("live scan: %w", err)
	}
	db.Crash()
	d, err := db.Recover()
	if err != nil {
		return fmt.Errorf("final recovery: %w", err)
	}
	recovered, err := countRows(db, schemas)
	if err != nil {
		return fmt.Errorf("recovered scan: %w", err)
	}
	if recovered != live || (cfg.WantRows >= 0 && recovered != cfg.WantRows) {
		want := cfg.WantRows
		if want < 0 {
			want = live
		}
		return fmt.Errorf("row count diverged: live %d, recovered %d, want %d", live, recovered, want)
	}
	fmt.Fprintf(cfg.Out, "final crash + recovery: %v; %d rows intact\n", d, recovered)
	for _, s := range db.RecoveryStats() {
		fmt.Fprintf(cfg.Out, "  part %d: %v (%d records, %d workers)\n", s.Partition, s.Wall.Round(1000), s.Records, s.Workers)
	}
	return nil
}

// armFault installs the requested fault schedule on every partition, from
// each partition's own executor goroutine.
func armFault(ctx context.Context, rt *Runtime, db *testbed.DB, fault string, after int, seed int64) error {
	if fault == "" || fault == "none" {
		return nil
	}
	for p := 0; p < db.Partitions(); p++ {
		env := db.Env(p)
		pseed := seed + int64(p)
		var fn func()
		switch fault {
		case "fsync-transient":
			fn = func() { env.FS.FailSyncs(after, 2) }
		case "fsync-lost":
			fn = func() {
				env.FS.InjectSyncFault(pmfs.SyncFault{Seed: pseed, AfterSyncs: after, Mode: pmfs.SyncCrashLost})
			}
		case "fsync-torn":
			fn = func() {
				env.FS.InjectSyncFault(pmfs.SyncFault{Seed: pseed, AfterSyncs: after, Mode: pmfs.SyncCrashTorn})
			}
		case "fence-lose":
			fn = func() {
				env.Dev.InjectFaults(nvm.FaultPlan{Seed: pseed, Mode: nvm.FaultLoseAll, CrashAfterFences: after})
			}
		case "fence-reorder":
			fn = func() {
				env.Dev.InjectFaults(nvm.FaultPlan{Seed: pseed, Mode: nvm.FaultReorder, CrashAfterFences: after, KeepProb: 0.5})
			}
		default:
			return fmt.Errorf("unknown fault %q", fault)
		}
		rt.Arm(ctx, p, fn)
	}
	return nil
}

// countRows scans every table on every partition.
func countRows(db *testbed.DB, schemas []*core.Schema) (int64, error) {
	var total int64
	for p := 0; p < db.Partitions(); p++ {
		for _, s := range schemas {
			err := db.Engine(p).ScanRange(s.Name, 0, ^uint64(0), func(uint64, []core.Value) bool {
				total++
				return true
			})
			if err != nil {
				return 0, err
			}
		}
	}
	return total, nil
}
