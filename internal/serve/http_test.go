package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"nstore/internal/testbed"
)

// TestMetricsCloseGraceful pins the Shutdown-with-deadline contract: a
// scrape in flight when Close is called completes with a full response
// instead of a severed connection, Close is idempotent, and new connections
// are refused afterwards.
func TestMetricsCloseGraceful(t *testing.T) {
	db := newDB(t, testbed.InP, 1, 32<<20)
	rt := New(db, Config{})
	defer rt.Close()
	ms, err := rt.StartMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Open a raw connection and send the request line but hold the scrape
	// open by reading slowly: Close must still let the response finish.
	conn, err := net.Dial("tcp", ms.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// Give the handler a moment to pick the request up before shutdown.
	time.Sleep(50 * time.Millisecond)

	var wg sync.WaitGroup
	wg.Add(1)
	var closeErr error
	go func() {
		defer wg.Done()
		closeErr = ms.Close()
	}()

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	body, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("in-flight scrape severed by Close: %v", err)
	}
	if !strings.Contains(string(body), "200 OK") || !strings.Contains(string(body), "\"schema\"") {
		t.Fatalf("in-flight scrape got a partial response:\n%s", body)
	}
	wg.Wait()
	if closeErr != nil {
		t.Fatalf("Close: %v", closeErr)
	}
	if err := ms.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := http.Get("http://" + ms.Addr() + "/metrics"); err == nil {
		t.Fatal("endpoint still accepting after Close")
	}
}

// TestRuntimeCloseOwnsMetrics pins the ownership bugfix: a metrics server
// started from the runtime is torn down by Runtime.Close without the caller
// closing it, and a by-hand Close beforehand stays legal.
func TestRuntimeCloseOwnsMetrics(t *testing.T) {
	db := newDB(t, testbed.InP, 1, 32<<20)
	rt := New(db, Config{})
	ms1, err := rt.StartMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ms2, err := rt.StartMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ms2.Close(); err != nil { // caller closes one early — allowed
		t.Fatal(err)
	}
	scrape(t, ms1.Addr()) // still serving before runtime close
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + ms1.Addr() + "/metrics"); err == nil {
		t.Fatal("metrics endpoint survived Runtime.Close")
	}
}

// TestHealthzReportsRecovering pins the /healthz bugfix: a partition
// mid-RecoverAll shows up in the 503 body so a load balancer drains it, and
// the endpoint returns to 200 once the heal completes.
func TestHealthzReportsRecovering(t *testing.T) {
	const parts = 2
	db := newDB(t, testbed.NVMLog, parts, 32<<20)
	rt := New(db, Config{})
	defer rt.Close()
	ms, err := rt.StartMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10; k++ {
		if err := rt.SubmitPart(context.Background(), int(k%parts), insertTxn(k, int64(k))); err != nil {
			t.Fatal(err)
		}
	}

	healthz := func() (int, string) {
		resp, err := http.Get("http://" + ms.Addr() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := healthz(); code != http.StatusOK {
		t.Fatalf("healthy runtime: /healthz = %d (%s)", code, body)
	}

	// Flip the recovering flags by hand (the exact state RecoverAll sets
	// before healing each partition) so the 503 window is not a race.
	for _, ex := range rt.execs {
		ex.recovering.Store(true)
	}
	code, body := healthz()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d during recovery, want 503 (%s)", code, body)
	}
	if !strings.Contains(body, "recovering partitions: [0 1]") {
		t.Fatalf("503 body does not list recovering partitions:\n%s", body)
	}
	for _, ex := range rt.execs {
		ex.recovering.Store(false)
	}

	// And through the real path: after a completed RecoverAll the endpoint
	// must be 200 again with all data intact.
	if err := rt.RecoverAll(0); err != nil {
		t.Fatal(err)
	}
	if code, body := healthz(); code != http.StatusOK {
		t.Fatalf("after RecoverAll: /healthz = %d (%s)", code, body)
	}
	for k := uint64(0); k < 10; k++ {
		if got := mustGet(t, db, int(k%parts), k); got != int64(k) {
			t.Fatalf("key %d = %d after heal", k, got)
		}
	}
}
