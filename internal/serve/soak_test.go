package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nstore/internal/core"
	"nstore/internal/engine/enginetest"
	"nstore/internal/nvm"
	"nstore/internal/pmfs"
	"nstore/internal/testbed"
)

// TestSoakMidTrafficFaults runs concurrent clients against every engine
// while seeded fsync crashes, transient fsync failures, and device fence
// faults strike mid-traffic. It asserts the serving contract of the
// supervisor: every acked commit survives (including a final full power
// cycle), failures surface as typed errors rather than silent drops, the
// afflicted partition heals in place, and the process never exits. Replay
// a failure with the same schedule via `go test -seed=N`.
func TestSoakMidTrafficFaults(t *testing.T) {
	for _, kind := range testbed.Kinds {
		t.Run(string(kind), func(t *testing.T) { soakOne(t, kind) })
	}
}

func soakOne(t *testing.T, kind testbed.EngineKind) {
	const parts = 3
	nTxns := 400
	if testing.Short() {
		nTxns = 120
	}
	seed := enginetest.BaseSeed()

	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: parts,
		Env:        core.EnvConfig{DeviceSize: 32 << 20},
		Options:    core.Options{GroupCommitSize: 1}, // durable-at-commit ack contract
		Schemas:    schemas(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := New(db, Config{QueueDepth: 16, Seed: seed})
	ctx := context.Background()

	// Concurrent snapshot readers run for the soak's whole lifetime —
	// through every mid-traffic fault and heal. They record everything they
	// observe; after the final power cycle every observed row must still be
	// there, which proves a snapshot never exposed a write that had not
	// crossed the durability barrier (an unacked write would be wiped).
	observed := make([]map[uint64]int64, parts)
	stopReads := make(chan struct{})
	var readersWG sync.WaitGroup
	for p := 0; p < parts; p++ {
		observed[p] = make(map[uint64]int64)
		readersWG.Add(1)
		go func(p int) {
			defer readersWG.Done()
			obs := observed[p]
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				err := rt.ReadPart(ctx, p, func(v core.ReadView) error {
					return v.ScanRange("t", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
						obs[pk] = row[1].I
						return true
					})
				})
				if err != nil && !core.IsRetryable(err) {
					t.Errorf("snapshot read on partition %d: %v", p, err)
					return
				}
			}
		}(p)
	}

	type clientRes struct {
		acked      map[uint64]int64
		unexpected []error
	}
	results := make([]clientRes, parts)
	var wg sync.WaitGroup
	for c := 0; c < parts; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p := c
			rng := rand.New(rand.NewSource(seed*1000 + int64(c)))
			acked := make(map[uint64]int64)
			for i := 0; i < nTxns; i++ {
				if i == nTxns/3 || i == 2*nTxns/3 {
					injectFault(ctx, rt, db, kind, p, i > nTxns/2, seed+int64(p), rng)
				}
				key := uint64((c*nTxns+i)*parts + p)
				val := rng.Int63()
				if soakSubmit(ctx, rt, p, key, val, &results[c].unexpected) {
					acked[key] = val
				}
			}
			results[c].acked = acked
		}(c)
	}
	wg.Wait()
	close(stopReads)
	readersWG.Wait()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	stats := rt.Stats()

	for c := range results {
		for _, err := range results[c].unexpected {
			t.Errorf("client %d: unexpected error: %v", c, err)
		}
		if len(results[c].acked) == 0 {
			t.Errorf("client %d (partition %d) got nothing acked — partition stopped committing", c, c)
		}
	}
	nObserved := 0
	for p := range observed {
		nObserved += len(observed[p])
	}
	if nObserved == 0 {
		t.Error("snapshot readers observed nothing across the whole soak")
	}
	if stats.Heals < 1 {
		t.Errorf("no heal happened; fault schedule never fired: %+v", stats)
	}
	if stats.Degraded != 0 {
		t.Errorf("a partition degraded during the soak: %+v", stats)
	}

	// Every acked commit must be visible now...
	verify := func(when string) {
		for c := range results {
			for key, val := range results[c].acked {
				row, ok, err := db.Engine(c).Get("t", key)
				if err != nil || !ok {
					t.Fatalf("%s: acked key %d lost (ok=%v err=%v, seed=%d)", when, key, ok, err, seed)
				}
				if row[1].I != val {
					t.Fatalf("%s: acked key %d = %d, want %d (seed=%d)", when, key, row[1].I, val, seed)
				}
			}
		}
	}
	verify("live")
	// ...and must survive a final full power cycle on top of everything
	// the engines already absorbed mid-traffic.
	db.Crash()
	if _, err := db.Recover(); err != nil {
		t.Fatalf("final recovery: %v (seed=%d)", err, seed)
	}
	verify("after power cycle")

	// Everything a snapshot reader ever observed must also have survived:
	// a view that had exposed a not-yet-durable write would fail here.
	for p := range observed {
		for key, val := range observed[p] {
			row, ok, err := db.Engine(p).Get("t", key)
			if err != nil || !ok {
				t.Fatalf("snapshot-observed key %d gone after power cycle (ok=%v err=%v, seed=%d) — a view exposed a non-durable write", key, ok, err, seed)
			}
			if row[1].I != val {
				t.Fatalf("snapshot-observed key %d = %d after power cycle, view saw %d (seed=%d)", key, row[1].I, val, seed)
			}
		}
	}

	t.Logf("%s soak (seed=%d): %+v, %d rows snapshot-observed", kind, seed, stats, nObserved)
}

// TestSoakGroupCommitDeferredAck is the regression for the ack-durability
// hole: with GroupCommitSize > 1 a commit used to be acked while its records
// still sat in a volatile group buffer, so a mid-traffic heal or the final
// power cycle could eat an acked transaction. The runtime now defers acks
// until the group's durability barrier, which this soak verifies under the
// same fault schedule as the GroupCommitSize: 1 run.
func TestSoakGroupCommitDeferredAck(t *testing.T) {
	for _, kind := range testbed.Kinds {
		t.Run(string(kind), func(t *testing.T) { soakGroupOne(t, kind) })
	}
}

func soakGroupOne(t *testing.T, kind testbed.EngineKind) {
	const parts = 2
	const fan = 3 // clients per partition, so group buffers actually fill
	nTxns := 150
	if testing.Short() {
		nTxns = 50
	}
	seed := enginetest.BaseSeed()

	db, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: parts,
		Env:        core.EnvConfig{DeviceSize: 32 << 20},
		Options:    core.Options{GroupCommitSize: 8}, // acks must wait for the group flush
		Schemas:    schemas(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := New(db, Config{QueueDepth: 16, Seed: seed})
	ctx := context.Background()

	type clientRes struct {
		acked      map[uint64]int64
		unexpected []error
	}
	results := make([]clientRes, parts*fan)
	var wg sync.WaitGroup
	for c := 0; c < parts*fan; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p := c % parts
			rng := rand.New(rand.NewSource(seed*1000 + int64(c)))
			acked := make(map[uint64]int64)
			for i := 0; i < nTxns; i++ {
				if c < parts && (i == nTxns/3 || i == 2*nTxns/3) {
					injectFault(ctx, rt, db, kind, p, i > nTxns/2, seed+int64(p), rng)
				}
				key := uint64(c*nTxns+i)*uint64(parts) + uint64(p)
				val := rng.Int63()
				if soakSubmit(ctx, rt, p, key, val, &results[c].unexpected) {
					acked[key] = val
				}
			}
			results[c].acked = acked
		}(c)
	}
	wg.Wait()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	stats := rt.Stats()

	for c := range results {
		for _, err := range results[c].unexpected {
			t.Errorf("client %d: unexpected error: %v", c, err)
		}
		if len(results[c].acked) == 0 {
			t.Errorf("client %d (partition %d) got nothing acked", c, c%parts)
		}
	}
	if stats.Heals < 1 {
		t.Errorf("no heal happened; fault schedule never fired: %+v", stats)
	}
	if stats.Degraded != 0 {
		t.Errorf("a partition degraded during the soak: %+v", stats)
	}

	verify := func(when string) {
		for c := range results {
			p := c % parts
			for key, val := range results[c].acked {
				row, ok, err := db.Engine(p).Get("t", key)
				if err != nil || !ok {
					t.Fatalf("%s: acked key %d lost (ok=%v err=%v, seed=%d)", when, key, ok, err, seed)
				}
				if row[1].I != val {
					t.Fatalf("%s: acked key %d = %d, want %d (seed=%d)", when, key, row[1].I, val, seed)
				}
			}
		}
	}
	verify("live")
	// The decisive check: a power cycle right after the last ack. Anything
	// acked from a volatile group buffer dies here.
	db.Crash()
	if _, err := db.Recover(); err != nil {
		t.Fatalf("final recovery: %v (seed=%d)", err, seed)
	}
	verify("after power cycle")

	t.Logf("%s group-commit soak (seed=%d): %+v", kind, seed, stats)
}

// TestServeSurvivesWhereExecuteStops contrasts the serving runtime with
// the raw testbed path on the same fault: a transient fsync failure makes
// DB.Execute abandon the partition's remaining transactions (the error
// stops the run), while the supervisor retries past it and commits the
// whole batch.
func TestServeSurvivesWhereExecuteStops(t *testing.T) {
	const n = 10
	mkTxns := func() []testbed.Txn {
		var txns []testbed.Txn
		for i := 0; i < n; i++ {
			txns = append(txns, insertTxn(uint64(i), int64(i)))
		}
		return txns
	}

	raw := newDB(t, testbed.InP, 1, 16<<20)
	raw.Env(0).FS.FailSyncs(1, 1)
	if _, err := raw.Execute([][]testbed.Txn{mkTxns()}); err == nil {
		t.Fatal("pre-serve path absorbed the sync failure; contrast test is stale")
	}

	served := newDB(t, testbed.InP, 1, 16<<20)
	served.Env(0).FS.FailSyncs(1, 1)
	rt := New(served, Config{})
	defer rt.Close()
	for _, txn := range mkTxns() {
		if err := rt.SubmitPart(context.Background(), 0, txn); err != nil {
			t.Fatalf("serve path: %v", err)
		}
	}
	if got := rt.Stats().Committed; got != n {
		t.Fatalf("served %d of %d", got, n)
	}
}

// soakSubmit submits one insert with bounded client-side retries and
// reports whether the commit was acked. An ErrKeyExists on a retry means
// the ambiguous earlier attempt did commit; the value is deterministic per
// key, so it counts as acked.
func soakSubmit(ctx context.Context, rt *Runtime, part int, key uint64, val int64, unexpected *[]error) bool {
	txn := insertTxn(key, val)
	for attempt := 0; attempt < 12; attempt++ {
		err := rt.SubmitPart(ctx, part, txn)
		switch {
		case err == nil:
			return true
		case errors.Is(err, core.ErrKeyExists):
			return true
		case core.IsRetryable(err), errors.Is(err, nvm.ErrInjectedCrash), isPanicErr(err):
			// Typed, retryable-by-contract outcomes: back off briefly and
			// resubmit while the partition retries or heals.
			time.Sleep(time.Duration(200+100*attempt) * time.Microsecond)
		default:
			*unexpected = append(*unexpected, fmt.Errorf("key %d: %w", key, err))
			return false
		}
	}
	*unexpected = append(*unexpected, fmt.Errorf("key %d: never acked after retries", key))
	return false
}

// injectFault arms the next fault on partition p's storage from inside a
// submitted (and then aborted) transaction, so the fault state is ordered
// with the executor's engine accesses. Filesystem-centric engines get a
// transient fsync failure first and an fsync crash later; NVM-aware
// engines get seeded fence faults (lose-all first, reorder later).
func injectFault(ctx context.Context, rt *Runtime, db *testbed.DB, kind testbed.EngineKind, p int, late bool, seed int64, rng *rand.Rand) {
	after := rng.Intn(5)
	var arm testbed.Txn
	if kind.IsNVMAware() {
		plan := nvm.FaultPlan{Seed: seed, Mode: nvm.FaultLoseAll, CrashAfterFences: 10 + rng.Intn(40)}
		if late {
			plan.Mode = nvm.FaultReorder
			plan.KeepProb = 0.5
		}
		arm = func(core.Engine) error {
			db.Env(p).Dev.InjectFaults(plan)
			return testbed.ErrAbort
		}
	} else if !late {
		arm = func(core.Engine) error {
			db.Env(p).FS.FailSyncs(after, 2)
			return testbed.ErrAbort
		}
	} else {
		mode := pmfs.SyncCrashLost
		if rng.Intn(2) == 0 {
			mode = pmfs.SyncCrashTorn
		}
		fault := pmfs.SyncFault{Seed: seed, AfterSyncs: after, Mode: mode}
		arm = func(core.Engine) error {
			db.Env(p).FS.InjectSyncFault(fault)
			return testbed.ErrAbort
		}
	}
	// The arming txn itself may be the one that hits the fault (e.g. a
	// fence crash during its abort) — any outcome is fine.
	rt.SubmitPart(ctx, p, arm)
}
