package serve

// This file holds the optimistic write executors (Config.Writers > 1). Each
// partition runs N writer goroutines off the same bounded queue. A
// transaction executes against a core.OccTxn — reads from a pinned MVCC
// snapshot, writes buffered into a write set — without holding the partition
// lock; only the commit point (validate + apply + group-commit bookkeeping)
// serializes under engMu. First committer wins: a loser aborts with the
// retryable core.ErrConflict, having never touched the engine, and is
// retried against a fresh snapshot with jittered backoff. Acks still release
// strictly after the durability barrier, exactly like the serial path.
// Writers:1 does not enter this file at all — New spawns the untouched
// serial run() loop.

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"nstore/internal/core"
	"nstore/internal/nvm"
	"nstore/internal/testbed"
)

// runOCC is one optimistic writer. w is the writer's index within the
// partition; its jitter RNG is derived deterministically from (seed,
// partition, writer) so multi-writer runs stay -seed replayable without
// sharing the non-goroutine-safe ex.rng.
func (ex *executor) runOCC(w int) {
	defer ex.rt.wg.Done()
	rng := rand.New(rand.NewSource(ex.rt.cfg.Seed + int64(ex.part)*7919 + int64(w+1)*104729))
	for req := range ex.ch {
		if err := req.ctx.Err(); err != nil {
			req.done <- err
			continue
		}
		if ex.degraded.Load() {
			req.done <- ErrDegraded
			continue
		}
		if ex.recovering.Load() {
			ex.rt.stats.recovering.Add(1)
			req.done <- ErrRecovering
			continue
		}
		deferred, err := ex.serveOCC(req, w, rng)
		if deferred {
			continue // the durability barrier owns the ack now
		}
		if err == nil {
			ex.rt.stats.committed.Add(1)
			ex.rt.recordWriterAck(ex.part, w, time.Since(req.start))
		}
		req.done <- err
	}
	// Close drained the queue; release any held acks durably. Every writer
	// runs this on exit — the flush covers all writers' lists, so whichever
	// writer commits last still gets its acks released.
	ex.engMu.Lock()
	ex.flushPendingOCC()
	ex.engMu.Unlock()
}

// serveOCC runs one transaction under the supervisor policy — the same
// decision table as the serial serve(), with two differences: ErrConflict
// arrives through the retryable case (each retry re-executes against a
// fresh snapshot), and heal/panic bookkeeping must take engMu explicitly
// because the optimistic phase runs outside it.
func (ex *executor) serveOCC(req *request, w int, rng *rand.Rand) (deferred bool, err error) {
	if eng := ex.rt.db.Engine(ex.part); !occCapable(eng) {
		// No MVCC substrate to validate against (not the case for any of
		// the six engines): fall back to fully serialized execution under
		// the partition lock. serve() already ran the supervisor policy, so
		// the result returns as-is.
		return ex.runOnceLocked(req, w)
	}
	cfg := &ex.rt.cfg
	for attempt := 0; ; attempt++ {
		deferred, err := ex.runOnceOCC(req, w)
		switch {
		case err == nil:
			return deferred, nil

		case errors.Is(err, testbed.ErrAbort):
			ex.rt.stats.aborted.Add(1)
			return false, err

		case errors.Is(err, nvm.ErrInjectedCrash):
			ex.withEngMu(func() { ex.heal(err) })
			ex.rt.stats.failed.Add(1)
			return false, ErrRecovering

		case isPanicErr(err):
			ex.rt.stats.panics.Add(1)
			ex.rt.event(ex.part, EventPanic, err)
			ex.withEngMu(func() {
				if ex.panicStorm() {
					ex.heal(err)
				}
			})
			ex.rt.stats.failed.Add(1)
			return false, err

		case core.IsCorrupt(err):
			ex.withEngMu(func() { ex.heal(err) })
			ex.rt.stats.failed.Add(1)
			return false, ErrRecovering

		case core.IsRetryable(err):
			if attempt >= cfg.MaxRetries {
				ex.rt.stats.failed.Add(1)
				return false, err
			}
			ex.rt.stats.retries.Add(1)
			ex.rt.event(ex.part, EventRetry, err)
			ex.backoffWith(rng, attempt)
			continue

		default:
			ex.rt.stats.failed.Add(1)
			return false, err
		}
	}
}

// runOnceOCC executes the transaction once: optimistic phase off-lock,
// then validate + apply + ack bookkeeping under engMu. deferred reports
// that the commit joined a group and its ack belongs to the durability
// barrier.
func (ex *executor) runOnceOCC(req *request, w int) (deferred bool, err error) {
	rt := ex.rt
	eng := rt.db.Engine(ex.part)
	sr, okSR := eng.(core.SnapshotReader)
	vp, okVP := eng.(core.OccValidatorProvider)
	if !okSR || !okVP {
		// Capability is a property of the engine kind and was checked in
		// serveOCC; a heal never changes the kind.
		return false, fmt.Errorf("serve: engine %s lost its MVCC substrate mid-run", eng.Name())
	}

	// Optimistic phase: the body runs against the wrapper, never the
	// engine. Panics here are the body's (or the view's), contained to a
	// typed TxnError like the serial path's runOnce.
	ot := core.NewOccTxn(sr.SnapshotView(), eng.Name(), rt.schemas)
	if terr := ex.occBody(eng.Name(), ot, req.txn); terr != nil {
		ot.Close()
		return false, terr
	}

	// Commit point. The snapshot stays pinned through validation: the pin
	// keeps the validator's conflict entries above the GC watermark from
	// being pruned out from under the read set.
	ex.engMu.Lock()
	defer ex.engMu.Unlock()
	defer ot.Close()
	if ex.recovering.Load() {
		rt.stats.recovering.Add(1)
		return false, ErrRecovering
	}
	if cur := rt.db.Engine(ex.part); cur != eng {
		// The partition healed between snapshot and commit; the snapshot
		// belongs to the discarded engine instance. Retryable — the next
		// attempt pins a fresh snapshot on the recovered engine.
		return false, ErrRecovering
	}
	if verr := ot.Validate(vp.OccValidator()); verr != nil {
		rt.stats.conflicts.Add(1)
		return false, verr
	}
	if ot.ReadOnly() {
		// A read-only transaction serializes at its snapshot; nothing to
		// apply, nothing to make durable.
		return false, nil
	}
	if aerr := ex.applyOCC(eng, ot); aerr != nil {
		return false, aerr
	}
	if ex.groupSize > 1 {
		ex.wpending[w] = append(ex.wpending[w], req)
		if ex.occPendingTotal() >= ex.groupSize || len(ex.ch) == 0 {
			ex.flushPendingOCC()
		}
		return true, nil
	}
	return false, nil
}

// runOnceLocked is the non-MVCC fallback: the serial supervisor under
// engMu, with group-commit acks routed through the writer's pending list.
func (ex *executor) runOnceLocked(req *request, w int) (deferred bool, err error) {
	ex.engMu.Lock()
	defer ex.engMu.Unlock()
	if ex.recovering.Load() {
		ex.rt.stats.recovering.Add(1)
		return false, ErrRecovering
	}
	if err := ex.serve(req); err != nil {
		return false, err
	}
	if ex.groupSize > 1 {
		ex.wpending[w] = append(ex.wpending[w], req)
		if ex.occPendingTotal() >= ex.groupSize || len(ex.ch) == 0 {
			ex.flushPendingOCC()
		}
		return true, nil
	}
	return false, nil
}

// occBody runs the transaction body against the wrapper with the serial
// path's panic containment.
func (ex *executor) occBody(engine string, ot *core.OccTxn, txn testbed.Txn) (err error) {
	defer func() {
		if r := recover(); r != nil {
			perr, ok := r.(error)
			if !ok {
				perr = fmt.Errorf("%v", r)
			}
			err = &core.TxnError{Engine: engine, Op: "occ-txn", Panicked: true, Err: perr}
		}
	}()
	return txn(ot)
}

// applyOCC replays the validated write set through the real engine with
// runOnce's panic containment and DurableAck semantics. Caller holds engMu.
func (ex *executor) applyOCC(eng core.Engine, ot *core.OccTxn) (err error) {
	defer func() {
		if r := recover(); r != nil {
			perr, ok := r.(error)
			if !ok {
				perr = fmt.Errorf("%v", r)
			}
			err = &core.TxnError{Engine: eng.Name(), Op: "occ-apply", Panicked: true, Err: perr}
			if errors.Is(perr, nvm.ErrInjectedCrash) {
				// Post-crash device: leave the state for heal.
				return
			}
			if aerr := ex.abortQuiet(eng); aerr != nil {
				err = core.Corrupt(errors.Join(err, aerr))
			}
		}
	}()
	if err := ot.Apply(eng); err != nil {
		return err
	}
	if ex.rt.cfg.DurableAck {
		if ferr := eng.Flush(); ferr != nil {
			// Applied but not provably durable; the ack contract is broken,
			// so treat it like a commit failure.
			return ferr
		}
	}
	return nil
}

// occPendingTotal counts held acks across all writers. Caller holds engMu.
func (ex *executor) occPendingTotal() int {
	n := 0
	for _, list := range ex.wpending {
		n += len(list)
	}
	return n
}

// flushPendingOCC runs the durability barrier for every writer's held acks:
// one engine Flush covers all of them — the group buffer is per partition,
// not per writer. Failure semantics mirror flushPending: retryable errors
// back off and retry, anything worse heals the partition, which fails every
// held ack. Caller holds engMu.
func (ex *executor) flushPendingOCC() {
	if ex.occPendingTotal() == 0 {
		return
	}
	cfg := &ex.rt.cfg
	for attempt := 0; ; attempt++ {
		err := ex.flushQuiet()
		if err == nil {
			for w, list := range ex.wpending {
				ex.rt.stats.committed.Add(int64(len(list)))
				for _, req := range list {
					ex.rt.recordWriterAck(ex.part, w, time.Since(req.start))
					req.done <- nil
				}
				ex.wpending[w] = list[:0]
			}
			return
		}
		if core.IsRetryable(err) && !errors.Is(err, nvm.ErrInjectedCrash) && attempt < cfg.MaxRetries {
			ex.rt.stats.retries.Add(1)
			ex.rt.event(ex.part, EventRetry, err)
			ex.backoff(attempt) // engMu held: ex.rng is safe here
			continue
		}
		// heal fails every writer's pending list (not durable).
		ex.heal(err)
		return
	}
}

// withEngMu runs fn at the partition's serialization point. Two OCC writers
// can race into heal for the same fault; the loser re-heals an already
// healthy partition — a redundant power cycle, never a correctness issue.
func (ex *executor) withEngMu(fn func()) {
	ex.engMu.Lock()
	fn()
	ex.engMu.Unlock()
}

// occCapable reports whether the engine serves snapshots and conflict
// queries — what the optimistic path needs.
func occCapable(eng core.Engine) bool {
	_, okSR := eng.(core.SnapshotReader)
	_, okVP := eng.(core.OccValidatorProvider)
	return okSR && okVP
}

// recordWriterAck feeds the per-(partition, writer) submit→ack histogram
// (registered only in OCC mode).
func (rt *Runtime) recordWriterAck(part, w int, d time.Duration) {
	if rt.writerHist != nil {
		rt.writerHist[part][w].Record(d)
	}
}
