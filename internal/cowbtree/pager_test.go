package cowbtree

import (
	"testing"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
	"nstore/internal/pmfs"
)

// Pager-level tests: the double-buffered, checksummed master record is the
// crash-atomicity core of both CoW engines.

func TestFilePagerMetaPingPong(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(32 << 20))
	fs := pmfs.Format(dev, 0, 32<<20, pmfs.Config{ExtentSize: 256 << 10})
	pg, err := CreateFilePager(fs, "db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		if err := pg.Persist(i*100, i); err != nil {
			t.Fatal(err)
		}
		root, meta := pg.Committed()
		if root != i*100 || meta != i {
			t.Fatalf("commit %d: got (%d,%d)", i, root, meta)
		}
	}
	dev.Crash()
	pg2, err := OpenFilePager(fs, "db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	root, meta := pg2.Committed()
	if root != 1000 || meta != 10 {
		t.Fatalf("reopened master = (%d,%d), want (1000,10)", root, meta)
	}
}

func TestFilePagerTornMetaFallsBack(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(32 << 20))
	fs := pmfs.Format(dev, 0, 32<<20, pmfs.Config{ExtentSize: 256 << 10})
	pg, _ := CreateFilePager(fs, "db", 4096)
	pg.Persist(111, 1)
	pg.Persist(222, 2)
	// Corrupt the slot holding the newest record (seq 3 would go to slot
	// 3%2=1; seq 2's record went to slot 0... the newest valid is seq 3
	// after this persist). Instead: scribble over one slot and verify Open
	// still finds a valid record.
	f, _ := fs.OpenFile("db")
	f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}, 64) // slot 1
	f.Sync()
	dev.Crash()
	pg2, err := OpenFilePager(fs, "db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := pg2.Committed()
	// Slot 1 held seq 3 (seq starts at 1 on create, persist->2, persist->3;
	// 3%2=1). After corruption the valid slot is seq 2 -> root 111.
	if root != 111 && root != 222 {
		t.Fatalf("fell back to invalid root %d", root)
	}
}

func TestFilePagerBothMetasCorruptFails(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(32 << 20))
	fs := pmfs.Format(dev, 0, 32<<20, pmfs.Config{ExtentSize: 256 << 10})
	CreateFilePager(fs, "db", 4096)
	f, _ := fs.OpenFile("db")
	garbage := make([]byte, 128)
	for i := range garbage {
		garbage[i] = 0x5a
	}
	f.WriteAt(garbage, 0)
	f.Sync()
	if _, err := OpenFilePager(fs, "db", 4096); err == nil {
		t.Fatal("accepted a file with no valid master record")
	}
}

func TestArenaPagerMasterSurvivesCrash(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(32 << 20))
	arena := pmalloc.Format(dev, 0, 32<<20)
	pg, err := CreateArenaPager(arena, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	id, err := pg.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	pg.WritePage(id, make([]byte, 4096))
	if err := pg.Persist(id, 77); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	arena2, err := pmalloc.Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	pg2, err := OpenArenaPager(arena2, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	root, meta := pg2.Committed()
	if root != id || meta != 77 {
		t.Fatalf("master = (%d,%d), want (%d,77)", root, meta, id)
	}
}

func TestArenaPagerUnpersistedPagesReclaimed(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(32 << 20))
	arena := pmalloc.Format(dev, 0, 32<<20)
	pg, _ := CreateArenaPager(arena, 0, 4096)
	// Pages written but never persisted stay in the allocated state.
	id, _ := pg.AllocPage()
	pg.WritePage(id, make([]byte, 4096))
	dev.Crash()
	arena2, _ := pmalloc.Open(dev, 0)
	if st := arena2.StateOf(id); st != pmalloc.StateFree {
		t.Fatalf("unpersisted page state = %v after recovery", st)
	}
}

func TestOpenArenaPagerEmptySlot(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(32 << 20))
	arena := pmalloc.Format(dev, 0, 32<<20)
	if _, err := OpenArenaPager(arena, 9, 4096); err == nil {
		t.Fatal("opened a pager from an empty root slot")
	}
}
