package cowbtree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
	"nstore/internal/pmfs"
)

func newFilePagerTree(t testing.TB) (*nvm.Device, *pmfs.FS, *Tree) {
	t.Helper()
	dev := nvm.NewDevice(nvm.DefaultConfig(256 << 20))
	fs := pmfs.Format(dev, 0, 256<<20, pmfs.Config{ExtentSize: 1 << 20})
	pg, err := CreateFilePager(fs, "cow.db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(pg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, fs, tr
}

func newArenaPagerTree(t testing.TB) (*nvm.Device, *pmalloc.Arena, *Tree) {
	t.Helper()
	dev := nvm.NewDevice(nvm.DefaultConfig(256 << 20))
	arena := pmalloc.Format(dev, 0, 256<<20)
	pg, err := CreateArenaPager(arena, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(pg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, arena, tr
}

func val(i uint64, n int) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte(i + uint64(j))
	}
	return b
}

func testPutGetDelete(t *testing.T, tr *Tree) {
	if err := tr.Put(7, []byte("seven")); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Get(7); !ok || string(v) != "seven" {
		t.Fatalf("Get(7) = %q,%v", v, ok)
	}
	if err := tr.Put(7, []byte("SEVEN!")); err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Get(7); string(v) != "SEVEN!" {
		t.Errorf("after replace: %q", v)
	}
	if ok, err := tr.Delete(7); !ok || err != nil {
		t.Fatalf("Delete = %v,%v", ok, err)
	}
	if _, ok := tr.Get(7); ok {
		t.Error("deleted key still present")
	}
	if ok, _ := tr.Delete(7); ok {
		t.Error("second delete succeeded")
	}
}

func TestPutGetDeleteFile(t *testing.T)  { _, _, tr := newFilePagerTree(t); testPutGetDelete(t, tr) }
func TestPutGetDeleteArena(t *testing.T) { _, _, tr := newArenaPagerTree(t); testPutGetDelete(t, tr) }

func testManyKeys(t *testing.T, tr *Tree) {
	rng := rand.New(rand.NewSource(3))
	keys := rng.Perm(10000)
	for _, k := range keys {
		if err := tr.Put(uint64(k)+1, val(uint64(k), 40+k%100)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		v, ok := tr.Get(uint64(k) + 1)
		if !ok || !bytes.Equal(v, val(uint64(k), 40+k%100)) {
			t.Fatalf("Get(%d) wrong (ok=%v)", k+1, ok)
		}
	}
	if tr.Count() != 10000 {
		t.Errorf("Count = %d", tr.Count())
	}
	if tr.Depth() < 2 {
		t.Errorf("tree never split (depth %d)", tr.Depth())
	}
}

func TestManyKeysFile(t *testing.T)  { _, _, tr := newFilePagerTree(t); testManyKeys(t, tr) }
func TestManyKeysArena(t *testing.T) { _, _, tr := newArenaPagerTree(t); testManyKeys(t, tr) }

func TestIterOrdered(t *testing.T) {
	_, _, tr := newFilePagerTree(t)
	for i := 0; i < 5000; i++ {
		k := uint64(i*37%5000) + 1
		tr.Put(k, val(k, 64))
	}
	var got []uint64
	tr.Iter(0, func(k uint64, v []byte) bool { got = append(got, k); return true })
	if len(got) != 5000 {
		t.Fatalf("iterated %d", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("iteration out of order")
	}
	var ranged int
	tr.Iter(1000, func(k uint64, v []byte) bool {
		if k >= 1100 {
			return false
		}
		ranged++
		return true
	})
	if ranged != 100 {
		t.Errorf("range scan found %d, want 100", ranged)
	}
}

func TestLargeValueRejected(t *testing.T) {
	_, _, tr := newFilePagerTree(t)
	if err := tr.Put(1, make([]byte, 5000)); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("got %v, want ErrValueTooLarge", err)
	}
}

func TestAbortRollsBack(t *testing.T) {
	_, _, tr := newFilePagerTree(t)
	tr.Put(1, []byte("committed"))
	if err := tr.Persist(); err != nil {
		t.Fatal(err)
	}
	tr.Begin()
	tr.Put(1, []byte("doomed"))
	tr.Put(2, []byte("also doomed"))
	tr.Abort()
	if v, _ := tr.Get(1); string(v) != "committed" {
		t.Errorf("after abort: %q", v)
	}
	if _, ok := tr.Get(2); ok {
		t.Error("aborted insert visible")
	}
}

func TestAbortAfterOtherBatchTxns(t *testing.T) {
	_, _, tr := newFilePagerTree(t)
	tr.Begin()
	tr.Put(1, []byte("batch txn 1"))
	tr.Commit()
	tr.Begin()
	tr.Put(2, []byte("doomed"))
	tr.Put(1, []byte("overwrite doomed"))
	tr.Abort()
	// Txn 1's changes survive even though neither is persisted yet.
	if v, ok := tr.Get(1); !ok || string(v) != "batch txn 1" {
		t.Errorf("batch txn 1 lost: %q,%v", v, ok)
	}
	if _, ok := tr.Get(2); ok {
		t.Error("aborted insert visible")
	}
}

func TestCrashBeforePersistLosesBatch(t *testing.T) {
	dev, fs, tr := newFilePagerTree(t)
	tr.Put(1, []byte("durable"))
	if err := tr.Persist(); err != nil {
		t.Fatal(err)
	}
	tr.Put(2, []byte("volatile"))
	// No Persist: crash loses the batch, master still points at old root.
	dev.Crash()
	pg, err := OpenFilePager(fs, "cow.db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := Attach(pg)
	if v, ok := tr2.Get(1); !ok || string(v) != "durable" {
		t.Fatalf("durable key lost: %q,%v", v, ok)
	}
	if _, ok := tr2.Get(2); ok {
		t.Error("unpersisted key survived crash")
	}
}

func TestCrashAfterPersistKeepsBatch(t *testing.T) {
	dev, arena, tr := newArenaPagerTree(t)
	for i := uint64(1); i <= 2000; i++ {
		tr.Put(i, val(i, 30))
	}
	if err := tr.Persist(); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	arena2, err := pmalloc.Open(arena.Device(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := OpenArenaPager(arena2, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := Attach(pg)
	for i := uint64(1); i <= 2000; i++ {
		if v, ok := tr2.Get(i); !ok || !bytes.Equal(v, val(i, 30)) {
			t.Fatalf("key %d wrong after crash (ok=%v)", i, ok)
		}
	}
}

func TestGetCommittedIgnoresDirty(t *testing.T) {
	_, _, tr := newFilePagerTree(t)
	tr.Put(1, []byte("old"))
	tr.Persist()
	tr.Put(1, []byte("new"))
	if v, _ := tr.Get(1); string(v) != "new" {
		t.Errorf("dirty read = %q", v)
	}
	if v, _ := tr.GetCommitted(1); string(v) != "old" {
		t.Errorf("committed read = %q", v)
	}
	tr.Persist()
	if v, _ := tr.GetCommitted(1); string(v) != "new" {
		t.Errorf("committed read after persist = %q", v)
	}
}

func TestPageReuseAfterPersist(t *testing.T) {
	dev, fs, tr := newFilePagerTree(t)
	_ = dev
	for round := 0; round < 30; round++ {
		for i := uint64(1); i <= 200; i++ {
			tr.Put(i, val(i+uint64(round), 100))
		}
		if err := tr.Persist(); err != nil {
			t.Fatal(err)
		}
	}
	// With page recycling, the file must stay far below the no-reuse bound.
	size, _ := fs.FileSize("cow.db")
	noReuse := int64(30) * 200 * 4096
	if size >= noReuse/4 {
		t.Errorf("file grew to %d bytes; page reuse appears broken", size)
	}
}

func TestReachableSweepAfterCrash(t *testing.T) {
	dev, fs, tr := newFilePagerTree(t)
	for i := uint64(1); i <= 500; i++ {
		tr.Put(i, val(i, 50))
	}
	tr.Persist()
	// Lose a dirty directory.
	for i := uint64(1); i <= 500; i++ {
		tr.Put(i, val(i+7, 50))
	}
	dev.Crash()
	pg, err := OpenFilePager(fs, "cow.db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := Attach(pg)
	used := map[uint64]bool{}
	tr2.Reachable(func(id uint64) { used[id] = true }, nil)
	pg.InitFree(used)
	// All data still correct and the tree still writable.
	for i := uint64(1); i <= 500; i++ {
		if v, ok := tr2.Get(i); !ok || !bytes.Equal(v, val(i, 50)) {
			t.Fatalf("key %d wrong after sweep", i)
		}
	}
	for i := uint64(501); i <= 1000; i++ {
		if err := tr2.Put(i, val(i, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr2.Persist(); err != nil {
		t.Fatal(err)
	}
}

// Property: tree matches a map model under arbitrary put/delete/abort
// sequences with periodic persists.
func TestQuickAgainstModel(t *testing.T) {
	_, _, tr := newArenaPagerTree(t)
	model := make(map[uint64]string)
	steps := 0

	fn := func(k uint64, raw []byte, del, abort bool) bool {
		k = k%3000 + 1
		if len(raw) > 500 {
			raw = raw[:500]
		}
		tr.Begin()
		if del {
			if _, ok := model[k]; ok {
				if err := tr.del(k); err != nil {
					return false
				}
			}
		} else {
			if err := tr.put(k, raw); err != nil {
				return false
			}
		}
		if abort {
			tr.Abort()
		} else {
			tr.Commit()
			if del {
				delete(model, k)
			} else {
				model[k] = string(raw)
			}
		}
		steps++
		if steps%200 == 0 {
			if err := tr.Persist(); err != nil {
				return false
			}
		}
		got, ok := tr.Get(k)
		want, inModel := model[k]
		return ok == inModel && (!ok || string(got) == want)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != len(model) {
		t.Fatalf("Count = %d, model = %d", tr.Count(), len(model))
	}
}

// Property: after a crash at any injected fence, Attach always yields the
// last persisted state exactly.
func TestQuickCrashInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 40; iter++ {
		dev := nvm.NewDevice(nvm.DefaultConfig(64 << 20))
		fs := pmfs.Format(dev, 0, 64<<20, pmfs.Config{ExtentSize: 256 << 10})
		pg, err := CreateFilePager(fs, "cow.db", 4096)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Create(pg)
		if err != nil {
			t.Fatal(err)
		}
		persisted := make(map[uint64]string)
		working := make(map[uint64]string)

		dev.FailAfterFences(rng.Intn(200))
		func() {
			defer func() {
				if r := recover(); r != nil && r != nvm.ErrInjectedCrash {
					panic(r)
				}
			}()
			for i := 0; i < 300; i++ {
				k := uint64(rng.Intn(200)) + 1
				v := fmt.Sprintf("v%d-%d", k, i)
				if err := tr.Put(k, []byte(v)); err != nil {
					t.Error(err)
					return
				}
				working[k] = v
				if i%25 == 24 {
					if err := tr.Persist(); err != nil {
						t.Error(err)
						return
					}
					persisted = make(map[uint64]string, len(working))
					for kk, vv := range working {
						persisted[kk] = vv
					}
				}
			}
		}()
		dev.Crash()
		pg2, err := OpenFilePager(fs, "cow.db", 4096)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		tr2 := Attach(pg2)
		for k := uint64(1); k <= 200; k++ {
			got, ok := tr2.Get(k)
			want, inModel := persisted[k]
			// The crash may have hit inside a Persist; then either the old
			// or the new master is valid. Accept the working state too in
			// that single ambiguous window by checking against both.
			if ok != inModel || (ok && string(got) != want) {
				w2, in2 := working[k]
				if ok == in2 && (!ok || string(got) == w2) {
					continue
				}
				t.Fatalf("iter %d: key %d = (%q,%v); persisted (%q,%v)",
					iter, k, got, ok, want, inModel)
			}
		}
	}
}

func BenchmarkCowPut(b *testing.B) {
	dev := nvm.NewDevice(nvm.DefaultConfig(1 << 30))
	fs := pmfs.Format(dev, 0, 1<<30, pmfs.Config{ExtentSize: 4 << 20})
	pg, _ := CreateFilePager(fs, "cow.db", 4096)
	tr, _ := Create(pg)
	v := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(uint64(i%100000)+1, v)
		if i%64 == 63 {
			tr.Persist()
		}
	}
}
