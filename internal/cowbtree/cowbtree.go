// Package cowbtree is a copy-on-write (shadow-paged) B+tree in the style of
// LMDB's append-only B+tree, used by the CoW engine for its current/dirty
// directories (§3.2) and, over the allocator interface, by the NVM-CoW
// engine (§4.2).
//
// The tree never overwrites committed pages. A modification copies the path
// from the affected leaf up to the root ("dirty directory"); Persist makes
// the batch durable and atomically swings the master record to the new root
// ("current directory"). Because committed data is never overwritten, the
// tree needs no recovery process: after a crash the master record points to
// a consistent tree, and pages of the lost dirty directory are reclaimed by
// a reachability sweep.
//
// Keys are unique uint64s; values are byte slices that must fit in a page.
// Transaction boundaries (Begin/Commit/Abort) give per-transaction rollback
// inside a group-commit batch. Not safe for concurrent use.
package cowbtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Pager supplies fixed-size pages and the durable master record.
type Pager interface {
	// PageSize returns the page size in bytes.
	PageSize() int
	// ReadPage fills buf with page id's contents.
	ReadPage(id uint64, buf []byte)
	// WritePage stores buf as page id's contents (volatile until Persist).
	WritePage(id uint64, buf []byte)
	// AllocPage returns a fresh page id.
	AllocPage() (uint64, error)
	// FreePage returns a page to the free pool immediately.
	FreePage(id uint64)
	// Persist durably commits all pages written since the last Persist and
	// atomically installs (root, meta) as the master record.
	Persist(root, meta uint64) error
	// Committed returns the durable master record.
	Committed() (root, meta uint64)
}

// ErrValueTooLarge is returned when a value cannot fit in a page.
var ErrValueTooLarge = errors.New("cowbtree: value too large for page size")

// Page layout:
//
//	+0  flags (1 = leaf)
//	+2  count (u16)
//	+4  dataEnd (u32, leaves: low end of the value heap)
//	+8  entries
//
// Leaf entry (slot directory): key u64, valOff u16, valLen u16 (12 B); value
// bytes grow down from the end of the page. Inner entry: key u64, child u64
// (16 B), sorted; child i covers [key_i, key_{i+1}).
const (
	pFlags   = 0
	pCount   = 2
	pDataEnd = 4
	pHdr     = 8

	leafSlot = 12
	innerEnt = 16
)

// Tree is a copy-on-write B+tree.
type Tree struct {
	pg       Pager
	psize    int
	root     uint64 // current (possibly uncommitted) root
	meta     uint64 // user meta committed alongside the root
	commRoot uint64

	// mut holds buffers of pages allocated in the running transaction;
	// these are mutable in place (they are invisible until commit).
	mut map[uint64][]byte

	inTxn     bool
	rootAtTxn uint64
	metaAtTxn uint64
	txnAlloc  []uint64 // pages allocated by the running txn
	txnFree   []uint64 // committed pages superseded by the running txn

	batchAlloc []uint64 // allocated by committed-but-unpersisted txns
	batchFree  []uint64 // superseded, reusable after next Persist
}

// Create initializes an empty tree on the pager and persists it.
func Create(pg Pager) (*Tree, error) {
	t := &Tree{pg: pg, psize: pg.PageSize(), mut: make(map[uint64][]byte)}
	id, err := pg.AllocPage()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, t.psize)
	initPage(buf, true, t.psize)
	pg.WritePage(id, buf)
	t.root, t.commRoot = id, id
	if err := pg.Persist(id, 0); err != nil {
		return nil, err
	}
	return t, nil
}

// Attach opens the tree at the pager's committed master record.
func Attach(pg Pager) *Tree {
	root, meta := pg.Committed()
	return &Tree{pg: pg, psize: pg.PageSize(), mut: make(map[uint64][]byte),
		root: root, commRoot: root, meta: meta}
}

// Root returns the current (possibly uncommitted) root page id.
func (t *Tree) Root() uint64 { return t.root }

// Meta returns the current user meta word.
func (t *Tree) Meta() uint64 { return t.meta }

// SetMeta sets the user meta word committed by the next Persist.
func (t *Tree) SetMeta(m uint64) { t.meta = m }

func initPage(buf []byte, leaf bool, psize int) {
	for i := range buf {
		buf[i] = 0
	}
	if leaf {
		buf[pFlags] = 1
	}
	binary.LittleEndian.PutUint32(buf[pDataEnd:], uint32(psize))
}

func isLeaf(buf []byte) bool { return buf[pFlags] == 1 }
func count(buf []byte) int   { return int(binary.LittleEndian.Uint16(buf[pCount:])) }
func setCount(buf []byte, c int) {
	binary.LittleEndian.PutUint16(buf[pCount:], uint16(c))
}
func dataEnd(buf []byte) int { return int(binary.LittleEndian.Uint32(buf[pDataEnd:])) }
func setDataEnd(buf []byte, v int) {
	binary.LittleEndian.PutUint32(buf[pDataEnd:], uint32(v))
}

func leafKey(buf []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(buf[pHdr+i*leafSlot:])
}
func leafVal(buf []byte, i int) []byte {
	off := int(binary.LittleEndian.Uint16(buf[pHdr+i*leafSlot+8:]))
	ln := int(binary.LittleEndian.Uint16(buf[pHdr+i*leafSlot+10:]))
	return buf[off : off+ln]
}
func innerKey(buf []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(buf[pHdr+i*innerEnt:])
}
func innerChild(buf []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(buf[pHdr+i*innerEnt+8:])
}
func setInner(buf []byte, i int, k, c uint64) {
	binary.LittleEndian.PutUint64(buf[pHdr+i*innerEnt:], k)
	binary.LittleEndian.PutUint64(buf[pHdr+i*innerEnt+8:], c)
}

// leafFree returns the free bytes between slot directory and value heap.
func leafFree(buf []byte) int {
	return dataEnd(buf) - (pHdr + count(buf)*leafSlot)
}

// leafLowerBound returns the first slot with key >= k.
func leafLowerBound(buf []byte, k uint64) int {
	lo, hi := 0, count(buf)
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(buf, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// innerRoute returns the index of the child covering key k.
func innerRoute(buf []byte, k uint64) int {
	lo, hi := 0, count(buf)
	for lo < hi {
		mid := (lo + hi) / 2
		if innerKey(buf, mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// page returns a read-only view of page id: the mutable buffer if the page
// belongs to the running txn, otherwise a copy read from the pager.
func (t *Tree) page(id uint64) []byte {
	if buf, ok := t.mut[id]; ok {
		return buf
	}
	buf := make([]byte, t.psize)
	t.pg.ReadPage(id, buf)
	return buf
}

// Begin starts a transaction. Transactions nest the group-commit batch:
// Commit makes the txn's changes part of the batch; Persist makes the batch
// durable.
func (t *Tree) Begin() {
	if t.inTxn {
		panic("cowbtree: nested transaction")
	}
	t.inTxn = true
	t.rootAtTxn = t.root
	t.metaAtTxn = t.meta
	t.txnAlloc = t.txnAlloc[:0]
	t.txnFree = t.txnFree[:0]
}

// Commit ends the transaction, keeping its changes in the dirty directory.
func (t *Tree) Commit() {
	if !t.inTxn {
		panic("cowbtree: Commit outside transaction")
	}
	// The txn's pages become batch pages: still volatile, no longer
	// mutable in place (a later txn must re-copy them so it can roll back).
	for id, buf := range t.mut {
		t.pg.WritePage(id, buf)
		delete(t.mut, id)
	}
	t.batchAlloc = append(t.batchAlloc, t.txnAlloc...)
	t.batchFree = append(t.batchFree, t.txnFree...)
	t.inTxn = false
}

// Abort rolls the transaction back, releasing its pages.
func (t *Tree) Abort() {
	if !t.inTxn {
		panic("cowbtree: Abort outside transaction")
	}
	t.root = t.rootAtTxn
	t.meta = t.metaAtTxn
	for _, id := range t.txnAlloc {
		delete(t.mut, id)
		t.pg.FreePage(id)
	}
	t.txnAlloc = t.txnAlloc[:0]
	t.txnFree = t.txnFree[:0]
	t.inTxn = false
}

// Persist durably commits the batch: the pager flushes every page written
// since the last Persist and installs the new master record. Pages
// superseded by the batch return to the free pool only afterwards, so the
// previously committed tree stays intact until the swap is durable.
func (t *Tree) Persist() error {
	if t.inTxn {
		panic("cowbtree: Persist inside transaction")
	}
	if err := t.pg.Persist(t.root, t.meta); err != nil {
		return err
	}
	t.commRoot = t.root
	for _, id := range t.batchFree {
		t.pg.FreePage(id)
	}
	t.batchFree = t.batchFree[:0]
	t.batchAlloc = t.batchAlloc[:0]
	return nil
}

// autoTxn wraps a single operation in a transaction if none is running.
func (t *Tree) autoTxn(fn func() error) error {
	if t.inTxn {
		return fn()
	}
	t.Begin()
	if err := fn(); err != nil {
		t.Abort()
		return err
	}
	t.Commit()
	return nil
}

// Get returns the value for key k from the current directory.
func (t *Tree) Get(k uint64) ([]byte, bool) {
	buf := t.page(t.root)
	for !isLeaf(buf) {
		buf = t.page(innerChild(buf, innerRoute(buf, k)))
	}
	i := leafLowerBound(buf, k)
	if i < count(buf) && leafKey(buf, i) == k {
		v := leafVal(buf, i)
		out := make([]byte, len(v))
		copy(out, v)
		return out, true
	}
	return nil, false
}

// GetCommitted reads key k from the last persisted directory (the paper's
// "current directory"), ignoring the running batch.
func (t *Tree) GetCommitted(k uint64) ([]byte, bool) {
	saved := t.root
	t.root = t.commRoot
	defer func() { t.root = saved }()
	return t.Get(k)
}

// Put inserts or replaces k = val.
func (t *Tree) Put(k uint64, val []byte) error {
	if len(val) > t.maxValue() {
		return fmt.Errorf("%w: key %#x val %d bytes (max %d)", ErrValueTooLarge, k, len(val), t.maxValue())
	}
	return t.autoTxn(func() error { return t.put(k, val) })
}

// maxValue is the largest value that fits in a fresh leaf beside its slot.
func (t *Tree) maxValue() int { return t.psize - pHdr - 2*leafSlot }

// Delete removes key k, reporting whether it was present.
func (t *Tree) Delete(k uint64) (bool, error) {
	if _, ok := t.Get(k); !ok {
		return false, nil
	}
	err := t.autoTxn(func() error { return t.del(k) })
	return err == nil, err
}

// shadow returns a mutable buffer for page id, copying it into the running
// txn if needed, and returns the (possibly new) id.
func (t *Tree) shadow(id uint64) (uint64, []byte, error) {
	if buf, ok := t.mut[id]; ok {
		return id, buf, nil
	}
	nid, err := t.pg.AllocPage()
	if err != nil {
		return 0, nil, err
	}
	buf := make([]byte, t.psize)
	t.pg.ReadPage(id, buf)
	t.mut[nid] = buf
	t.txnAlloc = append(t.txnAlloc, nid)
	t.txnFree = append(t.txnFree, id)
	return nid, buf, nil
}

// newPage allocates a fresh txn-mutable page.
func (t *Tree) newPage(leaf bool) (uint64, []byte, error) {
	id, err := t.pg.AllocPage()
	if err != nil {
		return 0, nil, err
	}
	buf := make([]byte, t.psize)
	initPage(buf, leaf, t.psize)
	t.mut[id] = buf
	t.txnAlloc = append(t.txnAlloc, id)
	return id, buf, nil
}

type pathEnt struct {
	id  uint64
	buf []byte
	idx int // child index taken
}

// innerFull reports whether an inner node cannot absorb a few more
// separators (leaf splits may cascade, adding up to three).
func (t *Tree) innerFull(buf []byte) bool {
	return count(buf) >= (t.psize-pHdr)/innerEnt-3
}

// splitInnerChild splits the full inner node child (at parent slot idx) and
// returns the two halves. parent must have room for the new separator.
func (t *Tree) splitInnerChild(parent []byte, idx int, child pathEnt) (left, right pathEnt, sep uint64, err error) {
	buf := child.buf
	c := count(buf)
	mid := c / 2
	rid, rbuf, err := t.newPage(false)
	if err != nil {
		return pathEnt{}, pathEnt{}, 0, err
	}
	for i := mid; i < c; i++ {
		setInner(rbuf, i-mid, innerKey(buf, i), innerChild(buf, i))
	}
	setCount(rbuf, c-mid)
	sep = innerKey(buf, mid)
	setCount(buf, mid)
	// Link the new half into the parent.
	pc := count(parent)
	i := idx + 1
	copy(parent[pHdr+(i+1)*innerEnt:pHdr+(pc+1)*innerEnt], parent[pHdr+i*innerEnt:pHdr+pc*innerEnt])
	setInner(parent, i, sep, rid)
	setCount(parent, pc+1)
	return child, pathEnt{id: rid, buf: rbuf}, sep, nil
}

// descend shadows the path from the root to the leaf covering k,
// preemptively splitting any full inner node on the way so a leaf split's
// separator always fits in its parent. The shadowed path is fully linked.
func (t *Tree) descend(k uint64) ([]pathEnt, error) {
	id, buf, err := t.shadow(t.root)
	if err != nil {
		return nil, err
	}
	t.root = id

	// A full inner root gets a fresh root above it.
	if !isLeaf(buf) && t.innerFull(buf) {
		nid, nbuf, err := t.newPage(false)
		if err != nil {
			return nil, err
		}
		setInner(nbuf, 0, innerKey(buf, 0), id)
		setCount(nbuf, 1)
		if _, _, _, err := t.splitInnerChild(nbuf, 0, pathEnt{id: id, buf: buf}); err != nil {
			return nil, err
		}
		t.root = nid
		id, buf = nid, nbuf
	}

	path := []pathEnt{{id: id, buf: buf}}
	for !isLeaf(buf) {
		idx := innerRoute(buf, k)
		child := innerChild(buf, idx)
		cid, cbuf, err := t.shadow(child)
		if err != nil {
			return nil, err
		}
		if cid != child {
			setInner(buf, idx, innerKey(buf, idx), cid)
		}
		if !isLeaf(cbuf) && t.innerFull(cbuf) {
			_, right, sep, err := t.splitInnerChild(buf, idx, pathEnt{id: cid, buf: cbuf})
			if err != nil {
				return nil, err
			}
			if k >= sep {
				idx++
				cid, cbuf = right.id, right.buf
			}
		}
		path[len(path)-1].idx = idx
		path = append(path, pathEnt{id: cid, buf: cbuf})
		id, buf = cid, cbuf
	}
	return path, nil
}

func (t *Tree) put(k uint64, val []byte) error {
	path, err := t.descend(k)
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	return t.leafInsert(leaf, path, k, val)
}

// leafInsert places (k, val) into the shadowed leaf, compacting or
// splitting as needed.
func (t *Tree) leafInsert(leaf pathEnt, path []pathEnt, k uint64, val []byte) error {
	buf := leaf.buf
	i := leafLowerBound(buf, k)
	replacing := i < count(buf) && leafKey(buf, i) == k
	need := leafSlot + len(val)
	if replacing {
		need = len(val) // slot already exists; old value becomes garbage
	}
	if leafFree(buf) < need {
		t.compactLeaf(buf)
		i = leafLowerBound(buf, k)
	}
	if leafFree(buf) < need {
		return t.splitLeafInsert(leaf, path, k, val)
	}
	t.leafPlace(buf, i, replacing, k, val)
	return nil
}

// leafPlace writes (k, val) at slot i (shifting if inserting).
func (t *Tree) leafPlace(buf []byte, i int, replacing bool, k uint64, val []byte) {
	c := count(buf)
	if !replacing {
		copy(buf[pHdr+(i+1)*leafSlot:pHdr+(c+1)*leafSlot], buf[pHdr+i*leafSlot:pHdr+c*leafSlot])
		setCount(buf, c+1)
	}
	end := dataEnd(buf) - len(val)
	copy(buf[end:], val)
	setDataEnd(buf, end)
	binary.LittleEndian.PutUint64(buf[pHdr+i*leafSlot:], k)
	binary.LittleEndian.PutUint16(buf[pHdr+i*leafSlot+8:], uint16(end))
	binary.LittleEndian.PutUint16(buf[pHdr+i*leafSlot+10:], uint16(len(val)))
}

// compactLeaf rewrites the value heap, dropping garbage from replaced and
// deleted values.
func (t *Tree) compactLeaf(buf []byte) {
	c := count(buf)
	type kv struct {
		k uint64
		v []byte
	}
	items := make([]kv, c)
	for i := 0; i < c; i++ {
		v := leafVal(buf, i)
		cp := make([]byte, len(v))
		copy(cp, v)
		items[i] = kv{leafKey(buf, i), cp}
	}
	initPage(buf, true, t.psize)
	for i, it := range items {
		setCount(buf, i)
		t.leafPlace(buf, i, false, it.k, it.v)
	}
	setCount(buf, c)
}

// splitLeafInsert splits a full leaf at a byte-balanced point and retries
// the insert, re-splitting the target half if variable-length values left
// it too full. The parent has room for the separators thanks to preemptive
// inner splits.
func (t *Tree) splitLeafInsert(leaf pathEnt, path []pathEnt, k uint64, val []byte) error {
	buf := leaf.buf
	c := count(buf)
	if c < 2 {
		return fmt.Errorf("%w: split of %d-entry leaf, key %#x val %d", ErrValueTooLarge, c, k, len(val))
	}
	// Byte-balanced split point: first index where the prefix reaches half
	// of the payload bytes, clamped to [1, c-1].
	total := 0
	for i := 0; i < c; i++ {
		total += leafSlot + len(leafVal(buf, i))
	}
	mid, acc := 1, leafSlot+len(leafVal(buf, 0))
	for mid < c-1 && acc < total/2 {
		acc += leafSlot + len(leafVal(buf, mid))
		mid++
	}

	rid, rbuf, err := t.newPage(true)
	if err != nil {
		return err
	}
	for i := mid; i < c; i++ {
		t.leafPlace(rbuf, i-mid, false, leafKey(buf, i), leafVal(buf, i))
	}
	sep := leafKey(buf, mid)
	setCount(buf, mid)
	t.compactLeaf(buf)

	var rightPath []pathEnt
	if len(path) == 1 {
		// Leaf was the root: build a fresh root above the halves.
		nid, nbuf, err := t.newPage(false)
		if err != nil {
			return err
		}
		var minKey uint64
		if count(buf) > 0 {
			minKey = leafKey(buf, 0)
		}
		setInner(nbuf, 0, minKey, leaf.id)
		setInner(nbuf, 1, sep, rid)
		setCount(nbuf, 2)
		t.root = nid
		rightPath = []pathEnt{{id: nid, buf: nbuf, idx: 1}, {id: rid, buf: rbuf}}
		path = []pathEnt{{id: nid, buf: nbuf, idx: 0}, leaf}
	} else {
		parent := path[len(path)-2]
		pbuf := parent.buf
		pc := count(pbuf)
		i := parent.idx + 1
		copy(pbuf[pHdr+(i+1)*innerEnt:pHdr+(pc+1)*innerEnt], pbuf[pHdr+i*innerEnt:pHdr+pc*innerEnt])
		setInner(pbuf, i, sep, rid)
		setCount(pbuf, pc+1)
		rightPath = append(append([]pathEnt{}, path[:len(path)-1]...), pathEnt{id: rid, buf: rbuf})
		rightPath[len(rightPath)-2].idx = i
	}

	// Retry into the correct half, re-splitting it if necessary.
	if k >= sep {
		return t.leafInsert(pathEnt{id: rid, buf: rbuf}, rightPath, k, val)
	}
	return t.leafInsert(leaf, path, k, val)
}

func (t *Tree) del(k uint64) error {
	path, err := t.descend(k)
	if err != nil {
		return err
	}
	buf := path[len(path)-1].buf
	i := leafLowerBound(buf, k)
	if i >= count(buf) || leafKey(buf, i) != k {
		return fmt.Errorf("cowbtree: delete of vanished key %d", k)
	}
	c := count(buf)
	copy(buf[pHdr+i*leafSlot:pHdr+(c-1)*leafSlot], buf[pHdr+(i+1)*leafSlot:pHdr+c*leafSlot])
	setCount(buf, c-1)
	// Lazy: no merging; empty leaves are tolerated and skipped by Iter.
	return nil
}

// Iter calls fn for each (key, value) with key >= from in ascending order
// until fn returns false.
func (t *Tree) Iter(from uint64, fn func(k uint64, v []byte) bool) {
	type frame struct {
		buf []byte
		idx int
	}
	var stack []frame
	buf := t.page(t.root)
	for !isLeaf(buf) {
		idx := innerRoute(buf, from)
		stack = append(stack, frame{buf, idx})
		buf = t.page(innerChild(buf, idx))
	}
	i := leafLowerBound(buf, from)
	for {
		c := count(buf)
		for ; i < c; i++ {
			if !fn(leafKey(buf, i), leafVal(buf, i)) {
				return
			}
		}
		// Advance to the next leaf via the stack.
		for {
			if len(stack) == 0 {
				return
			}
			top := &stack[len(stack)-1]
			top.idx++
			if top.idx < count(top.buf) {
				break
			}
			stack = stack[:len(stack)-1]
		}
		buf = t.page(innerChild(stack[len(stack)-1].buf, stack[len(stack)-1].idx))
		for !isLeaf(buf) {
			stack = append(stack, frame{buf, 0})
			buf = t.page(innerChild(buf, 0))
		}
		i = 0
	}
}

// Reachable walks the committed tree and reports every reachable page id
// (and leaf values via onVal, if non-nil). Used by recovery sweeps to
// asynchronously reclaim the dirty directory lost in a crash.
func (t *Tree) Reachable(onPage func(id uint64), onVal func(v []byte)) {
	var walk func(id uint64)
	walk = func(id uint64) {
		onPage(id)
		buf := t.page(id)
		if isLeaf(buf) {
			if onVal != nil {
				for i := 0; i < count(buf); i++ {
					onVal(leafVal(buf, i))
				}
			}
			return
		}
		for i := 0; i < count(buf); i++ {
			walk(innerChild(buf, i))
		}
	}
	walk(t.commRoot)
}

// ReachableParallel is Reachable with the page decode fanned out over up to
// `workers` goroutines. The walk proceeds level by level: the calling
// goroutine reads each frontier page into a host buffer (pager reads are
// device accesses, and the nvm.Device data path is single-owner), then
// workers parse the host images concurrently to extract child ids and leaf
// values. Both callbacks run on the calling goroutine, in a deterministic
// order (parent order within a level), so callers need no locking.
func (t *Tree) ReachableParallel(workers int, onPage func(id uint64), onVal func(v []byte)) {
	if workers <= 1 {
		t.Reachable(onPage, onVal)
		return
	}
	type parsed struct {
		children []uint64
		vals     [][]byte
	}
	frontier := []uint64{t.commRoot}
	for len(frontier) > 0 {
		// Owner: report and read this level's pages.
		bufs := make([][]byte, len(frontier))
		for i, id := range frontier {
			onPage(id)
			bufs[i] = t.page(id)
		}
		// Workers: decode the host images.
		outs := make([]parsed, len(bufs))
		w := workers
		if w > len(bufs) {
			w = len(bufs)
		}
		var wg sync.WaitGroup
		for s := 0; s < w; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := s; i < len(bufs); i += w {
					buf := bufs[i]
					if isLeaf(buf) {
						if onVal != nil {
							for j := 0; j < count(buf); j++ {
								outs[i].vals = append(outs[i].vals, leafVal(buf, j))
							}
						}
						continue
					}
					for j := 0; j < count(buf); j++ {
						outs[i].children = append(outs[i].children, innerChild(buf, j))
					}
				}
			}(s)
		}
		wg.Wait()
		// Owner: deliver values and advance the frontier in parent order.
		var next []uint64
		for _, o := range outs {
			if onVal != nil {
				for _, v := range o.vals {
					onVal(v)
				}
			}
			next = append(next, o.children...)
		}
		frontier = next
	}
}

// Count returns the number of keys (test helper).
func (t *Tree) Count() int {
	n := 0
	t.Iter(0, func(uint64, []byte) bool { n++; return true })
	return n
}

// Depth returns the tree height (test/diagnostic helper).
func (t *Tree) Depth() int {
	d := 1
	buf := t.page(t.root)
	for !isLeaf(buf) {
		d++
		buf = t.page(innerChild(buf, 0))
	}
	return d
}
