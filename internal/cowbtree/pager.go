package cowbtree

import (
	"fmt"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
	"nstore/internal/pmfs"
)

// metaMagic seeds the master-record checksum so torn writes are detected.
const metaMagic = 0x434f574d45544131 // "COWMETA1"

// metaSum mixes the master-record fields through an avalanching hash
// (splitmix64 finalizer per field). A plain XOR is not enough under
// 8-byte-granularity torn writes: a slot where e.g. seq changed 10→12 and
// root changed 3→5 XOR-cancels and a half-written slot would validate.
func metaSum(seq, root, npages, user uint64) uint64 {
	mix := func(h, v uint64) uint64 {
		h += v + 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		return h
	}
	h := uint64(metaMagic)
	h = mix(h, seq)
	h = mix(h, root)
	h = mix(h, npages)
	h = mix(h, user)
	return h
}

// FilePager stores pages in a pmfs file, the way the CoW engine keeps its
// copy-on-write B+tree "on the filesystem" (§3.2). Page 0 holds two
// checksummed master-record slots written alternately; the master record is
// "located at a fixed offset within the file".
type FilePager struct {
	fs    *pmfs.FS
	f     *pmfs.File
	psize int

	seq    uint64
	root   uint64
	meta   uint64
	npages uint64 // file length in pages, including page 0
	free   []uint64

	// ioErr records the first ReadPage/WritePage failure (the Pager
	// interface keeps those void). It is surfaced — and cleared — at the
	// next Persist, which refuses to install a master record over pages
	// that were never written; see Persist.
	ioErr error
}

const metaSlotBytes = 40 // seq, root, npages, userMeta, sum

// CreateFilePager creates the backing file and an empty pager.
func CreateFilePager(fs *pmfs.FS, name string, pageSize int) (*FilePager, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	p := &FilePager{fs: fs, f: f, psize: pageSize, npages: 1}
	zero := make([]byte, pageSize)
	if _, err := f.WriteAt(zero, 0); err != nil {
		return nil, err
	}
	if err := p.writeMeta(); err != nil {
		return nil, err
	}
	return p, nil
}

// OpenFilePager opens an existing pager, picking the newest valid master
// record, and rebuilds nothing: free pages are installed later by the
// owner's reachability sweep (InitFree).
func OpenFilePager(fs *pmfs.FS, name string, pageSize int) (*FilePager, error) {
	f, err := fs.OpenFile(name)
	if err != nil {
		return nil, err
	}
	var hdr [2 * 64]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	p := &FilePager{fs: fs, f: f, psize: pageSize}
	found := false
	for slot := 0; slot < 2; slot++ {
		b := hdr[slot*64:]
		seq := le64(b, 0)
		root := le64(b, 8)
		npages := le64(b, 16)
		user := le64(b, 24)
		sum := le64(b, 32)
		if sum == metaSum(seq, root, npages, user) && npages > 0 && (!found || seq > p.seq) {
			p.seq, p.root, p.npages, p.meta = seq, root, npages, user
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cowbtree: no valid master record in %q", name)
	}
	return p, nil
}

func le64(b []byte, off int) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[off+i])
	}
	return v
}

func putLE64(b []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

// writeMeta writes the alternate master-record slot and fsyncs it.
func (p *FilePager) writeMeta() error {
	p.seq++
	var b [metaSlotBytes]byte
	putLE64(b[:], 0, p.seq)
	putLE64(b[:], 8, p.root)
	putLE64(b[:], 16, p.npages)
	putLE64(b[:], 24, p.meta)
	putLE64(b[:], 32, metaSum(p.seq, p.root, p.npages, p.meta))
	off := int64((p.seq % 2) * 64)
	if _, err := p.f.WriteAt(b[:], off); err != nil {
		return err
	}
	return p.f.Sync()
}

// PageSize returns the page size in bytes.
func (p *FilePager) PageSize() int { return p.psize }

// ReadPage fills buf with page id's contents. A read failure zeroes buf
// (so the caller never parses stale bytes as a node) and is reported at the
// next Persist.
func (p *FilePager) ReadPage(id uint64, buf []byte) {
	if _, err := p.f.ReadAt(buf, int64(id)*int64(p.psize)); err != nil {
		for i := range buf {
			buf[i] = 0
		}
		if p.ioErr == nil {
			p.ioErr = err
		}
	}
}

// WritePage stores buf as page id's contents (durable at the next Persist).
// A write failure (e.g. disk full while growing the file) is reported at
// the next Persist, which will refuse to commit.
func (p *FilePager) WritePage(id uint64, buf []byte) {
	if _, err := p.f.WriteAt(buf, int64(id)*int64(p.psize)); err != nil {
		if p.ioErr == nil {
			p.ioErr = err
		}
	}
}

// AllocPage returns a free page, growing the file if necessary.
func (p *FilePager) AllocPage() (uint64, error) {
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		return id, nil
	}
	id := p.npages
	zero := make([]byte, p.psize)
	if _, err := p.f.WriteAt(zero, int64(id)*int64(p.psize)); err != nil {
		return 0, err
	}
	p.npages++
	return id, nil
}

// FreePage returns a page to the free pool.
func (p *FilePager) FreePage(id uint64) { p.free = append(p.free, id) }

// Persist fsyncs the data pages, then installs the new master record with a
// second fsync: the shadow-paging commit protocol. If any page write or
// read failed since the last Persist, it refuses to commit and returns that
// error instead — the volatile tree diverged from the file and only the
// engine's crash recovery (reopen from the old master record) is safe.
func (p *FilePager) Persist(root, meta uint64) error {
	if err := p.ioErr; err != nil {
		p.ioErr = nil
		return fmt.Errorf("cowbtree: page I/O failed since last persist: %w", err)
	}
	if err := p.f.Sync(); err != nil {
		return err
	}
	p.root, p.meta = root, meta
	return p.writeMeta()
}

// Committed returns the durable master record.
func (p *FilePager) Committed() (root, meta uint64) { return p.root, p.meta }

// InitFree installs the free list from a reachability sweep: every page
// except page 0 and the reachable set is free.
func (p *FilePager) InitFree(used map[uint64]bool) {
	p.free = p.free[:0]
	for id := uint64(1); id < p.npages; id++ {
		if !used[id] {
			p.free = append(p.free, id)
		}
	}
}

// FileBytes returns the durable size of the backing file (Fig. 14).
func (p *FilePager) FileBytes() int64 { return p.f.Size() }

// ArenaPager stores pages as allocator chunks and the master record as a
// pair of checksummed slots updated with the sync primitive — the NVM-CoW
// engine's "non-volatile copy-on-write B+tree using the allocator
// interface" with its efficiently-updatable master record (§4.2).
type ArenaPager struct {
	arena *pmalloc.Arena
	dev   *nvm.Device
	psize int

	master pmalloc.Ptr // chunk holding two 64 B master-record slots
	seq    uint64
	root   uint64
	meta   uint64

	dirty map[uint64]bool // pages written since the last Persist
}

// CreateArenaPager allocates the master block and stores its pointer in the
// given arena root slot (the naming mechanism).
func CreateArenaPager(arena *pmalloc.Arena, rootSlot int, pageSize int) (*ArenaPager, error) {
	m, err := arena.Alloc(128, pmalloc.TagOther)
	if err != nil {
		return nil, err
	}
	p := &ArenaPager{arena: arena, dev: arena.Device(), psize: pageSize,
		master: m, dirty: make(map[uint64]bool)}
	zero := make([]byte, 128)
	p.dev.Write(int64(m), zero)
	p.dev.Sync(int64(m), 128)
	arena.SetPersisted(m)
	if err := p.writeMaster(); err != nil {
		return nil, err
	}
	arena.SetRoot(rootSlot, m)
	return p, nil
}

// OpenArenaPager reopens the pager anchored at the given arena root slot.
func OpenArenaPager(arena *pmalloc.Arena, rootSlot int, pageSize int) (*ArenaPager, error) {
	m := arena.Root(rootSlot)
	if m == 0 {
		return nil, fmt.Errorf("cowbtree: arena root slot %d empty", rootSlot)
	}
	p := &ArenaPager{arena: arena, dev: arena.Device(), psize: pageSize,
		master: m, dirty: make(map[uint64]bool)}
	found := false
	for slot := int64(0); slot < 2; slot++ {
		base := int64(m) + slot*64
		seq := p.dev.ReadU64(base)
		root := p.dev.ReadU64(base + 8)
		user := p.dev.ReadU64(base + 16)
		sum := p.dev.ReadU64(base + 24)
		if sum == metaSum(seq, root, 1, user) && (!found || seq > p.seq) {
			p.seq, p.root, p.meta = seq, root, user
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cowbtree: no valid master record at %d", m)
	}
	return p, nil
}

// writeMaster writes the alternate master slot with the sync primitive. A
// slot fits one cache line, so the update is a single-line atomic durable
// write guarded by a checksum.
func (p *ArenaPager) writeMaster() error {
	p.seq++
	base := int64(p.master) + int64(p.seq%2)*64
	p.dev.WriteU64(base, p.seq)
	p.dev.WriteU64(base+8, p.root)
	p.dev.WriteU64(base+16, p.meta)
	p.dev.WriteU64(base+24, metaSum(p.seq, p.root, 1, p.meta))
	p.dev.Sync(base, 32)
	return nil
}

// PageSize returns the page size in bytes.
func (p *ArenaPager) PageSize() int { return p.psize }

// ReadPage fills buf with page id's contents.
func (p *ArenaPager) ReadPage(id uint64, buf []byte) { p.dev.Read(int64(id), buf) }

// WritePage stores buf into the page chunk; it is synced at Persist.
func (p *ArenaPager) WritePage(id uint64, buf []byte) {
	p.dev.Write(int64(id), buf)
	p.dirty[id] = true
}

// AllocPage allocates a page chunk. It stays in the allocated (reclaimable)
// state until the Persist that makes it reachable.
func (p *ArenaPager) AllocPage() (uint64, error) {
	ptr, err := p.arena.Alloc(p.psize, pmalloc.TagTable)
	if err != nil {
		return 0, err
	}
	return ptr, nil
}

// FreePage releases a page chunk.
func (p *ArenaPager) FreePage(id uint64) {
	delete(p.dirty, id)
	p.arena.Free(pmalloc.Ptr(id))
}

// Persist syncs every dirty page with the allocator interface's sync
// primitive, marks them persisted, and atomically installs the new master
// record — no filesystem, no kernel crossing (§4.2).
func (p *ArenaPager) Persist(root, meta uint64) error {
	for id := range p.dirty {
		p.dev.Sync(int64(id), p.psize)
		if p.arena.StateOf(pmalloc.Ptr(id)) == pmalloc.StateAllocated {
			p.arena.SetPersisted(pmalloc.Ptr(id))
		}
		delete(p.dirty, id)
	}
	p.root, p.meta = root, meta
	return p.writeMaster()
}

// Committed returns the durable master record.
func (p *ArenaPager) Committed() (root, meta uint64) { return p.root, p.meta }
