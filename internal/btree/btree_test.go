package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
)

func newTree(t testing.TB, nodeSize int) *Tree {
	t.Helper()
	dev := nvm.NewDevice(nvm.DefaultConfig(64 << 20))
	return New(pmalloc.Format(dev, 0, 64<<20), nodeSize)
}

func TestPutGet(t *testing.T) {
	tr := newTree(t, 0)
	if !tr.Put(10, 100) {
		t.Error("Put of new key reported replace")
	}
	if v, ok := tr.Get(10); !ok || v != 100 {
		t.Fatalf("Get(10) = %d,%v", v, ok)
	}
	if _, ok := tr.Get(11); ok {
		t.Error("Get of missing key found something")
	}
	if tr.Put(10, 200) {
		t.Error("replacing Put reported insert")
	}
	if v, _ := tr.Get(10); v != 200 {
		t.Errorf("value after replace = %d", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestManyKeysAscending(t *testing.T) {
	tr := newTree(t, 0)
	const n = 10000
	for i := uint64(1); i <= n; i++ {
		tr.Put(i, i*2)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := tr.Get(i); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestManyKeysRandomOrder(t *testing.T) {
	tr := newTree(t, 0)
	rng := rand.New(rand.NewSource(1))
	keys := rng.Perm(20000)
	for _, k := range keys {
		tr.Put(uint64(k)+1, uint64(k)*3)
	}
	for _, k := range keys {
		if v, ok := tr.Get(uint64(k) + 1); !ok || v != uint64(k)*3 {
			t.Fatalf("Get(%d) = %d,%v", k+1, v, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 0)
	for i := uint64(0); i < 1000; i++ {
		tr.Put(i, i)
	}
	for i := uint64(0); i < 1000; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Delete(0) {
		t.Error("second delete succeeded")
	}
	if tr.Len() != 500 {
		t.Errorf("Len = %d, want 500", tr.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestIterRange(t *testing.T) {
	tr := newTree(t, 0)
	for i := uint64(0); i < 100; i++ {
		tr.Put(i*10, i)
	}
	var got []uint64
	tr.Iter(250, func(k, v uint64) bool {
		if k >= 500 {
			return false
		}
		got = append(got, k)
		return true
	})
	want := []uint64{250, 260, 270, 280, 290, 300, 310, 320, 330, 340, 350, 360, 370, 380, 390, 400, 410, 420, 430, 440, 450, 460, 470, 480, 490}
	if len(got) != len(want) {
		t.Fatalf("got %d keys %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestIterAfterDeletes(t *testing.T) {
	tr := newTree(t, 64) // tiny nodes force many leaves
	for i := uint64(0); i < 300; i++ {
		tr.Put(i, i)
	}
	for i := uint64(100); i < 200; i++ {
		tr.Delete(i)
	}
	var got []uint64
	tr.Iter(0, func(k, v uint64) bool { got = append(got, k); return true })
	if len(got) != 200 {
		t.Fatalf("iterated %d keys, want 200", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("iteration out of order")
	}
}

func TestMin(t *testing.T) {
	tr := newTree(t, 0)
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree")
	}
	tr.Put(50, 1)
	tr.Put(20, 2)
	tr.Put(80, 3)
	if k, v, ok := tr.Min(); !ok || k != 20 || v != 2 {
		t.Errorf("Min = %d,%d,%v", k, v, ok)
	}
}

func TestSmallNodeSizes(t *testing.T) {
	for _, ns := range []int{64, 128, 256, 1024, 2048} {
		tr := newTree(t, ns)
		for i := uint64(0); i < 2000; i++ {
			tr.Put(i*7%2000, i)
		}
		for i := uint64(0); i < 2000; i++ {
			if _, ok := tr.Get(i); !ok {
				t.Fatalf("nodeSize %d: key %d missing", ns, i)
			}
		}
	}
}

func TestRelease(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(16 << 20))
	arena := pmalloc.Format(dev, 0, 16<<20)
	tr := New(arena, 256)
	for i := uint64(0); i < 5000; i++ {
		tr.Put(i, i)
	}
	before := arena.Allocated()
	tr.Release()
	if arena.Allocated() >= before {
		t.Errorf("Release freed nothing: %d -> %d", before, arena.Allocated())
	}
}

// Property: the tree behaves like a sorted map under arbitrary put/delete
// sequences.
func TestQuickAgainstMap(t *testing.T) {
	tr := newTree(t, 128)
	model := make(map[uint64]uint64)

	fn := func(k uint64, v uint64, del bool) bool {
		k %= 5000 // force collisions/replacements
		if del {
			_, inModel := model[k]
			if tr.Delete(k) != inModel {
				return false
			}
			delete(model, k)
		} else {
			_, inModel := model[k]
			if tr.Put(k, v) == inModel {
				return false
			}
			model[k] = v
		}
		if tr.Len() != len(model) {
			return false
		}
		got, ok := tr.Get(k)
		want, inModel := model[k]
		return ok == inModel && (!ok || got == want)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
	// Full scan must match the sorted model.
	var keys []uint64
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var got []uint64
	tr.Iter(0, func(k, v uint64) bool { got = append(got, k); return true })
	if len(got) != len(keys) {
		t.Fatalf("scan found %d keys, model has %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], keys[i])
		}
	}
}

func BenchmarkPut(b *testing.B) {
	dev := nvm.NewDevice(nvm.DefaultConfig(1 << 30))
	tr := New(pmalloc.Format(dev, 0, 1<<30), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(uint64(i), uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	dev := nvm.NewDevice(nvm.DefaultConfig(1 << 30))
	tr := New(pmalloc.Format(dev, 0, 1<<30), 0)
	for i := uint64(0); i < 1<<20; i++ {
		tr.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i) % (1 << 20))
	}
}
