// Package btree is a volatile B+tree over the NVM arena, standing in for the
// STX B+tree the InP and Log engines use for their indexes (§3.1). Keys are
// unique uint64s and values are uint64s (tuple pointers or encoded primary
// keys); engines build composite keys for secondary indexes and use range
// scans over them.
//
// "Volatile" means the tree issues no sync primitives: its nodes live in the
// arena (so index traffic is visible to the NVM perf counters, as on the
// paper's NVM-only hierarchy) but the tree is not crash-consistent and must
// be rebuilt during recovery, exactly as the traditional engines do (§3.1:
// "all of the tables' indexes are rebuilt during recovery").
//
// Node layout (nodeSize bytes, default 512 as in §5):
//
//	+0  flags (1 = leaf)
//	+2  count (u16)
//	+8  leaf: next-leaf pointer | inner: leftmost child pointer
//	+16 entries: (key u64, val u64) pairs, sorted by key
//
// Inner entry (k, c): child c covers keys in [k, next separator).
package btree

import (
	"nstore/internal/pmalloc"
)

// DefaultNodeSize matches the paper's STX B+tree configuration (512 B).
const DefaultNodeSize = 512

const (
	hdrFlags = 0
	hdrCount = 2
	hdrLink  = 8
	hdrSize  = 16
	entSize  = 16
)

// Tree is a volatile B+tree. Not safe for concurrent use.
type Tree struct {
	arena    *pmalloc.Arena
	nodeSize int
	cap      int // entries per node
	root     uint64
	size     int // number of keys
}

// New creates an empty tree with the given node size (0 = DefaultNodeSize).
func New(arena *pmalloc.Arena, nodeSize int) *Tree {
	if nodeSize == 0 {
		nodeSize = DefaultNodeSize
	}
	if nodeSize < hdrSize+2*entSize {
		panic("btree: node size too small")
	}
	t := &Tree{arena: arena, nodeSize: nodeSize, cap: (nodeSize - hdrSize) / entSize}
	t.root = t.newNode(true)
	return t
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.size }

// NodeSize returns the configured node size in bytes.
func (t *Tree) NodeSize() int { return t.nodeSize }

func (t *Tree) dev() devIface { return t.arena.Device() }

// devIface is the subset of *nvm.Device the tree uses.
type devIface interface {
	ReadU64(off int64) uint64
	WriteU64(off int64, v uint64)
	ReadU16(off int64) uint16
	WriteU16(off int64, v uint16)
	ReadU8(off int64) uint8
	WriteU8(off int64, v uint8)
}

func (t *Tree) newNode(leaf bool) uint64 {
	p, err := t.arena.Alloc(t.nodeSize, pmalloc.TagIndex)
	if err != nil {
		panic(err) // index arena exhaustion is a config error
	}
	d := t.dev()
	if leaf {
		d.WriteU8(int64(p)+hdrFlags, 1)
	} else {
		d.WriteU8(int64(p)+hdrFlags, 0)
	}
	d.WriteU16(int64(p)+hdrCount, 0)
	d.WriteU64(int64(p)+hdrLink, 0)
	return p
}

func (t *Tree) isLeaf(n uint64) bool { return t.dev().ReadU8(int64(n)+hdrFlags) == 1 }
func (t *Tree) count(n uint64) int   { return int(t.dev().ReadU16(int64(n) + hdrCount)) }
func (t *Tree) setCount(n uint64, c int) {
	t.dev().WriteU16(int64(n)+hdrCount, uint16(c))
}
func (t *Tree) link(n uint64) uint64 { return t.dev().ReadU64(int64(n) + hdrLink) }
func (t *Tree) setLink(n, v uint64)  { t.dev().WriteU64(int64(n)+hdrLink, v) }
func (t *Tree) entOff(n uint64, i int) int64 {
	return int64(n) + hdrSize + int64(i)*entSize
}
func (t *Tree) key(n uint64, i int) uint64 { return t.dev().ReadU64(t.entOff(n, i)) }
func (t *Tree) val(n uint64, i int) uint64 { return t.dev().ReadU64(t.entOff(n, i) + 8) }
func (t *Tree) setEnt(n uint64, i int, k, v uint64) {
	d := t.dev()
	d.WriteU64(t.entOff(n, i), k)
	d.WriteU64(t.entOff(n, i)+8, v)
}

// lowerBound returns the first index i in node n with key(i) >= k.
func (t *Tree) lowerBound(n uint64, k uint64) int {
	lo, hi := 0, t.count(n)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.key(n, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor returns the child of inner node n that covers key k.
func (t *Tree) childFor(n uint64, k uint64) uint64 {
	i := t.lowerBound(n, k)
	if i < t.count(n) && t.key(n, i) == k {
		return t.val(n, i)
	}
	if i == 0 {
		return t.link(n) // leftmost child
	}
	return t.val(n, i-1)
}

// Get returns the value for key k.
func (t *Tree) Get(k uint64) (uint64, bool) {
	n := t.root
	for !t.isLeaf(n) {
		n = t.childFor(n, k)
	}
	i := t.lowerBound(n, k)
	if i < t.count(n) && t.key(n, i) == k {
		return t.val(n, i), true
	}
	return 0, false
}

// Put inserts k=v, replacing any existing value. It reports whether the key
// was newly inserted.
func (t *Tree) Put(k, v uint64) bool {
	var path []uint64
	n := t.root
	for !t.isLeaf(n) {
		path = append(path, n)
		n = t.childFor(n, k)
	}
	i := t.lowerBound(n, k)
	if i < t.count(n) && t.key(n, i) == k {
		t.setEnt(n, i, k, v) // replace
		return false
	}
	t.insertAt(n, i, k, v)
	t.size++
	if t.count(n) >= t.cap {
		t.split(n, path)
	}
	return true
}

// insertAt shifts entries right and writes (k, v) at index i.
func (t *Tree) insertAt(n uint64, i int, k, v uint64) {
	c := t.count(n)
	for j := c; j > i; j-- {
		t.setEnt(n, j, t.key(n, j-1), t.val(n, j-1))
	}
	t.setEnt(n, i, k, v)
	t.setCount(n, c+1)
}

// split divides full node n, promoting a separator into its parent chain.
func (t *Tree) split(n uint64, path []uint64) {
	c := t.count(n)
	mid := c / 2
	right := t.newNode(t.isLeaf(n))
	var sep uint64
	if t.isLeaf(n) {
		sep = t.key(n, mid)
		for j := mid; j < c; j++ {
			t.setEnt(right, j-mid, t.key(n, j), t.val(n, j))
		}
		t.setCount(right, c-mid)
		t.setCount(n, mid)
		t.setLink(right, t.link(n))
		t.setLink(n, right)
	} else {
		// Promote key(mid); its child becomes right's leftmost.
		sep = t.key(n, mid)
		t.setLink(right, t.val(n, mid))
		for j := mid + 1; j < c; j++ {
			t.setEnt(right, j-mid-1, t.key(n, j), t.val(n, j))
		}
		t.setCount(right, c-mid-1)
		t.setCount(n, mid)
	}
	if len(path) == 0 {
		// Root split.
		newRoot := t.newNode(false)
		t.setLink(newRoot, n)
		t.setEnt(newRoot, 0, sep, right)
		t.setCount(newRoot, 1)
		t.root = newRoot
		return
	}
	parent := path[len(path)-1]
	i := t.lowerBound(parent, sep)
	t.insertAt(parent, i, sep, right)
	if t.count(parent) >= t.cap {
		t.split(parent, path[:len(path)-1])
	}
}

// Delete removes key k. It reports whether the key was present.
func (t *Tree) Delete(k uint64) bool {
	n := t.root
	for !t.isLeaf(n) {
		n = t.childFor(n, k)
	}
	i := t.lowerBound(n, k)
	if i >= t.count(n) || t.key(n, i) != k {
		return false
	}
	c := t.count(n)
	for j := i; j < c-1; j++ {
		t.setEnt(n, j, t.key(n, j+1), t.val(n, j+1))
	}
	t.setCount(n, c-1)
	t.size--
	// Lazy deletion: no rebalancing. Underfull/empty leaves are tolerated
	// and skipped by iterators; the tree is rebuilt on recovery anyway.
	return true
}

// Iter iterates entries with key >= from, in ascending key order, calling
// fn for each; iteration stops when fn returns false.
func (t *Tree) Iter(from uint64, fn func(k, v uint64) bool) {
	n := t.root
	for !t.isLeaf(n) {
		n = t.childFor(n, from)
	}
	i := t.lowerBound(n, from)
	for n != 0 {
		c := t.count(n)
		for ; i < c; i++ {
			if !fn(t.key(n, i), t.val(n, i)) {
				return
			}
		}
		n = t.link(n)
		i = 0
	}
}

// Min returns the smallest key, if any.
func (t *Tree) Min() (k, v uint64, ok bool) {
	t.Iter(0, func(ik, iv uint64) bool {
		k, v, ok = ik, iv, true
		return false
	})
	return
}

// Release frees every node of the tree back to the arena. The tree must not
// be used afterwards.
func (t *Tree) Release() {
	t.release(t.root)
	t.root = 0
	t.size = 0
}

func (t *Tree) release(n uint64) {
	if n == 0 {
		return
	}
	if !t.isLeaf(n) {
		t.release(t.link(n))
		for i := 0; i < t.count(n); i++ {
			t.release(t.val(n, i))
		}
	}
	t.arena.Free(pmalloc.Ptr(n))
}
