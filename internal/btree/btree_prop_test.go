package btree

import (
	"flag"
	"fmt"
	"sort"
	"testing"

	"math/rand"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
)

// propSeed replays one failing property sequence: go test -run Property -seed=N
var propSeed = flag.Int64("seed", 1, "base seed for the property-test sequences")

// propOp is one step of a randomized tree workload.
type propOp struct {
	kind byte // 'p' put, 'd' delete, 'g' get, 's' scan
	k, v uint64
}

func (o propOp) String() string {
	switch o.kind {
	case 'p':
		return fmt.Sprintf("Put(%d,%d)", o.k, o.v)
	case 'd':
		return fmt.Sprintf("Delete(%d)", o.k)
	case 'g':
		return fmt.Sprintf("Get(%d)", o.k)
	default:
		return fmt.Sprintf("Scan(from=%d)", o.k)
	}
}

// genProp draws a sequence over a deliberately small key space so replaces,
// delete hits, and re-inserts of deleted keys all occur.
func genProp(rng *rand.Rand, n int) []propOp {
	keyspace := uint64(64 + rng.Intn(1024))
	ops := make([]propOp, n)
	for i := range ops {
		k := rng.Uint64() % keyspace
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // bias toward growth so splits happen
			ops[i] = propOp{kind: 'p', k: k, v: rng.Uint64()}
		case 5, 6:
			ops[i] = propOp{kind: 'd', k: k}
		case 7, 8:
			ops[i] = propOp{kind: 'g', k: k}
		default:
			ops[i] = propOp{kind: 's', k: k}
		}
	}
	return ops
}

// runProp replays ops on a fresh tree against a map model, checking every
// return value and, on scans, order and completeness vs the sorted model.
func runProp(ops []propOp, nodeSize int) error {
	dev := nvm.NewDevice(nvm.DefaultConfig(64 << 20))
	tr := New(pmalloc.Format(dev, 0, 64<<20), nodeSize)
	model := make(map[uint64]uint64)
	for i, o := range ops {
		switch o.kind {
		case 'p':
			_, had := model[o.k]
			if inserted := tr.Put(o.k, o.v); inserted == had {
				return fmt.Errorf("op %d %v: Put returned inserted=%v, model had=%v", i, o, inserted, had)
			}
			model[o.k] = o.v
		case 'd':
			_, had := model[o.k]
			if ok := tr.Delete(o.k); ok != had {
				return fmt.Errorf("op %d %v: Delete returned %v, model had=%v", i, o, ok, had)
			}
			delete(model, o.k)
		case 'g':
			want, had := model[o.k]
			got, ok := tr.Get(o.k)
			if ok != had || (had && got != want) {
				return fmt.Errorf("op %d %v: Get = (%d,%v), model (%d,%v)", i, o, got, ok, want, had)
			}
		case 's':
			if err := checkScan(tr, model, o.k); err != nil {
				return fmt.Errorf("op %d %v: %w", i, o, err)
			}
		}
		if tr.Len() != len(model) {
			return fmt.Errorf("op %d %v: Len=%d, model %d", i, o, tr.Len(), len(model))
		}
	}
	return checkScan(tr, model, 0)
}

// checkScan compares Iter(from) against the sorted model suffix.
func checkScan(tr *Tree, model map[uint64]uint64, from uint64) error {
	var want []uint64
	for k := range model {
		if k >= from {
			want = append(want, k)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	i := 0
	var scanErr error
	tr.Iter(from, func(k, v uint64) bool {
		if i >= len(want) {
			scanErr = fmt.Errorf("scan from %d: extra key %d past model end", from, k)
			return false
		}
		if k != want[i] || v != model[k] {
			scanErr = fmt.Errorf("scan from %d: position %d got (%d,%d), want (%d,%d)", from, i, k, v, want[i], model[want[i]])
			return false
		}
		i++
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if i != len(want) {
		return fmt.Errorf("scan from %d: stopped after %d keys, model has %d", from, i, len(want))
	}
	return nil
}

// shrinkProp greedily removes chunks of the failing sequence while the
// failure reproduces, replaying each candidate on a fresh tree (ddmin-style).
func shrinkProp(ops []propOp, nodeSize int) []propOp {
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo+chunk <= len(ops); {
			cand := append(append([]propOp(nil), ops[:lo]...), ops[lo+chunk:]...)
			if runProp(cand, nodeSize) != nil {
				ops = cand // failure survives without this chunk — keep it out
			} else {
				lo += chunk
			}
		}
	}
	return ops
}

// TestPropertyRandomOps drives seeded randomized insert/delete/get/scan
// sequences against a map model across node sizes small enough to force
// multi-level trees. A failure is shrunk to a minimal op list and reported
// with its replay seed.
func TestPropertyRandomOps(t *testing.T) {
	seqs, opsPer := 60, 400
	if testing.Short() {
		seqs, opsPer = 12, 200
	}
	for _, nodeSize := range []int{128, 256, 1024} {
		nodeSize := nodeSize
		t.Run(fmt.Sprintf("node%d", nodeSize), func(t *testing.T) {
			t.Parallel()
			for s := 0; s < seqs; s++ {
				seed := *propSeed + int64(s)
				rng := rand.New(rand.NewSource(seed))
				ops := genProp(rng, opsPer)
				if err := runProp(ops, nodeSize); err != nil {
					min := shrinkProp(ops, nodeSize)
					t.Fatalf("seed %d (replay: go test -run Property -seed=%d): %v\nminimal sequence (%d ops of %d): %v\nshrunk failure: %v",
						seed, seed, err, len(min), len(ops), min, runProp(min, nodeSize))
				}
			}
		})
	}
}
