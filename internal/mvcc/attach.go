package mvcc

import "nstore/internal/core"

// Snapshots is embedded by each engine to expose the core.SnapshotReader
// contract. The engine owns the store's writer side (Stage*/CommitStaged/
// PublishDurable from its single owner goroutine); the promoted methods
// below are the reader side and are safe from any goroutine once
// InitSnapshots has run.
type Snapshots struct {
	MV *Store
}

// SnapshotView pins a read view at the newest durable timestamp.
func (s *Snapshots) SnapshotView() core.ReadView { return s.MV.NewView() }

// Oracle returns the partition's timestamp oracle.
func (s *Snapshots) Oracle() *core.TsOracle { return s.MV.Oracle() }

// OccValidator exposes the store's conflict oracle for optimistic commit
// validation (core.OccValidatorProvider). Callers must hold the partition's
// serialization point — the same single-owner rule as the writer side.
func (s *Snapshots) OccValidator() core.OccValidator { return s.MV }

// rangeScanner is the slice of the engine contract InitSnapshots needs to
// rebuild the store from recovered state.
type rangeScanner interface {
	ScanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error
}

// InitSnapshots builds the version store and seeds it from the engine's own
// recovered state at the floor timestamp (the engine's recovered TxnID).
// Called at the end of New/Open, before the engine is shared with readers,
// so the scan needs no synchronization and every seeded version carries the
// durable frontier's timestamp — snapshots are never served from
// unrecovered state.
func (s *Snapshots) InitSnapshots(eng rangeScanner, schemas []*core.Schema, floorTs uint64) error {
	s.MV = NewStore(schemas, floorTs)
	for _, sc := range schemas {
		name := sc.Name
		if err := eng.ScanRange(name, 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
			s.MV.Seed(name, pk, row)
			return true
		}); err != nil {
			return err
		}
	}
	return nil
}
