package mvcc

import (
	"sync"
	"testing"

	"nstore/internal/core"
)

func testSchemas() []*core.Schema {
	return []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "v", Type: core.TInt},
		},
		Secondary: []core.IndexSpec{{
			Name:   "by_v",
			SecKey: func(row []core.Value) uint32 { return uint32(row[1].I) },
		}},
	}}
}

func row(id, v int64) []core.Value {
	return []core.Value{core.IntVal(id), core.IntVal(v)}
}

// commit stages and durably publishes one upsert at ts.
func commit(s *Store, ts uint64, key uint64, v int64) {
	s.StageUpsert("t", key, row(int64(key), v))
	s.CommitStaged(ts, true)
}

func TestViewPinsSnapshot(t *testing.T) {
	s := NewStore(testSchemas(), 0)
	commit(s, 1, 10, 100)
	v1 := s.NewView()
	defer v1.Close()
	commit(s, 2, 10, 200)

	got, ok, err := v1.Get("t", 10)
	if err != nil || !ok || got[1].I != 100 {
		t.Fatalf("pinned view: got %v ok=%v err=%v, want v=100", got, ok, err)
	}
	v2 := s.NewView()
	defer v2.Close()
	got, ok, _ = v2.Get("t", 10)
	if !ok || got[1].I != 200 {
		t.Fatalf("fresh view: got %v ok=%v, want v=200", got, ok)
	}
	if v1.Ts() != 1 || v2.Ts() != 2 {
		t.Fatalf("view ts: %d, %d", v1.Ts(), v2.Ts())
	}
}

func TestUnpublishedCommitInvisible(t *testing.T) {
	s := NewStore(testSchemas(), 0)
	s.StageUpsert("t", 1, row(1, 10))
	s.CommitStaged(1, false) // committed but not durable
	v := s.NewView()
	if _, ok, _ := v.Get("t", 1); ok {
		t.Fatal("unpublished commit visible to a snapshot")
	}
	if v.Ts() != 0 {
		t.Fatalf("ts advanced past an unpublished commit: %d", v.Ts())
	}
	v.Close()

	s.PublishDurable()
	v = s.NewView()
	defer v.Close()
	if got, ok, _ := v.Get("t", 1); !ok || got[1].I != 10 {
		t.Fatalf("published commit not visible: %v ok=%v", got, ok)
	}
}

func TestAbortDropsStaged(t *testing.T) {
	s := NewStore(testSchemas(), 0)
	s.StageUpsert("t", 1, row(1, 10))
	s.DropStaged()
	s.CommitStaged(1, true)
	v := s.NewView()
	defer v.Close()
	if _, ok, _ := v.Get("t", 1); ok {
		t.Fatal("aborted write visible")
	}
}

func TestDeleteAndSecondary(t *testing.T) {
	s := NewStore(testSchemas(), 0)
	commit(s, 1, 1, 7)
	commit(s, 2, 2, 7)
	old := s.NewView()
	defer old.Close()

	s.StageDelete("t", 1)
	s.CommitStaged(3, true)
	s.StageUpsert("t", 2, row(2, 9)) // moves 2 out of sec bucket 7
	s.CommitStaged(4, true)

	collect := func(v core.ReadView, sec uint32) []uint64 {
		var pks []uint64
		if err := v.ScanSecondary("t", "by_v", sec, func(pk uint64) bool {
			pks = append(pks, pk)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return pks
	}
	if got := collect(old, 7); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("old view sec scan: %v, want [1 2]", got)
	}
	now := s.NewView()
	defer now.Close()
	if got := collect(now, 7); len(got) != 0 {
		t.Fatalf("new view sec bucket 7: %v, want empty", got)
	}
	if got := collect(now, 9); len(got) != 1 || got[0] != 2 {
		t.Fatalf("new view sec bucket 9: %v, want [2]", got)
	}
	if _, ok, _ := now.Get("t", 1); ok {
		t.Fatal("deleted key visible in new view")
	}
}

func TestScanRangeSnapshot(t *testing.T) {
	s := NewStore(testSchemas(), 0)
	for i := uint64(1); i <= 5; i++ {
		commit(s, i, i, int64(i)*10)
	}
	v := s.NewView()
	defer v.Close()
	commit(s, 6, 3, 999) // after the view: invisible
	var keys []uint64
	var vals []int64
	if err := v.ScanRange("t", 2, 5, func(pk uint64, r []core.Value) bool {
		keys = append(keys, pk)
		vals = append(vals, r[1].I)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != 2 || keys[1] != 3 || keys[2] != 4 {
		t.Fatalf("scan keys %v, want [2 3 4]", keys)
	}
	if vals[1] != 30 {
		t.Fatalf("scan saw post-snapshot write: %v", vals)
	}
}

func TestGCRespectsWatermark(t *testing.T) {
	s := NewStore(testSchemas(), 0)
	s.GCEvery = 0 // manual GC only
	for i := uint64(1); i <= 10; i++ {
		commit(s, i, 1, int64(i))
	}
	// Pin a view, write past it, GC: the pinned version must survive.
	vOld := s.NewView() // ts 10
	for i := uint64(11); i <= 15; i++ {
		commit(s, i, 1, int64(i))
	}
	reclaimed := s.GC()
	if reclaimed == 0 {
		t.Fatal("GC reclaimed nothing despite 9 superseded versions")
	}
	if got, ok, _ := vOld.Get("t", 1); !ok || got[1].I != 10 {
		t.Fatalf("GC reclaimed the watermark version: %v ok=%v", got, ok)
	}
	vNew := s.NewView()
	if got, ok, _ := vNew.Get("t", 1); !ok || got[1].I != 15 {
		t.Fatalf("newest version damaged by GC: %v ok=%v", got, ok)
	}
	vNew.Close()
	vOld.Close()

	// With no views pinned, a second GC collapses to one version per key.
	s.GC()
	if n := s.Versions(); n > 2 { // one primary + one sec membership
		t.Fatalf("post-GC live versions = %d, want <= 2", n)
	}
}

func TestGCRemovesDeadChains(t *testing.T) {
	s := NewStore(testSchemas(), 0)
	s.GCEvery = 0
	commit(s, 1, 1, 10)
	s.StageDelete("t", 1)
	s.CommitStaged(2, true)
	s.GC()
	if n := s.Versions(); n != 0 {
		t.Fatalf("dead chain survived GC: %d versions", n)
	}
	v := s.NewView()
	defer v.Close()
	if _, ok, _ := v.Get("t", 1); ok {
		t.Fatal("reclaimed key visible")
	}
	if err := v.ScanRange("t", 0, ^uint64(0), func(uint64, []core.Value) bool {
		t.Fatal("reclaimed key surfaced in scan")
		return false
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersRace(t *testing.T) {
	s := NewStore(testSchemas(), 0)
	const writers = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.NewView()
				ts := v.Ts()
				sum := int64(0)
				_ = v.ScanRange("t", 0, ^uint64(0), func(pk uint64, r []core.Value) bool {
					sum += r[1].I
					return true
				})
				// Every row's value encodes its commit ts; nothing newer
				// than the view may surface.
				_ = v.ScanRange("t", 0, ^uint64(0), func(pk uint64, r []core.Value) bool {
					if uint64(r[1].I) > ts {
						t.Errorf("view ts %d observed commit %d", ts, r[1].I)
						return false
					}
					return true
				})
				_, _, _ = v.Get("t", 3)
				_ = v.ScanSecondary("t", "by_v", 1, func(uint64) bool { return true })
				v.Close()
			}
		}()
	}
	for i := uint64(1); i <= writers; i++ {
		s.StageUpsert("t", i%8, []core.Value{core.IntVal(int64(i % 8)), core.IntVal(int64(i))})
		s.CommitStaged(i, i%3 != 0) // mix deferred and immediate publishes
		if i%3 == 0 {
			s.PublishDurable()
		}
		if i%16 == 0 {
			s.GC()
		}
	}
	close(stop)
	wg.Wait()
}

// TestOccValidatorTracksCommits pins the conflict oracle's contract: a
// commit stamps its keys (and the table frontier) at the commit timestamp,
// pending-but-unpublished groups are already visible to validation, and GC
// prunes per-key entries only up to the watermark — which a pinned view
// holds down, the invariant OCC validation-under-pin relies on.
func TestOccValidatorTracksCommits(t *testing.T) {
	s := NewStore(testSchemas(), 0)
	s.GCEvery = 0

	if ts := s.LatestKeyTs("t", 1); ts != 0 {
		t.Fatalf("unwritten key ts = %d, want 0", ts)
	}
	if ts := s.LatestKeyTs("nope", 1); ts != 0 {
		t.Fatalf("unknown table ts = %d, want 0", ts)
	}

	commit(s, 5, 1, 10)
	if ts := s.LatestKeyTs("t", 1); ts != 5 {
		t.Fatalf("key ts = %d, want 5", ts)
	}
	if ts := s.LatestTableTs("t"); ts != 5 {
		t.Fatalf("table ts = %d, want 5", ts)
	}

	// A view pinned at ts 5 holds the watermark at 5 across what follows.
	v := s.NewView()
	if v.Ts() != 5 {
		t.Fatalf("view ts = %d, want 5", v.Ts())
	}

	// Committed but NOT yet published: a group-commit buffer resident must
	// already conflict with overlapping snapshots — it will become durable.
	s.StageUpsert("t", 2, row(2, 20))
	s.CommitStaged(6, false)
	if ts := s.LatestKeyTs("t", 2); ts != 6 {
		t.Fatalf("pending key ts = %d, want 6", ts)
	}
	s.PublishDurable()

	// With the watermark pinned at 5, key 2's entry (ts 6) must survive GC
	// so a validator with snapshot 5 still sees it.
	s.GC()
	if ts := s.LatestKeyTs("t", 2); ts != 6 {
		t.Fatalf("pinned-above entry pruned: ts = %d, want 6", ts)
	}
	// Key 1 (ts 5) sits exactly at the watermark — prunable: no validator
	// can hold a snapshot older than the watermark by construction.
	if ts := s.LatestKeyTs("t", 1); ts != 0 {
		t.Fatalf("at-watermark entry kept: ts = %d, want 0 after GC", ts)
	}
	v.Close()

	// Fully unpinned GC prunes the remaining entries; the table-level
	// frontier is never pruned (scan/phantom protection).
	s.GC()
	if ts := s.LatestKeyTs("t", 2); ts != 0 {
		t.Fatalf("entry survived full GC: ts = %d", ts)
	}
	if ts := s.LatestTableTs("t"); ts != 6 {
		t.Fatalf("table frontier pruned: ts = %d, want 6", ts)
	}
}
