// Property test for the watermark/GC contract, driven through a real engine
// (nvminp: durable-at-commit, so every commit publishes immediately):
// randomized interleavings of writes, view pins/releases and GC passes must
// never reclaim a version any pinned view can still observe, and a power
// cycle after arbitrary GC must recover exactly the committed state. A
// failing sequence is ddmin-shrunk before being reported.
package mvcc_test

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"nstore/internal/core"
	"nstore/internal/engine/nvminp"
)

var propSeed = flag.Int64("seed", 1, "base seed for the GC property sequences")

// propOp is one step of a randomized store workload.
type propOp struct {
	kind byte // 'p' put, 'd' delete, 'v' pin view, 'r' release view, 'g' GC
	k    uint64
	val  int64
}

func (o propOp) String() string {
	switch o.kind {
	case 'p':
		return fmt.Sprintf("Put(%d,%d)", o.k, o.val)
	case 'd':
		return fmt.Sprintf("Delete(%d)", o.k)
	case 'v':
		return "PinView()"
	case 'r':
		return "ReleaseView()"
	default:
		return "GC()"
	}
}

func genProp(rng *rand.Rand, n int) []propOp {
	ops := make([]propOp, n)
	for i := range ops {
		k := uint64(rng.Intn(24))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // bias toward writes so chains grow
			ops[i] = propOp{kind: 'p', k: k, val: rng.Int63n(1 << 30)}
		case 4:
			ops[i] = propOp{kind: 'd', k: k}
		case 5, 6:
			ops[i] = propOp{kind: 'v'}
		case 7:
			ops[i] = propOp{kind: 'r'}
		default:
			ops[i] = propOp{kind: 'g'}
		}
	}
	return ops
}

func propSchemas() []*core.Schema {
	return []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "v", Type: core.TInt},
		},
		Secondary: []core.IndexSpec{{
			Name:   "by_v",
			SecKey: func(row []core.Value) uint32 { return uint32(row[1].I & 7) },
		}},
	}}
}

// pin is one held view plus the committed model at pin time — exactly what
// the view must keep reading no matter how much GC runs after it.
type pin struct {
	v     core.ReadView
	model map[uint64][]core.Value
}

// runProp replays one op sequence and checks the GC/watermark contract at
// every GC boundary and the recovery contract at the end.
func runProp(ops []propOp) error {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 64 << 20, FSExtent: 64 << 10})
	schemas := propSchemas()
	opts := core.Options{BTreeNodeSize: 128, GroupCommitSize: 1}
	e, err := nvminp.New(env, schemas, opts)
	if err != nil {
		return fmt.Errorf("New: %w", err)
	}
	e.MV.GCEvery = 0 // GC only where the sequence says so
	sch := schemas[0]
	committed := map[uint64][]core.Value{}
	var pins []pin
	defer func() {
		for _, p := range pins {
			p.v.Close()
		}
	}()

	txn := func(fn func() error) error {
		if err := e.Begin(); err != nil {
			return err
		}
		if err := fn(); err != nil {
			_ = e.Abort()
			return err
		}
		return e.Commit()
	}

	for i, o := range ops {
		switch o.kind {
		case 'p':
			row := []core.Value{core.IntVal(int64(o.k)), core.IntVal(o.val)}
			_, exists := committed[o.k]
			err := txn(func() error {
				if exists {
					return e.Update("t", o.k, core.Update{Cols: []int{1}, Vals: []core.Value{core.IntVal(o.val)}})
				}
				return e.Insert("t", o.k, row)
			})
			if err != nil {
				return fmt.Errorf("op %d %v: %w", i, o, err)
			}
			committed[o.k] = row
		case 'd':
			if _, exists := committed[o.k]; !exists {
				continue
			}
			if err := txn(func() error { return e.Delete("t", o.k) }); err != nil {
				return fmt.Errorf("op %d %v: %w", i, o, err)
			}
			delete(committed, o.k)
		case 'v':
			if len(pins) >= 4 { // bound held views; oldest out first
				pins[0].v.Close()
				pins = pins[1:]
			}
			pins = append(pins, pin{v: e.SnapshotView(), model: cloneModel(committed)})
		case 'r':
			if len(pins) > 0 {
				pins[0].v.Close()
				pins = pins[1:]
			}
		case 'g':
			e.MV.GC()
			// The watermark is the oldest pinned view's timestamp: nothing
			// any pinned view can observe may have been reclaimed.
			for pi, p := range pins {
				if err := checkPin(sch, p); err != nil {
					return fmt.Errorf("op %d %v: pinned view %d (ts %d): %w", i, o, pi, p.v.Ts(), err)
				}
			}
		}
	}
	for pi, p := range pins {
		if err := checkPin(sch, p); err != nil {
			return fmt.Errorf("final: pinned view %d (ts %d): %w", pi, p.v.Ts(), err)
		}
	}

	// Release everything, GC to the frontier, and power cycle: recovery
	// must rebuild exactly the committed state for fresh views.
	for _, p := range pins {
		p.v.Close()
	}
	pins = nil
	e.MV.GC()
	env.Dev.Crash()
	env2, err := env.Reopen()
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	e2, err := nvminp.Open(env2, schemas, opts)
	if err != nil {
		return fmt.Errorf("recovery open: %w", err)
	}
	v := e2.SnapshotView()
	defer v.Close()
	if err := checkPin(sch, pin{v: v, model: committed}); err != nil {
		return fmt.Errorf("post-recovery snapshot: %w", err)
	}
	return nil
}

// checkPin asserts the view reads exactly its recorded model: full scan
// (order, completeness, values), point reads, and secondary membership.
func checkPin(sch *core.Schema, p pin) error {
	n := 0
	var bad error
	if err := p.v.ScanRange("t", 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
		n++
		want, ok := p.model[pk]
		if !ok {
			bad = fmt.Errorf("phantom key %d", pk)
			return false
		}
		if !core.RowsEqual(sch, row, want) {
			bad = fmt.Errorf("key %d: got %v want %v", pk, row, want)
			return false
		}
		return true
	}); err != nil {
		return err
	}
	if bad != nil {
		return bad
	}
	if n != len(p.model) {
		return fmt.Errorf("scan saw %d rows, model has %d (GC reclaimed a visible version?)", n, len(p.model))
	}
	for k, want := range p.model {
		row, ok, err := p.v.Get("t", k)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("key %d invisible (GC reclaimed a visible version?)", k)
		}
		if !core.RowsEqual(sch, row, want) {
			return fmt.Errorf("key %d point read mismatch", k)
		}
		sec := uint32(want[1].I & 7)
		found := false
		if err := p.v.ScanSecondary("t", "by_v", sec, func(pk uint64) bool {
			found = found || pk == k
			return !found
		}); err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("key %d missing from secondary bucket %d", k, sec)
		}
	}
	return nil
}

func cloneModel(m map[uint64][]core.Value) map[uint64][]core.Value {
	out := make(map[uint64][]core.Value, len(m))
	for k, v := range m {
		out[k] = core.CloneRow(v)
	}
	return out
}

// shrinkProp greedily removes chunks of a failing sequence while the
// failure reproduces (ddmin-style), replaying each candidate fresh.
func shrinkProp(ops []propOp) []propOp {
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo+chunk <= len(ops); {
			cand := append(append([]propOp(nil), ops[:lo]...), ops[lo+chunk:]...)
			if runProp(cand) != nil {
				ops = cand // failure survives without this chunk — keep it out
			} else {
				lo += chunk
			}
		}
	}
	return ops
}

// TestGCTombstoneAtWatermark pins the GC edge where a chain's surviving
// head is a tombstone sitting EXACTLY at the watermark: a key is deleted, a
// view is pinned at the tombstone's commit timestamp (so the watermark
// equals it, not exceeds it), and GC runs. The truncation decision for
// "fully dead" chains fires right on the boundary; getting it wrong either
// resurrects the key for the pinned view (phantom) or leaks the chain. Each
// seeded sequence buries the edge under a randomized prefix so chain shapes
// vary, and runProp's epilogue power-cycles after GC and asserts the key
// stays deleted through recovery.
func TestGCTombstoneAtWatermark(t *testing.T) {
	n := 10
	if testing.Short() {
		n = 3
	}
	for s := int64(0); s < int64(n); s++ {
		seed := *propSeed + 9000 + s
		rng := rand.New(rand.NewSource(seed))
		// Randomized prefix grows chains; no GC yet, so the doomed key's
		// chain still holds every version when the edge fires.
		ops := genProp(rng, 60)
		prefix := ops[:0]
		for _, o := range ops {
			if o.kind != 'g' && o.kind != 'd' {
				prefix = append(prefix, o)
			}
		}
		k := uint64(rng.Intn(24))
		edge := []propOp{
			{kind: 'p', k: k, val: rng.Int63n(1 << 30)}, // ensure the chain exists
			{kind: 'r'}, {kind: 'r'}, {kind: 'r'}, {kind: 'r'}, // drop stale pins
			{kind: 'd', k: k}, // tombstone becomes the chain head
			{kind: 'v'},       // pin at the tombstone's ts: watermark == tombstone ts
			{kind: 'g'},       // truncate decides exactly on the boundary
		}
		if err := runProp(append(prefix, edge...)); err != nil {
			t.Fatalf("seed %d: %v\nreplay: go test -run TestGCTombstoneAtWatermark -seed=%d", seed, err, *propSeed)
		}
	}
}

// TestGCWatermarkProperty drives seeded op sequences through runProp; a
// failure is shrunk to a minimal reproduction before reporting.
func TestGCWatermarkProperty(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	for s := int64(0); s < int64(n); s++ {
		seed := *propSeed + s
		rng := rand.New(rand.NewSource(seed))
		ops := genProp(rng, 250)
		if err := runProp(ops); err != nil {
			min := shrinkProp(ops)
			t.Fatalf("seed %d: %v\nminimal reproduction (%d ops): %v", seed, err, len(min), min)
		}
	}
}
