// Package mvcc provides a host-memory multi-version store that gives the
// six single-owner storage engines lock-free snapshot reads. The engine's
// executor remains the only writer: it stages after-images during a
// transaction, hands them to the store at commit, and the store publishes
// them to readers only once the commit is durable (immediately for
// durable-at-commit engines, at the group-commit barrier otherwise). Reader
// goroutines acquire immutable views that never touch the engine, the
// device mutex, or the WAL — they traverse atomically published version
// chains.
//
// Version lifecycle (all writer-side methods are called only from the
// engine's owner goroutine):
//
//	StageUpsert/StageDelete   during Insert/Update/Delete
//	DropStaged                on Abort / rollback
//	CommitStaged(ts, durable) at Commit; publishes now iff durable
//	PublishDurable()          at Flush, when the durability barrier passes
//
// Published versions become visible when the oracle's read timestamp
// advances past their commit timestamp, which happens only after the whole
// transaction is published — so a view can never observe a torn or unacked
// transaction. GC truncates version chains strictly below the oracle's
// watermark (the minimum timestamp an active view is pinned at).
package mvcc

import (
	"sort"
	"sync"
	"sync/atomic"

	"nstore/internal/core"
)

// version is one immutable entry in a key's chain, newest first. row == nil
// marks a tombstone. next is atomic so GC can truncate a chain while
// readers traverse it.
type version struct {
	ts   uint64
	row  []core.Value
	next atomic.Pointer[version]
}

// chain is the per-key version list. head is atomic so the single writer
// can prepend while readers traverse lock-free.
type chain struct {
	head atomic.Pointer[version]
}

// visible returns the newest version with ts <= at, or nil.
func (c *chain) visible(at uint64) *version {
	for v := c.head.Load(); v != nil; v = v.next.Load() {
		if v.ts <= at {
			return v
		}
	}
	return nil
}

// directory is a sorted key index for range scans. Readers hold mu.RLock
// only long enough to copy the in-range window; chains themselves are read
// without any lock.
type directory struct {
	mu   sync.RWMutex
	keys []uint64
}

func (d *directory) insert(key uint64) {
	d.mu.Lock()
	i := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= key })
	if i == len(d.keys) || d.keys[i] != key {
		d.keys = append(d.keys, 0)
		copy(d.keys[i+1:], d.keys[i:])
		d.keys[i] = key
	}
	d.mu.Unlock()
}

func (d *directory) remove(key uint64) {
	d.mu.Lock()
	i := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= key })
	if i < len(d.keys) && d.keys[i] == key {
		d.keys = append(d.keys[:i], d.keys[i+1:]...)
	}
	d.mu.Unlock()
}

// window copies the keys in [from, to). The copy lets readers run the scan
// callback without holding the latch.
func (d *directory) window(from, to uint64) []uint64 {
	d.mu.RLock()
	i := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= from })
	j := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= to })
	out := append([]uint64(nil), d.keys[i:j]...)
	d.mu.RUnlock()
	return out
}

// secKey identifies one secondary-index membership: index position j is
// implied by the table's secDir slot; entries are ordered (sec, pk) to
// match the engines' composite-key scan order.
type secKey struct {
	sec uint32
	pk  uint64
}

type secDirectory struct {
	mu   sync.RWMutex
	keys []secKey
}

func secLess(a, b secKey) bool {
	if a.sec != b.sec {
		return a.sec < b.sec
	}
	return a.pk < b.pk
}

func (d *secDirectory) insert(k secKey) {
	d.mu.Lock()
	i := sort.Search(len(d.keys), func(i int) bool { return !secLess(d.keys[i], k) })
	if i == len(d.keys) || d.keys[i] != k {
		d.keys = append(d.keys, secKey{})
		copy(d.keys[i+1:], d.keys[i:])
		d.keys[i] = k
	}
	d.mu.Unlock()
}

func (d *secDirectory) remove(k secKey) {
	d.mu.Lock()
	i := sort.Search(len(d.keys), func(i int) bool { return !secLess(d.keys[i], k) })
	if i < len(d.keys) && d.keys[i] == k {
		d.keys = append(d.keys[:i], d.keys[i+1:]...)
	}
	d.mu.Unlock()
}

func (d *secDirectory) window(sec uint32) []secKey {
	lo, hi := secKey{sec: sec}, secKey{sec: sec, pk: ^uint64(0)}
	d.mu.RLock()
	i := sort.Search(len(d.keys), func(i int) bool { return !secLess(d.keys[i], lo) })
	j := sort.Search(len(d.keys), func(i int) bool { return secLess(hi, d.keys[i]) })
	out := append([]secKey(nil), d.keys[i:j]...)
	d.mu.RUnlock()
	return out
}

// present is the non-nil row sentinel for secondary membership chains.
var present = []core.Value{}

// tableStore holds one table's version chains.
type tableStore struct {
	schema *core.Schema
	chains sync.Map // uint64 -> *chain
	dir    directory
	// one membership map + directory per secondary index, in schema order.
	secs    []sync.Map // secKey -> *chain
	secDirs []secDirectory

	// OCC conflict tracking (writer-side: same single-owner rule as the
	// chains' writer methods; the serving runtime serializes CommitStaged
	// and Latest*Ts queries under the partition's engine mutex). lastKey
	// maps key -> newest commit timestamp that wrote it — including
	// committed-but-unpublished group-commit transactions, which a snapshot
	// cannot see yet but which must conflict with any transaction that read
	// the key at an older timestamp. GC prunes entries at or below the
	// watermark: a validating transaction keeps its snapshot pinned, so its
	// snapshot timestamp is never below the watermark and a pruned entry can
	// never hide a conflict. lastTs is the table-level aggregate for scan
	// validation and is never pruned.
	lastKey map[uint64]uint64
	lastTs  uint64
}

// stagedOp is one uncommitted after-image.
type stagedOp struct {
	table int
	key   uint64
	row   []core.Value // nil = delete
}

// pendingGroup is a committed-but-not-yet-durable transaction.
type pendingGroup struct {
	ts  uint64
	ops []stagedOp
}

// Store is the per-partition multi-version store. Writer-side methods
// (Stage*, DropStaged, CommitStaged, PublishDurable, GC) must be called
// from the single owner goroutine; NewView and the views it returns are
// safe from any goroutine.
type Store struct {
	tables  []*tableStore
	byName  map[string]int
	oracle  core.TsOracle
	staged  []stagedOp
	pending []pendingGroup

	versions atomic.Int64 // live version nodes, for GC accounting
	gcTick   int

	// GCEvery is the number of publishes between automatic GC passes.
	GCEvery int
}

// NewStore builds an empty store for the given schemas with the oracle
// floored at floorTs (the engine's recovered TxnID — the durable frontier).
func NewStore(schemas []*core.Schema, floorTs uint64) *Store {
	s := &Store{byName: make(map[string]int, len(schemas)), GCEvery: 64}
	for i, sc := range schemas {
		ts := &tableStore{schema: sc, lastKey: make(map[uint64]uint64)}
		ts.secs = make([]sync.Map, len(sc.Secondary))
		ts.secDirs = make([]secDirectory, len(sc.Secondary))
		s.tables = append(s.tables, ts)
		s.byName[sc.Name] = i
	}
	s.oracle.Advance(floorTs)
	return s
}

// Oracle returns the store's timestamp oracle.
func (s *Store) Oracle() *core.TsOracle { return &s.oracle }

// Seed installs one recovered row at the oracle floor. Called by the engine
// while rebuilding the store from its own recovered state, before the store
// is shared with readers.
func (s *Store) Seed(table string, key uint64, row []core.Value) {
	ti, ok := s.byName[table]
	if !ok {
		return
	}
	s.apply(s.oracle.ReadTs(), stagedOp{table: ti, key: key, row: core.CloneRow(row)})
}

// StageUpsert records the full after-image of an insert or update.
func (s *Store) StageUpsert(table string, key uint64, row []core.Value) {
	if ti, ok := s.byName[table]; ok {
		s.staged = append(s.staged, stagedOp{table: ti, key: key, row: core.CloneRow(row)})
	}
}

// StageDelete records a delete.
func (s *Store) StageDelete(table string, key uint64) {
	if ti, ok := s.byName[table]; ok {
		s.staged = append(s.staged, stagedOp{table: ti, key: key})
	}
}

// DropStaged discards the current transaction's staged ops (abort path).
func (s *Store) DropStaged() { s.staged = s.staged[:0] }

// CommitStaged seals the staged ops at commit timestamp ts. If the commit
// is already durable (the WAL group flushed, the COW batch persisted, or
// the engine is durable-at-commit) the versions publish immediately;
// otherwise they wait in the pending queue for PublishDurable.
func (s *Store) CommitStaged(ts uint64, durable bool) {
	if len(s.staged) > 0 {
		ops := make([]stagedOp, len(s.staged))
		copy(ops, s.staged)
		s.pending = append(s.pending, pendingGroup{ts: ts, ops: ops})
		// Record conflict timestamps at the commit point, before the group
		// publishes: a concurrent OCC transaction that read any of these
		// keys at an older snapshot must fail validation even though the
		// versions are not yet visible.
		for _, op := range ops {
			t := s.tables[op.table]
			t.lastKey[op.key] = ts
			t.lastTs = ts
		}
	}
	s.staged = s.staged[:0]
	if durable {
		// A durable commit implies every earlier commit in the same group
		// reached the barrier with it (a WAL group flush or a COW batch
		// persist covers the whole batch).
		s.PublishDurable()
		s.oracle.Advance(ts)
	} else if len(s.pending) == 0 {
		// Read-only txn with nothing pending: trivially durable. With
		// pending groups the timestamp must NOT advance — a view pinned
		// past an unpublished commit would observe it appearing later.
		s.oracle.Advance(ts)
	}
}

// PublishDurable publishes every pending transaction — the durability
// barrier passed (Flush succeeded, or the commit itself was durable).
func (s *Store) PublishDurable() {
	for _, g := range s.pending {
		for _, op := range g.ops {
			s.apply(g.ts, op)
		}
		// Advance only after the whole txn is visible in the chains, so a
		// view acquired at g.ts observes all of it or none of it.
		s.oracle.Advance(g.ts)
	}
	s.pending = s.pending[:0]
	s.gcTick++
	if s.GCEvery > 0 && s.gcTick >= s.GCEvery {
		s.gcTick = 0
		s.GC()
	}
}

// apply prepends one published version (and its secondary-membership
// versions) at ts.
func (s *Store) apply(ts uint64, op stagedOp) {
	t := s.tables[op.table]
	ci, ok := t.chains.Load(op.key)
	var c *chain
	if !ok {
		c = &chain{}
		t.chains.Store(op.key, c)
		t.dir.insert(op.key)
	} else {
		c = ci.(*chain)
	}
	// Secondary membership diffs against the latest committed row.
	var prev []core.Value
	if h := c.head.Load(); h != nil {
		prev = h.row
	}
	for j, ix := range t.schema.Secondary {
		var oldK, newK uint32
		oldOK, newOK := prev != nil, op.row != nil
		if oldOK {
			oldK = ix.SecKey(prev)
		}
		if newOK {
			newK = ix.SecKey(op.row)
		}
		if oldOK && newOK && oldK == newK {
			continue
		}
		if oldOK {
			s.applySec(t, j, secKey{sec: oldK, pk: op.key}, ts, nil)
		}
		if newOK {
			s.applySec(t, j, secKey{sec: newK, pk: op.key}, ts, present)
		}
	}
	v := &version{ts: ts, row: op.row}
	v.next.Store(c.head.Load())
	c.head.Store(v)
	s.versions.Add(1)
}

func (s *Store) applySec(t *tableStore, j int, k secKey, ts uint64, row []core.Value) {
	ci, ok := t.secs[j].Load(k)
	var c *chain
	if !ok {
		c = &chain{}
		t.secs[j].Store(k, c)
		t.secDirs[j].insert(k)
	} else {
		c = ci.(*chain)
	}
	v := &version{ts: ts, row: row}
	v.next.Store(c.head.Load())
	c.head.Store(v)
	s.versions.Add(1)
}

// GC reclaims versions strictly below the oracle's watermark: for every
// chain the newest version with ts <= watermark stays (it is what a view
// pinned at the watermark observes); everything older is truncated. Chains
// whose surviving head is a tombstone at or below the watermark are
// removed entirely. Returns the number of versions reclaimed. Writer-side.
func (s *Store) GC() int {
	wm := s.oracle.Watermark()
	reclaimed := 0
	for _, t := range s.tables {
		// Prune conflict entries no active or future snapshot can lose to:
		// a validating transaction pins its snapshot, so its timestamp is
		// >= wm and an entry with ts <= wm could never exceed it.
		for k, ts := range t.lastKey {
			if ts <= wm {
				delete(t.lastKey, k)
			}
		}
		var dead []uint64
		t.chains.Range(func(k, ci any) bool {
			c := ci.(*chain)
			n, fullyDead := s.truncate(c, wm)
			reclaimed += n
			if fullyDead {
				dead = append(dead, k.(uint64))
			}
			return true
		})
		for _, k := range dead {
			t.chains.Delete(k)
			t.dir.remove(k)
			s.versions.Add(-1)
			reclaimed++
		}
		for j := range t.secs {
			var deadSec []secKey
			t.secs[j].Range(func(k, ci any) bool {
				c := ci.(*chain)
				n, fullyDead := s.truncate(c, wm)
				reclaimed += n
				if fullyDead {
					deadSec = append(deadSec, k.(secKey))
				}
				return true
			})
			for _, k := range deadSec {
				t.secs[j].Delete(k)
				t.secDirs[j].remove(k)
				s.versions.Add(-1)
				reclaimed++
			}
		}
	}
	return reclaimed
}

// truncate cuts chain c below the watermark. fullyDead reports that the
// chain is a lone tombstone visible to every present and future view.
func (s *Store) truncate(c *chain, wm uint64) (reclaimed int, fullyDead bool) {
	v := c.head.Load()
	if v == nil {
		return 0, true
	}
	// Find the pivot: newest version with ts <= wm.
	for v != nil && v.ts > wm {
		v = v.next.Load()
	}
	if v == nil {
		return 0, false // every version above the watermark stays
	}
	for n := v.next.Load(); n != nil; n = n.next.Load() {
		reclaimed++
		s.versions.Add(-1)
	}
	v.next.Store(nil)
	head := c.head.Load()
	return reclaimed, head == v && head.row == nil
}

// LatestKeyTs returns the newest commit timestamp that wrote the key, or 0
// when the key was never written or its entry was pruned below the GC
// watermark. Writer-side (see tableStore.lastKey); implements
// core.OccValidator.
func (s *Store) LatestKeyTs(table string, key uint64) uint64 {
	ti, ok := s.byName[table]
	if !ok {
		return 0
	}
	return s.tables[ti].lastKey[key]
}

// LatestTableTs returns the newest commit timestamp that wrote any key of
// the table. Writer-side; implements core.OccValidator.
func (s *Store) LatestTableTs(table string) uint64 {
	ti, ok := s.byName[table]
	if !ok {
		return 0
	}
	return s.tables[ti].lastTs
}

var _ core.OccValidator = (*Store)(nil)

// Versions returns the number of live version nodes (including secondary
// membership nodes).
func (s *Store) Versions() int64 { return s.versions.Load() }

// Pending returns the number of committed-but-unpublished transactions.
func (s *Store) Pending() int { return len(s.pending) }

// View is a pinned snapshot; it implements core.ReadView.
type View struct {
	s      *Store
	ts     uint64
	closed atomic.Bool
}

// NewView pins a view at the current read timestamp.
func (s *Store) NewView() core.ReadView {
	return &View{s: s, ts: s.oracle.Acquire()}
}

// Ts returns the snapshot timestamp.
func (v *View) Ts() uint64 { return v.ts }

// Close releases the view's watermark pin. Idempotent.
func (v *View) Close() {
	if v.closed.CompareAndSwap(false, true) {
		v.s.oracle.Release(v.ts)
	}
}

func (v *View) table(name string) (*tableStore, error) {
	ti, ok := v.s.byName[name]
	if !ok {
		return nil, core.ErrKeyNotFound
	}
	return v.s.tables[ti], nil
}

// Get returns the tuple visible at the snapshot. The returned row is an
// immutable shared version — callers must not mutate it.
func (v *View) Get(table string, key uint64) ([]core.Value, bool, error) {
	t, err := v.table(table)
	if err != nil {
		return nil, false, err
	}
	ci, ok := t.chains.Load(key)
	if !ok {
		return nil, false, nil
	}
	ver := ci.(*chain).visible(v.ts)
	if ver == nil || ver.row == nil {
		return nil, false, nil
	}
	return ver.row, true, nil
}

// ScanRange iterates visible (pk, row) pairs in [from, to), ascending.
func (v *View) ScanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error {
	t, err := v.table(table)
	if err != nil {
		return err
	}
	for _, key := range t.dir.window(from, to) {
		ci, ok := t.chains.Load(key)
		if !ok {
			continue // reclaimed: the chain was dead below every live view
		}
		ver := ci.(*chain).visible(v.ts)
		if ver == nil || ver.row == nil {
			continue
		}
		if !fn(key, ver.row) {
			return nil
		}
	}
	return nil
}

// ScanSecondary iterates primary keys whose secondary key equals sec at the
// snapshot, in ascending pk order.
func (v *View) ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error {
	t, err := v.table(table)
	if err != nil {
		return err
	}
	j, ok := -1, false
	for jj, ix := range t.schema.Secondary {
		if ix.Name == index {
			j, ok = jj, true
			break
		}
	}
	if !ok {
		return core.ErrKeyNotFound
	}
	for _, k := range t.secDirs[j].window(sec) {
		ci, loaded := t.secs[j].Load(k)
		if !loaded {
			continue
		}
		ver := ci.(*chain).visible(v.ts)
		if ver == nil || ver.row == nil {
			continue
		}
		if !fn(k.pk) {
			return nil
		}
	}
	return nil
}

var _ core.ReadView = (*View)(nil)
