package pmalloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nstore/internal/nvm"
)

func newArena(t testing.TB, size int64) *Arena {
	t.Helper()
	dev := nvm.NewDevice(nvm.DefaultConfig(size))
	return Format(dev, 0, size)
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a := newArena(t, 1<<20)
	p, err := a.Alloc(100, TagTable)
	if err != nil {
		t.Fatal(err)
	}
	if p == 0 {
		t.Fatal("nil pointer from Alloc")
	}
	if got := a.SizeOf(p); got < 100 {
		t.Errorf("SizeOf = %d, want >= 100", got)
	}
	if a.StateOf(p) != StateAllocated {
		t.Errorf("state = %v, want allocated", a.StateOf(p))
	}
	a.SetPersisted(p)
	if a.StateOf(p) != StatePersisted {
		t.Errorf("state = %v, want persisted", a.StateOf(p))
	}
	a.Free(p)
	if a.StateOf(p) != StateFree {
		t.Errorf("state = %v, want free", a.StateOf(p))
	}
}

func TestAllocDistinctChunks(t *testing.T) {
	a := newArena(t, 1<<20)
	seen := make(map[Ptr][2]uint64)
	for i := 0; i < 100; i++ {
		n := 16 + i*7
		p, err := a.Alloc(n, TagOther)
		if err != nil {
			t.Fatal(err)
		}
		for q, r := range seen {
			qe := r[0]
			if uint64(p) < qe && uint64(p)+uint64(n) > r[1]-qe {
				_ = q
			}
		}
		seen[p] = [2]uint64{uint64(p), uint64(p) + uint64(n)}
	}
	// Overlap check.
	type iv struct{ lo, hi uint64 }
	var ivs []iv
	for _, r := range seen {
		ivs = append(ivs, iv{r[0], r[1]})
	}
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].lo < ivs[j].hi && ivs[j].lo < ivs[i].hi {
				t.Fatalf("chunks overlap: [%d,%d) and [%d,%d)", ivs[i].lo, ivs[i].hi, ivs[j].lo, ivs[j].hi)
			}
		}
	}
}

func TestFreeListReuse(t *testing.T) {
	a := newArena(t, 1<<20)
	p1, _ := a.Alloc(256, TagOther)
	before := a.HeapBytes()
	a.Free(p1)
	p2, err := a.Alloc(256, TagOther)
	if err != nil {
		t.Fatal(err)
	}
	if a.HeapBytes() != before {
		t.Errorf("heap grew on reuse: %d -> %d", before, a.HeapBytes())
	}
	if p2 != p1 {
		t.Errorf("expected reuse of freed chunk: got %d, freed %d", p2, p1)
	}
}

func TestRotatingAllocationSpreadsWear(t *testing.T) {
	a := newArena(t, 1<<20)
	// Create several same-class free chunks.
	var ps []Ptr
	for i := 0; i < 8; i++ {
		p, _ := a.Alloc(100, TagOther)
		ps = append(ps, p)
	}
	for _, p := range ps {
		a.Free(p)
	}
	// Successive allocations should not always pick the same chunk.
	got := make(map[Ptr]bool)
	for i := 0; i < 4; i++ {
		p, _ := a.Alloc(100, TagOther)
		got[p] = true
		a.Free(p)
	}
	if len(got) < 2 {
		t.Errorf("rotating policy reused a single chunk %v for all allocations", got)
	}
}

func TestRecoveryReclaimsUnpersistedChunks(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(1 << 20))
	a := Format(dev, 0, 1<<20)
	leak, _ := a.Alloc(128, TagTable) // never persisted
	keep, _ := a.Alloc(128, TagTable) // persisted
	dev.Write(int64(keep), []byte("persisted payload"))
	dev.Sync(int64(keep), 17)
	a.SetPersisted(keep)

	dev.Crash()
	a2, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a2.StateOf(keep) != StatePersisted {
		t.Errorf("persisted chunk state = %v after recovery", a2.StateOf(keep))
	}
	if a2.StateOf(leak) != StateFree {
		t.Errorf("leaked chunk state = %v after recovery, want free", a2.StateOf(leak))
	}
	buf := make([]byte, 17)
	dev.Read(int64(keep), buf)
	if string(buf) != "persisted payload" {
		t.Errorf("persisted payload lost: %q", buf)
	}
	// Note: usage accounting after recovery can undercount when the walk
	// stops at a lazily-headered (never-persisted) bump chunk; persisted
	// data and states above are the durable contract.
	if a2.Usage()[TagTable] > int64(a2.SizeOf(keep)) {
		t.Errorf("usage[table] = %d, want <= %d", a2.Usage()[TagTable], a2.SizeOf(keep))
	}
}

func TestRootDirectorySurvivesCrash(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(1 << 20))
	a := Format(dev, 0, 1<<20)
	p, _ := a.Alloc(64, TagIndex)
	a.SetPersisted(p)
	a.SetRoot(3, p)
	dev.Crash()
	a2, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := a2.Root(3); got != p {
		t.Errorf("root[3] = %d after crash, want %d", got, p)
	}
	if a2.Root(0) != 0 {
		t.Errorf("unset root nonzero: %d", a2.Root(0))
	}
}

func TestRecoveryCoalescesFreeChunks(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(1 << 20))
	a := Format(dev, 0, 1<<20)
	var ps []Ptr
	for i := 0; i < 4; i++ {
		p, _ := a.Alloc(64, TagOther)
		ps = append(ps, p)
	}
	for _, p := range ps {
		a.Free(p)
	}
	a2, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	// After coalescing, one big chunk should satisfy an allocation larger
	// than any single freed chunk without growing the heap.
	before := a2.HeapBytes()
	if _, err := a2.Alloc(200, TagOther); err != nil {
		t.Fatal(err)
	}
	if a2.HeapBytes() != before {
		t.Errorf("heap grew (%d -> %d); coalescing failed", before, a2.HeapBytes())
	}
}

func TestOutOfMemory(t *testing.T) {
	a := newArena(t, 4096)
	var last error
	for i := 0; i < 1000; i++ {
		if _, err := a.Alloc(256, TagOther); err != nil {
			last = err
			break
		}
	}
	if last != ErrOutOfMemory {
		t.Fatalf("expected ErrOutOfMemory, got %v", last)
	}
}

func TestUsageAccounting(t *testing.T) {
	a := newArena(t, 1<<20)
	p1, _ := a.Alloc(100, TagTable)
	p2, _ := a.Alloc(200, TagIndex)
	_, _ = a.Alloc(50, TagLog)
	u := a.Usage()
	if u[TagTable] < 100 || u[TagIndex] < 200 || u[TagLog] < 50 {
		t.Errorf("usage too small: %v", u)
	}
	total := a.Allocated()
	a.Free(p1)
	a.Free(p2)
	if a.Allocated() >= total {
		t.Errorf("Allocated did not shrink after frees: %d -> %d", total, a.Allocated())
	}
	u = a.Usage()
	if u[TagTable] != 0 {
		t.Errorf("usage[table] = %d after free", u[TagTable])
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := newArena(t, 1<<20)
	p, _ := a.Alloc(32, TagOther)
	a.Free(p)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	a.Free(p)
}

func TestOpenRejectsUnformatted(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(1 << 16))
	if _, err := Open(dev, 0); err == nil {
		t.Fatal("Open succeeded on unformatted device")
	}
}

// Property: any interleaving of alloc/free keeps chunks disjoint and
// payloads intact.
func TestQuickAllocFree(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(4 << 20))
	a := Format(dev, 0, 4<<20)
	type live struct {
		p    Ptr
		data []byte
	}
	var chunks []live
	rng := rand.New(rand.NewSource(42))

	f := func(sz uint16, freeIdx uint8) bool {
		n := int(sz%2048) + 1
		p, err := a.Alloc(n, TagOther)
		if err != nil {
			return true // arena full; acceptable
		}
		data := make([]byte, n)
		rng.Read(data)
		dev.Write(int64(p), data)
		chunks = append(chunks, live{p, data})

		if len(chunks) > 4 && freeIdx%3 == 0 {
			i := int(freeIdx) % len(chunks)
			a.Free(chunks[i].p)
			chunks = append(chunks[:i], chunks[i+1:]...)
		}
		// Verify all live payloads are intact (no overlap corrupted them).
		for _, c := range chunks {
			got := make([]byte, len(c.data))
			dev.Read(int64(c.p), got)
			for j := range got {
				if got[j] != c.data[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: recovery after a crash at any point never corrupts the heap
// walk, and persisted chunks always survive.
func TestQuickCrashRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 40; iter++ {
		dev := nvm.NewDevice(nvm.DefaultConfig(1 << 20))
		a := Format(dev, 0, 1<<20)
		var persisted []Ptr
		nops := 1 + rng.Intn(50)
		for i := 0; i < nops; i++ {
			n := 1 + rng.Intn(512)
			p, err := a.Alloc(n, Tag(rng.Intn(int(numTags))))
			if err != nil {
				break
			}
			if rng.Intn(2) == 0 {
				dev.Sync(int64(p), n)
				a.SetPersisted(p)
				persisted = append(persisted, p)
			}
		}
		if rng.Intn(2) == 0 {
			dev.EvictAll() // adversarial: push uncommitted data to the medium
		}
		dev.Crash()
		a2, err := Open(dev, 0)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for _, p := range persisted {
			if a2.StateOf(p) != StatePersisted {
				t.Fatalf("iter %d: persisted chunk %d lost (state %v)", iter, p, a2.StateOf(p))
			}
		}
		// The recovered arena must still be able to allocate.
		if _, err := a2.Alloc(64, TagOther); err != nil {
			t.Fatalf("iter %d: alloc after recovery: %v", iter, err)
		}
	}
}

func BenchmarkAlloc(b *testing.B) {
	dev := nvm.NewDevice(nvm.DefaultConfig(1 << 30))
	a := Format(dev, 0, 1<<30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Alloc(128, TagTable)
		if err != nil {
			b.Fatal(err)
		}
		if i%2 == 0 {
			a.Free(p)
		}
	}
}
