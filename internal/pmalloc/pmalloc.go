// Package pmalloc is an NVM-aware memory allocator, modelled on the paper's
// extension of libpmem (§2.3). It provides:
//
//   - a durability mechanism: the sync primitive (CLFLUSH + SFENCE via the
//     device) plus per-chunk durability states, so that storage occupied by
//     transactions that were uncommitted at a crash can be reclaimed;
//   - a naming mechanism: a fixed directory of root pointers so that
//     non-volatile pointers (device offsets) remain valid after restart;
//   - a rotating best-fit allocation policy that spreads allocations across
//     the heap to level wear on the NVM device.
//
// Chunk layout: every chunk has a 16-byte header followed by the payload.
// The first header word packs the payload size, durability state, and a
// usage tag (for the storage-footprint accounting of Fig. 14). Headers are
// synced on every state change, so a recovery scan can walk the heap and
// rebuild the free lists, reclaiming chunks that were allocated but never
// marked persisted ("non-volatile memory leaks", §4.1).
package pmalloc

import (
	"errors"
	"fmt"

	"nstore/internal/nvm"
)

// Ptr is a non-volatile pointer: an absolute offset into the NVM device.
// The zero value is the nil pointer.
type Ptr = uint64

// State is the durability state of a chunk (§4.1: a slot can be unallocated,
// allocated but not persisted, or persisted).
type State uint8

// Chunk durability states.
const (
	StateFree State = iota
	StateAllocated
	StatePersisted
)

// Tag categorizes an allocation for storage-footprint accounting (Fig. 14).
type Tag uint8

// Allocation categories.
const (
	TagOther Tag = iota
	TagTable
	TagIndex
	TagLog
	TagCheckpoint
	numTags
)

// TagNames maps tags to the labels used in Fig. 14.
var TagNames = [numTags]string{"other", "table", "index", "log", "checkpoint"}

const (
	magic      = 0x4e56414c4c4f4331 // "NVALLOC1"
	headerSize = 16                 // per-chunk header
	minPayload = 16
	alignMask  = 15

	// NumRoots is the number of named root-pointer slots.
	NumRoots = 56

	// Arena header layout (one region at base):
	//   +0  magic
	//   +8  arena size
	//   +16 durable heap end (bump pointer)
	//   +24 reserved
	//   +64 root directory (NumRoots * 8 bytes)
	//   +512 heap start
	offMagic   = 0
	offSize    = 8
	offHeapEnd = 16
	rootDirOff = 64
	heapStart  = 512

	numClasses = 32
	// bestFitScan bounds the number of free chunks examined per class.
	bestFitScan = 64
)

// ErrOutOfMemory is returned when the arena cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("pmalloc: out of memory")

// Arena is an allocator over a region of an NVM device.
type Arena struct {
	dev  *nvm.Device
	base int64
	size int64

	heapEnd int64 // volatile mirror of the durable bump pointer
	// free lists are volatile and rebuilt by the recovery scan on Open.
	free [numClasses][]int64 // chunk header offsets
	// rotate implements the rotating policy: each class starts its best-fit
	// scan at a moving position so allocations spread across the heap.
	rotate [numClasses]int

	usage     [numTags]int64 // live payload bytes per tag
	allocated int64          // total live payload bytes
}

// Format initializes a fresh arena over dev[base, base+size) and returns it.
func Format(dev *nvm.Device, base, size int64) *Arena {
	if size < heapStart+headerSize+minPayload {
		panic("pmalloc: arena too small")
	}
	a := &Arena{dev: dev, base: base, size: size, heapEnd: base + heapStart}
	zero := make([]byte, rootDirOff+NumRoots*8)
	dev.Write(base, zero)
	dev.WriteU64(base+offMagic, magic)
	dev.WriteU64(base+offSize, uint64(size))
	dev.WriteU64(base+offHeapEnd, uint64(a.heapEnd))
	dev.Sync(base, heapStart)
	return a
}

// Open attaches to an existing arena and runs the recovery scan: free lists
// are rebuilt, and chunks in StateAllocated (allocated by a transaction that
// never persisted them before the crash) are reclaimed.
func Open(dev *nvm.Device, base int64) (*Arena, error) {
	if dev.ReadU64(base+offMagic) != magic {
		return nil, fmt.Errorf("pmalloc: no arena at offset %d", base)
	}
	a := &Arena{
		dev:     dev,
		base:    base,
		size:    int64(dev.ReadU64(base + offSize)),
		heapEnd: int64(dev.ReadU64(base + offHeapEnd)),
	}
	a.recoverScan()
	return a, nil
}

// header word: size<<16 | tag<<8 | state
func packHeader(size int64, tag Tag, st State) uint64 {
	return uint64(size)<<16 | uint64(tag)<<8 | uint64(st)
}

func unpackHeader(w uint64) (size int64, tag Tag, st State) {
	return int64(w >> 16), Tag(w >> 8 & 0xff), State(w & 0xff)
}

func classOf(n int64) int {
	c := 0
	for s := int64(minPayload); s < n && c < numClasses-1; s <<= 1 {
		c++
	}
	return c
}

func alignUp(n int64) int64 { return (n + alignMask) &^ alignMask }

// recoverScan walks the heap, coalescing adjacent free chunks, reclaiming
// allocated-but-not-persisted chunks, and rebuilding the free lists and
// usage accounting.
func (a *Arena) recoverScan() {
	off := a.base + heapStart
	for off < a.heapEnd {
		w := a.dev.ReadU64(off)
		size, tag, st := unpackHeader(w)
		if size <= 0 || off+headerSize+size > a.heapEnd {
			// Torn heap tail (crash between header write and bump-pointer
			// update): everything from here is beyond the durable end.
			break
		}
		if st == StateAllocated {
			// Reclaim the non-volatile memory leak.
			a.writeHeader(off, size, tag, StateFree)
			st = StateFree
		}
		if st == StateFree {
			// Coalesce with following free chunks.
			next := off + headerSize + size
			for next < a.heapEnd {
				nw := a.dev.ReadU64(next)
				nsize, _, nst := unpackHeader(nw)
				if nst != StateFree || nsize <= 0 || next+headerSize+nsize > a.heapEnd {
					break
				}
				size += headerSize + nsize
				next += headerSize + nsize
			}
			a.writeHeader(off, size, TagOther, StateFree)
			a.pushFree(off, size)
		} else {
			a.usage[tag] += size
			a.allocated += size
		}
		off += headerSize + size
	}
}

// writeHeader durably writes a chunk header. Size-changing writes must be
// durable before any dependent data persists, or the recovery heap walk
// would misparse the chain.
func (a *Arena) writeHeader(off, size int64, tag Tag, st State) {
	a.dev.WriteU64(off, packHeader(size, tag, st))
	a.dev.Sync(off, 8)
}

// writeHeaderLazy writes a header without syncing: valid only for
// state/tag-only transitions (or fresh bump chunks whose durable bytes are
// zero), where a stale durable header still parses to a same-size chunk.
func (a *Arena) writeHeaderLazy(off, size int64, tag Tag, st State) {
	a.dev.WriteU64(off, packHeader(size, tag, st))
}

func (a *Arena) pushFree(off, size int64) {
	c := classOf(size)
	a.free[c] = append(a.free[c], off)
}

// Alloc allocates n payload bytes tagged with tag and returns a non-volatile
// pointer to the payload. The chunk is in StateAllocated; if the caller does
// not mark it persisted (SetPersisted) before a crash, recovery reclaims it.
func (a *Arena) Alloc(n int, tag Tag) (Ptr, error) {
	if n <= 0 {
		n = 1
	}
	need := alignUp(int64(n))
	if need < minPayload {
		need = minPayload
	}
	// Rotating best-fit across the free lists, starting at the size class.
	for c := classOf(need); c < numClasses; c++ {
		if off := a.takeFrom(c, need, tag); off != 0 {
			return off, nil
		}
	}
	// Fresh memory from the bump region.
	off := a.heapEnd
	if off+headerSize+need > a.base+a.size {
		return 0, ErrOutOfMemory
	}
	// Fresh bump chunk: the durable bytes here are zero, so a crash before
	// the chunk is persisted leaves a clean walk terminator; no sync needed.
	a.writeHeaderLazy(off, need, tag, StateAllocated)
	a.heapEnd = off + headerSize + need
	a.dev.WriteU64Durable(a.base+offHeapEnd, uint64(a.heapEnd))
	a.usage[tag] += need
	a.allocated += need
	return Ptr(off + headerSize), nil
}

// takeFrom does a bounded best-fit scan of class c's free list, starting at
// the rotating cursor. It returns the payload pointer, or 0 if no fit.
func (a *Arena) takeFrom(c int, need int64, tag Tag) Ptr {
	list := a.free[c]
	if len(list) == 0 {
		return 0
	}
	limit := len(list)
	if limit > bestFitScan {
		limit = bestFitScan
	}
	start := a.rotate[c] % len(list)
	bestIdx, bestSize := -1, int64(-1)
	for k := 0; k < limit; k++ {
		i := (start + k) % len(list)
		off := list[i]
		size, _, _ := unpackHeader(a.dev.ReadU64(off))
		if size >= need && (bestSize < 0 || size < bestSize) {
			bestIdx, bestSize = i, size
			if size == need {
				break
			}
		}
	}
	if bestIdx < 0 {
		return 0
	}
	a.rotate[c]++
	off := list[bestIdx]
	list[bestIdx] = list[len(list)-1]
	a.free[c] = list[:len(list)-1]

	// Split if the remainder is worth keeping. Splits change chunk sizes
	// and must be durable; whole-chunk reuse is a state-only transition.
	if rem := bestSize - need; rem >= headerSize+minPayload {
		remOff := off + headerSize + need
		a.writeHeader(remOff, rem-headerSize, TagOther, StateFree)
		a.pushFree(remOff, rem-headerSize)
		a.writeHeader(off, need, tag, StateAllocated)
	} else {
		need = bestSize
		a.writeHeaderLazy(off, need, tag, StateAllocated)
	}
	a.usage[tag] += need
	a.allocated += need
	return Ptr(off + headerSize)
}

// Free releases the chunk whose payload starts at p. The state change is
// written but not synced: the chunk's size is unchanged, so the recovery
// heap walk stays valid either way; at worst a crash resurrects the chunk
// as allocated/persisted, which the engines' sweeps reclaim.
func (a *Arena) Free(p Ptr) {
	off := int64(p) - headerSize
	size, tag, st := unpackHeader(a.dev.ReadU64(off))
	if st == StateFree {
		panic("pmalloc: double free")
	}
	a.usage[tag] -= size
	a.allocated -= size
	a.dev.WriteU64(off, packHeader(size, TagOther, StateFree))
	a.pushFree(off, size)
}

// SetPersisted durably marks the chunk persisted. After this, the chunk
// survives the recovery scan. Callers must sync the payload contents first.
func (a *Arena) SetPersisted(p Ptr) {
	off := int64(p) - headerSize
	size, tag, st := unpackHeader(a.dev.ReadU64(off))
	if st == StateFree {
		panic("pmalloc: SetPersisted on free chunk")
	}
	a.writeHeader(off, size, tag, StatePersisted)
}

// StateOf returns the durability state of the chunk at p.
func (a *Arena) StateOf(p Ptr) State {
	_, _, st := unpackHeader(a.dev.ReadU64(int64(p) - headerSize))
	return st
}

// SizeOf returns the payload capacity of the chunk at p.
func (a *Arena) SizeOf(p Ptr) int {
	size, _, _ := unpackHeader(a.dev.ReadU64(int64(p) - headerSize))
	return int(size)
}

// Root returns the value of root-pointer slot i (the naming mechanism).
func (a *Arena) Root(i int) Ptr {
	if i < 0 || i >= NumRoots {
		panic("pmalloc: root index out of range")
	}
	return a.dev.ReadU64(a.base + rootDirOff + int64(i)*8)
}

// SetRoot durably sets root-pointer slot i with an atomic 8-byte write.
func (a *Arena) SetRoot(i int, v Ptr) {
	if i < 0 || i >= NumRoots {
		panic("pmalloc: root index out of range")
	}
	a.dev.WriteU64Durable(a.base+rootDirOff+int64(i)*8, v)
}

// Device returns the underlying NVM device.
func (a *Arena) Device() *nvm.Device { return a.dev }

// Sync runs the sync primitive over the payload range [p, p+n).
func (a *Arena) Sync(p Ptr, n int) { a.dev.Sync(int64(p), n) }

// Usage returns live payload bytes per allocation tag.
func (a *Arena) Usage() map[Tag]int64 {
	m := make(map[Tag]int64, numTags)
	for t := Tag(0); t < numTags; t++ {
		if a.usage[t] != 0 {
			m[t] = a.usage[t]
		}
	}
	return m
}

// Allocated returns total live payload bytes.
func (a *Arena) Allocated() int64 { return a.allocated }

// HeapBytes returns the bytes of heap consumed (bump high-water mark),
// which is the arena's storage footprint.
func (a *Arena) HeapBytes() int64 { return a.heapEnd - (a.base + heapStart) }

// Chunks walks every chunk in the heap in address order, calling fn with the
// payload pointer, capacity, tag, and state. Engines use it for reachability
// sweeps that asynchronously reclaim storage orphaned by a crash (§3.2).
// fn must not allocate or free.
func (a *Arena) Chunks(fn func(p Ptr, size int, tag Tag, st State)) {
	off := a.base + heapStart
	for off < a.heapEnd {
		size, tag, st := unpackHeader(a.dev.ReadU64(off))
		if size <= 0 || off+headerSize+size > a.heapEnd {
			return
		}
		fn(Ptr(off+headerSize), int(size), tag, st)
		off += headerSize + size
	}
}
