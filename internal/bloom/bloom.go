// Package bloom implements the Bloom filters the Log and NVM-Log engines
// attach to SSTables and immutable MemTables (§3.3, §4.3) to avoid
// unnecessary index look-ups when reconstructing tuples from LSM runs.
package bloom

import "encoding/binary"

// Filter is a Bloom filter over uint64 keys.
type Filter struct {
	bits []uint64
	k    int
}

// New creates a filter sized for n keys at roughly the given bits-per-key
// budget (10 bits/key ≈ 1% false-positive rate).
func New(n int, bitsPerKey int) *Filter {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 10
	}
	m := n * bitsPerKey
	if m < 64 {
		m = 64
	}
	k := bitsPerKey * 69 / 100 // ln 2 ≈ 0.69 hash functions per bit
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{bits: make([]uint64, (m+63)/64), k: k}
}

// mix is a 64-bit finalizer (splitmix64) used to derive the k probe
// positions via double hashing.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a key.
func (f *Filter) Add(key uint64) {
	h1 := mix(key)
	h2 := mix(key ^ 0x9e3779b97f4a7c15)
	m := uint64(len(f.bits) * 64)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

// MayContain reports whether key was possibly added. False positives are
// possible; false negatives are not.
func (f *Filter) MayContain(key uint64) bool {
	h1 := mix(key)
	h2 := mix(key ^ 0x9e3779b97f4a7c15)
	m := uint64(len(f.bits) * 64)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Marshal serializes the filter (k, then the bit words, little-endian).
func (f *Filter) Marshal() []byte {
	out := make([]byte, 8+len(f.bits)*8)
	binary.LittleEndian.PutUint64(out, uint64(f.k))
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(out[8+i*8:], w)
	}
	return out
}

// Unmarshal reconstructs a filter produced by Marshal.
func Unmarshal(b []byte) *Filter {
	if len(b) < 16 || len(b)%8 != 0 {
		return New(1, 10)
	}
	f := &Filter{k: int(binary.LittleEndian.Uint64(b))}
	f.bits = make([]uint64, (len(b)-8)/8)
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(b[8+i*8:])
	}
	return f
}

// SizeBytes returns the marshalled size.
func (f *Filter) SizeBytes() int { return 8 + len(f.bits)*8 }

// K returns the number of hash probes per key.
func (f *Filter) K() int { return f.k }

// Probes visits the k bit positions for key in a filter of mbits bits,
// stopping early if fn returns false. External storage (e.g. a filter kept
// in NVM) can test membership without materializing a Filter.
func Probes(key uint64, k int, mbits uint64, fn func(bit uint64) bool) {
	h1 := mix(key)
	h2 := mix(key ^ 0x9e3779b97f4a7c15)
	for i := 0; i < k; i++ {
		if !fn((h1 + uint64(i)*h2) % mbits) {
			return
		}
	}
}
