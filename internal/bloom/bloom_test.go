package bloom

import (
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 10)
	for i := uint64(0); i < 1000; i++ {
		f.Add(i * 7919)
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.MayContain(i * 7919) {
			t.Fatalf("false negative for key %d", i*7919)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 10000
	f := New(n, 10)
	for i := uint64(0); i < n; i++ {
		f.Add(i)
	}
	fp := 0
	const probes = 100000
	for i := uint64(n); i < n+probes; i++ {
		if f.MayContain(i) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Errorf("false positive rate %.4f too high for 10 bits/key", rate)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(100, 10)
	for i := uint64(0); i < 100; i++ {
		f.Add(i * 31)
	}
	g := Unmarshal(f.Marshal())
	for i := uint64(0); i < 100; i++ {
		if !g.MayContain(i * 31) {
			t.Fatalf("key %d lost in marshal round trip", i*31)
		}
	}
	if g.SizeBytes() != f.SizeBytes() {
		t.Errorf("size mismatch: %d vs %d", g.SizeBytes(), f.SizeBytes())
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	f := Unmarshal([]byte{1, 2, 3})
	if f == nil {
		t.Fatal("Unmarshal returned nil on garbage")
	}
}

func TestTinyFilter(t *testing.T) {
	f := New(0, 0)
	f.Add(42)
	if !f.MayContain(42) {
		t.Error("tiny filter lost its key")
	}
}

// Property: anything added is always contained, including after a
// marshal/unmarshal cycle.
func TestQuickMembership(t *testing.T) {
	fn := func(keys []uint64) bool {
		f := New(len(keys), 10)
		for _, k := range keys {
			f.Add(k)
		}
		g := Unmarshal(f.Marshal())
		for _, k := range keys {
			if !f.MayContain(k) || !g.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(1<<20, 10)
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := New(1<<20, 10)
	for i := uint64(0); i < 1<<20; i++ {
		f.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(uint64(i))
	}
}
