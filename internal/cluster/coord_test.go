package cluster

import (
	"context"
	"testing"
	"time"

	"nstore/internal/netclient"
	"nstore/internal/testbed"
	"nstore/internal/wire"
)

// TestReseedRetriesAfterSpareDeath is the regression for the stuck re-seed:
// when the spare chosen for a replacement backup dies mid-seed, the attempt
// fails — and nothing ever retried, because scheduleReseed only fires from
// MarkDead. The shard then ran without a backup indefinitely, one failure
// away from data loss. The coordinator now drops the reseeding flag on every
// exit path and re-seeds backup-less shards from its lease tick, so a later
// tick must pick the remaining spare and seed it to digest equality.
func TestReseedRetriesAfterSpareDeath(t *testing.T) {
	// Heartbeats effectively off: the test drives each coordinator phase by
	// hand so the failure interleaving is deterministic.
	c := startCluster(t, testbed.InP, Config{
		Shards: 1, Nodes: 4, Seed: 9,
		HeartbeatEvery: time.Hour, Lease: 24 * time.Hour,
		ReseedTimeout: 500 * time.Millisecond,
	})
	ctx := context.Background()
	r := c.Router(netclient.Config{Seed: 9, RetryMax: 10})
	defer r.Close()

	for k := uint64(0); k < 30; k++ {
		if resp, err := r.DoRetry(ctx, putReq(k)); err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("warm put %d: %v %v", k, err, resp)
		}
	}

	m0 := c.Coord.Map()
	primary := m0.Shards[0].Primary
	backup := c.nodeByAddr(m0.Shards[0].Backup)

	// The spare the coordinator will pick first: the first live non-primary
	// node in cluster order (spareLocked's tie-break with zero backup load).
	var firstSpare *Node
	for _, n := range c.Nodes {
		if n.addr != primary && n.addr != backup.addr {
			firstSpare = n
			break
		}
	}

	// The chosen spare dies "mid-seed": its sockets are already cut when the
	// snapshot stream opens, but the coordinator does not know yet, so the
	// first re-seed attempt targets the corpse and fails.
	firstSpare.Kill()
	backup.Kill()
	c.Coord.MarkDead(backup.addr)

	// Now the coordinator learns the spare is dead too. The shard still has
	// no backup; only the lease-tick repair scan can fix it.
	c.Coord.MarkDead(firstSpare.addr)
	var lastSpare string
	for _, n := range c.Nodes {
		if n.addr != primary && n.addr != backup.addr && n.addr != firstSpare.addr {
			lastSpare = n.addr
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		c.Coord.checkLeases() // one lease tick, driven by hand
		if m := c.Coord.Map(); m.Shards[0].Backup == lastSpare {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-seed never retried after the spare died mid-seed: %+v",
				c.Coord.Map().Shards)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The retried re-seed must have produced a faithful backup, and the
	// shard must be writable throughout.
	for k := uint64(1000); k < 1010; k++ {
		if resp, err := r.DoRetry(ctx, putReq(k)); err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("post-repair put %d: %v %v", k, err, resp)
		}
	}
	wantShardDigestEqual(t, 0, c.nodeByAddr(primary), c.nodeByAddr(lastSpare))
}
