package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"nstore/internal/core"
	"nstore/internal/netclient"
	"nstore/internal/testbed"
	"nstore/internal/wire"
)

func schemas() []*core.Schema {
	return []*core.Schema{{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Type: core.TInt},
			{Name: "n", Type: core.TInt},
			{Name: "s", Type: core.TString, Size: 64},
		},
	}}
}

func testRow(key uint64) []core.Value {
	return []core.Value{
		core.IntVal(int64(key)),
		core.IntVal(int64(key)*3 + 1),
		core.StrVal(fmt.Sprintf("s%d", key)),
	}
}

func putReq(key uint64) *wire.Request {
	return &wire.Request{Part: -1, Op: wire.OpPut, Table: "t", Key: key, Row: testRow(key)}
}

func startCluster(t testing.TB, kind testbed.EngineKind, cfg Config) *Cluster {
	t.Helper()
	cfg.Engine = kind
	if cfg.Env.DeviceSize == 0 {
		cfg.Env = core.EnvConfig{DeviceSize: 32 << 20}
	}
	if cfg.Schemas == nil {
		cfg.Schemas = schemas()
	}
	c, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// keysForShard returns n keys that hash-route to the given shard.
func keysForShard(shard, shards, n int, from uint64) []uint64 {
	var out []uint64
	for k := from; len(out) < n; k++ {
		if wire.ShardOf(k, shards) == shard {
			out = append(out, k)
		}
	}
	return out
}

// shardDigests asserts the shard's state is identical on both nodes.
func wantShardDigestEqual(t *testing.T, shard int, a, b *Node) {
	t.Helper()
	da, err := a.DB().PartitionDigest(shard)
	if err != nil {
		t.Fatalf("digest %s shard %d: %v", a.name, shard, err)
	}
	db, err := b.DB().PartitionDigest(shard)
	if err != nil {
		t.Fatalf("digest %s shard %d: %v", b.name, shard, err)
	}
	if da != db {
		t.Fatalf("shard %d digest mismatch: %s=%x %s=%x", shard, a.name, da[:8], b.name, db[:8])
	}
}

// TestClusterBasic drives writes and reads through the router on a healthy
// cluster and asserts replication kept primary and backup digest-identical
// on every shard (Commit is synchronous, so a returned ack means the backup
// already applied).
func TestClusterBasic(t *testing.T) {
	c := startCluster(t, testbed.NVMInP, Config{Shards: 2, Nodes: 3, Seed: 1})
	r := c.Router(netclient.Config{Seed: 1})
	defer r.Close()
	ctx := context.Background()

	const keys = 60
	for k := uint64(0); k < keys; k++ {
		resp, err := r.DoRetry(ctx, putReq(k))
		if err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
		if resp.Status != wire.StatusOK {
			t.Fatalf("put %d: %v (%s)", k, resp.Status, resp.Msg)
		}
	}
	for k := uint64(0); k < keys; k++ {
		resp, err := r.DoRetry(ctx, &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: k})
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if resp.Status != wire.StatusOK || !resp.Found {
			t.Fatalf("get %d: %v found=%v", k, resp.Status, resp.Found)
		}
	}
	m := c.Coord.Map()
	for s, route := range m.Shards {
		p, b := c.nodeByAddr(route.Primary), c.nodeByAddr(route.Backup)
		if p == nil || b == nil {
			t.Fatalf("shard %d incomplete route %+v", s, route)
		}
		wantShardDigestEqual(t, s, p, b)
	}
}

// TestBackupRefusesClients pins the Admit discipline: reads and writes
// addressed to a node that is not the shard's primary answer NotPrimary,
// and the router recovers by refreshing its map.
func TestBackupRefusesClients(t *testing.T) {
	c := startCluster(t, testbed.InP, Config{Shards: 1, Nodes: 2, Seed: 2})
	ctx := context.Background()
	backupAddr := c.Coord.Map().Shards[0].Backup
	cl := netclient.New(backupAddr, netclient.Config{Seed: 2})
	defer cl.Close()

	key := keysForShard(0, 1, 1, 0)[0]
	req := putReq(key)
	req.Part = 0
	resp, err := cl.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusNotPrimary {
		t.Fatalf("write to backup: %v, want NotPrimary", resp.Status)
	}
	resp, err = cl.Do(ctx, &wire.Request{Part: 0, Op: wire.OpGet, Table: "t", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusNotPrimary {
		t.Fatalf("read from backup: %v, want NotPrimary", resp.Status)
	}
	// Unpinned requests must be rejected outright: testbed key%parts
	// routing is not cluster placement.
	resp, err = cl.Do(ctx, &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusBadRequest {
		t.Fatalf("unpinned request: %v, want BadRequest", resp.Status)
	}
}

// TestStaleEpochRejection is the fencing regression test: a fenced
// ex-primary's REPL frames are rejected with StatusStaleEpoch, and on
// seeing the rejection the ex-primary stops serving (clients get
// NotPrimary, never an ack).
func TestStaleEpochRejection(t *testing.T) {
	c := startCluster(t, testbed.Log, Config{
		Shards: 1, Nodes: 2, Seed: 3,
		// Leases long enough that the coordinator never interferes; the
		// test drives the failover by hand to keep it deterministic.
		HeartbeatEvery: time.Hour, Lease: 24 * time.Hour,
	})
	ctx := context.Background()
	m := c.Coord.Map()
	oldPrimary := c.nodeByAddr(m.Shards[0].Primary)
	backup := c.nodeByAddr(m.Shards[0].Backup)

	keys := keysForShard(0, 1, 3, 0)
	pcl := netclient.New(oldPrimary.addr, netclient.Config{Seed: 3})
	defer pcl.Close()
	put := func(key uint64) *wire.Response {
		t.Helper()
		req := putReq(key)
		req.Part = 0
		resp, err := pcl.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := put(keys[0]); resp.Status != wire.StatusOK {
		t.Fatalf("pre-fence put: %v (%s)", resp.Status, resp.Msg)
	}

	// Fence: promote the backup at a higher epoch, as the coordinator
	// would after the primary's lease expired. The old primary does not
	// know yet.
	backup.Promote(0, 2)

	// A direct stale REPL frame is rejected.
	bcl := netclient.New(backup.addr, netclient.Config{Seed: 3})
	defer bcl.Close()
	stale := &wire.Request{Op: wire.OpReplAppend, Part: 0, Epoch: 1, Seq: 99,
		Ops: []wire.Request{{Op: wire.OpPut, Table: "t", Key: keys[1], Row: testRow(keys[1])}}}
	resp, err := bcl.Do(ctx, stale)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusStaleEpoch {
		t.Fatalf("stale REPL frame: %v, want StaleEpoch", resp.Status)
	}

	// The ex-primary's next replicated write hits the fence: its ship is
	// rejected, it demotes itself, and the client sees NotPrimary — the
	// write is NEVER acked by the old primary.
	if resp := put(keys[2]); resp.Status != wire.StatusNotPrimary {
		t.Fatalf("write through fenced primary: %v (%s), want NotPrimary", resp.Status, resp.Msg)
	}
	// And it stays demoted for later requests too.
	if resp := put(keys[2]); resp.Status != wire.StatusNotPrimary {
		t.Fatalf("second write after fencing: %v, want NotPrimary", resp.Status)
	}
}

// TestReplayIdempotence ships the same batch twice (the re-send a primary
// issues after an ambiguous drop) and asserts the second ship acks without
// re-applying: digests before and after the replay are identical.
func TestReplayIdempotence(t *testing.T) {
	c := startCluster(t, testbed.NVMLog, Config{
		Shards: 1, Nodes: 2, Seed: 4,
		HeartbeatEvery: time.Hour, Lease: 24 * time.Hour,
	})
	ctx := context.Background()
	m := c.Coord.Map()
	backup := c.nodeByAddr(m.Shards[0].Backup)
	bcl := netclient.New(backup.addr, netclient.Config{Seed: 4})
	defer bcl.Close()

	keys := keysForShard(0, 1, 4, 100)
	batch := &wire.Request{Op: wire.OpReplAppend, Part: 0, Epoch: 1, Seq: 1,
		Ops: []wire.Request{
			{Op: wire.OpPut, Table: "t", Key: keys[0], Row: testRow(keys[0])},
			{Op: wire.OpPut, Table: "t", Key: keys[1], Row: testRow(keys[1])},
			{Op: wire.OpRmw, Table: "t", Key: keys[0], Cols: []wire.RmwCol{
				{Col: 1, Add: true, Val: core.IntVal(5)},
			}},
		}}
	resp, err := bcl.Do(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK || resp.Seq != 1 {
		t.Fatalf("first ship: %v seq=%d (%s)", resp.Status, resp.Seq, resp.Msg)
	}
	d1, err := backup.DB().PartitionDigest(0)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the identical batch: must ack OK at the same position and
	// change nothing (an Insert replay would KeyExists, an RMW replay
	// would double the add — idempotence means neither runs).
	resp, err = bcl.Do(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK || resp.Seq != 1 {
		t.Fatalf("replayed ship: %v seq=%d (%s)", resp.Status, resp.Seq, resp.Msg)
	}
	d2, err := backup.DB().PartitionDigest(0)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("replay changed state: %x → %x", d1[:8], d2[:8])
	}
	// A gapped batch (seq 3 when the backup sits at 1) is refused.
	gap := *batch
	gap.Seq = 3
	resp, err = bcl.Do(ctx, &gap)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusRetryable {
		t.Fatalf("gapped ship: %v, want Retryable", resp.Status)
	}
}

// TestBackupDropNoAck is the ack-after-replication acceptance test: with
// the backup link dead and the coordinator held off, a write to the shard
// must NEVER be acked — not with OK, and not indirectly with KeyExists
// (which the unique-key idiom reads as an ack). Once the coordinator
// declares the backup dead and clears it from the route, the exact same
// writes succeed, unreplicated but admitted.
func TestBackupDropNoAck(t *testing.T) {
	c := startCluster(t, testbed.CoW, Config{
		Shards: 2, Nodes: 2, Seed: 5,
		HeartbeatEvery: time.Hour, Lease: 24 * time.Hour,
	})
	ctx := context.Background()
	m := c.Coord.Map()

	// Shard 0: primary node0, backup node1. Kill node1 abruptly.
	primary := c.nodeByAddr(m.Shards[0].Primary)
	backup := c.nodeByAddr(m.Shards[0].Backup)
	backup.Kill()

	pcl := netclient.New(primary.addr, netclient.Config{Seed: 5, RetryMax: 4})
	defer pcl.Close()
	keys := keysForShard(0, 2, 5, 0)
	for _, k := range keys {
		req := putReq(k)
		req.Part = 0
		for attempt := 0; attempt < 3; attempt++ {
			resp, err := pcl.Do(ctx, req)
			if err != nil {
				continue // transport-level failure: fine, not an ack
			}
			if resp.Status == wire.StatusOK || resp.Status == wire.StatusKeyExists {
				t.Fatalf("key %d acked (%v) with the backup link dead", k, resp.Status)
			}
			if !resp.Status.Retryable() {
				t.Fatalf("key %d: %v (%s), want a retryable mask", k, resp.Status, resp.Msg)
			}
		}
	}

	// Failover: the coordinator declares the backup dead and clears it;
	// the shard serves unreplicated and the same writes now succeed.
	c.Coord.MarkDead(backup.addr)
	for _, k := range keys {
		req := putReq(k)
		req.Part = 0
		resp, err := pcl.DoRetry(ctx, req)
		if err != nil {
			t.Fatalf("post-failover put %d: %v", k, err)
		}
		// OK or KeyExists both fine now: the earlier attempts committed
		// locally and were masked; with replication formally off, the
		// mask lifts and the state is simply visible.
		if resp.Status != wire.StatusOK && resp.Status != wire.StatusKeyExists {
			t.Fatalf("post-failover put %d: %v (%s)", k, resp.Status, resp.Msg)
		}
	}
}

// TestFailoverPromotesBackup kills a primary under a short lease and waits
// for the coordinator to promote the backup, fence the epoch, re-seed a
// replacement backup on the spare, and leave the cluster serving — with the
// promoted replica and the fresh backup digest-identical.
func TestFailoverPromotesBackup(t *testing.T) {
	c := startCluster(t, testbed.NVMCoW, Config{
		Shards: 2, Nodes: 3, Seed: 6,
		HeartbeatEvery: 10 * time.Millisecond, Lease: 80 * time.Millisecond,
	})
	r := c.Router(netclient.Config{Seed: 6, RetryMax: 30, RetryCap: 100 * time.Millisecond})
	defer r.Close()
	ctx := context.Background()

	for k := uint64(0); k < 40; k++ {
		if resp, err := r.DoRetry(ctx, putReq(k)); err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("warm put %d: %v %v", k, err, resp)
		}
	}

	m0 := c.Coord.Map()
	victim := c.nodeByAddr(m0.Shards[0].Primary)
	victim.Kill()

	// The router must fail over by itself: keep writing through the kill.
	for k := uint64(1000); k < 1040; k++ {
		resp, err := r.DoRetry(ctx, putReq(k))
		if err != nil {
			t.Fatalf("put %d through failover: %v", k, err)
		}
		if resp.Status != wire.StatusOK {
			t.Fatalf("put %d through failover: %v (%s)", k, resp.Status, resp.Msg)
		}
	}

	// Wait for the re-seed to complete: every shard has a primary and a
	// backup again, and none of them is the victim.
	deadline := time.Now().Add(10 * time.Second)
	var m *wire.ShardMap
	for {
		m = c.Coord.Map()
		healed := true
		for _, route := range m.Shards {
			if route.Primary == "" || route.Backup == "" ||
				route.Primary == victim.addr || route.Backup == victim.addr {
				healed = false
			}
		}
		if healed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not heal: %+v", m.Shards)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m.Shards[0].Epoch <= m0.Shards[0].Epoch {
		t.Fatalf("epoch did not advance on failover: %d -> %d", m0.Shards[0].Epoch, m.Shards[0].Epoch)
	}

	// Every key ever acked is readable.
	check := func(k uint64) {
		t.Helper()
		resp, err := r.DoRetry(ctx, &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: k})
		if err != nil || resp.Status != wire.StatusOK || !resp.Found {
			t.Fatalf("get %d after failover: err=%v resp=%+v", k, err, resp)
		}
	}
	for k := uint64(0); k < 40; k++ {
		check(k)
	}
	for k := uint64(1000); k < 1040; k++ {
		check(k)
	}

	// Quiesce, then primary and re-seeded backup must agree per shard.
	for s, route := range m.Shards {
		wantShardDigestEqual(t, s, c.nodeByAddr(route.Primary), c.nodeByAddr(route.Backup))
	}
}

// TestClusterHealthz exercises the /healthz satellite: role/epoch/lag lines
// per shard on a healthy node, and a 503 once a shard is fenced.
func TestClusterHealthz(t *testing.T) {
	c := startCluster(t, testbed.InP, Config{
		Shards: 1, Nodes: 2, Seed: 7,
		HeartbeatEvery: time.Hour, Lease: 24 * time.Hour,
	})
	m := c.Coord.Map()
	primary := c.nodeByAddr(m.Shards[0].Primary)
	ms, err := primary.Runtime().StartMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + ms.Addr() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get()
	if code != http.StatusOK {
		t.Fatalf("healthy node /healthz = %d:\n%s", code, body)
	}
	if !strings.Contains(body, "shard 0: role=primary epoch=1 lag=0") {
		t.Fatalf("missing shard line:\n%s", body)
	}

	// Fence the shard (map that names this node for nothing) → 503.
	primary.SetMap(&wire.ShardMap{Version: 99, Shards: []wire.ShardRoute{
		{Epoch: 5, Primary: "elsewhere:1", Backup: ""},
	}})
	code, body = get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("fenced node /healthz = %d:\n%s", code, body)
	}
	if !strings.Contains(body, "fenced") {
		t.Fatalf("fenced line missing:\n%s", body)
	}
}

// TestRouterRefreshOnNotPrimary checks the router follows a map change it
// was not told about: after a manual failover it re-learns the topology
// from StatusNotPrimary and lands on the new primary.
func TestRouterRefreshOnNotPrimary(t *testing.T) {
	c := startCluster(t, testbed.InP, Config{
		Shards: 1, Nodes: 2, Seed: 8,
		HeartbeatEvery: time.Hour, Lease: 24 * time.Hour,
	})
	r := c.Router(netclient.Config{Seed: 8, RetryMax: 10})
	defer r.Close()
	ctx := context.Background()

	key := keysForShard(0, 1, 1, 0)[0]
	if resp, err := r.DoRetry(ctx, putReq(key)); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("warm put: %v %v", err, resp)
	}

	// Manual failover, bypassing the router entirely.
	c.Coord.MarkDead(c.Coord.Map().Shards[0].Primary)

	key2 := keysForShard(0, 1, 2, 10)[1]
	resp, err := r.DoRetry(ctx, putReq(key2))
	if err != nil {
		t.Fatalf("put after manual failover: %v", err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("put after manual failover: %v (%s)", resp.Status, resp.Msg)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Start(Config{Engine: testbed.InP, Nodes: 1, Shards: 1, Schemas: schemas(),
		Env: core.EnvConfig{DeviceSize: 32 << 20}}); err == nil {
		t.Fatal("single-node cluster must be rejected")
	}
}
