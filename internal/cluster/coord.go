package cluster

import (
	"context"
	"sync"
	"time"

	"nstore/internal/wire"
)

// Coordinator is the in-process placement service: it owns the shard map,
// tracks node leases from heartbeats, promotes backups when a primary's
// lease expires, and re-seeds replacement backups. One goroutine checks
// leases; re-seeds run in their own goroutines because a snapshot can take
// a while and must not block failure detection.
//
// The coordinator process itself is disposable: every map install goes
// through the consensus register spread across the nodes (see consensus.go),
// so a standby coordinator can win the register at a higher ballot, adopt
// the last accepted map, and finish an interrupted failover or re-seed. The
// replication protocol still never trusts the coordinator blindly: epochs
// fence deposed primaries even if a coordinator misbehaves (DESIGN.md §11).
type Coordinator struct {
	c *Cluster

	mu     sync.Mutex
	m      *wire.ShardMap
	lastHB map[string]time.Time
	dead   map[string]bool
	// reseeding guards one in-flight re-seed per shard.
	reseeding map[int]bool
	// ballot is this coordinator's prepared proposer ballot; deposed is set
	// the moment any acceptor reveals a newer proposer, after which this
	// coordinator must never decide anything again.
	ballot  uint64
	deposed bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newCoordinator(c *Cluster) *Coordinator {
	return &Coordinator{
		c:         c,
		lastHB:    make(map[string]time.Time),
		dead:      make(map[string]bool),
		reseeding: make(map[int]bool),
		stop:      make(chan struct{}),
	}
}

// Heartbeat records a node's liveness report (called in-process by the
// node's heartbeat loop).
func (co *Coordinator) Heartbeat(addr string) {
	co.mu.Lock()
	if !co.dead[addr] {
		co.lastHB[addr] = time.Now()
	}
	co.mu.Unlock()
}

// Map returns the coordinator's current shard map.
func (co *Coordinator) Map() *wire.ShardMap {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.m.Clone()
}

// currentBallot reads the coordinator's proposer ballot (a standby starts
// its bidding from here).
func (co *Coordinator) currentBallot() uint64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.ballot
}

// install publishes a new map version through the consensus register: the
// version is chosen only once a majority of acceptors stored it, then every
// live node learns it. A deposed coordinator's install silently does
// nothing — the newer proposer owns placement now. Caller holds co.mu.
func (co *Coordinator) installLocked() {
	co.m.Version++
	co.proposeLocked(co.m.Clone())
}

// run is the lease checker.
func (co *Coordinator) run() {
	defer co.wg.Done()
	t := time.NewTicker(co.c.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			co.checkLeases()
		}
	}
}

func (co *Coordinator) checkLeases() {
	co.mu.Lock()
	if co.deposed {
		co.mu.Unlock()
		return
	}
	now := time.Now()
	var expired []string
	for addr, last := range co.lastHB {
		if !co.dead[addr] && now.Sub(last) > co.c.cfg.Lease {
			expired = append(expired, addr)
		}
	}
	co.mu.Unlock()
	for _, addr := range expired {
		co.MarkDead(addr)
	}

	// Repair scan: a shard can be left running without a backup when a
	// re-seed failed (snapshot stream error, spare died mid-seed) or no
	// spare was available at failover time. Nothing else would ever retry —
	// scheduleReseed only fires from MarkDead — so the shard would stay
	// one failure away from data loss forever. Re-seeds are guarded by the
	// reseeding flag and pick a fresh spare each attempt, so retrying every
	// lease tick is safe and gives failed re-seeds built-in pacing.
	co.mu.Lock()
	var repair []int
	for i := range co.m.Shards {
		r := &co.m.Shards[i]
		if r.Primary != "" && r.Backup == "" && !co.reseeding[i] {
			repair = append(repair, i)
		}
	}
	co.mu.Unlock()
	for _, shard := range repair {
		co.scheduleReseed(shard)
	}
}

// MarkDead declares a node failed and runs failover for every shard it
// touched: a primary's backup is promoted at a bumped epoch (fencing the
// old primary), a dead backup is simply dropped; either way a replacement
// backup is re-seeded on a spare node.
func (co *Coordinator) MarkDead(addr string) {
	co.mu.Lock()
	if co.dead[addr] || co.deposed {
		co.mu.Unlock()
		return
	}
	co.dead[addr] = true
	var reseed []int
	changed := false
	for i := range co.m.Shards {
		r := &co.m.Shards[i]
		switch addr {
		case r.Primary:
			changed = true
			r.Epoch++
			r.Primary, r.Backup = r.Backup, ""
			if r.Primary != "" {
				if n := co.c.nodeByAddr(r.Primary); n != nil {
					n.Promote(i, r.Epoch)
				}
				reseed = append(reseed, i)
			}
		case r.Backup:
			changed = true
			r.Backup = ""
			reseed = append(reseed, i)
		}
	}
	if changed {
		co.installLocked()
	}
	co.mu.Unlock()
	for _, shard := range reseed {
		co.scheduleReseed(shard)
	}
}

// scheduleReseed starts (at most one per shard) a background re-seed of a
// replacement backup.
func (co *Coordinator) scheduleReseed(shard int) {
	co.mu.Lock()
	if co.reseeding[shard] || co.deposed {
		co.mu.Unlock()
		return
	}
	primary := co.m.Shards[shard].Primary
	spare := co.spareLocked(shard)
	if primary == "" || spare == "" {
		co.mu.Unlock()
		return // nowhere to seed from, or to
	}
	co.reseeding[shard] = true
	// Open the enrollment window in the map itself before the re-seed RPC
	// is dispatched. SnapDone enrolls the spare as backup on the node side
	// before this goroutine can record it in the map, and OTHER shards'
	// failover installs run concurrently — without the flag, any map built
	// in that window lists Backup="" for this shard and SetMap would demote
	// the just-enrolled backup (and strip s.backup off the primary),
	// leaving the shard serving unreplicated behind a map that claims a
	// live backup. The flag tells every node to leave this shard's
	// replication state alone until the closing install.
	co.m.Shards[shard].Reseeding = true
	co.installLocked()
	co.mu.Unlock()

	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		// The flag must drop on EVERY exit path — a failed snapshot stream,
		// a spare that died mid-seed, even a panicking Reseed. A stuck flag
		// makes scheduleReseed a no-op for this shard forever: the shard
		// would run without a backup until the next full restart. The
		// checkLeases repair scan retries once the flag is down. The same
		// applies to the map-side Reseeding flag: the closing install must
		// happen even on failure, or SetMap would skip this shard's fencing
		// forever.
		defer func() {
			co.mu.Lock()
			co.reseeding[shard] = false
			if co.m.Shards[shard].Reseeding {
				co.m.Shards[shard].Reseeding = false
				co.installLocked()
			}
			co.mu.Unlock()
		}()
		pn := co.c.nodeByAddr(primary)
		err := error(nil)
		if pn != nil {
			ctx, cancel := context.WithTimeout(context.Background(), co.c.cfg.ReseedTimeout)
			err = pn.Reseed(ctx, shard, spare)
			cancel()
		}
		co.mu.Lock()
		if err == nil && pn != nil && co.m.Shards[shard].Primary == primary && !co.dead[spare] {
			co.m.Shards[shard].Backup = spare
		}
		// The closing install (deferred above) publishes Backup and clears
		// Reseeding atomically in one map version: no node ever sees the
		// window closed without also seeing the enrollment outcome.
		co.mu.Unlock()
	}()
}

// spareLocked picks a live node that is not the shard's primary — preferring
// one that backs the fewest shards so replacements spread out.
func (co *Coordinator) spareLocked(shard int) string {
	load := make(map[string]int)
	for _, r := range co.m.Shards {
		if r.Backup != "" {
			load[r.Backup]++
		}
	}
	best := ""
	for _, n := range co.c.Nodes {
		a := n.addr
		if co.dead[a] || a == co.m.Shards[shard].Primary {
			continue
		}
		if best == "" || load[a] < load[best] {
			best = a
		}
	}
	return best
}

// close stops the lease loop and waits for in-flight re-seeds. Idempotent:
// tests close the cluster explicitly before a power-cycle drill and the
// cleanup hook closes it again.
func (co *Coordinator) close() {
	co.stopOnce.Do(func() { close(co.stop) })
	co.wg.Wait()
}
