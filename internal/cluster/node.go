package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nstore/internal/core"
	"nstore/internal/netclient"
	"nstore/internal/netserve"
	"nstore/internal/obs"
	"nstore/internal/serve"
	"nstore/internal/testbed"
	"nstore/internal/wire"
)

// Shard replica roles.
const (
	roleNone    int32 = 0 // fenced or never assigned: serves nothing
	roleBackup  int32 = 1 // applies shipped batches, refuses client traffic
	rolePrimary int32 = 2 // serves clients, ships to the backup before acking
)

func roleName(r int32) string {
	switch r {
	case rolePrimary:
		return "primary"
	case roleBackup:
		return "backup"
	}
	return "none"
}

// errFenced is drainTail's signal that the backup rejected our epoch: a
// newer primary exists and this node must stop acting as one.
var errFenced = errors.New("cluster: fenced by a newer epoch")

// replEntry is one committed-but-possibly-unacked batch in a shard's tail.
type replEntry struct {
	seq   uint64
	bytes int64
	ops   []wire.Request
}

// shardState is one shard's replication state on one node. The mutex is the
// shard's replication serializer: Commit holds it across local submit AND
// backup ship, so batches leave in sequence order and an ack can never
// outrun replication. Backup-side apply holds it too, so apply order matches
// ship order and re-seeding cannot interleave with appends.
type shardState struct {
	mu sync.Mutex

	role  int32
	epoch uint64
	// seq is the shard's position: last locally committed batch on a
	// primary, last applied batch on a backup. It advances on EVERY local
	// commit, even one whose ship failed — reusing a sequence number for
	// different contents would diverge the replicas. A failed ship leaves
	// the entry in the tail, drained on the next commit or re-seed.
	seq    uint64
	ackSeq uint64 // highest seq the backup has acked
	backup string // backup address; "" = unreplicated (dead or re-seeding)
	tail   []replEntry
	// catchingUp marks a replica mid-snapshot (SnapBegin seen, SnapDone
	// not): /healthz reports 503 and the shard serves nobody.
	catchingUp bool

	lagBytes atomic.Int64 // tail payload bytes, scraped lock-free
}

// Node is one cluster member: a full testbed DB + serve runtime + netserve
// front door, plus per-shard replication state. A node hosts every partition
// but serves only the shards the map assigns it.
type Node struct {
	name string
	cl   *Cluster
	db   *testbed.DB
	rt   *serve.Runtime
	srv  *netserve.Server
	addr string

	shards []*shardState
	dead   atomic.Bool

	acc  acceptor                      // this node's slice of the map consensus register
	smap atomic.Pointer[wire.ShardMap] // latest learned (consensus-chosen) map

	stopHB chan struct{}
	hbWG   sync.WaitGroup

	// cmu guards the outbound clients this node uses to ship to peers.
	cmu     sync.Mutex
	clients map[string]*netclient.Client

	mFailovers *obs.Counter
	mShipAck   []*obs.Histogram
}

// Addr returns the node's wire listen address.
func (n *Node) Addr() string { return n.addr }

// Runtime returns the node's serve runtime (tests drain and digest it).
func (n *Node) Runtime() *serve.Runtime { return n.rt }

// DB returns the node's testbed database.
func (n *Node) DB() *testbed.DB { return n.db }

// buildMetrics registers the cluster metric surface on the node's runtime
// registry: replication lag, failovers, per-shard ship→ack latency, and
// role/epoch gauges for dashboards.
func (n *Node) buildMetrics() {
	reg := n.rt.Metrics()
	n.mFailovers = reg.Counter("cluster_failovers_total")
	// The learned shard-map version: after a failover or re-seed every live
	// node's gauge must converge on the coordinator's — a node stuck behind
	// is routing clients on stale epochs.
	reg.GaugeFunc("cluster_map_version", func() float64 {
		if m := n.smap.Load(); m != nil {
			return float64(m.Version)
		}
		return 0
	})
	reg.GaugeFunc("cluster_repl_lag_bytes", func() float64 {
		var sum int64
		for _, s := range n.shards {
			sum += s.lagBytes.Load()
		}
		return float64(sum)
	})
	n.mShipAck = make([]*obs.Histogram, len(n.shards))
	for i, s := range n.shards {
		i, s := i, s
		n.mShipAck[i] = reg.Histogram(fmt.Sprintf("cluster_shard%02d_ship_ack_ns", i))
		reg.GaugeFunc(fmt.Sprintf("cluster_shard%02d_role", i), func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.role)
		})
		reg.GaugeFunc(fmt.Sprintf("cluster_shard%02d_epoch", i), func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.epoch)
		})
	}
}

// client returns (dialing lazily) the outbound client for a peer address.
func (n *Node) client(addr string) *netclient.Client {
	n.cmu.Lock()
	defer n.cmu.Unlock()
	cl, ok := n.clients[addr]
	if !ok {
		cl = netclient.New(addr, n.cl.cfg.peerClientConfig())
		n.clients[addr] = cl
	}
	return cl
}

// SetMap installs a coordinator-pushed shard map and fences roles it
// contradicts: a node the map names for neither side of a shard (at an epoch
// at least as new as the node's) must stop serving it. Promotion and backup
// enrollment go through explicit Promote/Reseed, never through SetMap — a
// map cannot conjure data onto a node.
func (n *Node) SetMap(m *wire.ShardMap) {
	n.smap.Store(m.Clone())
	for i, route := range m.Shards {
		if i >= len(n.shards) {
			break
		}
		s := n.shards[i]
		s.mu.Lock()
		switch {
		case route.Reseeding:
			// Enrollment in flight: this map is authoritative about
			// placement but stale about the shard's replication pair — the
			// re-seed's SnapDone may already have enrolled a backup the map
			// does not list. Deriving state from it here would demote that
			// backup (or strip it off its primary) and leave the shard
			// serving unreplicated behind a map that claims otherwise.
			// Fencing of genuinely stale replicas happens on the install
			// that closes the window.
		case route.Primary != n.addr && route.Backup != n.addr &&
			route.Epoch >= s.epoch && s.role != roleNone:
			s.role = roleNone
			s.backup = ""
			s.dropTailLocked()
		case route.Primary == n.addr && route.Epoch >= s.epoch &&
			s.role == rolePrimary && s.backup != "" && route.Backup != s.backup:
			// The backup this node was shipping to is gone from the map
			// (declared dead). Serve unreplicated; the tail stays so a
			// re-seeded replacement can log-catch-up if it covers.
			s.backup = ""
		}
		s.mu.Unlock()
	}
}

func (s *shardState) dropTailLocked() {
	s.tail = nil
	s.lagBytes.Store(0)
}

// Promote makes this node the shard's primary at epoch. Called by the
// coordinator when the previous primary's lease expires; the promoted
// backup starts unreplicated (backup="") until a re-seed enrolls a new one.
func (n *Node) Promote(shard int, epoch uint64) {
	s := n.shards[shard]
	s.mu.Lock()
	s.role = rolePrimary
	s.epoch = epoch
	s.ackSeq = s.seq
	s.backup = ""
	s.dropTailLocked()
	s.catchingUp = false
	s.mu.Unlock()
	n.mFailovers.Inc()
}

// Admit implements netserve.Replicator: only a primary serves client
// traffic, and every request must arrive pinned to its shard (the Router
// pins Part = ShardOf(key); the testbed's key%parts routing would scatter
// keys across the wrong shards).
func (n *Node) Admit(part int, req *wire.Request) error {
	if req.Part < 0 {
		return &wire.StatusError{Status: wire.StatusBadRequest,
			Msg: "cluster mode requires shard-pinned requests (Part = ShardOf(key))"}
	}
	s := n.shards[part]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.role != rolePrimary {
		return &wire.StatusError{Status: wire.StatusNotPrimary,
			Msg: fmt.Sprintf("shard %d is %s here", part, roleName(s.role))}
	}
	return nil
}

// shipOps lowers a client write into the batch shipped to the backup: a
// transaction ships its sub-ops, a single op ships itself. RMW ships the
// original column deltas — the backup recomputes adds from its own
// pre-image, which matches the primary's because batches apply in sequence
// order from identical state.
func shipOps(req *wire.Request) []wire.Request {
	if req.Op == wire.OpTxn {
		return req.Ops
	}
	sub := *req
	sub.ID = 0
	sub.Part = -1
	return []wire.Request{sub}
}

func opsBytes(ops []wire.Request) int64 {
	var b int64
	for i := range ops {
		b += 16 + int64(len(ops[i].Table))
		for _, v := range ops[i].Row {
			b += 9 + int64(len(v.S))
		}
		b += int64(len(ops[i].Cols)) * 12
	}
	return b
}

// Commit implements netserve.Replicator: the replicated write path.
//
// Invariants (DESIGN.md §11):
//  1. submit() runs under the shard mutex, so batches are sequenced in
//     commit order and shipped in that same order.
//  2. seq advances on every local commit, shipped or not; a failed ship
//     parks the entry in the tail.
//  3. No response other than a retryable error leaves a replicated shard
//     while unacked tail remains — even a would-be KeyExists is masked,
//     because letting it out would let a client's retry loop treat an
//     unreplicated commit as acked (the unique-key-insert idiom reads
//     KeyExists as "my earlier write committed").
//  4. A StaleEpoch from the backup fences this node: role drops to none
//     and the client sees NotPrimary, never an ack.
func (n *Node) Commit(ctx context.Context, part int, req *wire.Request, submit func() error) error {
	s := n.shards[part]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.role != rolePrimary {
		return &wire.StatusError{Status: wire.StatusNotPrimary,
			Msg: fmt.Sprintf("shard %d is %s here", part, roleName(s.role))}
	}
	subErr := submit()
	if subErr == nil {
		s.seq++
		ops := shipOps(req)
		e := replEntry{seq: s.seq, bytes: opsBytes(ops), ops: ops}
		s.tail = append(s.tail, e)
		s.lagBytes.Add(e.bytes)
		// Bound the tail: beyond TailLen the oldest entries are dropped and
		// log catch-up is off the table — a returning backup needs a full
		// snapshot re-seed instead.
		if max := n.cl.cfg.TailLen; len(s.tail) > max {
			drop := len(s.tail) - max
			for _, d := range s.tail[:drop] {
				s.lagBytes.Add(-d.bytes)
			}
			s.tail = append([]replEntry(nil), s.tail[drop:]...)
		}
	}
	if s.backup == "" {
		// Unreplicated (backup dead, or mid-failover before re-seed): serve
		// locally. Lag stays in the tail for the re-seed to drain.
		return subErr
	}
	if err := n.drainTailLocked(ctx, part, s); err != nil {
		if errors.Is(err, errFenced) {
			s.role = roleNone
			s.backup = ""
			s.dropTailLocked()
			return &wire.StatusError{Status: wire.StatusNotPrimary,
				Msg: fmt.Sprintf("shard %d fenced at epoch %d", part, s.epoch)}
		}
		// Replication stalled with unacked tail: mask EVERY outcome —
		// including a non-retryable submit error — behind a retryable
		// failure (invariant 3 above).
		return core.Retryable(fmt.Errorf("cluster: shard %d replication unavailable: %v", part, err))
	}
	return subErr
}

// drainTailLocked ships every unacked tail entry to the backup, in order,
// waiting for each REPL_ACK. Caller holds s.mu.
func (n *Node) drainTailLocked(ctx context.Context, part int, s *shardState) error {
	// Drop entries the backup already acked (possible after a re-probe).
	for len(s.tail) > 0 && s.tail[0].seq <= s.ackSeq {
		s.lagBytes.Add(-s.tail[0].bytes)
		s.tail = s.tail[1:]
	}
	if len(s.tail) > 0 && s.tail[0].seq != s.ackSeq+1 {
		return fmt.Errorf("tail gap: backup at %d, oldest retained batch %d (needs re-seed)",
			s.ackSeq, s.tail[0].seq)
	}
	cl := n.client(s.backup)
	for len(s.tail) > 0 {
		e := s.tail[0]
		start := time.Now()
		resp, err := cl.Do(ctx, &wire.Request{
			Op: wire.OpReplAppend, Part: int32(part),
			Epoch: s.epoch, Seq: e.seq, Ops: e.ops,
		})
		if err != nil {
			return err
		}
		switch resp.Status {
		case wire.StatusOK:
			n.mShipAck[part].Record(time.Since(start))
			s.ackSeq = e.seq
			if resp.Seq > s.ackSeq && resp.Seq <= s.seq {
				s.ackSeq = resp.Seq // idempotent ack may cover later batches
			}
			for len(s.tail) > 0 && s.tail[0].seq <= s.ackSeq {
				s.lagBytes.Add(-s.tail[0].bytes)
				s.tail = s.tail[1:]
			}
		case wire.StatusStaleEpoch:
			return errFenced
		default:
			return &wire.StatusError{Status: resp.Status, Msg: resp.Msg}
		}
	}
	return nil
}

// Handle implements netserve.Replicator: the replication-plane ops.
func (n *Node) Handle(ctx context.Context, req *wire.Request) *wire.Response {
	resp := &wire.Response{ID: req.ID}
	if req.Op == wire.OpShardMap {
		if m := n.smap.Load(); m != nil {
			resp.Map = m.Clone()
		} else {
			resp.Status, resp.Msg = wire.StatusRetryable, "no shard map yet"
		}
		return resp
	}
	switch req.Op {
	case wire.OpMapPrepare, wire.OpMapAccept, wire.OpMapLearn:
		n.handleConsensus(req, resp)
		return resp
	}
	if req.Part < 0 || int(req.Part) >= len(n.shards) {
		resp.Status, resp.Msg = wire.StatusBadRequest, fmt.Sprintf("no shard %d", req.Part)
		return resp
	}
	s := n.shards[req.Part]
	switch req.Op {
	case wire.OpReplAck:
		// A zero (epoch, seq) encodes as respNone, which the probe reads
		// back as (0, 0) — same meaning, no special case needed.
		s.mu.Lock()
		resp.Epoch, resp.Seq = s.epoch, s.seq
		s.mu.Unlock()
	case wire.OpReplAppend:
		n.handleReplAppend(ctx, int(req.Part), s, req, resp)
	case wire.OpReplSnap:
		n.handleReplSnap(ctx, int(req.Part), s, req, resp)
	default:
		resp.Status, resp.Msg = wire.StatusBadRequest, fmt.Sprintf("unexpected repl op %v", req.Op)
	}
	return resp
}

// handleReplAppend is backup-side apply. Epoch fencing first, then
// replay-idempotent sequencing: a batch at or below the applied position
// acks without re-applying (the primary may re-ship after an ambiguous
// drop), the next batch applies through the runtime (durable before the
// ack goes back), anything further ahead is a gap the primary must re-seed.
func (n *Node) handleReplAppend(ctx context.Context, part int, s *shardState, req *wire.Request, resp *wire.Response) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.role == rolePrimary {
		if req.Epoch <= s.epoch {
			resp.Status = wire.StatusStaleEpoch
			resp.Msg = fmt.Sprintf("shard %d: epoch %d <= primary epoch %d", part, req.Epoch, s.epoch)
		} else {
			resp.Status = wire.StatusNotPrimary
			resp.Msg = fmt.Sprintf("shard %d: node is primary below shipped epoch %d", part, req.Epoch)
		}
		return
	}
	if s.role != roleBackup {
		resp.Status = wire.StatusNotPrimary
		resp.Msg = fmt.Sprintf("shard %d is %s here (not enrolled as backup)", part, roleName(s.role))
		return
	}
	if req.Epoch < s.epoch {
		resp.Status = wire.StatusStaleEpoch
		resp.Msg = fmt.Sprintf("shard %d: epoch %d < %d", part, req.Epoch, s.epoch)
		return
	}
	s.epoch = req.Epoch // adopt a newer epoch from the legitimate primary
	switch {
	case req.Seq <= s.seq:
		// Replayed batch: already applied and durable. Ack idempotently.
		resp.Epoch, resp.Seq = s.epoch, s.seq
	case req.Seq == s.seq+1:
		if err := n.rt.SubmitPart(ctx, part, netserve.ApplyOps(req.Ops)); err != nil {
			resp.Status, resp.Msg = wire.StatusRetryable, fmt.Sprintf("apply seq %d: %v", req.Seq, err)
			return
		}
		s.seq = req.Seq
		resp.Epoch, resp.Seq = s.epoch, s.seq
	default:
		resp.Status = wire.StatusRetryable
		resp.Msg = fmt.Sprintf("shard %d: gap, backup at %d got %d", part, s.seq, req.Seq)
	}
}

// handleReplSnap is backup-side snapshot installation for re-seeding.
func (n *Node) handleReplSnap(ctx context.Context, part int, s *shardState, req *wire.Request, resp *wire.Response) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Epoch < s.epoch {
		resp.Status = wire.StatusStaleEpoch
		resp.Msg = fmt.Sprintf("shard %d: snapshot epoch %d < %d", part, req.Epoch, s.epoch)
		return
	}
	switch req.Phase {
	case wire.SnapBegin:
		// Drop whatever the shard held (stale backup state, or a fenced
		// ex-primary's divergent tail) and start clean.
		if err := n.clearShard(ctx, part); err != nil {
			resp.Status, resp.Msg = wire.StatusRetryable, fmt.Sprintf("clear: %v", err)
			return
		}
		s.role = roleNone
		s.epoch = req.Epoch
		s.seq = 0
		s.catchingUp = true
	case wire.SnapChunk:
		if !s.catchingUp {
			resp.Status, resp.Msg = wire.StatusBadRequest, "snapshot chunk without SnapBegin"
			return
		}
		rows := req.SnapRows
		keys := req.SnapKeys
		table := req.Table
		err := n.rt.SubmitPart(ctx, part, func(eng core.Engine) error {
			for i, k := range keys {
				if err := eng.Insert(table, k, rows[i]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			resp.Status, resp.Msg = wire.StatusRetryable, fmt.Sprintf("chunk: %v", err)
			return
		}
	case wire.SnapDone:
		if !s.catchingUp {
			resp.Status, resp.Msg = wire.StatusBadRequest, "snapshot done without SnapBegin"
			return
		}
		s.role = roleBackup
		s.epoch = req.Epoch
		s.seq = req.Seq
		s.catchingUp = false
		resp.Epoch, resp.Seq = s.epoch, s.seq
	}
}

// clearShard deletes every row of every table in the partition, through the
// executor so the deletion is durable and versioned like any other write.
func (n *Node) clearShard(ctx context.Context, part int) error {
	for _, sc := range n.db.Schemas() {
		table := sc.Name
		for {
			var keys []uint64
			err := n.rt.SubmitPart(ctx, part, func(eng core.Engine) error {
				keys = keys[:0]
				if err := eng.ScanRange(table, 0, ^uint64(0), func(pk uint64, _ []core.Value) bool {
					keys = append(keys, pk)
					return len(keys) < 512
				}); err != nil {
					return err
				}
				for _, k := range keys {
					if err := eng.Delete(table, k); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			if len(keys) < 512 {
				break
			}
		}
	}
	return nil
}

// Reseed (re)establishes addr as the shard's backup, called on the primary
// by the coordinator. Fast path: if the replica's durable position is on our
// epoch and within the retained tail, ship the missing batches. Otherwise a
// full snapshot: SnapBegin, every table's rows in chunks read from the MVCC
// snapshot pool (the executor keeps running; the shard mutex blocks writes
// for the duration — the re-seed blackout the bench measures). Writes are
// blocked rather than raced because the snapshot must correspond to an
// exact (epoch, seq) position.
func (n *Node) Reseed(ctx context.Context, shard int, addr string) error {
	s := n.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.role != rolePrimary {
		return fmt.Errorf("cluster: reseed of shard %d on a %s", shard, roleName(s.role))
	}
	cl := n.client(addr)
	probe, err := cl.Do(ctx, &wire.Request{Op: wire.OpReplAck, Part: int32(shard), Epoch: s.epoch})
	if err != nil {
		return err
	}
	if probe.Status == wire.StatusOK && probe.Epoch == s.epoch && probe.Seq <= s.seq {
		// Same history: log catch-up if the tail still covers the distance.
		covered := probe.Seq == s.seq ||
			(len(s.tail) > 0 && s.tail[0].seq <= probe.Seq+1)
		if covered {
			s.backup = addr
			s.ackSeq = probe.Seq
			if err := n.drainTailLocked(ctx, shard, s); err != nil {
				s.backup = ""
				return err
			}
			return nil
		}
	}
	// Snapshot path. The position shipped with SnapDone is the seq at the
	// time the mutex was taken; no writes can slip in while we hold it.
	send := func(req *wire.Request) error {
		resp, err := cl.Do(ctx, req)
		if err != nil {
			return err
		}
		if resp.Status != wire.StatusOK {
			return &wire.StatusError{Status: resp.Status, Msg: resp.Msg}
		}
		return nil
	}
	if err := send(&wire.Request{Op: wire.OpReplSnap, Part: int32(shard), Epoch: s.epoch, Phase: wire.SnapBegin}); err != nil {
		return err
	}
	for _, sc := range n.db.Schemas() {
		table := sc.Name
		var keys []uint64
		var rows [][]core.Value
		flush := func() error {
			if len(keys) == 0 {
				return nil
			}
			err := send(&wire.Request{Op: wire.OpReplSnap, Part: int32(shard), Epoch: s.epoch,
				Phase: wire.SnapChunk, Table: table, SnapKeys: keys, SnapRows: rows})
			keys, rows = nil, nil
			return err
		}
		var flushErr error
		err := n.rt.ReadPart(ctx, shard, func(v core.ReadView) error {
			return v.ScanRange(table, 0, ^uint64(0), func(pk uint64, row []core.Value) bool {
				keys = append(keys, pk)
				rows = append(rows, copyRow(row))
				if len(keys) >= 128 {
					if flushErr = flush(); flushErr != nil {
						return false
					}
				}
				return true
			})
		})
		if err == nil {
			err = flushErr
		}
		if err != nil {
			return err
		}
		if err := flush(); err != nil {
			return err
		}
	}
	if err := send(&wire.Request{Op: wire.OpReplSnap, Part: int32(shard), Epoch: s.epoch,
		Phase: wire.SnapDone, Seq: s.seq}); err != nil {
		return err
	}
	s.backup = addr
	s.ackSeq = s.seq
	s.dropTailLocked()
	return nil
}

func copyRow(row []core.Value) []core.Value {
	out := make([]core.Value, len(row))
	for i, v := range row {
		if v.S != nil {
			v.S = append(make([]byte, 0, len(v.S)), v.S...)
		}
		out[i] = v
	}
	return out
}

// HealthCheck implements serve.HealthSource: one line per shard with role,
// epoch and replication lag; unhealthy while any shard is fenced (role none
// after holding a role — epoch > 0) or catching up on a snapshot.
func (n *Node) HealthCheck() ([]string, bool) {
	ok := true
	lines := make([]string, 0, len(n.shards))
	for i, s := range n.shards {
		s.mu.Lock()
		lag := s.seq - s.ackSeq
		if s.role != rolePrimary {
			lag = 0
		}
		line := fmt.Sprintf("shard %d: role=%s epoch=%d lag=%d", i, roleName(s.role), s.epoch, lag)
		if s.catchingUp {
			line += " catching-up"
			ok = false
		}
		if s.role == roleNone && s.epoch > 0 {
			line += " fenced"
			ok = false
		}
		s.mu.Unlock()
		lines = append(lines, line)
	}
	return lines, ok
}

// heartbeatLoop reports liveness to the coordinator until killed.
func (n *Node) heartbeatLoop() {
	defer n.hbWG.Done()
	t := time.NewTicker(n.cl.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-n.stopHB:
			return
		case <-t.C:
			if !n.dead.Load() {
				n.cl.Coordinator().Heartbeat(n.addr)
			}
		}
	}
}

// Kill is the SIGKILL stand-in: the node stops heartbeating, its listener
// and every connection (inbound and outbound) are cut mid-frame, and
// NOTHING is flushed — the runtime is simply never consulted again. Acked
// state must survive on the other replica; that is the whole point.
func (n *Node) Kill() {
	if n.dead.Swap(true) {
		return
	}
	close(n.stopHB)
	n.srv.Kill()
	n.cmu.Lock()
	for _, cl := range n.clients {
		cl.Close()
	}
	n.cmu.Unlock()
}

// Shutdown is the graceful teardown for test cleanup. Safe after Kill.
func (n *Node) Shutdown() {
	if !n.dead.Swap(true) {
		close(n.stopHB)
		n.srv.Close()
		n.cmu.Lock()
		for _, cl := range n.clients {
			cl.Close()
		}
		n.cmu.Unlock()
	}
	n.hbWG.Wait()
	n.rt.Close()
}
