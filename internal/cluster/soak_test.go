package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nstore/internal/core"
	"nstore/internal/engine/enginetest"
	"nstore/internal/netclient"
	"nstore/internal/testbed"
	"nstore/internal/wire"
)

// TestClusterNodeKillSoak is the replicated acked-commit contract, end to
// end and replayable from -seed: six engines, three nodes, two shards,
// concurrent unique-key inserts through the shard router, and a SIGKILL of
// shard 0's primary (listener and every connection cut mid-frame, nothing
// flushed) once a third of the schedule has acked. The cluster must fail
// over by itself — promote the backup, fence the old epoch, re-seed a
// replacement — while the workers keep writing through the blackout.
//
// The acceptance bar is zero acked-commit loss and zero divergence: every
// key the schedule acked is readable afterwards, every shard's primary and
// backup are digest-identical, and both match an in-process oracle that
// applied the same schedule to a plain testbed DB. Then the promoted node
// is power-cycled (Crash + Recover) and its shards must still match the
// oracle — what replication acked, local durability also kept.
//
// The schedule is unique-key inserts with key-derived rows, so the one
// ambiguity a kill leaves (did my insert commit before the cut?) resolves
// exactly: a retry answered KeyExists IS the earlier ack.
func TestClusterNodeKillSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("node-kill soak is a nightly test")
	}
	for _, kind := range testbed.Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			clusterSoakOne(t, kind, enginetest.BaseSeed())
		})
	}
}

const (
	clusterSoakShards  = 2
	clusterSoakNodes   = 3
	clusterSoakKeys    = 180
	clusterSoakWorkers = 6
)

func clusterSoakOne(t *testing.T, kind testbed.EngineKind, seed int64) {
	c := startCluster(t, kind, Config{
		Shards: clusterSoakShards, Nodes: clusterSoakNodes, Seed: seed,
		HeartbeatEvery: 10 * time.Millisecond,
		Lease:          80 * time.Millisecond,
		Options:        core.Options{GroupCommitSize: 4},
	})
	r := c.Router(netclient.Config{
		Conns:     2,
		Seed:      seed,
		RetryMax:  30,
		RetryBase: time.Millisecond,
		RetryCap:  50 * time.Millisecond,
	})
	defer r.Close()
	ctx := context.Background()

	// The kill fires once a third of the schedule has acked: whoever is
	// shard 0's primary at that moment dies abruptly.
	var acked atomic.Int64
	var killOnce sync.Once
	killTrigger := make(chan struct{})
	victimCh := make(chan *Node, 1)
	go func() {
		<-killTrigger
		victim := c.nodeByAddr(c.Coord.Map().Shards[0].Primary)
		victim.Kill()
		victimCh <- victim
	}()

	var wg sync.WaitGroup
	workerErr := make(chan error, clusterSoakWorkers)
	for w := 0; w < clusterSoakWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for key := uint64(w); key < clusterSoakKeys; key += clusterSoakWorkers {
				if err := clusterSoakPut(ctx, r, key); err != nil {
					workerErr <- fmt.Errorf("key %d: %w", key, err)
					return
				}
				if n := acked.Add(1); n == clusterSoakKeys/3 {
					killOnce.Do(func() { close(killTrigger) })
				}
			}
		}(w)
	}
	wg.Wait()
	close(workerErr)
	for err := range workerErr {
		t.Fatal(err)
	}
	killOnce.Do(func() { close(killTrigger) }) // tiny schedules: kill anyway
	victim := <-victimCh

	// Wait for the heal: every shard routed to a live primary AND a live
	// re-seeded backup, none of them the victim.
	deadline := time.Now().Add(30 * time.Second)
	var m *wire.ShardMap
	for {
		m = c.Coord.Map()
		healed := true
		for _, route := range m.Shards {
			if route.Primary == "" || route.Backup == "" ||
				route.Primary == victim.addr || route.Backup == victim.addr {
				healed = false
			}
		}
		if healed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not heal after the kill: %+v", m.Shards)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Zero acked-commit loss over the wire: every key of the schedule is
	// readable through the router with its exact row.
	for key := uint64(0); key < clusterSoakKeys; key++ {
		resp, err := r.DoRetry(ctx, &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: key})
		if err != nil {
			t.Fatalf("get %d after heal: %v", key, err)
		}
		if resp.Status != wire.StatusOK || !resp.Found {
			t.Fatalf("acked key %d missing after failover: %v found=%v (%s)", key, resp.Status, resp.Found, resp.Msg)
		}
		if resp.Row[1].I != int64(key)*3+1 {
			t.Fatalf("acked key %d corrupted: %+v", key, resp.Row)
		}
	}

	// In-process oracle: the same schedule applied to a plain testbed DB,
	// keys placed by the same shard hash. Replication, the kill, the
	// failover and the re-seed must all be invisible in the final state.
	ref, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: clusterSoakShards,
		Env:        core.EnvConfig{DeviceSize: 32 << 20},
		Options:    core.Options{GroupCommitSize: 1},
		Schemas:    schemas(),
	})
	if err != nil {
		t.Fatal(err)
	}
	perPart := make([][]testbed.Txn, clusterSoakShards)
	for key := uint64(0); key < clusterSoakKeys; key++ {
		key := key
		s := wire.ShardOf(key, clusterSoakShards)
		perPart[s] = append(perPart[s], func(e core.Engine) error {
			return e.Insert("t", key, testRow(key))
		})
	}
	if _, err := ref.ExecuteSequential(perPart); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	oracle := make([][32]byte, clusterSoakShards)
	for s := 0; s < clusterSoakShards; s++ {
		if oracle[s], err = ref.PartitionDigest(s); err != nil {
			t.Fatal(err)
		}
	}

	// Per-shard digest equality: primary == backup == oracle.
	for s, route := range m.Shards {
		p, b := c.nodeByAddr(route.Primary), c.nodeByAddr(route.Backup)
		wantShardDigestEqual(t, s, p, b)
		dp, err := p.DB().PartitionDigest(s)
		if err != nil {
			t.Fatal(err)
		}
		if dp != oracle[s] {
			t.Fatalf("shard %d diverged from the in-process oracle:\n  cluster %x\n  oracle  %x", s, dp[:8], oracle[s][:8])
		}
	}

	// Power-cycle drill on the promoted node: shut the cluster down
	// gracefully (the t.Cleanup close is idempotent), cut power to the node
	// that took over shard 0, recover it, and its shards must still match
	// the oracle — the replicated acks were also locally durable.
	promoted := c.nodeByAddr(m.Shards[0].Primary)
	c.Close()
	promoted.DB().Crash()
	if _, err := promoted.DB().Recover(); err != nil {
		t.Fatalf("promoted node recovery: %v", err)
	}
	for s, route := range m.Shards {
		if route.Primary != promoted.addr && route.Backup != promoted.addr {
			continue
		}
		d, err := promoted.DB().PartitionDigest(s)
		if err != nil {
			t.Fatal(err)
		}
		if d != oracle[s] {
			t.Fatalf("shard %d on the promoted node lost state across a power cycle:\n  recovered %x\n  oracle    %x", s, d[:8], oracle[s][:8])
		}
	}
	t.Logf("%s: %d keys acked through a node kill; victim=%s promoted=%s epoch=%d",
		kind, clusterSoakKeys, victim.name, promoted.name, m.Shards[0].Epoch)
}

// clusterSoakPut lands one unique-key insert definitively through the
// router: it loops until the insert is acked, treating KeyExists on a retry
// as the ack a killed primary swallowed. Transport errors (including a whole
// failover blackout) are retried; any other terminal status fails the soak.
func clusterSoakPut(ctx context.Context, r *netclient.Router, key uint64) error {
	var last error
	for round := 0; round < 60; round++ {
		resp, err := r.DoRetry(ctx, putReq(key))
		if err != nil {
			last = err // blackout mid-failover: back off and go again
			time.Sleep(10 * time.Millisecond)
			continue
		}
		switch resp.Status {
		case wire.StatusOK, wire.StatusKeyExists:
			return nil
		default:
			return &wire.StatusError{Status: resp.Status, Msg: resp.Msg}
		}
	}
	return fmt.Errorf("never acked: %w", last)
}

// TestClusterCoordKillSoak is the consensus register's reason to exist: the
// coordinator itself dies at the worst moments. Per engine: concurrent
// unique-key inserts, then shard 0's primary is SIGKILLed and the
// coordinator is killed right behind it — BEFORE the lease expires, so the
// failover hasn't started. A standby coordinator must win the register at a
// higher ballot, adopt the last chosen map, detect the dead node and run the
// whole failover itself. If the standby's re-seed window is observed open
// (Reseeding=true in the map), the standby is killed too — mid-re-seed —
// and a third coordinator takes over, reopening the window it now owns.
//
// Acceptance: the final map is healed (live primary AND backup per shard,
// no Reseeding flags), every live node learned the same map version (the
// quorum converged), zero acked-commit loss through the whole circus, and
// per-shard digests equal primary == backup == in-process oracle.
func TestClusterCoordKillSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("coordinator-kill soak is a nightly test")
	}
	for _, kind := range testbed.Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			coordKillSoakOne(t, kind, enginetest.BaseSeed())
		})
	}
}

func coordKillSoakOne(t *testing.T, kind testbed.EngineKind, seed int64) {
	c := startCluster(t, kind, Config{
		Shards: clusterSoakShards, Nodes: clusterSoakNodes, Seed: seed,
		HeartbeatEvery: 10 * time.Millisecond,
		Lease:          80 * time.Millisecond,
		Options:        core.Options{GroupCommitSize: 4},
	})
	r := c.Router(netclient.Config{
		Conns:     2,
		Seed:      seed,
		RetryMax:  40,
		RetryBase: time.Millisecond,
		RetryCap:  50 * time.Millisecond,
	})
	defer r.Close()
	ctx := context.Background()

	var acked atomic.Int64
	var killOnce sync.Once
	killTrigger := make(chan struct{})
	victimCh := make(chan *Node, 1)
	chaosErr := make(chan error, 1)
	go func() {
		<-killTrigger
		victim := c.nodeByAddr(c.Coordinator().Map().Shards[0].Primary)
		victim.Kill()
		// Mid-failover: the lease (80ms) has not expired; the coordinator
		// dies knowing nothing. The standby must discover the dead node.
		c.KillCoordinator()
		time.Sleep(20 * time.Millisecond)
		if _, err := c.StartStandbyCoordinator(); err != nil {
			chaosErr <- fmt.Errorf("standby takeover: %w", err)
			victimCh <- victim
			return
		}
		// Mid-re-seed: the moment a re-seed window is open in the map, kill
		// the standby too and hand over to a third coordinator. If the heal
		// outruns the poll, the takeover is exercised on a quiet map — still
		// a valid (if easier) handover.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			m := c.Coordinator().Map()
			reseeding := false
			for _, route := range m.Shards {
				if route.Reseeding {
					reseeding = true
				}
			}
			if reseeding {
				break
			}
			time.Sleep(time.Millisecond)
		}
		c.KillCoordinator()
		if _, err := c.StartStandbyCoordinator(); err != nil {
			chaosErr <- fmt.Errorf("second standby takeover: %w", err)
		}
		victimCh <- victim
	}()

	var wg sync.WaitGroup
	workerErr := make(chan error, clusterSoakWorkers)
	for w := 0; w < clusterSoakWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for key := uint64(w); key < clusterSoakKeys; key += clusterSoakWorkers {
				if err := clusterSoakPut(ctx, r, key); err != nil {
					workerErr <- fmt.Errorf("key %d: %w", key, err)
					return
				}
				if n := acked.Add(1); n == clusterSoakKeys/3 {
					killOnce.Do(func() { close(killTrigger) })
				}
			}
		}(w)
	}
	wg.Wait()
	close(workerErr)
	for err := range workerErr {
		t.Fatal(err)
	}
	killOnce.Do(func() { close(killTrigger) })
	victim := <-victimCh
	select {
	case err := <-chaosErr:
		t.Fatal(err)
	default:
	}

	// Heal: live primary and re-seeded backup per shard, all windows closed.
	deadline := time.Now().Add(30 * time.Second)
	var m *wire.ShardMap
	for {
		m = c.Coordinator().Map()
		healed := true
		for _, route := range m.Shards {
			if route.Primary == "" || route.Backup == "" || route.Reseeding ||
				route.Primary == victim.addr || route.Backup == victim.addr {
				healed = false
			}
		}
		if healed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not heal after coordinator kills: %+v", m.Shards)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Quorum convergence: every live node learned the final map version.
	for _, n := range c.Nodes {
		if n.dead.Load() {
			continue
		}
		nm := n.smap.Load()
		if nm == nil || nm.Version < m.Version {
			t.Fatalf("node %s stuck at map version %v, coordinator at %d",
				n.name, nm, m.Version)
		}
	}

	// Zero acked-commit loss across two coordinator deaths.
	for key := uint64(0); key < clusterSoakKeys; key++ {
		resp, err := r.DoRetry(ctx, &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: key})
		if err != nil {
			t.Fatalf("get %d after heal: %v", key, err)
		}
		if resp.Status != wire.StatusOK || !resp.Found {
			t.Fatalf("acked key %d missing: %v found=%v (%s)", key, resp.Status, resp.Found, resp.Msg)
		}
	}

	// Oracle comparison, same as the node-kill soak.
	ref, err := testbed.New(testbed.Config{
		Engine:     kind,
		Partitions: clusterSoakShards,
		Env:        core.EnvConfig{DeviceSize: 32 << 20},
		Options:    core.Options{GroupCommitSize: 1},
		Schemas:    schemas(),
	})
	if err != nil {
		t.Fatal(err)
	}
	perPart := make([][]testbed.Txn, clusterSoakShards)
	for key := uint64(0); key < clusterSoakKeys; key++ {
		key := key
		s := wire.ShardOf(key, clusterSoakShards)
		perPart[s] = append(perPart[s], func(e core.Engine) error {
			return e.Insert("t", key, testRow(key))
		})
	}
	if _, err := ref.ExecuteSequential(perPart); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	for s, route := range m.Shards {
		p, b := c.nodeByAddr(route.Primary), c.nodeByAddr(route.Backup)
		wantShardDigestEqual(t, s, p, b)
		oracle, err := ref.PartitionDigest(s)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := p.DB().PartitionDigest(s)
		if err != nil {
			t.Fatal(err)
		}
		if dp != oracle {
			t.Fatalf("shard %d diverged from the oracle after coordinator kills:\n  cluster %x\n  oracle  %x",
				s, dp[:8], oracle[:8])
		}
	}
	t.Logf("%s: %d keys acked through a node kill + two coordinator kills; final map v%d epoch=%d",
		kind, clusterSoakKeys, m.Version, m.Shards[0].Epoch)
}
