package cluster

import (
	"testing"
	"time"

	"nstore/internal/testbed"
	"nstore/internal/wire"
)

// TestSetMapReseedingWindow pins the map-push/enrollment race fixed by
// ShardRoute.Reseeding. A re-seed enrolls the spare as backup (SnapDone on
// the node) BEFORE the coordinator can record it in the map, and other
// shards' failover installs run concurrently — so a map listing Backup=""
// for a shard mid-re-seed is stale about enrollment, not authoritative.
// Without the flag, SetMap demoted the freshly enrolled backup and stripped
// s.backup off the primary; every later write was then acked unreplicated
// behind a map claiming a live backup, with a tail nobody would ever drain.
func TestSetMapReseedingWindow(t *testing.T) {
	c := startCluster(t, testbed.InP, Config{
		Shards: 1, Nodes: 2, Seed: 21,
		// Keep the coordinator's lease checker from interfering: this test
		// drives SetMap by hand.
		HeartbeatEvery: time.Hour, Lease: 24 * time.Hour,
	})
	m := c.Coord.Map()
	primary := c.nodeByAddr(m.Shards[0].Primary)
	backup := c.nodeByAddr(m.Shards[0].Backup)

	role := func(n *Node) int32 {
		s := n.shards[0]
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.role
	}
	backupAddr := func(n *Node) string {
		s := n.shards[0]
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.backup
	}

	// A mid-window map: this shard's backup is not listed (the enrollment
	// has not been recorded yet) but the window is marked open. Neither the
	// enrolled backup's role nor the primary's shipping target may change.
	window := &wire.ShardMap{Version: m.Version + 1, Shards: []wire.ShardRoute{
		{Epoch: 1, Primary: primary.addr, Backup: "", Reseeding: true},
	}}
	backup.SetMap(window)
	primary.SetMap(window)
	if got := role(backup); got != roleBackup {
		t.Fatalf("mid-window map demoted the enrolled backup: role=%s", roleName(got))
	}
	if got := backupAddr(primary); got != backup.addr {
		t.Fatalf("mid-window map detached the primary's backup: %q", got)
	}

	// The closing install with the backup genuinely gone must still fence:
	// the flag suppresses only the window, not the fencing machinery.
	closed := &wire.ShardMap{Version: m.Version + 2, Shards: []wire.ShardRoute{
		{Epoch: 1, Primary: primary.addr, Backup: ""},
	}}
	backup.SetMap(closed)
	primary.SetMap(closed)
	if got := role(backup); got != roleNone {
		t.Fatalf("closing map did not fence the dropped backup: role=%s", roleName(got))
	}
	if got := backupAddr(primary); got != "" {
		t.Fatalf("closing map did not detach the primary's backup: %q", got)
	}
}
