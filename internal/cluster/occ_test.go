package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"nstore/internal/engine/enginetest"
	"nstore/internal/netclient"
	"nstore/internal/serve"
	"nstore/internal/testbed"
	"nstore/internal/wire"
)

// TestClusterOCCWriters is the cluster-mode leg of the OCC acceptance: each
// node serves its shards with two optimistic write executors, concurrent
// clients write through the router while a backup dies and fails over, and
// at the end every acked key must be readable and primary/backup digest
// equality must hold per shard. The replication contract is unchanged by
// OCC — an ack still means local durability barrier AND backup REPL_ACK —
// so zero acked-commit loss is the pass condition.
func TestClusterOCCWriters(t *testing.T) {
	seed := enginetest.BaseSeed() + 13
	c := startCluster(t, testbed.NVMInP, Config{
		Shards: 2, Nodes: 3, Seed: seed,
		Serve: serve.Config{Writers: 2, Seed: seed},
	})
	r := c.Router(netclient.Config{Seed: seed, RetryMax: 30, RetryCap: 100 * time.Millisecond})
	defer r.Close()
	ctx := context.Background()

	const clients = 4
	nKeys := 60
	if testing.Short() {
		nKeys = 25
	}
	var mu sync.Mutex
	acked := make(map[uint64]bool)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < nKeys; i++ {
				k := uint64(cl*nKeys + i)
				resp, err := r.DoRetry(ctx, putReq(k))
				if err != nil {
					t.Errorf("put %d: %v", k, err)
					return
				}
				if resp.Status == wire.StatusOK || resp.Status == wire.StatusKeyExists {
					mu.Lock()
					acked[k] = true
					mu.Unlock()
				}
			}
		}(cl)
	}

	// Mid-traffic: kill shard 0's backup; the coordinator drops it and
	// re-seeds a replacement while the OCC writers keep serving.
	time.Sleep(20 * time.Millisecond)
	m0 := c.Coord.Map()
	victim := c.nodeByAddr(m0.Shards[0].Backup)
	victim.Kill()
	c.Coord.MarkDead(victim.addr)

	wg.Wait()
	if len(acked) == 0 {
		t.Fatal("nothing acked across the whole run")
	}

	// Wait for the replacement backup so digest comparison has a target.
	deadline := time.Now().Add(10 * time.Second)
	var m *wire.ShardMap
	for {
		m = c.Coord.Map()
		healed := true
		for _, route := range m.Shards {
			if route.Primary == "" || route.Backup == "" || route.Backup == victim.addr {
				healed = false
			}
		}
		if healed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not heal: %+v", m.Shards)
		}
		time.Sleep(10 * time.Millisecond)
	}

	for k := range acked {
		resp, err := r.DoRetry(ctx, &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: k})
		if err != nil || resp.Status != wire.StatusOK || !resp.Found {
			t.Fatalf("acked key %d unreadable after failover: err=%v resp=%+v", k, err, resp)
		}
	}
	for s, route := range m.Shards {
		wantShardDigestEqual(t, s, c.nodeByAddr(route.Primary), c.nodeByAddr(route.Backup))
	}
}
