package cluster

import (
	"context"
	"testing"
	"time"

	"nstore/internal/core"
	"nstore/internal/netclient"
	"nstore/internal/testbed"
	"nstore/internal/txn2pc"
	"nstore/internal/wire"
)

// txnSchemas is the test schema plus the hidden 2PC bookkeeping tables —
// what a cluster must carry to accept cross-shard transactions.
func txnSchemas() []*core.Schema { return txn2pc.AugmentSchemas(schemas()) }

func rmwAdd(key uint64, delta int64) wire.Request {
	return wire.Request{Part: -1, Op: wire.OpRmw, Table: "t", Key: key,
		Cols: []wire.RmwCol{{Col: 1, Add: true, Val: core.IntVal(delta)}}}
}

func getVia(t *testing.T, r *netclient.Router, key uint64) (found bool, row []core.Value) {
	t.Helper()
	resp, err := r.DoRetry(context.Background(), &wire.Request{Part: -1, Op: wire.OpGet, Table: "t", Key: key})
	if err != nil {
		t.Fatalf("get %d: %v", key, err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("get %d: %v (%s)", key, resp.Status, resp.Msg)
	}
	return resp.Found, resp.Row
}

// TestClusterCrossShardTxn drives committed and aborted cross-shard
// transactions end to end through the router: puts, RMWs and deletes
// spanning three shards land atomically; a prewrite validation failure on
// any shard aborts the whole frame with nothing applied anywhere; and every
// shard pair stays digest-identical (locks and status records are protocol
// state, excluded from digests).
func TestClusterCrossShardTxn(t *testing.T) {
	c := startCluster(t, testbed.CoW, Config{Shards: 3, Nodes: 4, Seed: 11, Schemas: txnSchemas()})
	r := c.Router(netclient.Config{Seed: 11, RetryMax: 8})
	defer r.Close()
	ctx := context.Background()

	ka := keysForShard(0, 3, 2, 0)
	kb := keysForShard(1, 3, 2, 0)
	kc := keysForShard(2, 3, 2, 0)

	// Three puts, three shards, one transaction.
	resp, err := r.DoTxn(ctx, []wire.Request{*putReq(ka[0]), *putReq(kb[0]), *putReq(kc[0])})
	if err != nil {
		t.Fatalf("cross-shard txn: %v", err)
	}
	if resp.Status != wire.StatusOK || resp.TxnState != wire.TxnCommitted {
		t.Fatalf("cross-shard txn: %v state=%d (%s)", resp.Status, resp.TxnState, resp.Msg)
	}
	for _, k := range []uint64{ka[0], kb[0], kc[0]} {
		if found, _ := getVia(t, r, k); !found {
			t.Fatalf("key %d missing after committed cross-shard txn", k)
		}
	}

	// RMW + delete + put in one frame; the RMW pre-image comes back in Subs.
	resp, err = r.DoTxn(ctx, []wire.Request{
		rmwAdd(ka[0], 5),
		{Part: -1, Op: wire.OpDelete, Table: "t", Key: kb[0]},
		*putReq(kc[1]),
	})
	if err != nil {
		t.Fatalf("mixed txn: %v", err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("mixed txn: %v (%s)", resp.Status, resp.Msg)
	}
	if len(resp.Subs) != 3 || !resp.Subs[0].Found {
		t.Fatalf("mixed txn: want RMW pre-image in Subs[0], got %+v", resp.Subs)
	}
	wantN := int64(ka[0])*3 + 1 + 5
	if found, row := getVia(t, r, ka[0]); !found || row[1].I != wantN {
		t.Fatalf("rmw result: found=%v n=%d want %d", found, row[1].I, wantN)
	}
	if found, _ := getVia(t, r, kb[0]); found {
		t.Fatalf("key %d survived a committed cross-shard delete", kb[0])
	}
	if found, _ := getVia(t, r, kc[1]); !found {
		t.Fatalf("key %d missing after committed cross-shard txn", kc[1])
	}

	// Atomic abort: ka[0] exists, so the put's prewrite fails KeyExists on
	// shard 0 — the fresh key on shard 1 must not appear.
	resp, err = r.DoTxn(ctx, []wire.Request{*putReq(ka[0]), *putReq(kb[1])})
	if err != nil {
		t.Fatalf("conflicting txn: %v", err)
	}
	if resp.Status != wire.StatusKeyExists || resp.TxnState != wire.TxnAborted {
		t.Fatalf("conflicting txn: %v state=%d, want KeyExists/aborted", resp.Status, resp.TxnState)
	}
	if found, _ := getVia(t, r, kb[1]); found {
		t.Fatalf("key %d leaked from an aborted cross-shard txn", kb[1])
	}

	// Replication saw every 2PC op in order: primary and backup digests
	// match per shard.
	m := c.Coord.Map()
	for s, route := range m.Shards {
		wantShardDigestEqual(t, s, c.nodeByAddr(route.Primary), c.nodeByAddr(route.Backup))
	}
}

// TestClusterLockResolution simulates a client that crashed mid-2PC and
// asserts readers resolve its locks the same direction the primary record
// decided: pending-undecided rolls BACK (abort fence), committed-primary
// rolls FORWARD (the secondary applies the buffered write).
func TestClusterLockResolution(t *testing.T) {
	c := startCluster(t, testbed.NVMInP, Config{Shards: 2, Nodes: 3, Seed: 12, Schemas: txnSchemas()})
	r := c.Router(netclient.Config{Seed: 12, RetryMax: 10})
	defer r.Close()
	ctx := context.Background()

	ka := keysForShard(0, 2, 2, 100)
	kb := keysForShard(1, 2, 2, 100)

	// Crash before commit: prewrite both shards, then vanish. The first
	// reader hits the lock, forces resolution through the primary (no
	// decision record -> abort fence), and sees clean state.
	prewrite := func(txn uint64, priKey uint64, priShard int32, shard int32, keys ...uint64) {
		t.Helper()
		ops := make([]wire.Request, len(keys))
		for i, k := range keys {
			ops[i] = *putReq(k)
			ops[i].Part = -1
		}
		resp, err := r.DoRetry(ctx, &wire.Request{
			Op: wire.OpTxnPrewrite, Part: shard, Table: "t", Key: priKey,
			Txn: txn, PriShard: priShard, Ops: ops,
		})
		if err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("prewrite txn %d shard %d: %v %v", txn, shard, err, resp)
		}
	}
	prewrite(501, ka[0], 0, 0, ka[0])
	prewrite(501, ka[0], 0, 1, kb[0])
	if found, _ := getVia(t, r, kb[0]); found {
		t.Fatalf("key %d visible while only prewritten", kb[0])
	}
	// The get above already forced resolution; the abandoned txn must now
	// be fenced aborted — a late commit attempt has to fail.
	resp, err := r.DoRetry(ctx, &wire.Request{
		Op: wire.OpTxnCommit, Part: 0, Txn: 501, Phase: 1,
		Locks: []wire.LockRef{{Table: "t", Key: ka[0]}},
	})
	if err != nil {
		t.Fatalf("late commit: %v", err)
	}
	if resp.Status != wire.StatusAborted {
		t.Fatalf("late commit after forced rollback: %v (%s), want StatusAborted", resp.Status, resp.Msg)
	}
	if found, _ := getVia(t, r, ka[0]); found {
		t.Fatalf("key %d leaked from rolled-back txn", ka[0])
	}

	// Crash after the commit point: prewrite both shards, commit ONLY the
	// primary, then vanish. The reader on the secondary must roll the lock
	// forward and see the committed value.
	prewrite(502, ka[1], 0, 0, ka[1])
	prewrite(502, ka[1], 0, 1, kb[1])
	resp, err = r.DoRetry(ctx, &wire.Request{
		Op: wire.OpTxnCommit, Part: 0, Txn: 502, Phase: 1,
		Locks: []wire.LockRef{{Table: "t", Key: ka[1]}},
	})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("primary commit: %v %v", err, resp)
	}
	if found, _ := getVia(t, r, kb[1]); !found {
		t.Fatalf("key %d not rolled forward after primary commit", kb[1])
	}
	if found, _ := getVia(t, r, ka[1]); !found {
		t.Fatalf("key %d missing on primary shard after commit", ka[1])
	}
}

// TestClusterTxnLockSurvivesFailover is the reason locks ride REPL_APPEND:
// prewrite two shards, commit the primary, kill the secondary shard's
// primary node before roll-forward. The promoted backup must hold the
// replicated lock AND the buffered write, so the next reader still resolves
// the transaction forward — zero acked-commit loss across failover.
func TestClusterTxnLockSurvivesFailover(t *testing.T) {
	c := startCluster(t, testbed.NVMCoW, Config{
		Shards: 2, Nodes: 3, Seed: 13, Schemas: txnSchemas(),
		HeartbeatEvery: 10 * time.Millisecond, Lease: 80 * time.Millisecond,
	})
	r := c.Router(netclient.Config{Seed: 13, RetryMax: 30, RetryCap: 100 * time.Millisecond})
	defer r.Close()
	ctx := context.Background()

	ka := keysForShard(0, 2, 1, 300)
	kb := keysForShard(1, 2, 1, 300)

	pw := func(shard int32, key uint64) {
		t.Helper()
		op := *putReq(key)
		resp, err := r.DoRetry(ctx, &wire.Request{
			Op: wire.OpTxnPrewrite, Part: shard, Table: "t", Key: ka[0],
			Txn: 601, PriShard: 0, Ops: []wire.Request{op},
		})
		if err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("prewrite shard %d: %v %v", shard, err, resp)
		}
	}
	pw(0, ka[0])
	pw(1, kb[0])
	resp, err := r.DoRetry(ctx, &wire.Request{
		Op: wire.OpTxnCommit, Part: 0, Txn: 601, Phase: 1,
		Locks: []wire.LockRef{{Table: "t", Key: ka[0]}},
	})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("primary commit: %v %v", err, resp)
	}

	// Kill shard 1's primary before anyone rolls the secondary forward.
	m0 := c.Coord.Map()
	victim := c.nodeByAddr(m0.Shards[1].Primary)
	victim.Kill()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := c.Coord.Map()
		if m.Shards[1].Primary != victim.addr && m.Shards[1].Primary != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no failover for shard 1 within deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The promoted backup holds the replicated lock; the read resolves it
	// forward through the (committed) primary record on shard 0.
	if found, row := getVia(t, r, kb[0]); !found || row[0].I != int64(kb[0]) {
		t.Fatalf("acked cross-shard commit lost key %d across failover (found=%v)", kb[0], found)
	}
}
