package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nstore/internal/wire"
)

// The shard map is replicated through a single-decree consensus register
// spread across every node: a coordinator is just the current proposer, and
// a map version is installed only after a majority of acceptors stored it.
// That moves placement truth out of the coordinator process — when it dies
// mid-failover, a standby wins the register at a higher ballot, adopts the
// highest accepted map, and finishes the job. The register is ballot-ordered
// in the classic way (prepare promises fence lower ballots; accept stores
// the pair; learn installs) with one simplification: successive installs
// reuse the leader's prepared ballot and rely on epoch-monotonic map
// versions, so a full prepare round happens only at leadership changes.
//
// The replication protocol never trusts this blindly: shard epochs still
// fence deposed primaries even if two coordinators were to both believe
// they lead (DESIGN.md §11). Consensus here protects placement decisions,
// not data.

// acceptor is one node's slice of the map consensus register.
type acceptor struct {
	mu        sync.Mutex
	promised  uint64         // highest ballot promised to a proposer
	accBallot uint64         // ballot of the highest accepted proposal
	accMap    *wire.ShardMap // value of the highest accepted proposal
}

// prepareMap is the acceptor's phase-1 handler. A ballot at or below the
// current promise is rejected (the promised ballot comes back so the
// proposer can outbid it); otherwise the node promises to ignore lower
// ballots and reports its highest accepted (ballot, map) pair, which the
// new leader must adopt.
func (n *Node) prepareMap(ballot uint64) (accBallot uint64, accMap *wire.ShardMap, promised uint64, ok bool) {
	if n.dead.Load() {
		return 0, nil, 0, false
	}
	a := &n.acc
	a.mu.Lock()
	defer a.mu.Unlock()
	if ballot <= a.promised {
		return 0, nil, a.promised, false
	}
	a.promised = ballot
	if a.accMap != nil {
		return a.accBallot, a.accMap.Clone(), ballot, true
	}
	return 0, nil, ballot, true
}

// acceptMap is the acceptor's phase-2 handler: store the pair unless a newer
// proposer holds the promise.
func (n *Node) acceptMap(ballot uint64, m *wire.ShardMap) (promised uint64, ok bool) {
	if n.dead.Load() {
		return 0, false
	}
	a := &n.acc
	a.mu.Lock()
	defer a.mu.Unlock()
	if ballot < a.promised {
		return a.promised, false
	}
	a.promised = ballot
	a.accBallot = ballot
	a.accMap = m.Clone()
	return ballot, true
}

// learnMap installs a chosen map, version-monotonically: a replayed or
// reordered learn can never roll routing back.
func (n *Node) learnMap(m *wire.ShardMap) {
	if n.dead.Load() {
		return
	}
	if cur := n.smap.Load(); cur != nil && m.Version <= cur.Version {
		return
	}
	n.SetMap(m)
}

// handleConsensus serves the wire-protocol face of the acceptor, so external
// proposers (and the drills) speak the same protocol the in-process
// coordinator does, and a router can learn the map from any acceptor.
func (n *Node) handleConsensus(req *wire.Request, resp *wire.Response) {
	switch req.Op {
	case wire.OpMapPrepare:
		ab, am, promised, ok := n.prepareMap(req.Epoch)
		if !ok {
			resp.Status = wire.StatusStaleEpoch
			resp.Epoch = promised
			resp.Msg = fmt.Sprintf("ballot %d <= promised %d", req.Epoch, promised)
			return
		}
		// A promise with an accepted pair encodes as respCons; a virgin
		// promise is a bare OK.
		resp.Epoch, resp.Map = ab, am
	case wire.OpMapAccept:
		promised, ok := n.acceptMap(req.Epoch, req.Map)
		if !ok {
			resp.Status = wire.StatusStaleEpoch
			resp.Epoch = promised
			resp.Msg = fmt.Sprintf("ballot %d < promised %d", req.Epoch, promised)
		}
	case wire.OpMapLearn:
		n.learnMap(req.Map)
	}
}

// lead runs the prepare phase until a majority of acceptors promise this
// coordinator's ballot, outbidding whatever ballot rejections report.
// Returns the highest accepted map among the promises (nil if the register
// is virgin) — the value a correct leader MUST adopt before proposing
// anything of its own. Fails only if no majority of acceptors is alive.
func (co *Coordinator) lead() (*wire.ShardMap, error) {
	ballot := co.ballot + 1
	for attempt := 0; attempt < 64; attempt++ {
		promises := 0
		var bestBallot, maxPromised uint64
		var best *wire.ShardMap
		for _, n := range co.c.Nodes {
			ab, am, promised, ok := n.prepareMap(ballot)
			if !ok {
				if promised > maxPromised {
					maxPromised = promised
				}
				continue
			}
			promises++
			if am != nil && ab >= bestBallot {
				bestBallot, best = ab, am
			}
		}
		if promises*2 > len(co.c.Nodes) {
			co.ballot = ballot
			return best, nil
		}
		if maxPromised < ballot {
			// Not a ballot race: a majority of acceptors is simply gone.
			return nil, errors.New("cluster: no acceptor quorum for map consensus")
		}
		ballot = maxPromised + 1
	}
	return nil, errors.New("cluster: map consensus prepare livelock")
}

// proposeLocked replicates m as the register's value at this coordinator's
// ballot: majority accept, then learn everywhere. Returns false without
// installing anything if the quorum is gone or — the fencing case — a newer
// proposer owns the register, which marks this coordinator deposed for good.
//
// The quorum is a majority of the coordinator's current membership view
// (nodes its lease checker still holds live), not of the configured node
// count: a 2-node cluster must still install the map that drops its dead
// backup. A production system would instead run membership changes through
// the register itself; the lease view is the repro-scale stand-in. Leader
// election (lead) still demands a majority of ALL nodes, so two standbys
// cannot both win with disjoint views. Caller holds co.mu.
func (co *Coordinator) proposeLocked(m *wire.ShardMap) bool {
	if co.deposed {
		return false
	}
	acks, alive := 0, 0
	for _, n := range co.c.Nodes {
		if !co.dead[n.addr] {
			alive++
		}
		promised, ok := n.acceptMap(co.ballot, m)
		if !ok && promised > co.ballot {
			co.deposed = true
			return false
		}
		if ok {
			acks++
		}
	}
	if acks*2 <= alive {
		return false
	}
	for _, n := range co.c.Nodes {
		n.learnMap(m)
	}
	return true
}

// KillCoordinator abandons the current coordinator abruptly — the process
// crash stand-in. Its lease loop stops, every later action it would take
// no-ops (deposed), and in-flight re-seed goroutines it started may still
// run to completion but can no longer install map versions. Placement
// decisions stall until StartStandbyCoordinator.
func (c *Cluster) KillCoordinator() {
	co := c.Coordinator()
	co.stopOnce.Do(func() { close(co.stop) })
	co.mu.Lock()
	co.deposed = true
	co.mu.Unlock()
}

// StartStandbyCoordinator brings up a replacement coordinator, the recovery
// path the consensus register exists for: it wins the register at a higher
// ballot (fencing every install the dead coordinator might still attempt),
// adopts the highest accepted map, reopens any re-seed window left hanging,
// re-installs, and re-runs failover for every node that is dead right now —
// completing whatever the old coordinator died in the middle of.
func (c *Cluster) StartStandbyCoordinator() (*Coordinator, error) {
	old := c.Coordinator()
	co := newCoordinator(c)
	co.ballot = old.currentBallot() // start the bidding where the old leader left it
	adopted, err := co.lead()
	if err != nil {
		return nil, err
	}
	if adopted == nil {
		// Virgin register (nothing ever accepted — possible only if the old
		// coordinator died before its first install): fall back to the
		// highest learned map on any live node.
		for _, n := range c.Nodes {
			if n.dead.Load() {
				continue
			}
			if m := n.smap.Load(); m != nil && (adopted == nil || m.Version > adopted.Version) {
				adopted = m
			}
		}
	}
	if adopted == nil {
		return nil, errors.New("cluster: standby coordinator found no map to adopt")
	}
	co.mu.Lock()
	co.m = adopted.Clone()
	// A Reseeding window belongs to a re-seed goroutine of the coordinator
	// that opened it. If that coordinator is dead, nothing will ever publish
	// the closing install, and SetMap skips the shard's fencing forever.
	// Clear the flags: the repair scan re-seeds any shard still missing a
	// backup, opening a fresh window it actually owns.
	for i := range co.m.Shards {
		co.m.Shards[i].Reseeding = false
	}
	co.installLocked()
	now := time.Now()
	for _, n := range c.Nodes {
		if !n.dead.Load() {
			co.lastHB[n.addr] = now
		}
	}
	co.mu.Unlock()
	c.setCoordinator(co)
	co.wg.Add(1)
	go co.run()
	// Finish what the dead coordinator may have been mid-way through: any
	// node that is down right now gets the full failover treatment under
	// the new map (idempotent if the old coordinator already handled it).
	// Liveness here is the in-process stand-in for a probe RPC.
	for _, n := range c.Nodes {
		if n.dead.Load() {
			co.MarkDead(n.addr)
		}
	}
	return co, nil
}
