// Package cluster replicates shards across nodes over the wire protocol:
// hash-placed shards with a primary and a backup, primary→backup log
// shipping stitched into the ack path (a client ack requires local
// group-commit durability AND the backup's REPL_ACK), epoch fencing so a
// deposed primary can never ack again, coordinator-driven failover, and
// snapshot + log-catch-up re-seeding of replacement backups.
//
// Topology: every node runs a full testbed DB with one partition per shard;
// the shard id IS the partition index on every node that hosts it. A shard's
// primary serves clients (reads included) and ships committed batches; its
// backup applies them in sequence order and serves nobody. The coordinator
// is in-process (see Coordinator); clients route via netclient.Router.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"nstore/internal/core"
	"nstore/internal/netclient"
	"nstore/internal/netserve"
	"nstore/internal/serve"
	"nstore/internal/testbed"
	"nstore/internal/wire"
)

// Config parameterizes a cluster.
type Config struct {
	// Engine is the storage engine every node runs.
	Engine testbed.EngineKind
	// Shards is the shard count (== partitions per node). Default 2.
	Shards int
	// Nodes is the node count (default Shards+1, so a spare exists for
	// re-seeding after one failure).
	Nodes int

	// HeartbeatEvery is the node heartbeat / coordinator check interval
	// (default 25ms). Lease is how stale a heartbeat may be before the
	// node is declared dead (default 8× HeartbeatEvery).
	HeartbeatEvery time.Duration
	Lease          time.Duration
	// ReplTimeout bounds one ship→ack round trip (default 5s).
	ReplTimeout time.Duration
	// ReseedTimeout bounds a whole snapshot re-seed (default 60s).
	ReseedTimeout time.Duration
	// TailLen bounds the per-shard unacked tail ring; beyond it the oldest
	// batches drop and a returning backup needs a snapshot (default 1024).
	TailLen int

	// Seed drives every seeded component (backoff jitter, serve retries).
	Seed int64

	// Env, Options, Schemas configure each node's testbed DB.
	Env     core.EnvConfig
	Options core.Options
	Schemas []*core.Schema
	// Serve configures each node's runtime.
	Serve serve.Config
	// Net configures each node's wire server (Repl is set by Start).
	Net netserve.Config
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Nodes <= 0 {
		c.Nodes = c.Shards + 1
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 25 * time.Millisecond
	}
	if c.Lease <= 0 {
		c.Lease = 8 * c.HeartbeatEvery
	}
	if c.ReplTimeout <= 0 {
		c.ReplTimeout = 5 * time.Second
	}
	if c.ReseedTimeout <= 0 {
		c.ReseedTimeout = 60 * time.Second
	}
	if c.TailLen <= 0 {
		c.TailLen = 1024
	}
	return c
}

// peerClientConfig is the netclient config nodes use to ship to each other.
func (c Config) peerClientConfig() netclient.Config {
	return netclient.Config{
		Conns:   1,
		Timeout: c.ReplTimeout,
		Seed:    c.Seed + 7,
		// A dead peer should fail fast; the tail keeps the data safe.
		DialTimeout: c.ReplTimeout,
		MaxRedials:  3,
	}
}

// Cluster is a running set of nodes plus the coordinator.
type Cluster struct {
	cfg   Config
	Nodes []*Node
	// Coord is the current coordinator. Read it through Coordinator() in
	// any code that can run concurrently with StartStandbyCoordinator;
	// direct access is fine in tests that never replace the coordinator.
	Coord *Coordinator

	cdmu sync.RWMutex
}

// Coordinator returns the current coordinator, safely across standby
// takeover.
func (c *Cluster) Coordinator() *Coordinator {
	c.cdmu.RLock()
	defer c.cdmu.RUnlock()
	return c.Coord
}

func (c *Cluster) setCoordinator(co *Coordinator) {
	c.cdmu.Lock()
	c.Coord = co
	c.cdmu.Unlock()
}

// Start builds and starts the cluster: nodes listening on ephemeral ports,
// initial placement shard i → primary node[i%N] / backup node[(i+1)%N] at
// epoch 1, map pushed everywhere, heartbeats and the lease checker running.
func Start(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("cluster: %d nodes cannot replicate", cfg.Nodes)
	}
	c := &Cluster{cfg: cfg}
	c.Coord = newCoordinator(c)
	for i := 0; i < cfg.Nodes; i++ {
		n, err := c.startNode(fmt.Sprintf("node%d", i))
		if err != nil {
			for _, prev := range c.Nodes {
				prev.Shutdown()
			}
			return nil, err
		}
		c.Nodes = append(c.Nodes, n)
	}
	// Initial placement.
	m := &wire.ShardMap{Version: 1, Shards: make([]wire.ShardRoute, cfg.Shards)}
	for s := 0; s < cfg.Shards; s++ {
		p := c.Nodes[s%cfg.Nodes]
		b := c.Nodes[(s+1)%cfg.Nodes]
		m.Shards[s] = wire.ShardRoute{Epoch: 1, Primary: p.addr, Backup: b.addr}
		ps, bs := p.shards[s], b.shards[s]
		ps.mu.Lock()
		ps.role, ps.epoch, ps.backup = rolePrimary, 1, b.addr
		ps.mu.Unlock()
		bs.mu.Lock()
		bs.role, bs.epoch = roleBackup, 1
		bs.mu.Unlock()
	}
	// The initial map is installed through the consensus register like any
	// other: the founding coordinator wins the (virgin) register at ballot 1,
	// a majority of acceptors store the map, and every node learns it.
	if _, err := c.Coord.lead(); err != nil {
		for _, prev := range c.Nodes {
			prev.Shutdown()
		}
		return nil, err
	}
	c.Coord.mu.Lock()
	c.Coord.m = m
	c.Coord.proposeLocked(m.Clone())
	now := time.Now()
	for _, n := range c.Nodes {
		c.Coord.lastHB[n.addr] = now
	}
	c.Coord.mu.Unlock()
	for _, n := range c.Nodes {
		n.hbWG.Add(1)
		go n.heartbeatLoop()
	}
	c.Coord.wg.Add(1)
	go c.Coord.run()
	return c, nil
}

func (c *Cluster) startNode(name string) (*Node, error) {
	db, err := testbed.New(testbed.Config{
		Engine:     c.cfg.Engine,
		Partitions: c.cfg.Shards,
		Env:        c.cfg.Env,
		Options:    c.cfg.Options,
		Schemas:    c.cfg.Schemas,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", name, err)
	}
	rt := serve.New(db, c.cfg.Serve)
	n := &Node{
		name:    name,
		cl:      c,
		db:      db,
		rt:      rt,
		stopHB:  make(chan struct{}),
		clients: make(map[string]*netclient.Client),
	}
	n.shards = make([]*shardState, c.cfg.Shards)
	for i := range n.shards {
		n.shards[i] = &shardState{}
	}
	ncfg := c.cfg.Net
	ncfg.Repl = n
	srv, err := netserve.New(rt, "127.0.0.1:0", ncfg)
	if err != nil {
		rt.Close()
		return nil, fmt.Errorf("cluster: %s: %w", name, err)
	}
	n.srv = srv
	n.addr = srv.Addr()
	n.buildMetrics()
	rt.AddHealth(n)
	return n, nil
}

// nodeByAddr resolves a node handle (nil if unknown).
func (c *Cluster) nodeByAddr(addr string) *Node {
	for _, n := range c.Nodes {
		if n.addr == addr {
			return n
		}
	}
	return nil
}

// Addrs lists every node's wire address (router seeds).
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.addr
	}
	return out
}

// Router builds a shard-routing client over the cluster.
func (c *Cluster) Router(ccfg netclient.Config) *netclient.Router {
	return netclient.NewRouter(c.Addrs(), ccfg)
}

// Close shuts the coordinator and every node down gracefully (killed nodes
// are skipped past their dead flag; their runtimes still close so files
// release).
func (c *Cluster) Close() {
	c.Coordinator().close()
	for _, n := range c.Nodes {
		n.Shutdown()
	}
}
