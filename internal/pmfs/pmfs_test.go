package pmfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"nstore/internal/nvm"
)

func newFS(t testing.TB, size int64) (*nvm.Device, *FS) {
	t.Helper()
	dev := nvm.NewDevice(nvm.DefaultConfig(size))
	return dev, Format(dev, 0, size, Config{ExtentSize: 4096})
}

func TestCreateWriteRead(t *testing.T) {
	_, fs := newFS(t, 4<<20)
	f, err := fs.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello filesystem")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
	if f.Size() != int64(len(data)) {
		t.Errorf("size = %d, want %d", f.Size(), len(data))
	}
}

func TestCreateExistingFails(t *testing.T) {
	_, fs := newFS(t, 4<<20)
	if _, err := fs.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("a"); err != ErrExist {
		t.Fatalf("got %v, want ErrExist", err)
	}
}

func TestOpenMissingFails(t *testing.T) {
	_, fs := newFS(t, 4<<20)
	if _, err := fs.OpenFile("nope"); err != ErrNotExist {
		t.Fatalf("got %v, want ErrNotExist", err)
	}
}

func TestAppendAcrossExtents(t *testing.T) {
	_, fs := newFS(t, 8<<20)
	f, _ := fs.Create("big")
	chunk := make([]byte, 1000)
	var want []byte
	for i := 0; i < 20; i++ { // 20 KB across 4 KB extents
		for j := range chunk {
			chunk[j] = byte(i)
		}
		off, err := f.Append(chunk)
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i*1000) {
			t.Fatalf("append offset = %d, want %d", off, i*1000)
		}
		want = append(want, chunk...)
	}
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("multi-extent contents mismatch")
	}
}

func TestSyncDurability(t *testing.T) {
	dev, fs := newFS(t, 4<<20)
	f, _ := fs.Create("log")
	durable := []byte("synced entry")
	f.WriteAt(durable, 0)
	f.Sync()
	lost := []byte("unsynced entry")
	f.WriteAt(lost, 4096)

	dev.Crash()
	fs2, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs2.OpenFile("log")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(durable))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, durable) {
		t.Errorf("synced data lost: %q", got)
	}
	// The unsynced write extended the file size only volatilely.
	if f2.Size() != int64(len(durable)) {
		t.Errorf("durable size = %d, want %d (unsynced growth must not survive)", f2.Size(), len(durable))
	}
}

func TestRemoveFreesExtents(t *testing.T) {
	_, fs := newFS(t, 1<<20)
	// Fill most of the disk, remove, and refill: must succeed if extents are
	// recycled.
	for round := 0; round < 3; round++ {
		f, err := fs.Create("tmp")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64<<10)
		for i := 0; i < 7; i++ {
			if _, err := f.Append(buf); err != nil {
				t.Fatalf("round %d append %d: %v", round, i, err)
			}
		}
		if err := fs.Remove("tmp"); err != nil {
			t.Fatal(err)
		}
	}
	if fs.Exists("tmp") {
		t.Error("removed file still exists")
	}
}

func TestRename(t *testing.T) {
	_, fs := newFS(t, 4<<20)
	f, _ := fs.Create("old")
	f.WriteAt([]byte("payload"), 0)
	f.Sync()
	// Target exists: rename replaces it (checkpoint-swap pattern).
	g, _ := fs.Create("new")
	g.WriteAt([]byte("stale"), 0)
	g.Sync()
	if err := fs.Rename("old", "new"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("old") {
		t.Error("old name still present after rename")
	}
	h, err := fs.OpenFile("new")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	h.ReadAt(got, 0)
	if string(got) != "payload" {
		t.Errorf("renamed contents = %q", got)
	}
}

func TestTruncate(t *testing.T) {
	_, fs := newFS(t, 4<<20)
	f, _ := fs.Create("t")
	f.Append(make([]byte, 10000))
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 100 {
		t.Errorf("size after truncate = %d", f.Size())
	}
	if err := f.Truncate(5000); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 5000 {
		t.Errorf("size after grow = %d", f.Size())
	}
}

func TestList(t *testing.T) {
	_, fs := newFS(t, 4<<20)
	for _, n := range []string{"c", "a", "b"} {
		fs.Create(n)
	}
	got := fs.List()
	want := []string{"a", "b", "c"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("List = %v, want %v", got, want)
	}
}

func TestUsedBytesAndFileSize(t *testing.T) {
	_, fs := newFS(t, 4<<20)
	f, _ := fs.Create("a")
	f.Append(make([]byte, 1234))
	f.Sync()
	g, _ := fs.Create("b")
	g.Append(make([]byte, 766))
	g.Sync()
	if got := fs.UsedBytes(); got != 2000 {
		t.Errorf("UsedBytes = %d, want 2000", got)
	}
	if n, _ := fs.FileSize("a"); n != 1234 {
		t.Errorf("FileSize(a) = %d", n)
	}
}

func TestReadPastEOF(t *testing.T) {
	_, fs := newFS(t, 4<<20)
	f, _ := fs.Create("s")
	f.Append([]byte("abc"))
	if _, err := f.ReadAt(make([]byte, 10), 0); err == nil {
		t.Error("read past EOF succeeded")
	}
}

func TestNoSpace(t *testing.T) {
	_, fs := newFS(t, 300<<10) // tiny disk
	f, _ := fs.Create("f")
	var lastErr error
	for i := 0; i < 1000; i++ {
		if _, err := f.Append(make([]byte, 16<<10)); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr != ErrNoSpace {
		t.Fatalf("got %v, want ErrNoSpace", lastErr)
	}
}

func TestCrashRecoveryRebuildFreeList(t *testing.T) {
	dev, fs := newFS(t, 2<<20)
	f, _ := fs.Create("keep")
	f.Append(make([]byte, 100<<10))
	f.Sync()
	fs.Create("empty")
	dev.Crash()
	fs2, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The recovered FS can still allocate all remaining space exactly once.
	g, err := fs2.Create("fill")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for {
		if _, err := g.Append(make([]byte, 4096)); err != nil {
			break
		}
		total += 4096
	}
	// keep(100KB=25 extents) + superblock overhead; remaining extents must
	// not overlap keep's data.
	k, _ := fs2.OpenFile("keep")
	buf := make([]byte, 100<<10)
	k.ReadAt(buf, 0)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("keep corrupted at %d: %d", i, b)
		}
	}
	if total == 0 {
		t.Fatal("no extents allocatable after recovery")
	}
}

func TestVFSOverheadCharged(t *testing.T) {
	dev, fs := newFS(t, 4<<20)
	f, _ := fs.Create("x")
	before := dev.Stats().Stall
	f.WriteAt(make([]byte, 64), 0)
	f.Sync()
	if got := dev.Stats().Stall - before; got < 2*VFSCost {
		t.Errorf("fs write+sync charged %v, want >= %v", got, 2*VFSCost)
	}
}

// Property: random writes at random offsets always read back, and durable
// contents after crash+reopen match the last-synced prefix state.
func TestQuickWriteReadConsistency(t *testing.T) {
	dev, fs := newFS(t, 8<<20)
	f, err := fs.Create("q")
	if err != nil {
		t.Fatal(err)
	}
	const maxSize = 400 << 10
	shadow := make([]byte, maxSize)
	var size int64
	rng := rand.New(rand.NewSource(5))

	fn := func(off32 uint32, n16 uint16) bool {
		off := int64(off32) % (maxSize - 4096)
		n := int(n16)%4000 + 1
		data := make([]byte, n)
		rng.Read(data)
		if _, err := f.WriteAt(data, off); err != nil {
			return false
		}
		copy(shadow[off:], data)
		if off+int64(n) > size {
			size = off + int64(n)
		}
		got := make([]byte, n)
		if _, err := f.ReadAt(got, off); err != nil {
			return false
		}
		return bytes.Equal(got, data) && f.Size() == size
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	dev.Crash()
	fs2, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := fs2.OpenFile("q")
	if f2.Size() != size {
		t.Fatalf("durable size %d != synced size %d", f2.Size(), size)
	}
	got := make([]byte, size)
	f2.ReadAt(got, 0)
	if !bytes.Equal(got, shadow[:size]) {
		t.Fatal("durable contents diverged after crash")
	}
}

func TestManyFiles(t *testing.T) {
	_, fs := newFS(t, 16<<20)
	for i := 0; i < 100; i++ {
		f, err := fs.Create(fileName(i))
		if err != nil {
			t.Fatal(err)
		}
		f.Append([]byte{byte(i)})
		f.Sync()
	}
	for i := 0; i < 100; i++ {
		f, err := fs.OpenFile(fileName(i))
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 1)
		f.ReadAt(b, 0)
		if b[0] != byte(i) {
			t.Fatalf("file %d contents = %d", i, b[0])
		}
	}
}

func fileName(i int) string { return fmt.Sprintf("sst-%03d", i) }

func BenchmarkFSAppendSync(b *testing.B) {
	dev := nvm.NewDevice(nvm.DefaultConfig(1 << 30))
	fs := Format(dev, 0, 1<<30, Config{})
	f, _ := fs.Create("bench")
	buf := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Append(buf)
		f.Sync()
	}
}
