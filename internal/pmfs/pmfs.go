// Package pmfs is a filesystem interface over the emulated NVM device,
// modelled on Intel Labs' PMFS (§2.2). The traditional storage engines use
// it for their durable structures (WAL, checkpoints, SSTables, CoW B+tree
// directories).
//
// Like PMFS, file data lives directly in NVM and fsync flushes the dirtied
// cache lines. Unlike the allocator interface, every call pays a fixed
// kernel-crossing (VFS) overhead plus one buffer copy between user and file
// buffers — this is what produces the allocator-vs-filesystem bandwidth gap
// of Fig. 1.
//
// On-device layout:
//
//	+0              superblock (magic, geometry)
//	+4096           inode table (NumInodes fixed-size inodes)
//	inode table end extent region (fixed-size extents, bump + free list)
//
// Inodes are synced on metadata changes; the extent free list is volatile
// and rebuilt on Open by a reachability scan over the inodes, so a crash can
// never leak or double-use extents across restarts.
package pmfs

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"nstore/internal/nvm"
)

const (
	magic = 0x504d46532d474f31 // "PMFS-GO1"

	// NumInodes is the number of files the filesystem can hold.
	NumInodes = 256
	inodeSize = 1024
	nameLen   = 64
	// maxExtents is the number of direct extent slots per inode.
	maxExtents = (inodeSize - 2*8 - nameLen) / 8

	sbSize     = 4096
	offMagic   = 0
	offSize    = 8
	offExtSize = 16
	offExtBase = 24

	// inode field offsets
	inoFlags = 0 // 1 = used
	inoSize  = 8
	inoName  = 16
	inoExt   = 16 + nameLen
)

// VFSCost is the simulated kernel-crossing overhead charged per filesystem
// call (read, write, fsync). PMFS avoids the block layer but still crosses
// the VFS; this constant is what separates Fig. 1's two curves.
const VFSCost = 700 * time.Nanosecond

// CopyCostPerByte models the single user-buffer copy PMFS performs, in
// nanoseconds per byte (~4 GB/s memcpy).
const CopyCostPerByte = 0.25

// Errors returned by the filesystem.
var (
	ErrNotExist  = errors.New("pmfs: file does not exist")
	ErrExist     = errors.New("pmfs: file already exists")
	ErrNoSpace   = errors.New("pmfs: no space left on device")
	ErrTooLarge  = errors.New("pmfs: file exceeds maximum extent count")
	ErrFileTable = errors.New("pmfs: inode table full")
)

// FS is a PMFS-like filesystem over a region of an NVM device.
type FS struct {
	dev      *nvm.Device
	base     int64
	size     int64
	extSize  int64
	extBase  int64
	extCount int64

	freeExts []int64 // volatile free list of extent indexes
	nextExt  int64   // volatile bump cursor (durable via inode reachability)

	// dirty tracks written-but-unsynced ranges per inode for fsync.
	dirty map[int][]span
	// metaDirty marks inodes whose metadata (size, extents) changed since
	// the last fsync, so fsync only flushes metadata when needed.
	metaDirty map[int]bool

	// Fault injection (see fault.go).
	syncFault    SyncFault
	syncFaultSet bool
	// Transient sync-failure window (see FailSyncs).
	failAfter int
	failCount int

	// Cumulative fsync metrics in atomic cells, scraper-safe: syncs counts
	// File.Sync calls (including failed and crash-injected ones); syncNS is
	// the wall-clock time spent inside them.
	syncs  atomic.Int64
	syncNS atomic.Int64
}

// SyncStats returns the cumulative fsync count and the wall-clock
// nanoseconds spent in File.Sync. Safe from any goroutine.
func (fs *FS) SyncStats() (syncs, ns int64) {
	return fs.syncs.Load(), fs.syncNS.Load()
}

type span struct{ off, end int64 }

// Config controls filesystem geometry.
type Config struct {
	// ExtentSize is the unit of file space allocation. Default 256 KiB.
	ExtentSize int64
}

// Format initializes a filesystem over dev[base, base+size).
func Format(dev *nvm.Device, base, size int64, cfg Config) *FS {
	extSize := cfg.ExtentSize
	if extSize <= 0 {
		extSize = 256 << 10
	}
	extBase := base + sbSize + NumInodes*inodeSize
	if extBase+extSize > base+size {
		panic("pmfs: region too small")
	}
	fs := &FS{
		dev: dev, base: base, size: size,
		extSize: extSize, extBase: extBase,
		extCount:  (base + size - extBase) / extSize,
		dirty:     make(map[int][]span),
		metaDirty: make(map[int]bool),
	}
	zero := make([]byte, sbSize+NumInodes*inodeSize)
	dev.Write(base, zero)
	dev.WriteU64(base+offMagic, magic)
	dev.WriteU64(base+offSize, uint64(size))
	dev.WriteU64(base+offExtSize, uint64(extSize))
	dev.WriteU64(base+offExtBase, uint64(extBase))
	dev.Sync(base, sbSize+NumInodes*inodeSize)
	for i := fs.extCount - 1; i >= 0; i-- {
		fs.freeExts = append(fs.freeExts, i)
	}
	return fs
}

// Open attaches to an existing filesystem and rebuilds the extent free list
// from inode reachability.
func Open(dev *nvm.Device, base int64) (*FS, error) {
	if dev.ReadU64(base+offMagic) != magic {
		return nil, fmt.Errorf("pmfs: no filesystem at offset %d", base)
	}
	fs := &FS{
		dev:       dev,
		base:      base,
		size:      int64(dev.ReadU64(base + offSize)),
		extSize:   int64(dev.ReadU64(base + offExtSize)),
		extBase:   int64(dev.ReadU64(base + offExtBase)),
		dirty:     make(map[int][]span),
		metaDirty: make(map[int]bool),
	}
	fs.extCount = (base + fs.size - fs.extBase) / fs.extSize
	used := make([]bool, fs.extCount)
	for i := 0; i < NumInodes; i++ {
		ino := fs.inodeOff(i)
		if dev.ReadU64(ino+inoFlags) != 1 {
			continue
		}
		size := int64(dev.ReadU64(ino + inoSize))
		// Crash scrub: a torn inode flush can leave a durable size whose
		// tail extents were never recorded. Clamp the size to the contiguous
		// prefix of valid extent pointers; the lost tail is exactly what an
		// fsync-less crash is allowed to discard.
		nExt := fs.extentsFor(size)
		for e := 0; e < nExt; e++ {
			idx := int64(dev.ReadU64(ino+inoExt+int64(e)*8)) - 1
			if idx < 0 || idx >= fs.extCount {
				size = int64(e) * fs.extSize
				dev.WriteU64(ino+inoSize, uint64(size))
				dev.Sync(ino+inoSize, 8)
				nExt = e
				break
			}
		}
		for e := 0; e < nExt; e++ {
			used[int64(dev.ReadU64(ino+inoExt+int64(e)*8))-1] = true
		}
	}
	for i := fs.extCount - 1; i >= 0; i-- {
		if !used[i] {
			fs.freeExts = append(fs.freeExts, i)
		}
	}
	return fs, nil
}

func (fs *FS) inodeOff(i int) int64 { return fs.base + sbSize + int64(i)*inodeSize }

func (fs *FS) extentsFor(size int64) int {
	return int((size + fs.extSize - 1) / fs.extSize)
}

func (fs *FS) chargeCall(bytes int) {
	fs.dev.AddStall(VFSCost + time.Duration(float64(bytes)*CopyCostPerByte)*time.Nanosecond)
}

func (fs *FS) findInode(name string) int {
	if len(name) == 0 || len(name) > nameLen {
		return -1
	}
	for i := 0; i < NumInodes; i++ {
		ino := fs.inodeOff(i)
		if fs.dev.ReadU64(ino+inoFlags) != 1 {
			continue
		}
		if fs.readName(i) == name {
			return i
		}
	}
	return -1
}

func (fs *FS) readName(i int) string {
	var buf [nameLen]byte
	fs.dev.Read(fs.inodeOff(i)+inoName, buf[:])
	n := 0
	for n < nameLen && buf[n] != 0 {
		n++
	}
	return string(buf[:n])
}

// Create creates a new empty file. It fails if the name exists.
func (fs *FS) Create(name string) (*File, error) {
	fs.chargeCall(0)
	if len(name) == 0 || len(name) > nameLen {
		return nil, fmt.Errorf("pmfs: bad name %q", name)
	}
	if fs.findInode(name) >= 0 {
		return nil, ErrExist
	}
	for i := 0; i < NumInodes; i++ {
		ino := fs.inodeOff(i)
		if fs.dev.ReadU64(ino+inoFlags) == 1 {
			continue
		}
		var nb [nameLen]byte
		copy(nb[:], name)
		fs.dev.Write(ino+inoName, nb[:])
		fs.dev.WriteU64(ino+inoSize, 0)
		fs.dev.WriteU64(ino+inoFlags, 1)
		fs.dev.Sync(ino, inodeSize)
		return &File{fs: fs, ino: i}, nil
	}
	return nil, ErrFileTable
}

// OpenFile opens an existing file by name.
func (fs *FS) OpenFile(name string) (*File, error) {
	fs.chargeCall(0)
	i := fs.findInode(name)
	if i < 0 {
		return nil, ErrNotExist
	}
	return &File{fs: fs, ino: i}, nil
}

// OpenOrCreate opens name, creating it if absent.
func (fs *FS) OpenOrCreate(name string) (*File, error) {
	if f, err := fs.OpenFile(name); err == nil {
		return f, nil
	}
	return fs.Create(name)
}

// Remove deletes a file and frees its extents.
func (fs *FS) Remove(name string) error {
	fs.chargeCall(0)
	i := fs.findInode(name)
	if i < 0 {
		return ErrNotExist
	}
	ino := fs.inodeOff(i)
	size := int64(fs.dev.ReadU64(ino + inoSize))
	for e := 0; e < fs.extentsFor(size); e++ {
		idx := int64(fs.dev.ReadU64(ino+inoExt+int64(e)*8)) - 1
		if idx >= 0 {
			fs.freeExts = append(fs.freeExts, idx)
		}
	}
	fs.dev.WriteU64(ino+inoFlags, 0)
	fs.dev.Sync(ino+inoFlags, 8)
	delete(fs.dirty, i)
	return nil
}

// Rename atomically renames a file, replacing any existing target.
func (fs *FS) Rename(oldName, newName string) error {
	fs.chargeCall(0)
	i := fs.findInode(oldName)
	if i < 0 {
		return ErrNotExist
	}
	if j := fs.findInode(newName); j >= 0 {
		if err := fs.Remove(newName); err != nil {
			return err
		}
	}
	var nb [nameLen]byte
	copy(nb[:], newName)
	ino := fs.inodeOff(i)
	fs.dev.Write(ino+inoName, nb[:])
	fs.dev.Sync(ino+inoName, nameLen)
	return nil
}

// List returns the names of all files.
func (fs *FS) List() []string {
	var names []string
	for i := 0; i < NumInodes; i++ {
		if fs.dev.ReadU64(fs.inodeOff(i)+inoFlags) == 1 {
			names = append(names, fs.readName(i))
		}
	}
	sort.Strings(names)
	return names
}

// Exists reports whether a file with the given name exists.
func (fs *FS) Exists(name string) bool { return fs.findInode(name) >= 0 }

// UsedBytes returns the total durable size of all files (Fig. 14 accounting).
func (fs *FS) UsedBytes() int64 {
	var total int64
	for i := 0; i < NumInodes; i++ {
		ino := fs.inodeOff(i)
		if fs.dev.ReadU64(ino+inoFlags) == 1 {
			total += int64(fs.dev.ReadU64(ino + inoSize))
		}
	}
	return total
}

// FileSize returns the durable size of the named file.
func (fs *FS) FileSize(name string) (int64, error) {
	i := fs.findInode(name)
	if i < 0 {
		return 0, ErrNotExist
	}
	return int64(fs.dev.ReadU64(fs.inodeOff(i) + inoSize)), nil
}

func (fs *FS) allocExtent() (int64, error) {
	if n := len(fs.freeExts); n > 0 {
		idx := fs.freeExts[n-1]
		fs.freeExts = fs.freeExts[:n-1]
		return idx, nil
	}
	return 0, ErrNoSpace
}

// File is an open file handle. Handles are volatile; reopen by name after a
// restart.
type File struct {
	fs  *FS
	ino int
}

// Name returns the file's current name.
func (f *File) Name() string { return f.fs.readName(f.ino) }

// Size returns the file size in bytes.
func (f *File) Size() int64 {
	return int64(f.fs.dev.ReadU64(f.fs.inodeOff(f.ino) + inoSize))
}

// extentAddr returns the device offset of byte `off` within the file,
// and how many contiguous bytes follow it inside the same extent.
func (f *File) extentAddr(off int64) (addr int64, contig int64) {
	e := off / f.fs.extSize
	idx := int64(f.fs.dev.ReadU64(f.fs.inodeOff(f.ino)+inoExt+e*8)) - 1
	rel := off % f.fs.extSize
	return f.fs.extBase + idx*f.fs.extSize + rel, f.fs.extSize - rel
}

// ensureSize grows the file (allocating extents) so it can hold `size` bytes.
func (f *File) ensureSize(size int64) error {
	ino := f.fs.inodeOff(f.ino)
	cur := int64(f.fs.dev.ReadU64(ino + inoSize))
	if size <= cur {
		return nil
	}
	curExt := f.fs.extentsFor(cur)
	newExt := f.fs.extentsFor(size)
	if newExt > maxExtents {
		return ErrTooLarge
	}
	if newExt > curExt {
		for e := curExt; e < newExt; e++ {
			idx, err := f.fs.allocExtent()
			if err != nil {
				return err
			}
			f.fs.dev.WriteU64(ino+inoExt+int64(e)*8, uint64(idx+1))
		}
		// New extent pointers must be durable before any size that covers
		// them can persist: under reordered write-backs the inode's size
		// word and its extent words live in different cache lines, and a
		// durable size pointing at a never-written slot would hand the file
		// a garbage (possibly already re-used) extent after recovery.
		f.fs.dev.Sync(ino+inoExt+int64(curExt)*8, (newExt-curExt)*8)
	}
	f.fs.dev.WriteU64(ino+inoSize, uint64(size))
	f.fs.metaDirty[f.ino] = true
	return nil
}

// WriteAt writes p at offset off, growing the file as needed. Data is not
// durable until Sync. Metadata (size, new extents) becomes durable at Sync.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.fs.chargeCall(len(p))
	if err := f.ensureSize(off + int64(len(p))); err != nil {
		return 0, err
	}
	n := len(p)
	written := 0
	for written < n {
		addr, contig := f.extentAddr(off + int64(written))
		chunk := int64(n - written)
		if chunk > contig {
			chunk = contig
		}
		f.fs.dev.Write(addr, p[written:written+int(chunk)])
		f.fs.addDirty(f.ino, addr, addr+chunk)
		written += int(chunk)
	}
	return n, nil
}

// Append writes p at the end of the file and returns the offset at which it
// was written.
func (f *File) Append(p []byte) (int64, error) {
	off := f.Size()
	_, err := f.WriteAt(p, off)
	return off, err
}

// ReadAt reads len(p) bytes at offset off. Short files return an error.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.fs.chargeCall(len(p))
	if off+int64(len(p)) > f.Size() {
		return 0, fmt.Errorf("pmfs: read [%d,%d) past EOF %d of %q", off, off+int64(len(p)), f.Size(), f.Name())
	}
	n := len(p)
	read := 0
	for read < n {
		addr, contig := f.extentAddr(off + int64(read))
		chunk := int64(n - read)
		if chunk > contig {
			chunk = contig
		}
		f.fs.dev.Read(addr, p[read:read+int(chunk)])
		read += int(chunk)
	}
	return n, nil
}

// Truncate durably sets the file size to n, freeing extents beyond it.
func (f *File) Truncate(n int64) error {
	f.fs.chargeCall(0)
	ino := f.fs.inodeOff(f.ino)
	cur := int64(f.fs.dev.ReadU64(ino + inoSize))
	if n > cur {
		if err := f.ensureSize(n); err != nil {
			return err
		}
	} else {
		for e := f.fs.extentsFor(n); e < f.fs.extentsFor(cur); e++ {
			idx := int64(f.fs.dev.ReadU64(ino+inoExt+int64(e)*8)) - 1
			if idx >= 0 {
				f.fs.freeExts = append(f.fs.freeExts, idx)
				// Drop pending dirty spans inside the freed extent: once it
				// is reused by another file, a later fsync of this inode must
				// not flush stale bytes into it out of the new owner's write
				// order.
				f.fs.dropDirty(f.ino, f.fs.extBase+idx*f.fs.extSize, f.fs.extBase+(idx+1)*f.fs.extSize)
			}
		}
	}
	f.fs.dev.WriteU64(ino+inoSize, uint64(n))
	f.fs.dev.Sync(ino, inodeSize)
	return nil
}

// Sync is fsync: it flushes all written-but-unsynced data of this file and
// the inode metadata, then fences.
func (f *File) Sync() error {
	start := time.Now()
	f.fs.syncs.Add(1)
	// The deferred duration add runs on the injected-crash panic path too,
	// so the metrics stay coherent across fault drills.
	defer func() { f.fs.syncNS.Add(int64(time.Since(start))) }()
	f.fs.chargeCall(0)
	if f.fs.syncFaultSet {
		if f.fs.syncFault.AfterSyncs > 0 {
			f.fs.syncFault.AfterSyncs--
		} else {
			f.fs.crashSync(f.ino) // panics with nvm.ErrInjectedCrash
		}
	}
	if f.fs.failCount > 0 {
		if f.fs.failAfter > 0 {
			f.fs.failAfter--
		} else {
			// Transient failure: flush nothing, keep every dirty range.
			f.fs.failCount--
			return ErrSyncFailed
		}
	}
	for _, s := range f.fs.dirty[f.ino] {
		f.fs.dev.Flush(s.off, int(s.end-s.off))
	}
	delete(f.fs.dirty, f.ino)
	if f.fs.metaDirty[f.ino] {
		f.fs.dev.Flush(f.fs.inodeOff(f.ino), inodeSize)
		delete(f.fs.metaDirty, f.ino)
	}
	f.fs.dev.Fence()
	return nil
}

// dropDirty removes the [off, end) device range from inode ino's pending
// dirty spans, splitting spans that straddle a boundary.
func (fs *FS) dropDirty(ino int, off, end int64) {
	spans := fs.dirty[ino]
	out := spans[:0]
	for _, s := range spans {
		if s.end <= off || s.off >= end {
			out = append(out, s)
			continue
		}
		if s.off < off {
			out = append(out, span{s.off, off})
		}
		if s.end > end {
			out = append(out, span{end, s.end})
		}
	}
	if len(out) == 0 {
		delete(fs.dirty, ino)
		return
	}
	fs.dirty[ino] = out
}

func (fs *FS) addDirty(ino int, off, end int64) {
	spans := fs.dirty[ino]
	// Merge with the last span when appending sequentially (common case).
	if n := len(spans); n > 0 && spans[n-1].end == off {
		spans[n-1].end = end
		fs.dirty[ino] = spans
		return
	}
	fs.dirty[ino] = append(spans, span{off, end})
}
