// Fault injection for the filesystem interface: seeded, replayable fsync
// failures. These model what a real PMFS-like filesystem can do to a
// database at power failure — drop writes that were never fsync'd, tear an
// fsync so only a prefix of the appended bytes reaches the medium, or cut
// power just after the fsync retires. The storage engines' WAL, checkpoint,
// and SSTable protocols must recover from all three.
package pmfs

import (
	"errors"
	"math/rand"

	"nstore/internal/nvm"
)

// ErrSyncFailed is returned by File.Sync when a transient sync failure is
// injected (FailSyncs). It models an fsync returning EIO before any
// write-back happened: nothing the fsync covered became durable, the file's
// dirty ranges stay pending, and the process keeps running. Callers that
// keep their write buffers intact may retry.
var ErrSyncFailed = errors.New("pmfs: fsync failed")

// FailSyncs arranges for the next `count` File.Sync calls (on any file)
// after `after` further successful ones to fail with ErrSyncFailed without
// flushing anything. Unlike SyncFault this is transient — no panic, no
// crash — and is how the serving-layer tests exercise the retry path of the
// error taxonomy. Passing count <= 0 clears any pending failure window.
func (fs *FS) FailSyncs(after, count int) {
	fs.failAfter = after
	fs.failCount = count
}

// SyncFaultMode selects where inside an fsync the injected crash strikes.
type SyncFaultMode int

const (
	// SyncCrashLost crashes at fsync entry: nothing from this fsync is
	// flushed, so all of the file's written-but-unsynced data is dropped.
	SyncCrashLost SyncFaultMode = iota
	// SyncCrashTorn crashes mid-fsync: a seeded prefix of the file's dirty
	// byte ranges is flushed and fenced (and the inode metadata with
	// probability 1/2), then power fails. This is the torn-append case —
	// the durable file may keep a garbage tail or lose its tail entirely.
	SyncCrashTorn
	// SyncCrashAfter completes the fsync and then crashes: everything the
	// fsync covered must be durable.
	SyncCrashAfter
)

// String names the sync fault mode for logs and failure reports.
func (m SyncFaultMode) String() string {
	switch m {
	case SyncCrashLost:
		return "fsync-lost"
	case SyncCrashTorn:
		return "fsync-torn"
	case SyncCrashAfter:
		return "fsync-after"
	}
	return "unknown"
}

// SyncFault is a seeded, replayable fsync failure: after AfterSyncs further
// File.Sync calls (on any file), the next Sync applies Mode and panics with
// nvm.ErrInjectedCrash. Tests recover the panic, call Device.Crash, and
// reopen the filesystem.
type SyncFault struct {
	Seed       int64
	AfterSyncs int
	Mode       SyncFaultMode
}

// InjectSyncFault installs a sync fault. Any previously installed fault is
// replaced.
func (fs *FS) InjectSyncFault(f SyncFault) {
	fs.syncFault = f
	fs.syncFaultSet = true
}

// ClearSyncFault removes an installed sync fault without firing it.
func (fs *FS) ClearSyncFault() { fs.syncFaultSet = false }

// crashSync fires the installed sync fault during an fsync of inode ino.
// It never returns.
func (fs *FS) crashSync(ino int) {
	fault := fs.syncFault
	fs.syncFaultSet = false
	switch fault.Mode {
	case SyncCrashTorn:
		rng := rand.New(rand.NewSource(fault.Seed))
		spans := fs.dirty[ino]
		var total int64
		for _, s := range spans {
			total += s.end - s.off
		}
		if total > 0 {
			// Flush a seeded byte prefix of the dirty ranges, in write order
			// (line granularity: the line containing the cut is flushed whole).
			cut := rng.Int63n(total + 1)
			for _, s := range spans {
				n := s.end - s.off
				if n > cut {
					n = cut
				}
				if n > 0 {
					fs.dev.Flush(s.off, int(n))
				}
				cut -= n
				if cut <= 0 {
					break
				}
			}
		}
		if fs.metaDirty[ino] && rng.Intn(2) == 0 {
			fs.dev.Flush(fs.inodeOff(ino), inodeSize)
		}
		fs.dev.Fence()
	case SyncCrashAfter:
		for _, s := range fs.dirty[ino] {
			fs.dev.Flush(s.off, int(s.end-s.off))
		}
		delete(fs.dirty, ino)
		if fs.metaDirty[ino] {
			fs.dev.Flush(fs.inodeOff(ino), inodeSize)
			delete(fs.metaDirty, ino)
		}
		fs.dev.Fence()
	}
	panic(nvm.ErrInjectedCrash)
}
