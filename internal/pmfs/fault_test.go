package pmfs

import (
	"bytes"
	"testing"

	"nstore/internal/nvm"
)

func faultFS(t *testing.T) (*nvm.Device, *FS) {
	t.Helper()
	dev := nvm.NewDevice(nvm.DefaultConfig(8 << 20))
	fs := Format(dev, 0, 8<<20, Config{ExtentSize: 64 << 10})
	return dev, fs
}

// expectCrash runs fn and requires it to panic with nvm.ErrInjectedCrash.
func expectCrash(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nvm.ErrInjectedCrash {
			t.Fatalf("want ErrInjectedCrash, got %v", r)
		}
	}()
	fn()
	t.Fatal("no crash fired")
}

// SyncCrashLost: writes covered by the failed fsync are gone after the crash.
func TestSyncFaultLost(t *testing.T) {
	dev, fs := faultFS(t)
	f, err := fs.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	durable := bytes.Repeat([]byte{0x11}, 4096)
	if _, err := f.WriteAt(durable, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(bytes.Repeat([]byte{0x22}, 4096)); err != nil {
		t.Fatal(err)
	}
	fs.InjectSyncFault(SyncFault{Seed: 1, Mode: SyncCrashLost})
	expectCrash(t, func() { f.Sync() })
	dev.Crash()

	fs2, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs2.OpenFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Size() != 4096 {
		t.Fatalf("durable size %d, want the pre-fault 4096", f2.Size())
	}
	got := make([]byte, 4096)
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, durable) {
		t.Fatal("fsync'd prefix damaged by lost-fsync crash")
	}
}

// SyncCrashAfter: everything the fsync covered is durable.
func TestSyncFaultAfter(t *testing.T) {
	dev, fs := faultFS(t)
	f, err := fs.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x33}, 8192)
	if _, err := f.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	fs.InjectSyncFault(SyncFault{Seed: 1, Mode: SyncCrashAfter})
	expectCrash(t, func() { f.Sync() })
	dev.Crash()

	fs2, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs2.OpenFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Size() != int64(len(want)) {
		t.Fatalf("durable size %d, want %d", f2.Size(), len(want))
	}
	got := make([]byte, len(want))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("crash right after fsync lost fsync'd data")
	}
}

// SyncCrashTorn: the filesystem stays openable and every file's durable size
// maps to valid extents; the torn tail is either absent or partially written.
func TestSyncFaultTorn(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		dev, fs := faultFS(t)
		f, err := fs.Create("wal")
		if err != nil {
			t.Fatal(err)
		}
		base := bytes.Repeat([]byte{0x44}, 4096)
		if _, err := f.WriteAt(base, 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		// A big multi-extent append whose fsync tears.
		if _, err := f.Append(bytes.Repeat([]byte{0x55}, 200<<10)); err != nil {
			t.Fatal(err)
		}
		fs.InjectSyncFault(SyncFault{Seed: seed, Mode: SyncCrashTorn})
		expectCrash(t, func() { f.Sync() })
		dev.Crash()

		fs2, err := Open(dev, 0)
		if err != nil {
			t.Fatalf("seed %d: open after torn fsync: %v", seed, err)
		}
		f2, err := fs2.OpenFile("wal")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		size := f2.Size()
		if size < 4096 || size > 4096+200<<10 {
			t.Fatalf("seed %d: durable size %d outside [old, new]", seed, size)
		}
		// The whole durable range must be readable (valid extents), and the
		// fsync'd prefix intact.
		got := make([]byte, size)
		if _, err := f2.ReadAt(got, 0); err != nil {
			t.Fatalf("seed %d: read durable range: %v", seed, err)
		}
		if !bytes.Equal(got[:4096], base) {
			t.Fatalf("seed %d: fsync'd prefix damaged", seed)
		}
	}
}

// Torn fsyncs replay identically from the same seed.
func TestSyncFaultTornDeterministic(t *testing.T) {
	run := func() []byte {
		dev, fs := faultFS(t)
		f, err := fs.Create("wal")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(bytes.Repeat([]byte{0x66}, 100<<10), 0); err != nil {
			t.Fatal(err)
		}
		fs.InjectSyncFault(SyncFault{Seed: 99, Mode: SyncCrashTorn})
		expectCrash(t, func() { f.Sync() })
		dev.Crash()
		fs2, err := Open(dev, 0)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := fs2.OpenFile("wal")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, f2.Size())
		if len(got) > 0 {
			if _, err := f2.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
		}
		return got
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("same seed produced different torn-fsync outcomes")
	}
}

// The Open-time scrub clamps a durable size that points past valid extents.
func TestOpenScrubClampsBadExtents(t *testing.T) {
	dev, fs := faultFS(t)
	f, err := fs.Create("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{0x77}, 10<<10), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn inode flush: size grows to span a second extent whose
	// pointer slot was never persisted.
	ino := fs.inodeOff(fs.findInode("data"))
	dev.WriteU64(ino+inoSize, uint64(100<<10))
	dev.WriteU64(ino+inoExt+8, 0) // second extent slot: never written
	dev.Sync(ino, inodeSize)
	dev.Crash()

	fs2, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	size, err := fs2.FileSize("data")
	if err != nil {
		t.Fatal(err)
	}
	if size != 64<<10 {
		t.Fatalf("scrubbed size %d, want clamp to one extent (%d)", size, 64<<10)
	}
	f2, err := fs2.OpenFile("data")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
}
