// Package nvbtree is the non-volatile B+tree used by the NVM-aware engines
// for their indexes (§4.1). Unlike the volatile STX-style tree, every
// structural change follows a durability discipline that keeps the tree
// consistent on NVM at all times, so it "can be safely accessed immediately
// after the system restarts" without being rebuilt.
//
// Following the paper's modification of the STX B+tree: "when adding an
// entry to a B+tree node, instead of inserting the key in a sorted order, it
// appends the entry to a list of entries in the node". Node entries are an
// append-only unsorted list. An append writes the new entries, syncs them,
// and then durably bumps the node's committed-entry count with a single
// atomic 8-byte write — the commit point. Deletions and replacements append
// shadowing entries (a tombstone bit in the value word); full nodes are
// resolved and rewritten copy-on-write, with the swap journaled in the tree
// header so a crash at any point either completes or rolls back cleanly in
// concert with the allocator's durability states.
//
// Keys are unique uint64s; values are uint64s below 2^63 (the top bit is the
// tombstone flag). Not safe for concurrent use.
package nvbtree

import (
	"encoding/binary"
	"fmt"
	"sort"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
)

// DefaultNodeSize matches the paper's STX B+tree configuration (512 B).
const DefaultNodeSize = 512

const (
	tombstone = uint64(1) << 63

	// Node layout.
	nFlags   = 0  // u8: 1 = leaf
	nCount   = 8  // u64: committed entry count (atomic commit point)
	nEntries = 16 // (key u64, val u64) pairs, append-only, unsorted
	entSize  = 16

	// Header chunk layout (the tree's durable anchor).
	hMagic    = 0
	hRoot     = 8
	hNodeSize = 16
	hJOld     = 24 // journal: node being replaced
	hJParent  = 32 // journal: its parent (0 = root replace)
	hJProbe   = 40 // journal: commit probe (new node that becomes reachable)
	hJNew     = 48 // journal: up to 3 new nodes
	hdrBytes  = 48 + 3*8

	headerMagic = 0x4e56425452454531 // "NVBTREE1"

	// minFree is the preemptive threshold: inner nodes visited during a
	// descent are rewritten/split if they have fewer free slots, so that a
	// child replacement (1 tombstone + up to 2 new routing entries) always
	// fits in its parent.
	minFree = 3
)

type entry struct{ k, v uint64 }

// Tree is a non-volatile B+tree anchored at a durable header chunk.
type Tree struct {
	arena *pmalloc.Arena
	dev   *nvm.Device
	hdr   pmalloc.Ptr
	nsize int
	cap   int

	// Single-threaded scratch for whole-node reads and shadow resolution,
	// avoiding per-entry device calls and per-lookup allocations.
	scratch []byte
	seen    []uint64
}

// Create allocates a new empty tree and returns it. Store Header() in an
// arena root slot to find the tree again after a restart. Index-arena
// exhaustion is returned as an error, never a panic: tree creation is
// reachable from runtime table growth.
func Create(arena *pmalloc.Arena, nodeSize int) (*Tree, error) {
	if nodeSize == 0 {
		nodeSize = DefaultNodeSize
	}
	if nodeSize < nEntries+4*entSize {
		panic("nvbtree: node size too small")
	}
	t := &Tree{arena: arena, dev: arena.Device(), nsize: nodeSize, cap: (nodeSize - nEntries) / entSize}
	hdr, err := arena.Alloc(hdrBytes, pmalloc.TagIndex)
	if err != nil {
		return nil, err
	}
	t.hdr = hdr
	root, err := t.newNode(true)
	if err != nil {
		arena.Free(hdr)
		return nil, err
	}
	// The empty root's flag/count lines must be durable before the header
	// points at them: a tree that is never written again (an empty table)
	// would otherwise lose them to a power cut and read back as a zeroed
	// inner node.
	d := t.dev
	d.Sync(int64(root), nEntries)
	arena.SetPersisted(root)
	d.WriteU64(int64(hdr)+hMagic, headerMagic)
	d.WriteU64(int64(hdr)+hRoot, root)
	d.WriteU64(int64(hdr)+hNodeSize, uint64(nodeSize))
	for o := int64(hJOld); o < hdrBytes; o += 8 {
		d.WriteU64(int64(hdr)+o, 0)
	}
	d.Sync(int64(hdr), hdrBytes)
	arena.SetPersisted(hdr)
	return t, nil
}

// Open attaches to an existing tree at header ptr and completes or rolls
// back any structural change interrupted by a crash.
func Open(arena *pmalloc.Arena, hdr pmalloc.Ptr) (*Tree, error) {
	d := arena.Device()
	if d.ReadU64(int64(hdr)+hMagic) != headerMagic {
		return nil, fmt.Errorf("nvbtree: no tree header at %d", hdr)
	}
	t := &Tree{arena: arena, dev: d, hdr: hdr}
	t.nsize = int(d.ReadU64(int64(hdr) + hNodeSize))
	t.cap = (t.nsize - nEntries) / entSize
	t.recoverJournal()
	return t, nil
}

// Header returns the tree's durable anchor pointer (the naming handle).
func (t *Tree) Header() pmalloc.Ptr { return t.hdr }

// NodeSize returns the configured node size.
func (t *Tree) NodeSize() int { return t.nsize }

func (t *Tree) root() uint64 { return t.dev.ReadU64(int64(t.hdr) + hRoot) }

func (t *Tree) setRootDurable(n uint64) {
	t.dev.WriteU64Durable(int64(t.hdr)+hRoot, n)
}

func (t *Tree) newNode(leaf bool) (uint64, error) {
	p, err := t.arena.Alloc(t.nsize, pmalloc.TagIndex)
	if err != nil {
		return 0, err
	}
	var fl byte
	if leaf {
		fl = 1
	}
	t.dev.WriteU8(int64(p)+nFlags, fl)
	t.dev.WriteU64(int64(p)+nCount, 0)
	return uint64(p), nil
}

func (t *Tree) isLeaf(n uint64) bool { return t.dev.ReadU8(int64(n)+nFlags) == 1 }
func (t *Tree) count(n uint64) int   { return int(t.dev.ReadU64(int64(n) + nCount)) }

func (t *Tree) entAt(n uint64, i int) entry {
	off := int64(n) + nEntries + int64(i)*entSize
	return entry{t.dev.ReadU64(off), t.dev.ReadU64(off + 8)}
}

// readNode fills the tree's scratch buffer with node n's committed entries
// and returns (buffer, count). One bulk device read replaces per-entry
// reads on the hot paths.
func (t *Tree) readNode(n uint64) ([]byte, int) {
	if cap(t.scratch) < t.nsize {
		t.scratch = make([]byte, t.nsize)
	}
	buf := t.scratch[:t.nsize]
	t.dev.Read(int64(n), buf)
	c := int(binary.LittleEndian.Uint64(buf[nCount:]))
	if c > t.cap {
		c = t.cap
	}
	return buf, c
}

func bufEnt(buf []byte, i int) entry {
	off := nEntries + i*entSize
	return entry{
		k: binary.LittleEndian.Uint64(buf[off:]),
		v: binary.LittleEndian.Uint64(buf[off+8:]),
	}
}

// appendEntries writes entries at the end of node n and commits them with a
// single atomic durable count update (the multi-entry commit point).
func (t *Tree) appendEntries(n uint64, es ...entry) {
	c := t.count(n)
	if c+len(es) > t.cap {
		panic("nvbtree: append past node capacity")
	}
	base := int64(n) + nEntries + int64(c)*entSize
	for i, e := range es {
		t.dev.WriteU64(base+int64(i)*entSize, e.k)
		t.dev.WriteU64(base+int64(i)*entSize+8, e.v)
	}
	t.dev.Sync(base, len(es)*entSize)
	t.dev.WriteU64Durable(int64(n)+nCount, uint64(c+len(es)))
}

// resolve returns the live (shadow- and tombstone-resolved) entries of node
// n, sorted by key. Later appends win over earlier ones.
func (t *Tree) resolve(n uint64) []entry {
	buf, c := t.readNode(n)
	m := make(map[uint64]uint64, c)
	order := make([]uint64, 0, c)
	for i := 0; i < c; i++ {
		e := bufEnt(buf, i)
		if _, seen := m[e.k]; !seen {
			order = append(order, e.k)
		}
		m[e.k] = e.v
	}
	live := make([]entry, 0, len(order))
	for _, k := range order {
		if v := m[k]; v&tombstone == 0 {
			live = append(live, entry{k, v})
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].k < live[j].k })
	return live
}

// lookupIn scans node n backwards for key k; the newest entry wins.
func (t *Tree) lookupIn(n uint64, k uint64) (uint64, bool) {
	buf, c := t.readNode(n)
	for i := c - 1; i >= 0; i-- {
		e := bufEnt(buf, i)
		if e.k == k {
			if e.v&tombstone != 0 {
				return 0, false
			}
			return e.v, true
		}
	}
	return 0, false
}

// routeChild picks the child of inner node n covering key k: the live
// routing entry with the largest separator <= k, or the smallest separator
// if k precedes all of them. Shadow resolution runs backwards over the
// committed entries without allocating.
func (t *Tree) routeChild(n uint64, k uint64) uint64 {
	buf, c := t.readNode(n)
	if cap(t.seen) < t.cap {
		t.seen = make([]uint64, 0, t.cap)
	}
	seen := t.seen[:0]
	var bestK, bestV uint64
	haveBest := false
	var minK, minV uint64
	haveMin := false
	for i := c - 1; i >= 0; i-- {
		e := bufEnt(buf, i)
		dup := false
		for _, sk := range seen {
			if sk == e.k {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen = append(seen, e.k)
		if e.v&tombstone != 0 {
			continue
		}
		if e.k <= k && (!haveBest || e.k > bestK) {
			bestK, bestV, haveBest = e.k, e.v, true
		}
		if !haveMin || e.k < minK {
			minK, minV, haveMin = e.k, e.v, true
		}
	}
	if haveBest {
		return bestV
	}
	if haveMin {
		return minV
	}
	panic("nvbtree: inner node with no live children")
}

// Get returns the value stored for key k.
func (t *Tree) Get(k uint64) (uint64, bool) {
	n := t.root()
	for !t.isLeaf(n) {
		n = t.routeChild(n, k)
	}
	return t.lookupIn(n, k)
}

// Put inserts or replaces k=v. v must be below 2^63. An index-arena
// exhaustion during a node rewrite is returned as an error; the tree stays
// consistent (the failed rewrite is never made reachable).
func (t *Tree) Put(k, v uint64) error {
	if v&tombstone != 0 {
		panic("nvbtree: value uses the tombstone bit")
	}
	return t.modify(k, v)
}

// Delete removes key k, reporting whether it was present.
func (t *Tree) Delete(k uint64) (bool, error) {
	if _, ok := t.Get(k); !ok {
		return false, nil
	}
	if err := t.modify(k, tombstone); err != nil {
		return false, err
	}
	return true, nil
}

// modify appends (k, v) — possibly a tombstone — into the correct leaf,
// rewriting/splitting nodes as needed.
func (t *Tree) modify(k, v uint64) error {
	// Descend, preemptively rewriting any node too full to absorb a child
	// replacement (inner) or the append itself (leaf).
	for {
		var parent uint64
		n := t.root()
		restart := false
		for !t.isLeaf(n) {
			if t.cap-t.count(n) < minFree {
				if err := t.rewrite(n, parent, nil); err != nil {
					return err
				}
				restart = true
				break
			}
			parent = n
			n = t.routeChild(n, k)
		}
		if restart {
			continue
		}
		if t.count(n) < t.cap {
			t.appendEntries(n, entry{k, v})
			return nil
		}
		// Full leaf: rewrite it with the pending entry folded in.
		return t.rewrite(n, parent, &entry{k, v})
	}
}

// rewrite resolves node n and replaces it with one or two fresh nodes
// (copy-on-write), optionally folding in a pending entry, and journals the
// swap so a crash cannot corrupt or leak the tree. An allocation failure
// before the journal is written returns an error with the tree untouched:
// the partially built nodes are freed and nothing became reachable.
func (t *Tree) rewrite(n, parent uint64, pending *entry) error {
	live := t.resolve(n)
	if pending != nil {
		// Fold the pending (k,v) into the live set.
		replaced := false
		for i := range live {
			if live[i].k == pending.k {
				live[i].v = pending.v
				replaced = true
				break
			}
		}
		if !replaced {
			live = append(live, *pending)
			sort.Slice(live, func(i, j int) bool { return live[i].k < live[j].k })
		}
		// Drop tombstones folded into a rewrite.
		out := live[:0]
		for _, e := range live {
			if e.v&tombstone == 0 {
				out = append(out, e)
			}
		}
		live = out
	}
	leaf := t.isLeaf(n)

	// The separator the parent currently uses for n; an empty rewrite keeps
	// it so separator keys stay unique within the parent.
	var sepOld uint64
	if parent != 0 {
		var ok bool
		sepOld, ok = t.routingKeyFor(parent, n)
		if !ok {
			panic("nvbtree: old child not routed by parent")
		}
	}

	// Build replacement node(s). Split if the live set doesn't leave
	// headroom in a single node. On allocation failure, free what was built
	// — none of it is journaled or reachable yet.
	var newNodes []uint64
	var seps []uint64
	abandon := func(err error) error {
		for _, p := range newNodes {
			t.arena.Free(pmalloc.Ptr(p))
		}
		return err
	}
	buildNode := func(es []entry) (uint64, error) {
		nn, err := t.newNode(leaf)
		if err != nil {
			return 0, err
		}
		c := len(es)
		base := int64(nn) + nEntries
		for i, e := range es {
			t.dev.WriteU64(base+int64(i)*entSize, e.k)
			t.dev.WriteU64(base+int64(i)*entSize+8, e.v)
		}
		t.dev.WriteU64(int64(nn)+nCount, uint64(c))
		t.dev.Sync(int64(nn), t.nsize)
		return nn, nil
	}
	sepOf := func(es []entry) uint64 {
		if len(es) == 0 {
			return 0
		}
		return es[0].k
	}
	if len(live) > t.cap-minFree {
		mid := len(live) / 2
		l, r := live[:mid], live[mid:]
		ln, err := buildNode(l)
		if err != nil {
			return abandon(err)
		}
		newNodes = append(newNodes, ln)
		rn, err := buildNode(r)
		if err != nil {
			return abandon(err)
		}
		newNodes = append(newNodes, rn)
		seps = []uint64{sepOf(l), sepOf(r)}
	} else {
		nn, err := buildNode(live)
		if err != nil {
			return abandon(err)
		}
		newNodes = append(newNodes, nn)
		sep := sepOf(live)
		if len(live) == 0 && parent != 0 {
			sep = sepOld
		}
		seps = []uint64{sep}
	}
	if parent != 0 && len(live) > 0 && sepOld < seps[0] {
		// A node's subtree can hold keys below its first entry: routeChild
		// sends keys smaller than every separator to the smallest child, so
		// a min child (or, for inner nodes, a subtree on the min spine)
		// legitimately covers [sepOld, firstKey). Raising the separator to
		// the first entry key would strand those keys — the parent would
		// route their range to the left sibling while they stay here. The
		// left replacement keeps min(sepOld, firstKey): the parent-routed
		// lower bound when the first entry sits above it, the first entry
		// key when the node is a min child already covering keys below
		// sepOld (where keeping sepOld would hand [firstKey, sepOld) to the
		// wrong sibling).
		seps[0] = sepOld
	}

	var newRoot uint64
	probe := newNodes[0]
	if parent == 0 && len(newNodes) == 2 {
		// Root split: a fresh root routes to the two halves.
		nr, err := t.newNode(false)
		if err != nil {
			return abandon(err)
		}
		newRoot = nr
		base := int64(newRoot) + nEntries
		for i := range newNodes {
			t.dev.WriteU64(base+int64(i)*entSize, seps[i])
			t.dev.WriteU64(base+int64(i)*entSize+8, newNodes[i])
		}
		t.dev.WriteU64(int64(newRoot)+nCount, 2)
		t.dev.Sync(int64(newRoot), t.nsize)
		probe = newRoot
	} else if parent == 0 {
		probe = newNodes[0]
	}

	// Journal the swap: {old, parent, probe, new...}, durably, before the
	// new nodes are marked persisted.
	jNew := [3]uint64{}
	copy(jNew[:], newNodes)
	if newRoot != 0 {
		jNew[len(newNodes)] = newRoot
	}
	d := t.dev
	d.WriteU64(int64(t.hdr)+hJOld, n)
	d.WriteU64(int64(t.hdr)+hJParent, parent)
	d.WriteU64(int64(t.hdr)+hJProbe, probe)
	for i, p := range jNew {
		d.WriteU64(int64(t.hdr)+hJNew+int64(i)*8, p)
	}
	d.Sync(int64(t.hdr)+hJOld, hdrBytes-hJOld)

	for _, p := range jNew {
		if p != 0 {
			t.arena.SetPersisted(pmalloc.Ptr(p))
		}
	}

	// Commit: make the new nodes reachable with one atomic step.
	if parent == 0 {
		t.setRootDurable(probe)
	} else {
		es := make([]entry, 0, 3)
		es = append(es, entry{sepOld, n | tombstone})
		for i, nn := range newNodes {
			es = append(es, entry{seps[i], nn})
		}
		t.appendEntries(parent, es...)
	}

	// Release the replaced node, then clear the journal.
	t.arena.Free(pmalloc.Ptr(n))
	d.WriteU64(int64(t.hdr)+hJOld, 0)
	d.Sync(int64(t.hdr)+hJOld, 8)
	return nil
}

// routingKeyFor returns the separator key of parent's live routing entry
// whose child is c.
func (t *Tree) routingKeyFor(parent, c uint64) (uint64, bool) {
	for _, e := range t.resolve(parent) {
		if e.v == c {
			return e.k, true
		}
	}
	return 0, false
}

// recoverJournal completes or rolls back a rewrite interrupted by a crash.
func (t *Tree) recoverJournal() {
	d := t.dev
	old := d.ReadU64(int64(t.hdr) + hJOld)
	if old == 0 {
		return
	}
	parent := d.ReadU64(int64(t.hdr) + hJParent)
	probe := d.ReadU64(int64(t.hdr) + hJProbe)
	var news [3]uint64
	for i := range news {
		news[i] = d.ReadU64(int64(t.hdr) + hJNew + int64(i)*8)
	}
	committed := false
	if parent == 0 {
		committed = t.root() == probe
	} else {
		// Scan the parent's committed entries for a live route to probe.
		for i := t.count(parent) - 1; i >= 0; i-- {
			if e := t.entAt(parent, i); e.v == probe {
				committed = true
				break
			}
		}
	}
	if committed {
		// The swap is visible: discard the replaced node if still live.
		if t.arena.StateOf(pmalloc.Ptr(old)) != pmalloc.StateFree {
			t.arena.Free(pmalloc.Ptr(old))
		}
	} else {
		// The swap never became visible: discard any new node that was
		// already marked persisted (un-persisted ones were reclaimed by the
		// allocator's own recovery scan).
		for _, p := range news {
			if p != 0 && t.arena.StateOf(pmalloc.Ptr(p)) == pmalloc.StatePersisted {
				t.arena.Free(pmalloc.Ptr(p))
			}
		}
	}
	d.WriteU64(int64(t.hdr)+hJOld, 0)
	d.Sync(int64(t.hdr)+hJOld, 8)
}

// Iter calls fn for each key >= from in ascending order until fn returns
// false. It re-descends between leaves (the tree keeps no leaf chain, since
// leaves are replaced copy-on-write).
func (t *Tree) Iter(from uint64, fn func(k, v uint64) bool) {
	for {
		n := t.root()
		// A healthy tree over 64-bit keys is at most ~64 levels deep; a
		// longer descent means a corrupted child pointer cycling back on
		// itself (possible after an injected crash with fences disabled).
		// Bail out instead of spinning forever.
		for depth := 0; !t.isLeaf(n); depth++ {
			if depth > maxIterDepth {
				return
			}
			n = t.routeChild(n, from)
		}
		live := t.resolve(n)
		emitted := false
		var last uint64
		for _, e := range live {
			if e.k < from {
				continue
			}
			if !fn(e.k, e.v) {
				return
			}
			emitted = true
			last = e.k
		}
		if emitted {
			if last == ^uint64(0) {
				return
			}
			from = last + 1
			continue
		}
		// Nothing >= from in this leaf; probe the next key range. The leaf
		// with the largest keys simply ends the iteration.
		next, ok := t.successorLeafStart(from)
		if !ok {
			return
		}
		// In a healthy tree a successor found outside the routed leaf is
		// strictly greater than from (an exact match would have been routed
		// to and emitted above), so equality means corrupt routing.
		if next <= from {
			return
		}
		from = next
	}
}

// maxIterDepth bounds interior descents in Iter against corrupted child
// pointers; legitimate trees never approach it.
const maxIterDepth = 80

// successorLeafStart finds the smallest key >= from anywhere in the tree,
// used when a descent lands on a leaf with no matching entries.
func (t *Tree) successorLeafStart(from uint64) (uint64, bool) {
	var best uint64
	found := false
	var walk func(n uint64, depth int)
	walk = func(n uint64, depth int) {
		if depth > maxIterDepth {
			return // corrupted child pointer cycle; see Iter
		}
		if t.isLeaf(n) {
			for _, e := range t.resolve(n) {
				if e.k >= from && (!found || e.k < best) {
					best, found = e.k, true
				}
			}
			return
		}
		live := t.resolve(n)
		for i, e := range live {
			// Subtree i covers [sep_i, sep_{i+1}); skip those entirely
			// below from.
			if i+1 < len(live) && live[i+1].k <= from {
				continue
			}
			walk(e.v, depth+1)
			if found {
				return
			}
		}
	}
	walk(t.root(), 0)
	return best, found
}

// Count walks the tree and returns the number of live keys (test helper;
// the engines track row counts themselves).
func (t *Tree) Count() int {
	n := 0
	t.Iter(0, func(k, v uint64) bool { n++; return true })
	return n
}

// Nodes calls fn with every node chunk pointer of the tree plus its header
// chunk. Recovery sweeps use it to mark reachable index storage.
func (t *Tree) Nodes(fn func(p pmalloc.Ptr)) {
	fn(t.hdr)
	var walk func(n uint64)
	walk = func(n uint64) {
		fn(pmalloc.Ptr(n))
		if !t.isLeaf(n) {
			for _, e := range t.resolve(n) {
				walk(e.v)
			}
		}
	}
	walk(t.root())
}

// Release frees every node and the header. The tree must not be used after.
func (t *Tree) Release() {
	var walk func(n uint64)
	walk = func(n uint64) {
		if !t.isLeaf(n) {
			for _, e := range t.resolve(n) {
				walk(e.v)
			}
		}
		t.arena.Free(pmalloc.Ptr(n))
	}
	walk(t.root())
	t.arena.Free(t.hdr)
}
