package nvbtree

import (
	"flag"
	"fmt"
	"sort"
	"testing"

	"math/rand"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
)

// propSeed replays one failing property sequence: go test -run Property -seed=N
var propSeed = flag.Int64("seed", 1, "base seed for the property-test sequences")

// propOp is one step of a randomized tree workload.
type propOp struct {
	kind byte // 'p' put, 'd' delete, 'g' get, 's' scan
	k, v uint64
}

func (o propOp) String() string {
	switch o.kind {
	case 'p':
		return fmt.Sprintf("Put(%d,%d)", o.k, o.v)
	case 'd':
		return fmt.Sprintf("Delete(%d)", o.k)
	case 'g':
		return fmt.Sprintf("Get(%d)", o.k)
	default:
		return fmt.Sprintf("Scan(from=%d)", o.k)
	}
}

// genProp draws a sequence over a deliberately small key space so replaces,
// delete hits, and re-inserts of deleted keys all occur.
func genProp(rng *rand.Rand, n int) []propOp {
	keyspace := uint64(64 + rng.Intn(1024))
	ops := make([]propOp, n)
	for i := range ops {
		k := rng.Uint64() % keyspace
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // bias toward growth so node rewrites and splits happen
			// Values must stay below 2^63: the top bit is the tombstone flag.
			ops[i] = propOp{kind: 'p', k: k, v: rng.Uint64() &^ (1 << 63)}
		case 5, 6:
			ops[i] = propOp{kind: 'd', k: k}
		case 7, 8:
			ops[i] = propOp{kind: 'g', k: k}
		default:
			ops[i] = propOp{kind: 's', k: k}
		}
	}
	return ops
}

// runProp replays ops on a fresh tree against a map model, checking every
// return value and, on scans, order and completeness vs the sorted model.
// At the end the tree is re-attached with Open over the same arena and the
// reopened handle must expose the identical contents — the durable root and
// journal must describe exactly the state the live handle reported.
func runProp(ops []propOp, nodeSize int) error {
	dev := nvm.NewDevice(nvm.DefaultConfig(64 << 20))
	arena := pmalloc.Format(dev, 0, 64<<20)
	tr, err := Create(arena, nodeSize)
	if err != nil {
		return fmt.Errorf("Create: %w", err)
	}
	model := make(map[uint64]uint64)
	for i, o := range ops {
		switch o.kind {
		case 'p':
			if err := tr.Put(o.k, o.v); err != nil {
				return fmt.Errorf("op %d %v: %w", i, o, err)
			}
			model[o.k] = o.v
		case 'd':
			_, had := model[o.k]
			ok, err := tr.Delete(o.k)
			if err != nil {
				return fmt.Errorf("op %d %v: %w", i, o, err)
			}
			if ok != had {
				return fmt.Errorf("op %d %v: Delete returned %v, model had=%v", i, o, ok, had)
			}
			delete(model, o.k)
		case 'g':
			want, had := model[o.k]
			got, ok := tr.Get(o.k)
			if ok != had || (had && got != want) {
				return fmt.Errorf("op %d %v: Get = (%d,%v), model (%d,%v)", i, o, got, ok, want, had)
			}
		case 's':
			if err := checkScan(tr, model, o.k); err != nil {
				return fmt.Errorf("op %d %v: %w", i, o, err)
			}
		}
		if tr.Count() != len(model) {
			return fmt.Errorf("op %d %v: Count=%d, model %d", i, o, tr.Count(), len(model))
		}
	}
	if err := checkScan(tr, model, 0); err != nil {
		return err
	}
	re, err := Open(arena, tr.Header())
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	if err := checkScan(re, model, 0); err != nil {
		return fmt.Errorf("reopened tree: %w", err)
	}
	return nil
}

// checkScan compares Iter(from) against the sorted model suffix.
func checkScan(tr *Tree, model map[uint64]uint64, from uint64) error {
	var want []uint64
	for k := range model {
		if k >= from {
			want = append(want, k)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	i := 0
	var scanErr error
	tr.Iter(from, func(k, v uint64) bool {
		if i >= len(want) {
			scanErr = fmt.Errorf("scan from %d: extra key %d past model end", from, k)
			return false
		}
		if k != want[i] || v != model[k] {
			scanErr = fmt.Errorf("scan from %d: position %d got (%d,%d), want (%d,%d)", from, i, k, v, want[i], model[want[i]])
			return false
		}
		i++
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if i != len(want) {
		return fmt.Errorf("scan from %d: stopped after %d keys, model has %d", from, i, len(want))
	}
	return nil
}

// shrinkProp greedily removes chunks of the failing sequence while the
// failure reproduces, replaying each candidate on a fresh tree (ddmin-style).
func shrinkProp(ops []propOp, nodeSize int) []propOp {
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo+chunk <= len(ops); {
			cand := append(append([]propOp(nil), ops[:lo]...), ops[lo+chunk:]...)
			if runProp(cand, nodeSize) != nil {
				ops = cand // failure survives without this chunk — keep it out
			} else {
				lo += chunk
			}
		}
	}
	return ops
}

// TestPropertyRestartCycles drives long seeded insert/delete sequences with
// a clean crash + reopen every 500 steps, then requires every model key to
// be reachable by descent and the full scan to match the model exactly.
// Seed 193 is pinned: it reproduced a separator bug where rewriting a
// non-root inner node raised its routing separator from sepOld to its first
// entry key, stranding min-fallback keys below it (invisible to Get,
// infinite loop in Iter's successorLeafStart).
func TestPropertyRestartCycles(t *testing.T) {
	seeds := []int64{193, *propSeed, *propSeed + 1, *propSeed + 2, *propSeed + 3}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		dev := nvm.NewDevice(nvm.DefaultConfig(64 << 20))
		arena := pmalloc.Format(dev, 0, 64<<20)
		tr, err := Create(arena, 0)
		if err != nil {
			t.Fatal(err)
		}
		arena.SetRoot(0, tr.Header())
		model := make(map[uint64]uint64)
		for step := 1; step <= 3000; step++ {
			k := rng.Uint64()%4000 + 1
			v := rng.Uint64() &^ (1 << 63)
			if rng.Intn(2) == 0 {
				_, inModel := model[k]
				removed, err := tr.Delete(k)
				if err != nil || removed != inModel {
					t.Fatalf("seed %d step %d: Delete(%d) = %v, %v; model had=%v", seed, step, k, removed, err, inModel)
				}
				delete(model, k)
			} else {
				if err := tr.Put(k, v); err != nil {
					t.Fatalf("seed %d step %d: Put(%d): %v", seed, step, k, err)
				}
				model[k] = v
			}
			want, inModel := model[k]
			if got, ok := tr.Get(k); ok != inModel || (ok && got != want) {
				t.Fatalf("seed %d step %d: Get(%d) = (%d,%v), model (%d,%v)", seed, step, k, got, ok, want, inModel)
			}
			if step%500 == 0 {
				dev.Crash()
				arena, err = pmalloc.Open(dev, 0)
				if err != nil {
					t.Fatalf("seed %d step %d: arena reopen: %v", seed, step, err)
				}
				tr, err = Open(arena, arena.Root(0))
				if err != nil {
					t.Fatalf("seed %d step %d: tree reopen: %v", seed, step, err)
				}
			}
		}
		for mk, mv := range model {
			if got, ok := tr.Get(mk); !ok || got != mv {
				t.Fatalf("seed %d: model key %d unreachable by descent: Get = (%d,%v), want %d", seed, mk, got, ok, mv)
			}
		}
		if err := checkScan(tr, model, 0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPropertyRandomOps drives seeded randomized insert/delete/get/scan
// sequences against a map model across node sizes small enough to force
// multi-level trees, and re-attaches the tree after each sequence to check
// the durable image. A failure is shrunk to a minimal op list and reported
// with its replay seed.
func TestPropertyRandomOps(t *testing.T) {
	seqs, opsPer := 60, 400
	if testing.Short() {
		seqs, opsPer = 12, 200
	}
	for _, nodeSize := range []int{256, 512, 1024} {
		nodeSize := nodeSize
		t.Run(fmt.Sprintf("node%d", nodeSize), func(t *testing.T) {
			t.Parallel()
			for s := 0; s < seqs; s++ {
				seed := *propSeed + int64(s)
				rng := rand.New(rand.NewSource(seed))
				ops := genProp(rng, opsPer)
				if err := runProp(ops, nodeSize); err != nil {
					min := shrinkProp(ops, nodeSize)
					t.Fatalf("seed %d (replay: go test -run Property -seed=%d): %v\nminimal sequence (%d ops of %d): %v\nshrunk failure: %v",
						seed, seed, err, len(min), len(ops), min, runProp(min, nodeSize))
				}
			}
		})
	}
}
