package nvbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
)

func newTree(t testing.TB, nodeSize int) (*nvm.Device, *pmalloc.Arena, *Tree) {
	t.Helper()
	dev := nvm.NewDevice(nvm.DefaultConfig(64 << 20))
	arena := pmalloc.Format(dev, 0, 64<<20)
	tr, err := Create(arena, nodeSize)
	if err != nil {
		t.Fatal(err)
	}
	return dev, arena, tr
}

func put(tb testing.TB, tr *Tree, k, v uint64) {
	tb.Helper()
	if err := tr.Put(k, v); err != nil {
		tb.Fatal(err)
	}
}

func del(tb testing.TB, tr *Tree, k uint64) bool {
	tb.Helper()
	ok, err := tr.Delete(k)
	if err != nil {
		tb.Fatal(err)
	}
	return ok
}

func TestPutGetDelete(t *testing.T) {
	_, _, tr := newTree(t, 0)
	put(t, tr, 5, 50)
	if v, ok := tr.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	put(t, tr, 5, 51)
	if v, _ := tr.Get(5); v != 51 {
		t.Errorf("value after replace = %d", v)
	}
	if !del(t, tr, 5) {
		t.Error("Delete missed existing key")
	}
	if _, ok := tr.Get(5); ok {
		t.Error("deleted key still present")
	}
	if del(t, tr, 5) {
		t.Error("second delete succeeded")
	}
}

func TestManyKeys(t *testing.T) {
	_, _, tr := newTree(t, 0)
	rng := rand.New(rand.NewSource(2))
	keys := rng.Perm(20000)
	for _, k := range keys {
		put(t, tr, uint64(k)+1, uint64(k)*5)
	}
	for _, k := range keys {
		if v, ok := tr.Get(uint64(k) + 1); !ok || v != uint64(k)*5 {
			t.Fatalf("Get(%d) = %d,%v", k+1, v, ok)
		}
	}
	if tr.Count() != 20000 {
		t.Errorf("Count = %d", tr.Count())
	}
}

func TestIterOrdered(t *testing.T) {
	_, _, tr := newTree(t, 256)
	for i := 0; i < 3000; i++ {
		put(t, tr, uint64(i*13%3000)+1, uint64(i))
	}
	var got []uint64
	tr.Iter(0, func(k, v uint64) bool { got = append(got, k); return true })
	if len(got) != 3000 {
		t.Fatalf("iterated %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("iteration out of order")
	}
	// Range start mid-tree.
	var ranged []uint64
	tr.Iter(1500, func(k, v uint64) bool {
		if k >= 1600 {
			return false
		}
		ranged = append(ranged, k)
		return true
	})
	if len(ranged) != 100 {
		t.Fatalf("range scan found %d keys, want 100", len(ranged))
	}
}

func TestSurvivesCleanCrash(t *testing.T) {
	dev, arena, tr := newTree(t, 0)
	for i := uint64(1); i <= 5000; i++ {
		put(t, tr, i, i*2)
	}
	hdr := tr.Header()
	arena.SetRoot(0, hdr)
	dev.Crash()
	arena2, err := pmalloc.Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(arena2, arena2.Root(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5000; i++ {
		if v, ok := tr2.Get(i); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v after crash", i, v, ok)
		}
	}
}

func TestDeletesSurviveCrash(t *testing.T) {
	dev, arena, tr := newTree(t, 128)
	for i := uint64(1); i <= 1000; i++ {
		put(t, tr, i, i)
	}
	for i := uint64(1); i <= 1000; i += 2 {
		del(t, tr, i)
	}
	arena.SetRoot(0, tr.Header())
	dev.Crash()
	arena2, _ := pmalloc.Open(dev, 0)
	tr2, err := Open(arena2, arena2.Root(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 1000; i++ {
		_, ok := tr2.Get(i)
		if want := i%2 == 0; ok != want {
			t.Fatalf("key %d present=%v after crash, want %v", i, ok, want)
		}
	}
}

func TestNodeSizes(t *testing.T) {
	for _, ns := range []int{128, 256, 512, 1024, 4096} {
		_, _, tr := newTree(t, ns)
		for i := uint64(1); i <= 3000; i++ {
			put(t, tr, i, i+7)
		}
		for i := uint64(1); i <= 3000; i++ {
			if v, ok := tr.Get(i); !ok || v != i+7 {
				t.Fatalf("nodeSize %d: Get(%d) = %d,%v", ns, i, v, ok)
			}
		}
	}
}

func TestTombstoneValuePanics(t *testing.T) {
	_, _, tr := newTree(t, 0)
	defer func() {
		if recover() == nil {
			t.Error("Put with tombstone bit did not panic")
		}
	}()
	_ = tr.Put(1, 1<<63)
}

func TestOpenRejectsGarbage(t *testing.T) {
	_, arena, _ := newTree(t, 0)
	p, _ := arena.Alloc(64, pmalloc.TagOther)
	if _, err := Open(arena, p); err == nil {
		t.Fatal("Open accepted a non-tree chunk")
	}
}

// Put must return an error — not panic, not corrupt the tree — when the
// arena can no longer hold a node rewrite.
func TestPutReturnsErrorWhenArenaFull(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(1 << 20))
	arena := pmalloc.Format(dev, 0, 1<<20)
	tr, err := Create(arena, 128)
	if err != nil {
		t.Fatal(err)
	}
	var failed bool
	model := make(map[uint64]uint64)
	for i := uint64(1); i <= 1<<20; i++ {
		if err := tr.Put(i, i); err != nil {
			failed = true
			break
		}
		model[i] = i
	}
	if !failed {
		t.Fatal("arena never filled up")
	}
	// Every previously inserted key must still read back correctly.
	for k, v := range model {
		if got, ok := tr.Get(k); !ok || got != v {
			t.Fatalf("after alloc failure: Get(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
}

func TestRelease(t *testing.T) {
	_, arena, tr := newTree(t, 256)
	for i := uint64(1); i <= 2000; i++ {
		put(t, tr, i, i)
	}
	before := arena.Allocated()
	tr.Release()
	if arena.Allocated() >= before {
		t.Errorf("Release freed nothing: %d -> %d", before, arena.Allocated())
	}
}

// Property: tree matches a map model under arbitrary operation sequences,
// across clean restarts.
func TestQuickAgainstMapWithRestarts(t *testing.T) {
	dev := nvm.NewDevice(nvm.DefaultConfig(256 << 20))
	arena := pmalloc.Format(dev, 0, 256<<20)
	tr, err := Create(arena, 128)
	if err != nil {
		t.Fatal(err)
	}
	arena.SetRoot(0, tr.Header())
	model := make(map[uint64]uint64)
	steps := 0

	fn := func(k, v uint64, del bool) bool {
		k = k%4000 + 1
		v &^= 1 << 63
		if del {
			_, inModel := model[k]
			removed, err := tr.Delete(k)
			if err != nil || removed != inModel {
				return false
			}
			delete(model, k)
		} else {
			if tr.Put(k, v) != nil {
				return false
			}
			model[k] = v
		}
		steps++
		if steps%500 == 0 {
			// Clean crash + reopen mid-sequence.
			dev.Crash()
			var err error
			arena, err = pmalloc.Open(dev, 0)
			if err != nil {
				return false
			}
			tr, err = Open(arena, arena.Root(0))
			if err != nil {
				return false
			}
		}
		got, ok := tr.Get(k)
		want, inModel := model[k]
		return ok == inModel && (!ok || got == want)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
	// Full ordered scan against the model.
	var keys []uint64
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var got []uint64
	tr.Iter(0, func(k, v uint64) bool { got = append(got, k); return true })
	if len(got) != len(keys) {
		t.Fatalf("scan found %d keys, model has %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], keys[i])
		}
	}
}

// Property: a crash injected at ANY fence boundary leaves the tree
// consistent: every operation that completed before the crash is fully
// visible; the interrupted operation is atomic (either fully applied or
// absent); and the tree remains usable.
func TestQuickCrashInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 120; iter++ {
		dev := nvm.NewDevice(nvm.DefaultConfig(32 << 20))
		arena := pmalloc.Format(dev, 0, 32<<20)
		tr, err := Create(arena, 128)
		if err != nil {
			t.Fatal(err)
		}
		arena.SetRoot(0, tr.Header())
		model := make(map[uint64]uint64)

		// Arm a crash at a random fence within the workload.
		dev.FailAfterFences(rng.Intn(600))
		crashed := false
		var inflightKey uint64
		var inflightDel bool
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvm.ErrInjectedCrash {
						panic(r)
					}
					crashed = true
				}
			}()
			for i := 0; i < 400; i++ {
				k := uint64(rng.Intn(500)) + 1
				if rng.Intn(4) == 0 {
					inflightKey, inflightDel = k, true
					if _, err := tr.Delete(k); err != nil {
						t.Error(err)
						return
					}
					delete(model, k)
				} else {
					v := uint64(rng.Intn(1 << 20))
					inflightKey, inflightDel = k, false
					if err := tr.Put(k, v); err != nil {
						t.Error(err)
						return
					}
					model[k] = v
				}
			}
		}()
		if t.Failed() {
			return
		}
		dev.Crash()
		arena2, err := pmalloc.Open(dev, 0)
		if err != nil {
			t.Fatalf("iter %d: arena open: %v", iter, err)
		}
		tr2, err := Open(arena2, arena2.Root(0))
		if err != nil {
			t.Fatalf("iter %d: tree open: %v", iter, err)
		}
		for k := uint64(1); k <= 500; k++ {
			got, ok := tr2.Get(k)
			want, inModel := model[k]
			if crashed && k == inflightKey {
				// The interrupted op may or may not have applied; both the
				// pre- and post-states are acceptable, but the read must not
				// return garbage.
				if ok && !inflightDel && got != want && got != 0 {
					// Value must be either the new value (applied) or the
					// previous one; we didn't track the previous, so only
					// assert it's not a torn/corrupt value by re-reading.
					if got2, ok2 := tr2.Get(k); got2 != got || ok2 != ok {
						t.Fatalf("iter %d: unstable read for in-flight key", iter)
					}
				}
				continue
			}
			if ok != inModel || (ok && got != want) {
				t.Fatalf("iter %d (crashed=%v): key %d = (%d,%v), model (%d,%v)",
					iter, crashed, k, got, ok, want, inModel)
			}
		}
		// Tree must remain fully usable after recovery.
		if err := tr2.Put(9999, 1); err != nil {
			t.Fatal(err)
		}
		if _, ok := tr2.Get(9999); !ok {
			t.Fatalf("iter %d: tree unusable after recovery", iter)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	dev := nvm.NewDevice(nvm.DefaultConfig(1 << 30))
	tr, err := Create(pmalloc.Format(dev, 0, 1<<30), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(uint64(i)+1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	dev := nvm.NewDevice(nvm.DefaultConfig(1 << 30))
	tr, err := Create(pmalloc.Format(dev, 0, 1<<30), 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(1); i <= 1<<20; i++ {
		if err := tr.Put(i, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i)%(1<<20) + 1)
	}
}
