package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nstore/internal/core"
)

// Op identifies one declarative operation.
type Op byte

// The op set. Every op maps onto a single testbed transaction server-side;
// OpTxn bundles several ops into one atomic transaction (single-partition,
// like every testbed transaction).
const (
	OpGet    Op = 1 // point read by primary key
	OpPut    Op = 2 // insert a full row
	OpDelete Op = 3 // delete by primary key
	OpScan   Op = 4 // ascending range scan [From, To), bounded by Limit
	OpRmw    Op = 5 // read-modify-write: return the pre-image, apply column updates
	OpTxn    Op = 6 // multi-op transaction (sub-ops may not nest another OpTxn)

	// Replication / cluster metadata ops (the REPL_APPEND / REPL_ACK /
	// SHARDMAP frames of the cluster layer). Part carries the shard id.
	OpReplAppend Op = 7  // primary→backup: ship one committed batch (Epoch, Seq, Ops)
	OpReplAck    Op = 8  // ack-state probe: ask a replica its durable (Epoch, Seq) for a shard
	OpShardMap   Op = 9  // fetch the node's current shard map
	OpReplSnap   Op = 10 // primary→backup: snapshot chunk for re-seeding (Phase, rows)

	// Cross-shard 2PC ops (percolator-style; DESIGN.md §13). These are
	// executor-plane writes: they run through the replicated commit path so
	// lock and status records ride the REPL_APPEND stream to backups.
	OpTxnPrewrite Op = 11 // buffer write sub-ops as lock records on one shard
	OpTxnCommit   Op = 12 // apply buffered ops + delete locks (Phase 1 = primary: the commit point)
	OpTxnAbort    Op = 13 // delete locks (Phase 1 = primary: also write the abort fence)
	OpTxnResolve  Op = 14 // ask the primary shard a txn's fate (Phase 1 = force-rollback if undecided)

	// Consensus-plane ops for the replicated shard map (single-decree;
	// DESIGN.md §13). Epoch carries the ballot; Map carries the value.
	OpMapPrepare Op = 15 // phase 1: promise ballot, report highest accepted (ballot, map)
	OpMapAccept  Op = 16 // phase 2: accept (ballot, map) unless a higher ballot was promised
	OpMapLearn   Op = 17 // learn a chosen map (version-monotonic install)
)

// OpReplSnap phases.
const (
	SnapBegin byte = 0 // clear the shard and start a snapshot at (Epoch, Seq)
	SnapChunk byte = 1 // one table's row chunk
	SnapDone  byte = 2 // snapshot complete; the replica is a backup at (Epoch, Seq)
)

// IsRepl reports whether the op belongs to the replication/cluster-metadata
// plane (dispatched to the server's Replicator, never to the executor). The
// consensus ops live on this plane too: acceptors answer them without
// touching the storage executors.
func (o Op) IsRepl() bool {
	return o == OpReplAppend || o == OpReplAck || o == OpShardMap || o == OpReplSnap ||
		o == OpMapPrepare || o == OpMapAccept || o == OpMapLearn
}

// Is2PC reports whether the op is a cross-shard transaction-protocol op.
// These execute on the storage executor (and replicate) like ordinary
// writes, but carry the extra txn fields.
func (o Op) Is2PC() bool {
	return o == OpTxnPrewrite || o == OpTxnCommit || o == OpTxnAbort || o == OpTxnResolve
}

// basic reports whether the op is a plain data op (legal as an OpTxn sub-op
// and as a prewrite's buffered write, where only the write subset applies).
func (o Op) basic() bool {
	return o == OpGet || o == OpPut || o == OpDelete || o == OpScan || o == OpRmw
}

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpRmw:
		return "rmw"
	case OpTxn:
		return "txn"
	case OpReplAppend:
		return "repl-append"
	case OpReplAck:
		return "repl-ack"
	case OpShardMap:
		return "shardmap"
	case OpReplSnap:
		return "repl-snap"
	case OpTxnPrewrite:
		return "txn-prewrite"
	case OpTxnCommit:
		return "txn-commit"
	case OpTxnAbort:
		return "txn-abort"
	case OpTxnResolve:
		return "txn-resolve"
	case OpMapPrepare:
		return "map-prepare"
	case OpMapAccept:
		return "map-accept"
	case OpMapLearn:
		return "map-learn"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Ops lists the op set (for metrics registration and sweeps).
var Ops = []Op{OpGet, OpPut, OpDelete, OpScan, OpRmw, OpTxn,
	OpReplAppend, OpReplAck, OpShardMap, OpReplSnap,
	OpTxnPrewrite, OpTxnCommit, OpTxnAbort, OpTxnResolve,
	OpMapPrepare, OpMapAccept, OpMapLearn}

// Status is a typed response code. The set mirrors the internal/core error
// taxonomy plus the serving runtime's admission states, so a client on the
// far side of a TCP connection can make the same retry-vs-give-up decisions
// an in-process caller makes with errors.Is.
type Status byte

// Response statuses.
const (
	StatusOK         Status = 0  // the transaction committed and is durable (ack-after-barrier)
	StatusNotFound   Status = 1  // core.ErrKeyNotFound
	StatusKeyExists  Status = 2  // core.ErrKeyExists
	StatusAborted    Status = 3  // testbed.ErrAbort: clean client-requested rollback
	StatusBadRequest Status = 4  // malformed or schema-violating request; retrying is pointless
	StatusOverloaded Status = 5  // serve.ErrOverloaded: admission backpressure, retryable
	StatusRecovering Status = 6  // serve.ErrRecovering: partition mid-heal, retryable
	StatusRetryable  Status = 7  // other core.ErrRetryable failures (incl. contained panics)
	StatusCorrupt    Status = 8  // core.ErrCorrupt: partition heading into crash recovery
	StatusDegraded   Status = 9  // serve.ErrDegraded: circuit breaker open, operator needed
	StatusClosed     Status = 10 // serve.ErrClosed: runtime shut down
	StatusInternal   Status = 11 // anything unclassified
	// Cluster statuses. NotPrimary tells a client its shard map is stale:
	// refresh and re-route (the Router does this automatically). StaleEpoch
	// rejects a REPL frame from a fenced ex-primary; on seeing it the sender
	// must fence itself, never retry.
	StatusNotPrimary Status = 12 // node is not the shard's primary (or wrong role for a REPL frame)
	StatusStaleEpoch Status = 13 // REPL frame carried an epoch below the shard's current epoch
	// Locked means the key is held by another transaction's 2PC lock. The
	// response's Txn/Pri* fields name the holder; the client resolves the
	// lock against its primary shard (roll forward or back, whichever way
	// the primary record went) and retries. Deliberately not in Retryable():
	// blind resubmission cannot make progress until someone resolves.
	StatusLocked Status = 14
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not-found"
	case StatusKeyExists:
		return "key-exists"
	case StatusAborted:
		return "aborted"
	case StatusBadRequest:
		return "bad-request"
	case StatusOverloaded:
		return "overloaded"
	case StatusRecovering:
		return "recovering"
	case StatusRetryable:
		return "retryable"
	case StatusCorrupt:
		return "corrupt"
	case StatusDegraded:
		return "degraded"
	case StatusClosed:
		return "closed"
	case StatusInternal:
		return "internal"
	case StatusNotPrimary:
		return "not-primary"
	case StatusStaleEpoch:
		return "stale-epoch"
	case StatusLocked:
		return "locked"
	}
	return fmt.Sprintf("status(%d)", byte(s))
}

// Statuses lists every status (for metrics registration).
var Statuses = []Status{
	StatusOK, StatusNotFound, StatusKeyExists, StatusAborted, StatusBadRequest,
	StatusOverloaded, StatusRecovering, StatusRetryable, StatusCorrupt,
	StatusDegraded, StatusClosed, StatusInternal, StatusNotPrimary,
	StatusStaleEpoch, StatusLocked,
}

// Retryable reports whether the status is an invitation to resubmit: the
// request did not commit, the server is (or will be) healthy, and the client
// did nothing wrong. Mirrors core.IsRetryable across the wire.
func (s Status) Retryable() bool {
	return s == StatusOverloaded || s == StatusRecovering || s == StatusRetryable
}

// StatusError is the client-side error form of a non-OK status. Is makes the
// core taxonomy predicates work unchanged on the far side of the connection:
// errors.Is(err, core.ErrRetryable) for the three retryable statuses,
// core.ErrCorrupt, core.ErrKeyNotFound and core.ErrKeyExists likewise.
type StatusError struct {
	Status Status
	Msg    string
}

func (e *StatusError) Error() string {
	if e.Msg == "" {
		return "wire: " + e.Status.String()
	}
	return "wire: " + e.Status.String() + ": " + e.Msg
}

// Is maps wire statuses back onto the core error taxonomy sentinels.
func (e *StatusError) Is(target error) bool {
	switch target {
	case core.ErrRetryable:
		return e.Status.Retryable()
	case core.ErrCorrupt:
		return e.Status == StatusCorrupt
	case core.ErrKeyNotFound:
		return e.Status == StatusNotFound
	case core.ErrKeyExists:
		return e.Status == StatusKeyExists
	}
	return false
}

// RmwCol is one column modification inside an OpRmw.
type RmwCol struct {
	Col int  // column index in the table's schema
	Add bool // true: add Val.I to the current value (TInt columns only)
	Val core.Value
}

// LockRef names one lock record: the (table, key) a prewrite locked. Commit
// and abort carry the explicit list so no shard ever scans for a txn's locks.
type LockRef struct {
	Table string
	Key   uint64
}

// Transaction fate as recorded (or decided) on the primary shard.
const (
	TxnPending   byte = 0 // no status record; the primary lock decides
	TxnCommitted byte = 1 // committed status record present: roll forward
	TxnAborted   byte = 2 // abort fence present: roll back
)

// Request is one framed request. Exactly the fields relevant to Op are
// encoded; the rest stay zero. Part >= 0 pins the request to an explicit
// partition (workloads with their own placement, like TPC-C's
// warehouse-per-partition layout); Part == -1 routes by Key the way
// testbed.DB.Route does.
type Request struct {
	ID   uint64
	Part int32
	Op   Op

	Table string
	Key   uint64

	Row []core.Value // OpPut

	From, To uint64 // OpScan
	Limit    uint32 // OpScan: max rows returned (0 = server default)

	Cols []RmwCol // OpRmw

	Ops []Request // OpTxn/OpReplAppend sub-ops; only Op/Table/Key/Row/From/To/Limit/Cols are used

	// Replication fields (Part carries the shard id for every repl op).
	// The consensus ops reuse Epoch as the proposer's ballot.
	Epoch uint64 // OpReplAppend/OpReplAck/OpReplSnap: fencing epoch; OpMapPrepare/OpMapAccept: ballot
	Seq   uint64 // OpReplAppend: batch sequence; OpReplSnap: snapshot floor
	Phase byte   // OpReplSnap: snapshot phase; OpTxnCommit/OpTxnAbort: 1 = primary shard; OpTxnResolve: 1 = force rollback

	SnapKeys []uint64       // OpReplSnap(SnapChunk): primary keys for Table
	SnapRows [][]core.Value // OpReplSnap(SnapChunk): rows parallel to SnapKeys

	// 2PC fields. Txn is the transaction id (always nonzero). For
	// OpTxnPrewrite, Table/Key point at the PRIMARY lock (PriShard its
	// shard) and Ops carries the write sub-ops to buffer; for OpTxnResolve,
	// Table/Key point at the primary lock being asked about.
	Txn      uint64
	PriShard int32
	Locks    []LockRef // OpTxnCommit/OpTxnAbort: the lock records to settle

	// Map is the consensus value (OpMapAccept/OpMapLearn).
	Map *ShardMap
}

// Response body kinds (self-describing, so a decoder needs no request
// context to parse a response).
const (
	respNone byte = 0 // Put, Delete, or any non-OK status
	respRow  byte = 1 // Get, Rmw: found flag + optional row
	respScan byte = 2 // Scan: (key, row) list
	respSubs byte = 3 // Txn: per-sub-op responses
	respMap  byte = 4 // ShardMap: the node's current routing table
	respRepl byte = 5 // ReplAppend/ReplAck: replica's durable (epoch, seq)
	respTxn  byte = 6 // Locked conflicts and TxnResolve: txn id, state, primary lock pointer
	respCons byte = 7 // MapPrepare/MapAccept: ballot (+ highest accepted map, if any)
)

// Response is one framed response, matched to its request by ID. Pipelined
// responses may arrive in any order.
type Response struct {
	ID     uint64
	Status Status
	Msg    string // non-OK detail, empty on success

	Found bool         // Get/Rmw: whether the key existed
	Row   []core.Value // Get: the row; Rmw: the pre-image

	Keys []uint64       // Scan: primary keys, ascending
	Rows [][]core.Value // Scan: rows parallel to Keys

	Subs []Response // Txn: one response per sub-op, in request order

	Map *ShardMap // ShardMap: the node's current routing table

	// ReplAppend/ReplAck: the replica's durable position for the shard.
	// Encoded only when either is nonzero (a zero pair round-trips as
	// respNone, which decodes identically). The consensus ops reuse Epoch
	// as a ballot; when an accepted map rides along (Map != nil AND
	// Epoch != 0) the pair encodes as respCons.
	Epoch uint64
	Seq   uint64

	// 2PC fields (encoded as respTxn when Txn != 0): the transaction a
	// StatusLocked conflict belongs to, or the one TxnResolve decided.
	// TxnState is the primary shard's verdict; Pri* point at the primary
	// lock so the blocked client knows where to resolve.
	Txn      uint64
	TxnState byte
	PriShard int32
	PriTable string
	PriKey   uint64
	// LockTable/LockKey name the lock that actually blocked the request
	// (useful when the request was a scan and the caller cannot know which
	// key in the range is locked). Empty/zero on resolve verdicts.
	LockTable string
	LockKey   uint64
}

// Value tags inside rows. A decoded TBytes value always has a non-nil S so
// encode(decode(x)) is a fixpoint.
const (
	tagInt   byte = 0
	tagBytes byte = 1
)

var errTruncated = errors.New("wire: truncated message")

// dec is a bounds-checked little decoder over one payload.
type dec struct {
	b   []byte
	off int
}

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.off += n
	return v, nil
}

func (d *dec) byte() (byte, error) {
	if d.off >= len(d.b) {
		return 0, errTruncated
	}
	c := d.b[d.off]
	d.off++
	return c, nil
}

func (d *dec) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.b) {
		return nil, errTruncated
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s, nil
}

func (d *dec) remaining() int { return len(d.b) - d.off }

// count reads a uvarint element count and rejects values that could not
// possibly fit in the remaining bytes (each element costs at least min
// bytes), so a hostile count cannot pre-allocate unbounded memory.
func (d *dec) count(min int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if min < 1 {
		min = 1
	}
	if v > uint64(d.remaining()/min+1) {
		return 0, fmt.Errorf("wire: count %d exceeds remaining payload", v)
	}
	return int(v), nil
}

func (d *dec) str() (string, error) {
	n, err := d.count(1)
	if err != nil {
		return "", err
	}
	b, err := d.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendValue(dst []byte, v core.Value) []byte {
	if v.S != nil {
		dst = append(dst, tagBytes)
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		return append(dst, v.S...)
	}
	dst = append(dst, tagInt)
	return binary.LittleEndian.AppendUint64(dst, uint64(v.I))
}

func (d *dec) value() (core.Value, error) {
	tag, err := d.byte()
	if err != nil {
		return core.Value{}, err
	}
	switch tag {
	case tagInt:
		b, err := d.bytes(8)
		if err != nil {
			return core.Value{}, err
		}
		return core.Value{I: int64(binary.LittleEndian.Uint64(b))}, nil
	case tagBytes:
		n, err := d.count(1)
		if err != nil {
			return core.Value{}, err
		}
		b, err := d.bytes(n)
		if err != nil {
			return core.Value{}, err
		}
		return core.Value{S: append(make([]byte, 0, n), b...)}, nil
	}
	return core.Value{}, fmt.Errorf("wire: unknown value tag %d", tag)
}

func appendRow(dst []byte, row []core.Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = appendValue(dst, v)
	}
	return dst
}

func (d *dec) row() ([]core.Value, error) {
	n, err := d.count(2)
	if err != nil {
		return nil, err
	}
	row := make([]core.Value, n)
	for i := range row {
		if row[i], err = d.value(); err != nil {
			return nil, err
		}
	}
	return row, nil
}

// appendOpBody appends the op-specific body fields shared by top-level
// requests and OpTxn sub-ops.
func appendOpBody(dst []byte, req *Request) ([]byte, error) {
	dst = appendStr(dst, req.Table)
	switch req.Op {
	case OpGet, OpDelete:
		dst = binary.AppendUvarint(dst, req.Key)
	case OpPut:
		dst = binary.AppendUvarint(dst, req.Key)
		dst = appendRow(dst, req.Row)
	case OpScan:
		dst = binary.AppendUvarint(dst, req.From)
		dst = binary.AppendUvarint(dst, req.To)
		dst = binary.AppendUvarint(dst, uint64(req.Limit))
	case OpRmw:
		dst = binary.AppendUvarint(dst, req.Key)
		dst = binary.AppendUvarint(dst, uint64(len(req.Cols)))
		for _, c := range req.Cols {
			dst = binary.AppendUvarint(dst, uint64(c.Col))
			mode := byte(0)
			if c.Add {
				mode = 1
			}
			dst = append(dst, mode)
			dst = appendValue(dst, c.Val)
		}
	case OpTxnPrewrite:
		if req.Txn == 0 {
			return nil, errors.New("wire: prewrite with zero txn id")
		}
		if len(req.Ops) == 0 {
			return nil, errors.New("wire: empty prewrite")
		}
		if req.PriShard < 0 {
			return nil, fmt.Errorf("wire: prewrite primary shard %d out of range", req.PriShard)
		}
		dst = binary.AppendUvarint(dst, req.Txn)
		dst = binary.AppendUvarint(dst, uint64(req.PriShard))
		dst = binary.AppendUvarint(dst, req.Key)
		dst = binary.AppendUvarint(dst, uint64(len(req.Ops)))
		for i := range req.Ops {
			sub := &req.Ops[i]
			if sub.Op != OpPut && sub.Op != OpDelete && sub.Op != OpRmw {
				return nil, fmt.Errorf("wire: prewrite cannot buffer op %v", sub.Op)
			}
			dst = append(dst, byte(sub.Op))
			var err error
			if dst, err = appendOpBody(dst, sub); err != nil {
				return nil, err
			}
		}
	case OpTxnCommit, OpTxnAbort:
		if req.Txn == 0 {
			return nil, errors.New("wire: txn settle with zero txn id")
		}
		if req.Phase > 1 {
			return nil, fmt.Errorf("wire: txn phase %d out of range", req.Phase)
		}
		dst = binary.AppendUvarint(dst, req.Txn)
		dst = append(dst, req.Phase)
		dst = binary.AppendUvarint(dst, uint64(len(req.Locks)))
		for _, l := range req.Locks {
			dst = appendStr(dst, l.Table)
			dst = binary.AppendUvarint(dst, l.Key)
		}
	case OpTxnResolve:
		if req.Txn == 0 {
			return nil, errors.New("wire: resolve with zero txn id")
		}
		if req.Phase > 1 {
			return nil, fmt.Errorf("wire: resolve phase %d out of range", req.Phase)
		}
		dst = binary.AppendUvarint(dst, req.Txn)
		dst = append(dst, req.Phase)
		dst = binary.AppendUvarint(dst, req.Key)
	default:
		return nil, fmt.Errorf("wire: cannot encode op %v", req.Op)
	}
	return dst, nil
}

func (d *dec) opBody(req *Request) error {
	var err error
	if req.Table, err = d.str(); err != nil {
		return err
	}
	switch req.Op {
	case OpGet, OpDelete:
		req.Key, err = d.uvarint()
		return err
	case OpPut:
		if req.Key, err = d.uvarint(); err != nil {
			return err
		}
		req.Row, err = d.row()
		return err
	case OpScan:
		if req.From, err = d.uvarint(); err != nil {
			return err
		}
		if req.To, err = d.uvarint(); err != nil {
			return err
		}
		limit, err := d.uvarint()
		if err != nil {
			return err
		}
		if limit > 1<<31 {
			return fmt.Errorf("wire: scan limit %d out of range", limit)
		}
		req.Limit = uint32(limit)
		return nil
	case OpRmw:
		if req.Key, err = d.uvarint(); err != nil {
			return err
		}
		n, err := d.count(3)
		if err != nil {
			return err
		}
		req.Cols = make([]RmwCol, n)
		for i := range req.Cols {
			col, err := d.uvarint()
			if err != nil {
				return err
			}
			if col > 1<<16 {
				return fmt.Errorf("wire: rmw column %d out of range", col)
			}
			req.Cols[i].Col = int(col)
			mode, err := d.byte()
			if err != nil {
				return err
			}
			if mode > 1 {
				return fmt.Errorf("wire: unknown rmw mode %d", mode)
			}
			req.Cols[i].Add = mode == 1
			if req.Cols[i].Val, err = d.value(); err != nil {
				return err
			}
		}
		return nil
	case OpTxnPrewrite:
		if req.Txn, err = d.uvarint(); err != nil {
			return err
		}
		if req.Txn == 0 {
			return errors.New("wire: prewrite with zero txn id")
		}
		shard, err := d.uvarint()
		if err != nil {
			return err
		}
		if shard > 1<<20 {
			return fmt.Errorf("wire: prewrite primary shard %d out of range", shard)
		}
		req.PriShard = int32(shard)
		if req.Key, err = d.uvarint(); err != nil {
			return err
		}
		n, err := d.count(3)
		if err != nil {
			return err
		}
		if n == 0 {
			return errors.New("wire: empty prewrite")
		}
		req.Ops = make([]Request, n)
		for i := range req.Ops {
			opb, err := d.byte()
			if err != nil {
				return err
			}
			req.Ops[i].Op = Op(opb)
			req.Ops[i].Part = -1
			if o := req.Ops[i].Op; o != OpPut && o != OpDelete && o != OpRmw {
				return fmt.Errorf("wire: prewrite cannot buffer op %v", o)
			}
			if err := d.opBody(&req.Ops[i]); err != nil {
				return err
			}
		}
		return nil
	case OpTxnCommit, OpTxnAbort:
		if req.Txn, err = d.uvarint(); err != nil {
			return err
		}
		if req.Txn == 0 {
			return errors.New("wire: txn settle with zero txn id")
		}
		if req.Phase, err = d.byte(); err != nil {
			return err
		}
		if req.Phase > 1 {
			return fmt.Errorf("wire: txn phase %d out of range", req.Phase)
		}
		n, err := d.count(2)
		if err != nil {
			return err
		}
		req.Locks = make([]LockRef, n)
		for i := range req.Locks {
			if req.Locks[i].Table, err = d.str(); err != nil {
				return err
			}
			if req.Locks[i].Key, err = d.uvarint(); err != nil {
				return err
			}
		}
		return nil
	case OpTxnResolve:
		if req.Txn, err = d.uvarint(); err != nil {
			return err
		}
		if req.Txn == 0 {
			return errors.New("wire: resolve with zero txn id")
		}
		if req.Phase, err = d.byte(); err != nil {
			return err
		}
		if req.Phase > 1 {
			return fmt.Errorf("wire: resolve phase %d out of range", req.Phase)
		}
		req.Key, err = d.uvarint()
		return err
	}
	return fmt.Errorf("wire: unknown op %v", req.Op)
}

// EncodeRequest serializes a request payload (frame it with AppendFrame or
// WriteFrame). Layout:
//
//	id uvarint | part+1 uvarint | op byte | body
//	body(get/delete) := table key
//	body(put)        := table key row
//	body(scan)       := table from to limit
//	body(rmw)        := table key ncols { col mode value }*
//	body(txn)        := "" nops { op byte, body }*   (sub-ops may not nest)
//	body(repl-append):= epoch seq nops { op byte, body }*   (write sub-ops only)
//	body(repl-ack)   := epoch
//	body(shardmap)   := (empty)
//	body(repl-snap)  := epoch seq phase table nrows { key row }*
//	body(txn-prewrite) := pri-table txn pri-shard pri-key nops { op byte, body }*
//	body(txn-commit/abort) := "" txn phase nlocks { table key }*
//	body(txn-resolve)  := pri-table txn phase pri-key
//	body(map-prepare)  := ballot          (carried in Epoch)
//	body(map-accept)   := ballot shardmap
//	body(map-learn)    := shardmap
func EncodeRequest(req *Request) ([]byte, error) {
	if req.Part < -1 {
		return nil, fmt.Errorf("wire: partition %d out of range", req.Part)
	}
	dst := binary.AppendUvarint(nil, req.ID)
	dst = binary.AppendUvarint(dst, uint64(req.Part+1))
	dst = append(dst, byte(req.Op))
	if req.Op.IsRepl() {
		return appendReplBody(dst, req)
	}
	if req.Op != OpTxn {
		return appendOpBody(dst, req)
	}
	if len(req.Ops) == 0 {
		return nil, errors.New("wire: empty transaction")
	}
	dst = appendStr(dst, "")
	dst = binary.AppendUvarint(dst, uint64(len(req.Ops)))
	for i := range req.Ops {
		sub := &req.Ops[i]
		if sub.Op == OpTxn {
			return nil, errors.New("wire: nested transaction")
		}
		if !sub.Op.basic() {
			return nil, fmt.Errorf("wire: op %v cannot nest in a transaction", sub.Op)
		}
		dst = append(dst, byte(sub.Op))
		var err error
		if dst, err = appendOpBody(dst, sub); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// appendReplBody encodes the body of a replication-plane request.
func appendReplBody(dst []byte, req *Request) ([]byte, error) {
	switch req.Op {
	case OpReplAppend:
		if len(req.Ops) == 0 {
			return nil, errors.New("wire: empty repl batch")
		}
		dst = binary.AppendUvarint(dst, req.Epoch)
		dst = binary.AppendUvarint(dst, req.Seq)
		dst = binary.AppendUvarint(dst, uint64(len(req.Ops)))
		for i := range req.Ops {
			sub := &req.Ops[i]
			dst = append(dst, byte(sub.Op))
			var err error
			if dst, err = appendOpBody(dst, sub); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case OpReplAck:
		return binary.AppendUvarint(dst, req.Epoch), nil
	case OpShardMap:
		return dst, nil
	case OpReplSnap:
		if req.Phase > SnapDone {
			return nil, fmt.Errorf("wire: unknown snapshot phase %d", req.Phase)
		}
		if len(req.SnapKeys) != len(req.SnapRows) {
			return nil, fmt.Errorf("wire: snapshot chunk %d keys vs %d rows", len(req.SnapKeys), len(req.SnapRows))
		}
		dst = binary.AppendUvarint(dst, req.Epoch)
		dst = binary.AppendUvarint(dst, req.Seq)
		dst = append(dst, req.Phase)
		dst = appendStr(dst, req.Table)
		dst = binary.AppendUvarint(dst, uint64(len(req.SnapKeys)))
		for i, k := range req.SnapKeys {
			dst = binary.AppendUvarint(dst, k)
			dst = appendRow(dst, req.SnapRows[i])
		}
		return dst, nil
	case OpMapPrepare:
		return binary.AppendUvarint(dst, req.Epoch), nil
	case OpMapAccept:
		if req.Map == nil {
			return nil, errors.New("wire: map accept without a map")
		}
		dst = binary.AppendUvarint(dst, req.Epoch)
		return appendShardMap(dst, req.Map), nil
	case OpMapLearn:
		if req.Map == nil {
			return nil, errors.New("wire: map learn without a map")
		}
		return appendShardMap(dst, req.Map), nil
	}
	return nil, fmt.Errorf("wire: cannot encode repl op %v", req.Op)
}

func (d *dec) replBody(req *Request) error {
	var err error
	switch req.Op {
	case OpReplAppend:
		if req.Epoch, err = d.uvarint(); err != nil {
			return err
		}
		if req.Seq, err = d.uvarint(); err != nil {
			return err
		}
		n, err := d.count(3)
		if err != nil {
			return err
		}
		if n == 0 {
			return errors.New("wire: empty repl batch")
		}
		req.Ops = make([]Request, n)
		for i := range req.Ops {
			opb, err := d.byte()
			if err != nil {
				return err
			}
			req.Ops[i].Op = Op(opb)
			req.Ops[i].Part = -1
			if err := d.opBody(&req.Ops[i]); err != nil {
				return err
			}
		}
		return nil
	case OpReplAck:
		req.Epoch, err = d.uvarint()
		return err
	case OpShardMap:
		return nil
	case OpReplSnap:
		if req.Epoch, err = d.uvarint(); err != nil {
			return err
		}
		if req.Seq, err = d.uvarint(); err != nil {
			return err
		}
		if req.Phase, err = d.byte(); err != nil {
			return err
		}
		if req.Phase > SnapDone {
			return fmt.Errorf("wire: unknown snapshot phase %d", req.Phase)
		}
		if req.Table, err = d.str(); err != nil {
			return err
		}
		n, err := d.count(3)
		if err != nil {
			return err
		}
		req.SnapKeys = make([]uint64, n)
		req.SnapRows = make([][]core.Value, n)
		for i := 0; i < n; i++ {
			if req.SnapKeys[i], err = d.uvarint(); err != nil {
				return err
			}
			if req.SnapRows[i], err = d.row(); err != nil {
				return err
			}
		}
		return nil
	case OpMapPrepare:
		req.Epoch, err = d.uvarint()
		return err
	case OpMapAccept:
		if req.Epoch, err = d.uvarint(); err != nil {
			return err
		}
		req.Map, err = d.shardMap()
		return err
	case OpMapLearn:
		req.Map, err = d.shardMap()
		return err
	}
	return fmt.Errorf("wire: unknown repl op %v", req.Op)
}

// EncodeOp serializes one buffered write op (op byte + body) — the form a
// prewrite stores inside a lock record. Only the write subset is legal.
func EncodeOp(sub *Request) ([]byte, error) {
	if sub.Op != OpPut && sub.Op != OpDelete && sub.Op != OpRmw {
		return nil, fmt.Errorf("wire: cannot buffer op %v in a lock record", sub.Op)
	}
	return appendOpBody([]byte{byte(sub.Op)}, sub)
}

// DecodeOp parses a buffered write op from a lock record. Trailing bytes and
// truncations are errors — a torn lock record must never silently decode as
// a different (or shorter) write, which is what keeps a torn prewrite from
// ever surfacing as committed.
func DecodeOp(b []byte) (*Request, error) {
	d := &dec{b: b}
	opb, err := d.byte()
	if err != nil {
		return nil, err
	}
	req := &Request{Op: Op(opb), Part: -1}
	if req.Op != OpPut && req.Op != OpDelete && req.Op != OpRmw {
		return nil, fmt.Errorf("wire: lock record buffers op %v", req.Op)
	}
	if err := d.opBody(req); err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after lock record", d.remaining())
	}
	return req, nil
}

// RequestID extracts the request ID from a payload prefix, for error
// responses to frames whose full decode failed.
func RequestID(payload []byte) (uint64, bool) {
	v, n := binary.Uvarint(payload)
	return v, n > 0
}

// DecodeRequest parses a request payload.
func DecodeRequest(payload []byte) (*Request, error) {
	d := &dec{b: payload}
	req := &Request{}
	var err error
	if req.ID, err = d.uvarint(); err != nil {
		return nil, err
	}
	part, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if part > 1<<20 {
		return nil, fmt.Errorf("wire: partition %d out of range", part)
	}
	req.Part = int32(part) - 1
	op, err := d.byte()
	if err != nil {
		return nil, err
	}
	req.Op = Op(op)
	if req.Op.IsRepl() {
		if err := d.replBody(req); err != nil {
			return nil, err
		}
	} else if req.Op != OpTxn {
		if err := d.opBody(req); err != nil {
			return nil, err
		}
	} else {
		if _, err := d.str(); err != nil { // reserved empty table slot
			return nil, err
		}
		n, err := d.count(3)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, errors.New("wire: empty transaction")
		}
		req.Ops = make([]Request, n)
		for i := range req.Ops {
			opb, err := d.byte()
			if err != nil {
				return nil, err
			}
			req.Ops[i].Op = Op(opb)
			req.Ops[i].Part = -1
			if req.Ops[i].Op == OpTxn {
				return nil, errors.New("wire: nested transaction")
			}
			if !req.Ops[i].Op.basic() {
				return nil, fmt.Errorf("wire: op %v cannot nest in a transaction", req.Ops[i].Op)
			}
			if err := d.opBody(&req.Ops[i]); err != nil {
				return nil, err
			}
		}
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after request", d.remaining())
	}
	return req, nil
}

// EncodeResponse serializes a response payload. Layout:
//
//	id uvarint | status byte | msg | kind byte | body
//	body(row)  := found byte [row]
//	body(scan) := n { key row }*
//	body(subs) := n { status byte, msg, kind, body }*   (subs may not nest)
func EncodeResponse(resp *Response) ([]byte, error) {
	dst := binary.AppendUvarint(nil, resp.ID)
	return appendRespBody(dst, resp, false)
}

func appendRespBody(dst []byte, resp *Response, sub bool) ([]byte, error) {
	dst = append(dst, byte(resp.Status))
	dst = appendStr(dst, resp.Msg)
	switch {
	case resp.Subs != nil:
		if sub {
			return nil, errors.New("wire: nested sub-responses")
		}
		dst = append(dst, respSubs)
		dst = binary.AppendUvarint(dst, uint64(len(resp.Subs)))
		for i := range resp.Subs {
			var err error
			if dst, err = appendRespBody(dst, &resp.Subs[i], true); err != nil {
				return nil, err
			}
		}
	case resp.Keys != nil || resp.Rows != nil:
		if len(resp.Keys) != len(resp.Rows) {
			return nil, fmt.Errorf("wire: scan response %d keys vs %d rows", len(resp.Keys), len(resp.Rows))
		}
		dst = append(dst, respScan)
		dst = binary.AppendUvarint(dst, uint64(len(resp.Keys)))
		for i, k := range resp.Keys {
			dst = binary.AppendUvarint(dst, k)
			dst = appendRow(dst, resp.Rows[i])
		}
	case resp.Found || resp.Row != nil:
		dst = append(dst, respRow)
		if resp.Found {
			dst = append(dst, 1)
			dst = appendRow(dst, resp.Row)
		} else {
			dst = append(dst, 0)
		}
	case resp.Txn != 0:
		if resp.TxnState > TxnAborted {
			return nil, fmt.Errorf("wire: txn state %d out of range", resp.TxnState)
		}
		if resp.PriShard < 0 {
			return nil, fmt.Errorf("wire: txn primary shard %d out of range", resp.PriShard)
		}
		dst = append(dst, respTxn)
		dst = binary.AppendUvarint(dst, resp.Txn)
		dst = append(dst, resp.TxnState)
		dst = binary.AppendUvarint(dst, uint64(resp.PriShard))
		dst = appendStr(dst, resp.PriTable)
		dst = binary.AppendUvarint(dst, resp.PriKey)
		dst = appendStr(dst, resp.LockTable)
		dst = binary.AppendUvarint(dst, resp.LockKey)
	case resp.Map != nil && resp.Epoch != 0:
		// Consensus: an accepted (ballot, map) pair from a prepare promise.
		dst = append(dst, respCons)
		dst = binary.AppendUvarint(dst, resp.Epoch)
		dst = appendShardMap(dst, resp.Map)
	case resp.Map != nil:
		dst = append(dst, respMap)
		dst = appendShardMap(dst, resp.Map)
	case resp.Epoch != 0 || resp.Seq != 0:
		dst = append(dst, respRepl)
		dst = binary.AppendUvarint(dst, resp.Epoch)
		dst = binary.AppendUvarint(dst, resp.Seq)
	default:
		dst = append(dst, respNone)
	}
	return dst, nil
}

// DecodeResponse parses a response payload.
func DecodeResponse(payload []byte) (*Response, error) {
	d := &dec{b: payload}
	resp := &Response{}
	var err error
	if resp.ID, err = d.uvarint(); err != nil {
		return nil, err
	}
	if err := d.respBody(resp, false); err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after response", d.remaining())
	}
	return resp, nil
}

func (d *dec) respBody(resp *Response, sub bool) error {
	status, err := d.byte()
	if err != nil {
		return err
	}
	if status > byte(StatusLocked) {
		return fmt.Errorf("wire: unknown status %d", status)
	}
	resp.Status = Status(status)
	if resp.Msg, err = d.str(); err != nil {
		return err
	}
	kind, err := d.byte()
	if err != nil {
		return err
	}
	switch kind {
	case respNone:
		return nil
	case respRow:
		found, err := d.byte()
		if err != nil {
			return err
		}
		if found > 1 {
			return fmt.Errorf("wire: found flag %d", found)
		}
		if found == 1 {
			resp.Found = true
			if resp.Row, err = d.row(); err != nil {
				return err
			}
		}
		return nil
	case respScan:
		n, err := d.count(3)
		if err != nil {
			return err
		}
		resp.Keys = make([]uint64, n)
		resp.Rows = make([][]core.Value, n)
		for i := 0; i < n; i++ {
			if resp.Keys[i], err = d.uvarint(); err != nil {
				return err
			}
			if resp.Rows[i], err = d.row(); err != nil {
				return err
			}
		}
		return nil
	case respSubs:
		if sub {
			return errors.New("wire: nested sub-responses")
		}
		n, err := d.count(3)
		if err != nil {
			return err
		}
		resp.Subs = make([]Response, n)
		for i := range resp.Subs {
			if err := d.respBody(&resp.Subs[i], true); err != nil {
				return err
			}
		}
		return nil
	case respMap:
		resp.Map, err = d.shardMap()
		return err
	case respRepl:
		if resp.Epoch, err = d.uvarint(); err != nil {
			return err
		}
		resp.Seq, err = d.uvarint()
		return err
	case respTxn:
		if resp.Txn, err = d.uvarint(); err != nil {
			return err
		}
		if resp.Txn == 0 {
			return errors.New("wire: txn response with zero txn id")
		}
		if resp.TxnState, err = d.byte(); err != nil {
			return err
		}
		if resp.TxnState > TxnAborted {
			return fmt.Errorf("wire: txn state %d out of range", resp.TxnState)
		}
		shard, err := d.uvarint()
		if err != nil {
			return err
		}
		if shard > 1<<20 {
			return fmt.Errorf("wire: txn primary shard %d out of range", shard)
		}
		resp.PriShard = int32(shard)
		if resp.PriTable, err = d.str(); err != nil {
			return err
		}
		if resp.PriKey, err = d.uvarint(); err != nil {
			return err
		}
		if resp.LockTable, err = d.str(); err != nil {
			return err
		}
		resp.LockKey, err = d.uvarint()
		return err
	case respCons:
		if resp.Epoch, err = d.uvarint(); err != nil {
			return err
		}
		if resp.Epoch == 0 {
			return errors.New("wire: consensus response with zero ballot")
		}
		resp.Map, err = d.shardMap()
		return err
	}
	return fmt.Errorf("wire: unknown response kind %d", kind)
}
