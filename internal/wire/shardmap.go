package wire

import (
	"encoding/binary"
	"fmt"
)

// ShardRoute is one shard's placement: the primary that accepts writes, an
// optional backup receiving shipped log batches, and the fencing epoch. The
// epoch increments on every primary change; a REPL frame carrying an older
// epoch is rejected with StatusStaleEpoch, which is how a deposed primary
// discovers it has been fenced.
type ShardRoute struct {
	Epoch   uint64
	Primary string // node address; empty means the shard is down
	Backup  string // empty while unreplicated (backup dead or being re-seeded)
	// Reseeding marks an in-flight backup enrollment: the coordinator has
	// dispatched a re-seed whose SnapDone will enroll a node this map does
	// not list yet. While set, nodes must not derive replication-state
	// changes for the shard from this map — a map built during the window
	// is authoritative about placement but stale about enrollment, and
	// acting on it would demote the freshly seeded backup (or detach the
	// primary from it) the moment the snapshot completes.
	Reseeding bool
}

// ShardMap is the cluster's routing table: Version orders successive maps
// (clients keep the highest they have seen), Shards is indexed by shard id.
// A shard id doubles as the partition index on every node that hosts it, so
// a request pinned to shard s executes against partition s wherever it lands.
type ShardMap struct {
	Version uint64
	Shards  []ShardRoute
}

// ShardOf maps a primary key to its shard with a fixed multiplicative hash
// (splitmix64's finalizer constant). Deliberately NOT key%n: cluster
// placement must not be confused with the testbed's intra-node key%parts
// routing, and the mixer spreads sequential key ranges across shards.
func ShardOf(key uint64, shards int) int {
	if shards <= 0 {
		return 0
	}
	h := key
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(shards))
}

// ShardOf maps a key onto this map's shards.
func (m *ShardMap) ShardOf(key uint64) int { return ShardOf(key, len(m.Shards)) }

// Clone deep-copies the map so a holder can mutate its copy freely.
func (m *ShardMap) Clone() *ShardMap {
	out := &ShardMap{Version: m.Version, Shards: make([]ShardRoute, len(m.Shards))}
	copy(out.Shards, m.Shards)
	return out
}

// maxShards bounds a decoded map (a hostile count must not balloon memory).
const maxShards = 1 << 16

// appendShardMap serializes a map: version nshards
// { epoch primary backup flags }*; flags bit 0 is Reseeding.
func appendShardMap(dst []byte, m *ShardMap) []byte {
	dst = binary.AppendUvarint(dst, m.Version)
	dst = binary.AppendUvarint(dst, uint64(len(m.Shards)))
	for _, s := range m.Shards {
		dst = binary.AppendUvarint(dst, s.Epoch)
		dst = appendStr(dst, s.Primary)
		dst = appendStr(dst, s.Backup)
		var flags uint64
		if s.Reseeding {
			flags |= 1
		}
		dst = binary.AppendUvarint(dst, flags)
	}
	return dst
}

func (d *dec) shardMap() (*ShardMap, error) {
	m := &ShardMap{}
	var err error
	if m.Version, err = d.uvarint(); err != nil {
		return nil, err
	}
	n, err := d.count(3)
	if err != nil {
		return nil, err
	}
	if n > maxShards {
		return nil, fmt.Errorf("wire: shard map with %d shards", n)
	}
	m.Shards = make([]ShardRoute, n)
	for i := range m.Shards {
		if m.Shards[i].Epoch, err = d.uvarint(); err != nil {
			return nil, err
		}
		if m.Shards[i].Primary, err = d.str(); err != nil {
			return nil, err
		}
		if m.Shards[i].Backup, err = d.str(); err != nil {
			return nil, err
		}
		flags, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if flags > 1 {
			return nil, fmt.Errorf("wire: shard route flags %#x", flags)
		}
		m.Shards[i].Reseeding = flags&1 != 0
	}
	return m, nil
}
