package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"nstore/internal/core"
)

// sampleRequests covers every op shape once.
func sampleRequests() []*Request {
	return []*Request{
		{ID: 1, Part: -1, Op: OpGet, Table: "t", Key: 42},
		{ID: 2, Part: 3, Op: OpPut, Table: "usertable", Key: 7,
			Row: []core.Value{{I: 7}, {S: []byte("hello")}, {S: []byte{}}, {I: -1}}},
		{ID: 3, Part: -1, Op: OpDelete, Table: "t", Key: 0},
		{ID: 4, Part: 0, Op: OpScan, Table: "t", From: 10, To: 99, Limit: 25},
		{ID: 5, Part: -1, Op: OpRmw, Table: "warehouse", Key: 1, Cols: []RmwCol{
			{Col: 7, Add: true, Val: core.Value{I: 123}},
			{Col: 2, Add: false, Val: core.Value{S: []byte("x")}},
		}},
		{ID: 6, Part: 1, Op: OpTxn, Ops: []Request{
			{Op: OpRmw, Part: -1, Table: "warehouse", Key: 1, Cols: []RmwCol{{Col: 7, Add: true, Val: core.Value{I: 5}}}},
			{Op: OpPut, Part: -1, Table: "history", Key: 99, Row: []core.Value{{I: 99}, {S: []byte("h")}}},
			{Op: OpGet, Part: -1, Table: "customer", Key: 3},
		}},
		{ID: 7, Part: 0, Op: OpReplAppend, Epoch: 3, Seq: 17, Ops: []Request{
			{Op: OpPut, Part: -1, Table: "t", Key: 11, Row: []core.Value{{I: 11}, {S: []byte("r")}}},
			{Op: OpDelete, Part: -1, Table: "t", Key: 12},
			{Op: OpRmw, Part: -1, Table: "t", Key: 13, Cols: []RmwCol{{Col: 1, Add: true, Val: core.Value{I: 2}}}},
		}},
		{ID: 8, Part: 2, Op: OpReplAck, Epoch: 5},
		{ID: 9, Part: -1, Op: OpShardMap},
		{ID: 10, Part: 1, Op: OpReplSnap, Epoch: 4, Seq: 0, Phase: SnapBegin},
		{ID: 11, Part: 1, Op: OpReplSnap, Epoch: 4, Phase: SnapChunk, Table: "t",
			SnapKeys: []uint64{5, 9},
			SnapRows: [][]core.Value{
				{{I: 5}, {S: []byte("a")}},
				{{I: 9}, {S: []byte{}}},
			}},
		{ID: 12, Part: 1, Op: OpReplSnap, Epoch: 4, Seq: 41, Phase: SnapDone},
		{ID: 13, Part: 2, Op: OpTxnPrewrite, Txn: 77, PriShard: 1, Table: "t", Key: 5,
			Ops: []Request{
				{Op: OpPut, Part: -1, Table: "t", Key: 11, Row: []core.Value{{I: 11}, {S: []byte("p")}}},
				{Op: OpDelete, Part: -1, Table: "t", Key: 12},
				{Op: OpRmw, Part: -1, Table: "t", Key: 13, Cols: []RmwCol{{Col: 1, Add: true, Val: core.Value{I: 4}}}},
			}},
		{ID: 14, Part: 1, Op: OpTxnCommit, Txn: 77, Phase: 1,
			Locks: []LockRef{{Table: "t", Key: 5}, {Table: "u", Key: 9}}},
		{ID: 15, Part: 0, Op: OpTxnAbort, Txn: 78, Phase: 0, Locks: []LockRef{{Table: "t", Key: 5}}},
		{ID: 16, Part: 1, Op: OpTxnResolve, Txn: 77, Phase: 1, Table: "t", Key: 5},
		{ID: 17, Part: 0, Op: OpReplAppend, Epoch: 3, Seq: 18, Ops: []Request{
			{Op: OpTxnPrewrite, Part: -1, Txn: 79, PriShard: 0, Table: "t", Key: 2,
				Ops: []Request{{Op: OpPut, Part: -1, Table: "t", Key: 2, Row: []core.Value{{I: 2}, {S: []byte("q")}}}}},
		}},
		{ID: 18, Part: -1, Op: OpMapPrepare, Epoch: 9},
		{ID: 19, Part: -1, Op: OpMapAccept, Epoch: 9, Map: &ShardMap{Version: 7, Shards: []ShardRoute{
			{Epoch: 3, Primary: "127.0.0.1:7001", Backup: "127.0.0.1:7002"},
			{Epoch: 1, Primary: "127.0.0.1:7002", Backup: "", Reseeding: true},
		}}},
		{ID: 20, Part: -1, Op: OpMapLearn, Map: &ShardMap{Version: 8, Shards: []ShardRoute{
			{Epoch: 4, Primary: "127.0.0.1:7002", Backup: "127.0.0.1:7003"},
		}}},
	}
}

func sampleResponses() []*Response {
	return []*Response{
		{ID: 1, Status: StatusOK},
		{ID: 2, Status: StatusOK, Found: true, Row: []core.Value{{I: 9}, {S: []byte("v")}}},
		{ID: 3, Status: StatusOK, Found: false, Row: nil},
		{ID: 4, Status: StatusNotFound, Msg: "key 42 not found"},
		{ID: 5, Status: StatusOK, Keys: []uint64{1, 2}, Rows: [][]core.Value{
			{{I: 1}, {S: []byte("a")}},
			{{I: 2}, {S: []byte{}}},
		}},
		{ID: 6, Status: StatusOK, Keys: []uint64{}, Rows: [][]core.Value{}},
		{ID: 7, Status: StatusOK, Subs: []Response{
			{Status: StatusOK, Found: true, Row: []core.Value{{I: 1}}},
			{Status: StatusOK},
			{Status: StatusNotFound, Msg: "gone"},
		}},
		{ID: 8, Status: StatusOverloaded, Msg: "queue full"},
		{ID: 9, Status: StatusOK, Epoch: 3, Seq: 17},
		{ID: 10, Status: StatusStaleEpoch, Msg: "epoch 2 < 5", Epoch: 5, Seq: 40},
		{ID: 11, Status: StatusNotPrimary, Msg: "shard 1 is backup here"},
		{ID: 12, Status: StatusOK, Map: &ShardMap{Version: 7, Shards: []ShardRoute{
			{Epoch: 3, Primary: "127.0.0.1:7001", Backup: "127.0.0.1:7002"},
			{Epoch: 1, Primary: "127.0.0.1:7002", Backup: "", Reseeding: true},
		}}},
		{ID: 13, Status: StatusOK, Map: &ShardMap{Version: 0, Shards: []ShardRoute{}}},
		{ID: 14, Status: StatusLocked, Msg: "key 5 locked by txn 77",
			Txn: 77, TxnState: TxnPending, PriShard: 1, PriTable: "t", PriKey: 5,
			LockTable: "u", LockKey: 12},
		{ID: 15, Status: StatusOK, Txn: 77, TxnState: TxnCommitted, PriShard: 0, PriTable: "t", PriKey: 5},
		{ID: 16, Status: StatusOK, Txn: 78, TxnState: TxnAborted, PriShard: 2, PriTable: "u", PriKey: 9},
		{ID: 17, Status: StatusOK, Epoch: 9, Map: &ShardMap{Version: 7, Shards: []ShardRoute{
			{Epoch: 3, Primary: "127.0.0.1:7001", Backup: "127.0.0.1:7002"},
		}}},
		{ID: 18, Status: StatusStaleEpoch, Msg: "promised ballot 12", Epoch: 12},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range sampleRequests() {
		payload, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("encode %+v: %v", req, err)
		}
		if id, ok := RequestID(payload); !ok || id != req.ID {
			t.Fatalf("RequestID = %d,%v want %d", id, ok, req.ID)
		}
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("decode %+v: %v", req, err)
		}
		if !reflect.DeepEqual(normReq(got), normReq(req)) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, req)
		}
	}
}

// normReq normalizes encoding-invisible differences: sub-ops always decode
// with Part=-1, a decoded TBytes value is never nil, and empty snapshot
// chunks decode as empty non-nil slices.
func normReq(r *Request) *Request {
	c := *r
	c.Row = normRow(r.Row)
	if len(r.Ops) > 0 {
		c.Ops = make([]Request, len(r.Ops))
		for i := range r.Ops {
			s := r.Ops[i]
			s.Part = -1
			s.Row = normRow(s.Row)
			c.Ops[i] = s
		}
	}
	if len(r.SnapKeys) == 0 {
		c.SnapKeys, c.SnapRows = nil, nil
	} else {
		c.SnapRows = make([][]core.Value, len(r.SnapRows))
		for i := range r.SnapRows {
			c.SnapRows[i] = normRow(r.SnapRows[i])
		}
	}
	return &c
}

func normRow(row []core.Value) []core.Value {
	if row == nil {
		return nil
	}
	out := make([]core.Value, len(row))
	for i, v := range row {
		if v.S != nil && len(v.S) == 0 {
			v.S = []byte{}
		}
		out[i] = v
	}
	return out
}

func TestResponseRoundTrip(t *testing.T) {
	for _, resp := range sampleResponses() {
		payload, err := EncodeResponse(resp)
		if err != nil {
			t.Fatalf("encode %+v: %v", resp, err)
		}
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("decode %+v: %v", resp, err)
		}
		// Re-encode instead of DeepEqual: empty-vs-nil slices differ in
		// memory but not on the wire.
		again, err := EncodeResponse(got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(payload, again) {
			t.Fatalf("re-encode mismatch for %+v", resp)
		}
		if got.ID != resp.ID || got.Status != resp.Status || got.Msg != resp.Msg {
			t.Fatalf("header mismatch: got %+v want %+v", got, resp)
		}
	}
}

func TestEncodeRequestRejects(t *testing.T) {
	cases := []*Request{
		{ID: 1, Part: -1, Op: OpTxn},                                          // empty txn
		{ID: 2, Part: -1, Op: OpTxn, Ops: []Request{{Op: OpTxn}}},             // nested txn
		{ID: 3, Part: -2, Op: OpGet, Table: "t"},                              // bad part
		{ID: 4, Part: -1, Op: Op(99), Table: "t"},                             // unknown op
		{ID: 5, Part: -1, Op: OpTxn, Ops: []Request{{Op: Op(0), Table: "t"}}}, // unknown sub-op
		{ID: 6, Part: 0, Op: OpReplAppend, Epoch: 1, Seq: 1},                  // empty repl batch
		{ID: 7, Part: 0, Op: OpReplAppend, Epoch: 1, Seq: 1,
			Ops: []Request{{Op: OpTxn}}}, // txn may not ride a repl batch
		{ID: 8, Part: 0, Op: OpReplSnap, Phase: 9}, // unknown phase
		{ID: 9, Part: 0, Op: OpReplSnap, Phase: SnapChunk, Table: "t",
			SnapKeys: []uint64{1}}, // keys without rows
	}
	for _, req := range cases {
		if _, err := EncodeRequest(req); err == nil {
			t.Errorf("encode %+v: want error", req)
		}
	}
}

// TestShardOf pins the hash placement: deterministic, in-range, not the
// identity key%n the testbed uses internally, and reasonably balanced.
func TestShardOf(t *testing.T) {
	const shards = 4
	counts := make([]int, shards)
	identity := 0
	for key := uint64(0); key < 4096; key++ {
		s := ShardOf(key, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf(%d, %d) = %d out of range", key, shards, s)
		}
		if s != ShardOf(key, shards) {
			t.Fatalf("ShardOf(%d) not deterministic", key)
		}
		if s == int(key%shards) {
			identity++
		}
		counts[s]++
	}
	for s, n := range counts {
		if n < 4096/shards/2 || n > 4096/shards*2 {
			t.Fatalf("shard %d holds %d of 4096 keys: unbalanced", s, n)
		}
	}
	if identity > 4096/shards*2 {
		t.Fatalf("ShardOf agrees with key%%n on %d/4096 keys: looks like identity routing", identity)
	}
	if ShardOf(123, 0) != 0 {
		t.Fatal("ShardOf with 0 shards must clamp to 0")
	}
	m := &ShardMap{Shards: make([]ShardRoute, shards)}
	if m.ShardOf(99) != ShardOf(99, shards) {
		t.Fatal("map ShardOf disagrees with package ShardOf")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xab}, 100_000)}
	var buf bytes.Buffer
	for _, p := range payloads {
		if _, err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for _, p := range payloads {
		got, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload mismatch: %d bytes vs %d", len(got), len(p))
		}
	}
	if _, err := ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

// TestFrameTruncated cuts a frame short at every possible byte boundary: the
// reader must report io.ErrUnexpectedEOF (or io.EOF only for the empty
// stream), never succeed and never hang.
func TestFrameTruncated(t *testing.T) {
	frame := AppendFrame(nil, []byte("the quick brown fox"))
	for cut := 0; cut < len(frame); cut++ {
		r := bufio.NewReader(bytes.NewReader(frame[:cut]))
		_, err := ReadFrame(r, 0)
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut=0: want io.EOF, got %v", err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: want unexpected EOF, got %v", cut, err)
		}
	}
}

// TestFrameFlippedCRC flips each bit of the payload and of the stored CRC in
// turn; every single-bit corruption must surface as ErrCRC.
func TestFrameFlippedCRC(t *testing.T) {
	payload := []byte("torn-tail discipline")
	frame := AppendFrame(nil, payload)
	start := len(frame) - len(payload) - 4 // first payload byte
	for i := start; i < len(frame); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(frame)
			mut[i] ^= 1 << bit
			_, err := ReadFrame(bufio.NewReader(bytes.NewReader(mut)), 0)
			if !errors.Is(err, ErrCRC) {
				t.Fatalf("byte %d bit %d: want ErrCRC, got %v", i, bit, err)
			}
		}
	}
}

// TestFrameOversized checks that a length prefix above the limit errors out
// without the reader buffering the claimed bytes.
func TestFrameOversized(t *testing.T) {
	frame := AppendFrame(nil, bytes.Repeat([]byte{1}, 100))
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), 10); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("want ErrFrameTooBig, got %v", err)
	}
	// A hostile prefix claiming 2^40 bytes with no data behind it must fail
	// fast on the size check, not attempt a giant allocation.
	hostile := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x40}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hostile)), 0); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("hostile prefix: want ErrFrameTooBig, got %v", err)
	}
}

// TestInterleavedPipelinedResponses writes responses to IDs out of request
// order on one stream and checks a reader can reassemble them by ID.
func TestInterleavedPipelinedResponses(t *testing.T) {
	order := []uint64{3, 1, 4, 2, 5}
	var buf bytes.Buffer
	for _, id := range order {
		payload, err := EncodeResponse(&Response{ID: id, Status: StatusOK, Found: true, Row: []core.Value{{I: int64(id) * 10}}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := WriteFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	got := map[uint64]int64{}
	for range order {
		payload, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		got[resp.ID] = resp.Row[0].I
	}
	for _, id := range order {
		if got[id] != int64(id)*10 {
			t.Fatalf("response %d: got row %d", id, got[id])
		}
	}
}

func TestStatusErrorTaxonomy(t *testing.T) {
	cases := []struct {
		status Status
		target error
		want   bool
	}{
		{StatusOverloaded, core.ErrRetryable, true},
		{StatusRecovering, core.ErrRetryable, true},
		{StatusRetryable, core.ErrRetryable, true},
		{StatusCorrupt, core.ErrRetryable, false},
		{StatusCorrupt, core.ErrCorrupt, true},
		{StatusNotFound, core.ErrKeyNotFound, true},
		{StatusKeyExists, core.ErrKeyExists, true},
		{StatusBadRequest, core.ErrRetryable, false},
		{StatusOK, core.ErrRetryable, false},
	}
	for _, c := range cases {
		err := error(&StatusError{Status: c.status})
		if got := errors.Is(err, c.target); got != c.want {
			t.Errorf("errors.Is(%v, %v) = %v, want %v", c.status, c.target, got, c.want)
		}
	}
	for _, s := range Statuses {
		if s.Retryable() != (s == StatusOverloaded || s == StatusRecovering || s == StatusRetryable) {
			t.Errorf("%v.Retryable() inconsistent", s)
		}
	}
}

func TestDecodeRequestRejectsHostileCounts(t *testing.T) {
	// A txn claiming 2^30 sub-ops in a 10-byte payload must fail on the
	// count bound, not allocate.
	payload := []byte{1, 0, byte(OpTxn), 0, 0x80, 0x80, 0x80, 0x80, 0x04}
	if _, err := DecodeRequest(payload); err == nil {
		t.Fatal("want error for hostile sub-op count")
	}
	// Trailing garbage after a valid request must be rejected.
	ok, err := EncodeRequest(&Request{ID: 1, Part: -1, Op: OpGet, Table: "t", Key: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRequest(append(ok, 0xff)); err == nil {
		t.Fatal("want error for trailing bytes")
	}
}
