package wire

import (
	"testing"

	"nstore/internal/core"
)

// DecodeOp is the last line of defense between a torn lock record and a
// phantom committed write: every truncation of a valid encoding, every
// trailing byte, and every non-write opcode must fail to decode — never
// round-trip to a shorter or different op.

func lockOpSamples(t *testing.T) [][]byte {
	t.Helper()
	subs := []Request{
		{Op: OpPut, Table: "t", Key: 7,
			Row: []core.Value{core.IntVal(7), core.IntVal(49), core.StrVal("seven")}},
		{Op: OpDelete, Table: "orders", Key: 1 << 33},
		{Op: OpRmw, Table: "t", Key: 9,
			Cols: []RmwCol{{Col: 1, Add: true, Val: core.IntVal(-4)}, {Col: 2, Val: core.StrVal("x")}}},
	}
	out := make([][]byte, len(subs))
	for i := range subs {
		b, err := EncodeOp(&subs[i])
		if err != nil {
			t.Fatalf("encode %v: %v", subs[i].Op, err)
		}
		out[i] = b
	}
	return out
}

func TestDecodeOpRoundTrip(t *testing.T) {
	for _, b := range lockOpSamples(t) {
		op, err := DecodeOp(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		b2, err := EncodeOp(op)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(b) != string(b2) {
			t.Fatalf("round trip changed the record: %x -> %x", b, b2)
		}
	}
}

// TestDecodeOpRejectsEveryTruncation cuts each sample at every length short
// of the full record. Each prefix must error — a prefix that decodes would
// mean a torn prewrite can surface as a different (shorter) committed write.
func TestDecodeOpRejectsEveryTruncation(t *testing.T) {
	for si, b := range lockOpSamples(t) {
		for cut := 0; cut < len(b); cut++ {
			if op, err := DecodeOp(b[:cut]); err == nil {
				t.Fatalf("sample %d: truncation at %d/%d decoded as %v", si, cut, len(b), op.Op)
			}
		}
	}
}

func TestDecodeOpRejectsTrailingBytes(t *testing.T) {
	for si, b := range lockOpSamples(t) {
		ext := append(append([]byte(nil), b...), 0x00)
		if op, err := DecodeOp(ext); err == nil {
			t.Fatalf("sample %d: trailing byte accepted, decoded as %v", si, op.Op)
		}
	}
}

// TestDecodeOpRejectsNonWriteOps: flipping the op byte to anything outside
// the buffered-write subset is corruption, even if a body happens to parse.
func TestDecodeOpRejectsNonWriteOps(t *testing.T) {
	b := lockOpSamples(t)[0]
	for op := 0; op < 32; op++ {
		if Op(op) == OpPut || Op(op) == OpDelete || Op(op) == OpRmw {
			continue
		}
		mut := append([]byte(nil), b...)
		mut[0] = byte(op)
		if got, err := DecodeOp(mut); err == nil {
			t.Fatalf("op byte %d accepted in a lock record, decoded as %v", op, got.Op)
		}
	}
	// EncodeOp refuses non-writes symmetrically.
	if _, err := EncodeOp(&Request{Op: OpGet, Table: "t", Key: 1}); err == nil {
		t.Fatal("EncodeOp buffered a read")
	}
}
