// Package wire is the framed binary protocol the network serving subsystem
// speaks: varint-length frames carrying CRC32-checked payloads, pipelined
// request/response messages matched by request ID, a declarative op set
// (GET/PUT/DELETE/SCAN/RMW plus multi-op transactions) that maps onto
// testbed transactions, and typed status codes mirroring the internal/core
// error taxonomy so backpressure and heal states survive serialization.
//
// Frame layout (everything little-endian):
//
//	frame   := length payload crc
//	length  := uvarint            // payload byte count, excludes the CRC
//	payload := request | response // see message.go
//	crc     := uint32             // CRC-32C (Castagnoli) of payload
//
// The length prefix bounds how much a reader buffers before the CRC is
// verified; ReadFrame enforces a caller-chosen maximum so a corrupt or
// hostile length prefix cannot balloon memory. The CRC trails the payload so
// a torn write (prefix of a frame) is detected either by the short read or
// by the checksum, never silently accepted — the same torn-tail discipline
// the WAL applies to its records.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// DefaultMaxFrame bounds a frame's payload unless the caller picks a limit.
// Large enough for a full SCAN page of ~1 KB tuples, small enough that a
// garbage length prefix cannot balloon a connection's memory.
const DefaultMaxFrame = 8 << 20

// Framing errors. Both mean the byte stream can no longer be trusted frame
// boundaries included, so the connection must be dropped, not resynced.
var (
	// ErrFrameTooBig reports a length prefix above the reader's limit.
	ErrFrameTooBig = errors.New("wire: frame exceeds size limit")
	// ErrCRC reports a payload that failed its CRC-32C check.
	ErrCRC = errors.New("wire: frame CRC mismatch")
)

// castagnoli is the CRC-32C table shared by every frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one complete frame carrying payload to dst.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
}

// WriteFrame writes one frame to w and returns the bytes written.
func WriteFrame(w io.Writer, payload []byte) (int, error) {
	return w.Write(AppendFrame(make([]byte, 0, len(payload)+9), payload))
}

// frameReader is the reader ReadFrame needs: bufio.Reader satisfies it.
type frameReader interface {
	io.Reader
	io.ByteReader
}

// ReadFrame reads one frame and returns its CRC-verified payload. max <= 0
// selects DefaultMaxFrame. A clean EOF at a frame boundary returns io.EOF;
// a frame cut short returns io.ErrUnexpectedEOF; an oversized length prefix
// returns ErrFrameTooBig without buffering the claimed bytes; a checksum
// failure returns ErrCRC.
func ReadFrame(r frameReader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooBig, n, max)
	}
	buf := make([]byte, n+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	payload := buf[:n]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(buf[n:]); got != want {
		return nil, fmt.Errorf("%w: computed %08x, frame says %08x", ErrCRC, got, want)
	}
	return payload, nil
}
