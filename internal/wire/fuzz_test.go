package wire

import (
	"bufio"
	"bytes"
	"testing"

	"nstore/internal/core"
)

// FuzzWireFrame feeds arbitrary bytes through the frame reader and both
// message decoders (the exact path a hostile or chaos-mangled connection
// exercises). Invariants: no panics, no unbounded allocation, and anything
// the decoders accept re-encodes to a stable fixpoint — encode(decode(x))
// must itself decode to the same bytes, or two peers could disagree about
// what a payload means.
func FuzzWireFrame(f *testing.F) {
	// Seed corpus: every sample message, framed, plus raw edge cases.
	for _, req := range sampleRequests() {
		payload, err := EncodeRequest(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(AppendFrame(nil, payload))
	}
	for _, resp := range sampleResponses() {
		payload, err := EncodeResponse(resp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(AppendFrame(nil, payload))
	}
	f.Add([]byte{})
	f.Add(AppendFrame(nil, nil))
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x40}) // hostile length prefix
	f.Add(AppendFrame(nil, []byte{1, 0, byte(OpTxn), 0, 3}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The frame layer: must terminate, never panic, and cap allocation
		// at the configured max regardless of the length prefix.
		payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)), 1<<20)
		if err != nil {
			// Mangled framing is fine — the connection would drop. Also run
			// the decoders over the raw input so they see unframed garbage.
			payload = data
		}

		if req, err := DecodeRequest(payload); err == nil {
			enc, err := EncodeRequest(req)
			if err != nil {
				t.Fatalf("accepted request does not re-encode: %v (%+v)", err, req)
			}
			req2, err := DecodeRequest(enc)
			if err != nil {
				t.Fatalf("re-encoded request does not decode: %v", err)
			}
			enc2, err := EncodeRequest(req2)
			if err != nil {
				t.Fatalf("second re-encode: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("request encode not a fixpoint:\n first %x\nsecond %x", enc, enc2)
			}
		}

		if resp, err := DecodeResponse(payload); err == nil {
			enc, err := EncodeResponse(resp)
			if err != nil {
				t.Fatalf("accepted response does not re-encode: %v (%+v)", err, resp)
			}
			resp2, err := DecodeResponse(enc)
			if err != nil {
				t.Fatalf("re-encoded response does not decode: %v", err)
			}
			enc2, err := EncodeResponse(resp2)
			if err != nil {
				t.Fatalf("second re-encode: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("response encode not a fixpoint:\n first %x\nsecond %x", enc, enc2)
			}
		}

		// Framing itself must round-trip whatever the payload is.
		framed := AppendFrame(nil, payload)
		back, err := ReadFrame(bufio.NewReader(bytes.NewReader(framed)), 0)
		if err != nil {
			t.Fatalf("own frame does not read back: %v", err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatal("frame round trip changed payload")
		}
	})
}

// FuzzWireValue narrows in on the value codec, whose tag byte is the one
// place empty-vs-nil byte strings could diverge.
func FuzzWireValue(f *testing.F) {
	f.Add([]byte{tagInt, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{tagBytes, 0})
	f.Add([]byte{tagBytes, 3, 'a', 'b', 'c'})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := &dec{b: data}
		v, err := d.value()
		if err != nil {
			return
		}
		if v.S != nil && v.I != 0 {
			t.Fatal("decoded value sets both I and S")
		}
		enc := appendValue(nil, v)
		d2 := &dec{b: enc}
		v2, err := d2.value()
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if v2.I != v.I || !bytes.Equal(v2.S, v.S) || (v2.S == nil) != (v.S == nil) {
			t.Fatalf("value round trip: %+v vs %+v", v, v2)
		}
		_ = core.Value(v2)
	})
}
