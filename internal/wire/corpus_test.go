package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateSeedCorpus regenerates testdata/fuzz/FuzzWireFrame from the
// sample messages when WIRE_GEN_CORPUS=1 is set; otherwise it verifies the
// checked-in corpus is present and parseable, so a stale tree fails loudly
// instead of fuzzing from nothing.
func TestGenerateSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWireFrame")
	var seeds [][]byte
	var names []string
	for i, req := range sampleRequests() {
		payload, err := EncodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, AppendFrame(nil, payload))
		names = append(names, fmt.Sprintf("seed-req-%s-%d", req.Op, i))
	}
	for i, resp := range sampleResponses() {
		payload, err := EncodeResponse(resp)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, AppendFrame(nil, payload))
		names = append(names, fmt.Sprintf("seed-resp-%d", i))
	}
	seeds = append(seeds, AppendFrame(nil, nil), []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x40})
	names = append(names, "seed-empty-frame", "seed-hostile-length")

	if os.Getenv("WIRE_GEN_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			if err := os.WriteFile(filepath.Join(dir, names[i]), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d corpus files to %s", len(seeds), dir)
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing (run with WIRE_GEN_CORPUS=1 to regenerate): %v", err)
	}
	if len(entries) < len(seeds) {
		t.Fatalf("seed corpus has %d files, want >= %d (regenerate with WIRE_GEN_CORPUS=1)", len(entries), len(seeds))
	}
}
