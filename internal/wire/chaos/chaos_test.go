package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until EOF.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln
}

// TestTransparent checks that a zero-fault proxy forwards bytes unchanged.
func TestTransparent(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p, err := New(ln.Addr().String(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := bytes.Repeat([]byte("wire"), 10_000)
	go func() {
		conn.Write(msg)
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("proxy corrupted a fault-free stream")
	}
	if s := p.Stats(); s.Conns != 1 || s.Drops != 0 {
		t.Fatalf("stats = %+v, want 1 conn, 0 drops", s)
	}
}

// TestDropsAreDeterministic runs the same traffic twice with the same seed
// and checks the faults land identically; a different seed must eventually
// diverge.
func TestDropsAreDeterministic(t *testing.T) {
	run := func(seed int64) (sent []int, drops int64) {
		ln := echoServer(t)
		defer ln.Close()
		p, err := New(ln.Addr().String(), Config{Seed: seed, DropProb: 0.10, TornProb: 0.5, ChunkSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		for conn := 0; conn < 8; conn++ {
			c, err := net.Dial("tcp", p.Addr())
			if err != nil {
				t.Fatal(err)
			}
			c.SetDeadline(time.Now().Add(5 * time.Second))
			n := 0
			buf := make([]byte, 64)
			for i := 0; i < 50; i++ {
				if _, err := c.Write(bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
					break
				}
				if _, err := io.ReadFull(c, buf); err != nil {
					break
				}
				n++
			}
			c.Close()
			sent = append(sent, n)
		}
		return sent, p.Stats().Drops
	}

	a1, d1 := run(42)
	a2, d2 := run(42)
	if d1 == 0 {
		t.Fatal("fault schedule never dropped a connection")
	}
	if d1 != d2 {
		t.Fatalf("same seed diverged: %d vs %d drops", d1, d2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("conn %d: %d vs %d round trips with same seed", i, a1[i], a2[i])
		}
	}
}

// TestCloseSeversLiveConns checks Close kills in-flight connections instead
// of waiting for them.
func TestCloseSeversLiveConns(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p, err := New(ln.Addr().String(), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a live connection")
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection survived proxy Close")
	}
}
