// Package chaos is a deterministic TCP chaos proxy for wire-protocol soak
// tests: it sits between a client and a server and injects the failure modes
// a real network serves up — added latency, abrupt connection drops, and
// torn frames (a connection killed mid-frame so the peer sees a prefix).
// Everything is driven by a seeded RNG per connection, so a soak that fails
// replays exactly from its seed.
package chaos

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes the proxy. Probabilities are evaluated per forwarded
// chunk (ChunkSize bytes or less), so longer transfers accumulate more risk,
// like a real flaky link.
type Config struct {
	// Seed drives every probabilistic decision. Same seed + same traffic
	// order per connection = same faults.
	Seed int64
	// DropProb is the per-chunk probability of killing the connection.
	DropProb float64
	// TornProb is the probability, given a drop, that a prefix of the chunk
	// is forwarded first — the peer sees a torn frame, not a clean cut.
	TornProb float64
	// DelayProb is the per-chunk probability of sleeping before forwarding.
	DelayProb float64
	// MaxDelay bounds an injected sleep (uniform in (0, MaxDelay]).
	MaxDelay time.Duration
	// ChunkSize is the forwarding unit; 0 means 4096 bytes.
	ChunkSize int
}

// Stats counts what the proxy has done so far.
type Stats struct {
	Conns int64 // connections accepted
	Drops int64 // connections killed by fault injection
	Torn  int64 // drops that forwarded a torn prefix first
}

// Proxy is a running chaos proxy. Close it to stop accepting and kill every
// live connection.
type Proxy struct {
	cfg    Config
	target string
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	connSeq atomic.Int64
	drops   atomic.Int64
	torn    atomic.Int64
	wg      sync.WaitGroup
}

// New starts a proxy on an ephemeral loopback port forwarding to target.
func New(target string, cfg Config) (*Proxy, error) {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 4096
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr is the proxy's listen address — point the client here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{Conns: p.connSeq.Load(), Drops: p.drops.Load(), Torn: p.torn.Load()}
}

// Close stops accepting, severs every live connection, and waits for the
// pumps to finish.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		cli, err := p.ln.Accept()
		if err != nil {
			return
		}
		srv, err := net.Dial("tcp", p.target)
		if err != nil {
			cli.Close()
			continue
		}
		idx := p.connSeq.Add(1)
		if !p.track(cli, srv) {
			return
		}
		// Independent per-direction RNGs keyed off the connection index, so
		// one connection's fault schedule never shifts another's.
		p.wg.Add(2)
		go p.pump(cli, srv, rand.New(rand.NewSource(p.cfg.Seed+2*idx)))
		go p.pump(srv, cli, rand.New(rand.NewSource(p.cfg.Seed+2*idx+1)))
	}
}

// track registers both halves for Close; returns false if the proxy already
// closed (the pair is severed immediately).
func (p *Proxy) track(a, b net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		a.Close()
		b.Close()
		return false
	}
	p.conns[a] = struct{}{}
	p.conns[b] = struct{}{}
	return true
}

func (p *Proxy) untrack(a, b net.Conn) {
	p.mu.Lock()
	delete(p.conns, a)
	delete(p.conns, b)
	p.mu.Unlock()
	a.Close()
	b.Close()
}

// pump forwards src -> dst in chunks, rolling the dice on each one. A drop
// closes BOTH directions: TCP has no half-broken state a crashed peer would
// leave behind, and the client must see its in-flight requests die.
func (p *Proxy) pump(src, dst net.Conn, rng *rand.Rand) {
	defer p.wg.Done()
	defer p.untrack(src, dst)
	buf := make([]byte, p.cfg.ChunkSize)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if p.cfg.DelayProb > 0 && rng.Float64() < p.cfg.DelayProb && p.cfg.MaxDelay > 0 {
				time.Sleep(time.Duration(rng.Int63n(int64(p.cfg.MaxDelay))) + 1)
			}
			if p.cfg.DropProb > 0 && rng.Float64() < p.cfg.DropProb {
				p.drops.Add(1)
				if rng.Float64() < p.cfg.TornProb && n > 1 {
					// Forward a prefix so the peer sees a torn frame before
					// the cut — the CRC/short-read paths must both fire.
					p.torn.Add(1)
					dst.Write(buf[:1+rng.Intn(n-1)])
				}
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			// EOF or a severed socket: either way both directions die, the
			// same all-or-nothing teardown a crashed peer produces. Clients
			// wait for their responses before closing, so a clean shutdown
			// never races an in-flight reply.
			return
		}
	}
}
