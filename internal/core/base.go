package core

import "fmt"

// TableMeta identifies a registered table inside an engine.
type TableMeta struct {
	ID     int
	Schema *Schema
	secIdx map[string]int // index name -> position in Schema.Secondary
}

// SecPos returns the position of a named secondary index.
func (t *TableMeta) SecPos(name string) (int, bool) {
	i, ok := t.secIdx[name]
	return i, ok
}

// Base carries the state common to all six engines: the partition
// environment, the table registry, the transaction state machine, and the
// execution-time breakdown.
type Base struct {
	Env    *Env
	Tables []*TableMeta
	byName map[string]*TableMeta
	InTx   bool
	TxnID  uint64 // monotonically increasing transaction id
	Bd     Breakdown
	// Rec summarizes the engine's last recovery pass (zero for engines
	// built fresh with New).
	Rec RecoveryReport
}

// InitBase prepares the registry for the given schemas (table ID = position).
func (b *Base) InitBase(env *Env, schemas []*Schema) {
	b.Env = env
	b.byName = make(map[string]*TableMeta, len(schemas))
	for i, s := range schemas {
		tm := &TableMeta{ID: i, Schema: s, secIdx: make(map[string]int)}
		for j, ix := range s.Secondary {
			tm.secIdx[ix.Name] = j
		}
		b.Tables = append(b.Tables, tm)
		b.byName[s.Name] = tm
	}
}

// Table resolves a table by name.
func (b *Base) Table(name string) (*TableMeta, error) {
	tm, ok := b.byName[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", name)
	}
	return tm, nil
}

// BeginTx starts a transaction.
func (b *Base) BeginTx() error {
	if b.InTx {
		return ErrInTxn
	}
	b.InTx = true
	b.TxnID++
	return nil
}

// EndTx finishes a transaction.
func (b *Base) EndTx() error {
	if !b.InTx {
		return ErrNoTxn
	}
	b.InTx = false
	return nil
}

// RequireTx fails unless a transaction is running.
func (b *Base) RequireTx() error {
	if !b.InTx {
		return ErrNoTxn
	}
	return nil
}

// Breakdown returns the engine's component timers.
func (b *Base) Breakdown() *Breakdown { return &b.Bd }

// RecoveryReport returns the stats of the engine's last recovery pass.
func (b *Base) RecoveryReport() RecoveryReport { return b.Rec }

// Environment returns the partition environment the engine runs on.
func (b *Base) Environment() *Env { return b.Env }
