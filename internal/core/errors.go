package core

import (
	"errors"
	"fmt"

	"nstore/internal/pmfs"
)

// Error taxonomy for the serving runtime. The engines surface failures from
// the durability boundary (fsync, allocator, device) as plain errors; this
// file gives callers — chiefly internal/serve's partition supervisor — a
// uniform way to decide between retrying a transaction, healing a partition
// via crash recovery, and giving up.
var (
	// ErrRetryable tags transient failures: the transaction did not commit,
	// the engine is still consistent, and re-running the transaction may
	// succeed (e.g. an fsync that failed before flushing anything).
	ErrRetryable = errors.New("retryable")

	// ErrCorrupt tags failures after which the engine's volatile state can
	// no longer be trusted; the only safe continuation is the engine's own
	// crash-recovery protocol (Crash + Reopen + Open).
	ErrCorrupt = errors.New("corrupt")
)

// ErrConflict is the first-committer-wins OCC validation failure: between a
// transaction's snapshot and its commit point, another transaction committed
// a key (or table, for scans) the loser read. The engine was never touched —
// nothing to undo — and a retry against a fresh snapshot may well succeed, so
// the sentinel is tagged retryable and flows through the same taxonomy the
// supervisor's backoff-and-retry policy already handles.
var ErrConflict = Retryable(errors.New("core: optimistic concurrency conflict"))

// taggedError attaches a classification sentinel to a cause. Unwrap returns
// both, so errors.Is matches the tag and the underlying error alike.
type taggedError struct {
	tag   error
	cause error
}

func (e *taggedError) Error() string   { return e.tag.Error() + ": " + e.cause.Error() }
func (e *taggedError) Unwrap() []error { return []error{e.tag, e.cause} }

// Retryable wraps err so IsRetryable reports true. Nil and already-tagged
// errors pass through unchanged.
func Retryable(err error) error {
	if err == nil || errors.Is(err, ErrRetryable) {
		return err
	}
	return &taggedError{tag: ErrRetryable, cause: err}
}

// Corrupt wraps err so IsCorrupt reports true. Nil and already-tagged errors
// pass through unchanged.
func Corrupt(err error) error {
	if err == nil || errors.Is(err, ErrCorrupt) {
		return err
	}
	return &taggedError{tag: ErrCorrupt, cause: err}
}

// IsRetryable reports whether err is tagged transient: safe to retry the
// transaction on the same engine instance after an Abort.
func IsRetryable(err error) bool { return errors.Is(err, ErrRetryable) }

// IsCorrupt reports whether err indicates the engine instance must be
// discarded and recovered from durable state.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

// TxnError is the typed failure a supervisor reports for one transaction:
// which engine, which operation, whether the failure was a recovered panic,
// and the underlying cause. It unwraps to the cause so the taxonomy
// predicates (IsRetryable, IsCorrupt) and sentinel comparisons keep working.
type TxnError struct {
	Engine   string // engine kind, e.g. "nvm-inp"
	Op       string // operation at the failure point, e.g. "commit"
	Panicked bool   // true when the cause was recovered from a panic
	Err      error
}

func (e *TxnError) Error() string {
	kind := "error"
	if e.Panicked {
		kind = "panic"
	}
	return fmt.Sprintf("txn %s in %s/%s: %v", kind, e.Engine, e.Op, e.Err)
}

func (e *TxnError) Unwrap() error { return e.Err }

// ClassifyDurability classifies an error crossing the durability boundary
// (WAL flush, checkpoint sync, manifest install). Transient sync failures —
// the filesystem reported the fsync failed but flushed nothing, so the
// durable state is exactly what it was — become retryable. Already-tagged
// errors and everything else pass through for the caller to treat as fatal
// for this engine instance.
func ClassifyDurability(err error) error {
	if err == nil || errors.Is(err, ErrRetryable) || errors.Is(err, ErrCorrupt) {
		return err
	}
	if errors.Is(err, pmfs.ErrSyncFailed) {
		return Retryable(err)
	}
	return err
}
