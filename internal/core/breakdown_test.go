package core

import (
	"testing"
	"time"
)

// TestBreakdownNestedTimersNoDoubleCount proves the Fig. 9 buckets sum to
// at most wall time when timers nest: a Storage-bucketed interval running
// inside a Recovery-bucketed one must be charged to Storage only, with
// Recovery keeping just its self time.
func TestBreakdownNestedTimersNoDoubleCount(t *testing.T) {
	var b Breakdown
	wallStart := time.Now()

	stopRecovery := b.Timer(&b.Recovery)
	time.Sleep(4 * time.Millisecond)
	stopStorage := b.Timer(&b.Storage)
	time.Sleep(4 * time.Millisecond)
	stopStorage()
	time.Sleep(2 * time.Millisecond)
	stopRecovery()

	wall := time.Since(wallStart)
	if b.Storage == 0 || b.Recovery == 0 {
		t.Fatalf("buckets not charged: storage=%v recovery=%v", b.Storage, b.Recovery)
	}
	if b.Total() > wall {
		t.Fatalf("buckets sum to %v > wall %v — nested interval double-counted", b.Total(), wall)
	}
	// Recovery must exclude the nested Storage interval: its self time is
	// ~6ms out of the ~10ms outer interval.
	if b.Recovery > wall-b.Storage {
		t.Fatalf("recovery self time %v exceeds wall %v minus storage %v", b.Recovery, wall, b.Storage)
	}
	if b.Storage < 3*time.Millisecond {
		t.Fatalf("storage = %v, want >= ~4ms", b.Storage)
	}
}

// TestBreakdownDeepNesting checks three levels plus sequential siblings.
func TestBreakdownDeepNesting(t *testing.T) {
	var b Breakdown
	wallStart := time.Now()

	stopR := b.Timer(&b.Recovery)
	stopS := b.Timer(&b.Storage)
	stopI := b.Timer(&b.Index)
	time.Sleep(2 * time.Millisecond)
	stopI()
	stopS()
	stopO := b.Timer(&b.Other)
	time.Sleep(2 * time.Millisecond)
	stopO()
	stopR()

	wall := time.Since(wallStart)
	if b.Total() > wall {
		t.Fatalf("total %v > wall %v", b.Total(), wall)
	}
	if b.Index < time.Millisecond || b.Other < time.Millisecond {
		t.Fatalf("inner buckets lost time: index=%v other=%v", b.Index, b.Other)
	}
}

// TestBreakdownSnapshotMatchesBuckets checks the atomic mirrors the scraper
// reads agree with the owner-visible buckets once timers are stopped.
func TestBreakdownSnapshotMatchesBuckets(t *testing.T) {
	var b Breakdown
	stop := b.Timer(&b.Storage)
	time.Sleep(time.Millisecond)
	stop()
	stop = b.Timer(&b.Index)
	stop()

	snap := b.Snapshot()
	if snap.Storage != b.Storage || snap.Index != b.Index ||
		snap.Recovery != b.Recovery || snap.Other != b.Other {
		t.Fatalf("snapshot %+v diverges from buckets %+v", snap, b)
	}
}

// TestBreakdownOutOfOrderStopIgnored documents the defensive behaviour: a
// stop called after its frame was already popped is dropped instead of
// corrupting another bucket's attribution.
func TestBreakdownOutOfOrderStopIgnored(t *testing.T) {
	var b Breakdown
	stopOuter := b.Timer(&b.Recovery)
	stopInner := b.Timer(&b.Storage)
	stopInner()
	stopInner() // double stop: must be a no-op
	stopOuter()
	if b.Total() <= 0 {
		t.Fatalf("legitimate stops lost: %+v", b)
	}
}
