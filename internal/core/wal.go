package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"nstore/internal/pmalloc"
	"nstore/internal/pmfs"
)

// walTable is the CRC polynomial table for WAL record checksums.
var walTable = crc32.MakeTable(crc32.Castagnoli)

// FsWAL is the filesystem-backed write-ahead log of the traditional engines
// (§3.1, §3.3). Records carry the transaction identifier, the table
// modified, the tuple identifier, and before/after images. To reduce I/O
// overhead, records are buffered and flushed with one fsync per group of
// transactions (group commit).
type FsWAL struct {
	fs   *pmfs.FS
	f    *pmfs.File
	name string

	// Segmented mode (the staged-flush Log engine): the log is a series of
	// files "<prefix>.NNNNNN". Rotation seals the active segment at a
	// group boundary; sealed segments are deleted only after the manifest
	// commit that makes their records redundant (release after install).
	segPrefix string
	segSeq    uint64 // active segment number; 0 = single-file mode

	// The log buffer lives in allocator memory: on the NVM-only hierarchy
	// even "in-memory" buffering is NVM traffic (though unsynced).
	arena  *pmalloc.Arena
	bufPtr pmalloc.Ptr
	bufCap int
	bufLen int
	// scratch mirrors the buffer for cheap record assembly before the
	// single buffered device write.
	scratch []byte

	pendingTxn int // committed txns whose records are still buffered
	groupSize  int

	// Cumulative metrics in atomic cells: the owner appends and flushes
	// while a metrics scraper reads Stats from another goroutine.
	records atomic.Int64 // records appended (including later-dropped tails)
	bytes   atomic.Int64 // record bytes appended
	fsyncs  atomic.Int64 // durable group-commit flushes
}

// WalStats is a scraper-safe snapshot of a WAL's cumulative counters.
type WalStats struct {
	// Records and Bytes count appended log records and their encoded size,
	// including records of transactions that later aborted (their buffer
	// tail is dropped, but the append work happened).
	Records int64
	Bytes   int64
	// Fsyncs counts successful group-commit flushes.
	Fsyncs int64
}

// Stats returns the WAL's cumulative counters. Safe from any goroutine.
func (w *FsWAL) Stats() WalStats {
	return WalStats{
		Records: w.records.Load(),
		Bytes:   w.bytes.Load(),
		Fsyncs:  w.fsyncs.Load(),
	}
}

// WalStatser is implemented by engines that expose their WAL's counters
// (the WAL-based engines: inp, nvm-inp via its own log, log, nvm-log).
type WalStatser interface {
	WalStats() WalStats
}

// WAL record types.
const (
	WalInsert uint8 = iota + 1
	WalUpdate
	WalDelete
	WalCommit
)

// WalRecord is a parsed WAL record.
type WalRecord struct {
	Type   uint8
	TxnID  uint64
	Table  int
	Key    uint64
	Before []byte
	After  []byte
}

// NewFsWAL creates (or truncates) the log file. The arena backs the
// volatile log buffer; pass nil to keep the buffer in process memory only
// (tests).
func NewFsWAL(fs *pmfs.FS, name string, groupSize int) (*FsWAL, error) {
	if fs.Exists(name) {
		if err := fs.Remove(name); err != nil {
			return nil, err
		}
	}
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	if groupSize <= 0 {
		groupSize = 1
	}
	return &FsWAL{fs: fs, f: f, name: name, groupSize: groupSize}, nil
}

// OpenFsWAL opens an existing log for replay.
func OpenFsWAL(fs *pmfs.FS, name string, groupSize int) (*FsWAL, error) {
	f, err := fs.OpenFile(name)
	if err != nil {
		return nil, err
	}
	if groupSize <= 0 {
		groupSize = 1
	}
	return &FsWAL{fs: fs, f: f, name: name, groupSize: groupSize}, nil
}

// walSegName spells the file name of one WAL segment.
func walSegName(prefix string, seq uint64) string {
	return fmt.Sprintf("%s.%06d", prefix, seq)
}

// walSegList returns the existing segment numbers for prefix, ascending.
func walSegList(fs *pmfs.FS, prefix string) []uint64 {
	var seqs []uint64
	for _, name := range fs.List() {
		if !strings.HasPrefix(name, prefix+".") {
			continue
		}
		n, err := strconv.ParseUint(name[len(prefix)+1:], 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// NewSegmentedFsWAL creates a fresh segmented log, removing any stale
// segment files of a previous incarnation.
func NewSegmentedFsWAL(fs *pmfs.FS, prefix string, groupSize int) (*FsWAL, error) {
	for _, seq := range walSegList(fs, prefix) {
		if err := fs.Remove(walSegName(prefix, seq)); err != nil {
			return nil, err
		}
	}
	f, err := fs.Create(walSegName(prefix, 1))
	if err != nil {
		return nil, err
	}
	if groupSize <= 0 {
		groupSize = 1
	}
	return &FsWAL{fs: fs, f: f, name: walSegName(prefix, 1), segPrefix: prefix, segSeq: 1, groupSize: groupSize}, nil
}

// OpenSegmentedFsWAL opens an existing segmented log for replay; the
// highest-numbered segment becomes the active one.
func OpenSegmentedFsWAL(fs *pmfs.FS, prefix string, groupSize int) (*FsWAL, error) {
	seqs := walSegList(fs, prefix)
	if len(seqs) == 0 {
		return NewSegmentedFsWAL(fs, prefix, groupSize)
	}
	active := seqs[len(seqs)-1]
	f, err := fs.OpenFile(walSegName(prefix, active))
	if err != nil {
		return nil, err
	}
	if groupSize <= 0 {
		groupSize = 1
	}
	return &FsWAL{fs: fs, f: f, name: walSegName(prefix, active), segPrefix: prefix, segSeq: active, groupSize: groupSize}, nil
}

// Rotate seals the active segment and starts a new one, returning the
// sealed segment's number. The buffer is flushed first, so a transaction's
// records never span segments: rotation only happens at group boundaries.
func (w *FsWAL) Rotate() (sealed uint64, err error) {
	if w.segSeq == 0 {
		return 0, errors.New("wal: Rotate on single-file log")
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	next := w.segSeq + 1
	f, err := w.fs.Create(walSegName(w.segPrefix, next))
	if err != nil {
		return 0, ClassifyDurability(err)
	}
	sealed = w.segSeq
	w.f, w.name, w.segSeq = f, walSegName(w.segPrefix, next), next
	return sealed, nil
}

// SegSeq returns the active segment number (0 in single-file mode).
func (w *FsWAL) SegSeq() uint64 { return w.segSeq }

// ReleaseThrough deletes sealed segments numbered <= seq. The engine calls
// this only after the manifest commit that installed the flushed data those
// segments protected — release strictly after install.
func (w *FsWAL) ReleaseThrough(seq uint64) error {
	for _, s := range walSegList(w.fs, w.segPrefix) {
		if s <= seq && s != w.segSeq {
			if err := w.fs.Remove(walSegName(w.segPrefix, s)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReplaySegments is Replay for a segmented log: segments are walked in
// order, each with its own committed-set pass and torn-tail truncation (a
// transaction never spans segments, so the commit-record scope is one
// segment).
func (w *FsWAL) ReplaySegments(minTxn uint64, fn func(r WalRecord) error) (maxTxn uint64, err error) {
	for _, seq := range walSegList(w.fs, w.segPrefix) {
		f := w.f
		if seq != w.segSeq {
			var err error
			f, err = w.fs.OpenFile(walSegName(w.segPrefix, seq))
			if err != nil {
				return maxTxn, err
			}
		}
		segMax, err := replayFile(f, minTxn, fn)
		if segMax > maxTxn {
			maxTxn = segMax
		}
		if err != nil {
			return maxTxn, err
		}
	}
	return maxTxn, nil
}

// UseArenaBuffer places the log buffer in allocator memory so buffered
// appends count as NVM traffic, as on the paper's NVM-only hierarchy.
func (w *FsWAL) UseArenaBuffer(arena *pmalloc.Arena) error {
	const initial = 256 << 10
	p, err := arena.Alloc(initial, pmalloc.TagLog)
	if err != nil {
		return err
	}
	w.arena, w.bufPtr, w.bufCap = arena, p, initial
	return nil
}

// bufAppend appends record bytes to the buffer (device-resident if an
// arena was attached).
func (w *FsWAL) bufAppend(b []byte) {
	w.scratch = append(w.scratch, b...)
	if w.arena != nil {
		for w.bufLen+len(b) > w.bufCap {
			// Grow the device-resident buffer.
			np, err := w.arena.Alloc(w.bufCap*2, pmalloc.TagLog)
			if err != nil {
				// Out of arena: fall back to process memory for the rest.
				w.arena = nil
				return
			}
			old := make([]byte, w.bufLen)
			w.arena.Device().Read(int64(w.bufPtr), old)
			w.arena.Device().Write(int64(np), old)
			w.arena.Free(w.bufPtr)
			w.bufPtr = np
			w.bufCap *= 2
		}
		w.arena.Device().Write(int64(w.bufPtr)+int64(w.bufLen), b)
	}
	w.bufLen += len(b)
}

// Append buffers a record. It becomes durable at the next group-commit
// flush.
func (w *FsWAL) Append(r WalRecord) {
	// size u32 | crc u32 | type u8 | table u8 | txnid u64 | key u64 |
	// beforeLen u32 | before | afterLen u32 | after
	//
	// crc covers the body. A crash can leave the file tail holding a torn
	// append or stale bytes from a reused extent; the checksum lets replay
	// tell a valid record from debris.
	body := 1 + 1 + 8 + 8 + 4 + len(r.Before) + 4 + len(r.After)
	rec := make([]byte, 0, 8+body)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(body))
	rec = append(rec, hdr[:]...)
	rec = append(rec, r.Type, uint8(r.Table))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], r.TxnID)
	rec = append(rec, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], r.Key)
	rec = append(rec, b8[:]...)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(r.Before)))
	rec = append(rec, b4[:]...)
	rec = append(rec, r.Before...)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(r.After)))
	rec = append(rec, b4[:]...)
	rec = append(rec, r.After...)
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(rec[8:], walTable))
	w.bufAppend(rec)
	w.records.Add(1)
	w.bytes.Add(int64(len(rec)))
}

// TxnCommitted appends the commit record and flushes if the group is full.
func (w *FsWAL) TxnCommitted(txnID uint64) error {
	w.Append(WalRecord{Type: WalCommit, TxnID: txnID})
	w.pendingTxn++
	if w.pendingTxn >= w.groupSize {
		return w.Flush()
	}
	return nil
}

// DropTail discards buffered records of an aborted transaction. With
// serial execution the aborted txn's records are the buffer tail after the
// last commit record; the engine calls this before appending anything for
// the next transaction, passing the buffer length at txn begin.
func (w *FsWAL) DropTail(mark int) {
	if mark <= w.bufLen {
		w.bufLen = mark
		w.scratch = w.scratch[:mark]
	}
}

// Mark returns the current buffer position (for DropTail).
func (w *FsWAL) Mark() int { return w.bufLen }

// PendingTxns returns the number of committed transactions whose records
// are still in the volatile group buffer. Zero means the last TxnCommitted
// reached the durability barrier — engines use this to decide whether a
// commit may publish MVCC versions immediately or must wait for Flush.
func (w *FsWAL) PendingTxns() int { return w.pendingTxn }

// Flush appends the buffer to the log file and fsyncs (the group commit).
//
// Failure leaves the WAL retryable: the buffer is kept intact and the file
// is rewound to its pre-append size, so no half-appended group can later be
// made durable by an unrelated successful fsync (which would resurrect
// commit records of transactions that were reported failed). Transient sync
// failures come back tagged ErrRetryable; if even the rewind fails the
// error is tagged ErrCorrupt and the engine instance must be recovered.
func (w *FsWAL) Flush() error {
	pre := w.f.Size()
	appended := false
	if w.bufLen > 0 {
		if _, err := w.f.Append(w.scratch[:w.bufLen]); err != nil {
			if terr := w.f.Truncate(pre); terr != nil {
				return Corrupt(errors.Join(err, terr))
			}
			return ClassifyDurability(err)
		}
		appended = true
	}
	if err := w.f.Sync(); err != nil {
		if appended {
			if terr := w.f.Truncate(pre); terr != nil {
				return Corrupt(errors.Join(err, terr))
			}
		}
		return ClassifyDurability(err)
	}
	if appended {
		w.bufLen = 0
		w.scratch = w.scratch[:0]
	}
	w.fsyncs.Add(1)
	w.pendingTxn = 0
	return nil
}

// Replay parses the durable log and calls fn for every record of a
// committed transaction with TxnID > minTxn, in log order. Records of
// transactions without a commit record (in-flight at the crash) are
// skipped, implementing the "changes made by uncommitted transactions are
// not propagated" rule; minTxn filters records already covered by a
// checkpoint or SSTable flush, which can resurface when a truncated log's
// extents are reused. Replay stops at the first torn or corrupt record and
// truncates the durable file back to the valid prefix, so later appends
// never land beyond crash debris. It returns the highest TxnID seen in any
// valid record (committed or not); the engine must restart its TxnID
// counter above it so old in-flight records can never pair with a new
// commit record.
func (w *FsWAL) Replay(minTxn uint64, fn func(r WalRecord) error) (maxTxn uint64, err error) {
	return replayFile(w.f, minTxn, fn)
}

// replayFile runs the two-pass replay over one log file.
func replayFile(f *pmfs.File, minTxn uint64, fn func(r WalRecord) error) (maxTxn uint64, err error) {
	size := f.Size()
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil {
			return 0, err
		}
	}
	// Pass 1: find committed txns and the valid prefix length.
	committed := make(map[uint64]bool)
	valid, _ := walkRecords(data, func(r WalRecord) error {
		if r.TxnID > maxTxn {
			maxTxn = r.TxnID
		}
		if r.Type == WalCommit {
			committed[r.TxnID] = true
		}
		return nil
	})
	if int64(valid) < size {
		// Crash debris past the valid prefix: cut it off durably before the
		// engine appends anything new behind it.
		if err := f.Truncate(int64(valid)); err != nil {
			return maxTxn, err
		}
	}
	// Pass 2: redo committed records in order.
	_, err = walkRecords(data[:valid], func(r WalRecord) error {
		if r.Type != WalCommit && committed[r.TxnID] && r.TxnID > minTxn {
			return fn(r)
		}
		return nil
	})
	return maxTxn, err
}

// walkRecords parses records from data until the first torn or corrupt
// record, returning the length of the valid prefix. Damage is expected
// after a crash (unflushed group tails, reused extents) and simply ends the
// walk; only fn errors propagate.
func walkRecords(data []byte, fn func(r WalRecord) error) (valid int, err error) {
	off := 0
	for off+8 <= len(data) {
		body := int(binary.LittleEndian.Uint32(data[off:]))
		if body < 26 || off+8+body > len(data) {
			return off, nil
		}
		crc := binary.LittleEndian.Uint32(data[off+4:])
		rec := data[off+8 : off+8+body]
		if crc32.Checksum(rec, walTable) != crc {
			return off, nil
		}
		r := WalRecord{
			Type:  rec[0],
			Table: int(rec[1]),
			TxnID: binary.LittleEndian.Uint64(rec[2:]),
			Key:   binary.LittleEndian.Uint64(rec[10:]),
		}
		bl := int(binary.LittleEndian.Uint32(rec[18:]))
		if 22+bl > body {
			return off, nil
		}
		r.Before = rec[22 : 22+bl]
		al := int(binary.LittleEndian.Uint32(rec[22+bl:]))
		if 26+bl+al > body {
			return off, nil
		}
		r.After = rec[26+bl : 26+bl+al]
		if r.Type == 0 || r.Type > WalCommit {
			return off, nil
		}
		off += 8 + body
		if err := fn(r); err != nil {
			return off, err
		}
	}
	return off, nil
}

// Truncate discards the durable log (after a checkpoint).
func (w *FsWAL) Truncate() error {
	w.bufLen = 0
	w.scratch = w.scratch[:0]
	w.pendingTxn = 0
	return w.f.Truncate(0)
}

// SizeBytes returns the durable log size (Fig. 14) — across all live
// segments in segmented mode.
func (w *FsWAL) SizeBytes() int64 {
	if w.segSeq == 0 {
		return w.f.Size()
	}
	var total int64
	for _, seq := range walSegList(w.fs, w.segPrefix) {
		if n, err := w.fs.FileSize(walSegName(w.segPrefix, seq)); err == nil {
			total += n
		}
	}
	return total
}
