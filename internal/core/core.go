// Package core defines the storage-engine contract of the DBMS testbed
// (§3): the schema and tuple model, the Engine interface implemented by the
// six storage engines, per-component execution timers (Fig. 13), and the
// storage-footprint report (Fig. 14).
package core

import (
	"errors"
	"sync/atomic"
	"time"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
	"nstore/internal/pmfs"
)

// ColType is a column type.
type ColType uint8

// Column types. Integers are stored inline in the tuple's fixed-size slot;
// strings larger than 8 bytes live in variable-length slots referenced by an
// 8-byte pointer, as in §3.1.
const (
	TInt ColType = iota
	TString
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type ColType
	// Size is the maximum byte length for TString columns.
	Size int
}

// IndexSpec declares a secondary index: SecKey extracts a 32-bit secondary
// key from a row. Engines store composite (secondary, primary) keys so that
// duplicates are resolved and range scans work (§3.2's "mapping of
// secondary keys to primary keys").
type IndexSpec struct {
	Name   string
	SecKey func(row []Value) uint32
}

// Schema describes a table.
type Schema struct {
	Name      string
	Columns   []Column
	Secondary []IndexSpec
}

// FixedSize returns the size of the tuple's fixed-size slot: 8 bytes per
// column (inline integer or pointer to a variable-length slot).
func (s *Schema) FixedSize() int { return 8 * len(s.Columns) }

// Value is one column value; I is used for TInt columns, S for TString.
type Value struct {
	I int64
	S []byte
}

// IntVal and StrVal build column values.
func IntVal(v int64) Value    { return Value{I: v} }
func StrVal(v string) Value   { return Value{S: []byte(v)} }
func BytesVal(v []byte) Value { return Value{S: v} }

// Errors common to all engines.
var (
	ErrKeyExists   = errors.New("core: key already exists")
	ErrKeyNotFound = errors.New("core: key not found")
	ErrNoTxn       = errors.New("core: no transaction in progress")
	ErrInTxn       = errors.New("core: transaction already in progress")
)

// Update describes a partial tuple modification: parallel slices of column
// indexes and their new values.
type Update struct {
	Cols []int
	Vals []Value
}

// Engine is the contract shared by the six storage engines. Engines are
// single-partition and not safe for concurrent use: the testbed runs
// transactions serially within each partition (§3).
type Engine interface {
	// Name returns the engine identifier (e.g. "nvm-inp").
	Name() string

	// Begin starts a transaction; Commit and Abort end it. Every data
	// operation must run inside a transaction.
	Begin() error
	Commit() error
	Abort() error

	// Insert adds a tuple with the given primary key.
	Insert(table string, key uint64, row []Value) error
	// Update modifies a subset of columns of an existing tuple.
	Update(table string, key uint64, upd Update) error
	// Delete removes a tuple.
	Delete(table string, key uint64) error
	// Get returns a tuple by primary key (visible to the running txn).
	Get(table string, key uint64) ([]Value, bool, error)
	// ScanSecondary iterates primary keys whose secondary key in the named
	// index equals sec, until fn returns false.
	ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error
	// ScanRange iterates (pk, row) for primary keys in [from, to), in
	// ascending order, until fn returns false.
	ScanRange(table string, from, to uint64, fn func(pk uint64, row []Value) bool) error

	// Flush forces any batched durability work (group commit, checkpoints)
	// to complete. Called at workload boundaries.
	Flush() error

	// Breakdown returns the cumulative per-component execution times.
	Breakdown() *Breakdown
	// Footprint reports durable storage usage by category.
	Footprint() Footprint
}

// Breakdown accumulates time per engine component (Fig. 13): storage
// management, recovery mechanisms (logging, checkpointing, persisting),
// index accesses, and everything else.
//
// Buckets record *self time*: when timers nest (e.g. a Storage-bucketed
// heap write inside a Recovery-bucketed checkpoint), the inner interval is
// subtracted from the outer bucket, so the four buckets sum to at most the
// wall time spent under timers — never double-counted.
//
// The exported fields are owned by the engine's executor goroutine. For
// concurrent readers (a /metrics scrape racing a partition executor) use
// Snapshot, which reads atomically maintained mirrors.
type Breakdown struct {
	Storage  time.Duration
	Recovery time.Duration
	Index    time.Duration
	Other    time.Duration

	// stack tracks in-flight timers for nested self-time attribution.
	stack []bdFrame
	// mirror holds atomic copies of the four buckets (ns), published by
	// Timer's stop function, in field order: Storage, Recovery, Index,
	// Other. Plain int64s accessed via sync/atomic so the struct stays
	// copyable.
	mirror [4]int64
}

type bdFrame struct {
	bucket *time.Duration
	start  time.Time
	child  time.Duration // time consumed by nested timers
}

// Timer starts timing a component; call the returned stop function to add
// the elapsed *self* time to the given bucket (elapsed minus any nested
// timer intervals). Stops must be called in LIFO order, which the engines'
// structured begin/defer usage guarantees; an out-of-order stop is ignored
// rather than corrupting the stack.
func (b *Breakdown) Timer(bucket *time.Duration) func() {
	b.stack = append(b.stack, bdFrame{bucket: bucket, start: time.Now()})
	depth := len(b.stack)
	return func() {
		if len(b.stack) != depth {
			return // out-of-order stop; drop rather than misattribute
		}
		f := b.stack[depth-1]
		b.stack = b.stack[:depth-1]
		elapsed := time.Since(f.start)
		self := elapsed - f.child
		if self < 0 {
			self = 0
		}
		*f.bucket += self
		if depth > 1 {
			b.stack[depth-2].child += elapsed
		}
		b.publish(f.bucket)
	}
}

// publish copies one bucket into its atomic mirror for Snapshot readers.
func (b *Breakdown) publish(bucket *time.Duration) {
	switch bucket {
	case &b.Storage:
		atomic.StoreInt64(&b.mirror[0], int64(b.Storage))
	case &b.Recovery:
		atomic.StoreInt64(&b.mirror[1], int64(b.Recovery))
	case &b.Index:
		atomic.StoreInt64(&b.mirror[2], int64(b.Index))
	case &b.Other:
		atomic.StoreInt64(&b.mirror[3], int64(b.Other))
	}
}

// Snapshot returns a scraper-safe copy of the buckets, read from the atomic
// mirrors. It may be called from any goroutine while the owning executor
// keeps timing.
func (b *Breakdown) Snapshot() Breakdown {
	return Breakdown{
		Storage:  time.Duration(atomic.LoadInt64(&b.mirror[0])),
		Recovery: time.Duration(atomic.LoadInt64(&b.mirror[1])),
		Index:    time.Duration(atomic.LoadInt64(&b.mirror[2])),
		Other:    time.Duration(atomic.LoadInt64(&b.mirror[3])),
	}
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o *Breakdown) {
	b.Storage += o.Storage
	b.Recovery += o.Recovery
	b.Index += o.Index
	b.Other += o.Other
}

// Total returns the sum over all components.
func (b *Breakdown) Total() time.Duration {
	return b.Storage + b.Recovery + b.Index + b.Other
}

// Footprint reports durable NVM usage by category (Fig. 14), in bytes.
type Footprint struct {
	Table      int64
	Index      int64
	Log        int64
	Checkpoint int64
	Other      int64
}

// Total returns the sum over all categories.
func (f Footprint) Total() int64 {
	return f.Table + f.Index + f.Log + f.Checkpoint + f.Other
}

// Env bundles the per-partition storage resources an engine runs on: the
// emulated NVM device, the allocator interface, and the filesystem
// interface (Fig. 2).
type Env struct {
	Dev   *nvm.Device
	Arena *pmalloc.Arena
	FS    *pmfs.FS
}

// EnvConfig sizes a partition's storage.
type EnvConfig struct {
	// DeviceSize is the total emulated NVM capacity for this partition.
	DeviceSize int64
	// FSFraction is the share of the device given to the filesystem
	// interface (default 0.5); the rest backs the allocator interface.
	FSFraction float64
	// FSExtent is the filesystem extent size (default 256 KiB).
	FSExtent int64
	// Profile is the NVM latency profile (default DRAM).
	Profile nvm.Profile
	// CacheSize overrides the CPU cache size (default 4 MiB).
	CacheSize int
}

// NewEnv formats a fresh partition environment.
func NewEnv(cfg EnvConfig) *Env {
	if cfg.DeviceSize == 0 {
		cfg.DeviceSize = 256 << 20
	}
	if cfg.FSFraction == 0 {
		cfg.FSFraction = 0.5
	}
	if cfg.FSExtent == 0 {
		cfg.FSExtent = 256 << 10
	}
	devCfg := nvm.DefaultConfig(cfg.DeviceSize)
	if cfg.Profile.Name != "" {
		cfg.Profile.Apply(&devCfg)
	}
	if cfg.CacheSize != 0 {
		devCfg.CacheSize = cfg.CacheSize
	}
	dev := nvm.NewDevice(devCfg)
	fsSize := int64(float64(cfg.DeviceSize) * cfg.FSFraction)
	fs := pmfs.Format(dev, 0, fsSize, pmfs.Config{ExtentSize: cfg.FSExtent})
	arena := pmalloc.Format(dev, fsSize, cfg.DeviceSize-fsSize)
	return &Env{Dev: dev, Arena: arena, FS: fs}
}

// Reopen re-attaches to a partition environment after a crash or restart:
// the device keeps its durable contents, and the allocator and filesystem
// run their recovery scans.
func (e *Env) Reopen() (*Env, error) {
	fsSize := int64(0)
	// The filesystem lives at offset 0; find the arena base by probing the
	// filesystem's recorded size.
	fs, err := pmfs.Open(e.Dev, 0)
	if err != nil {
		return nil, err
	}
	fsSize = fsBase(e)
	arena, err := pmalloc.Open(e.Dev, fsSize)
	if err != nil {
		return nil, err
	}
	return &Env{Dev: e.Dev, Arena: arena, FS: fs}, nil
}

// ReopenVolatile re-attaches to a partition after a crash for a traditional
// engine: the filesystem (holding the WAL / checkpoint / SSTables /
// directories) recovers, but the allocator region — which those engines
// treat as volatile memory — is reformatted from scratch.
func (e *Env) ReopenVolatile() (*Env, error) {
	fs, err := pmfs.Open(e.Dev, 0)
	if err != nil {
		return nil, err
	}
	base := fsBase(e)
	arena := pmalloc.Format(e.Dev, base, e.Dev.Size()-base)
	return &Env{Dev: e.Dev, Arena: arena, FS: fs}, nil
}

// fsBase returns the device offset where the arena begins.
func fsBase(e *Env) int64 {
	// The filesystem records its own size in its superblock (offset 8).
	return int64(e.Dev.ReadU64(8))
}
