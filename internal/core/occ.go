package core

import (
	"errors"
	"fmt"
	"sort"
)

// This file holds the optimistic-concurrency half of the MVCC contract: a
// transaction wrapper that records read and write sets against a pinned
// snapshot, the validator interface a version store answers conflict queries
// through, and the first-committer-wins validation rule. The concurrency
// model splits a transaction into two phases:
//
//   - execution: the body runs against an OccTxn — reads come from the
//     pinned ReadView (overlaid with the transaction's own writes), writes
//     buffer into the write set. The engine, the device, and the partition
//     lock are never touched.
//   - commit: under the partition's serialization point the read set is
//     validated against the store's newest commit timestamps; if no key
//     (or scanned table) the transaction observed committed after its
//     snapshot, the write set is applied through the real engine. Otherwise
//     the transaction aborts with ErrConflict having touched nothing.
//
// Because commits are totally ordered at the serialization point and a
// winner's reads are provably unchanged between snapshot and commit, the
// committed history is equivalent to a serial execution in commit order —
// snapshot reads plus read-set validation close the write-skew hole plain
// snapshot isolation leaves open.

// OccValidator answers conflict queries at the commit point. Implemented by
// the mvcc version store; callers must hold the partition's serialization
// point (the same single-owner rule as the store's writer side).
type OccValidator interface {
	// LatestKeyTs returns the newest commit timestamp that wrote the key
	// (including committed-but-unpublished group-commit transactions), or 0
	// if the key was never written or its entry was pruned below the GC
	// watermark — safe because a validating transaction keeps its snapshot
	// pinned, so its snapshot timestamp is never below the watermark.
	LatestKeyTs(table string, key uint64) uint64
	// LatestTableTs returns the newest commit timestamp that wrote any key
	// of the table (never pruned). Scans validate at this granularity.
	LatestTableTs(table string) uint64
}

// OccValidatorProvider is implemented by engines whose version store can
// answer conflict queries (all six, via mvcc.Snapshots).
type OccValidatorProvider interface {
	OccValidator() OccValidator
}

// occWrite is one buffered write: the key's final row (nil = delete) and
// whether the key was visible in the snapshot when the transaction first
// touched it (which decides Insert vs Update at apply time).
type occWrite struct {
	row     []Value
	existed bool
}

// OccTxn is the optimistic transaction wrapper: it implements Engine so an
// unmodified transaction body runs against it, recording its read set
// (including negative reads and table-level scan marks) and buffering its
// write set. NewOccTxn pins the view; the caller must Close the OccTxn
// after Validate/Apply — the pin is what keeps the validator from pruning
// conflict entries the transaction still needs to see.
type OccTxn struct {
	view   ReadView
	ts     uint64
	name   string
	tables map[string]*Schema
	reads  map[string]map[uint64]struct{}
	scans  map[string]struct{}
	writes map[string]map[uint64]occWrite
	bd     Breakdown
}

// NewOccTxn wraps a pinned view for one optimistic transaction. name is the
// underlying engine's identifier (surfaced by Name and in errors).
func NewOccTxn(view ReadView, name string, schemas []*Schema) *OccTxn {
	t := &OccTxn{
		view:   view,
		ts:     view.Ts(),
		name:   name,
		tables: make(map[string]*Schema, len(schemas)),
		reads:  make(map[string]map[uint64]struct{}),
		scans:  make(map[string]struct{}),
		writes: make(map[string]map[uint64]occWrite),
	}
	for _, sc := range schemas {
		t.tables[sc.Name] = sc
	}
	return t
}

// Ts returns the snapshot timestamp the transaction executed at.
func (t *OccTxn) Ts() uint64 { return t.ts }

// Close releases the pinned view. Idempotent (the view's Close is).
func (t *OccTxn) Close() { t.view.Close() }

// ReadOnly reports whether the transaction buffered no writes.
func (t *OccTxn) ReadOnly() bool { return len(t.writes) == 0 }

// Name returns the underlying engine's identifier.
func (t *OccTxn) Name() string { return t.name }

// Begin fails: the body already runs inside the optimistic transaction.
func (t *OccTxn) Begin() error { return ErrInTxn }

// Commit and Abort fail: the runtime owns the commit protocol.
func (t *OccTxn) Commit() error { return errors.New("core: occ txn commit is owned by the runtime") }
func (t *OccTxn) Abort() error  { return errors.New("core: occ txn abort is owned by the runtime") }

// Flush is a no-op: durability is the runtime's commit-path concern.
func (t *OccTxn) Flush() error { return nil }

// Breakdown returns the wrapper's own (empty) timer set; the real engine's
// breakdown accrues at apply time.
func (t *OccTxn) Breakdown() *Breakdown { return &t.bd }

// Footprint is zero: nothing durable belongs to an unvalidated transaction.
func (t *OccTxn) Footprint() Footprint { return Footprint{} }

// markRead records (table, key) in the read set. Negative reads count: a
// key observed absent must still be absent at commit.
func (t *OccTxn) markRead(table string, key uint64) {
	m, ok := t.reads[table]
	if !ok {
		m = make(map[uint64]struct{})
		t.reads[table] = m
	}
	m[key] = struct{}{}
}

// lookup resolves a key through the write-set overlay, falling back to the
// snapshot, and records the read.
func (t *OccTxn) lookup(table string, key uint64) ([]Value, bool, error) {
	if _, ok := t.tables[table]; !ok {
		return nil, false, ErrKeyNotFound
	}
	t.markRead(table, key)
	if m, ok := t.writes[table]; ok {
		if w, ok := m[key]; ok {
			return w.row, w.row != nil, nil
		}
	}
	return t.view.Get(table, key)
}

// stage buffers the key's final row (nil = delete), capturing snapshot
// existence on the key's first write.
func (t *OccTxn) stage(table string, key uint64, row []Value) {
	m, ok := t.writes[table]
	if !ok {
		m = make(map[uint64]occWrite)
		t.writes[table] = m
	}
	if w, ok := m[key]; ok {
		m[key] = occWrite{row: row, existed: w.existed}
		return
	}
	_, existed, _ := t.view.Get(table, key)
	m[key] = occWrite{row: row, existed: existed}
}

// Insert buffers a new tuple, enforcing the engine's uniqueness contract
// against the overlaid snapshot.
func (t *OccTxn) Insert(table string, key uint64, row []Value) error {
	_, ok, err := t.lookup(table, key)
	if err != nil {
		return err
	}
	if ok {
		return ErrKeyExists
	}
	t.stage(table, key, CloneRow(row))
	return nil
}

// Update buffers a partial modification of an existing tuple.
func (t *OccTxn) Update(table string, key uint64, upd Update) error {
	cur, ok, err := t.lookup(table, key)
	if err != nil {
		return err
	}
	if !ok {
		return ErrKeyNotFound
	}
	row := CloneRow(cur)
	ApplyDelta(row, upd)
	t.stage(table, key, row)
	return nil
}

// Delete buffers a tuple removal.
func (t *OccTxn) Delete(table string, key uint64) error {
	_, ok, err := t.lookup(table, key)
	if err != nil {
		return err
	}
	if !ok {
		return ErrKeyNotFound
	}
	t.stage(table, key, nil)
	return nil
}

// Get reads through the overlay (read-your-writes) and records the read.
func (t *OccTxn) Get(table string, key uint64) ([]Value, bool, error) {
	return t.lookup(table, key)
}

// ScanRange iterates the snapshot merged with the transaction's own writes.
// The scan is recorded as a table-level read: validation conservatively
// conflicts with any later commit to the table (phantom protection at table
// granularity — see DESIGN.md §12).
func (t *OccTxn) ScanRange(table string, from, to uint64, fn func(pk uint64, row []Value) bool) error {
	if _, ok := t.tables[table]; !ok {
		return ErrKeyNotFound
	}
	t.scans[table] = struct{}{}
	merged := make(map[uint64][]Value)
	if err := t.view.ScanRange(table, from, to, func(pk uint64, row []Value) bool {
		merged[pk] = row
		return true
	}); err != nil {
		return err
	}
	for key, w := range t.writes[table] {
		if key < from || key >= to {
			continue
		}
		if w.row == nil {
			delete(merged, key)
		} else {
			merged[key] = w.row
		}
	}
	keys := make([]uint64, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if !fn(k, merged[k]) {
			return nil
		}
	}
	return nil
}

// ScanSecondary iterates the snapshot's index membership merged with the
// transaction's own writes, recording a table-level scan mark.
func (t *OccTxn) ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error {
	sc, ok := t.tables[table]
	if !ok {
		return ErrKeyNotFound
	}
	var spec *IndexSpec
	for i := range sc.Secondary {
		if sc.Secondary[i].Name == index {
			spec = &sc.Secondary[i]
			break
		}
	}
	if spec == nil {
		return ErrKeyNotFound
	}
	t.scans[table] = struct{}{}
	members := make(map[uint64]struct{})
	if err := t.view.ScanSecondary(table, index, sec, func(pk uint64) bool {
		members[pk] = struct{}{}
		return true
	}); err != nil {
		return err
	}
	for key, w := range t.writes[table] {
		if w.row != nil && spec.SecKey(w.row) == sec {
			members[key] = struct{}{}
		} else {
			delete(members, key)
		}
	}
	pks := make([]uint64, 0, len(members))
	for k := range members {
		pks = append(pks, k)
	}
	sort.Slice(pks, func(i, j int) bool { return pks[i] < pks[j] })
	for _, pk := range pks {
		if !fn(pk) {
			return nil
		}
	}
	return nil
}

// Validate applies the first-committer-wins rule at the commit point: every
// key in the read set (the write set is a subset — every write first read
// its key) and every scanned table must be untouched since the snapshot.
// The caller must hold the partition's serialization point and must not have
// Closed the transaction yet.
func (t *OccTxn) Validate(v OccValidator) error {
	for table, keys := range t.reads {
		for key := range keys {
			if ts := v.LatestKeyTs(table, key); ts > t.ts {
				return fmt.Errorf("%w: %s/%d written at ts %d after snapshot %d",
					ErrConflict, table, key, ts, t.ts)
			}
		}
	}
	for table := range t.scans {
		if ts := v.LatestTableTs(table); ts > t.ts {
			return fmt.Errorf("%w: scanned table %s written at ts %d after snapshot %d",
				ErrConflict, table, ts, t.ts)
		}
	}
	return nil
}

// Apply replays the validated write set through the real engine as one
// transaction: per key, the snapshot-existence bit and the final row
// collapse the transaction's writes into a single Insert, Update (all
// columns) or Delete. On an op failure the transaction is aborted so the
// engine is clean for the next request; a Commit failure is returned as-is
// (engines unwind their own state on Commit error paths).
func (t *OccTxn) Apply(eng Engine) error {
	if err := eng.Begin(); err != nil {
		return err
	}
	tables := make([]string, 0, len(t.writes))
	for table := range t.writes {
		tables = append(tables, table)
	}
	sort.Strings(tables)
	for _, table := range tables {
		m := t.writes[table]
		keys := make([]uint64, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		sc := t.tables[table]
		for _, key := range keys {
			w := m[key]
			var err error
			switch {
			case !w.existed && w.row == nil:
				continue // inserted and deleted within the transaction
			case !w.existed:
				err = eng.Insert(table, key, w.row)
			case w.row == nil:
				err = eng.Delete(table, key)
			default:
				upd := Update{Cols: make([]int, len(sc.Columns)), Vals: w.row}
				for i := range upd.Cols {
					upd.Cols[i] = i
				}
				err = eng.Update(table, key, upd)
			}
			if err != nil {
				if aerr := eng.Abort(); aerr != nil {
					return Corrupt(errors.Join(err, aerr))
				}
				return err
			}
		}
	}
	return eng.Commit()
}

var _ Engine = (*OccTxn)(nil)
