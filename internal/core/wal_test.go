package core

import (
	"testing"

	"nstore/internal/nvm"
	"nstore/internal/pmfs"
)

func newWalFS(t testing.TB) (*nvm.Device, *pmfs.FS) {
	t.Helper()
	dev := nvm.NewDevice(nvm.DefaultConfig(32 << 20))
	return dev, pmfs.Format(dev, 0, 32<<20, pmfs.Config{ExtentSize: 64 << 10})
}

func TestWalReplayCommittedOnly(t *testing.T) {
	_, fs := newWalFS(t)
	w, err := NewFsWAL(fs, "wal", 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(WalRecord{Type: WalInsert, TxnID: 1, Table: 0, Key: 10, After: []byte("a")})
	w.TxnCommitted(1)
	w.Append(WalRecord{Type: WalInsert, TxnID: 2, Table: 0, Key: 20, After: []byte("b")})
	// txn 2 never commits.
	w.Flush()

	var keys []uint64
	maxTxn, err := w.Replay(0, func(r WalRecord) error {
		keys = append(keys, r.Key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != 10 {
		t.Fatalf("replayed %v, want [10]", keys)
	}
	if maxTxn != 2 {
		t.Fatalf("maxTxn = %d, want 2 (in-flight txns count too)", maxTxn)
	}
}

func TestWalGroupCommitBatching(t *testing.T) {
	_, fs := newWalFS(t)
	w, _ := NewFsWAL(fs, "wal", 8)
	for txn := uint64(1); txn <= 7; txn++ {
		w.Append(WalRecord{Type: WalInsert, TxnID: txn, Key: txn})
		w.TxnCommitted(txn)
	}
	if got := w.Stats().Fsyncs; got != 0 {
		t.Errorf("flushed before the group filled: %d fsyncs", got)
	}
	w.Append(WalRecord{Type: WalInsert, TxnID: 8, Key: 8})
	w.TxnCommitted(8)
	st := w.Stats()
	if st.Fsyncs != 1 {
		t.Errorf("Fsyncs = %d after full group", st.Fsyncs)
	}
	if st.Records != 16 || st.Bytes <= 0 {
		t.Errorf("Records = %d (want 16), Bytes = %d (want > 0)", st.Records, st.Bytes)
	}
}

func TestWalDropTail(t *testing.T) {
	_, fs := newWalFS(t)
	w, _ := NewFsWAL(fs, "wal", 100)
	w.Append(WalRecord{Type: WalInsert, TxnID: 1, Key: 1})
	w.TxnCommitted(1)
	mark := w.Mark()
	w.Append(WalRecord{Type: WalInsert, TxnID: 2, Key: 2})
	w.Append(WalRecord{Type: WalUpdate, TxnID: 2, Key: 2})
	w.DropTail(mark) // abort txn 2
	w.Flush()
	var n int
	w.Replay(0, func(r WalRecord) error { n++; return nil })
	if n != 1 {
		t.Fatalf("replayed %d records after DropTail, want 1", n)
	}
}

func TestWalTornTailIgnored(t *testing.T) {
	dev, fs := newWalFS(t)
	w, _ := NewFsWAL(fs, "wal", 1)
	w.Append(WalRecord{Type: WalInsert, TxnID: 1, Key: 1, After: []byte("x")})
	w.TxnCommitted(1)
	// Simulate a torn tail: unsynced growth lost in a crash is handled by
	// pmfs, but a partially valid record must also be tolerated. Append
	// garbage length prefix directly.
	validLen := w.SizeBytes()
	f, _ := fs.OpenFile("wal")
	f.Append([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3})
	f.Sync()
	dev.Crash()
	w2, err := OpenFsWAL(fs, "wal", 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := w2.Replay(0, func(r WalRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records with torn tail", n)
	}
	// Replay truncated the debris; new appends land right after the last
	// valid record instead of beyond the garbage.
	if w2.SizeBytes() != validLen {
		t.Fatalf("log size %d after replay, want debris truncated to %d",
			w2.SizeBytes(), validLen)
	}
}

func TestWalTruncate(t *testing.T) {
	_, fs := newWalFS(t)
	w, _ := NewFsWAL(fs, "wal", 1)
	w.Append(WalRecord{Type: WalInsert, TxnID: 1, Key: 1, After: make([]byte, 500)})
	w.TxnCommitted(1)
	if w.SizeBytes() == 0 {
		t.Fatal("log empty after flush")
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.SizeBytes() != 0 {
		t.Errorf("SizeBytes = %d after truncate", w.SizeBytes())
	}
}

func TestWalBeforeAfterImages(t *testing.T) {
	_, fs := newWalFS(t)
	w, _ := NewFsWAL(fs, "wal", 1)
	w.Append(WalRecord{Type: WalUpdate, TxnID: 3, Table: 2, Key: 77,
		Before: []byte("before image"), After: []byte("after image")})
	w.TxnCommitted(3)
	var got WalRecord
	w.Replay(0, func(r WalRecord) error {
		got = WalRecord{Type: r.Type, TxnID: r.TxnID, Table: r.Table, Key: r.Key,
			Before: append([]byte(nil), r.Before...), After: append([]byte(nil), r.After...)}
		return nil
	})
	if got.Table != 2 || got.Key != 77 ||
		string(got.Before) != "before image" || string(got.After) != "after image" {
		t.Fatalf("record mismatch: %+v", got)
	}
}
