package core

import (
	"runtime"
	"sync"
)

// RecoveryReport summarizes an engine's last recovery pass: how much log or
// metadata it had to process and how wide the fan-out stages actually ran.
// Engines fill it during Open; the testbed and the serving runtime surface
// it per partition through the metrics registry.
type RecoveryReport struct {
	// Records counts the units of recovery work: WAL records replayed,
	// tree pages warmed, allocator chunks classified.
	Records int64
	// Workers is the parallelism the fan-out stages ran with (1 =
	// sequential recovery).
	Workers int
}

// RecoveryReporter is implemented by engines that expose a RecoveryReport
// (all six engines do, via Base).
type RecoveryReporter interface {
	RecoveryReport() RecoveryReport
}

// RecoveryWorkers resolves the Options.RecoveryParallelism knob into an
// actual worker count: explicit values are honored, 0 (the default) picks a
// bounded number of CPUs so a wide fan-out cannot oversubscribe a small
// machine or starve co-recovering partitions.
func RecoveryWorkers(opt int) int {
	if opt > 0 {
		return opt
	}
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParallelShards runs fn(0) .. fn(shards-1) on up to `shards` goroutines and
// returns the first error (by shard order). The intended use is recovery
// fan-out over host-memory state: callers must keep all device access on
// their own goroutine (the nvm.Device data path is single-owner) and hand
// workers only buffers already copied out of the device.
func ParallelShards(shards int, fn func(shard int) error) error {
	if shards <= 1 {
		if shards == 1 {
			return fn(0)
		}
		return nil
	}
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = fn(s)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ParallelChunks splits [0, n) into one contiguous stripe per worker and
// runs fn(worker, lo, hi) concurrently, returning the first error (by stripe
// order). Like ParallelShards, fn must only touch host memory.
func ParallelChunks(workers, n int, fn func(worker, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	return ParallelShards(workers, func(w int) error {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		return fn(w, lo, hi)
	})
}
