package core

import (
	"bytes"
	"testing"
)

// fuzzSchema is the schema all codec fuzzing runs under: int, string, int,
// string covers both field kinds in both orders.
func fuzzSchema() *Schema {
	return &Schema{
		Name: "fz",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "s1", Type: TString, Size: 64},
			{Name: "n", Type: TInt},
			{Name: "s2", Type: TString, Size: 200},
		},
	}
}

// FuzzRowRoundTrip builds a row from fuzzed field values and requires
// EncodeRow/DecodeRow to reproduce it exactly.
func FuzzRowRoundTrip(f *testing.F) {
	f.Add(int64(1), []byte("alice"), int64(-7), []byte("bio"))
	f.Add(int64(0), []byte{}, int64(1<<62), bytes.Repeat([]byte{0xff}, 300))
	f.Add(int64(-1), []byte{0, 1, 2}, int64(42), []byte("x"))
	f.Fuzz(func(t *testing.T, id int64, s1 []byte, n int64, s2 []byte) {
		s := fuzzSchema()
		row := []Value{{I: id}, {S: s1}, {I: n}, {S: s2}}
		enc := EncodeRow(s, row)
		got, err := DecodeRow(s, enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !RowsEqual(s, row, got) {
			t.Fatalf("round trip mismatch: %v -> %v", row, got)
		}
	})
}

// FuzzDecodeRow feeds arbitrary bytes to the row decoder: it must never
// panic, and anything it accepts must re-encode to a decodable image.
func FuzzDecodeRow(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRow(fuzzSchema(), []Value{{I: 9}, {S: []byte("seed")}, {I: -2}, {S: []byte("corpus")}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := fuzzSchema()
		row, err := DecodeRow(s, data)
		if err != nil {
			return
		}
		again, err := DecodeRow(s, EncodeRow(s, row))
		if err != nil {
			t.Fatalf("re-encode of accepted input failed to decode: %v", err)
		}
		if !RowsEqual(s, row, again) {
			t.Fatal("accepted input did not round trip")
		}
	})
}

// FuzzDecodeDelta feeds arbitrary bytes to the delta decoder: no panics,
// and accepted deltas must round trip through EncodeDelta.
func FuzzDecodeDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeDelta(fuzzSchema(), Update{Cols: []int{0, 1}, Vals: []Value{{I: 5}, {S: []byte("v")}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := fuzzSchema()
		upd, err := DecodeDelta(s, data)
		if err != nil {
			return
		}
		again, err := DecodeDelta(s, EncodeDelta(s, upd))
		if err != nil {
			t.Fatalf("re-encode of accepted delta failed to decode: %v", err)
		}
		if len(again.Cols) != len(upd.Cols) {
			t.Fatalf("delta round trip changed arity: %d -> %d", len(upd.Cols), len(again.Cols))
		}
		for j := range upd.Cols {
			if again.Cols[j] != upd.Cols[j] {
				t.Fatal("delta round trip changed columns")
			}
			if s.Columns[upd.Cols[j]].Type == TInt {
				if again.Vals[j].I != upd.Vals[j].I {
					t.Fatal("delta round trip changed int value")
				}
			} else if !bytes.Equal(again.Vals[j].S, upd.Vals[j].S) {
				t.Fatal("delta round trip changed string value")
			}
		}
	})
}

// FuzzWalkRecords feeds arbitrary bytes to the WAL record parser — the
// code that reads crash debris off the durable log — and checks its
// invariants: no panics, the valid prefix never exceeds the input, and
// re-walking the valid prefix yields the identical record sequence.
func FuzzWalkRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		type rec struct {
			typ           uint8
			txn           uint64
			key           uint64
			before, after string
		}
		var first []rec
		valid, err := walkRecords(data, func(r WalRecord) error {
			first = append(first, rec{r.Type, r.TxnID, r.Key, string(r.Before), string(r.After)})
			return nil
		})
		if err != nil {
			t.Fatalf("walkRecords returned an error without a callback error: %v", err)
		}
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		var second []rec
		valid2, _ := walkRecords(data[:valid], func(r WalRecord) error {
			second = append(second, rec{r.Type, r.TxnID, r.Key, string(r.Before), string(r.After)})
			return nil
		})
		if valid2 != valid {
			t.Fatalf("re-walk of valid prefix stopped at %d, want %d", valid2, valid)
		}
		if len(first) != len(second) {
			t.Fatalf("re-walk yielded %d records, want %d", len(second), len(first))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("record %d changed between walks", i)
			}
		}
	})
}
