package core

import (
	"testing"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
)

func newHeapEnv(t testing.TB, nvmMode bool) (*nvm.Device, *pmalloc.Arena, *Heap) {
	t.Helper()
	dev := nvm.NewDevice(nvm.DefaultConfig(64 << 20))
	arena := pmalloc.Format(dev, 0, 64<<20)
	return dev, arena, NewHeap(arena, testSchema(), nvmMode)
}

func TestHeapWriteReadRow(t *testing.T) {
	_, _, h := newHeapEnv(t, false)
	slot := h.AllocSlot(7)
	row := sampleRow()
	h.WriteRow(slot, row)
	h.PersistSlot(slot)
	got := h.ReadRow(slot)
	if !RowsEqual(h.Schema(), got, row) {
		t.Fatalf("row mismatch: %v vs %v", got, row)
	}
	if h.Key(slot) != 7 {
		t.Errorf("Key = %d", h.Key(slot))
	}
	if h.Live() != 1 {
		t.Errorf("Live = %d", h.Live())
	}
}

func TestHeapFreeAndReuse(t *testing.T) {
	_, arena, h := newHeapEnv(t, false)
	var slots []uint64
	for i := uint64(1); i <= 200; i++ {
		s := h.AllocSlot(i)
		h.WriteRow(s, sampleRow())
		h.PersistSlot(s)
		slots = append(slots, s)
	}
	before := arena.Allocated()
	for _, s := range slots {
		h.FreeSlot(s)
	}
	if h.Live() != 0 {
		t.Errorf("Live = %d after freeing all", h.Live())
	}
	// Re-inserting must not grow the arena (slots and var-chunks recycle).
	for i := uint64(1); i <= 200; i++ {
		s := h.AllocSlot(i)
		h.WriteRow(s, sampleRow())
		h.PersistSlot(s)
	}
	if got := arena.Allocated(); got > before {
		t.Errorf("arena grew %d -> %d on reuse", before, got)
	}
}

func TestHeapScan(t *testing.T) {
	_, _, h := newHeapEnv(t, false)
	keys := map[uint64]bool{}
	for i := uint64(1); i <= 150; i++ {
		s := h.AllocSlot(i)
		h.WriteRow(s, sampleRow())
		h.PersistSlot(s)
		keys[i] = true
	}
	n := 0
	h.Scan(func(slot uint64) bool {
		if !keys[h.Key(slot)] {
			t.Fatalf("scan found unknown key %d", h.Key(slot))
		}
		n++
		return true
	})
	if n != 150 {
		t.Errorf("scanned %d slots", n)
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestHeapNVMReopen(t *testing.T) {
	dev, arena, h := newHeapEnv(t, true)
	for i := uint64(1); i <= 100; i++ {
		s := h.AllocSlot(i)
		h.WriteRow(s, sampleRow())
		h.SyncTuple(s)
		h.PersistSlot(s)
	}
	// One allocated-but-never-persisted slot (in-flight insert at crash).
	h.AllocSlot(999)
	arena.SetRoot(1, h.Header())

	dev.Crash()
	arena2, err := pmalloc.Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	h2 := OpenHeap(arena2, testSchema(), arena2.Root(1))
	if h2.Live() != 100 {
		t.Fatalf("Live = %d after reopen, want 100", h2.Live())
	}
	seen := 0
	h2.Scan(func(slot uint64) bool {
		row := h2.ReadRow(slot)
		if !RowsEqual(h2.Schema(), row, sampleRow()) {
			t.Fatalf("row for key %d corrupted", h2.Key(slot))
		}
		seen++
		return true
	})
	if seen != 100 {
		t.Errorf("scanned %d after reopen", seen)
	}
	// The orphaned slot must have been reclaimed: inserting reuses it
	// without growing live count incorrectly.
	s := h2.AllocSlot(555)
	h2.WriteRow(s, sampleRow())
	h2.SyncTuple(s)
	h2.PersistSlot(s)
	if h2.Live() != 101 {
		t.Errorf("Live = %d after one more insert", h2.Live())
	}
}

func TestHeapWriteColReplacesVar(t *testing.T) {
	_, _, h := newHeapEnv(t, false)
	slot := h.AllocSlot(1)
	h.WriteRow(slot, sampleRow())
	oldVar := h.ColVarPtr(slot, 1)
	if oldVar == 0 {
		t.Fatal("no var slot for string column")
	}
	h.FreeVar(oldVar)
	h.WriteCol(slot, 1, StrVal("replacement"))
	if got := h.ReadCol(slot, 1); string(got.S) != "replacement" {
		t.Errorf("ReadCol = %q", got.S)
	}
}

func TestHeapFreeSlotOnly(t *testing.T) {
	_, _, h := newHeapEnv(t, true)
	slot := h.AllocSlot(1)
	h.WriteRow(slot, sampleRow())
	h.SyncTuple(slot)
	h.PersistSlot(slot)
	vp := h.ColVarPtr(slot, 1)
	h.FreeSlotOnly(slot)
	if h.Live() != 0 {
		t.Errorf("Live = %d", h.Live())
	}
	// Var slot intentionally untouched.
	h.FreeVar(vp) // caller cleans up
}
