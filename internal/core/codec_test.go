package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return &Schema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "name", Type: TString, Size: 64},
			{Name: "qty", Type: TInt},
			{Name: "data", Type: TString, Size: 256},
		},
	}
}

func sampleRow() []Value {
	return []Value{IntVal(42), StrVal("alice"), IntVal(-7), BytesVal([]byte{1, 2, 3, 0, 255})}
}

func TestEncodeDecodeRow(t *testing.T) {
	s := testSchema()
	row := sampleRow()
	got, err := DecodeRow(s, EncodeRow(s, row))
	if err != nil {
		t.Fatal(err)
	}
	if !RowsEqual(s, got, row) {
		t.Fatalf("round trip mismatch: %v vs %v", got, row)
	}
}

func TestDecodeRowTruncated(t *testing.T) {
	s := testSchema()
	enc := EncodeRow(s, sampleRow())
	for _, n := range []int{0, 3, 8, 11, len(enc) - 1} {
		if _, err := DecodeRow(s, enc[:n]); err == nil {
			t.Errorf("decode of %d-byte prefix succeeded", n)
		}
	}
}

func TestEmptyStringColumn(t *testing.T) {
	s := testSchema()
	row := []Value{IntVal(1), StrVal(""), IntVal(2), BytesVal(nil)}
	got, err := DecodeRow(s, EncodeRow(s, row))
	if err != nil {
		t.Fatal(err)
	}
	if len(got[1].S) != 0 || len(got[3].S) != 0 {
		t.Errorf("empty strings not preserved: %v", got)
	}
}

func TestEncodeDecodeDelta(t *testing.T) {
	s := testSchema()
	upd := Update{Cols: []int{2, 1}, Vals: []Value{IntVal(100), StrVal("bob")}}
	got, err := DecodeDelta(s, EncodeDelta(s, upd))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != 2 || got.Cols[0] != 2 || got.Vals[0].I != 100 || string(got.Vals[1].S) != "bob" {
		t.Fatalf("delta round trip: %+v", got)
	}
}

func TestApplyDelta(t *testing.T) {
	s := testSchema()
	row := sampleRow()
	ApplyDelta(row, Update{Cols: []int{0, 3}, Vals: []Value{IntVal(9), StrVal("new")}})
	if row[0].I != 9 || string(row[3].S) != "new" || string(row[1].S) != "alice" {
		t.Fatalf("ApplyDelta wrong: %v", row)
	}
	_ = s
}

func TestCloneRowIsDeep(t *testing.T) {
	row := sampleRow()
	cp := CloneRow(row)
	cp[1].S[0] = 'X'
	if row[1].S[0] == 'X' {
		t.Error("CloneRow shares string storage")
	}
}

func TestSecCompositeRoundTrip(t *testing.T) {
	c := SecComposite(0xdead, 0xbeef)
	if SecPK(c) != 0xbeef {
		t.Errorf("SecPK = %#x", SecPK(c))
	}
	lo, hi := SecRange(0xdead)
	if c < lo || c >= hi {
		t.Errorf("composite %#x outside range [%#x, %#x)", c, lo, hi)
	}
	if other := SecComposite(0xdeae, 0); other < hi {
		t.Error("ranges overlap across secondary keys")
	}
}

func TestTreeKeyPacking(t *testing.T) {
	pk := TreePrimary(3, 12345)
	if TreePK(pk) != 12345 {
		t.Errorf("TreePK = %d", TreePK(pk))
	}
	sk := TreeSecondary(3, 1, 777, 888)
	if TreeSecPK(sk) != 888 {
		t.Errorf("TreeSecPK = %d", TreeSecPK(sk))
	}
	lo, hi := TreeSecRange(3, 1, 777)
	if sk < lo || sk >= hi {
		t.Errorf("secondary key outside its range")
	}
	// Primary and secondary key spaces of the same table never collide.
	plo, phi := TreePrimaryRange(3, 0, ^uint64(0)>>8)
	if sk >= plo && sk < phi {
		t.Error("secondary key inside primary range")
	}
	// Different tables never collide.
	if TreePrimary(2, 12345) == pk {
		t.Error("table id not in key")
	}
}

func TestQuickRowCodec(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewSource(9))
	fn := func(a int64, b []byte, c int64, d []byte) bool {
		if len(b) > 1000 {
			b = b[:1000]
		}
		if len(d) > 1000 {
			d = d[:1000]
		}
		row := []Value{IntVal(a), BytesVal(b), IntVal(c), BytesVal(d)}
		got, err := DecodeRow(s, EncodeRow(s, row))
		if err != nil {
			return false
		}
		return got[0].I == a && bytes.Equal(got[1].S, b) &&
			got[2].I == c && bytes.Equal(got[3].S, d)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
