package core

// Options tunes engine behaviour. The zero value selects the paper's
// defaults (§5: 512 B STX B+tree nodes, 4 KB CoW B+tree nodes).
type Options struct {
	// GroupCommitSize is the number of transactions batched per WAL fsync
	// or per CoW directory swap (§3.1, §3.2).
	GroupCommitSize int
	// CheckpointEvery is the number of committed transactions between InP
	// checkpoints (0 = only on Flush).
	CheckpointEvery int
	// BTreeNodeSize is the node size of the STX-style and non-volatile
	// B+trees (default 512, Fig. 15).
	BTreeNodeSize int
	// CowPageSize is the CoW B+tree page size (default 4096, Fig. 15).
	CowPageSize int
	// MemTableCap is the number of MemTable entries that triggers a flush
	// (Log) or an immutable rotation (NVM-Log).
	MemTableCap int
	// LSMGrowth is the LSM tree growth factor k (default 4).
	LSMGrowth int
	// RecoveryParallelism bounds the fan-out of the recovery pipeline's
	// CPU stages (WAL collapse, bloom rebuilds, reachability decode, slot
	// sweeps). 0 picks a bounded number of CPUs (see RecoveryWorkers); 1
	// forces fully sequential recovery, matching the paper's measurement
	// methodology.
	RecoveryParallelism int
	// VlogThreshold is the value size (encoded row bytes) at or above which
	// the Log engines separate the value into the append-only value log,
	// leaving a (segment, offset, len) pointer in the LSM tree. 0 selects
	// the default (512 B); negative disables separation entirely.
	VlogThreshold int
	// VlogSegSize is the value-log segment rotation threshold in bytes
	// (default 1 MiB). A single record larger than this gets a segment of
	// its own.
	VlogSegSize int
	// FlushWorkers selects how the Log engines run their staged
	// flush/compaction pipeline: 0 executes stages inline at the trigger
	// point (deterministic, the conformance default), 1 runs them on a
	// background worker drained by Flush/Close.
	FlushWorkers int
}

// WithDefaults fills unset fields with the paper's defaults.
func (o Options) WithDefaults() Options {
	if o.GroupCommitSize == 0 {
		o.GroupCommitSize = 16
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 50000
	}
	if o.BTreeNodeSize == 0 {
		o.BTreeNodeSize = 512
	}
	if o.CowPageSize == 0 {
		o.CowPageSize = 4096
	}
	if o.MemTableCap == 0 {
		o.MemTableCap = 4096
	}
	if o.LSMGrowth == 0 {
		o.LSMGrowth = 4
	}
	if o.VlogThreshold == 0 {
		o.VlogThreshold = 512
	}
	if o.VlogSegSize == 0 {
		o.VlogSegSize = 1 << 20
	}
	return o
}
