package core

import (
	"sync"
	"sync/atomic"
)

// This file holds the intra-partition MVCC contract: the timestamp oracle
// that orders commits against snapshot reads, and the interfaces a
// versioned engine exposes to the reader pool. The design splits each
// partition into one writer (the serial executor, which owns the engine and
// the device) and many readers (snapshot views that never touch the device
// mutex):
//
//   - every committed-and-durable transaction publishes its versions at a
//     commit timestamp, then advances the oracle's read timestamp;
//   - a reader acquires a view pinned at the current read timestamp and
//     observes exactly the versions with ts <= view.Ts();
//   - the watermark is the minimum timestamp any active view can observe;
//     version GC may only reclaim versions strictly below it.
//
// Timestamps reuse Base.TxnID: it is monotone per partition, unique per
// transaction, and recovery rebuilds it from the WAL txn floor — so a
// freshly recovered engine's oracle starts exactly at the durable frontier
// and snapshots are never served from unrecovered state.

// TsOracle is a per-partition timestamp oracle. The single writer advances
// the read timestamp after each durable commit; any goroutine may register
// a read view. The zero value is ready to use at timestamp 0.
type TsOracle struct {
	readTs atomic.Uint64

	mu     sync.Mutex
	active map[uint64]int // view ts -> number of active views pinned there
}

// ReadTs returns the newest timestamp visible to a fresh view.
func (o *TsOracle) ReadTs() uint64 { return o.readTs.Load() }

// Advance publishes ts as the newest readable timestamp. Calls must be
// monotone; a stale ts is ignored so recovery floors and commit publishes
// can race benignly.
func (o *TsOracle) Advance(ts uint64) {
	for {
		cur := o.readTs.Load()
		if ts <= cur || o.readTs.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// Acquire pins a view at the current read timestamp and returns it. The
// caller must pair it with Release, or the watermark stops advancing.
func (o *TsOracle) Acquire() uint64 {
	o.mu.Lock()
	// Read the timestamp under the mutex so Watermark, which also holds it,
	// can never compute a watermark above a view it did not see.
	ts := o.readTs.Load()
	if o.active == nil {
		o.active = make(map[uint64]int)
	}
	o.active[ts]++
	o.mu.Unlock()
	return ts
}

// Release unpins a view acquired at ts.
func (o *TsOracle) Release(ts uint64) {
	o.mu.Lock()
	if n, ok := o.active[ts]; ok {
		if n <= 1 {
			delete(o.active, ts)
		} else {
			o.active[ts] = n - 1
		}
	}
	o.mu.Unlock()
}

// Watermark returns the oldest timestamp any active or future view can
// observe: the minimum pinned view timestamp, or the current read timestamp
// when no view is active. GC may reclaim superseded versions strictly below
// the watermark and nothing else.
func (o *TsOracle) Watermark() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	wm := o.readTs.Load()
	for ts := range o.active {
		if ts < wm {
			wm = ts
		}
	}
	return wm
}

// ActiveViews returns the number of currently pinned views (for metrics).
func (o *TsOracle) ActiveViews() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, c := range o.active {
		n += c
	}
	return n
}

// ReadView is a pinned, immutable snapshot of one partition. All methods
// are safe to call from any goroutine, concurrently with the partition's
// executor: a view never takes the engine or device mutex. Close releases
// the view's watermark pin; using a view after Close is a bug (GC may have
// reclaimed its versions).
type ReadView interface {
	// Ts returns the snapshot timestamp: the view observes exactly the
	// committed-and-durable state as of this timestamp.
	Ts() uint64
	// Get returns the tuple visible at the snapshot, like Engine.Get.
	Get(table string, key uint64) ([]Value, bool, error)
	// ScanRange iterates the snapshot like Engine.ScanRange.
	ScanRange(table string, from, to uint64, fn func(pk uint64, row []Value) bool) error
	// ScanSecondary iterates the snapshot like Engine.ScanSecondary.
	ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error
	// Close releases the view.
	Close()
}

// SnapshotReader is implemented by engines that serve lock-free MVCC
// snapshot reads alongside their single-owner write path.
type SnapshotReader interface {
	// SnapshotView pins a view at the engine's newest durable timestamp.
	SnapshotView() ReadView
	// Oracle exposes the engine's timestamp oracle (watermark, metrics).
	Oracle() *TsOracle
}
