package core

// FlushStats is a snapshot of a Log engine's staged flush/compaction
// pipeline and value-log counters, exposed to the metrics registry the way
// WalStats is.
type FlushStats struct {
	// Completed pipeline tasks by kind.
	Flushes     int64
	Compactions int64
	GCRuns      int64
	// Failed tasks (build/install errors surfaced to the caller; the
	// frozen memtable and its WAL segment stay retained for retry).
	Failures int64
	// Cumulative wall time per stage across all tasks.
	PrepareNs int64
	BuildNs   int64
	InstallNs int64
	ReleaseNs int64
	// Value-log state.
	VlogSegments  int64
	VlogBytes     int64 // valid record bytes across live segments
	VlogDiscard   int64 // bytes currently estimated dead
	VlogReclaimed int64 // cumulative bytes freed by GC segment removal
}

// VlogSpaceAmp estimates the value log's space amplification: live segment
// bytes over the bytes not yet known dead. 1.0 means no amplification.
func (s FlushStats) VlogSpaceAmp() float64 {
	live := s.VlogBytes - s.VlogDiscard
	if live <= 0 {
		if s.VlogBytes == 0 {
			return 1
		}
		return float64(s.VlogBytes)
	}
	return float64(s.VlogBytes) / float64(live)
}

// FlushStatser is implemented by engines with a staged flush pipeline
// (log, nvm-log).
type FlushStatser interface {
	FlushStats() FlushStats
}
