package core

import (
	"fmt"

	"nstore/internal/nvm"
	"nstore/internal/pmalloc"
)

// Heap is the slotted table storage of §3.1: fixed-size tuple slots grouped
// into blocks, with fields larger than 8 bytes stored in separate
// variable-length slots referenced by an 8-byte pointer. A heap runs in one
// of two modes:
//
//   - volatile (InP, Log): no sync primitives; the heap is rebuilt from the
//     checkpoint/WAL during recovery.
//   - NVM mode (NVM-InP): slot state transitions are synced, the block list
//     is a durable linked list anchored at a header chunk, and the heap can
//     be reopened immediately after a crash (OpenHeap).
//
// Slot layout: state byte (+7 pad), primary key u64, then 8 bytes per
// column (inline int, or pointer to a var-slot holding u32 length + bytes).
type Heap struct {
	arena  *pmalloc.Arena
	dev    *nvm.Device
	schema *Schema
	nvmMod bool

	slotSize int
	perBlock int
	hdr      pmalloc.Ptr // NVM mode: durable chunk holding the block-list head

	blocks []uint64 // volatile mirror of the block list
	free   []uint64 // volatile free-slot pointers
	live   int
}

// Slot states within a heap block.
const (
	SlotFree      uint8 = 0
	SlotAllocated uint8 = 1 // allocated, tuple not yet persisted
	SlotPersisted uint8 = 2 // live (traditional engines use this directly)
)

const (
	slotState = 0
	slotKey   = 8
	slotData  = 16

	blockNext       = 0
	blockHdr        = 16
	defaultPerBlock = 64
)

// NewHeap creates an empty heap. In NVM mode the block list is durably
// anchored; store Header() in an engine root to reopen after a crash.
func NewHeap(arena *pmalloc.Arena, schema *Schema, nvmMode bool) *Heap {
	h := &Heap{
		arena:    arena,
		dev:      arena.Device(),
		schema:   schema,
		nvmMod:   nvmMode,
		slotSize: slotData + schema.FixedSize(),
		perBlock: defaultPerBlock,
	}
	if nvmMode {
		hdr, err := arena.Alloc(16, pmalloc.TagTable)
		if err != nil {
			panic(err)
		}
		h.hdr = hdr
		h.dev.WriteU64(int64(hdr), 0)
		h.dev.Sync(int64(hdr), 8)
		arena.SetPersisted(hdr)
	}
	return h
}

// OpenHeap reopens an NVM-mode heap after a crash: it walks the durable
// block list, rebuilds the free list, treats persisted slots as live, and
// reclaims slots that were allocated but never persisted and are not
// covered by a WAL entry (the caller must run WAL undo first).
func OpenHeap(arena *pmalloc.Arena, schema *Schema, hdr pmalloc.Ptr) *Heap {
	h := &Heap{
		arena:    arena,
		dev:      arena.Device(),
		schema:   schema,
		nvmMod:   true,
		slotSize: slotData + schema.FixedSize(),
		perBlock: defaultPerBlock,
		hdr:      hdr,
	}
	for b := h.dev.ReadU64(int64(hdr)); b != 0; b = h.dev.ReadU64(int64(b) + blockNext) {
		h.blocks = append(h.blocks, b)
		for i := 0; i < h.perBlock; i++ {
			slot := h.slotAt(b, i)
			switch h.dev.ReadU8(int64(slot) + slotState) {
			case SlotPersisted:
				h.live++
			case SlotAllocated:
				// Orphaned by a crash before its WAL entry was persisted;
				// its var-slots were never persisted either, so the
				// allocator's recovery scan already reclaimed them.
				h.dev.WriteU8(int64(slot)+slotState, SlotFree)
				h.dev.Sync(int64(slot)+slotState, 1)
				h.free = append(h.free, slot)
			default:
				h.free = append(h.free, slot)
			}
		}
	}
	return h
}

// Header returns the durable anchor of an NVM-mode heap.
func (h *Heap) Header() pmalloc.Ptr { return h.hdr }

// Live returns the number of live (persisted-state) slots.
func (h *Heap) Live() int { return h.live }

// Schema returns the table schema.
func (h *Heap) Schema() *Schema { return h.schema }

func (h *Heap) slotAt(block uint64, i int) uint64 {
	return block + blockHdr + uint64(i*h.slotSize)
}

func (h *Heap) newBlock() {
	size := blockHdr + h.perBlock*h.slotSize
	b, err := h.arena.Alloc(size, pmalloc.TagTable)
	if err != nil {
		panic(err)
	}
	// Zero slot states.
	for i := 0; i < h.perBlock; i++ {
		h.dev.WriteU8(int64(h.slotAt(b, i))+slotState, SlotFree)
	}
	if h.nvmMod {
		head := h.dev.ReadU64(int64(h.hdr))
		h.dev.WriteU64(int64(b)+blockNext, head)
		h.dev.Sync(int64(b), int(size))
		h.arena.SetPersisted(b)
		h.dev.WriteU64Durable(int64(h.hdr), b)
	} else {
		h.dev.WriteU64(int64(b)+blockNext, 0)
	}
	h.blocks = append(h.blocks, b)
	for i := h.perBlock - 1; i >= 0; i-- {
		h.free = append(h.free, h.slotAt(b, i))
	}
}

// AllocSlot grabs a free slot for the given primary key and marks it
// SlotAllocated (durably in NVM mode). The tuple contents are garbage until
// written.
func (h *Heap) AllocSlot(key uint64) uint64 {
	if len(h.free) == 0 {
		h.newBlock()
	}
	slot := h.free[len(h.free)-1]
	h.free = h.free[:len(h.free)-1]
	h.dev.WriteU64(int64(slot)+slotKey, key)
	h.dev.WriteU8(int64(slot)+slotState, SlotAllocated)
	if h.nvmMod {
		h.dev.Sync(int64(slot), slotData)
	}
	return slot
}

// Key returns the primary key stored in the slot.
func (h *Heap) Key(slot uint64) uint64 { return h.dev.ReadU64(int64(slot) + slotKey) }

// State returns the slot's durability state.
func (h *Heap) State(slot uint64) uint8 { return h.dev.ReadU8(int64(slot) + slotState) }

// WriteRow stores a full row into the slot, allocating var-slots for string
// columns. Contents are volatile until SyncTuple.
func (h *Heap) WriteRow(slot uint64, row []Value) {
	for i := range h.schema.Columns {
		h.WriteCol(slot, i, row[i])
	}
}

// WriteCol stores one column value. For string columns a fresh var-slot is
// allocated; the caller owns freeing any previous var-slot (FreeVar /
// ColVarPtr).
func (h *Heap) WriteCol(slot uint64, col int, v Value) {
	field := int64(slot) + slotData + int64(col*8)
	if h.schema.Columns[col].Type == TInt {
		h.dev.WriteU64(field, uint64(v.I))
		return
	}
	vp, err := h.arena.Alloc(4+len(v.S), pmalloc.TagTable)
	if err != nil {
		panic(err)
	}
	h.dev.WriteU32(int64(vp), uint32(len(v.S)))
	h.dev.Write(int64(vp)+4, v.S)
	if h.nvmMod {
		h.dev.Sync(int64(vp), 4+len(v.S))
	}
	h.dev.WriteU64(field, vp)
}

// ColVarPtr returns the var-slot pointer of a string column (0 if unset).
func (h *Heap) ColVarPtr(slot uint64, col int) uint64 {
	if h.schema.Columns[col].Type != TString {
		return 0
	}
	return h.dev.ReadU64(int64(slot) + slotData + int64(col*8))
}

// ReadCol reads one column value.
func (h *Heap) ReadCol(slot uint64, col int) Value {
	field := int64(slot) + slotData + int64(col*8)
	if h.schema.Columns[col].Type == TInt {
		return Value{I: int64(h.dev.ReadU64(field))}
	}
	vp := h.dev.ReadU64(field)
	if vp == 0 {
		return Value{}
	}
	ln := int(h.dev.ReadU32(int64(vp)))
	b := make([]byte, ln)
	h.dev.Read(int64(vp)+4, b)
	return Value{S: b}
}

// ReadRow reads the full row from a slot.
func (h *Heap) ReadRow(slot uint64) []Value {
	row := make([]Value, len(h.schema.Columns))
	for i := range row {
		row[i] = h.ReadCol(slot, i)
	}
	return row
}

// SyncTuple flushes the slot's fixed part (var-slot contents are synced as
// they are written in NVM mode). Part of Table 2's "Sync tuple with NVM".
func (h *Heap) SyncTuple(slot uint64) {
	h.dev.Sync(int64(slot), h.slotSize)
}

// PersistSlot durably transitions the slot (and its var-slots) to the
// persisted state. In NVM mode this is the point after which the tuple
// survives recovery.
func (h *Heap) PersistSlot(slot uint64) {
	if h.nvmMod {
		for i, c := range h.schema.Columns {
			if c.Type == TString {
				if vp := h.ColVarPtr(slot, i); vp != 0 &&
					h.arena.StateOf(vp) == pmalloc.StateAllocated {
					h.arena.SetPersisted(vp)
				}
			}
		}
	}
	if h.State(slot) == SlotPersisted {
		return // re-persist of an already-live tuple (update path)
	}
	h.dev.WriteU8(int64(slot)+slotState, SlotPersisted)
	if h.nvmMod {
		h.dev.Sync(int64(slot)+slotState, 1)
	}
	h.live++
}

// FreeVar releases one var-slot chunk if it is still live.
func (h *Heap) FreeVar(vp uint64) {
	if vp == 0 {
		return
	}
	if h.arena.StateOf(vp) != pmalloc.StateFree {
		h.arena.Free(vp)
	}
}

// FreeSlot releases the slot and all its var-slots.
func (h *Heap) FreeSlot(slot uint64) {
	if h.State(slot) == SlotPersisted {
		h.live--
	}
	for i, c := range h.schema.Columns {
		if c.Type == TString {
			h.FreeVar(h.ColVarPtr(slot, i))
		}
	}
	h.dev.WriteU8(int64(slot)+slotState, SlotFree)
	if h.nvmMod {
		h.dev.Sync(int64(slot)+slotState, 1)
	}
	h.free = append(h.free, slot)
}

// FreeSlotOnly releases the slot without touching var-slots (used by undo
// paths that handle var-slots themselves).
func (h *Heap) FreeSlotOnly(slot uint64) {
	if h.State(slot) == SlotPersisted {
		h.live--
	}
	h.dev.WriteU8(int64(slot)+slotState, SlotFree)
	if h.nvmMod {
		h.dev.Sync(int64(slot)+slotState, 1)
	}
	h.free = append(h.free, slot)
}

// Scan calls fn for every live slot.
func (h *Heap) Scan(fn func(slot uint64) bool) {
	for _, b := range h.blocks {
		for i := 0; i < h.perBlock; i++ {
			slot := h.slotAt(b, i)
			if h.State(slot) == SlotPersisted {
				if !fn(slot) {
					return
				}
			}
		}
	}
}

// Validate checks internal consistency (test helper).
func (h *Heap) Validate() error {
	n := 0
	h.Scan(func(uint64) bool { n++; return true })
	if n != h.live {
		return fmt.Errorf("core: live count %d != scanned %d", h.live, n)
	}
	return nil
}
