package core

import "encoding/binary"

// VlogPtr locates a separated value inside the engine's value log: segment
// id, byte offset of the record inside the segment, and the value length
// (§ WiscKey-style key/value separation — the LSM tree carries pointers,
// the value log carries the bytes). The zero value is not a valid pointer:
// segment ids start at 1.
type VlogPtr struct {
	Seg uint32
	Off uint32
	Len uint32
}

// VlogPtrSize is the encoded size of a VlogPtr.
const VlogPtrSize = 12

// Encode appends the 12-byte little-endian wire form to dst.
func (p VlogPtr) Encode(dst []byte) []byte {
	var b [VlogPtrSize]byte
	binary.LittleEndian.PutUint32(b[0:], p.Seg)
	binary.LittleEndian.PutUint32(b[4:], p.Off)
	binary.LittleEndian.PutUint32(b[8:], p.Len)
	return append(dst, b[:]...)
}

// DecodeVlogPtr parses a pointer previously written by Encode.
func DecodeVlogPtr(b []byte) (VlogPtr, bool) {
	if len(b) < VlogPtrSize {
		return VlogPtr{}, false
	}
	return VlogPtr{
		Seg: binary.LittleEndian.Uint32(b[0:]),
		Off: binary.LittleEndian.Uint32(b[4:]),
		Len: binary.LittleEndian.Uint32(b[8:]),
	}, true
}
