package core

import (
	"encoding/binary"
	"fmt"
)

// Inline tuple encoding: every field inlined, variable-length fields
// prefixed with their length. This is the "HDD/SSD-optimized format where
// all the tuple's fields are inlined" (§3.2) used by the CoW engine's tree,
// SSTables, checkpoints, and WAL before/after images.

// EncodeRow serializes a full row in inline format.
func EncodeRow(s *Schema, row []Value) []byte {
	n := 0
	for i, c := range s.Columns {
		if c.Type == TInt {
			n += 8
		} else {
			n += 4 + len(row[i].S)
		}
	}
	out := make([]byte, 0, n)
	for i, c := range s.Columns {
		if c.Type == TInt {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(row[i].I))
			out = append(out, b[:]...)
		} else {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(len(row[i].S)))
			out = append(out, b[:]...)
			out = append(out, row[i].S...)
		}
	}
	return out
}

// DecodeRow parses an inline-format row.
func DecodeRow(s *Schema, b []byte) ([]Value, error) {
	row := make([]Value, len(s.Columns))
	off := 0
	for i, c := range s.Columns {
		if c.Type == TInt {
			if off+8 > len(b) {
				return nil, fmt.Errorf("core: truncated int column %d", i)
			}
			row[i].I = int64(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		} else {
			if off+4 > len(b) {
				return nil, fmt.Errorf("core: truncated string header %d", i)
			}
			ln := int(binary.LittleEndian.Uint32(b[off:]))
			off += 4
			if off+ln > len(b) {
				return nil, fmt.Errorf("core: truncated string column %d", i)
			}
			row[i].S = append([]byte(nil), b[off:off+ln]...)
			off += ln
		}
	}
	return row, nil
}

// Delta encoding: a bitmask-free compact form listing (column, value) pairs,
// used for WAL update images and log-structured update entries.

// EncodeDelta serializes a partial update.
func EncodeDelta(s *Schema, upd Update) []byte {
	out := []byte{byte(len(upd.Cols))}
	for j, ci := range upd.Cols {
		out = append(out, byte(ci))
		c := s.Columns[ci]
		if c.Type == TInt {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(upd.Vals[j].I))
			out = append(out, b[:]...)
		} else {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(len(upd.Vals[j].S)))
			out = append(out, b[:]...)
			out = append(out, upd.Vals[j].S...)
		}
	}
	return out
}

// DecodeDelta parses a partial update.
func DecodeDelta(s *Schema, b []byte) (Update, error) {
	var upd Update
	if len(b) < 1 {
		return upd, fmt.Errorf("core: empty delta")
	}
	n := int(b[0])
	off := 1
	for j := 0; j < n; j++ {
		if off >= len(b) {
			return upd, fmt.Errorf("core: truncated delta entry %d", j)
		}
		ci := int(b[off])
		off++
		if ci >= len(s.Columns) {
			return upd, fmt.Errorf("core: delta column %d out of range", ci)
		}
		var v Value
		if s.Columns[ci].Type == TInt {
			if off+8 > len(b) {
				return upd, fmt.Errorf("core: truncated delta int")
			}
			v.I = int64(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		} else {
			if off+4 > len(b) {
				return upd, fmt.Errorf("core: truncated delta header")
			}
			ln := int(binary.LittleEndian.Uint32(b[off:]))
			off += 4
			if off+ln > len(b) {
				return upd, fmt.Errorf("core: truncated delta string")
			}
			v.S = append([]byte(nil), b[off:off+ln]...)
			off += ln
		}
		upd.Cols = append(upd.Cols, ci)
		upd.Vals = append(upd.Vals, v)
	}
	return upd, nil
}

// ApplyDelta overwrites the updated columns of row in place.
func ApplyDelta(row []Value, upd Update) {
	for j, ci := range upd.Cols {
		row[ci] = upd.Vals[j]
	}
}

// CloneRow deep-copies a row.
func CloneRow(row []Value) []Value {
	out := make([]Value, len(row))
	for i, v := range row {
		out[i].I = v.I
		if v.S != nil {
			out[i].S = append([]byte(nil), v.S...)
		}
	}
	return out
}

// RowsEqual reports whether two rows match under the schema.
func RowsEqual(s *Schema, a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i, c := range s.Columns {
		if c.Type == TInt {
			if a[i].I != b[i].I {
				return false
			}
		} else if string(a[i].S) != string(b[i].S) {
			return false
		}
	}
	return true
}

// Composite secondary-index keys: a 32-bit secondary key and a 32-bit
// primary key packed into one unique uint64, so duplicate secondary keys
// coexist and equal-secondary lookups become range scans.

// SecComposite packs (sec, pk) into a composite index key.
func SecComposite(sec uint32, pk uint64) uint64 {
	return uint64(sec)<<32 | (pk & 0xffffffff)
}

// SecRange returns the composite-key range [lo, hi) covering all entries
// with the given secondary key.
func SecRange(sec uint32) (lo, hi uint64) {
	return uint64(sec) << 32, (uint64(sec) + 1) << 32
}

// SecPK extracts the primary key from a composite key.
func SecPK(composite uint64) uint64 { return composite & 0xffffffff }

// Packed tree keys for the CoW engines, which keep every table and index of
// a partition in one copy-on-write B+tree so a transaction's changes across
// tables commit atomically under a single master record (§3.2); the log
// engines reuse the same packing for their index trees. Layout:
// [63:59] table, [58:56] index+1 (0 = primary), then the payload:
// primary keys get 56 bits; secondary entries pack a 32-bit secondary key
// and a 24-bit primary key. The 5-bit table field holds 32 tables — 2PC
// augmentation (txn2pc.AugmentSchemas) shadows every user table with a
// lock table, which overflowed the original 4-bit field on TPC-C and
// silently aliased distinct tables' keys; ValidatePacked makes any future
// overflow a typed open-time error instead.

// MaxPackedTables is the table capacity of the packed tree-key layout.
const MaxPackedTables = 32

// MaxPackedIndexes is the per-table secondary-index capacity of the packed
// layout (index+1 must fit in 3 bits).
const MaxPackedIndexes = 7

// ValidatePacked rejects schema sets that overflow the packed tree-key
// budget. Engines that store a partition in one packed-key tree call this
// at construction: overflowing the field widths would not fail — it would
// alias different tables' keys onto each other.
func ValidatePacked(schemas []*Schema) error {
	if len(schemas) > MaxPackedTables {
		return fmt.Errorf("core: %d tables exceed the packed tree-key budget of %d", len(schemas), MaxPackedTables)
	}
	for _, s := range schemas {
		if len(s.Secondary) > MaxPackedIndexes {
			return fmt.Errorf("core: table %s: %d secondary indexes exceed the packed tree-key budget of %d", s.Name, len(s.Secondary), MaxPackedIndexes)
		}
	}
	return nil
}

// TreePrimary builds the tree key of a primary tuple.
func TreePrimary(table int, pk uint64) uint64 {
	return uint64(table)<<59 | pk&0x00ffffffffffffff
}

// TreeSecondary builds the tree key of a secondary-index entry. Primary
// keys of secondary-indexed tables must fit in 24 bits.
func TreeSecondary(table, index int, sec uint32, pk uint64) uint64 {
	return uint64(table)<<59 | uint64(index+1)<<56 | uint64(sec)<<24 | pk&0xffffff
}

// TreeSecRange returns the key range covering one secondary key's entries.
func TreeSecRange(table, index int, sec uint32) (lo, hi uint64) {
	base := uint64(table)<<59 | uint64(index+1)<<56
	return base | uint64(sec)<<24, base | (uint64(sec)+1)<<24
}

// TreePrimaryRange returns the key range covering a table's primary tuples
// with pk in [from, to).
func TreePrimaryRange(table int, from, to uint64) (lo, hi uint64) {
	return TreePrimary(table, from), TreePrimary(table, to)
}

// TreeTable extracts the table id from any packed tree key (primary or
// secondary). Always use this rather than shifting by hand: the field
// widths are layout-private and have changed once already.
func TreeTable(k uint64) int { return int(k >> 59) }

// TreeSecPK extracts the 24-bit primary key from a secondary tree key.
func TreeSecPK(k uint64) uint64 { return k & 0xffffff }

// TreePK extracts the primary key from a primary tree key.
func TreePK(k uint64) uint64 { return k & 0x00ffffffffffffff }
