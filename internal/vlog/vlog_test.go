package vlog

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"nstore/internal/core"
	"nstore/internal/pmalloc"
)

func testFS(t *testing.T) *FSBackend {
	t.Helper()
	env := core.NewEnv(core.EnvConfig{DeviceSize: 64 << 20, FSExtent: 64 << 10})
	return NewFSBackend(env.FS, "vlog-")
}

func val(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestAppendReadRoundtrip(t *testing.T) {
	m, err := Open(testFS(t), Config{SegSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		key uint64
		v   []byte
		ptr core.VlogPtr
	}
	rng := rand.New(rand.NewSource(1))
	var recs []rec
	for i := 0; i < 200; i++ {
		k := uint64(i)
		v := val(64+rng.Intn(2000), byte(i))
		ptr, err := m.Append(k, v)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec{k, v, ptr})
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation across segments, got %d", st.Segments)
	}
	for _, r := range recs {
		got, err := m.Read(r.ptr, r.key)
		if err != nil {
			t.Fatalf("Read(%v): %v", r.ptr, err)
		}
		if !bytes.Equal(got, r.v) {
			t.Fatalf("Read(%v): wrong value", r.ptr)
		}
	}
	// Wrong key for a valid pointer must be a typed corrupt error.
	if _, err := m.Read(recs[0].ptr, recs[0].key+1); !core.IsCorrupt(err) {
		t.Fatalf("wrong-key read: got %v, want corrupt", err)
	}
}

func TestOversizeRecordGetsOwnSegment(t *testing.T) {
	m, err := Open(testFS(t), Config{SegSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	big := val(1<<12, 0xAB)
	ptr, err := m.Append(7, big)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(ptr, 7)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("oversize read: %v", err)
	}
}

func TestReopenRecoversValidPrefix(t *testing.T) {
	b := testFS(t)
	m, err := Open(b, Config{SegSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := m.Append(1, val(100, 1))
	p2, _ := m.Append(2, val(100, 2))
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	head := m.HeadMark()
	// Unsynced garbage past the head: an aborted append's debris.
	si := m.segs[m.active]
	if _, err := si.seg.WriteAt([]byte("torn-write-debris"), si.size); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(b, Config{SegSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.RestrictToHead(head); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		ptr core.VlogPtr
		key uint64
		fb  byte
	}{{p1, 1, 1}, {p2, 2, 2}} {
		got, err := m2.Read(c.ptr, c.key)
		if err != nil || !bytes.Equal(got, val(100, c.fb)) {
			t.Fatalf("post-reopen read key %d: %v", c.key, err)
		}
	}
	if got := m2.HeadMark(); got != head {
		t.Fatalf("head after reopen = %+v, want %+v", got, head)
	}
}

func TestRestrictToHeadDropsLaterSegments(t *testing.T) {
	b := testFS(t)
	m, err := Open(b, Config{SegSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := m.Append(1, val(512, 1))
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	head := m.HeadMark()
	// Appends past the checkpoint rotate into new segments; a crash before
	// the next manifest commit must drop them all.
	for i := uint64(2); i < 8; i++ {
		if _, err := m.Append(i, val(512, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(b, Config{SegSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.RestrictToHead(head); err != nil {
		t.Fatal(err)
	}
	if st := m2.Stats(); st.Segments != 1 {
		t.Fatalf("segments after restrict = %d, want 1", st.Segments)
	}
	if _, err := m2.Read(p1, 1); err != nil {
		t.Fatalf("checkpointed record lost: %v", err)
	}
	// New appends after the restrict must not collide with removed ids'
	// durable debris: ids are never reused below the head segment.
	p3, err := m2.Append(9, val(512, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, err := m2.Read(p3, 9); err != nil || !bytes.Equal(got, val(512, 9)) {
		t.Fatalf("post-restrict append read: %v", err)
	}
}

func TestRestrictToHeadPastPrefixIsCorrupt(t *testing.T) {
	b := testFS(t)
	m, err := Open(b, Config{SegSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(1, val(64, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	head := m.HeadMark()
	head.Off += 1000 // manifest claims more durable bytes than exist
	m2, err := Open(b, Config{SegSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.RestrictToHead(head); !core.IsCorrupt(err) {
		t.Fatalf("head past prefix: got %v, want corrupt", err)
	}
}

func TestDiscardVictimRemove(t *testing.T) {
	m, err := Open(testFS(t), Config{SegSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	var ptrs []core.VlogPtr
	for i := uint64(0); i < 40; i++ {
		p, err := m.Append(i, val(256, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.PickVictim(0.5); ok {
		t.Fatal("victim picked with zero discard")
	}
	// Mark every record of segment 1 dead.
	var seg1Bytes int64
	for _, p := range ptrs {
		if p.Seg == 1 {
			m.Discard(1, DiscardOf(p))
			seg1Bytes += DiscardOf(p)
		}
	}
	id, ok := m.PickVictim(0.5)
	if !ok || id != 1 {
		t.Fatalf("PickVictim = %d,%v, want 1,true", id, ok)
	}
	before := m.Stats()
	if err := m.Remove(1); err != nil {
		t.Fatal(err)
	}
	after := m.Stats()
	if after.Reclaimed-before.Reclaimed != seg1Bytes {
		t.Fatalf("reclaimed %d, want %d", after.Reclaimed-before.Reclaimed, seg1Bytes)
	}
	if m.Has(1) {
		t.Fatal("segment 1 still live after Remove")
	}
	// A pointer into the removed segment validates as shadowed, not corrupt.
	if err := m.Validate(ptrs[0]); err != nil {
		t.Fatalf("Validate into removed segment: %v", err)
	}
	// But reading it is corrupt — the engine must never chase such a pointer.
	if _, err := m.Read(ptrs[0], 0); !core.IsCorrupt(err) {
		t.Fatalf("read into removed segment: got %v, want corrupt", err)
	}
}

func TestActiveSegmentNeverVictim(t *testing.T) {
	m, err := Open(testFS(t), Config{SegSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Append(1, val(256, 1))
	if err != nil {
		t.Fatal(err)
	}
	m.Discard(p.Seg, DiscardOf(p))
	if id, ok := m.PickVictim(0.1); ok {
		t.Fatalf("active segment %d picked as victim", id)
	}
}

func TestScanWalksRecordsInOrder(t *testing.T) {
	m, err := Open(testFS(t), Config{SegSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64][]byte{}
	for i := uint64(0); i < 10; i++ {
		v := val(100+int(i), byte(i))
		if _, err := m.Append(i, v); err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	var lastKey uint64
	n := 0
	err = m.Scan(1, func(key uint64, ptr core.VlogPtr, v []byte) error {
		if n > 0 && key != lastKey+1 {
			return fmt.Errorf("out of order: %d after %d", key, lastKey)
		}
		if !bytes.Equal(v, want[key]) {
			return fmt.Errorf("key %d: wrong value", key)
		}
		got, err := m.Read(ptr, key)
		if err != nil || !bytes.Equal(got, v) {
			return fmt.Errorf("key %d: scan pointer does not resolve: %v", key, err)
		}
		lastKey = key
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("scan saw %d records, want %d", n, len(want))
	}
}

func TestArenaBackendRoundtrip(t *testing.T) {
	env := core.NewEnv(core.EnvConfig{DeviceSize: 64 << 20, FSExtent: 64 << 10})
	var anchor uint64
	newBackend := func() *ArenaBackend {
		b, err := NewArenaBackend(env.Arena,
			func() uint64 { return anchor },
			func(v uint64) { anchor = v })
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	m, err := Open(newBackend(), Config{SegSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	var ptrs []core.VlogPtr
	for i := uint64(0); i < 30; i++ {
		p, err := m.Append(i, val(300, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	m2Backend := newBackend()
	nChunks := 0
	m2Backend.Chunks(func(p pmalloc.Ptr) { nChunks++ })
	if want := len(m2Backend.dir) + 1; nChunks != want { // segments + directory
		t.Fatalf("Chunks reported %d chunks, want %d", nChunks, want)
	}
	m2, err := Open(m2Backend, Config{SegSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ptrs {
		got, err := m2.Read(p, uint64(i))
		if err != nil || !bytes.Equal(got, val(300, byte(i))) {
			t.Fatalf("arena reopen read key %d: %v", i, err)
		}
	}
	if err := m2.Remove(1); err != nil {
		t.Fatal(err)
	}
	m3, err := Open(newBackend(), Config{SegSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Has(1) {
		t.Fatal("removed arena segment resurrected after reopen")
	}
}

// FuzzVlogRecord bit-flips encoded records: decode must either reject
// (ok=false) or return exactly the original key and value — never a wrong
// value. Flips in the key or value body are caught by the CRC; flips in the
// length field must not cause huge allocations or out-of-bounds reads.
func FuzzVlogRecord(f *testing.F) {
	f.Add(uint32(1), uint64(42), []byte("hello"), 0, byte(0))
	f.Add(uint32(1), uint64(0), []byte{}, 5, byte(0x80))
	f.Add(uint32(7), uint64(1<<40), bytes.Repeat([]byte{0xEE}, 600), 9, byte(1))
	f.Add(uint32(2), uint64(9), []byte("x"), 8, byte(0xFF))   // vlen field
	f.Add(uint32(3), uint64(9), []byte("abcd"), 16, byte(4))  // crc tail
	f.Fuzz(func(t *testing.T, segID uint32, key uint64, v []byte, flipAt int, flipMask byte) {
		if len(v) > 1<<16 {
			t.Skip()
		}
		enc := EncodeRecord(nil, segID, key, v)
		if flipMask != 0 && len(enc) > 0 {
			idx := flipAt % len(enc)
			if idx < 0 {
				idx += len(enc)
			}
			enc[idx] ^= flipMask
		}
		k, got, n, ok := DecodeRecord(enc, segID)
		if !ok {
			return // rejection is always sound
		}
		// Accepted: must be byte-exact the original (an unflipped input, or a
		// flip the mask turned into a no-op).
		if k != key || !bytes.Equal(got, v) || n != len(enc) {
			t.Fatalf("accepted corrupted record: key %d->%d, %d value bytes", key, k, len(got))
		}
		// Cross-segment replay: the same bytes under another seed never verify.
		if _, _, _, ok := DecodeRecord(enc, segID+1); ok {
			t.Fatal("record verified under wrong segment id")
		}
	})
}
