// Package vlog implements WiscKey-style key/value separation for the Log
// engines: large values are appended to a segment-rotated value log and the
// LSM tree keeps 12-byte (segment, offset, length) pointers, so SSTable
// flushes and compactions move only keys and pointers. Records carry a CRC
// tail seeded with the segment id, so recovery can tell a valid record from
// torn-write debris or stale bytes left by a reused extent; the durable head
// is checkpointed in the engine manifest and everything past it is cut off
// at open. Compaction feeds discard statistics back per segment; GC picks
// the deadest sealed segment, the engine rewrites its live records to the
// tail, and the segment is removed only after the rewritten pointers are
// installed in the manifest.
package vlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"nstore/internal/core"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record layout: key u64 | vlen u32 | value | crc u32. The checksum covers
// key, length, and value, and is seeded with the segment id so a record
// that leaks through a freed-and-reused extent of another segment can never
// verify.
const (
	recHeader   = 12
	recOverhead = recHeader + 4
	// MaxValueLen bounds a single separated value (sanity limit for the
	// CRC walk: a torn length field must not trigger a huge allocation).
	MaxValueLen = 1 << 30
)

// crcSeed starts a record checksum for segment id.
func crcSeed(id uint32) uint32 {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], id)
	return crc32.Checksum(b[:], crcTable)
}

// EncodeRecord appends the wire form of one record to dst.
func EncodeRecord(dst []byte, segID uint32, key uint64, val []byte) []byte {
	start := len(dst)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], key)
	dst = append(dst, b8[:]...)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(val)))
	dst = append(dst, b4[:]...)
	dst = append(dst, val...)
	crc := crc32.Update(crcSeed(segID), crcTable, dst[start:])
	binary.LittleEndian.PutUint32(b4[:], crc)
	return append(dst, b4[:]...)
}

// DecodeRecord parses one record at the start of data. It returns the key,
// the value (aliasing data), and the total record length. A torn, truncated,
// or bit-flipped record returns ok=false — never a wrong value.
func DecodeRecord(data []byte, segID uint32) (key uint64, val []byte, recLen int, ok bool) {
	if len(data) < recOverhead {
		return 0, nil, 0, false
	}
	vlen := binary.LittleEndian.Uint32(data[8:])
	if vlen > MaxValueLen || int64(recOverhead)+int64(vlen) > int64(len(data)) {
		return 0, nil, 0, false
	}
	n := recHeader + int(vlen)
	crc := binary.LittleEndian.Uint32(data[n:])
	if crc32.Update(crcSeed(segID), crcTable, data[:n]) != crc {
		return 0, nil, 0, false
	}
	key = binary.LittleEndian.Uint64(data)
	return key, data[recHeader:n], n + 4, true
}

// Config tunes the Manager.
type Config struct {
	// SegSize is the rotation threshold (default 1 MiB). A single record
	// larger than SegSize gets a segment of its own.
	SegSize int64
	// Workers bounds the parallel CRC walks at Open (0 = sequential).
	Workers int
}

// Head is the durable watermark the engine checkpoints in its manifest:
// every record at or before (Seg, Off) is synced. Seg 0 means "no log".
type Head struct {
	Seg uint32
	Off int64
}

type segInfo struct {
	seg     Seg
	size    int64 // valid record bytes (written bytes for the active segment)
	discard int64 // bytes reported dead by compaction / superseded writes
}

// Stats is a snapshot of the log's cumulative counters.
type Stats struct {
	Segments  int
	Bytes     int64 // live segment bytes (valid record bytes, including dead records)
	Discard   int64 // bytes currently marked discardable across live segments
	Reclaimed int64 // cumulative bytes released by segment removal (monotone)
	Appends   int64 // records appended
	GCRuns    int64 // completed GC passes (engine-reported)
}

// Manager owns the segment set. It is not goroutine-safe: the owning engine
// serializes access under its monitor lock, like the rest of the data path.
type Manager struct {
	b   Backend
	cfg Config

	segs   map[uint32]*segInfo
	active uint32 // 0 = none yet
	synced int64  // synced prefix of the active segment

	appends   int64
	reclaimed int64
	gcRuns    int64
}

// Open loads every listed segment and CRC-walks it to find the valid record
// prefix, cutting filesystem debris durably. Walks run in parallel across
// segments when cfg.Workers > 1 (the §8 recovery pipeline's fan-out).
func Open(b Backend, cfg Config) (*Manager, error) {
	if cfg.SegSize <= 0 {
		cfg.SegSize = 1 << 20
	}
	m := &Manager{b: b, cfg: cfg, segs: make(map[uint32]*segInfo)}
	ids, err := b.List()
	if err != nil {
		return nil, err
	}
	infos := make([]*segInfo, len(ids))
	errs := make([]error, len(ids))
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(ids) && len(ids) > 0 {
		workers = len(ids)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				infos[i], errs[i] = openSeg(b, ids[i])
			}
		}()
	}
	for i := range ids {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, id := range ids {
		if errs[i] != nil {
			return nil, errs[i]
		}
		m.segs[id] = infos[i]
		if id > m.active {
			m.active = id
		}
	}
	if m.active != 0 {
		m.synced = m.segs[m.active].size
	}
	return m, nil
}

// openSeg opens one segment and establishes its valid prefix.
func openSeg(b Backend, id uint32) (*segInfo, error) {
	s, err := b.Open(id)
	if err != nil {
		return nil, err
	}
	ext := s.Extent()
	data := make([]byte, ext)
	if ext > 0 {
		if _, err := s.ReadAt(data, 0); err != nil {
			return nil, err
		}
	}
	valid := int64(0)
	for {
		_, _, n, ok := DecodeRecord(data[valid:], id)
		if !ok {
			break
		}
		valid += int64(n)
	}
	if valid < ext {
		// Filesystem segments cut crash debris durably so later appends
		// never land beyond it; arena segments re-derive the prefix by
		// walk, so their Truncate is a no-op.
		if err := s.Truncate(valid); err != nil {
			return nil, err
		}
	}
	return &segInfo{seg: s, size: valid}, nil
}

// RestrictToHead drops everything past the manifest-checkpointed head:
// segments above head.Seg are removed outright (their records were only
// reachable from SSTables that were never installed, or from memtable
// repoints lost with the crash) and the head segment is truncated to
// head.Off. A head pointing past a segment's valid prefix means durable
// data vanished — that is real corruption, not crash debris.
func (m *Manager) RestrictToHead(h Head) error {
	for id := range m.segs {
		if id > h.Seg {
			if err := m.removeSeg(id, false); err != nil {
				return err
			}
		}
	}
	m.active = h.Seg
	m.synced = 0
	if h.Seg == 0 {
		return nil
	}
	si, ok := m.segs[h.Seg]
	if !ok {
		return core.Corrupt(fmt.Errorf("vlog: manifest head segment %d missing", h.Seg))
	}
	if si.size < h.Off {
		return core.Corrupt(fmt.Errorf("vlog: segment %d valid prefix %d short of manifest head %d", h.Seg, si.size, h.Off))
	}
	if si.size > h.Off {
		if err := si.seg.Truncate(h.Off); err != nil {
			return err
		}
		si.size = h.Off
	}
	m.synced = h.Off
	return nil
}

// rotate seals the active segment and opens a fresh one sized for at least
// need bytes.
func (m *Manager) rotate(need int64) error {
	if m.active != 0 {
		if err := m.Sync(); err != nil {
			return err
		}
	}
	size := m.cfg.SegSize
	if need > size {
		size = need
	}
	id := m.active + 1
	for _, exists := m.segs[id]; exists; _, exists = m.segs[id] {
		id++
	}
	s, err := m.b.Create(id, size)
	if err != nil {
		return core.ClassifyDurability(err)
	}
	m.segs[id] = &segInfo{seg: s}
	m.active = id
	m.synced = 0
	return nil
}

// Append writes one record to the tail and returns its pointer. The record
// is durable only after the next Sync; the engine must Sync before any
// structure referencing the pointer is made durable.
func (m *Manager) Append(key uint64, val []byte) (core.VlogPtr, error) {
	rec := int64(recOverhead + len(val))
	if m.active == 0 || (m.segs[m.active].size > 0 && m.segs[m.active].size+rec > m.cfg.SegSize) {
		if err := m.rotate(rec); err != nil {
			return core.VlogPtr{}, err
		}
	}
	si := m.segs[m.active]
	buf := EncodeRecord(make([]byte, 0, rec), m.active, key, val)
	if _, err := si.seg.WriteAt(buf, si.size); err != nil {
		return core.VlogPtr{}, core.ClassifyDurability(err)
	}
	ptr := core.VlogPtr{Seg: m.active, Off: uint32(si.size), Len: uint32(len(val))}
	si.size += rec
	m.appends++
	return ptr, nil
}

// Sync makes every appended record durable.
func (m *Manager) Sync() error {
	if m.active == 0 {
		return nil
	}
	si := m.segs[m.active]
	if err := si.seg.Sync(); err != nil {
		return core.ClassifyDurability(err)
	}
	m.synced = si.size
	return nil
}

// HeadMark returns the durable watermark for the manifest. Call after Sync.
func (m *Manager) HeadMark() Head {
	return Head{Seg: m.active, Off: m.synced}
}

// Read resolves a pointer, verifying bounds, checksum, and that the record
// belongs to key. Every failure is a typed corrupt error: by the install
// ordering (vlog sync before manifest commit, segment removal only after
// repoints install) a reachable pointer always resolves.
func (m *Manager) Read(ptr core.VlogPtr, key uint64) ([]byte, error) {
	si, ok := m.segs[ptr.Seg]
	if !ok {
		return nil, core.Corrupt(fmt.Errorf("vlog: pointer into missing segment %d", ptr.Seg))
	}
	end := int64(ptr.Off) + int64(recOverhead) + int64(ptr.Len)
	if end > si.size {
		return nil, core.Corrupt(fmt.Errorf("vlog: pointer [%d+%d] past segment %d valid prefix %d", ptr.Off, ptr.Len, ptr.Seg, si.size))
	}
	buf := make([]byte, int(recOverhead)+int(ptr.Len))
	if _, err := si.seg.ReadAt(buf, int64(ptr.Off)); err != nil {
		return nil, core.Corrupt(err)
	}
	k, val, _, ok := DecodeRecord(buf, ptr.Seg)
	if !ok || k != key || uint32(len(val)) != ptr.Len {
		return nil, core.Corrupt(fmt.Errorf("vlog: record at seg %d off %d fails verification for key %d", ptr.Seg, ptr.Off, key))
	}
	out := make([]byte, len(val))
	copy(out, val)
	return out, nil
}

// Validate bounds-checks a pointer without reading the value. Recovery uses
// it to vet every pointer an SSTable carries: a pointer into a missing
// segment is legal (the segment was GC'd and the entry is shadowed by a
// newer one), but a pointer past a live segment's valid prefix can only
// mean lost durable data.
func (m *Manager) Validate(ptr core.VlogPtr) error {
	si, ok := m.segs[ptr.Seg]
	if !ok {
		return nil
	}
	if int64(ptr.Off)+int64(recOverhead)+int64(ptr.Len) > si.size {
		return core.Corrupt(fmt.Errorf("vlog: pointer [%d+%d] past segment %d valid prefix %d", ptr.Off, ptr.Len, ptr.Seg, si.size))
	}
	return nil
}

// Scan walks every valid record of a segment in order.
func (m *Manager) Scan(id uint32, fn func(key uint64, ptr core.VlogPtr, val []byte) error) error {
	si, ok := m.segs[id]
	if !ok {
		return fmt.Errorf("vlog: scan of missing segment %d", id)
	}
	data := make([]byte, si.size)
	if si.size > 0 {
		if _, err := si.seg.ReadAt(data, 0); err != nil {
			return err
		}
	}
	off := int64(0)
	for off < si.size {
		key, val, n, ok := DecodeRecord(data[off:], id)
		if !ok {
			return core.Corrupt(fmt.Errorf("vlog: invalid record at seg %d off %d inside valid prefix", id, off))
		}
		ptr := core.VlogPtr{Seg: id, Off: uint32(off), Len: uint32(len(val))}
		if err := fn(key, ptr, val); err != nil {
			return err
		}
		off += int64(n)
	}
	return nil
}

// Discard reports n more bytes of segment id as dead (dropped or superseded
// pointers seen by compaction, aborted writes, GC repoints).
func (m *Manager) Discard(id uint32, n int64) {
	if si, ok := m.segs[id]; ok {
		si.discard += n
		if si.discard > si.size {
			si.discard = si.size
		}
	}
}

// DiscardOf returns the discard estimate for one record: its full on-log
// footprint.
func DiscardOf(ptr core.VlogPtr) int64 { return int64(recOverhead) + int64(ptr.Len) }

// PickVictim returns the sealed segment with the highest dead ratio, if any
// reaches minRatio. The active segment is never a victim.
func (m *Manager) PickVictim(minRatio float64) (uint32, bool) {
	var best uint32
	bestRatio := minRatio
	ids := make([]uint32, 0, len(m.segs))
	for id := range m.segs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		si := m.segs[id]
		if id == m.active || si.size == 0 {
			continue
		}
		if r := float64(si.discard) / float64(si.size); r >= bestRatio {
			best, bestRatio = id, r
		}
	}
	return best, best != 0
}

// Remove deletes a segment and counts its bytes as reclaimed.
func (m *Manager) Remove(id uint32) error { return m.removeSeg(id, true) }

func (m *Manager) removeSeg(id uint32, reclaim bool) error {
	si, ok := m.segs[id]
	if !ok {
		return nil
	}
	if err := m.b.Remove(id); err != nil {
		return err
	}
	if reclaim {
		m.reclaimed += si.size
	}
	delete(m.segs, id)
	if id == m.active {
		m.active, m.synced = 0, 0
		for sid := range m.segs {
			if sid > m.active {
				m.active = sid
			}
		}
		if m.active != 0 {
			m.synced = m.segs[m.active].size
		}
	}
	return nil
}

// Has reports whether a segment is live.
func (m *Manager) Has(id uint32) bool { _, ok := m.segs[id]; return ok }

// NoteGCRun counts one completed GC pass.
func (m *Manager) NoteGCRun() { m.gcRuns++ }

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	st := Stats{Segments: len(m.segs), Reclaimed: m.reclaimed, Appends: m.appends, GCRuns: m.gcRuns}
	for _, si := range m.segs {
		st.Bytes += si.size
		st.Discard += si.discard
	}
	return st
}

// Bytes returns the live segment byte total (storage-footprint accounting).
func (m *Manager) Bytes() int64 {
	var n int64
	for _, si := range m.segs {
		n += si.size
	}
	return n
}
