package vlog

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"nstore/internal/pmalloc"
	"nstore/internal/pmfs"
)

// Seg is one value-log segment: a flat byte extent the Manager appends
// CRC-tailed records into. Segments are written strictly sequentially and
// never modified after being sealed (except a durable truncation when a
// crash left debris past the checkpointed head).
type Seg interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	// Sync makes every write so far durable.
	Sync() error
	// Truncate discards content past n. Backends with fixed extents (the
	// arena) treat this as a logical no-op: the Manager re-derives the
	// valid prefix by CRC walk, and overwritten bytes fail their checksum.
	Truncate(n int64) error
	// Extent is the upper bound of possibly-valid bytes: the file size for
	// filesystem segments, the chunk capacity for arena segments.
	Extent() int64
}

// Backend creates, opens, lists, and removes segments. Segment ids are
// assigned by the Manager, start at 1, and are never reused.
type Backend interface {
	Create(id uint32, size int64) (Seg, error)
	Open(id uint32) (Seg, error)
	Remove(id uint32) error
	List() ([]uint32, error)
}

// ---------------------------------------------------------------------------
// Filesystem backend (logeng): one pmfs file per segment.

// FSBackend stores segments as pmfs files named <prefix><id>.
type FSBackend struct {
	fs     *pmfs.FS
	prefix string
}

// NewFSBackend returns a backend storing segments as "<prefix>NNNNNN" files.
func NewFSBackend(fs *pmfs.FS, prefix string) *FSBackend {
	return &FSBackend{fs: fs, prefix: prefix}
}

func (b *FSBackend) name(id uint32) string {
	return fmt.Sprintf("%s%06d", b.prefix, id)
}

func (b *FSBackend) Create(id uint32, size int64) (Seg, error) {
	f, err := b.fs.Create(b.name(id))
	if err != nil {
		return nil, err
	}
	return fsSeg{f}, nil
}

func (b *FSBackend) Open(id uint32) (Seg, error) {
	f, err := b.fs.OpenFile(b.name(id))
	if err != nil {
		return nil, err
	}
	return fsSeg{f}, nil
}

func (b *FSBackend) Remove(id uint32) error {
	return b.fs.Remove(b.name(id))
}

func (b *FSBackend) List() ([]uint32, error) {
	var ids []uint32
	for _, name := range b.fs.List() {
		if !strings.HasPrefix(name, b.prefix) {
			continue
		}
		n, err := strconv.ParseUint(name[len(b.prefix):], 10, 32)
		if err != nil {
			continue
		}
		ids = append(ids, uint32(n))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

type fsSeg struct{ f *pmfs.File }

func (s fsSeg) ReadAt(p []byte, off int64) (int, error)  { return s.f.ReadAt(p, off) }
func (s fsSeg) WriteAt(p []byte, off int64) (int, error) { return s.f.WriteAt(p, off) }
func (s fsSeg) Sync() error                              { return s.f.Sync() }
func (s fsSeg) Truncate(n int64) error                   { return s.f.Truncate(n) }
func (s fsSeg) Extent() int64                            { return s.f.Size() }

// ---------------------------------------------------------------------------
// Arena backend (nvmlog): one allocator chunk per segment, with a durable
// directory chunk anchored by the engine (a header field). The NVM engines
// get only a sliver of pmfs space, so their value log lives in allocator
// memory like the rest of their data.

// ArenaBackend stores segments as pmalloc chunks. The directory — the list
// of (id, chunk) pairs — is itself a chunk whose pointer the engine anchors
// durably; directory updates are crash-atomic by writing a fresh directory
// chunk, fencing it, swapping the anchor, and only then freeing the old one.
type ArenaBackend struct {
	arena       *pmalloc.Arena
	readAnchor  func() uint64
	writeAnchor func(uint64)

	dirPtr pmalloc.Ptr
	dir    map[uint32]pmalloc.Ptr
}

// NewArenaBackend loads (or initializes) the segment directory from the
// engine-provided anchor. writeAnchor must store the value durably (fenced)
// before returning.
func NewArenaBackend(a *pmalloc.Arena, readAnchor func() uint64, writeAnchor func(uint64)) (*ArenaBackend, error) {
	b := &ArenaBackend{
		arena:       a,
		readAnchor:  readAnchor,
		writeAnchor: writeAnchor,
		dir:         make(map[uint32]pmalloc.Ptr),
	}
	b.dirPtr = pmalloc.Ptr(readAnchor())
	if b.dirPtr != 0 {
		d := a.Device()
		n := d.ReadU32(int64(b.dirPtr))
		for i := 0; i < int(n); i++ {
			off := int64(b.dirPtr) + 4 + int64(i)*12
			id := d.ReadU32(off)
			b.dir[id] = pmalloc.Ptr(d.ReadU64(off + 4))
		}
	}
	return b, nil
}

// storeDir writes a fresh directory chunk reflecting b.dir, swaps the
// anchor, and frees the old directory. Crash before the anchor swap leaves
// the old directory live and the new chunk unreachable (reclaimed by the
// engine's orphan sweep); crash after leaves the old chunk unreachable.
func (b *ArenaBackend) storeDir() error {
	buf := make([]byte, 4+len(b.dir)*12)
	binary.LittleEndian.PutUint32(buf, uint32(len(b.dir)))
	ids := make([]uint32, 0, len(b.dir))
	for id := range b.dir {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		binary.LittleEndian.PutUint32(buf[4+i*12:], id)
		binary.LittleEndian.PutUint64(buf[4+i*12+4:], uint64(b.dir[id]))
	}
	np, err := b.arena.Alloc(len(buf), pmalloc.TagLog)
	if err != nil {
		return err
	}
	d := b.arena.Device()
	d.Write(int64(np), buf)
	b.arena.Sync(np, len(buf))
	b.arena.SetPersisted(np)
	b.writeAnchor(uint64(np))
	if b.dirPtr != 0 {
		b.arena.Free(b.dirPtr)
	}
	b.dirPtr = np
	return nil
}

func (b *ArenaBackend) Create(id uint32, size int64) (Seg, error) {
	p, err := b.arena.Alloc(int(size), pmalloc.TagTable)
	if err != nil {
		return nil, err
	}
	b.arena.SetPersisted(p)
	b.dir[id] = p
	if err := b.storeDir(); err != nil {
		delete(b.dir, id)
		b.arena.Free(p)
		return nil, err
	}
	return &arenaSeg{a: b.arena, ptr: p, cap: int64(b.arena.SizeOf(p))}, nil
}

func (b *ArenaBackend) Open(id uint32) (Seg, error) {
	p, ok := b.dir[id]
	if !ok {
		return nil, fmt.Errorf("vlog: arena segment %d not in directory", id)
	}
	return &arenaSeg{a: b.arena, ptr: p, cap: int64(b.arena.SizeOf(p))}, nil
}

func (b *ArenaBackend) Remove(id uint32) error {
	p, ok := b.dir[id]
	if !ok {
		return nil
	}
	delete(b.dir, id)
	if err := b.storeDir(); err != nil {
		b.dir[id] = p
		return err
	}
	b.arena.Free(p)
	return nil
}

func (b *ArenaBackend) List() ([]uint32, error) {
	ids := make([]uint32, 0, len(b.dir))
	for id := range b.dir {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Chunks reports every live chunk the backend owns (the directory plus all
// segments) so the engine's reachability sweep can mark them.
func (b *ArenaBackend) Chunks(fn func(p pmalloc.Ptr)) {
	if b.dirPtr != 0 {
		fn(b.dirPtr)
	}
	for _, p := range b.dir {
		fn(p)
	}
}

type arenaSeg struct {
	a       *pmalloc.Arena
	ptr     pmalloc.Ptr
	cap     int64
	dirtyLo int64
	dirtyHi int64
}

func (s *arenaSeg) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > s.cap {
		return 0, fmt.Errorf("vlog: arena read [%d,%d) beyond capacity %d", off, off+int64(len(p)), s.cap)
	}
	s.a.Device().Read(int64(s.ptr)+off, p)
	return len(p), nil
}

func (s *arenaSeg) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > s.cap {
		return 0, fmt.Errorf("vlog: arena write [%d,%d) beyond capacity %d", off, off+int64(len(p)), s.cap)
	}
	s.a.Device().Write(int64(s.ptr)+off, p)
	if s.dirtyHi == 0 || off < s.dirtyLo {
		s.dirtyLo = off
	}
	if off+int64(len(p)) > s.dirtyHi {
		s.dirtyHi = off + int64(len(p))
	}
	return len(p), nil
}

func (s *arenaSeg) Sync() error {
	if s.dirtyHi > s.dirtyLo {
		s.a.Sync(s.ptr+pmalloc.Ptr(s.dirtyLo), int(s.dirtyHi-s.dirtyLo))
	}
	s.dirtyLo, s.dirtyHi = math.MaxInt64, 0
	return nil
}

func (s *arenaSeg) Truncate(n int64) error { return nil }

func (s *arenaSeg) Extent() int64 { return s.cap }
