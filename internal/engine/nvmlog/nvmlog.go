// Package nvmlog implements the NVM-aware log-structured updates engine
// (NVM-Log, §4.3). Differences from the traditional Log engine:
//
//   - MemTables are never flushed to the filesystem: a full MemTable is
//     simply marked immutable (it is already durable on NVM) and a new
//     mutable MemTable starts. Compaction merges the immutable MemTables
//     into a new, larger MemTable.
//   - The WAL is a non-volatile linked list whose purpose is only to *undo*
//     uncommitted transactions — the MemTable itself is durable, so there
//     is no redo/rebuild at recovery (§4.3: "Its recovery latency is
//     therefore lower than the Log engine as it no longer needs to rebuild
//     the MemTable").
//   - Each immutable MemTable carries a Bloom filter to skip index
//     look-ups while coalescing tuples across runs.
package nvmlog

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"nstore/internal/bloom"
	"nstore/internal/core"
	"nstore/internal/engine/lsm"
	"nstore/internal/mvcc"
	"nstore/internal/nvbtree"
	"nstore/internal/pmalloc"
	"nstore/internal/vlog"
)

const (
	hdrMagic = 0x4e564d4c4f473132 // "NVMLOG12"
	rootSlot = 0

	// Engine header layout.
	hMagic     = 0
	hCommitted = 8
	hWalHead   = 16
	hMutable   = 24 // current mutable MemTable tree header
	hRunList   = 32 // immutable run list chunk (0 = none)
	hVlogDir   = 40 // value-log segment directory chunk (0 = none)
	hNTables   = 48
	hAnchors   = 56 // per table: secondary tree headers

	// gcMinRatio is the dead-byte fraction at which a sealed value-log
	// segment becomes a GC victim.
	gcMinRatio = 0.5

	// Run list chunk: n u64, then per run {treeHdr, bloomPtr, bloomMeta}.
	// bloomMeta packs words<<8 | k. Runs are ordered newest first.
	runEntSize = 24

	// WAL entry layout (TagLog chunk).
	wNext   = 0
	wTxn    = 8
	wType   = 16
	wTable  = 17
	wNSec   = 18
	wKey    = 24
	wOldPtr = 32
	wNewPtr = 40
	wSec    = 48 // nSec x {idx u8, op u8 (1 added, 2 removed), composite u64}
	secRec  = 10
)

// run is one immutable MemTable.
type run struct {
	tree       *nvbtree.Tree
	bloomPtr   pmalloc.Ptr
	bloomWords uint64
	bloomK     int
}

// Engine is the NVM-aware log-structured updates engine.
type Engine struct {
	core.Base
	mvcc.Snapshots
	opts core.Options

	// mu is the engine monitor: the device/arena underneath is
	// single-owner, so every public method and every background pipeline
	// task holds it.
	mu sync.Mutex

	hdr      pmalloc.Ptr
	mem      *nvbtree.Tree
	memCount int
	runs     []*run // newest first
	second   [][]*nvbtree.Tree

	backend *vlog.ArenaBackend
	vl      *vlog.Manager // nil when value separation is disabled
	fm      *lsm.FlushManager

	compactQueued bool
	gcQueued      bool
	fstats        core.FlushStats

	ops         []txnOp
	compactions int
	closed      bool
}

type txnOp struct {
	entry  pmalloc.Ptr
	oldPtr uint64 // superseded entry chunk, freed at commit
}

// New creates a fresh NVM-Log engine anchored at arena root slot 0.
func New(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	if err := core.ValidatePacked(schemas); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	nSec := 0
	for _, s := range schemas {
		nSec += len(s.Secondary)
	}
	hdr, err := env.Arena.Alloc(hAnchors+8*nSec, pmalloc.TagOther)
	if err != nil {
		return nil, err
	}
	e.hdr = hdr
	d := env.Dev
	d.WriteU64(int64(hdr)+hMagic, hdrMagic)
	d.WriteU64(int64(hdr)+hCommitted, 0)
	d.WriteU64(int64(hdr)+hWalHead, 0)
	d.WriteU64(int64(hdr)+hRunList, 0)
	d.WriteU64(int64(hdr)+hVlogDir, 0)
	d.WriteU64(int64(hdr)+hNTables, uint64(len(schemas)))
	mem, err := nvbtree.Create(env.Arena, e.opts.BTreeNodeSize)
	if err != nil {
		return nil, err
	}
	e.mem = mem
	d.WriteU64(int64(hdr)+hMutable, e.mem.Header())
	off := int64(hAnchors)
	for _, tm := range e.Tables {
		var secs []*nvbtree.Tree
		for range tm.Schema.Secondary {
			st, err := nvbtree.Create(env.Arena, e.opts.BTreeNodeSize)
			if err != nil {
				return nil, err
			}
			secs = append(secs, st)
			d.WriteU64(int64(hdr)+off, st.Header())
			off += 8
		}
		e.second = append(e.second, secs)
	}
	d.Sync(int64(hdr), hAnchors+8*nSec)
	env.Arena.SetPersisted(hdr)
	env.Arena.SetRoot(rootSlot, hdr)
	if err := e.openVlog(); err != nil {
		return nil, err
	}
	e.initFlushManager()
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

// openVlog builds the arena-backed value log anchored at the engine header
// (both constructors). A zero anchor means an empty directory.
func (e *Engine) openVlog() error {
	if e.opts.VlogThreshold <= 0 {
		return nil
	}
	d := e.Env.Dev
	b, err := vlog.NewArenaBackend(e.Env.Arena,
		func() uint64 { return d.ReadU64(int64(e.hdr) + hVlogDir) },
		func(v uint64) { d.WriteU64Durable(int64(e.hdr)+hVlogDir, v) })
	if err != nil {
		return err
	}
	vl, err := vlog.Open(b, vlog.Config{
		SegSize: int64(e.opts.VlogSegSize),
		Workers: core.RecoveryWorkers(e.opts.RecoveryParallelism)})
	if err != nil {
		return err
	}
	e.backend, e.vl = b, vl
	return nil
}

func (e *Engine) initFlushManager() {
	e.fm = lsm.NewFlushManager(e.opts.FlushWorkers > 0,
		func() { e.mu.Lock() }, func() { e.mu.Unlock() },
		func(kind string, stage lsm.FlushStage, d time.Duration) {
			switch stage {
			case lsm.StagePrepare:
				e.fstats.PrepareNs += d.Nanoseconds()
			case lsm.StageBuild:
				e.fstats.BuildNs += d.Nanoseconds()
			case lsm.StageInstall:
				e.fstats.InstallNs += d.Nanoseconds()
			case lsm.StageRelease:
				e.fstats.ReleaseNs += d.Nanoseconds()
			}
		})
}

// Open recovers the engine: reopen the durable MemTables and indexes, undo
// in-flight transactions via the WAL, complete any interrupted rotation,
// and sweep orphaned chunks. No MemTable rebuild (§4.3).
func Open(env *core.Env, schemas []*core.Schema, opts core.Options) (*Engine, error) {
	if err := core.ValidatePacked(schemas); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts.WithDefaults()}
	e.InitBase(env, schemas)
	stop := e.Bd.Timer(&e.Bd.Recovery)
	defer stop()

	hdr := env.Arena.Root(rootSlot)
	if hdr == 0 || env.Dev.ReadU64(int64(hdr)+hMagic) != hdrMagic {
		return nil, fmt.Errorf("nvmlog: no engine header")
	}
	e.hdr = hdr
	d := env.Dev
	if int(d.ReadU64(int64(hdr)+hNTables)) != len(schemas) {
		return nil, fmt.Errorf("nvmlog: schema mismatch")
	}
	mem, err := nvbtree.Open(env.Arena, d.ReadU64(int64(hdr)+hMutable))
	if err != nil {
		return nil, err
	}
	e.mem = mem
	if err := e.loadRuns(); err != nil {
		return nil, err
	}
	// A crash between the run-list swap and the mutable swap leaves the
	// same tree both mutable and newest-immutable; finish the rotation.
	if len(e.runs) > 0 && e.runs[0].tree.Header() == e.mem.Header() {
		fresh, err := nvbtree.Create(env.Arena, e.opts.BTreeNodeSize)
		if err != nil {
			return nil, err
		}
		e.mem = fresh
		d.WriteU64Durable(int64(e.hdr)+hMutable, e.mem.Header())
	}
	off := int64(hAnchors)
	for _, tm := range e.Tables {
		var secs []*nvbtree.Tree
		for range tm.Schema.Secondary {
			st, err := nvbtree.Open(env.Arena, d.ReadU64(int64(hdr)+off))
			if err != nil {
				return nil, err
			}
			secs = append(secs, st)
			off += 8
		}
		e.second = append(e.second, secs)
	}
	// The value log must be open before the WAL undo (freed pointer chunks
	// feed discard statistics) and before the sweep (its chunks must be
	// marked reachable, and the pointer validation needs it).
	if err := e.openVlog(); err != nil {
		return nil, err
	}
	if err := e.undoWAL(); err != nil {
		return nil, err
	}
	e.memCount = e.mem.Count()
	if err := e.sweep(); err != nil {
		return nil, err
	}
	e.initFlushManager()
	if err := e.InitSnapshots(e, schemas, e.TxnID); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Engine) loadRuns() error {
	d := e.Env.Dev
	list := d.ReadU64(int64(e.hdr) + hRunList)
	if list == 0 {
		return nil
	}
	n := int(d.ReadU64(int64(list)))
	for i := 0; i < n; i++ {
		base := int64(list) + 8 + int64(i)*runEntSize
		tr, err := nvbtree.Open(e.Env.Arena, d.ReadU64(base))
		if err != nil {
			return err
		}
		meta := d.ReadU64(base + 16)
		e.runs = append(e.runs, &run{
			tree:       tr,
			bloomPtr:   d.ReadU64(base + 8),
			bloomWords: meta >> 8,
			bloomK:     int(meta & 0xff),
		})
	}
	return nil
}

// sweep reclaims persisted chunks orphaned by crashes during rotation,
// compaction, or WAL truncation, and re-verifies each immutable run's Bloom
// filter against its tree. The reachability marking and all device reads stay
// on the owner goroutine; the chunk classification and the Bloom rebuilds are
// host-memory work and fan out across RecoveryParallelism workers.
func (e *Engine) sweep() error {
	workers := core.RecoveryWorkers(e.opts.RecoveryParallelism)
	reach := make(map[pmalloc.Ptr]bool)
	mark := func(p pmalloc.Ptr) { reach[p] = true }
	reach[e.hdr] = true
	if list := e.Env.Dev.ReadU64(int64(e.hdr) + hRunList); list != 0 {
		reach[list] = true
	}
	// Entry chunks of the primary trees are collected for the value-log
	// pointer validation below.
	var valChunks []uint64
	markTree := func(t *nvbtree.Tree, keys *[]uint64) {
		t.Nodes(mark)
		t.Iter(0, func(k, v uint64) bool {
			reach[v] = true
			valChunks = append(valChunks, v)
			if keys != nil {
				*keys = append(*keys, k)
			}
			return true
		})
	}
	markTree(e.mem, nil)
	// The marking pass over each run doubles as the key harvest for the
	// parallel Bloom verification below.
	runKeys := make([][]uint64, len(e.runs))
	for i, r := range e.runs {
		markTree(r.tree, &runKeys[i])
		if r.bloomPtr != 0 {
			reach[r.bloomPtr] = true
		}
	}
	for _, secs := range e.second {
		for _, st := range secs {
			st.Nodes(mark)
		}
	}
	// The value log's directory and segment chunks are durable state, not
	// orphans.
	if e.backend != nil {
		e.backend.Chunks(func(p pmalloc.Ptr) { reach[p] = true })
	}
	// Pointer validation: every separated-value pointer a durable tree
	// carries must land inside a live segment's valid prefix. (A missing
	// segment is legal only for shadowed stale entries; vlog.Validate
	// distinguishes the cases.)
	for _, v := range valChunks {
		if e.Env.Dev.ReadU8(int64(v)) != lsm.KindFullPtr {
			continue
		}
		var buf [core.VlogPtrSize]byte
		e.Env.Dev.Read(int64(v)+5, buf[:])
		ptr, ok := core.DecodeVlogPtr(buf[:])
		if !ok {
			return core.Corrupt(fmt.Errorf("nvmlog: malformed value-log pointer chunk"))
		}
		if e.vl == nil {
			return core.Corrupt(fmt.Errorf("nvmlog: value-log pointer with separation disabled"))
		}
		if err := e.vl.Validate(ptr); err != nil {
			return err
		}
	}

	type chunkRec struct {
		p   pmalloc.Ptr
		tag pmalloc.Tag
		st  pmalloc.State
	}
	var chunks []chunkRec
	e.Env.Arena.Chunks(func(p pmalloc.Ptr, size int, tag pmalloc.Tag, st pmalloc.State) {
		chunks = append(chunks, chunkRec{p: p, tag: tag, st: st})
	})
	orphans := make([][]pmalloc.Ptr, workers)
	_ = core.ParallelChunks(workers, len(chunks), func(w, lo, hi int) error {
		for _, c := range chunks[lo:hi] {
			if c.st != pmalloc.StatePersisted || reach[c.p] {
				continue
			}
			switch c.tag {
			case pmalloc.TagTable, pmalloc.TagIndex, pmalloc.TagLog:
				orphans[w] = append(orphans[w], c.p)
			}
		}
		return nil
	})
	for _, list := range orphans {
		for _, p := range list {
			e.Env.Arena.Free(p)
		}
	}
	var nkeys int64
	for _, ks := range runKeys {
		nkeys += int64(len(ks))
	}
	e.Rec = core.RecoveryReport{Records: int64(len(chunks)) + nkeys, Workers: workers}
	return e.verifyBlooms(workers, runKeys)
}

// verifyBlooms rebuilds each immutable run's Bloom filter from its tree keys
// (in parallel — the rebuild is pure hashing over host memory) and compares it
// with the persisted copy; a mismatched filter would silently turn lookups
// into false negatives, so it is repaired in place. storeRun sizes filters
// with the same constructor, so a rebuild from the same key count is
// bit-compatible whenever the stored metadata is intact.
func (e *Engine) verifyBlooms(workers int, runKeys [][]uint64) error {
	if len(e.runs) == 0 {
		return nil
	}
	d := e.Env.Dev
	stored := make([][]byte, len(e.runs))
	for i, r := range e.runs {
		stored[i] = make([]byte, r.bloomWords*8)
		d.Read(int64(r.bloomPtr), stored[i])
	}
	rebuilt := make([][]byte, len(e.runs)) // bits only; nil = matches
	ks := make([]int, len(e.runs))
	_ = core.ParallelChunks(workers, len(e.runs), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			fl := bloom.New(len(runKeys[i]), 10)
			for _, k := range runKeys[i] {
				fl.Add(k)
			}
			bits := fl.Marshal()[8:]
			ks[i] = fl.K()
			if ks[i] == e.runs[i].bloomK && bytes.Equal(bits, stored[i]) {
				continue
			}
			rebuilt[i] = bits
		}
		return nil
	})
	relink := false
	for i, bits := range rebuilt {
		if bits == nil {
			continue
		}
		r := e.runs[i]
		if uint64(len(bits)) == r.bloomWords*8 && ks[i] == r.bloomK {
			// Same geometry: repair the persisted bits in place.
			d.Write(int64(r.bloomPtr), bits)
			d.Sync(int64(r.bloomPtr), len(bits))
			continue
		}
		// Geometry drifted (corrupt run-list metadata): persist a fresh
		// filter chunk and relink the run list afterwards.
		p, err := e.Env.Arena.Alloc(len(bits), pmalloc.TagIndex)
		if err != nil {
			return err
		}
		d.Write(int64(p), bits)
		d.Sync(int64(p), len(bits))
		e.Env.Arena.SetPersisted(p)
		// bloomPtr 0 = a rotation crashed between run-list swap and bloom
		// install; this path completes the interrupted build stage.
		if r.bloomPtr != 0 {
			e.Env.Arena.Free(r.bloomPtr)
		}
		r.bloomPtr = p
		r.bloomWords = uint64(len(bits) / 8)
		r.bloomK = ks[i]
		relink = true
	}
	if relink {
		return e.swapRunList(e.runs)
	}
	return nil
}

// Entry chunks: kind u8, len u32, payload (TagTable, persisted).

func (e *Engine) writeEntryChunk(ent lsm.Entry) (pmalloc.Ptr, error) {
	p, err := e.Env.Arena.Alloc(5+len(ent.Payload), pmalloc.TagTable)
	if err != nil {
		// Table-arena exhaustion is reachable from normal traffic.
		return 0, err
	}
	d := e.Env.Dev
	d.WriteU8(int64(p), ent.Kind)
	d.WriteU32(int64(p)+1, uint32(len(ent.Payload)))
	d.Write(int64(p)+5, ent.Payload)
	d.Sync(int64(p), 5+len(ent.Payload))
	e.Env.Arena.SetPersisted(p)
	return p, nil
}

func (e *Engine) readEntryChunk(p uint64) lsm.Entry {
	d := e.Env.Dev
	kind := d.ReadU8(int64(p))
	n := int(d.ReadU32(int64(p) + 1))
	payload := make([]byte, n)
	d.Read(int64(p)+5, payload)
	return lsm.Entry{Kind: kind, Payload: payload}
}

// discardIfPtr feeds the value log's discard stats when an entry chunk
// holding a separated-value pointer is superseded, rolled back, or merged
// away.
func (e *Engine) discardIfPtr(chunk uint64) {
	if e.vl == nil || chunk == 0 {
		return
	}
	if e.Env.Dev.ReadU8(int64(chunk)) != lsm.KindFullPtr {
		return
	}
	var buf [core.VlogPtrSize]byte
	e.Env.Dev.Read(int64(chunk)+5, buf[:])
	if ptr, ok := core.DecodeVlogPtr(buf[:]); ok {
		e.vl.Discard(ptr.Seg, vlog.DiscardOf(ptr))
	}
}

// resolveEntry is the lsm.Resolver: it materializes a KindFullPtr entry by
// reading the value log.
func (e *Engine) resolveEntry(key uint64, ent lsm.Entry) (lsm.Entry, error) {
	ptr, ok := core.DecodeVlogPtr(ent.Payload)
	if !ok {
		return lsm.Entry{}, core.Corrupt(fmt.Errorf("nvmlog: malformed value-log pointer for key %d", key))
	}
	if e.vl == nil {
		return lsm.Entry{}, core.Corrupt(fmt.Errorf("nvmlog: value-log pointer for key %d with separation disabled", key))
	}
	val, err := e.vl.Read(ptr, key)
	if err != nil {
		return lsm.Entry{}, err
	}
	return lsm.Entry{Kind: lsm.KindFull, Payload: val}, nil
}

// separate routes a large full image through the value log: the record is
// appended and synced (durable before any chunk referencing it persists)
// and the entry becomes a 12-byte pointer. Small images pass through.
func (e *Engine) separate(tk uint64, ent lsm.Entry) (lsm.Entry, error) {
	if e.vl == nil || ent.Kind != lsm.KindFull || len(ent.Payload) < e.opts.VlogThreshold {
		return ent, nil
	}
	ptr, err := e.vl.Append(tk, ent.Payload)
	if err != nil {
		return lsm.Entry{}, err
	}
	if err := e.vl.Sync(); err != nil {
		return lsm.Entry{}, err
	}
	return lsm.Entry{Kind: lsm.KindFullPtr, Payload: ptr.Encode(nil)}, nil
}

// secFix describes a secondary-index change for WAL undo.
type secFix struct {
	idx       int
	added     bool
	composite uint64
}

// appendWAL logs one MemTable operation: which mapping changed (old/new
// entry-chunk pointers) and the secondary entries touched.
func (e *Engine) appendWAL(typ uint8, table int, key, oldPtr, newPtr uint64, fixes []secFix) (pmalloc.Ptr, error) {
	d := e.Env.Dev
	size := wSec + secRec*len(fixes)
	p, err := e.Env.Arena.Alloc(size, pmalloc.TagLog)
	if err != nil {
		// Log-arena exhaustion is reachable from normal traffic.
		return 0, err
	}
	d.WriteU64(int64(p)+wNext, d.ReadU64(int64(e.hdr)+hWalHead))
	d.WriteU64(int64(p)+wTxn, e.TxnID)
	d.WriteU8(int64(p)+wType, typ)
	d.WriteU8(int64(p)+wTable, uint8(table))
	d.WriteU8(int64(p)+wNSec, uint8(len(fixes)))
	d.WriteU64(int64(p)+wKey, key)
	d.WriteU64(int64(p)+wOldPtr, oldPtr)
	d.WriteU64(int64(p)+wNewPtr, newPtr)
	for i, f := range fixes {
		base := int64(p) + wSec + int64(i)*secRec
		d.WriteU8(base, uint8(f.idx))
		op := uint8(2)
		if f.added {
			op = 1
		}
		d.WriteU8(base+1, op)
		d.WriteU64(base+2, f.composite)
	}
	d.Sync(int64(p), size)
	e.Env.Arena.SetPersisted(p)
	d.WriteU64Durable(int64(e.hdr)+hWalHead, p)
	return p, nil
}

// undoWAL reverses in-flight transactions (newest entry first) and
// truncates the log.
func (e *Engine) undoWAL() error {
	d := e.Env.Dev
	head := d.ReadU64(int64(e.hdr) + hWalHead)
	var frees []pmalloc.Ptr
	for p := head; p != 0; p = d.ReadU64(int64(p) + wNext) {
		frees = append(frees, p)
		// Truncation is the commit point: linked entries are uncommitted.
		if err := e.undoEntry(p); err != nil {
			return err
		}
	}
	d.WriteU64Durable(int64(e.hdr)+hWalHead, 0)
	for _, p := range frees {
		if e.Env.Arena.StateOf(p) != pmalloc.StateFree {
			e.Env.Arena.Free(p)
		}
	}
	return nil
}

func (e *Engine) undoEntry(p pmalloc.Ptr) error {
	d := e.Env.Dev
	table := int(d.ReadU8(int64(p) + wTable))
	key := d.ReadU64(int64(p) + wKey)
	oldPtr := d.ReadU64(int64(p) + wOldPtr)
	newPtr := d.ReadU64(int64(p) + wNewPtr)
	tk := core.TreePrimary(table, key)
	if oldPtr != 0 {
		if err := e.mem.Put(tk, oldPtr); err != nil {
			return err
		}
	} else {
		if _, err := e.mem.Delete(tk); err != nil {
			return err
		}
	}
	if newPtr != 0 && e.Env.Arena.StateOf(newPtr) != pmalloc.StateFree {
		// A rolled-back separated value leaves its log record dead.
		e.discardIfPtr(newPtr)
		e.Env.Arena.Free(newPtr)
	}
	n := int(d.ReadU8(int64(p) + wNSec))
	for i := 0; i < n; i++ {
		base := int64(p) + wSec + int64(i)*secRec
		idx := int(d.ReadU8(base))
		op := d.ReadU8(base + 1)
		composite := d.ReadU64(base + 2)
		if op == 1 {
			if _, err := e.second[table][idx].Delete(composite); err != nil {
				return err
			}
		} else {
			if err := e.second[table][idx].Put(composite, core.SecPK(composite)); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyMem merges an entry into the mutable MemTable, logging undo info.
func (e *Engine) applyMem(tm *core.TableMeta, typ uint8, key uint64, ent lsm.Entry, fixes []secFix) error {
	tk := core.TreePrimary(tm.ID, key)
	var oldPtr uint64
	isNew := true
	if p, ok := e.mem.Get(tk); ok {
		oldPtr = p
		isNew = false
		merged, err := lsm.MergeR(tm.Schema, tk, ent, e.readEntryChunk(p), e.resolveEntry)
		if err != nil {
			return err
		}
		ent = merged
	}
	// Separation happens after the merge: a delta landing on a separated
	// image resolves to an inline full image, which re-separates here if it
	// is still large.
	ent, err := e.separate(tk, ent)
	if err != nil {
		return err
	}
	newPtr, err := e.writeEntryChunk(ent)
	if err != nil {
		return err
	}
	entry, err := e.appendWAL(typ, tm.ID, key, oldPtr, uint64(newPtr), fixes)
	if err != nil {
		e.discardIfPtr(uint64(newPtr))
		e.Env.Arena.Free(newPtr)
		return err
	}
	// Record the op before touching the trees so Abort can undo a partially
	// applied operation from the WAL entry.
	e.ops = append(e.ops, txnOp{entry: entry, oldPtr: oldPtr})
	if err := e.mem.Put(tk, uint64(newPtr)); err != nil {
		return err
	}
	if isNew {
		e.memCount++
	}
	for _, f := range fixes {
		if f.added {
			if err := e.second[tm.ID][f.idx].Put(f.composite, core.SecPK(f.composite)); err != nil {
				return err
			}
		} else {
			if _, err := e.second[tm.ID][f.idx].Delete(f.composite); err != nil {
				return err
			}
		}
	}
	return nil
}

// Name returns "nvm-log".
func (e *Engine) Name() string { return "nvm-log" }

// Begin starts a transaction.
func (e *Engine) Begin() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.BeginTx(); err != nil {
		return err
	}
	e.ops = e.ops[:0]
	return nil
}

// Commit durably marks the transaction committed, truncates the WAL, and
// runs the staged rotation/compaction pipeline when the MemTable is full.
// A pipeline failure is surfaced to the caller, but the transaction IS
// durable (the WAL truncation below is the commit point); a later commit
// retries the maintenance.
func (e *Engine) Commit() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.RequireTx(); err != nil {
		return err
	}
	stop := e.Bd.Timer(&e.Bd.Recovery)
	d := e.Env.Dev
	// Truncating the undo log is the atomic commit point (§4.3).
	d.WriteU64Durable(int64(e.hdr)+hWalHead, 0)
	for _, op := range e.ops {
		if op.oldPtr != 0 && e.Env.Arena.StateOf(op.oldPtr) != pmalloc.StateFree {
			e.discardIfPtr(op.oldPtr)
			e.Env.Arena.Free(op.oldPtr)
		}
		e.Env.Arena.Free(op.entry)
	}
	stop()
	// The WAL truncation above is the durability barrier: versions publish
	// to snapshot readers immediately (NVM-Log is durable at commit).
	e.MV.CommitStaged(e.TxnID, true)
	var maintErr error
	if e.memCount >= e.opts.MemTableCap {
		start := time.Now()
		newRun, keys, err := e.rotatePrepare()
		e.fm.Observe("flush", lsm.StagePrepare, time.Since(start))
		if err != nil {
			maintErr = err
		} else {
			maintErr = e.fm.Submit(e.rotateTask(newRun, keys))
		}
	}
	if maintErr == nil {
		maintErr = e.fm.TakeErr()
	}
	endErr := e.EndTx()
	if maintErr != nil {
		return maintErr
	}
	return endErr
}

// Abort undoes the transaction via its WAL entries and truncates the log.
func (e *Engine) Abort() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.RequireTx(); err != nil {
		return err
	}
	for i := len(e.ops) - 1; i >= 0; i-- {
		if err := e.undoEntry(e.ops[i].entry); err != nil {
			// A failed rollback leaves volatile and durable state diverged;
			// only the engine's crash-recovery path can restore consistency.
			// The transaction is over either way — end it so recovery's
			// replacement Begin path is not blocked by ErrInTxn.
			_ = e.EndTx()
			return core.Corrupt(err)
		}
	}
	e.memCount = e.mem.Count()
	d := e.Env.Dev
	d.WriteU64Durable(int64(e.hdr)+hWalHead, 0)
	for _, op := range e.ops {
		e.Env.Arena.Free(op.entry)
	}
	e.MV.DropStaged()
	return e.EndTx()
}

// rotatePrepare is the prepare stage of a rotation: the mutable MemTable is
// sealed into the run list (with an empty Bloom filter — lookups fall back
// to probing the tree until the build stage installs the real one) and a
// fresh MemTable starts. The NVM engine never flushes the memtable anywhere
// (§4.3 — it is already durable); prepare is the durability-critical part,
// the Bloom filter is an optimization the build/install stages complete.
func (e *Engine) rotatePrepare() (*run, []uint64, error) {
	stop := e.Bd.Timer(&e.Bd.Storage)
	defer stop()
	var keys []uint64
	e.mem.Iter(0, func(k, v uint64) bool { keys = append(keys, k); return true })
	newRun := &run{tree: e.mem}
	if err := e.swapRunList(append([]*run{newRun}, e.runs...)); err != nil {
		return nil, nil, err
	}
	// Start the fresh mutable MemTable (recovery completes this step if a
	// crash lands between the two swaps, and rebuilds the missing Bloom
	// filter in verifyBlooms).
	fresh, err := nvbtree.Create(e.Env.Arena, e.opts.BTreeNodeSize)
	if err != nil {
		return nil, nil, err
	}
	e.mem = fresh
	e.Env.Dev.WriteU64Durable(int64(e.hdr)+hMutable, e.mem.Header())
	e.memCount = 0
	return newRun, keys, nil
}

// rotateTask finishes a rotation: build computes the Bloom filter (pure
// hashing), install persists it and relinks the run list, release chains
// the compaction and GC checks. A failure leaves the run with an empty
// filter — correct, just slower — so nothing is retried.
func (e *Engine) rotateTask(newRun *run, keys []uint64) *lsm.FlushTask {
	t := &lsm.FlushTask{Kind: "flush"}
	var fl *bloom.Filter
	t.Build = func() error {
		fl = bloom.New(len(keys), 10)
		for _, k := range keys {
			fl.Add(k)
		}
		return nil
	}
	t.Install = func() error {
		// The run may already have been merged away by a compaction that
		// ran between prepare and now; its Bloom filter died with it.
		live := false
		for _, r := range e.runs {
			if r == newRun {
				live = true
			}
		}
		if !live {
			return nil
		}
		bm := fl.Marshal()
		p, err := e.Env.Arena.Alloc(len(bm)-8, pmalloc.TagIndex)
		if err != nil {
			e.fstats.Failures++
			return err
		}
		d := e.Env.Dev
		d.Write(int64(p), bm[8:])
		d.Sync(int64(p), len(bm)-8)
		e.Env.Arena.SetPersisted(p)
		newRun.bloomPtr = p
		newRun.bloomWords = uint64((len(bm) - 8) / 8)
		newRun.bloomK = fl.K()
		if err := e.swapRunList(e.runs); err != nil {
			e.fstats.Failures++
			return err
		}
		return nil
	}
	t.Release = func() error {
		e.fstats.Flushes++
		if len(e.runs) >= e.opts.LSMGrowth {
			if err := e.submitCompact(); err != nil {
				return err
			}
		}
		e.submitGC(gcMinRatio)
		return nil
	}
	return t
}

// storeRun persists a bloom filter chunk and returns the run descriptor.
func (e *Engine) storeRun(tree *nvbtree.Tree, fl *bloom.Filter) (*run, error) {
	bm := fl.Marshal()
	p, err := e.Env.Arena.Alloc(len(bm)-8, pmalloc.TagIndex)
	if err != nil {
		return nil, err
	}
	d := e.Env.Dev
	d.Write(int64(p), bm[8:])
	d.Sync(int64(p), len(bm)-8)
	e.Env.Arena.SetPersisted(p)
	return &run{
		tree:       tree,
		bloomPtr:   p,
		bloomWords: uint64((len(bm) - 8) / 8),
		bloomK:     fl.K(),
	}, nil
}

// swapRunList atomically installs a new immutable-run list.
func (e *Engine) swapRunList(runs []*run) error {
	d := e.Env.Dev
	old := d.ReadU64(int64(e.hdr) + hRunList)
	var list pmalloc.Ptr
	if len(runs) > 0 {
		var err error
		list, err = e.Env.Arena.Alloc(8+runEntSize*len(runs), pmalloc.TagOther)
		if err != nil {
			return err
		}
		d.WriteU64(int64(list), uint64(len(runs)))
		for i, r := range runs {
			base := int64(list) + 8 + int64(i)*runEntSize
			d.WriteU64(base, r.tree.Header())
			d.WriteU64(base+8, r.bloomPtr)
			d.WriteU64(base+16, r.bloomWords<<8|uint64(r.bloomK))
		}
		d.Sync(int64(list), 8+runEntSize*len(runs))
		e.Env.Arena.SetPersisted(list)
	}
	d.WriteU64Durable(int64(e.hdr)+hRunList, uint64(list))
	if old != 0 {
		e.Env.Arena.Free(old)
	}
	e.runs = runs
	return nil
}

// submitCompact queues a compaction merging the two oldest immutable
// MemTables into one new, larger MemTable with a fresh Bloom filter (§4.3:
// "we also modified the compaction process to merge a set of these
// MemTables"). Merging only the deepest pair bounds the transient space to
// roughly the size of that pair; tombstones are dropped because nothing
// older remains below them. Superseded value-log pointers feed the discard
// statistics that drive GC. Caller holds e.mu.
func (e *Engine) submitCompact() error {
	if e.compactQueued || len(e.runs) < 2 {
		return nil
	}
	e.compactQueued = true
	var newRun *run
	var victims []*run
	t := &lsm.FlushTask{Kind: "compact"}

	t.Build = func() error {
		stop := e.Bd.Timer(&e.Bd.Storage)
		defer stop()
		fail := func(err error) error {
			e.compactQueued = false
			e.fstats.Failures++
			return err
		}
		victims = e.runs[len(e.runs)-2:] // newest-first order: the two oldest

		// Collect: for each key, entries newest-run first.
		entries := make(map[uint64][]lsm.Entry)
		var order []uint64
		for _, r := range victims {
			r.tree.Iter(0, func(k, v uint64) bool {
				if _, ok := entries[k]; !ok {
					order = append(order, k)
				}
				entries[k] = append(entries[k], e.readEntryChunk(v))
				return true
			})
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

		merged, err := nvbtree.Create(e.Env.Arena, e.opts.BTreeNodeSize)
		if err != nil {
			return fail(err)
		}
		fl := bloom.New(len(order), 10)
		for _, k := range order {
			es := entries[k]
			acc := es[0]
			for _, ent := range es[1:] {
				acc, err = lsm.MergeR(e.Tables[core.TreeTable(k)].Schema, k, acc, ent, e.resolveEntry)
				if err != nil {
					return fail(err)
				}
				if acc.Kind != lsm.KindDelta {
					break
				}
			}
			// A delta resolved over a separated image yields an inline full
			// image; re-separate it if it is still large.
			acc, err = e.separate(k, acc)
			if err != nil {
				return fail(err)
			}
			// Input pointers not carried forward verbatim are dead log bytes.
			for _, ent := range es {
				if ent.Kind == lsm.KindFullPtr && e.vl != nil &&
					!(acc.Kind == lsm.KindFullPtr && bytes.Equal(ent.Payload, acc.Payload)) {
					if ptr, ok := core.DecodeVlogPtr(ent.Payload); ok {
						e.vl.Discard(ptr.Seg, vlog.DiscardOf(ptr))
					}
				}
			}
			if acc.Kind == lsm.KindTomb {
				continue // reclaim space during compaction (Table 2)
			}
			cp, err := e.writeEntryChunk(acc)
			if err != nil {
				return fail(err)
			}
			if err := merged.Put(k, uint64(cp)); err != nil {
				return fail(err)
			}
			fl.Add(k)
		}
		newRun, err = e.storeRun(merged, fl)
		if err != nil {
			return fail(err)
		}
		return nil
	}

	t.Install = func() error {
		newList := append(append([]*run{}, e.runs[:len(e.runs)-2]...), newRun)
		if err := e.swapRunList(newList); err != nil {
			e.compactQueued = false
			e.fstats.Failures++
			return err
		}
		return nil
	}

	t.Release = func() error {
		// Release the merged-away runs: their entry chunks, trees, blooms.
		for _, r := range victims {
			r.tree.Iter(0, func(k, v uint64) bool {
				if e.Env.Arena.StateOf(v) != pmalloc.StateFree {
					e.Env.Arena.Free(v)
				}
				return true
			})
			r.tree.Release()
			if r.bloomPtr != 0 {
				e.Env.Arena.Free(r.bloomPtr)
			}
		}
		e.compactions++
		e.fstats.Compactions++
		e.compactQueued = false
		e.submitGC(gcMinRatio)
		return nil
	}
	if err := e.fm.Submit(t); err != nil {
		e.compactQueued = false
		if errors.Is(err, lsm.ErrClosed) {
			// Shutdown race: a release stage chained this compaction after
			// Close. The runs are durable; the next open compacts them.
			return nil
		}
		return err
	}
	return nil
}

// submitGC queues a value-log GC pass if a sealed segment's dead ratio
// reaches minRatio (0 forces the best victim regardless). Caller holds
// e.mu.
func (e *Engine) submitGC(minRatio float64) {
	if e.vl == nil || e.gcQueued {
		return
	}
	victim, ok := e.vl.PickVictim(minRatio)
	if !ok {
		return
	}
	e.gcQueued = true
	t := &lsm.FlushTask{Kind: "gc"}
	t.Build = func() error {
		defer func() { e.gcQueued = false }()
		if e.opts.FlushWorkers > 0 && e.InTx {
			// A background GC pass must not repoint entry chunks an open
			// transaction could still roll back (the undo would free the
			// repointed chunk and restore one GC just freed). Skip; the
			// next trigger re-picks the victim.
			return nil
		}
		if !e.vl.Has(victim) {
			return nil
		}
		if err := e.gcSegment(victim); err != nil {
			e.fstats.Failures++
			return err
		}
		e.fstats.GCRuns++
		e.vl.NoteGCRun()
		return nil
	}
	if err := e.fm.Submit(t); err != nil {
		e.gcQueued = false
	}
}

// gcSegment rewrites the victim segment's live records to the value-log
// tail and repoints their entry chunks in place, then removes the segment.
// Every step is individually crash-safe: the new record syncs before the
// new chunk persists, the new chunk persists before the durable tree
// repoint, and the victim only leaves the (anchor-swapped) directory after
// every live record is repointed — a crash at any boundary leaves either
// the old pointer valid or the new one installed, never a dangling pointer.
func (e *Engine) gcSegment(victim uint32) error {
	err := e.vl.Scan(victim, func(key uint64, ptr core.VlogPtr, val []byte) error {
		tree, oldChunk, live := e.findLive(key, ptr)
		if !live {
			return nil
		}
		nptr, err := e.vl.Append(key, val)
		if err != nil {
			return err
		}
		if err := e.vl.Sync(); err != nil {
			return err
		}
		np, err := e.writeEntryChunk(lsm.Entry{Kind: lsm.KindFullPtr, Payload: nptr.Encode(nil)})
		if err != nil {
			return err
		}
		if err := tree.Put(key, uint64(np)); err != nil {
			return err
		}
		e.Env.Arena.Free(oldChunk)
		return nil
	})
	if err != nil {
		return err
	}
	return e.vl.Remove(victim)
}

// findLive locates the entry chunk referencing ptr, if the pointer is still
// the terminal of its key's live chain. Deltas above a separated image keep
// it live (reads resolve through it); a newer full image or tombstone
// shadows it.
func (e *Engine) findLive(tk uint64, ptr core.VlogPtr) (*nvbtree.Tree, uint64, bool) {
	check := func(t *nvbtree.Tree) (uint64, int) { // 0 = keep walking, 1 = live, 2 = dead
		p, ok := t.Get(tk)
		if !ok {
			return 0, 0
		}
		ent := e.readEntryChunk(p)
		switch ent.Kind {
		case lsm.KindDelta:
			return 0, 0
		case lsm.KindFullPtr:
			if q, ok := core.DecodeVlogPtr(ent.Payload); ok && q == ptr {
				return uint64(p), 1
			}
			return 0, 2
		default:
			return 0, 2
		}
	}
	if p, v := check(e.mem); v == 1 {
		return e.mem, p, true
	} else if v == 2 {
		return nil, 0, false
	}
	for _, r := range e.runs {
		if p, v := check(r.tree); v == 1 {
			return r.tree, p, true
		} else if v == 2 {
			return nil, 0, false
		}
	}
	return nil, 0, false
}

// Insert adds a tuple (Table 2: sync tuple, log pointer, add to MemTable).
func (e *Engine) Insert(table string, key uint64, row []core.Value) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	_, exists, err := e.get(table, key)
	if err != nil {
		return err
	}
	if exists {
		return core.ErrKeyExists
	}
	var fixes []secFix
	for j, ix := range tm.Schema.Secondary {
		fixes = append(fixes, secFix{idx: j, added: true, composite: core.SecComposite(ix.SecKey(row), key)})
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	defer stopSt()
	if err := e.applyMem(tm, core.WalInsert, key, lsm.Entry{Kind: lsm.KindFull, Payload: core.EncodeRow(tm.Schema, row)}, fixes); err != nil {
		return err
	}
	e.MV.StageUpsert(table, key, row)
	return nil
}

// Update records the updated fields in the MemTable.
func (e *Engine) Update(table string, key uint64, upd core.Update) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	old, exists, err := e.get(table, key)
	if err != nil {
		return err
	}
	if !exists {
		return core.ErrKeyNotFound
	}
	now := core.CloneRow(old)
	core.ApplyDelta(now, upd)
	var fixes []secFix
	for j, ix := range tm.Schema.Secondary {
		ok, nk := ix.SecKey(old), ix.SecKey(now)
		if ok != nk {
			fixes = append(fixes,
				secFix{idx: j, added: false, composite: core.SecComposite(ok, key)},
				secFix{idx: j, added: true, composite: core.SecComposite(nk, key)})
		}
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	defer stopSt()
	if err := e.applyMem(tm, core.WalUpdate, key, lsm.Entry{Kind: lsm.KindDelta, Payload: core.EncodeDelta(tm.Schema, upd)}, fixes); err != nil {
		return err
	}
	e.MV.StageUpsert(table, key, now)
	return nil
}

// Delete marks the tuple with a tombstone in the MemTable.
func (e *Engine) Delete(table string, key uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.RequireTx(); err != nil {
		return err
	}
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	old, exists, err := e.get(table, key)
	if err != nil {
		return err
	}
	if !exists {
		return core.ErrKeyNotFound
	}
	var fixes []secFix
	for j, ix := range tm.Schema.Secondary {
		fixes = append(fixes, secFix{idx: j, added: false, composite: core.SecComposite(ix.SecKey(old), key)})
	}
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	defer stopSt()
	if err := e.applyMem(tm, core.WalDelete, key, lsm.Entry{Kind: lsm.KindTomb}, fixes); err != nil {
		return err
	}
	e.MV.StageDelete(table, key)
	return nil
}

// Get coalesces entries from the mutable MemTable and the immutable runs
// (newest first), probing each run's Bloom filter first (Table 2).
// Separated values resolve through the value log.
func (e *Engine) Get(table string, key uint64) ([]core.Value, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.get(table, key)
}

func (e *Engine) get(table string, key uint64) ([]core.Value, bool, error) {
	tm, err := e.Table(table)
	if err != nil {
		return nil, false, err
	}
	tk := core.TreePrimary(tm.ID, key)
	var entries []lsm.Entry
	add := func(ent lsm.Entry) bool {
		entries = append(entries, ent)
		return ent.Kind != lsm.KindDelta
	}
	done := false
	stopSt := e.Bd.Timer(&e.Bd.Storage)
	if p, ok := e.mem.Get(tk); ok {
		done = add(e.readEntryChunk(p))
	}
	stopSt()
	if !done {
		stopIdx := e.Bd.Timer(&e.Bd.Index)
		for _, r := range e.runs {
			if !e.bloomHas(r, tk) {
				continue
			}
			p, ok := r.tree.Get(tk)
			if !ok {
				continue
			}
			if add(e.readEntryChunk(p)) {
				break
			}
		}
		stopIdx()
	}
	row, exists, _, err := lsm.CoalesceR(tm.Schema, tk, entries, e.resolveEntry)
	if err != nil {
		return nil, false, err
	}
	return row, exists, nil
}

func (e *Engine) bloomHas(r *run, key uint64) bool {
	if r.bloomWords == 0 {
		return true
	}
	d := e.Env.Dev
	ok := true
	bloom.Probes(key, r.bloomK, r.bloomWords*64, func(bit uint64) bool {
		w := d.ReadU64(int64(r.bloomPtr) + int64(bit/64)*8)
		if w&(1<<(bit%64)) == 0 {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// ScanSecondary iterates primary keys matching a secondary key.
func (e *Engine) ScanSecondary(table, index string, sec uint32, fn func(pk uint64) bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	j, ok := tm.SecPos(index)
	if !ok {
		return fmt.Errorf("nvmlog: unknown index %q", index)
	}
	stopIdx := e.Bd.Timer(&e.Bd.Index)
	defer stopIdx()
	lo, hi := core.SecRange(sec)
	e.second[tm.ID][j].Iter(lo, func(k, pk uint64) bool {
		if k >= hi {
			return false
		}
		return fn(pk)
	})
	return nil
}

// ScanRange merges the MemTable and the runs over the key range.
func (e *Engine) ScanRange(table string, from, to uint64, fn func(pk uint64, row []core.Value) bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	tm, err := e.Table(table)
	if err != nil {
		return err
	}
	lo, hi := core.TreePrimaryRange(tm.ID, from, to)
	if to > core.TreePK(^uint64(0)) {
		hi = core.TreePrimary(tm.ID, core.TreePK(^uint64(0)))
	}
	entries := make(map[uint64][]lsm.Entry)
	var order []uint64
	collect := func(t *nvbtree.Tree) {
		t.Iter(lo, func(k, v uint64) bool {
			if k >= hi {
				return false
			}
			if _, ok := entries[k]; !ok {
				order = append(order, k)
			}
			entries[k] = append(entries[k], e.readEntryChunk(v))
			return true
		})
	}
	collect(e.mem)
	for _, r := range e.runs {
		collect(r.tree)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, k := range order {
		row, exists, _, err := lsm.CoalesceR(tm.Schema, k, entries[k], e.resolveEntry)
		if err != nil {
			return err
		}
		if exists {
			if !fn(core.TreePK(k), row) {
				return nil
			}
		}
	}
	return nil
}

// Flush is a no-op: every commit is immediately durable.
func (e *Engine) Flush() error { return nil }

// Close drains in-flight background rotation/compaction/GC work, then marks
// the engine closed. It must be called without e.mu held: the worker needs
// the monitor to finish its current task.
func (e *Engine) Close() error {
	e.fm.Close()
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	return e.fm.TakeErr()
}

// Compactions returns the number of MemTable merges performed.
func (e *Engine) Compactions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compactions
}

// Runs returns the number of immutable MemTables.
func (e *Engine) Runs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.runs)
}

// FlushStats exposes the staged-pipeline and value-log counters
// (core.FlushStatser).
func (e *Engine) FlushStats() core.FlushStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.fstats
	if e.vl != nil {
		vs := e.vl.Stats()
		st.VlogSegments = int64(vs.Segments)
		st.VlogBytes = vs.Bytes
		st.VlogDiscard = vs.Discard
		st.VlogReclaimed = vs.Reclaimed
	}
	return st
}

// GCVlog forces one value-log GC pass over the deadest sealed segment, if
// any qualifies (test/bench hook).
func (e *Engine) GCVlog() error {
	e.mu.Lock()
	e.submitGC(0)
	e.mu.Unlock()
	e.fm.Drain()
	return e.fm.TakeErr()
}

// Footprint reports storage usage (Fig. 14).
func (e *Engine) Footprint() core.Footprint {
	e.mu.Lock()
	defer e.mu.Unlock()
	u := e.Env.Arena.Usage()
	return core.Footprint{
		Table: u[pmalloc.TagTable],
		Index: u[pmalloc.TagIndex],
		Log:   u[pmalloc.TagLog],
		Other: u[pmalloc.TagOther],
	}
}
